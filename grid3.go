// Package grid3 is a from-scratch Go reproduction of the Grid2003
// production grid (Foster et al., HPDC 2004): the complete middleware
// stack — GSI, VOMS, ClassAds/Condor-G, GRAM, GridFTP, MDS, RLS, SRM,
// Pacman/VDT, Chimera, Pegasus, DAGMan, and the Ganglia/MonALISA/ACDC
// monitoring mesh — plus a deterministic discrete-event scenario that
// regenerates the paper's evaluation (Figures 2-6, Table 1, and the §7
// milestones).
//
// This package is the public façade: it re-exports the assembly and
// scenario API from the internal packages. Typical use:
//
//	g, err := grid3.New(grid3.Config{Seed: 42})
//	g.SubmitJob(grid3.Request{VO: "usatlas", ...})
//	g.Eng.RunUntil(24 * time.Hour)
//
// or, for the full calibrated campaign:
//
//	s, err := grid3.RunScenario(1, 1.0)
//	s.WriteTable1(os.Stdout)
//
// The substrates are individually importable under internal/ within this
// module; see DESIGN.md for the inventory.
package grid3

import (
	"grid3/internal/apps"
	"grid3/internal/core"
)

// Config tunes a Grid3 instance; see core.Config.
type Config = core.Config

// Grid is a fully assembled Grid3 instance: 27 sites, the service mesh,
// and per-VO Condor-G schedds.
type Grid = core.Grid

// Request is one workload job handed to the grid.
type Request = apps.Request

// ScenarioConfig tunes a full production campaign.
type ScenarioConfig = core.ScenarioConfig

// Scenario is a running or completed campaign with figure/table queries.
type Scenario = core.Scenario

// Milestones is the §7 scorecard.
type Milestones = core.Milestones

// SiteSpec describes one catalog site.
type SiteSpec = core.SiteSpec

// New assembles a Grid3 instance.
func New(cfg Config) (*Grid, error) { return core.New(cfg) }

// NewScenario assembles a grid with the calibrated workloads, the §6.3
// transfer demonstrator, and failure injection armed.
func NewScenario(cfg ScenarioConfig) (*Scenario, error) { return core.NewScenario(cfg) }

// RunScenario runs the full 183-day campaign at the given seed and
// workload scale (1.0 reproduces the paper's ~290k-job sample).
func RunScenario(seed int64, scale float64) (*Scenario, error) {
	return core.DefaultScenario(seed, scale)
}

// Grid3Sites returns the production 27-site catalog.
func Grid3Sites() []SiteSpec { return core.Grid3Sites() }
