// Package grid3 is a from-scratch Go reproduction of the Grid2003
// production grid (Foster et al., HPDC 2004): the complete middleware
// stack — GSI, VOMS, ClassAds/Condor-G, GRAM, GridFTP, MDS, RLS, SRM,
// Pacman/VDT, Chimera, Pegasus, DAGMan, and the Ganglia/MonALISA/ACDC
// monitoring mesh — plus a deterministic discrete-event scenario that
// regenerates the paper's evaluation (Figures 2-6, Table 1, and the §7
// milestones).
//
// This package is the public façade, configured through functional
// options:
//
//	g, err := grid3.New(grid3.WithSeed(42), grid3.WithSRM(),
//		grid3.WithMonitorInterval(5*time.Minute))
//	g.SubmitJob(grid3.Request{VO: "usatlas", ...})
//	g.Eng.RunUntil(24 * time.Hour)
//
// or, for the full calibrated campaign:
//
//	r, err := grid3.RunScenario(1, 1.0)
//	r.WriteTable1(os.Stdout)
//
// and, for multi-seed production sweeps across all CPUs:
//
//	rep, err := grid3.Sweep([]int64{1, 2, 3, 4}, 1.0)
//	rep.Write(os.Stdout)
//
// The Config/ScenarioConfig structs remain available for callers that
// prefer to build configuration wholesale; pass them through WithConfig or
// WithScenarioConfig. The substrates are individually importable under
// internal/ within this module; see DESIGN.md for the inventory.
//
// # Options and flags
//
// The With* options are grouped into sections below — engine & testbed,
// sharding, observability, fault management, data plane, serve — and every
// cmd/grid3sim flag is a thin wrapper over one of them:
//
//	WithSeed            -seed        WithHealthProbes     -health
//	WithTestbedScale    -sites       WithRecovery         -recovery
//	WithHorizon         -days        WithChaos            -chaos
//	WithJobScale        -scale       WithSRM              -srm
//	WithShards          -shards      WithTransferDoors    -doors
//	WithoutFailures     -no-failures WithStorageCleanup   -cleanup
//	WithoutAffinity     -no-affinity WithReplicaRanking   -replica-rank
//	WithTracer          -trace-out   WithMetricsSink      -metrics-out
//	WithIngestBatching  -ingest-batch/-ingest-window
//	WithUpgradeWave     -upgrade-at/-upgrade-stagger
//	WithCertWave        -cert-lifetime/-cert-renewal
//	WithCheckpointAt    -checkpoint-at/-checkpoint-out    Restore  -restore
//
// (WithRealTime has no grid3sim flag; it paces the grid3d daemon.)
package grid3

import (
	"io"
	"net/http"
	"time"

	"grid3/internal/apps"
	"grid3/internal/campaign"
	"grid3/internal/checkpoint"
	"grid3/internal/core"
	"grid3/internal/obs"
	"grid3/internal/serve"
)

// Config tunes a Grid3 instance; see core.Config. Most callers should use
// the With* options instead and keep Config for the WithConfig escape
// hatch.
type Config = core.Config

// Grid is a fully assembled Grid3 instance: 27 sites, the service mesh,
// and per-VO Condor-G schedds.
type Grid = core.Grid

// Request is one workload job handed to the grid.
type Request = apps.Request

// ScenarioConfig tunes a full production campaign; see WithScenarioConfig.
type ScenarioConfig = core.ScenarioConfig

// Scenario is a running or completed campaign with figure/table queries.
type Scenario = core.Scenario

// SiteSpec describes one catalog site.
type SiteSpec = core.SiteSpec

// Observability views. The grid records per-job lifecycle spans (submit,
// match, gram-auth, stage-in, run, stage-out) and a metrics registry of
// counters and fixed-bucket histograms when observability is enabled; both
// are no-ops by default so seeded runs stay bit-identical.
type (
	// Trace is a completed run's span set with parent/child and
	// critical-path queries.
	Trace = obs.Trace
	// Span is one recorded lifecycle interval on sim time.
	Span = obs.Span
	// SpanID identifies a span within its trace (0 = none).
	SpanID = obs.SpanID
	// SpanKind classifies lifecycle spans (job, submit, match, ...).
	SpanKind = obs.Kind
	// MetricsSnapshot is a point-in-time copy of every counter, gauge, and
	// histogram.
	MetricsSnapshot = obs.Snapshot
	// TraceSink consumes the finished trace (see JSONLSink, NetLoggerSink).
	TraceSink = obs.TraceSink
	// MetricsSink consumes the final metrics snapshot (see TextMetricsSink).
	MetricsSink = obs.MetricsSink
)

// JSONLSink writes the trace as one fixed-key-order JSON object per span.
func JSONLSink(w io.Writer) TraceSink { return obs.JSONLSink(w) }

// NetLoggerSink writes the trace in NetLogger format (§4.7); transfer spans
// render the classic gridftp.transfer.start/end/error lines.
func NetLoggerSink(w io.Writer) TraceSink { return obs.NetLoggerSink(w) }

// TextMetricsSink writes the metrics snapshot as a text report.
func TextMetricsSink(w io.Writer) MetricsSink { return obs.TextMetricsSink(w) }

// Option configures New, RunScenario, or Sweep. Options apply in order, so
// a later option overrides an earlier one; the WithConfig and
// WithScenarioConfig escape hatches replace the whole corresponding struct
// and are therefore best placed first.
type Option func(*ScenarioConfig)

// ── Engine & testbed options ────────────────────────────────────────────
//
// What simulates: the seed, the site population, the campaign window, the
// workload volume, and the service cadences.

// WithSeed sets the master RNG seed: same seed, same run, bit for bit.
func WithSeed(seed int64) Option {
	return func(c *ScenarioConfig) { c.Config.Seed = seed }
}

// WithSites replaces the production 27-site catalog.
func WithSites(sites []SiteSpec) Option {
	return func(c *ScenarioConfig) { c.Config.Sites = sites }
}

// WithTestbedScale sizes the site population with the synthetic testbed
// generator: n <= 27 is a prefix of the historical catalog (27 reproduces
// the paper's Table 1 sites exactly), larger n appends seeded synthetic
// sites drawn from the default tier distribution. Overridden by WithSites.
func WithTestbedScale(n int) Option {
	return func(c *ScenarioConfig) { c.Config.TestbedSites = n }
}

// WithHorizon bounds a scenario run (default: the 183-day Table 1 window).
func WithHorizon(d time.Duration) Option {
	return func(c *ScenarioConfig) { c.Horizon = d }
}

// WithJobScale multiplies every class's job count (sub-1.0 for quick runs).
func WithJobScale(f float64) Option {
	return func(c *ScenarioConfig) { c.JobScale = f }
}

// WithMonitorInterval paces Ganglia/MonALISA collection (production used
// 5 minutes; the default 30 minutes consolidates identically).
func WithMonitorInterval(d time.Duration) Option {
	return func(c *ScenarioConfig) { c.Config.MonitorInterval = d }
}

// WithNegotiationInterval paces Condor-G matchmaking (default 15 minutes).
func WithNegotiationInterval(d time.Duration) Option {
	return func(c *ScenarioConfig) { c.Config.NegotiationInterval = d }
}

// WithoutAffinity strips VO site pinning from workloads (the ABL-FED
// ablation: uniform matchmaking instead of favorite resources).
func WithoutAffinity() Option {
	return func(c *ScenarioConfig) { c.Config.DisableAffinity = true }
}

// WithoutTransferDemo turns off the §6.3 GridFTP demonstrator.
func WithoutTransferDemo() Option {
	return func(c *ScenarioConfig) { c.DisableTransferDemo = true }
}

// ── Sharding options ────────────────────────────────────────────────────
//
// Region-parallel evaluation. The testbed partitions into contiguous
// regions of the dense site-ID space; the pure per-region phases of each
// negotiation cycle run on one worker goroutine per region, and every
// result folds back in on the engine goroutine in region order. Output is
// bit-identical to the serial run at any shard count.

// WithShards partitions the testbed into n regions and evaluates them on a
// worker goroutine each. 0 or 1 keeps the fully serial path; n is clamped
// to the site count. Same seed, same output, at every n — sharding buys
// wall-clock parallelism on multi-core hosts, never a different run.
func WithShards(n int) Option {
	return func(c *ScenarioConfig) { c.Config.Shards = n }
}

// ── Observability options ───────────────────────────────────────────────
//
// Job-lifecycle span traces and the metrics registry. Off by default; when
// enabled, recording never steers the simulation (same seed, byte-identical
// exhibits either way).

// WithObservability enables job-lifecycle tracing and the metrics registry
// without attaching any sink; read the results via Result.Trace and
// Result.Metrics (or SweepReport.Aggregate's stage latencies).
func WithObservability() Option {
	return func(c *ScenarioConfig) { c.Config.EnableObservability = true }
}

// WithTracer enables observability and registers a trace sink, flushed once
// when the scenario finishes. In a Sweep every seed flushes to the same
// sink concurrently — give each seed its own writer, or prefer
// WithObservability plus the aggregate views.
func WithTracer(sink TraceSink) Option {
	return func(c *ScenarioConfig) {
		c.Config.EnableObservability = true
		c.TraceSinks = append(c.TraceSinks, sink)
	}
}

// WithMetricsSink enables observability and registers a metrics sink,
// flushed once when the scenario finishes.
func WithMetricsSink(sink MetricsSink) Option {
	return func(c *ScenarioConfig) {
		c.Config.EnableObservability = true
		c.MetricsSinks = append(c.MetricsSinks, sink)
	}
}

// WithoutObservability turns the observability layer back off and drops any
// registered sinks (options apply in order, so this wins over earlier
// WithTracer/WithMetricsSink/WithObservability).
func WithoutObservability() Option {
	return func(c *ScenarioConfig) {
		c.Config.EnableObservability = false
		c.TraceSinks = nil
		c.MetricsSinks = nil
	}
}

// ── Monitoring-ingestion options ────────────────────────────────────────
//
// The batched monitoring path and the Merkle-audited usage ledger.

// WithIngestBatching routes the monitoring hot path — MonALISA stations
// and the obs bridge into the central repository, Ganglia history
// writes, ACDC warehouse pulls — through size/time-windowed batchers
// (batch events per commit, sealed early when window expires), and arms
// the per-VO usage ledger: one Merkle root of per-VO usage deltas
// (completed jobs, CPU seconds, bytes moved) sealed per window,
// published with inclusion proofs at the daemon's /api/v1/audit/*
// routes. Batching never changes a run: the batchers schedule no
// events, and every monitoring read drains staged batches first, so
// output stays byte-identical to the per-event path. window <= 0
// defaults to the monitor interval.
func WithIngestBatching(batch int, window time.Duration) Option {
	return func(c *ScenarioConfig) {
		c.Config.IngestBatch = batch
		c.Config.IngestWindow = window
	}
}

// ── Fault-management options ────────────────────────────────────────────
//
// The §6 failure taxonomy and the loop that reacts to it: injection,
// health probing, breaker-aware recovery, and chaos intensity.

// WithoutFailures turns off failure injection.
func WithoutFailures() Option {
	return func(c *ScenarioConfig) { c.DisableFailures = true }
}

// WithHealthProbes arms the health monitor: per-site, per-service circuit
// breakers fed by periodic probes, with iGOC tickets opened and resolved on
// breaker transitions. Probes are read-only — scheduling and data paths are
// unaffected unless WithRecovery is also given.
func WithHealthProbes() Option {
	return func(c *ScenarioConfig) { c.Config.EnableHealth = true }
}

// WithRecovery closes the fault-management loop (implies WithHealthProbes):
// matchmaking and Pegasus planning skip sites with open breakers, Condor-G
// steers retries away from sites that already failed a job, stage-in/out
// transfers get bounded delayed retries, and workflow transfers fail over
// to alternate RLS replicas.
func WithRecovery() Option {
	return func(c *ScenarioConfig) { c.Config.EnableRecovery = true }
}

// WithChaos scales failure injection by the given intensity (MTBFs divide
// by it, the random-loss rate multiplies by it) — the single-run face of
// the chaos campaign. 0 and 1 leave the calibrated rates untouched.
func WithChaos(intensity float64) Option {
	return func(c *ScenarioConfig) { c.ChaosIntensity = intensity }
}

// UpgradeWaveConfig schedules the §5.1 rolling VDT/Pacman upgrade campaign;
// see WithUpgradeWave.
type UpgradeWaveConfig = core.UpgradeWaveConfig

// CertWaveConfig schedules GSI host-credential expiry/revocation storms;
// see WithCertWave.
type CertWaveConfig = core.CertWaveConfig

// WithUpgradeWave arms the rolling VDT/Pacman upgrade campaign: starting at
// w.Start, sites reinstall onto the next Grid3 release tier by tier (Tier1
// labs first, staggered by w.Stagger), each taking a w.Outage service
// outage that kills its jobs; while the fleet is mixed-version, upgraded
// sites suffer skew-induced job losses at w.SkewLossPerDay. The wave draws
// from its own seed-salted stream, so runs without it are untouched. The
// zero-Start config disables the wave.
func WithUpgradeWave(w UpgradeWaveConfig) Option {
	return func(c *ScenarioConfig) { c.UpgradeWave = w }
}

// WithCertWave arms GSI host-credential expiry/revocation storms: every
// site's gatekeeper credential carries lifetime w.Lifetime (issuance
// staggered across w.Spread), and each lapse takes the site's auth dark —
// empty grid-mapfile, unhealthy gatekeeper — until a renewed credential
// lands after ~w.RenewalDelay. Combine with WithHealthProbes to watch the
// storms surface as breaker transitions and iGOC tickets. The
// zero-Lifetime config disables the wave.
func WithCertWave(w CertWaveConfig) Option {
	return func(c *ScenarioConfig) { c.CertWave = w }
}

// ── Data-plane options ──────────────────────────────────────────────────
//
// The managed data plane: SRM reservations and lifecycle, bounded GridFTP
// doors, and load-aware replica selection.

// WithSRM routes stage-out through SRM space reservations (the §8 lesson;
// without it the paper's raw-GridFTP disk-full failures reproduce).
func WithSRM() Option {
	return func(c *ScenarioConfig) { c.Config.UseSRM = true }
}

// WithTransferDoors bounds concurrent GridFTP flows per endpoint at n, the
// site's gsiftp door count; excess transfers queue FIFO until a door frees
// on both ends. 0 (the default) keeps the historical unbounded WAN.
func WithTransferDoors(n int) Option {
	return func(c *ScenarioConfig) { c.Config.TransferDoors = n }
}

// WithReplicaRanking makes Pegasus stage-in pick its replica source by live
// WAN load (fewest flows holding or waiting for a door, then least link
// pressure) instead of the first catalog listing.
func WithReplicaRanking() Option {
	return func(c *ScenarioConfig) { c.Config.EnableReplicaRanking = true }
}

// WithStorageCleanup arms the SRM lifecycle loop at every site: reservation
// expiry on the timer wheel, archive outputs pinned, and a periodic sweep
// that evicts unpinned staged files when free space falls below the
// watermark (0 keeps the default 0.15).
func WithStorageCleanup(watermark float64) Option {
	return func(c *ScenarioConfig) {
		c.Config.EnableStorageCleanup = true
		c.Config.CleanupWatermark = watermark
	}
}

// ── Serve options ───────────────────────────────────────────────────────
//
// The grid as a long-running daemon (see Serve/Handler below).

// WithRealTime sets the scaled-real-time compression ratio for Serve: pace
// virtual seconds advance per wall second (3600 compresses one simulated
// hour into each wall second). Batch runners (New, RunScenario, the
// sweeps) ignore it — a batch run always executes as fast as the hardware
// allows. Zero or negative restores the serve default.
func WithRealTime(pace float64) Option {
	return func(c *ScenarioConfig) {
		if pace < 0 {
			pace = 0
		}
		c.RealTimePace = pace
	}
}

// ── Checkpoint options ──────────────────────────────────────────────────
//
// Crash-recoverable runs and warm-started campaigns; see the Checkpoint/
// Restore/WarmStart entry points below.

// WithCheckpointAt arms mid-run snapshot capture: the scenario pauses at
// each listed sim time (ascending; past-horizon entries are skipped) and
// writes a snapshot into store. Capture is a pure read, so a checkpointing
// run stays byte-identical to one that never checkpoints.
func WithCheckpointAt(store StateStore, at ...time.Duration) Option {
	return func(c *ScenarioConfig) {
		c.CheckpointStore = store
		c.CheckpointAt = append(c.CheckpointAt, at...)
	}
}

// ── Escape hatches ──────────────────────────────────────────────────────
//
// Wholesale struct replacement for callers that build configuration
// directly. Place these first: a later option overrides them field-wise,
// while they replace everything set before them.

// WithConfig replaces the grid-level configuration wholesale — the escape
// hatch for callers that already build a Config struct.
func WithConfig(cfg Config) Option {
	return func(c *ScenarioConfig) { c.Config = cfg }
}

// WithScenarioConfig replaces the scenario configuration wholesale — the
// escape hatch for callers that already build a ScenarioConfig struct.
func WithScenarioConfig(cfg ScenarioConfig) Option {
	return func(c *ScenarioConfig) { *c = cfg }
}

func buildConfig(opts []Option) ScenarioConfig {
	var cfg ScenarioConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// New assembles a Grid3 instance: 27 sites, the full service mesh, and
// per-VO Condor-G schedds, ready for SubmitJob.
func New(opts ...Option) (*Grid, error) {
	cfg := buildConfig(opts)
	return core.New(cfg.Config)
}

// NewScenario assembles a grid with the calibrated workloads, the §6.3
// transfer demonstrator, and failure injection armed, without running it —
// for callers that advance time incrementally.
func NewScenario(opts ...Option) (*Scenario, error) {
	return core.NewScenario(buildConfig(opts))
}

// RunScenario runs the full 183-day campaign at the given seed and
// workload scale (1.0 reproduces the paper's ~290k-job sample). The
// positional seed and scale take precedence over any conflicting option.
func RunScenario(seed int64, scale float64, opts ...Option) (*Result, error) {
	cfg := buildConfig(opts)
	cfg.Config.Seed = seed
	cfg.JobScale = scale
	s, err := core.NewScenario(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.Run(); err != nil {
		return nil, err
	}
	return &Result{scen: s}, nil
}

// Grid3Sites returns the production 27-site catalog.
func Grid3Sites() []SiteSpec { return core.Grid3Sites() }

// Milestones is the §7 milestones-and-metrics scorecard, the public view of
// a completed run's headline numbers.
type Milestones struct {
	CPUs            int     // catalog peak; target 400, paper 2163/peak 2800+
	MeanOnlineCPUs  float64 // time-averaged in-service capacity
	Users           int     // target 10, paper actual 102
	Applications    int     // target >4, paper actual 10
	ConcurrentSites int     // sites serving ≥2 VOs' jobs; target >10, actual 17
	DataTBPerDay    float64 // target 2-3, actual 4
	Utilization     float64 // target 0.9, actual 0.4-0.7
	PeakJobs        int     // target 1000, actual 1300
	SupportFTEs     float64 // target <2 FTEs
	OpenTickets     int
	ResolvedMTTR    time.Duration
	EfficiencyByVO  map[string]float64
}

func milestonesView(m core.Milestones) Milestones {
	return Milestones{
		CPUs:            m.CPUs,
		MeanOnlineCPUs:  m.MeanOnlineCPUs,
		Users:           m.Users,
		Applications:    m.Applications,
		ConcurrentSites: m.ConcurrentSites,
		DataTBPerDay:    m.DataTBPerDay,
		Utilization:     m.Utilization,
		PeakJobs:        m.PeakJobs,
		SupportFTEs:     m.SupportFTEs,
		OpenTickets:     m.OpenTickets,
		ResolvedMTTR:    m.ResolvedMTTR,
		EfficiencyByVO:  m.EfficiencyByVO,
	}
}

// Result is a completed campaign. It exposes the paper's exhibits without
// leaking the internal scenario machinery; Scenario() opens the trapdoor
// for callers that want the full figure/query surface.
type Result struct {
	scen *core.Scenario
}

// Scenario returns the underlying campaign for figure queries
// (Figure2..Figure6, UsagePlot) beyond the headline exhibits.
func (r *Result) Scenario() *Scenario { return r.scen }

// Milestones evaluates the §7 scorecard.
func (r *Result) Milestones() Milestones {
	return milestonesView(r.scen.ComputeMilestones())
}

// WriteTable1 renders the Table 1 reproduction next to the paper's values.
func (r *Result) WriteTable1(w io.Writer) { r.scen.WriteTable1(w) }

// WriteMilestones renders the §7 scorecard against the paper's targets.
func (r *Result) WriteMilestones(w io.Writer) {
	r.scen.ComputeMilestones().Write(w)
}

// Submitted returns the total jobs handed to the grid across classes.
func (r *Result) Submitted() int { return r.scen.SubmittedTotal() }

// Records returns the number of completed-job records in the ACDC
// warehouse.
func (r *Result) Records() int { return r.scen.Grid.ACDC.Len() }

// EventsProcessed returns the discrete events the engine executed.
func (r *Result) EventsProcessed() uint64 { return r.scen.Grid.Eng.Processed() }

// Trace returns the run's span trace, or nil when the run was executed
// without observability (see WithObservability / WithTracer).
func (r *Result) Trace() *Trace {
	if o := r.scen.Grid.Obs; o != nil {
		return o.Tracer.Trace()
	}
	return nil
}

// Metrics returns the run's final metrics snapshot, or nil when the run was
// executed without observability.
func (r *Result) Metrics() *MetricsSnapshot {
	if o := r.scen.Grid.Obs; o != nil {
		return o.Metrics.Snapshot()
	}
	return nil
}

// DataTBPerDay returns the run's transfer volume in TB per simulated day,
// all VO labels — the §7 "2-3 TB/day" milestone quantity.
func (r *Result) DataTBPerDay() float64 {
	var bytes int64
	for _, v := range r.scen.Grid.Network.BytesByLabel() {
		bytes += v
	}
	days := r.scen.Grid.Eng.Now().Hours() / 24
	if days <= 0 {
		return 0
	}
	return float64(bytes) / float64(1<<40) / days
}

// DataTBPerDayByVO splits DataTBPerDay by VO label — the Figure 5 traffic
// accounting over the whole run rather than the SC2003 window.
func (r *Result) DataTBPerDayByVO() map[string]float64 {
	out := map[string]float64{}
	days := r.scen.Grid.Eng.Now().Hours() / 24
	if days <= 0 {
		return out
	}
	for label, v := range r.scen.Grid.Network.BytesByLabel() {
		out[label] = float64(v) / float64(1<<40) / days
	}
	return out
}

// SweepStat is a min/mean/max summary across a sweep's seeds.
type SweepStat struct {
	Min, Mean, Max float64
}

// StageQuantiles is one lifecycle stage's cross-seed latency summary
// (histogram-merged; quantiles are bucket-interpolated estimates).
type StageQuantiles = campaign.StageQuantiles

// SweepAggregate carries the cross-seed summaries of the headline
// quantities.
type SweepAggregate struct {
	JobsCompleted    SweepStat
	PeakJobs         SweepStat
	Utilization      SweepStat
	DataTBPerDay     SweepStat
	SupportFTEs      SweepStat
	ConcurrentVOSite SweepStat
	EfficiencyByVO   map[string]SweepStat
	// StageLatency maps lifecycle stage (submit, match, run, ...) to its
	// merged latency quantiles; nil unless the sweep ran with
	// WithObservability (or any tracer/metrics sink).
	StageLatency map[string]StageQuantiles
}

// SweepReport is a completed multi-seed campaign sweep.
type SweepReport struct {
	rep *campaign.Report
}

// Report is the common surface of every sweep report (SweepReport,
// ChaosReport, ScaleReport, DataReport): a human-readable rendering and a
// versioned JSON encoding. The JSON carries a "schema" field
// ("grid3.<kind>/<version>"); adding fields is compatible within a version,
// renaming or removing one bumps it.
type Report interface {
	// Write renders the report for humans.
	Write(w io.Writer)
	// JSON returns the report's versioned wire encoding, newline-terminated.
	JSON() ([]byte, error)
}

// Every sweep entry point returns a Report.
var (
	_ Report = (*SweepReport)(nil)
	_ Report = (*ChaosReport)(nil)
	_ Report = (*ScaleReport)(nil)
	_ Report = (*DataReport)(nil)
	_ Report = (*WarmReport)(nil)
	_ Report = (*IngestReport)(nil)
)

// SweepConfig shapes a multi-seed production sweep: the same calibrated
// campaign run once per seed.
type SweepConfig struct {
	// Seeds are the campaign seeds, one full run each.
	Seeds []int64
	// Scale multiplies every class's job count (0 keeps the scenario
	// default; 1.0 reproduces the paper's ~290k-job sample per seed).
	Scale float64
	// Workers caps sweep parallelism (<=0 means GOMAXPROCS).
	Workers int
}

// RunSweep runs the calibrated campaign once per seed, fanned across
// workers (one discrete-event engine per worker, so every seed's run is
// bit-for-bit identical to running it alone). Options apply to every run.
func RunSweep(cfg SweepConfig, opts ...Option) (*SweepReport, error) {
	base := buildConfig(opts)
	runs := make([]campaign.Run, len(cfg.Seeds))
	for i, seed := range cfg.Seeds {
		runs[i] = campaign.Run{Seed: seed, Scale: cfg.Scale, Config: base}
	}
	rep, err := campaign.Sweep(runs, cfg.Workers)
	if err != nil {
		return nil, err
	}
	return &SweepReport{rep: rep}, nil
}

// Sweep is the positional-argument face of RunSweep, kept for callers of
// the original signature.
func Sweep(seeds []int64, scale float64, opts ...Option) (*SweepReport, error) {
	return RunSweep(SweepConfig{Seeds: seeds, Scale: scale}, opts...)
}

// Seeds lists the sweep's seeds in run order.
func (r *SweepReport) Seeds() []int64 {
	out := make([]int64, len(r.rep.Runs))
	for i, res := range r.rep.Runs {
		out[i] = res.Seed
	}
	return out
}

// Elapsed returns the sweep's wall-clock time.
func (r *SweepReport) Elapsed() time.Duration { return r.rep.Elapsed }

// Workers returns how many runs executed concurrently.
func (r *SweepReport) Workers() int { return r.rep.Workers }

// Speedup returns the ratio of summed per-seed runtimes to wall-clock time
// — the parallel efficiency of the sweep. Per-seed runtimes are measured
// while the other workers run, so this is an estimate: oversubscribing the
// CPUs inflates it. For a true speedup, time a workers=1 sweep separately
// (as BenchmarkSweep does).
func (r *SweepReport) Speedup() float64 {
	var serial time.Duration
	for _, res := range r.rep.Runs {
		serial += res.Elapsed
	}
	if r.rep.Elapsed <= 0 {
		return 0
	}
	return float64(serial) / float64(r.rep.Elapsed)
}

// Milestones returns one seed's scorecard.
func (r *SweepReport) Milestones(seed int64) (Milestones, bool) {
	for _, res := range r.rep.Runs {
		if res.Seed == seed {
			return milestonesView(res.Milestones), true
		}
	}
	return Milestones{}, false
}

// Table1Text returns one seed's rendered Table 1, byte-identical to the
// output of a serial run of that seed.
func (r *SweepReport) Table1Text(seed int64) (string, bool) {
	for _, res := range r.rep.Runs {
		if res.Seed == seed {
			return res.Table1Text, true
		}
	}
	return "", false
}

// Aggregate returns the cross-seed min/mean/max summaries.
func (r *SweepReport) Aggregate() SweepAggregate {
	conv := func(s campaign.Stat) SweepStat { return SweepStat(s) }
	agg := SweepAggregate{
		JobsCompleted:    conv(r.rep.Agg.JobsCompleted),
		PeakJobs:         conv(r.rep.Agg.PeakJobs),
		Utilization:      conv(r.rep.Agg.Utilization),
		DataTBPerDay:     conv(r.rep.Agg.DataTBPerDay),
		SupportFTEs:      conv(r.rep.Agg.SupportFTEs),
		ConcurrentVOSite: conv(r.rep.Agg.ConcurrentVO),
		EfficiencyByVO:   map[string]SweepStat{},
	}
	for v, s := range r.rep.Agg.EfficiencyByVO {
		agg.EfficiencyByVO[v] = conv(s)
	}
	if len(r.rep.Agg.StageLatency) > 0 {
		agg.StageLatency = make(map[string]StageQuantiles, len(r.rep.Agg.StageLatency))
		for stage, q := range r.rep.Agg.StageLatency {
			agg.StageLatency[stage] = q
		}
	}
	return agg
}

// Write renders the cross-seed summary report.
func (r *SweepReport) Write(w io.Writer) { r.rep.Write(w) }

// JSON returns the report under the grid3.sweep/1 schema.
func (r *SweepReport) JSON() ([]byte, error) { return r.rep.JSON() }

// Chaos-sweep views: the campaign mode that measures how much goodput the
// closed fault-management loop preserves as failure intensity climbs.
type (
	// ChaosSweepConfig shapes a chaos campaign (seeds × intensities, each
	// point run with and without recovery plus a failure-free reference).
	ChaosSweepConfig = campaign.ChaosSweepConfig
	// ChaosReport is a completed chaos sweep with goodput-retention and
	// MTTD/MTTR curves.
	ChaosReport = campaign.ChaosReport
	// ChaosPoint is one (seed, intensity) measurement.
	ChaosPoint = campaign.ChaosPoint
	// ChaosOutcome is one run's fault-tolerance scorecard.
	ChaosOutcome = campaign.ChaosOutcome
)

// ChaosSweep runs a chaos campaign: for every (seed, intensity) pair, a
// no-reaction baseline and a closed-loop recovery run, scored against each
// seed's failure-free reference. Options apply to every run (the sweep
// overrides the seed, intensity, failure and recovery toggles per run).
func ChaosSweep(cfg ChaosSweepConfig, opts ...Option) (*ChaosReport, error) {
	base := buildConfig(opts)
	cfg.Base = base
	return campaign.ChaosSweep(cfg)
}

// Scale-sweep views: the campaign mode that measures simulation cost as
// the synthetic testbed grows past the historical 27 sites.
type (
	// ScaleSweepConfig shapes a scale campaign (site counts × seeds, run
	// serially so per-point allocation deltas attribute cleanly).
	ScaleSweepConfig = campaign.ScaleSweepConfig
	// ScaleReport is a completed scale sweep.
	ScaleReport = campaign.ScaleReport
	// ScalePoint is one (sites, seed) measurement.
	ScalePoint = campaign.ScalePoint
)

// ScaleSweep measures wall time, event throughput, and allocation volume
// across testbed sizes. Options apply to every point (the sweep overrides
// the seed and site count per point).
func ScaleSweep(cfg ScaleSweepConfig, opts ...Option) (*ScaleReport, error) {
	cfg.Base = buildConfig(opts)
	return campaign.ScaleSweep(cfg)
}

// Ingest-sweep views: the campaign mode that measures the monitoring-
// ingestion pipeline — a deterministic synthetic metric stream pushed
// through the repository at several batch sizes against the per-event
// baseline — and audit-verifies a batched scenario's usage ledger.
type (
	// IngestSweepConfig shapes an ingestion campaign (batch sizes ×
	// synthetic stream, plus the audit-verification scenario leg).
	IngestSweepConfig = campaign.IngestSweepConfig
	// IngestReport is a completed ingestion campaign with the events/s
	// evidence the bench floor gates.
	IngestReport = campaign.IngestReport
	// IngestPoint is one batch-size measurement.
	IngestPoint = campaign.IngestPoint
)

// IngestSweep measures monitoring-ingestion throughput and allocation
// volume per batch size, then audit-verifies every (window, VO) usage
// proof of a small batched scenario. Options apply to the audit leg (the
// sweep overrides its seed, sites, horizon, scale, and ingest toggles).
func IngestSweep(cfg IngestSweepConfig, opts ...Option) (*IngestReport, error) {
	cfg.Base = buildConfig(opts)
	return campaign.IngestSweep(cfg)
}

// Data-sweep views: the campaign mode that scores the data plane — raw
// GridFTP baseline against the managed plane (SRM lifecycle, transfer
// doors, load-ranked replicas) — per seed.
type (
	// DataSweepConfig shapes a data campaign (seeds, horizon, door count).
	DataSweepConfig = campaign.DataSweepConfig
	// DataReport is a completed data sweep with the TB/day evidence.
	DataReport = campaign.DataReport
	// DataPoint is one seed's baseline/managed pair.
	DataPoint = campaign.DataPoint
	// DataOutcome is one run's data-plane scorecard.
	DataOutcome = campaign.DataOutcome
)

// DataSweep runs a data-plane campaign: for every seed, a raw-GridFTP
// baseline and a managed run, scored on TB/day, WAN queueing, and SRM
// lifecycle activity. Options apply to every run (the sweep overrides the
// seed, horizon, and data-plane toggles per run).
func DataSweep(cfg DataSweepConfig, opts ...Option) (*DataReport, error) {
	cfg.Base = buildConfig(opts)
	return campaign.DataSweep(cfg)
}

// Checkpoint/restore views: durable snapshots behind a pluggable state
// store. A snapshot records the resolved configuration, the sim time, and a
// digest of the complete deterministic state; Restore rebuilds the scenario
// by replaying the recorded configuration to the recorded time and verifies
// the digest, so a restored run continues byte-identically — or fails
// loudly, never loading partial state.
type (
	// Snapshot is one captured state record (see Checkpoint, Restore).
	Snapshot = checkpoint.Snapshot
	// StateStore is the pluggable persistence boundary for snapshots.
	StateStore = checkpoint.StateStore
	// RestoreOverrides whitelists what a restore may change relative to the
	// recorded configuration (shards, extended horizon, fresh sinks,
	// re-armed checkpointing); the option-based Restore covers the common
	// cases.
	RestoreOverrides = core.RestoreOverrides
)

// Snapshot-integrity errors, for errors.Is against Restore failures.
var (
	// ErrSnapshotCorrupt reports a snapshot that failed structural
	// validation (bad framing, checksum, config schema, journal order).
	ErrSnapshotCorrupt = checkpoint.ErrCorrupt
	// ErrDigestMismatch reports a replay that did not land on the recorded
	// state digest; the partially-built scenario is torn down.
	ErrDigestMismatch = checkpoint.ErrDigest
	// ErrSnapshotNotFound reports an unknown snapshot ID or an empty store.
	ErrSnapshotNotFound = checkpoint.ErrNotFound
)

// NewMemStore returns an in-memory StateStore (tests, single-process use).
func NewMemStore() *checkpoint.MemStore { return checkpoint.NewMemStore() }

// NewDirStore opens (creating if needed) a durable directory-backed
// StateStore: one file per snapshot, atomically committed via temp-file +
// rename, listed in chronological order.
func NewDirStore(dir string) (StateStore, error) { return checkpoint.NewDirStore(dir) }

// NewFileStore returns a single-file StateStore holding at most one
// snapshot — the grid3sim -checkpoint-out / -restore convention.
func NewFileStore(path string) StateStore { return checkpoint.NewFileStore(path) }

// Checkpoint captures a batch-scope snapshot of a running scenario (see
// NewScenario for incremental execution, or WithCheckpointAt for capture at
// preset times during Run).
func Checkpoint(s *Scenario) (*Snapshot, error) { return s.Checkpoint() }

// Restore rebuilds a scenario from a snapshot by verified deterministic
// replay. Options express the restore-time overrides — only the whitelisted
// subset applies (WithShards, an extended WithHorizon, fresh
// WithTracer/WithMetricsSink sinks, WithCheckpointAt re-arming, and
// WithRealTime); every other option is ignored, because changing workload,
// seed, or feature flags would diverge the replay from the checkpointed
// state. Callers needing the raw whitelist can use core's RestoreOverrides
// through the RestoreOverrides alias and RestoreWith.
func Restore(snap *Snapshot, opts ...Option) (*Scenario, error) {
	cfg := buildConfig(opts)
	return RestoreWith(snap, RestoreOverrides{
		Shards:          cfg.Config.Shards,
		Horizon:         cfg.Horizon,
		TraceSinks:      cfg.TraceSinks,
		MetricsSinks:    cfg.MetricsSinks,
		CheckpointAt:    cfg.CheckpointAt,
		CheckpointStore: cfg.CheckpointStore,
		RealTimePace:    cfg.RealTimePace,
	})
}

// RestoreWith is Restore with the override struct spelled out.
func RestoreWith(snap *Snapshot, ov RestoreOverrides) (*Scenario, error) {
	return core.RestoreScenario(snap, ov)
}

// EncodeSnapshot serializes a snapshot into the versioned binary format
// (magic, version, checksummed); DecodeSnapshot is its inverse and rejects
// corrupt, truncated, or version-skewed records with ErrSnapshotCorrupt-
// family errors, never a partial result.
func EncodeSnapshot(snap *Snapshot) []byte { return checkpoint.Encode(snap) }

// DecodeSnapshot parses a snapshot record produced by EncodeSnapshot.
func DecodeSnapshot(data []byte) (*Snapshot, error) { return checkpoint.Decode(data) }

// SaveSnapshot commits a snapshot to a store and returns its ID.
func SaveSnapshot(st StateStore, snap *Snapshot) (string, error) {
	return checkpoint.Save(st, snap)
}

// LatestSnapshot loads the most recent snapshot in a store (ID order is
// chronological); ErrSnapshotNotFound when the store is empty.
func LatestSnapshot(st StateStore) (*Snapshot, string, error) {
	return checkpoint.Latest(st)
}

// Warm-start views: the campaign mode that forks one checkpointed steady
// state into N variants — shared verified warmup, divergent futures.
type (
	// WarmStartConfig shapes a warm-start campaign (snapshot × variants).
	WarmStartConfig = campaign.WarmStartConfig
	// WarmVariant is one fork: an optional forward failure seed, an
	// optional extended horizon, an optional shard override.
	WarmVariant = campaign.WarmVariant
	// WarmReport is a completed warm-start campaign.
	WarmReport = campaign.WarmReport
	// WarmResult is one variant's outcome.
	WarmResult = campaign.WarmResult
)

// WarmStart restores the snapshot once per variant (each restore is
// digest-verified independently) and runs every fork in parallel — error
// bars over the tail of a campaign without paying for N full warmups.
func WarmStart(cfg WarmStartConfig) (*WarmReport, error) {
	return campaign.WarmStart(cfg)
}

// Service views: the grid as a long-running daemon. Serve assembles a
// scenario and runs it continuously in scaled real time (see WithRealTime)
// behind a thread-safe ingress boundary; Handler exposes the paper's
// user-facing surfaces — VOMS enrollment, Condor-G submission and status,
// RLS lookup, MonALISA/ACDC/metrics monitoring, site catalog, iGOC tickets
// — as an HTTP/JSON API.
type (
	// Server runs one scenario continuously behind the ingress boundary.
	// Call Start to begin paced execution, Do to touch grid state safely,
	// and Stop for a clean shutdown.
	Server = serve.Service
	// ServerStatus is a point-in-time daemon snapshot (see Server.StatusNow).
	ServerStatus = serve.Status
)

// ErrOverloaded reports that the service's ingress mailbox was full and the
// request was shed before touching the engine (HTTP 503 at the API).
var ErrOverloaded = serve.ErrOverloaded

// Serve assembles a scenario from the options and wraps it in a Server.
// The server is not started; callers control the lifecycle:
//
//	s, err := grid3.Serve(grid3.WithSeed(1), grid3.WithRealTime(3600))
//	s.Start()
//	defer s.Stop()
//	http.ListenAndServe(addr, grid3.Handler(s))
func Serve(opts ...Option) (*Server, error) {
	return serve.New(serve.Config{Scenario: buildConfig(opts)})
}

// ServeFrom warm-boots a Server from a snapshot: a serve-scope snapshot
// (Server.Snapshot) restores the job table too by replaying the recorded
// API journal; a batch-scope snapshot (grid3sim -checkpoint-out,
// Checkpoint) restores the grid state with an empty job table. Options are
// limited to the restore whitelist, exactly as in Restore.
func ServeFrom(snap *Snapshot, opts ...Option) (*Server, error) {
	cfg := buildConfig(opts)
	return serve.New(serve.Config{
		Scenario: cfg,
		Pace:     cfg.RealTimePace,
		Restore:  snap,
		RestoreOverrides: RestoreOverrides{
			Shards:          cfg.Config.Shards,
			Horizon:         cfg.Horizon,
			TraceSinks:      cfg.TraceSinks,
			MetricsSinks:    cfg.MetricsSinks,
			CheckpointAt:    cfg.CheckpointAt,
			CheckpointStore: cfg.CheckpointStore,
			RealTimePace:    cfg.RealTimePace,
		},
	})
}

// Handler returns the HTTP/JSON API for a server: GET /healthz,
// /api/v1/status, VO enrollment and membership, job submission and status,
// RLS replica lookup, monitoring reads, the site catalog, and iGOC
// tickets. Overload at the ingress boundary surfaces as 503.
func Handler(s *Server) http.Handler {
	return serve.NewHandler(s, serve.HandlerConfig{})
}
