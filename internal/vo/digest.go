package vo

import "grid3/internal/checkpoint"

// HashState folds the server's membership roster into h in sorted-DN order.
func (v *VOMS) HashState(h *checkpoint.Hasher) {
	h.String(v.vo)
	h.Int(int64(len(v.members)))
	for _, dn := range v.Members() {
		m := v.members[dn]
		h.String(m.DN)
		h.String(m.Name)
		h.Int(int64(len(m.Roles)))
		for _, r := range m.Roles {
			h.String(string(r))
		}
	}
}

// HashState folds every registered VOMS server into h in sorted-VO order.
func (r *Registry) HashState(h *checkpoint.Hasher) {
	vos := r.VOs()
	h.Int(int64(len(vos)))
	for _, name := range vos {
		r.servers[name].HashState(h)
	}
}
