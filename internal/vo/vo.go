// Package vo implements virtual organizations and the EDG-style Virtual
// Organization Management System (VOMS) used by Grid3 (§5.3).
//
// Six VOs were configured on Grid3 — US-ATLAS, US-CMS, SDSS, LIGO, BTeV and
// iVDGL — each running a VOMS server that is the authority on its
// membership. Sites periodically regenerate their grid-mapfiles by querying
// every VO's VOMS server (the edg-mkgridmap path), mapping each member DN to
// the site's per-VO Unix group account.
package vo

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"grid3/internal/gsi"
)

// The six Grid3 virtual organizations plus the Exerciser pseudo-class used
// by the Condor backfill demonstrator in Table 1.
const (
	USATLAS   = "usatlas"
	USCMS     = "uscms"
	SDSS      = "sdss"
	LIGO      = "ligo"
	BTeV      = "btev"
	IVDGL     = "ivdgl"
	Exerciser = "exerciser"
)

// Grid3VOs lists the VOs configured on Grid3 in Table 1 column order.
var Grid3VOs = []string{BTeV, IVDGL, LIGO, SDSS, USATLAS, USCMS, Exerciser}

// Errors returned by membership operations.
var (
	ErrNotMember     = errors.New("vo: DN is not a member")
	ErrDuplicate     = errors.New("vo: DN already a member")
	ErrBadAssertion  = errors.New("vo: attribute assertion invalid")
	ErrUnknownServer = errors.New("vo: unknown VOMS server")
)

// Role is a VOMS role within a VO group, e.g. production manager.
type Role string

// Roles used across the Grid3 application frameworks.
const (
	RoleMember     Role = "member"
	RoleProduction Role = "production" // application administrators (~10% of users ran most jobs)
	RoleSoftware   Role = "software"   // may install application packages
	RoleAdmin      Role = "admin"
)

// Member is one VO member record.
type Member struct {
	DN    string
	Name  string
	Roles []Role
}

// HasRole reports whether the member holds the role. Every member implicitly
// holds RoleMember.
func (m *Member) HasRole(r Role) bool {
	if r == RoleMember {
		return true
	}
	for _, have := range m.Roles {
		if have == r {
			return true
		}
	}
	return false
}

// VOMS is a VO's membership server. It signs attribute assertions with its
// own service credential so relying parties can verify membership claims
// offline.
type VOMS struct {
	vo      string
	cred    *gsi.Credential
	members map[string]*Member
}

// NewVOMS creates the membership server for a VO with the given service
// credential (issued by the grid CA).
func NewVOMS(voName string, cred *gsi.Credential) *VOMS {
	return &VOMS{vo: voName, cred: cred, members: make(map[string]*Member)}
}

// VO returns the VO name this server is authoritative for.
func (v *VOMS) VO() string { return v.vo }

// Certificate returns the VOMS service certificate, distributed to relying
// parties for assertion verification.
func (v *VOMS) Certificate() *gsi.Certificate { return v.cred.Cert }

// Add registers a member. The DN is normalized (proxies stripped).
func (v *VOMS) Add(dn, name string, roles ...Role) error {
	dn = gsi.StripProxy(dn)
	if _, ok := v.members[dn]; ok {
		return fmt.Errorf("%w: %s in %s", ErrDuplicate, dn, v.vo)
	}
	v.members[dn] = &Member{DN: dn, Name: name, Roles: roles}
	return nil
}

// Remove deletes a member.
func (v *VOMS) Remove(dn string) error {
	dn = gsi.StripProxy(dn)
	if _, ok := v.members[dn]; !ok {
		return fmt.Errorf("%w: %s in %s", ErrNotMember, dn, v.vo)
	}
	delete(v.members, dn)
	return nil
}

// Lookup returns the member record for a DN.
func (v *VOMS) Lookup(dn string) (*Member, error) {
	m, ok := v.members[gsi.StripProxy(dn)]
	if !ok {
		return nil, fmt.Errorf("%w: %s in %s", ErrNotMember, dn, v.vo)
	}
	return m, nil
}

// Members returns all member DNs, sorted — the edg-mkgridmap query.
func (v *VOMS) Members() []string {
	out := make([]string, 0, len(v.members))
	for dn := range v.members {
		out = append(out, dn)
	}
	sort.Strings(out)
	return out
}

// Len returns the membership count (the paper's "number of users" metric
// counts DNs authorized through VOMS; Grid3 reached 102 against a target
// of 10).
func (v *VOMS) Len() int { return len(v.members) }

// Assertion is a signed VOMS attribute certificate binding a member DN to
// its VO and roles for a bounded validity window.
type Assertion struct {
	VO        string
	DN        string
	Roles     []Role
	NotBefore time.Time
	NotAfter  time.Time
	Signature []byte
}

func (a *Assertion) payload() []byte {
	parts := make([]string, 0, len(a.Roles))
	for _, r := range a.Roles {
		parts = append(parts, string(r))
	}
	return []byte(strings.Join([]string{
		a.VO, a.DN, strings.Join(parts, ","),
		a.NotBefore.UTC().Format(time.RFC3339Nano),
		a.NotAfter.UTC().Format(time.RFC3339Nano),
	}, "|"))
}

// Assert issues a signed membership assertion for dn, valid for lifetime.
func (v *VOMS) Assert(dn string, now time.Time, lifetime time.Duration) (*Assertion, error) {
	m, err := v.Lookup(dn)
	if err != nil {
		return nil, err
	}
	a := &Assertion{
		VO:        v.vo,
		DN:        m.DN,
		Roles:     append([]Role{RoleMember}, m.Roles...),
		NotBefore: now,
		NotAfter:  now.Add(lifetime),
	}
	a.Signature = ed25519.Sign(v.cred.Key, a.payload())
	return a, nil
}

// VerifyAssertion checks an assertion against the issuing server's
// certificate and the current time.
func VerifyAssertion(a *Assertion, serverCert *gsi.Certificate, now time.Time) error {
	if now.Before(a.NotBefore) || now.After(a.NotAfter) {
		return fmt.Errorf("%w: outside validity", ErrBadAssertion)
	}
	if !ed25519.Verify(serverCert.PublicKey, a.payload(), a.Signature) {
		return fmt.Errorf("%w: bad signature", ErrBadAssertion)
	}
	return nil
}

// Registry is the set of VOMS servers a site knows about, used both for
// gridmap generation and for job authorization.
type Registry struct {
	servers map[string]*VOMS
}

// NewRegistry builds a registry over the given servers.
func NewRegistry(servers ...*VOMS) *Registry {
	r := &Registry{servers: make(map[string]*VOMS, len(servers))}
	for _, s := range servers {
		r.servers[s.VO()] = s
	}
	return r
}

// Add registers another VOMS server.
func (r *Registry) Add(s *VOMS) { r.servers[s.VO()] = s }

// Server returns the VOMS server for a VO.
func (r *Registry) Server(vo string) (*VOMS, error) {
	s, ok := r.servers[vo]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownServer, vo)
	}
	return s, nil
}

// VOs returns the registered VO names, sorted.
func (r *Registry) VOs() []string {
	out := make([]string, 0, len(r.servers))
	for vo := range r.servers {
		out = append(out, vo)
	}
	sort.Strings(out)
	return out
}

// VOOf returns the VO a DN belongs to. If the DN is a member of several VOs
// the lexically first VO wins, matching the deterministic order in which
// edg-mkgridmap processed its configuration blocks.
func (r *Registry) VOOf(dn string) (string, error) {
	for _, vo := range r.VOs() {
		if _, err := r.servers[vo].Lookup(dn); err == nil {
			return vo, nil
		}
	}
	return "", fmt.Errorf("%w: %s in any VO", ErrNotMember, dn)
}

// TotalUsers counts distinct member DNs across all VOs — the §7 "number of
// users" milestone.
func (r *Registry) TotalUsers() int {
	seen := make(map[string]bool)
	for _, s := range r.servers {
		for _, dn := range s.Members() {
			seen[dn] = true
		}
	}
	return len(seen)
}

// GenerateGridmap builds a site grid-mapfile by querying every VOMS server,
// mapping each member to the site's group account for that VO (§5.3). VOs
// missing from accounts are skipped: a site only supports the VOs it has
// created group accounts for.
func (r *Registry) GenerateGridmap(accounts map[string]string) *gsi.Gridmap {
	m := gsi.NewGridmap()
	for _, vo := range r.VOs() {
		acct, ok := accounts[vo]
		if !ok {
			continue
		}
		for _, dn := range r.servers[vo].Members() {
			if _, already := m.Lookup(dn); already == nil {
				continue // first VO wins, matching VOOf
			}
			m.Map(dn, acct)
		}
	}
	return m
}
