package vo

import (
	"testing"
	"time"

	"grid3/internal/gsi"
)

var t0 = time.Date(2003, time.October, 23, 0, 0, 0, 0, time.UTC)

func newVOMS(t *testing.T, name string) (*VOMS, *gsi.CA) {
	t.Helper()
	ca, err := gsi.NewCA("/CN=Grid3 CA", t0, 10*365*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cred, err := ca.Issue("/CN=voms/"+name+".grid3.org", t0, 365*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return NewVOMS(name, cred), ca
}

func TestMembership(t *testing.T) {
	v, _ := newVOMS(t, USATLAS)
	if err := v.Add("/CN=Jane", "Jane", RoleProduction); err != nil {
		t.Fatal(err)
	}
	if err := v.Add("/CN=Jane", "Jane again"); err == nil {
		t.Fatal("duplicate add succeeded")
	}
	m, err := v.Lookup("/CN=Jane/CN=proxy")
	if err != nil {
		t.Fatal(err)
	}
	if !m.HasRole(RoleProduction) || !m.HasRole(RoleMember) {
		t.Fatal("roles not reported")
	}
	if m.HasRole(RoleAdmin) {
		t.Fatal("phantom role")
	}
	if err := v.Remove("/CN=Jane"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Lookup("/CN=Jane"); err == nil {
		t.Fatal("removed member still found")
	}
	if err := v.Remove("/CN=Jane"); err == nil {
		t.Fatal("double remove succeeded")
	}
}

func TestAssertionVerify(t *testing.T) {
	v, _ := newVOMS(t, USCMS)
	if err := v.Add("/CN=Bob", "Bob", RoleSoftware); err != nil {
		t.Fatal(err)
	}
	a, err := v.Assert("/CN=Bob", t0, 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAssertion(a, v.Certificate(), t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := VerifyAssertion(a, v.Certificate(), t0.Add(13*time.Hour)); err == nil {
		t.Fatal("expired assertion verified")
	}
	a.VO = "forged"
	if err := VerifyAssertion(a, v.Certificate(), t0.Add(time.Hour)); err == nil {
		t.Fatal("tampered assertion verified")
	}
}

func TestAssertNonMember(t *testing.T) {
	v, _ := newVOMS(t, SDSS)
	if _, err := v.Assert("/CN=stranger", t0, time.Hour); err == nil {
		t.Fatal("assertion issued for non-member")
	}
}

func TestRegistryVOOf(t *testing.T) {
	atlas, _ := newVOMS(t, USATLAS)
	cms, _ := newVOMS(t, USCMS)
	atlas.Add("/CN=a1", "a1")
	cms.Add("/CN=c1", "c1")
	// dual membership: lexically first VO wins
	atlas.Add("/CN=dual", "dual")
	cms.Add("/CN=dual", "dual")
	r := NewRegistry(atlas, cms)
	vo, err := r.VOOf("/CN=a1")
	if err != nil || vo != USATLAS {
		t.Fatalf("VOOf a1 = %q, %v", vo, err)
	}
	vo, err = r.VOOf("/CN=dual")
	if err != nil || vo != USATLAS {
		t.Fatalf("VOOf dual = %q, want usatlas (lexically first)", vo)
	}
	if _, err := r.VOOf("/CN=nobody"); err == nil {
		t.Fatal("VOOf of stranger succeeded")
	}
}

func TestRegistryTotalUsers(t *testing.T) {
	atlas, _ := newVOMS(t, USATLAS)
	cms, _ := newVOMS(t, USCMS)
	atlas.Add("/CN=a", "a")
	atlas.Add("/CN=both", "b")
	cms.Add("/CN=both", "b")
	cms.Add("/CN=c", "c")
	r := NewRegistry(atlas, cms)
	if n := r.TotalUsers(); n != 3 {
		t.Fatalf("TotalUsers = %d, want 3 (dedup across VOs)", n)
	}
}

func TestGenerateGridmap(t *testing.T) {
	atlas, _ := newVOMS(t, USATLAS)
	ligo, _ := newVOMS(t, LIGO)
	atlas.Add("/CN=a1", "a1")
	atlas.Add("/CN=a2", "a2")
	ligo.Add("/CN=l1", "l1")
	ligo.Add("/CN=dual", "d")
	atlas.Add("/CN=dual", "d")
	r := NewRegistry(atlas, ligo)

	// Site supports ATLAS only: LIGO members must not appear.
	m := r.GenerateGridmap(map[string]string{USATLAS: "grp_usatlas"})
	if m.Len() != 3 {
		t.Fatalf("gridmap len = %d, want 3", m.Len())
	}
	if _, err := m.Lookup("/CN=l1"); err == nil {
		t.Fatal("LIGO member mapped at ATLAS-only site")
	}

	// Site supports both: dual member maps to the lexically-first VO's
	// account, consistent with Registry.VOOf.
	m = r.GenerateGridmap(map[string]string{USATLAS: "grp_usatlas", LIGO: "grp_ligo"})
	acct, err := m.Lookup("/CN=dual")
	if err != nil {
		t.Fatal(err)
	}
	if want := "grp_ligo"; acct != want {
		// ligo < usatlas lexically, so LIGO processes first and wins.
		t.Fatalf("dual account = %q, want %q", acct, want)
	}
	vo, _ := r.VOOf("/CN=dual")
	if got, _ := m.Lookup("/CN=dual"); got != "grp_"+vo {
		t.Fatalf("gridmap (%s) disagrees with VOOf (%s)", got, vo)
	}
}

func TestServerLookup(t *testing.T) {
	atlas, _ := newVOMS(t, USATLAS)
	r := NewRegistry(atlas)
	if _, err := r.Server(USATLAS); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Server("nonexistent"); err == nil {
		t.Fatal("unknown server lookup succeeded")
	}
	cms, _ := newVOMS(t, USCMS)
	r.Add(cms)
	if got := r.VOs(); len(got) != 2 || got[0] != USATLAS || got[1] != USCMS {
		t.Fatalf("VOs = %v", got)
	}
}

func TestGrid3VOList(t *testing.T) {
	if len(Grid3VOs) != 7 {
		t.Fatalf("Grid3VOs has %d classes, want the 7 Table 1 columns", len(Grid3VOs))
	}
}
