// Package monalisa implements the MonALISA agent-based monitoring
// framework as used on Grid3 (§5.2): per-site station servers hosting
// monitoring agents (GRAM-log watchers, queue probes, Ganglia bridges),
// a central repository aggregating every station's stream into round-robin
// storage, and subscription-based consumers.
//
// "MonALISA provides access to monitoring data provided by a variety of
// information providers, including agents which monitored the GRAM
// logfiles, job queues, and Ganglia metrics. ... The MonALISA central
// repository collects its information in a central server at the iGOC,
// storing it in a round robin-like database."
package monalisa

import (
	"fmt"
	"sort"
	"time"

	"grid3/internal/rrd"
	"grid3/internal/sim"
)

// Metric is one monitored tuple: (farm, cluster, parameter) → value, the
// MonALISA naming scheme where "farm" is the site.
type Metric struct {
	Farm  string
	Param string
	Time  time.Duration
	Value float64
}

// Key renders the series identity.
func (m Metric) Key() string { return m.Farm + "/" + m.Param }

// Agent produces metrics when polled. VO-specific agents (jobs run per VO,
// compute element usage, I/O) implement this.
type Agent interface {
	// Collect returns current metric values; Farm and Time are filled in
	// by the station server.
	Collect() []Metric
}

// AgentFunc adapts a closure.
type AgentFunc func() []Metric

// Collect implements Agent.
func (f AgentFunc) Collect() []Metric { return f() }

// GaugeAgent monitors one named parameter via a closure.
func GaugeAgent(param string, fn func() float64) Agent {
	return AgentFunc(func() []Metric {
		return []Metric{{Param: param, Value: fn()}}
	})
}

// Station is a site's MonALISA server: it polls local agents on an
// interval and forwards to subscribers (normally the central repository,
// plus any site-local clients).
type Station struct {
	eng    sim.Scheduler
	farm   string
	agents []Agent
	sinks  []func(Metric)
	ticker *sim.Ticker
}

// NewStation creates a station server for a farm (site), polling at the
// given interval.
func NewStation(eng sim.Scheduler, farm string, interval time.Duration) *Station {
	s := &Station{eng: eng, farm: farm}
	s.ticker = sim.NewTicker(eng, interval, s.poll)
	return s
}

// Farm returns the station's site name.
func (s *Station) Farm() string { return s.farm }

// AddAgent registers a local monitoring agent.
func (s *Station) AddAgent(a Agent) { s.agents = append(s.agents, a) }

// Forward adds a metric sink (repository, filter, or client).
func (s *Station) Forward(sink func(Metric)) { s.sinks = append(s.sinks, sink) }

// Stop halts polling.
func (s *Station) Stop() { s.ticker.Stop() }

func (s *Station) poll() {
	now := s.eng.Now()
	for _, a := range s.agents {
		for _, m := range a.Collect() {
			m.Farm = s.farm
			m.Time = now
			for _, sink := range s.sinks {
				sink(m)
			}
		}
	}
}

// Filter is an intermediary: it transforms or drops metrics before
// forwarding (§5.2 "intermediaries have both roles, sometimes providing
// aggregation or filtering functions").
func Filter(pred func(Metric) bool, next func(Metric)) func(Metric) {
	return func(m Metric) {
		if pred(m) {
			next(m)
		}
	}
}

// Scale is an intermediary multiplying values (e.g. unit conversion).
func Scale(factor float64, next func(Metric)) func(Metric) {
	return func(m Metric) {
		m.Value *= factor
		next(m)
	}
}

// Repository is the iGOC central store: per-series round-robin history
// plus live subscriptions.
type Repository struct {
	clock  sim.Clock
	series map[string]*rrd.Database
	last   map[string]Metric
	specs  []rrd.ArchiveSpec
	subs   []subscription

	// PreRead, when set, runs before every read (Last, Series, History,
	// FarmTotal). The ingest batcher hooks its Drain here so staged
	// batches commit before any consumer looks — readers observe exactly
	// the state per-event delivery would have produced.
	PreRead func()
}

type subscription struct {
	pred func(Metric) bool
	fn   func(Metric)
}

// DefaultArchives matches the Grid3 repository: 5-minute detail for two
// days and hourly history long enough to span the full scenario.
var DefaultArchives = []rrd.ArchiveSpec{
	{Step: 5 * time.Minute, Rows: 576, CF: rrd.Average},
	{Step: time.Hour, Rows: 4800, CF: rrd.Average},
}

// NewRepository creates an empty central repository.
func NewRepository(clock sim.Clock) *Repository {
	return &Repository{
		clock:  clock,
		series: make(map[string]*rrd.Database),
		last:   make(map[string]Metric),
		specs:  DefaultArchives,
	}
}

// Ingest stores a metric; use it as a Station sink.
func (r *Repository) Ingest(m Metric) {
	key := m.Key()
	db, ok := r.series[key]
	if !ok {
		db = rrd.MustNew(r.specs...)
		r.series[key] = db
	}
	// Late-arriving samples from a slow station are dropped rather than
	// corrupting the ring (RRD semantics).
	_ = db.Update(m.Time, m.Value)
	r.last[key] = m
	for _, sub := range r.subs {
		if sub.pred == nil || sub.pred(m) {
			sub.fn(m)
		}
	}
}

// IngestBatch commits a batch in arrival order: the grouped equivalent
// of calling Ingest per metric (same writes, same subscription fan-out
// order), with the per-event series lookup amortized across runs of
// same-key metrics — stations emit their gauges back-to-back, so the
// memo hits most of the time.
func (r *Repository) IngestBatch(ms []Metric) {
	var lastKey string
	var lastDB *rrd.Database
	for i := range ms {
		m := ms[i]
		key := m.Key()
		if lastDB == nil || key != lastKey {
			db, ok := r.series[key]
			if !ok {
				db = rrd.MustNew(r.specs...)
				r.series[key] = db
			}
			lastKey, lastDB = key, db
		}
		_ = lastDB.Update(m.Time, m.Value)
		r.last[key] = m
		for _, sub := range r.subs {
			if sub.pred == nil || sub.pred(m) {
				sub.fn(m)
			}
		}
	}
}

// preRead runs the read barrier, if any.
func (r *Repository) preRead() {
	if r.PreRead != nil {
		r.PreRead()
	}
}

// Subscribe attaches a live consumer; pred nil means all metrics.
func (r *Repository) Subscribe(pred func(Metric) bool, fn func(Metric)) {
	r.subs = append(r.subs, subscription{pred: pred, fn: fn})
}

// Last returns the latest sample of a series.
func (r *Repository) Last(farm, param string) (Metric, bool) {
	r.preRead()
	m, ok := r.last[farm+"/"+param]
	return m, ok
}

// Series lists known series keys, sorted.
func (r *Repository) Series() []string {
	r.preRead()
	out := make([]string, 0, len(r.series))
	for k := range r.series {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// History fetches consolidated points for one series from archive idx.
func (r *Repository) History(farm, param string, idx int, from, to time.Duration) ([]rrd.Point, error) {
	r.preRead()
	db, ok := r.series[farm+"/"+param]
	if !ok {
		return nil, fmt.Errorf("monalisa: no series %s/%s", farm, param)
	}
	db.FlushTo(r.clock.Now())
	return db.Fetch(idx, from, to)
}

// FarmTotal sums the latest values of one parameter across all farms — the
// repository's grid-wide aggregate view.
func (r *Repository) FarmTotal(param string) float64 {
	r.preRead()
	t := 0.0
	for _, m := range r.last {
		if m.Param == param {
			t += m.Value
		}
	}
	return t
}
