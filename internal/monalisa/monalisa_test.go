package monalisa

import (
	"testing"
	"time"

	"grid3/internal/sim"
)

func TestStationPollsAgentsIntoRepository(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	repo := NewRepository(eng)
	st := NewStation(eng, "UC_ATLAS_Tier2", 5*time.Minute)
	running := 12.0
	st.AddAgent(GaugeAgent("grid3.jobs.running", func() float64 { return running }))
	st.Forward(repo.Ingest)
	eng.RunUntil(time.Hour)
	m, ok := repo.Last("UC_ATLAS_Tier2", "grid3.jobs.running")
	if !ok || m.Value != 12 {
		t.Fatalf("last = %+v, %v", m, ok)
	}
	series := repo.Series()
	if len(series) != 1 || series[0] != "UC_ATLAS_Tier2/grid3.jobs.running" {
		t.Fatalf("series = %v", series)
	}
}

func TestRepositoryHistory(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	repo := NewRepository(eng)
	st := NewStation(eng, "farm", 5*time.Minute)
	v := 1.0
	st.AddAgent(GaugeAgent("p", func() float64 { return v }))
	st.Forward(repo.Ingest)
	eng.RunUntil(time.Hour)
	v = 5
	eng.RunUntil(2 * time.Hour)
	pts, err := repo.History("farm", "p", 0, 0, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// The bucket ending at the first tick is empty (NaN); check the next.
	if len(pts) < 20 || pts[1].Value != 1 || pts[len(pts)-1].Value != 5 {
		t.Fatalf("history = %d points, ends %v", len(pts), pts[len(pts)-1])
	}
	if _, err := repo.History("farm", "nope", 0, 0, time.Hour); err == nil {
		t.Fatal("missing series history succeeded")
	}
}

func TestMultiAgentStation(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	repo := NewRepository(eng)
	st := NewStation(eng, "farm", time.Minute)
	st.AddAgent(AgentFunc(func() []Metric {
		return []Metric{
			{Param: "vo.usatlas.jobs", Value: 3},
			{Param: "vo.uscms.jobs", Value: 7},
		}
	}))
	st.AddAgent(GaugeAgent("gram.load", func() float64 { return 2.25 }))
	st.Forward(repo.Ingest)
	eng.RunUntil(5 * time.Minute)
	if len(repo.Series()) != 3 {
		t.Fatalf("series = %v", repo.Series())
	}
	if m, _ := repo.Last("farm", "vo.uscms.jobs"); m.Value != 7 {
		t.Fatalf("uscms jobs = %v", m.Value)
	}
}

func TestFilterAndScaleIntermediaries(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	repo := NewRepository(eng)
	st := NewStation(eng, "farm", time.Minute)
	st.AddAgent(AgentFunc(func() []Metric {
		return []Metric{
			{Param: "keep.bytes", Value: 1024},
			{Param: "drop.this", Value: 1},
		}
	}))
	// Chain: keep only "keep.*", convert bytes to KiB, then ingest.
	st.Forward(Filter(
		func(m Metric) bool { return m.Param == "keep.bytes" },
		Scale(1.0/1024, repo.Ingest),
	))
	eng.RunUntil(5 * time.Minute)
	if len(repo.Series()) != 1 {
		t.Fatalf("filter leaked: %v", repo.Series())
	}
	if m, _ := repo.Last("farm", "keep.bytes"); m.Value != 1 {
		t.Fatalf("scale wrong: %v", m.Value)
	}
}

func TestSubscriptions(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	repo := NewRepository(eng)
	var all, filtered int
	repo.Subscribe(nil, func(Metric) { all++ })
	repo.Subscribe(func(m Metric) bool { return m.Farm == "bnl" }, func(Metric) { filtered++ })
	repo.Ingest(Metric{Farm: "bnl", Param: "x", Time: time.Second, Value: 1})
	repo.Ingest(Metric{Farm: "uc", Param: "x", Time: 2 * time.Second, Value: 1})
	if all != 2 || filtered != 1 {
		t.Fatalf("subs: all=%d filtered=%d", all, filtered)
	}
}

func TestFarmTotal(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	repo := NewRepository(eng)
	repo.Ingest(Metric{Farm: "a", Param: "jobs", Time: time.Second, Value: 10})
	repo.Ingest(Metric{Farm: "b", Param: "jobs", Time: time.Second, Value: 20})
	repo.Ingest(Metric{Farm: "a", Param: "other", Time: time.Second, Value: 99})
	if got := repo.FarmTotal("jobs"); got != 30 {
		t.Fatalf("FarmTotal = %v", got)
	}
}

func TestStationStop(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	st := NewStation(eng, "farm", time.Minute)
	polls := 0
	st.AddAgent(AgentFunc(func() []Metric { polls++; return nil }))
	eng.RunUntil(10 * time.Minute)
	st.Stop()
	at := polls
	eng.RunUntil(time.Hour)
	if polls != at {
		t.Fatal("station polled after Stop")
	}
}
