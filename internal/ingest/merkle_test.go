package ingest

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func sampleRecords(n int) []UsageRecord {
	vos := []string{"atlas", "btev", "cms", "ivdgl", "ligo", "sdss", "usatlas", "uscms"}
	out := make([]UsageRecord, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, UsageRecord{
			VO:         vos[i%len(vos)] + string(rune('a'+i/len(vos))),
			Window:     7,
			Start:      time.Duration(7) * time.Hour,
			End:        time.Duration(8) * time.Hour,
			Jobs:       uint64(i * 3),
			CPUSeconds: uint64(i * 1000),
			Bytes:      uint64(i) << 20,
		})
	}
	return out
}

func TestRootAndProveAllLeaves(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 13} {
		recs := sampleRecords(n)
		root := Root(recs)
		for i := range recs {
			p, err := Prove(recs, i)
			if err != nil {
				t.Fatalf("n=%d Prove(%d): %v", n, i, err)
			}
			if !Verify(root, p) {
				t.Fatalf("n=%d leaf %d: proof rejected", n, i)
			}
			// A tampered record must not verify.
			bad := *p
			bad.Record.CPUSeconds++
			if Verify(root, &bad) {
				t.Fatalf("n=%d leaf %d: tampered record verified", n, i)
			}
		}
	}
}

func TestRootSensitivity(t *testing.T) {
	recs := sampleRecords(5)
	root := Root(recs)
	mutated := sampleRecords(5)
	mutated[2].Bytes += 1
	if Root(mutated) == root {
		t.Fatal("root unchanged after mutating a leaf")
	}
	if Root(nil) != ([32]byte{}) {
		t.Fatal("empty root should be the zero hash")
	}
}

func TestProofWireRoundTrip(t *testing.T) {
	recs := sampleRecords(6)
	root := Root(recs)
	p, err := Prove(recs, 4)
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeProof(p)
	dec, err := DecodeProof(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !Verify(root, dec) {
		t.Fatal("decoded proof rejected against original root")
	}
	if !bytes.Equal(EncodeProof(dec), enc) {
		t.Fatal("re-encode differs from original encoding")
	}
}

func TestDecodeProofRejectsMalformed(t *testing.T) {
	recs := sampleRecords(4)
	p, _ := Prove(recs, 1)
	valid := EncodeProof(p)

	cases := map[string][]byte{
		"empty":       {},
		"magic only":  []byte("G3PRF"),
		"bad magic":   append([]byte("XXPRF"), valid[5:]...),
		"truncated":   valid[:len(valid)-5],
		"trailing":    append(append([]byte(nil), valid...), 0),
		"version max": func() []byte { b := append([]byte(nil), valid...); b[5] = 0xff; return b }(),
		"deep claim": func() []byte {
			b := append([]byte(nil), valid...)
			b[len(proofMagic)+2+len(p.Record.VO)+48] = 0xff // step count
			return b
		}(),
		"bad direction": func() []byte {
			b := append([]byte(nil), valid...)
			b[len(b)-1] = 7
			return b
		}(),
	}
	for name, in := range cases {
		if got, err := DecodeProof(in); err == nil {
			t.Fatalf("%s: decoded %+v, want error", name, got)
		} else if !errors.Is(err, ErrBadProof) {
			t.Fatalf("%s: error %v does not wrap ErrBadProof", name, err)
		}
	}
}

func TestLedgerSealAndProve(t *testing.T) {
	l := NewLedger()
	recs := []UsageRecord{
		{VO: "uscms", Window: 0, Jobs: 4},
		{VO: "atlas", Window: 0, Jobs: 9},
		{VO: "ligo", Window: 0, Jobs: 1},
	}
	w := l.Seal(0, 0, time.Hour, recs)
	if w.Records[0].VO != "atlas" || w.Records[2].VO != "uscms" {
		t.Fatalf("records not sorted by VO: %+v", w.Records)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
	p, err := l.Prove(0, "ligo")
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(w.Root, p) {
		t.Fatal("ledger proof rejected")
	}
	if _, err := l.Prove(0, "nosuch"); err == nil {
		t.Fatal("proof for absent VO should fail")
	}
	if _, err := l.Prove(9, "atlas"); err == nil {
		t.Fatal("proof for unsealed window should fail")
	}
	// Sealing must not alias the caller's slice.
	recs[0].VO = "mutated"
	if got, _ := l.Window(0); got.Records[2].VO != "uscms" {
		t.Fatal("ledger aliased caller records")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double seal should panic")
		}
	}()
	l.Seal(0, 0, time.Hour, nil)
}
