// Package ingest implements the high-throughput monitoring ingestion
// pipeline: size/time-windowed batching over bounded ring buffers with
// pooled batch reuse (replacing per-event delivery on the Ganglia →
// MonALISA → RRD/ACDC path), and per-window Merkle roots over per-VO
// usage accounting so the iGOC can answer "who used what" verifiably
// without rescanning raw events (merkle.go).
//
// The batcher is deliberately passive: it schedules no engine events,
// owns no goroutines, and draws no randomness. Window expiry is detected
// lazily — at Add time, when an event's quantized window index differs
// from the open batch's — and every read path drains staged batches
// first (read-your-writes). A run with batching enabled therefore
// processes exactly the same engine events in exactly the same order as
// one without, which is what keeps default runs byte-identical and lets
// CI diff the two.
package ingest

import "time"

// Policy selects what happens when an event arrives while both the open
// batch and the pending ring are full.
type Policy uint8

const (
	// Block commits the oldest staged batch synchronously to free a
	// slot: no data is ever dropped, at the cost of an inline commit.
	// This is the default and the only policy used on deterministic
	// scenario runs.
	Block Policy = iota
	// Shed drops the incoming event and counts it in Stats.Shed.
	// Sealed batches are never dropped — shedding bounds work strictly
	// at the admission edge, for loss-tolerant telemetry under burst.
	Shed
)

// Defaults applied by New when an Options field is zero.
const (
	DefaultBatchSize = 256
	DefaultPending   = 4
)

// Options tunes a Batcher.
type Options struct {
	// BatchSize is the flush-on-full threshold (default 256 events).
	BatchSize int
	// Window is the maximum sim-time span one batch may cover; an event
	// arriving in a later window seals the open batch first. 0 disables
	// time-windowing (size-only flush).
	Window time.Duration
	// Pending bounds the ring of sealed-but-uncommitted batches
	// (default 4). Capacity is therefore BatchSize*(Pending+1) events.
	Pending int
	// Policy picks Block or Shed behavior at capacity.
	Policy Policy
}

// Stats counts batcher activity since construction.
type Stats struct {
	Events     uint64 // events admitted
	Shed       uint64 // events dropped by the Shed policy
	Batches    uint64 // batches sealed (full or window-expired)
	Commits    uint64 // commit calls issued
	Committed  uint64 // events delivered to the commit function
	MaxPending int    // high-water mark of the pending ring
}

// Batcher accumulates events of type T into pooled batches and delivers
// them to a single-writer commit function. It is not goroutine-safe:
// like every other structure on the sim hot path it is owned by the
// single engine goroutine (the serve ingress boundary already
// serializes external callers onto it).
type Batcher[T any] struct {
	now    func() time.Duration
	commit func([]T)
	opt    Options

	cur    []T   // open batch (nil until first Add)
	curWin int64 // window index of cur's first event

	ring  [][]T // sealed batches awaiting commit (circular)
	head  int
	count int

	free [][]T // recycled batch buffers

	// OnWindow, when set, fires after a batch is sealed because an
	// event arrived in a later time window. closed is the index of the
	// window that just ended; its nominal span is [start, end). The
	// ledger uses this to seal per-VO usage windows at deterministic
	// sim instants. Drain never fires OnWindow: an explicit drain is a
	// read, not evidence that the window is over.
	OnWindow func(closed int64, start, end time.Duration)

	stats Stats
}

// New creates a batcher. now supplies the (sim) clock used for window
// quantization; commit receives each sealed batch exactly once, in seal
// order, and must not retain the slice — it is recycled after the call.
func New[T any](now func() time.Duration, commit func([]T), opt Options) *Batcher[T] {
	if opt.BatchSize <= 0 {
		opt.BatchSize = DefaultBatchSize
	}
	if opt.Pending <= 0 {
		opt.Pending = DefaultPending
	}
	return &Batcher[T]{
		now:    now,
		commit: commit,
		opt:    opt,
		ring:   make([][]T, opt.Pending),
	}
}

// windowOf quantizes a time to its window index.
func (b *Batcher[T]) windowOf(t time.Duration) int64 {
	if b.opt.Window <= 0 {
		return 0
	}
	return int64(t / b.opt.Window)
}

// Add stages one event, sealing and (when the ring fills) committing
// batches as needed. It reports whether the event was admitted — false
// only under the Shed policy at capacity.
func (b *Batcher[T]) Add(ev T) bool {
	now := b.now()
	if b.opt.Window > 0 && len(b.cur) > 0 {
		if w := b.windowOf(now); w != b.curWin {
			closed := b.curWin
			b.seal()
			if b.OnWindow != nil {
				b.OnWindow(closed, time.Duration(closed)*b.opt.Window,
					time.Duration(closed+1)*b.opt.Window)
			}
		}
	}
	// A full open batch seals at the start of the Add that would grow it
	// past BatchSize — except at capacity under Shed, where the event is
	// dropped instead (sealing would force an inline commit, which is
	// exactly the work shedding exists to bound).
	if len(b.cur) >= b.opt.BatchSize {
		if b.opt.Policy == Shed && b.count == len(b.ring) {
			b.stats.Shed++
			return false
		}
		b.seal()
	}
	if b.cur == nil {
		b.cur = b.take()
	}
	if len(b.cur) == 0 {
		b.curWin = b.windowOf(now)
	}
	b.cur = append(b.cur, ev)
	b.stats.Events++
	return true
}

// seal moves the open batch onto the pending ring, committing the
// oldest staged batch first if the ring is full (so sealing always
// succeeds and sealed data is never dropped, whatever the policy).
func (b *Batcher[T]) seal() {
	if len(b.cur) == 0 {
		return
	}
	if b.count == len(b.ring) {
		b.commitOldest()
	}
	b.ring[(b.head+b.count)%len(b.ring)] = b.cur
	b.count++
	if b.count > b.stats.MaxPending {
		b.stats.MaxPending = b.count
	}
	b.stats.Batches++
	b.cur = b.take()
}

// commitOldest pops and commits the oldest staged batch, recycling its
// buffer.
func (b *Batcher[T]) commitOldest() {
	buf := b.ring[b.head]
	b.ring[b.head] = nil
	b.head = (b.head + 1) % len(b.ring)
	b.count--
	b.commit(buf)
	b.stats.Commits++
	b.stats.Committed += uint64(len(buf))
	b.recycle(buf)
}

// Drain seals the open batch and commits everything staged, in order.
// Every read path calls this first so consumers observe exactly the
// state a per-event pipeline would have produced.
func (b *Batcher[T]) Drain() {
	if len(b.cur) > 0 {
		b.seal()
	}
	for b.count > 0 {
		b.commitOldest()
	}
}

// Pending returns the number of sealed batches awaiting commit.
func (b *Batcher[T]) Pending() int { return b.count }

// Buffered returns the number of events held (open batch + ring).
func (b *Batcher[T]) Buffered() int {
	n := len(b.cur)
	for i := 0; i < b.count; i++ {
		n += len(b.ring[(b.head+i)%len(b.ring)])
	}
	return n
}

// Stats returns activity counters.
func (b *Batcher[T]) Stats() Stats { return b.stats }

// take returns an empty batch buffer, reusing a recycled one when
// available.
func (b *Batcher[T]) take() []T {
	if n := len(b.free); n > 0 {
		buf := b.free[n-1]
		b.free[n-1] = nil
		b.free = b.free[:n-1]
		return buf
	}
	return make([]T, 0, b.opt.BatchSize)
}

// recycle returns a committed buffer to the pool. The pool is bounded
// by the ring size plus the open batch; anything beyond that is litter
// from a shrunken configuration and is left to the GC.
func (b *Batcher[T]) recycle(buf []T) {
	if len(b.free) <= len(b.ring) {
		var zero T
		for i := range buf {
			buf[i] = zero
		}
		b.free = append(b.free, buf[:0])
	}
}
