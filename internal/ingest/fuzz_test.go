package ingest

import (
	"bytes"
	"testing"
)

// FuzzProof drives the audit-claim decoder and verifier with arbitrary
// bytes. The decoder must never panic; whatever it accepts must
// re-encode byte-identically (nothing partial or aliased escapes), and
// Verify must return cleanly on any decoded claim.
func FuzzProof(f *testing.F) {
	recs := sampleRecords(5)
	root := Root(recs)
	p, err := Prove(recs, 2)
	if err != nil {
		f.Fatal(err)
	}
	valid := EncodeProof(p)

	// Seed inside the format, not at random noise.
	f.Add(valid)
	f.Add(valid[:len(valid)/2])            // truncated
	f.Add(append([]byte(nil), "G3PRF"...)) // bare magic
	skew := append([]byte(nil), valid...)
	skew[5] = 0x7f // version skew
	f.Add(skew)
	flip := append([]byte(nil), valid...)
	flip[len(flip)/2] ^= 0x40 // bit flip mid-claim
	f.Add(flip)
	deep := append([]byte(nil), valid...)
	deep[len(proofMagic)+2+len(p.Record.VO)+48] = 0xff // inflated step count
	f.Add(deep)
	f.Add([]byte{})
	f.Add([]byte("not an audit claim"))
	// A depth-0 claim for a single-record window is valid too.
	solo, _ := Prove(sampleRecords(1), 0)
	f.Add(EncodeProof(solo))

	f.Fuzz(func(t *testing.T, data []byte) {
		claim, err := DecodeProof(data)
		if err != nil {
			if claim != nil {
				t.Fatal("error with non-nil proof")
			}
			return
		}
		// Verify must not panic and a mutated claim must not pass for
		// the original root unless it IS the original claim.
		ok := Verify(root, claim)
		if ok && !bytes.Equal(EncodeProof(claim), valid) {
			t.Fatal("forged claim verified against root")
		}
		// Accepted claims round-trip byte-identically.
		re := EncodeProof(claim)
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode mismatch:\n in: %x\nout: %x", data, re)
		}
		// The decoded claim must not alias the fuzz input.
		for i := range data {
			data[i] = 0xaa
		}
		if !bytes.Equal(EncodeProof(claim), re) {
			t.Fatal("decoded claim aliased fuzz input")
		}
	})
}

// The deterministic regression cases: inputs that could crash a naive
// decoder (length claims larger than the buffer, giant step counts,
// out-of-range direction bytes). They must error cleanly.
func TestDecodeProofRegressionInputs(t *testing.T) {
	recs := sampleRecords(3)
	p, _ := Prove(recs, 0)
	valid := EncodeProof(p)
	cases := map[string][]byte{
		"empty":        {},
		"magic only":   []byte("G3PRF"),
		"half header":  valid[:6],
		"giant voLen":  func() []byte { b := append([]byte(nil), valid...); b[6] = 0xff; return b }(),
		"all ff tail":  append([]byte("G3PRF\x01"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff),
		"steps no pay": append(append([]byte(nil), valid[:len(valid)-33]...), 0x02),
	}
	for name, in := range cases {
		if got, err := DecodeProof(in); err == nil {
			t.Fatalf("%s: decoded %+v, want error", name, got)
		}
	}
	// Sanity: Verify tolerates a nil proof and an over-deep hand-built one.
	if Verify([32]byte{}, nil) {
		t.Fatal("nil proof verified")
	}
	over := &Proof{Steps: make([]ProofStep, MaxProofDepth+1)}
	if Verify(over.RootHash(), over) {
		t.Fatal("over-deep proof verified")
	}
}
