package ingest

import (
	"math"
	"testing"
	"time"

	"grid3/internal/monalisa"
	"grid3/internal/sim"
)

// manual clock for driving the batcher without an engine.
type clock struct{ t time.Duration }

func (c *clock) Now() time.Duration { return c.t }

func TestBatchFullFlush(t *testing.T) {
	c := &clock{}
	var commits [][]int
	b := New(c.Now, func(batch []int) {
		cp := append([]int(nil), batch...)
		commits = append(commits, cp)
	}, Options{BatchSize: 4, Pending: 2})

	for i := 0; i < 7; i++ {
		if !b.Add(i) {
			t.Fatalf("Add(%d) rejected under Block policy", i)
		}
	}
	// One batch sealed (4 events), staged but not committed; 3 open.
	if len(commits) != 0 {
		t.Fatalf("premature commit: %v", commits)
	}
	if b.Pending() != 1 || b.Buffered() != 7 {
		t.Fatalf("pending=%d buffered=%d", b.Pending(), b.Buffered())
	}
	b.Drain()
	if len(commits) != 2 || len(commits[0]) != 4 || len(commits[1]) != 3 {
		t.Fatalf("after drain: %v", commits)
	}
	// Order preserved across batches.
	want := 0
	for _, batch := range commits {
		for _, v := range batch {
			if v != want {
				t.Fatalf("order broken: got %d want %d", v, want)
			}
			want++
		}
	}
	st := b.Stats()
	if st.Events != 7 || st.Committed != 7 || st.Batches != 2 || st.Shed != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestWindowExpiryFlush(t *testing.T) {
	c := &clock{}
	var committed int
	var windows []int64
	b := New(c.Now, func(batch []string) { committed += len(batch) },
		Options{BatchSize: 1000, Window: time.Hour, Pending: 2})
	b.OnWindow = func(closed int64, start, end time.Duration) {
		windows = append(windows, closed)
		if end-start != time.Hour || time.Duration(closed)*time.Hour != start {
			t.Fatalf("window %d span [%v,%v)", closed, start, end)
		}
	}

	b.Add("w0-a")
	c.t = 30 * time.Minute
	b.Add("w0-b") // same window
	c.t = 90 * time.Minute
	b.Add("w1-a") // rolls over, seals window 0
	if len(windows) != 1 || windows[0] != 0 {
		t.Fatalf("OnWindow fired %v", windows)
	}
	if b.Pending() != 1 {
		t.Fatalf("sealed batch not staged: pending=%d", b.Pending())
	}
	// A gap of several windows still seals just the open one.
	c.t = 10 * time.Hour
	b.Add("w10-a")
	if len(windows) != 2 || windows[1] != 1 {
		t.Fatalf("OnWindow fired %v", windows)
	}
	// Drain is a read, not a rollover: no OnWindow.
	b.Drain()
	if len(windows) != 2 {
		t.Fatalf("Drain fired OnWindow: %v", windows)
	}
	if committed != 4 {
		t.Fatalf("committed %d of 4", committed)
	}
}

func TestRingWraparoundAndBlock(t *testing.T) {
	c := &clock{}
	var commits int
	var total int
	b := New(c.Now, func(batch []int) { commits++; total += len(batch) },
		Options{BatchSize: 2, Pending: 3, Policy: Block})

	// 2 events per seal; ring holds 3 batches, so the 4th seal must
	// commit the oldest inline. Push enough to wrap the ring twice.
	for i := 0; i < 40; i++ {
		b.Add(i)
	}
	if commits == 0 {
		t.Fatal("ring never overflowed into a commit")
	}
	b.Drain()
	if total != 40 {
		t.Fatalf("committed %d of 40", total)
	}
	if st := b.Stats(); st.Shed != 0 || st.MaxPending != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestShedAtCapacity(t *testing.T) {
	c := &clock{}
	var total int
	b := New(c.Now, func(batch []int) { total += len(batch) },
		Options{BatchSize: 2, Pending: 2, Policy: Shed})

	// Capacity = open batch (2) + ring (2 batches of 2) = 6 events.
	admitted := 0
	for i := 0; i < 10; i++ {
		if b.Add(i) {
			admitted++
		}
	}
	if admitted != 6 {
		t.Fatalf("admitted %d, want 6", admitted)
	}
	if st := b.Stats(); st.Shed != 4 {
		t.Fatalf("shed %d, want 4", st.Shed)
	}
	b.Drain()
	if total != 6 {
		t.Fatalf("committed %d, want 6", total)
	}
	// Space freed: admission resumes.
	if !b.Add(99) {
		t.Fatal("Add rejected after drain")
	}
}

func TestPooledBatchReuse(t *testing.T) {
	c := &clock{}
	b := New(c.Now, func([]int) {}, Options{BatchSize: 8, Pending: 2})
	for i := 0; i < 8; i++ {
		b.Add(i)
	}
	b.Drain()
	if len(b.free) == 0 {
		t.Fatal("committed buffer was not recycled")
	}
	buf := b.free[len(b.free)-1]
	b.Add(1)
	if cap(b.cur) != cap(buf) {
		t.Fatal("open batch did not reuse the pooled buffer")
	}
}

// TestBridgeBurstLoad drives the full Ganglia→MonALISA path through the
// batcher under burst: per-site stations forward into a shared batcher
// committing into the central repository, with bursts big enough to
// exercise batch-full seals, window-expiry seals, and ring wraparound.
// The repository must end byte-equivalent to per-event delivery, and
// the shed variant must account for every dropped event. Runs under
// -race in scripts/verify.sh.
func TestBridgeBurstLoad(t *testing.T) {
	const (
		sites    = 12
		interval = 5 * time.Minute
		horizon  = 8 * time.Hour
	)
	build := func(mk func(*sim.Engine, *monalisa.Repository) func(monalisa.Metric)) (*sim.Engine, *monalisa.Repository) {
		eng := sim.NewEngine(sim.Grid3Epoch)
		repo := monalisa.NewRepository(eng)
		sink := mk(eng, repo)
		for s := 0; s < sites; s++ {
			site := string(rune('a'+s)) + "-site"
			st := monalisa.NewStation(eng, site, interval)
			burst := s // per-site burst width: 0..11 extra gauges
			st.AddAgent(monalisa.AgentFunc(func() []monalisa.Metric {
				out := make([]monalisa.Metric, 0, burst+1)
				for k := 0; k <= burst; k++ {
					out = append(out, monalisa.Metric{
						Param: "burst." + string(rune('0'+k)),
						Value: float64(k),
					})
				}
				return out
			}))
			st.Forward(sink)
		}
		return eng, repo
	}

	// Reference: historical per-event delivery.
	engRef, repoRef := build(func(_ *sim.Engine, r *monalisa.Repository) func(monalisa.Metric) {
		return r.Ingest
	})
	engRef.RunUntil(horizon)

	// Batched: tiny batches + a window shorter than the poll interval,
	// so every flush path triggers many times.
	var batcher *Batcher[monalisa.Metric]
	engB, repoB := build(func(eng *sim.Engine, r *monalisa.Repository) func(monalisa.Metric) {
		batcher = New(eng.Now, r.IngestBatch,
			Options{BatchSize: 5, Window: 2 * time.Minute, Pending: 2})
		r.PreRead = batcher.Drain
		return func(m monalisa.Metric) { batcher.Add(m) }
	})
	engB.RunUntil(horizon)
	batcher.Drain()

	if got, want := repoB.Series(), repoRef.Series(); len(got) != len(want) {
		t.Fatalf("series count %d != %d", len(got), len(want))
	}
	for _, key := range repoRef.Series() {
		// Compare last samples and full consolidated history per series.
		var farm, param string
		for i := range key {
			if key[i] == '/' {
				farm, param = key[:i], key[i+1:]
			}
		}
		lr, _ := repoRef.Last(farm, param)
		lb, ok := repoB.Last(farm, param)
		if !ok || lr != lb {
			t.Fatalf("%s: last %+v != %+v", key, lb, lr)
		}
		hr, err1 := repoRef.History(farm, param, 0, 0, horizon)
		hb, err2 := repoB.History(farm, param, 0, 0, horizon)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: history errs %v %v", key, err1, err2)
		}
		if len(hr) != len(hb) {
			t.Fatalf("%s: history length %d != %d", key, len(hb), len(hr))
		}
		for i := range hr {
			// NaN-aware: empty RRD buckets consolidate to NaN on both
			// sides, and NaN != NaN.
			sameVal := hr[i].Value == hb[i].Value ||
				(math.IsNaN(hr[i].Value) && math.IsNaN(hb[i].Value))
			if hr[i].Time != hb[i].Time || !sameVal {
				t.Fatalf("%s[%d]: %+v != %+v", key, i, hb[i], hr[i])
			}
		}
	}
	st := batcher.Stats()
	if st.Shed != 0 {
		t.Fatalf("block policy shed %d events", st.Shed)
	}
	if st.Batches < 10 || st.MaxPending != 2 {
		t.Fatalf("burst did not exercise seal paths: %+v", st)
	}
	totalEvents := uint64(0)
	for s := 0; s < sites; s++ {
		totalEvents += uint64(s+1) * uint64(horizon/interval)
	}
	if st.Events != totalEvents || st.Committed != totalEvents {
		t.Fatalf("events %d committed %d want %d", st.Events, st.Committed, totalEvents)
	}

	// Shed variant: under the same burst with a shed batcher, admitted +
	// shed must equal offered, and drains must free space again.
	var shedB *Batcher[monalisa.Metric]
	engS, repoS := build(func(eng *sim.Engine, r *monalisa.Repository) func(monalisa.Metric) {
		shedB = New(eng.Now, r.IngestBatch,
			Options{BatchSize: 3, Pending: 1, Policy: Shed})
		r.PreRead = shedB.Drain
		return func(m monalisa.Metric) { shedB.Add(m) }
	})
	engS.RunUntil(horizon)
	shedB.Drain()
	sst := shedB.Stats()
	if sst.Shed == 0 {
		t.Fatal("shed policy never dropped under burst")
	}
	if sst.Events+sst.Shed != totalEvents {
		t.Fatalf("admitted %d + shed %d != offered %d", sst.Events, sst.Shed, totalEvents)
	}
	if sst.Committed != sst.Events {
		t.Fatalf("committed %d != admitted %d", sst.Committed, sst.Events)
	}
	if len(repoS.Series()) == 0 {
		t.Fatal("shed run committed nothing")
	}
}
