package ingest

// Merkle-batched integrity roots over per-VO usage accounting. Each
// monitoring window seals into a small Merkle tree whose leaves are the
// window's per-VO usage records (jobs completed, CPU seconds, bytes
// moved); the iGOC publishes only the roots, and any usage claim is
// checkable with an inclusion proof — no rescan of raw events needed.
//
// Wire format (audit claims, version 1):
//
//	"G3PRF" magic | version u8 | voLen u8 | vo bytes
//	window u64 | start i64 ns | end i64 ns
//	jobs u64 | cpuSeconds u64 | bytes u64
//	nSteps u8 (≤ MaxProofDepth) | nSteps × (hash [32] | dir u8 ∈ {0,1})
//
// All integers are big-endian. Decoding is strict: short buffers,
// trailing bytes, unknown versions, oversized step counts, and invalid
// direction bytes are all rejected with ErrBadProof, never a panic
// (fuzz_test.go holds the decoder to that). Bumping the layout bumps
// the version byte; old decoders reject newer claims cleanly.

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"
)

// UsageRecord is one Merkle leaf: what one VO consumed during one
// monitoring window. Values are window deltas of the grid's cumulative
// accounting (VOStats completions, ACDC CPU time, GridFTP per-VO
// bytes), sampled at the deterministic sim instant the window sealed.
type UsageRecord struct {
	VO         string        `json:"vo"`
	Window     uint64        `json:"window"`
	Start      time.Duration `json:"start"`
	End        time.Duration `json:"end"`
	Jobs       uint64        `json:"jobs"`
	CPUSeconds uint64        `json:"cpu_seconds"`
	Bytes      uint64        `json:"bytes"`
}

// MaxProofDepth bounds inclusion-proof length; 64 levels covers any
// conceivable VO count (2^64 leaves) while keeping decode allocations
// bounded.
const MaxProofDepth = 64

// maxVOLen bounds the VO name on the wire (u8 length prefix).
const maxVOLen = 255

// Domain-separation prefixes: a leaf hash can never be confused with an
// interior node hash (the classic second-preimage hardening).
const (
	leafPrefix = 0x00
	nodePrefix = 0x01
)

// Leaf returns the record's leaf hash over its canonical encoding.
func (r UsageRecord) Leaf() [32]byte {
	buf := make([]byte, 0, 1+1+len(r.VO)+8*6)
	buf = append(buf, leafPrefix, byte(len(r.VO)))
	buf = append(buf, r.VO...)
	buf = binary.BigEndian.AppendUint64(buf, r.Window)
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.Start))
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.End))
	buf = binary.BigEndian.AppendUint64(buf, r.Jobs)
	buf = binary.BigEndian.AppendUint64(buf, r.CPUSeconds)
	buf = binary.BigEndian.AppendUint64(buf, r.Bytes)
	return sha256.Sum256(buf)
}

// fold combines two child hashes into their parent.
func fold(l, r [32]byte) [32]byte {
	var buf [1 + 64]byte
	buf[0] = nodePrefix
	copy(buf[1:33], l[:])
	copy(buf[33:], r[:])
	return sha256.Sum256(buf[:])
}

// Root computes the Merkle root over records in the order given (an odd
// node at any level is promoted unchanged). The zero hash is the root
// of an empty window.
func Root(records []UsageRecord) [32]byte {
	if len(records) == 0 {
		return [32]byte{}
	}
	level := make([][32]byte, len(records))
	for i, r := range records {
		level[i] = r.Leaf()
	}
	for len(level) > 1 {
		next := level[:0]
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, fold(level[i], level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		level = next
	}
	return level[0]
}

// ProofStep is one sibling hash on the path from leaf to root; Right
// reports whether the sibling sits to the right of the running hash.
type ProofStep struct {
	Hash  [32]byte
	Right bool
}

// Proof is a self-contained audit claim: the usage record itself plus
// its inclusion path. Verify against a published root.
type Proof struct {
	Record UsageRecord
	Steps  []ProofStep
}

// RootHash folds the record's leaf up through the proof path.
func (p *Proof) RootHash() [32]byte {
	h := p.Record.Leaf()
	for _, s := range p.Steps {
		if s.Right {
			h = fold(h, s.Hash)
		} else {
			h = fold(s.Hash, h)
		}
	}
	return h
}

// Verify reports whether the proof binds its record to root. It never
// panics, whatever the proof contents.
func Verify(root [32]byte, p *Proof) bool {
	if p == nil || len(p.Steps) > MaxProofDepth || len(p.Record.VO) > maxVOLen {
		return false
	}
	return p.RootHash() == root
}

// Prove builds the inclusion proof for the record at index idx within
// records (the same ordering Root was computed over).
func Prove(records []UsageRecord, idx int) (*Proof, error) {
	if idx < 0 || idx >= len(records) {
		return nil, fmt.Errorf("ingest: proof index %d out of range [0,%d)", idx, len(records))
	}
	level := make([][32]byte, len(records))
	for i, r := range records {
		level[i] = r.Leaf()
	}
	p := &Proof{Record: records[idx]}
	pos := idx
	for len(level) > 1 {
		sib := pos ^ 1
		if sib < len(level) {
			p.Steps = append(p.Steps, ProofStep{Hash: level[sib], Right: sib > pos})
		}
		next := level[:0]
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, fold(level[i], level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		level = next
		pos /= 2
	}
	return p, nil
}

// Wire constants for encoded audit claims.
var proofMagic = []byte("G3PRF")

const proofVersion = 1

// ErrBadProof is the sentinel every decode failure wraps.
var ErrBadProof = errors.New("ingest: malformed audit proof")

// EncodeProof renders a proof in the versioned wire format.
func EncodeProof(p *Proof) []byte {
	r := p.Record
	buf := make([]byte, 0, len(proofMagic)+2+len(r.VO)+8*6+1+len(p.Steps)*33)
	buf = append(buf, proofMagic...)
	buf = append(buf, proofVersion, byte(len(r.VO)))
	buf = append(buf, r.VO...)
	buf = binary.BigEndian.AppendUint64(buf, r.Window)
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.Start))
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.End))
	buf = binary.BigEndian.AppendUint64(buf, r.Jobs)
	buf = binary.BigEndian.AppendUint64(buf, r.CPUSeconds)
	buf = binary.BigEndian.AppendUint64(buf, r.Bytes)
	buf = append(buf, byte(len(p.Steps)))
	for _, s := range p.Steps {
		buf = append(buf, s.Hash[:]...)
		if s.Right {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// DecodeProof parses an encoded audit claim. Every length is checked
// before use and the total length must match exactly; malformed input
// returns an error wrapping ErrBadProof and never panics. The decoded
// proof does not alias data.
func DecodeProof(data []byte) (*Proof, error) {
	bad := func(what string) (*Proof, error) {
		return nil, fmt.Errorf("%w: %s", ErrBadProof, what)
	}
	if len(data) < len(proofMagic)+2 {
		return bad("short header")
	}
	if string(data[:len(proofMagic)]) != string(proofMagic) {
		return bad("bad magic")
	}
	if data[len(proofMagic)] != proofVersion {
		return bad(fmt.Sprintf("unsupported version %d", data[len(proofMagic)]))
	}
	voLen := int(data[len(proofMagic)+1])
	off := len(proofMagic) + 2
	if len(data) < off+voLen+8*6+1 {
		return bad("truncated record")
	}
	p := &Proof{}
	p.Record.VO = string(data[off : off+voLen])
	off += voLen
	u64 := func() uint64 {
		v := binary.BigEndian.Uint64(data[off:])
		off += 8
		return v
	}
	p.Record.Window = u64()
	p.Record.Start = time.Duration(u64())
	p.Record.End = time.Duration(u64())
	p.Record.Jobs = u64()
	p.Record.CPUSeconds = u64()
	p.Record.Bytes = u64()
	nSteps := int(data[off])
	off++
	if nSteps > MaxProofDepth {
		return bad("proof too deep")
	}
	if len(data) != off+nSteps*33 {
		return bad("length mismatch")
	}
	p.Steps = make([]ProofStep, nSteps)
	for i := 0; i < nSteps; i++ {
		copy(p.Steps[i].Hash[:], data[off:off+32])
		switch data[off+32] {
		case 0:
			p.Steps[i].Right = false
		case 1:
			p.Steps[i].Right = true
		default:
			return bad("invalid direction byte")
		}
		off += 33
	}
	return p, nil
}

// Window is one sealed accounting window: its per-VO records (sorted by
// VO) and their Merkle root.
type Window struct {
	Index   uint64
	Start   time.Duration
	End     time.Duration
	Records []UsageRecord
	Root    [32]byte
}

// Ledger is the iGOC's append-only sequence of sealed windows. Like the
// batcher it is passive and single-writer: core seals windows at
// deterministic sim instants, the audit API only reads.
type Ledger struct {
	windows []Window
	byIndex map[uint64]int
}

// NewLedger creates an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{byIndex: make(map[uint64]int)}
}

// Seal closes a window: records are copied, sorted by VO, hashed into a
// root, and appended. Sealing an already-sealed index is a programming
// error and panics (the caller tracks the seal frontier).
func (l *Ledger) Seal(index uint64, start, end time.Duration, records []UsageRecord) Window {
	if _, dup := l.byIndex[index]; dup {
		panic(fmt.Sprintf("ingest: window %d sealed twice", index))
	}
	recs := make([]UsageRecord, len(records))
	copy(recs, records)
	sort.Slice(recs, func(i, j int) bool { return recs[i].VO < recs[j].VO })
	w := Window{Index: index, Start: start, End: end, Records: recs, Root: Root(recs)}
	l.byIndex[index] = len(l.windows)
	l.windows = append(l.windows, w)
	return w
}

// Len returns the number of sealed windows.
func (l *Ledger) Len() int { return len(l.windows) }

// Windows returns the sealed windows in seal order (shared backing
// array; callers must not mutate).
func (l *Ledger) Windows() []Window { return l.windows }

// Window looks up a sealed window by index.
func (l *Ledger) Window(index uint64) (Window, bool) {
	i, ok := l.byIndex[index]
	if !ok {
		return Window{}, false
	}
	return l.windows[i], true
}

// Prove builds the inclusion proof for one VO's record in a sealed
// window.
func (l *Ledger) Prove(index uint64, vo string) (*Proof, error) {
	w, ok := l.Window(index)
	if !ok {
		return nil, fmt.Errorf("ingest: window %d not sealed", index)
	}
	at := sort.Search(len(w.Records), func(i int) bool { return w.Records[i].VO >= vo })
	if at >= len(w.Records) || w.Records[at].VO != vo {
		return nil, fmt.Errorf("ingest: no record for VO %q in window %d", vo, index)
	}
	return Prove(w.Records, at)
}
