package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"grid3/internal/vo"
)

// newTestServer starts a small paced service and wraps its handler in an
// httptest server. The pace is slow enough that the grid barely moves
// during a test, keeping responses predictable.
func newTestServer(t *testing.T, hc HandlerConfig) (*Service, *httptest.Server) {
	t.Helper()
	cfg := testConfig()
	cfg.Pace = 1 // real time: the sim crawls during the test
	cfg.Scenario.Config.EnableObservability = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(NewHandler(s, hc))
	t.Cleanup(func() { ts.Close(); s.Stop() })
	return s, ts
}

func getJSON(t *testing.T, url string, wantCode int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, wantCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
	return out
}

func postJSON(t *testing.T, url string, body any, wantCode int) map[string]any {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s = %d, want %d", url, resp.StatusCode, wantCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST %s: bad JSON: %v", url, err)
	}
	return out
}

func TestHandlerHealthz(t *testing.T) {
	_, ts := newTestServer(t, HandlerConfig{})
	out := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if out["status"] != "ok" {
		t.Fatalf("healthz = %v", out)
	}
}

func TestHandlerStatus(t *testing.T) {
	_, ts := newTestServer(t, HandlerConfig{})
	out := getJSON(t, ts.URL+"/api/v1/status", http.StatusOK)
	if out["pace"].(float64) != 1 {
		t.Fatalf("pace = %v, want 1", out["pace"])
	}
	if _, ok := out["jobs"].(map[string]any); !ok {
		t.Fatalf("status missing jobs block: %v", out)
	}
}

func TestHandlerVOList(t *testing.T) {
	_, ts := newTestServer(t, HandlerConfig{})
	out := getJSON(t, ts.URL+"/api/v1/vo", http.StatusOK)
	vos := out["vos"].([]any)
	if len(vos) != len(vo.Grid3VOs) {
		t.Fatalf("%d VOs, want %d", len(vos), len(vo.Grid3VOs))
	}
}

func TestHandlerVOMembers(t *testing.T) {
	_, ts := newTestServer(t, HandlerConfig{})
	out := getJSON(t, ts.URL+"/api/v1/vo/uscms/members", http.StatusOK)
	if out["vo"] != "uscms" {
		t.Fatalf("vo = %v", out["vo"])
	}
	if len(out["members"].([]any)) == 0 {
		t.Fatal("uscms has no members")
	}
	getJSON(t, ts.URL+"/api/v1/vo/nosuch/members", http.StatusNotFound)
}

func TestHandlerEnroll(t *testing.T) {
	s, ts := newTestServer(t, HandlerConfig{})
	url := ts.URL + "/api/v1/vo/ligo/members"
	body := map[string]any{"dn": "/DC=org/CN=New User", "name": "New User", "roles": []string{"production"}}
	out := postJSON(t, url, body, http.StatusCreated)
	if out["dn"] != "/DC=org/CN=New User" {
		t.Fatalf("enroll reply = %v", out)
	}
	// The new DN is in the membership and the gridmaps were refreshed.
	var member bool
	s.Do(func() {
		srv, _ := s.scen.Grid.Registry.Server("ligo")
		for _, dn := range srv.Members() {
			if dn == "/DC=org/CN=New User" {
				member = true
			}
		}
	})
	if !member {
		t.Fatal("enrolled DN not in VO membership")
	}
	postJSON(t, url, body, http.StatusConflict)                                                          // duplicate
	postJSON(t, url, map[string]any{"name": "x"}, http.StatusBadRequest)                                 // no dn
	postJSON(t, url, map[string]any{"dn": "/CN=y", "roles": []string{"royalty"}}, http.StatusBadRequest) // bad role
	postJSON(t, ts.URL+"/api/v1/vo/nosuch/members", body, http.StatusNotFound)
}

func TestHandlerSubmitAndJobStatus(t *testing.T) {
	_, ts := newTestServer(t, HandlerConfig{})
	out := postJSON(t, ts.URL+"/api/v1/jobs", map[string]any{
		"vo": "usatlas", "user": "alice", "runtime_seconds": 3600,
	}, http.StatusAccepted)
	id, _ := out["id"].(string)
	if !strings.HasPrefix(id, "svc-usatlas-") {
		t.Fatalf("job id = %q", id)
	}
	if out["state"] != JobSubmitted {
		t.Fatalf("state = %v, want submitted", out["state"])
	}
	st := getJSON(t, ts.URL+"/api/v1/jobs/"+id, http.StatusOK)
	if st["id"] != id {
		t.Fatalf("status id = %v", st["id"])
	}
	getJSON(t, ts.URL+"/api/v1/jobs/svc-none-00000000", http.StatusNotFound)

	// Bad submissions.
	postJSON(t, ts.URL+"/api/v1/jobs", map[string]any{"vo": "usatlas"}, http.StatusBadRequest)                                             // no user
	postJSON(t, ts.URL+"/api/v1/jobs", map[string]any{"vo": "usatlas", "user": "a"}, http.StatusBadRequest)                                // no runtime
	postJSON(t, ts.URL+"/api/v1/jobs", map[string]any{"vo": "nosuch", "user": "a", "runtime_seconds": 60}, http.StatusUnprocessableEntity) // unknown VO fails synchronously
}

func TestHandlerJobsSummary(t *testing.T) {
	_, ts := newTestServer(t, HandlerConfig{})
	postJSON(t, ts.URL+"/api/v1/jobs", map[string]any{
		"vo": "sdss", "user": "bob", "runtime_seconds": 60,
	}, http.StatusAccepted)
	out := getJSON(t, ts.URL+"/api/v1/jobs", http.StatusOK)
	svc := out["service_jobs"].(map[string]any)
	if svc["submitted"].(float64) < 1 {
		t.Fatalf("service_jobs = %v", svc)
	}
	if len(out["schedds"].([]any)) == 0 {
		t.Fatal("no schedds in summary")
	}
}

func TestHandlerRLS(t *testing.T) {
	s, ts := newTestServer(t, HandlerConfig{})
	// Seed one replica through the ingress boundary.
	err := s.Do(func() {
		g := s.scen.Grid
		n := g.Nodes[g.Order[0]]
		n.LRC.Add("lfn://test/file1", "/data/file1", 1<<20)
		g.RLI.Publish(n.LRC, 24*time.Hour)
	})
	if err != nil {
		t.Fatal(err)
	}
	out := getJSON(t, ts.URL+"/api/v1/rls/lfn:%2F%2Ftest%2Ffile1", http.StatusOK)
	reps := out["replicas"].([]any)
	if len(reps) != 1 {
		t.Fatalf("replicas = %v", out)
	}
	pfn := reps[0].(map[string]any)["pfn"].(string)
	if !strings.HasPrefix(pfn, "gsiftp://") {
		t.Fatalf("pfn = %q", pfn)
	}
	getJSON(t, ts.URL+"/api/v1/rls/lfn:%2F%2Fno%2Fsuch", http.StatusNotFound)
}

func TestHandlerMetrics(t *testing.T) {
	s, ts := newTestServer(t, HandlerConfig{})
	// Advance an hour of sim time so the engine has processed real events.
	s.Do(func() { s.scen.RunUntil(s.scen.Grid.Eng.Now() + time.Hour) })
	out := getJSON(t, ts.URL+"/api/v1/monitor/metrics", http.StatusOK)
	if out["observability"] != true {
		t.Fatalf("observability = %v", out["observability"])
	}
	if out["events"].(float64) <= 0 {
		t.Fatalf("events = %v", out["events"])
	}
}

func TestHandlerMonALISA(t *testing.T) {
	s, ts := newTestServer(t, HandlerConfig{})
	out := getJSON(t, ts.URL+"/api/v1/monitor/monalisa", http.StatusOK)
	series, _ := out["series"].([]any)
	if len(series) == 0 {
		// The repository may not have collected yet at pace 1; advance far
		// enough for a station cycle, then re-check.
		s.Do(func() { s.scen.RunUntil(s.scen.Grid.Eng.Now() + time.Hour) })
		out = getJSON(t, ts.URL+"/api/v1/monitor/monalisa", http.StatusOK)
		series, _ = out["series"].([]any)
	}
	if len(series) == 0 {
		t.Fatal("no MonALISA series after an hour of sim time")
	}
	// farm/param lookup for the first series key "farm/param".
	parts := strings.SplitN(series[0].(string), "/", 2)
	got := getJSON(t, ts.URL+fmt.Sprintf("/api/v1/monitor/monalisa?farm=%s&param=%s", parts[0], parts[1]), http.StatusOK)
	if got["farm"] != parts[0] {
		t.Fatalf("farm = %v", got["farm"])
	}
	getJSON(t, ts.URL+"/api/v1/monitor/monalisa?farm=onlyfarm", http.StatusBadRequest)
	getJSON(t, ts.URL+"/api/v1/monitor/monalisa?farm=no&param=such.param", http.StatusNotFound)
}

func TestHandlerACDC(t *testing.T) {
	_, ts := newTestServer(t, HandlerConfig{})
	out := getJSON(t, ts.URL+"/api/v1/monitor/acdc", http.StatusOK)
	if _, ok := out["records"]; !ok {
		t.Fatalf("acdc reply = %v", out)
	}
}

func TestHandlerSites(t *testing.T) {
	_, ts := newTestServer(t, HandlerConfig{})
	out := getJSON(t, ts.URL+"/api/v1/sites", http.StatusOK)
	sites := out["sites"].([]any)
	if len(sites) != 5 {
		t.Fatalf("%d sites, want 5", len(sites))
	}
	first := sites[0].(map[string]any)
	if first["name"] == "" || first["cpus"].(float64) <= 0 {
		t.Fatalf("site row = %v", first)
	}
}

func TestHandlerTickets(t *testing.T) {
	s, ts := newTestServer(t, HandlerConfig{})
	out := getJSON(t, ts.URL+"/api/v1/goc/tickets", http.StatusOK)
	if _, ok := out["total"]; !ok {
		t.Fatalf("tickets reply = %v", out)
	}
	// File a ticket directly and fetch it by ID.
	var id int
	s.Do(func() {
		tk := s.scen.Grid.Desk.Open("site0", "uscms", "test ticket", 1)
		id = tk.ID
	})
	got := getJSON(t, ts.URL+fmt.Sprintf("/api/v1/goc/tickets/%d", id), http.StatusOK)
	if int(got["id"].(float64)) != id {
		t.Fatalf("ticket id = %v, want %d", got["id"], id)
	}
	getJSON(t, ts.URL+"/api/v1/goc/tickets/99999", http.StatusNotFound)
	getJSON(t, ts.URL+"/api/v1/goc/tickets/notanumber", http.StatusBadRequest)
}

func TestHandlerConfigReload(t *testing.T) {
	// Without a hook: 405.
	_, ts := newTestServer(t, HandlerConfig{})
	postJSON(t, ts.URL+"/api/v1/config/reload", nil, http.StatusMethodNotAllowed)

	// With a hook: the handler reports what was applied.
	called := false
	_, ts2 := newTestServer(t, HandlerConfig{
		Reload: func() (map[string]any, error) {
			called = true
			return map[string]any{"pace": 60.0}, nil
		},
	})
	out := postJSON(t, ts2.URL+"/api/v1/config/reload", nil, http.StatusOK)
	if !called {
		t.Fatal("reload hook not called")
	}
	if out["applied"].(map[string]any)["pace"].(float64) != 60 {
		t.Fatalf("applied = %v", out["applied"])
	}
}

func TestHandlerOverloadMapsTo503(t *testing.T) {
	cfg := testConfig()
	cfg.MaxPending = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Never started: jam the mailbox so every handler sheds.
	go s.Do(func() {})
	for len(s.mbox) == 0 {
		time.Sleep(time.Millisecond)
	}
	ts := httptest.NewServer(NewHandler(s, HandlerConfig{}))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/api/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	// healthz still answers: liveness does not cross the ingress boundary.
	out := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if out["status"] != "ok" {
		t.Fatalf("healthz under overload = %v", out)
	}
	s.Stop()
}
