// Package serve turns a Grid3 scenario into a long-running service: the
// discrete-event engine advances continuously in scaled real time behind a
// thread-safe ingress boundary, and the paper's user-facing surfaces (VOMS
// enrollment, Condor-G submission, RLS lookup, MonALISA/ACDC monitoring,
// iGOC tickets) are exposed as HTTP/JSON APIs.
//
// # The ingress determinism boundary
//
// The engine is single-threaded by design — that is what makes runs
// reproducible — so the service keeps exactly one goroutine (the sim loop)
// that owns the engine, and serializes every external touch through a
// bounded FIFO mailbox. HTTP handlers never read or mutate grid state
// directly: they enqueue a closure and wait for the sim loop to execute it
// between engine steps. Given the same admission sequence, the simulation
// evolves identically; wall-clock arrival order is the only
// nondeterministic input, and it is pinned at exactly one place (mailbox
// admission) rather than scattered across handlers. When the mailbox is
// full the request is shed with ErrOverloaded before it can perturb the
// engine — overload degrades goodput, never determinism.
//
// # Scaled real time
//
// A sim.Governor maps wall time onto the virtual clock at Pace virtual
// seconds per wall second. Each loop tick advances the engine to the
// governor's target, bounding any catch-up burst to MaxStride of virtual
// time per tick so ingress stays responsive while lag is repaid; lag beyond
// MaxLag is forgiven (the schedule slips) instead of freezing the service
// for an unbounded replay.
package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"grid3/internal/checkpoint"
	"grid3/internal/core"
	"grid3/internal/sim"
)

// Service errors.
var (
	// ErrOverloaded reports that the ingress mailbox was full and the
	// request was shed (HTTP 503).
	ErrOverloaded = errors.New("serve: ingress mailbox full")
	// ErrStopped reports that the service shut down before the request ran.
	ErrStopped = errors.New("serve: service stopped")
)

// Config shapes a Service.
type Config struct {
	// Scenario is the campaign configuration to run continuously. Its
	// Horizon bounds the simulation (the service keeps answering queries
	// after the horizon is reached); RealTimePace sets the default pace.
	Scenario core.ScenarioConfig
	// Pace is the compression ratio in virtual seconds per wall second;
	// 0 takes Scenario.RealTimePace, and if both are zero DefaultPace.
	Pace float64
	// Tick is the wall interval between governor steps (default 10ms).
	Tick time.Duration
	// MaxPending bounds the ingress mailbox; requests beyond it are shed
	// with ErrOverloaded (default 4096).
	MaxPending int
	// MaxStride bounds how much virtual time one loop tick may advance
	// during catch-up, keeping ingress responsive behind a burst (default
	// 6 virtual hours).
	MaxStride time.Duration
	// MaxLag bounds accumulated schedule lag; beyond it the governor
	// re-anchors and the simulation slips rather than replaying an
	// unbounded backlog (default 24 virtual hours).
	MaxLag time.Duration
	// Restore, when set, boots the service from a checkpoint instead of a
	// fresh Scenario: the recorded configuration is reconstructed and
	// replayed to the snapshot's sim time (re-injecting journaled API
	// operations), and Scenario is ignored except where RestoreOverrides
	// whitelists a change. Serve-scope snapshots rebuild the job table;
	// batch-scope snapshots warm-start with an empty one.
	Restore *checkpoint.Snapshot
	// RestoreOverrides whitelists what may change when booting from
	// Restore (shard count, extended horizon, fresh sinks, re-armed
	// checkpointing, pace). Its ReplayOp and ExtraHash hooks are owned by
	// the serve layer and overwritten here.
	RestoreOverrides core.RestoreOverrides
}

// Defaults.
const (
	// DefaultPace compresses one simulated hour into one wall second.
	DefaultPace       = 3600.0
	defaultTick       = 10 * time.Millisecond
	defaultMaxPending = 4096
	defaultMaxStride  = 6 * time.Hour
	defaultMaxLag     = 24 * time.Hour
)

func (c *Config) defaults() {
	if c.Pace == 0 {
		c.Pace = c.Scenario.RealTimePace
	}
	if c.Pace == 0 {
		c.Pace = DefaultPace
	}
	if c.Tick <= 0 {
		c.Tick = defaultTick
	}
	if c.MaxPending <= 0 {
		c.MaxPending = defaultMaxPending
	}
	if c.MaxStride <= 0 {
		c.MaxStride = defaultMaxStride
	}
	if c.MaxLag <= 0 {
		c.MaxLag = defaultMaxLag
	}
}

// Service runs one scenario continuously behind the ingress boundary.
type Service struct {
	cfg  Config
	scen *core.Scenario
	gov  *sim.Governor

	mbox chan func()
	stop chan struct{}
	done chan struct{}

	startOnce sync.Once
	stopOnce  sync.Once
	started   time.Time

	// accepted/shed count mailbox admissions; shed requests never touch
	// the engine. Atomics because handlers bump them off the sim loop.
	accepted atomic.Uint64
	shed     atomic.Uint64

	// pace holds the live compression ratio as Float64bits; atomic because
	// SetPace rewrites it from the sim goroutine while Pace reads anywhere.
	pace atomic.Uint64

	// Owned by the sim goroutine after Start (reads go through do()).
	jobs     *jobTable
	finished bool

	// journal records every executed external mutation (enroll, submit)
	// with its sim time, in execution order — the replay log a serve-scope
	// snapshot carries. Owned by the sim goroutine. Seeded from the
	// snapshot's journal on restore so later snapshots keep the full
	// history from the original boot.
	journal []checkpoint.Op
}

// New builds a Service around a freshly assembled scenario — or, when
// cfg.Restore is set, around a scenario rebuilt from a checkpoint, with the
// engine already advanced to the snapshot's sim time. Start begins (or
// resumes) scaled-real-time execution from there.
func New(cfg Config) (*Service, error) {
	var (
		scen    *core.Scenario
		jobs    *jobTable
		journal []checkpoint.Op
		err     error
	)
	if cfg.Restore != nil {
		scen, jobs, err = restoreScenario(cfg.Restore, cfg.RestoreOverrides)
		if err != nil {
			return nil, fmt.Errorf("serve: restore: %w", err)
		}
		journal = append(journal, cfg.Restore.Journal...)
		// The recorded pace travels inside the snapshot config; the usual
		// Scenario.RealTimePace fallback must read it from there.
		if cfg.Pace == 0 {
			cfg.Pace = scen.Cfg.RealTimePace
		}
	} else {
		scen, err = core.NewScenario(cfg.Scenario)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		jobs = newJobTable()
	}
	cfg.defaults()
	s := &Service{
		cfg:     cfg,
		scen:    scen,
		mbox:    make(chan func(), cfg.MaxPending),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		jobs:    jobs,
		journal: journal,
	}
	s.pace.Store(math.Float64bits(cfg.Pace))
	return s, nil
}

// Scenario exposes the underlying campaign. Outside the sim loop, touch it
// only through Do — the engine is not safe for concurrent use.
func (s *Service) Scenario() *core.Scenario { return s.scen }

// Pace returns the live compression ratio.
func (s *Service) Pace() float64 { return math.Float64frombits(s.pace.Load()) }

// Start launches the sim loop. Safe to call once; the zero-cost way to use
// the Service synchronously in tests is to skip Start and call Step.
func (s *Service) Start() {
	s.startOnce.Do(func() {
		s.started = time.Now()
		s.gov = sim.NewGovernor(s.Pace(), s.scen.Grid.Eng.Now(), s.started)
		go s.loop()
	})
}

// Stop shuts the sim loop down: pending mailbox entries drain, the
// scenario finishes (final ACDC pull, observability flush), and the loop
// exits. Safe to call more than once; blocks until shutdown completes.
func (s *Service) Stop() {
	s.Start() // a never-started service still stops cleanly
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// loop is the sim goroutine: the only place engine time advances and the
// only executor of mailbox closures.
func (s *Service) loop() {
	defer close(s.done)
	ticker := time.NewTicker(s.cfg.Tick)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			s.drain()
			s.finish()
			return
		case fn := <-s.mbox:
			fn()
		case now := <-ticker.C:
			s.advance(now)
		}
	}
}

// advance runs the engine toward the governor's target for wall instant
// now, bounding the stride and forgiving excessive lag.
func (s *Service) advance(now time.Time) {
	eng := s.scen.Grid.Eng
	simNow := eng.Now()
	if s.gov.Lag(simNow, now) > s.cfg.MaxLag {
		s.gov.Forgive(simNow, now)
	}
	target := s.gov.Target(now)
	if max := simNow + s.cfg.MaxStride; target > max {
		target = max
	}
	horizon := s.scen.Cfg.Horizon
	if horizon > 0 && target > horizon {
		target = horizon
	}
	if target > simNow {
		s.scen.RunUntil(target)
	}
	if horizon > 0 && eng.Now() >= horizon {
		s.finish()
	}
}

// finish performs end-of-run bookkeeping exactly once. The service keeps
// answering queries afterward; Finished reports the state.
func (s *Service) finish() {
	if s.finished {
		return
	}
	s.finished = true
	s.scen.Finish()
}

// drain empties the mailbox on shutdown so no caller blocks forever on a
// posted closure.
func (s *Service) drain() {
	for {
		select {
		case fn := <-s.mbox:
			fn()
		default:
			return
		}
	}
}

// Do executes fn on the sim goroutine and waits for it, the synchronous
// ingress path every handler uses. It returns ErrOverloaded when the
// mailbox is full and ErrStopped when the service shut down before fn ran.
func (s *Service) Do(fn func()) error {
	ran := make(chan struct{})
	select {
	case s.mbox <- func() { fn(); close(ran) }:
		s.accepted.Add(1)
	default:
		s.shed.Add(1)
		return ErrOverloaded
	}
	select {
	case <-ran:
		return nil
	case <-s.done:
		// The loop may have executed fn during its shutdown drain.
		select {
		case <-ran:
			return nil
		default:
			return ErrStopped
		}
	}
}

// Step synchronously drains the mailbox and advances the engine to the
// governor target for wall instant now — the loop body without the loop,
// for deterministic tests that drive wall time by hand. Only valid before
// Start.
func (s *Service) Step(now time.Time) {
	if s.gov == nil {
		s.gov = sim.NewGovernor(s.Pace(), s.scen.Grid.Eng.Now(), now)
	}
	s.drain()
	s.advance(now)
}

// SetPace re-anchors the governor at the engine's current position with a
// new compression ratio — the hot-reload path. Accumulated lag is forgiven
// (the schedule restarts from here), so a reload never triggers a replay
// burst.
func (s *Service) SetPace(pace float64) error {
	if pace <= 0 {
		return fmt.Errorf("serve: pace %v must be positive", pace)
	}
	return s.Do(func() {
		s.pace.Store(math.Float64bits(pace))
		if s.gov != nil {
			s.gov.Repace(pace, s.scen.Grid.Eng.Now(), time.Now())
		}
	})
}

// Status is a point-in-time snapshot of the daemon, assembled on the sim
// goroutine; the HTTP layer owns the wire shape.
type Status struct {
	SimNow        time.Duration
	SimClock      time.Time
	Pace          float64
	Lag           time.Duration
	Events        uint64
	Pending       int
	Finished      bool
	Jobs          JobCounts
	Accepted      uint64
	Shed          uint64
	UptimeSeconds float64
}

// StatusNow assembles a Status via the ingress boundary.
func (s *Service) StatusNow() (Status, error) {
	var st Status
	wall := time.Now()
	err := s.Do(func() {
		eng := s.scen.Grid.Eng
		st.SimNow = eng.Now()
		st.SimClock = eng.WallClock()
		st.Pace = s.Pace()
		if s.gov != nil {
			st.Lag = s.gov.Lag(eng.Now(), wall)
		}
		st.Events = eng.Processed()
		st.Pending = eng.Pending()
		st.Finished = s.finished
		st.Jobs = s.jobs.counts
	})
	st.Accepted = s.accepted.Load()
	st.Shed = s.shed.Load()
	if !s.started.IsZero() {
		st.UptimeSeconds = time.Since(s.started).Seconds()
	}
	return st, err
}
