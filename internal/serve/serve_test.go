package serve

import (
	"testing"
	"time"

	"grid3/internal/core"
)

// testConfig is a small scenario that assembles fast: a handful of testbed
// sites, a two-day horizon, a sliver of the workload.
func testConfig() Config {
	return Config{
		Scenario: core.ScenarioConfig{
			Config:   core.Config{Seed: 7, TestbedSites: 5},
			Horizon:  48 * time.Hour,
			JobScale: 0.001,
		},
		Pace: 3600, // one sim hour per wall second
		Tick: time.Millisecond,
	}
}

func TestServiceStepDeterminism(t *testing.T) {
	// Two services, same seed, same manual wall schedule: identical
	// trajectories. This is the ingress boundary's core promise.
	run := func() (uint64, time.Duration) {
		s, err := New(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		wall0 := time.Unix(0, 0)
		s.Step(wall0) // anchor the governor
		for i := 1; i <= 10; i++ {
			s.Step(wall0.Add(time.Duration(i) * time.Second))
		}
		eng := s.Scenario().Grid.Eng
		return eng.Processed(), eng.Now()
	}
	ev1, now1 := run()
	ev2, now2 := run()
	if ev1 != ev2 || now1 != now2 {
		t.Fatalf("same seed diverged: (%d, %v) vs (%d, %v)", ev1, now1, ev2, now2)
	}
	if ev1 == 0 {
		t.Fatal("no events processed; the governor never advanced the engine")
	}
	// 10 wall seconds at pace 3600 = 10 sim hours.
	if want := 10 * time.Hour; now1 != want {
		t.Fatalf("sim now = %v, want %v", now1, want)
	}
}

func TestServiceStepRespectsHorizon(t *testing.T) {
	cfg := testConfig()
	cfg.Scenario.Horizon = 2 * time.Hour
	cfg.MaxStride = 365 * 24 * time.Hour // no stride bound for this test
	cfg.MaxLag = 365 * 24 * time.Hour    // nor lag forgiveness
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wall0 := time.Unix(0, 0)
	s.Step(wall0)                // anchor
	s.Step(wall0.Add(time.Hour)) // schedule says 3600 sim hours; horizon says 2
	// Finish drains in-flight work for 6 sim hours past the horizon, the
	// same end-of-run bookkeeping a batch Run performs.
	if got := s.Scenario().Grid.Eng.Now(); got != 8*time.Hour {
		t.Fatalf("sim now = %v, want 2h horizon + 6h drain", got)
	}
	if !s.finished {
		t.Fatal("service did not finish at horizon")
	}
	// The service keeps answering after the horizon; time holds still.
	s.Step(wall0.Add(2 * time.Hour))
	if got := s.Scenario().Grid.Eng.Now(); got != 8*time.Hour {
		t.Fatalf("engine moved after finish: %v", got)
	}
}

func TestServiceStepBoundsStride(t *testing.T) {
	cfg := testConfig()
	cfg.MaxStride = 30 * time.Minute
	cfg.MaxLag = 365 * 24 * time.Hour
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wall0 := time.Unix(0, 0)
	s.Step(wall0)                  // anchor
	s.Step(wall0.Add(time.Minute)) // schedule says 60 sim hours
	if got := s.Scenario().Grid.Eng.Now(); got != 30*time.Minute {
		t.Fatalf("sim now = %v, want one 30m stride", got)
	}
}

func TestServiceForgivesLag(t *testing.T) {
	cfg := testConfig()
	cfg.MaxStride = time.Minute
	cfg.MaxLag = time.Hour
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wall0 := time.Unix(0, 0)
	s.Step(wall0) // anchor
	// Jump far ahead: schedule demands 1000 sim hours, stride allows 1
	// minute, so lag explodes past MaxLag and must be forgiven.
	s.Step(wall0.Add(1000 * time.Second))
	s.Step(wall0.Add(1001 * time.Second))
	if lag := s.gov.Lag(s.scen.Grid.Eng.Now(), wall0.Add(1001*time.Second)); lag > time.Hour {
		t.Fatalf("lag %v was not forgiven (MaxLag 1h)", lag)
	}
}

func TestServiceStartStop(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ran := false
	if err := s.Do(func() { ran = true }); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if !ran {
		t.Fatal("closure did not run")
	}
	st, err := s.StatusNow()
	if err != nil {
		t.Fatalf("StatusNow: %v", err)
	}
	if st.Pace != 3600 {
		t.Fatalf("pace = %v, want 3600", st.Pace)
	}
	if st.Accepted == 0 {
		t.Fatal("accepted counter did not move")
	}
	s.Stop()
	if err := s.Do(func() {}); err != ErrStopped {
		t.Fatalf("Do after Stop = %v, want ErrStopped", err)
	}
	s.Stop() // idempotent
}

func TestServiceOverloadSheds(t *testing.T) {
	cfg := testConfig()
	cfg.MaxPending = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Not started: the mailbox fills and nobody drains it yet.
	enqueued := make(chan struct{})
	go func() {
		close(enqueued)
		s.Do(func() {})
	}()
	<-enqueued
	for len(s.mbox) == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := s.Do(func() {}); err != ErrOverloaded {
		t.Fatalf("Do on full mailbox = %v, want ErrOverloaded", err)
	}
	if s.shed.Load() != 1 {
		t.Fatalf("shed = %d, want 1", s.shed.Load())
	}
	s.Stop() // drains the stuck closure, unblocks the goroutine
}

func TestServiceSetPace(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()
	if err := s.SetPace(-1); err == nil {
		t.Fatal("negative pace accepted")
	}
	if err := s.SetPace(60); err != nil {
		t.Fatalf("SetPace: %v", err)
	}
	if got := s.Pace(); got != 60 {
		t.Fatalf("pace after SetPace = %v, want 60", got)
	}
}

func TestServiceShardedStepMatchesSerial(t *testing.T) {
	// Sharding must be invisible at the ingress boundary too: the same
	// manual wall schedule drives a serial and a 4-shard service to the
	// same event count and sim clock. The eval workers live below the
	// engine goroutine, so single-goroutine ingress is preserved.
	run := func(shards int) (uint64, time.Duration) {
		cfg := testConfig()
		cfg.Scenario.Config.TestbedSites = 20
		cfg.Scenario.Config.Shards = shards
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		wall0 := time.Unix(0, 0)
		s.Step(wall0)
		for i := 1; i <= 10; i++ {
			s.Step(wall0.Add(time.Duration(i) * time.Second))
		}
		eng := s.Scenario().Grid.Eng
		return eng.Processed(), eng.Now()
	}
	serialEv, serialNow := run(0)
	shardEv, shardNow := run(4)
	if serialEv != shardEv || serialNow != shardNow {
		t.Fatalf("sharded serve diverged: serial (%d, %v) vs 4 shards (%d, %v)",
			serialEv, serialNow, shardEv, shardNow)
	}
	if serialEv == 0 {
		t.Fatal("no events processed")
	}
}
