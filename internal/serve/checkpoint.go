package serve

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"grid3/internal/checkpoint"
	"grid3/internal/core"
	"grid3/internal/vo"
)

// Journal op kinds. A serve-scope snapshot carries the full history of
// externally-injected mutations since boot; replaying them at their recorded
// sim times over the deterministic engine reconstructs the exact service
// state. Read-only handlers (status, RLS lookup, monitoring) never touch the
// engine's future, so they are not journaled.
const (
	opEnroll = "enroll"
	opSubmit = "submit"
)

// enrollOp is the journal payload for a successful VOMS enrollment: the
// validated wire request plus the target VO from the URL path.
type enrollOp struct {
	VO    string   `json:"vo"`
	DN    string   `json:"dn"`
	Name  string   `json:"name"`
	Roles []string `json:"roles,omitempty"`
}

// parseRoles validates the wire role names. Shared by the HTTP handler (400
// on failure) and journal replay (corrupt snapshot on failure).
func parseRoles(names []string) ([]vo.Role, error) {
	roles := make([]vo.Role, 0, len(names))
	for _, r := range names {
		switch role := vo.Role(r); role {
		case vo.RoleProduction, vo.RoleSoftware, vo.RoleAdmin, vo.RoleMember:
			roles = append(roles, role)
		default:
			return nil, fmt.Errorf("unknown role %q", r)
		}
	}
	return roles, nil
}

// applyEnroll performs the engine-side enrollment mutation — membership add
// plus the out-of-band gridmap refresh. The HTTP handler and journal replay
// share it so a restored run re-executes exactly what the original did.
func applyEnroll(scen *core.Scenario, voName, dn, name string, roles []vo.Role) (total int, err error) {
	srv, err := scen.Grid.Registry.Server(voName)
	if err != nil {
		return 0, err
	}
	if err := srv.Add(dn, name, roles...); err != nil {
		return 0, err
	}
	scen.Grid.RefreshGridmaps()
	return srv.Len(), nil
}

// applySubmit performs the engine-side submission: normalize the walltime,
// register the job record, and hand the request to Condor-G with the
// terminal callback wired back into the table. Shared by the HTTP handler
// and journal replay; it must stay deterministic given (engine state,
// request), because replay reproduces job IDs and callback timing from it.
func applySubmit(scen *core.Scenario, jobs *jobTable, req submitRequest) *JobRecord {
	runtime := time.Duration(req.RuntimeSeconds * float64(time.Second))
	walltime := time.Duration(req.WalltimeSeconds * float64(time.Second))
	if walltime < runtime {
		walltime = runtime + time.Hour
	}
	g := scen.Grid
	live := jobs.add(req.VO, req.User, g.Eng.Now())
	g.SubmitJobFunc(appsRequest(req, live.ID, runtime, walltime), func(err error) {
		jobs.done(live, g.Eng.Now(), err)
	})
	return live
}

// journalOp appends one executed mutation to the service journal at the
// engine's current instant. Runs on the sim goroutine only.
func (s *Service) journalOp(kind string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		// The payloads are plain structs; a marshal failure is a programming
		// error, and silently dropping the op would corrupt every later
		// snapshot.
		panic(fmt.Sprintf("serve: journal %s: %v", kind, err))
	}
	s.journal = append(s.journal, checkpoint.Op{
		T:    s.scen.Grid.Eng.Now(),
		Kind: kind,
		Data: data,
	})
}

// replayServeOp applies one journaled operation during restore. scen and
// jobs belong to the scenario being rebuilt; the Service does not exist yet.
func replayServeOp(scen *core.Scenario, jobs *jobTable, op checkpoint.Op) error {
	switch op.Kind {
	case opEnroll:
		var e enrollOp
		if err := json.Unmarshal(op.Data, &e); err != nil {
			return fmt.Errorf("%w: enroll op: %v", checkpoint.ErrCorrupt, err)
		}
		roles, err := parseRoles(e.Roles)
		if err != nil {
			return fmt.Errorf("%w: enroll op: %v", checkpoint.ErrCorrupt, err)
		}
		// Enrollments are journaled only on success, so a failure here means
		// the snapshot does not match the configuration it claims.
		if _, err := applyEnroll(scen, e.VO, e.DN, e.Name, roles); err != nil {
			return fmt.Errorf("enroll %s into %s: %w", e.DN, e.VO, err)
		}
		return nil
	case opSubmit:
		var req submitRequest
		if err := json.Unmarshal(op.Data, &req); err != nil {
			return fmt.Errorf("%w: submit op: %v", checkpoint.ErrCorrupt, err)
		}
		// Submissions journal unconditionally — even a synchronous rejection
		// consumed a job ID and fired its callback, so replay re-executes it.
		applySubmit(scen, jobs, req)
		return nil
	default:
		return fmt.Errorf("%w: unknown journal op kind %q", checkpoint.ErrCorrupt, op.Kind)
	}
}

// hashState folds the job table into the verification walk: the ID sequence,
// the per-state counts, and every record in sorted-ID order. This is the
// serve layer's extra digest contribution — a restore that rebuilt the table
// differently (lost a job, flipped a terminal state) fails verification even
// if the grid underneath replayed perfectly.
func (t *jobTable) hashState(h *checkpoint.Hasher) {
	h.Int(t.seq)
	h.Int(int64(t.counts.Submitted))
	h.Int(int64(t.counts.Completed))
	h.Int(int64(t.counts.Failed))
	ids := make([]string, 0, len(t.byID))
	for id := range t.byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	h.Int(int64(len(ids)))
	for _, id := range ids {
		rec := t.byID[id]
		h.String(rec.ID)
		h.String(rec.VO)
		h.String(rec.User)
		h.String(rec.State)
		h.Dur(rec.SubmittedAt)
		h.Dur(rec.DoneAt)
		h.String(rec.Error)
	}
}

// snapshot assembles a serve-scope snapshot: scenario state digest extended
// with the job table, plus a copy of the op journal. Must run on the sim
// goroutine. A finished run is refused — Finish tears down the workers and
// flushes observability, so its state is no longer a restartable midpoint.
func (s *Service) snapshot() (*checkpoint.Snapshot, error) {
	if s.finished {
		return nil, checkpoint.ErrUnfinalized
	}
	journal := append([]checkpoint.Op(nil), s.journal...)
	return s.scen.Snapshot(checkpoint.ScopeServe, s.jobs.hashState, journal)
}

// Snapshot captures the service's current state via the ingress boundary.
// The capture is a pure read: the run continues byte-identically whether or
// not it was snapshotted.
func (s *Service) Snapshot() (*checkpoint.Snapshot, error) {
	var snap *checkpoint.Snapshot
	var serr error
	if err := s.Do(func() { snap, serr = s.snapshot() }); err != nil {
		return nil, err
	}
	return snap, serr
}

// restoreScenario rebuilds the scenario and job table from a snapshot. A
// serve-scope snapshot replays its journal and verifies the digest including
// the job table; a batch-scope snapshot (e.g. captured by grid3sim) warm-
// starts the service with an empty table, since no API jobs existed when it
// was taken.
func restoreScenario(snap *checkpoint.Snapshot, ov core.RestoreOverrides) (*core.Scenario, *jobTable, error) {
	jobs := newJobTable()
	if snap.Scope == checkpoint.ScopeServe {
		ov.ReplayOp = func(scen *core.Scenario, op checkpoint.Op) error {
			return replayServeOp(scen, jobs, op)
		}
		ov.ExtraHash = jobs.hashState
	} else {
		ov.ReplayOp = nil
		ov.ExtraHash = nil
	}
	scen, err := core.RestoreScenario(snap, ov)
	if err != nil {
		return nil, nil, err
	}
	return scen, jobs, nil
}
