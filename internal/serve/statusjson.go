package serve

import (
	"encoding/json"
	"time"
)

// StatusSchema is the versioned wire schema of the final status record
// (grid3d -json-out). Adding fields is compatible within a version;
// renaming or removing one bumps it.
const StatusSchema = "grid3.serve-status/1"

// StatusKind is the record's frozen "kind" discriminator.
const StatusKind = "grid3d-status"

// statusRecord is the wire shape; key names are frozen (round-trip tested).
type statusRecord struct {
	Schema        string  `json:"schema"`
	Kind          string  `json:"kind"`
	SimSeconds    float64 `json:"sim_seconds"`
	SimClock      string  `json:"sim_clock"`
	Pace          float64 `json:"pace"`
	Events        uint64  `json:"events_processed"`
	Finished      bool    `json:"finished"`
	JobsSubmitted int     `json:"service_jobs_submitted"`
	JobsCompleted int     `json:"service_jobs_completed"`
	JobsFailed    int     `json:"service_jobs_failed"`
	Accepted      uint64  `json:"requests_accepted"`
	Shed          uint64  `json:"requests_shed"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// StatusJSON renders a status snapshot as the versioned StatusSchema
// record, indented and newline-terminated — the shape grid3d writes
// through -json-out on clean shutdown.
func StatusJSON(st Status) ([]byte, error) {
	rec := statusRecord{
		Schema:        StatusSchema,
		Kind:          StatusKind,
		SimSeconds:    st.SimNow.Seconds(),
		SimClock:      st.SimClock.UTC().Format(time.RFC3339),
		Pace:          st.Pace,
		Events:        st.Events,
		Finished:      st.Finished,
		JobsSubmitted: st.Jobs.Submitted,
		JobsCompleted: st.Jobs.Completed,
		JobsFailed:    st.Jobs.Failed,
		Accepted:      st.Accepted,
		Shed:          st.Shed,
		UptimeSeconds: st.UptimeSeconds,
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
