package serve

import (
	"errors"
	"testing"
	"time"

	"grid3/internal/checkpoint"
	"grid3/internal/core"
)

// ckptCfg is the small fast scenario the checkpoint tests run. The tests
// drive the engine directly (RunUntil + the shared appliers) instead of
// through wall-clock Steps, so the op injection times are exact sim instants
// and the straight/restored trajectories are comparable byte for byte.
func ckptCfg() Config {
	return Config{
		Scenario: core.ScenarioConfig{
			Config:   core.Config{Seed: 7, TestbedSites: 5},
			Horizon:  48 * time.Hour,
			JobScale: 0.001,
		},
	}
}

// inject applies the test's canonical op sequence on a fresh service: an
// enrollment at 6h, then at 12h one valid submission and one synchronous
// rejection (unknown VO) — the rejection still consumes a job ID, so it must
// be journaled and replayed like any other executed submission.
func inject(t *testing.T, s *Service) *JobRecord {
	t.Helper()
	s.scen.RunUntil(6 * time.Hour)
	roles, err := parseRoles([]string{"production"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := applyEnroll(s.scen, "ligo", "/CN=warm", "Warm User", roles); err != nil {
		t.Fatalf("enroll: %v", err)
	}
	s.journalOp(opEnroll, enrollOp{VO: "ligo", DN: "/CN=warm", Name: "Warm User", Roles: []string{"production"}})

	s.scen.RunUntil(12 * time.Hour)
	good := submitRequest{VO: "ligo", User: "/CN=warm", RuntimeSeconds: 3600}
	rec := applySubmit(s.scen, s.jobs, good)
	s.journalOp(opSubmit, good)
	bad := submitRequest{VO: "nosuch", User: "bob", RuntimeSeconds: 60}
	badRec := applySubmit(s.scen, s.jobs, bad)
	s.journalOp(opSubmit, bad)
	if badRec.State != JobFailed {
		t.Fatalf("unknown-VO submit state = %s, want synchronous failure", badRec.State)
	}
	return rec
}

// The serve-layer tentpole guarantee: snapshot mid-service, restore, and the
// restored service continues byte-identically — grid state, job table, and
// journal all intact.
func TestServeCheckpointRestoreContinues(t *testing.T) {
	s1, err := New(ckptCfg())
	if err != nil {
		t.Fatal(err)
	}
	rec := inject(t, s1)
	s1.scen.RunUntil(24 * time.Hour)
	snap, err := s1.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Scope != checkpoint.ScopeServe || len(snap.Journal) != 3 {
		t.Fatalf("snapshot scope %v journal %d, want serve/3", snap.Scope, len(snap.Journal))
	}

	// The original continues to the horizon.
	s1.scen.RunUntil(48 * time.Hour)
	wantDigest := s1.scen.StateDigest(s1.jobs.hashState)
	wantCounts := s1.jobs.counts

	// Restore and continue the same distance.
	s2, err := New(Config{Restore: snap})
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := s2.scen.Grid.Eng.Now(); got != 24*time.Hour {
		t.Fatalf("restored clock %v, want 24h", got)
	}
	if len(s2.journal) != 3 {
		t.Fatalf("restored journal %d ops, want 3", len(s2.journal))
	}
	live, ok := s2.jobs.get(rec.ID)
	if !ok {
		t.Fatalf("restored table lost job %s", rec.ID)
	}
	s2.scen.RunUntil(48 * time.Hour)
	if got := s2.scen.StateDigest(s2.jobs.hashState); got != wantDigest {
		t.Fatalf("restored service diverged: digest %016x, want %016x", got, wantDigest)
	}
	if s2.jobs.counts != wantCounts {
		t.Fatalf("job counts %+v, want %+v", s2.jobs.counts, wantCounts)
	}
	if live.State != JobCompleted {
		t.Fatalf("restored job %s state %s, want completed by horizon", live.ID, live.State)
	}
}

// A batch-scope snapshot (e.g. captured by grid3sim) warm-starts the
// service: engine at the recorded time, empty job table, and the API
// machinery fully live on top of it.
func TestServeRestoreFromBatchSnapshot(t *testing.T) {
	cfg := ckptCfg()
	scen, err := core.NewScenario(cfg.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	scen.RunUntil(12 * time.Hour)
	snap, err := scen.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	scen.Grid.Close()

	s, err := New(Config{Restore: snap})
	if err != nil {
		t.Fatalf("warm start: %v", err)
	}
	if got := s.scen.Grid.Eng.Now(); got != 12*time.Hour {
		t.Fatalf("warm-start clock %v, want 12h", got)
	}
	if len(s.jobs.byID) != 0 || len(s.journal) != 0 {
		t.Fatalf("batch warm start carried service state: %d jobs, %d ops",
			len(s.jobs.byID), len(s.journal))
	}
	// The API machinery works on the warm-started grid: enroll a DN, then
	// submit as it.
	roles, err := parseRoles([]string{"production"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := applyEnroll(s.scen, "ligo", "/CN=warm", "Warm User", roles); err != nil {
		t.Fatalf("warm-start enroll: %v", err)
	}
	s.journalOp(opEnroll, enrollOp{VO: "ligo", DN: "/CN=warm", Name: "Warm User", Roles: []string{"production"}})
	req := submitRequest{VO: "ligo", User: "/CN=warm", RuntimeSeconds: 60}
	rec := applySubmit(s.scen, s.jobs, req)
	s.journalOp(opSubmit, req)
	s.scen.RunUntil(24 * time.Hour)
	if rec.State != JobCompleted {
		t.Fatalf("warm-start submit state %s (%s), want completed", rec.State, rec.Error)
	}
	// And the next snapshot is serve-scope with the new journal.
	snap2, err := s.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Scope != checkpoint.ScopeServe || len(snap2.Journal) != 2 {
		t.Fatalf("snapshot scope %v journal %d, want serve/2", snap2.Scope, len(snap2.Journal))
	}
}

// Journal tampering is caught: an unknown op kind is corrupt, and an edited
// payload replays to a different state, which the digest rejects.
func TestServeRestoreRejectsTamperedJournal(t *testing.T) {
	s, err := New(ckptCfg())
	if err != nil {
		t.Fatal(err)
	}
	inject(t, s)
	s.scen.RunUntil(24 * time.Hour)
	snap, err := s.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s.scen.Grid.Close()

	bogus := *snap
	bogus.Journal = append([]checkpoint.Op(nil), snap.Journal...)
	bogus.Journal[0].Kind = "bogus"
	if _, err := New(Config{Restore: &bogus}); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("unknown op kind: %v, want ErrCorrupt", err)
	}

	edited := *snap
	edited.Journal = append([]checkpoint.Op(nil), snap.Journal...)
	edited.Journal[1].Data = []byte(`{"vo":"usatlas","user":"mallory","runtime_seconds":3600}`)
	if _, err := New(Config{Restore: &edited}); !errors.Is(err, checkpoint.ErrDigest) {
		t.Fatalf("edited op payload: %v, want ErrDigest", err)
	}
}

// A finished run is not a restartable midpoint; snapshotting it is refused.
func TestServeSnapshotAfterFinishRefused(t *testing.T) {
	cfg := ckptCfg()
	cfg.Scenario.Horizon = 2 * time.Hour
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.scen.RunUntil(2 * time.Hour)
	s.finish()
	if _, err := s.snapshot(); !errors.Is(err, checkpoint.ErrUnfinalized) {
		t.Fatalf("snapshot after finish: %v, want ErrUnfinalized", err)
	}
}

// The serve-scope snapshot round-trips the journal through the binary codec.
func TestServeSnapshotEncodesJournal(t *testing.T) {
	s, err := New(ckptCfg())
	if err != nil {
		t.Fatal(err)
	}
	inject(t, s)
	s.scen.RunUntil(24 * time.Hour)
	snap, err := s.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s.scen.Grid.Close()

	decoded, err := checkpoint.Decode(checkpoint.Encode(snap))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded.Journal) != len(snap.Journal) {
		t.Fatalf("journal %d ops after round-trip, want %d", len(decoded.Journal), len(snap.Journal))
	}
	for i := range snap.Journal {
		a, b := snap.Journal[i], decoded.Journal[i]
		if a.T != b.T || a.Kind != b.Kind || string(a.Data) != string(b.Data) {
			t.Fatalf("journal op %d changed: %+v vs %+v", i, a, b)
		}
	}
	s2, err := New(Config{Restore: decoded})
	if err != nil {
		t.Fatalf("restore from decoded snapshot: %v", err)
	}
	s2.scen.Grid.Close()
}
