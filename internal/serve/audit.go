package serve

import (
	"encoding/base64"
	"encoding/hex"
	"net/http"
	"strconv"

	"grid3/internal/ingest"
)

// --- usage-ledger audit -----------------------------------------------------
//
// The audit surface publishes the per-window Merkle roots sealed over
// per-VO usage records (completed jobs, CPU seconds, bytes moved) and
// inclusion proofs for individual (window, VO) claims. It exists only
// when the daemon runs with ingest batching (-ingest-batch); without a
// ledger both routes answer 404.

type auditRootJSON struct {
	Window  uint64 `json:"window"`
	Start   string `json:"start_sim_time"`
	End     string `json:"end_sim_time"`
	Root    string `json:"root"`
	Records int    `json:"records"`
}

func (s *Service) handleAuditRoots(w http.ResponseWriter, r *http.Request) {
	var roots []auditRootJSON
	hasLedger := false
	err := s.Do(func() {
		led := s.scen.Grid.Ledger
		if led == nil {
			return
		}
		hasLedger = true
		for _, win := range led.Windows() {
			roots = append(roots, auditRootJSON{
				Window:  win.Index,
				Start:   win.Start.String(),
				End:     win.End.String(),
				Root:    hex.EncodeToString(win.Root[:]),
				Records: len(win.Records),
			})
		}
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	if !hasLedger {
		writeJSON(w, http.StatusNotFound, errDTO("usage ledger disabled; run with ingest batching"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"windows": len(roots), "roots": roots})
}

type auditProofJSON struct {
	Window uint64             `json:"window"`
	VO     string             `json:"vo"`
	Root   string             `json:"root"`
	Record ingest.UsageRecord `json:"record"`
	// Proof is the canonical wire encoding (base64) — feed it back to
	// ingest.DecodeProof + Verify against Root to check the claim
	// offline.
	Proof string `json:"proof"`
}

// handleAuditProof serves one inclusion proof: ?window=N&vo=NAME.
func (s *Service) handleAuditProof(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	voName := q.Get("vo")
	winStr := q.Get("window")
	if voName == "" || winStr == "" {
		writeJSON(w, http.StatusBadRequest, errDTO("window and vo are required"))
		return
	}
	winIdx, perr := strconv.ParseUint(winStr, 10, 64)
	if perr != nil {
		writeJSON(w, http.StatusBadRequest, errDTO("bad window index: "+perr.Error()))
		return
	}
	var out auditProofJSON
	var proveErr error
	hasLedger := false
	err := s.Do(func() {
		led := s.scen.Grid.Ledger
		if led == nil {
			return
		}
		hasLedger = true
		win, ok := led.Window(winIdx)
		if !ok {
			return
		}
		p, err := led.Prove(winIdx, voName)
		if err != nil {
			proveErr = err
			return
		}
		out = auditProofJSON{
			Window: winIdx,
			VO:     voName,
			Root:   hex.EncodeToString(win.Root[:]),
			Record: p.Record,
			Proof:  base64.StdEncoding.EncodeToString(ingest.EncodeProof(p)),
		}
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	if !hasLedger {
		writeJSON(w, http.StatusNotFound, errDTO("usage ledger disabled; run with ingest batching"))
		return
	}
	if proveErr != nil || out.Proof == "" {
		msg := "no sealed window " + winStr
		if proveErr != nil {
			msg = proveErr.Error()
		}
		writeJSON(w, http.StatusNotFound, errDTO(msg))
		return
	}
	writeJSON(w, http.StatusOK, out)
}
