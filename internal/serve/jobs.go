package serve

import (
	"fmt"
	"time"
)

// Job states as the API reports them. A job is "submitted" from admission
// until its end-to-end completion callback fires (Condor-G does not expose
// intermediate schedd states across the façade), then "completed" or
// "failed".
const (
	JobSubmitted = "submitted"
	JobCompleted = "completed"
	JobFailed    = "failed"
)

// JobRecord is the service-side view of one submitted job.
type JobRecord struct {
	ID          string
	VO          string
	User        string
	State       string
	SubmittedAt time.Duration // sim time of admission
	DoneAt      time.Duration // sim time of the terminal callback
	Error       string        // terminal error, for failed jobs
}

// JobCounts summarizes the table by state.
type JobCounts struct {
	Submitted int `json:"submitted"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
}

// jobTable tracks every job admitted through the API. It is owned by the
// sim goroutine — all access goes through Service.Do — so it needs no lock.
type jobTable struct {
	seq    int64
	byID   map[string]*JobRecord
	counts JobCounts
}

func newJobTable() *jobTable {
	return &jobTable{byID: make(map[string]*JobRecord)}
}

// add registers a fresh submission and returns its record.
func (t *jobTable) add(vo, user string, now time.Duration) *JobRecord {
	t.seq++
	rec := &JobRecord{
		ID:          fmt.Sprintf("svc-%s-%08d", vo, t.seq),
		VO:          vo,
		User:        user,
		State:       JobSubmitted,
		SubmittedAt: now,
	}
	t.byID[rec.ID] = rec
	t.counts.Submitted++
	return rec
}

// done records the terminal callback.
func (t *jobTable) done(rec *JobRecord, now time.Duration, err error) {
	if rec.State != JobSubmitted {
		return
	}
	t.counts.Submitted--
	rec.DoneAt = now
	if err != nil {
		rec.State = JobFailed
		rec.Error = err.Error()
		t.counts.Failed++
		return
	}
	rec.State = JobCompleted
	t.counts.Completed++
}

// get looks a record up by ID.
func (t *jobTable) get(id string) (*JobRecord, bool) {
	rec, ok := t.byID[id]
	return rec, ok
}
