package serve

import (
	"encoding/base64"
	"encoding/hex"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"grid3/internal/ingest"
)

// newAuditServer runs a fast-paced service with ingest batching on, so
// usage windows seal while the test watches.
func newAuditServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	cfg := testConfig()
	cfg.Pace = 3600 // one sim hour per wall second: windows seal quickly
	cfg.Scenario.Config.IngestBatch = 64
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(NewHandler(s, HandlerConfig{}))
	t.Cleanup(func() { ts.Close(); s.Stop() })
	return s, ts
}

func TestAuditDisabledWithoutLedger(t *testing.T) {
	_, ts := newTestServer(t, HandlerConfig{})
	getJSON(t, ts.URL+"/api/v1/audit/roots", http.StatusNotFound)
	getJSON(t, ts.URL+"/api/v1/audit/proof?window=0&vo=ivdgl", http.StatusNotFound)
}

func TestAuditRootsAndProof(t *testing.T) {
	_, ts := newAuditServer(t)

	// Wait for the fast-paced sim to seal at least one window.
	var roots []any
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		out := getJSON(t, ts.URL+"/api/v1/audit/roots", http.StatusOK)
		roots, _ = out["roots"].([]any)
		if len(roots) > 0 {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if len(roots) == 0 {
		t.Fatal("no usage windows sealed within the deadline")
	}
	first := roots[0].(map[string]any)
	winIdx := int(first["window"].(float64))
	if first["records"].(float64) == 0 {
		t.Fatalf("window %d sealed empty", winIdx)
	}
	wantRoot, err := hex.DecodeString(first["root"].(string))
	if err != nil || len(wantRoot) != 32 {
		t.Fatalf("bad root %q: %v", first["root"], err)
	}

	// Fetch a proof for one VO in that window and verify it offline
	// against the published root — the end-to-end audit claim.
	rec := getJSON(t, ts.URL+"/api/v1/audit/proof?window="+
		itoa(winIdx)+"&vo=ivdgl", http.StatusOK)
	if rec["vo"] != "ivdgl" || rec["root"] != first["root"] {
		t.Fatalf("proof response mismatch: %v", rec)
	}
	wire, err := base64.StdEncoding.DecodeString(rec["proof"].(string))
	if err != nil {
		t.Fatalf("bad proof encoding: %v", err)
	}
	p, err := ingest.DecodeProof(wire)
	if err != nil {
		t.Fatalf("decode proof: %v", err)
	}
	if p.Record.VO != "ivdgl" {
		t.Fatalf("proof carries VO %q", p.Record.VO)
	}
	var root [32]byte
	copy(root[:], wantRoot)
	if !ingest.Verify(root, p) {
		t.Fatal("served proof does not verify against served root")
	}
	// Tampering with the claim breaks it.
	p.Record.CPUSeconds++
	if ingest.Verify(root, p) {
		t.Fatal("tampered claim still verifies")
	}

	// Error surface: bad parameters and unknown coordinates.
	getJSON(t, ts.URL+"/api/v1/audit/proof", http.StatusBadRequest)
	getJSON(t, ts.URL+"/api/v1/audit/proof?window=abc&vo=ivdgl", http.StatusBadRequest)
	getJSON(t, ts.URL+"/api/v1/audit/proof?window=9999999&vo=ivdgl", http.StatusNotFound)
	getJSON(t, ts.URL+"/api/v1/audit/proof?window="+itoa(winIdx)+"&vo=nosuchvo", http.StatusNotFound)
}

func itoa(n int) string { return strconv.Itoa(n) }
