package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"grid3/internal/apps"
	"grid3/internal/goc"
	"grid3/internal/rls"
	"grid3/internal/vo"
)

// APIVersion prefixes every route; bump it when a wire shape breaks.
const APIVersion = "v1"

// HandlerConfig wires optional daemon-level hooks into the HTTP surface.
type HandlerConfig struct {
	// Reload re-reads the daemon's config file and applies the dynamic
	// subset, returning what was applied; nil disables POST config/reload
	// (405). The serve layer itself only knows how to repace — file
	// handling belongs to the daemon.
	Reload func() (map[string]any, error)
}

// NewHandler builds the full HTTP/JSON API over a service. Every handler
// crosses the ingress boundary with Service.Do, so the grid is never
// touched off the sim goroutine.
func NewHandler(s *Service, hc HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	p := func(pattern string) string { return fmt.Sprintf(pattern, APIVersion) }

	// Liveness: answered without entering the sim loop, so the probe works
	// even while the engine replays a catch-up burst.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	mux.HandleFunc("GET "+p("/api/%s/status"), func(w http.ResponseWriter, r *http.Request) {
		st, err := s.StatusNow()
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, statusDTO(st))
	})

	mux.HandleFunc("GET "+p("/api/%s/vo"), s.handleVOList)
	mux.HandleFunc("GET "+p("/api/%s/vo/{vo}/members"), s.handleVOMembers)
	mux.HandleFunc("POST "+p("/api/%s/vo/{vo}/members"), s.handleEnroll)
	mux.HandleFunc("POST "+p("/api/%s/jobs"), s.handleSubmit)
	mux.HandleFunc("GET "+p("/api/%s/jobs"), s.handleJobsSummary)
	mux.HandleFunc("GET "+p("/api/%s/jobs/{id}"), s.handleJobStatus)
	mux.HandleFunc("GET "+p("/api/%s/rls/{lfn}"), s.handleRLS)
	mux.HandleFunc("GET "+p("/api/%s/monitor/metrics"), s.handleMetrics)
	mux.HandleFunc("GET "+p("/api/%s/monitor/monalisa"), s.handleMonALISA)
	mux.HandleFunc("GET "+p("/api/%s/monitor/acdc"), s.handleACDC)
	mux.HandleFunc("GET "+p("/api/%s/audit/roots"), s.handleAuditRoots)
	mux.HandleFunc("GET "+p("/api/%s/audit/proof"), s.handleAuditProof)
	mux.HandleFunc("GET "+p("/api/%s/sites"), s.handleSites)
	mux.HandleFunc("GET "+p("/api/%s/goc/tickets"), s.handleTickets)
	mux.HandleFunc("GET "+p("/api/%s/goc/tickets/{id}"), s.handleTicket)

	mux.HandleFunc("POST "+p("/api/%s/config/reload"), func(w http.ResponseWriter, r *http.Request) {
		if hc.Reload == nil {
			writeJSON(w, http.StatusMethodNotAllowed, errDTO("config reload not wired"))
			return
		}
		applied, err := hc.Reload()
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errDTO(err.Error()))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"applied": applied})
	})

	return mux
}

// --- wire shapes -----------------------------------------------------------

func errDTO(msg string) map[string]string { return map[string]string{"error": msg} }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeErr maps ingress errors to status codes: a shed request is 503 (the
// overload contract), a stopped service 503, anything else 500.
func writeErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errDTO(err.Error()))
	case errors.Is(err, ErrStopped):
		writeJSON(w, http.StatusServiceUnavailable, errDTO(err.Error()))
	default:
		writeJSON(w, http.StatusInternalServerError, errDTO(err.Error()))
	}
}

type statusJSON struct {
	SimTime       string    `json:"sim_time"`
	SimClock      time.Time `json:"sim_clock"`
	Pace          float64   `json:"pace"`
	LagSeconds    float64   `json:"lag_sim_seconds"`
	Events        uint64    `json:"events_processed"`
	PendingEvents int       `json:"pending_events"`
	Finished      bool      `json:"finished"`
	Jobs          JobCounts `json:"jobs"`
	Accepted      uint64    `json:"requests_accepted"`
	Shed          uint64    `json:"requests_shed"`
	UptimeSeconds float64   `json:"uptime_seconds"`
}

func statusDTO(st Status) statusJSON {
	return statusJSON{
		SimTime:       st.SimNow.String(),
		SimClock:      st.SimClock,
		Pace:          st.Pace,
		LagSeconds:    st.Lag.Seconds(),
		Events:        st.Events,
		PendingEvents: st.Pending,
		Finished:      st.Finished,
		Jobs:          st.Jobs,
		Accepted:      st.Accepted,
		Shed:          st.Shed,
		UptimeSeconds: st.UptimeSeconds,
	}
}

// --- VOMS ------------------------------------------------------------------

type voJSON struct {
	Name    string `json:"name"`
	Members int    `json:"members"`
}

func (s *Service) handleVOList(w http.ResponseWriter, r *http.Request) {
	var out []voJSON
	err := s.Do(func() {
		reg := s.scen.Grid.Registry
		for _, name := range reg.VOs() {
			srv, err := reg.Server(name)
			if err != nil {
				continue
			}
			out = append(out, voJSON{Name: name, Members: srv.Len()})
		}
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"vos": out})
}

func (s *Service) handleVOMembers(w http.ResponseWriter, r *http.Request) {
	voName := r.PathValue("vo")
	var members []string
	var lookupErr error
	err := s.Do(func() {
		srv, err := s.scen.Grid.Registry.Server(voName)
		if err != nil {
			lookupErr = err
			return
		}
		members = srv.Members()
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	if lookupErr != nil {
		writeJSON(w, http.StatusNotFound, errDTO(lookupErr.Error()))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"vo": voName, "members": members})
}

type enrollRequest struct {
	DN    string   `json:"dn"`
	Name  string   `json:"name"`
	Roles []string `json:"roles"`
}

// handleEnroll is VOMS enrollment (§5.3): the DN joins the VO's membership,
// and grid-mapfiles are regenerated immediately — an out-of-band
// edg-mkgridmap run, so the new member can authenticate at gatekeepers
// without waiting for the 6-hour refresh cycle.
func (s *Service) handleEnroll(w http.ResponseWriter, r *http.Request) {
	voName := r.PathValue("vo")
	var req enrollRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errDTO("bad enroll body: "+err.Error()))
		return
	}
	if req.DN == "" {
		writeJSON(w, http.StatusBadRequest, errDTO("dn is required"))
		return
	}
	roles, rerr := parseRoles(req.Roles)
	if rerr != nil {
		writeJSON(w, http.StatusBadRequest, errDTO(rerr.Error()))
		return
	}
	var enrollErr error
	var total int
	err := s.Do(func() {
		total, enrollErr = applyEnroll(s.scen, voName, req.DN, req.Name, roles)
		// Only successful enrollments mutate grid state, so only they enter
		// the replay journal.
		if enrollErr == nil {
			s.journalOp(opEnroll, enrollOp{VO: voName, DN: req.DN, Name: req.Name, Roles: req.Roles})
		}
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	if enrollErr != nil {
		code := http.StatusNotFound
		if errors.Is(enrollErr, vo.ErrDuplicate) {
			code = http.StatusConflict
		}
		writeJSON(w, code, errDTO(enrollErr.Error()))
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"vo": voName, "dn": req.DN, "members": total})
}

// --- jobs ------------------------------------------------------------------

type submitRequest struct {
	VO              string  `json:"vo"`
	User            string  `json:"user"`
	RuntimeSeconds  float64 `json:"runtime_seconds"`
	WalltimeSeconds float64 `json:"walltime_seconds"`
	InputBytes      int64   `json:"input_bytes"`
	OutputBytes     int64   `json:"output_bytes"`
	Priority        int     `json:"priority"`
	Preferred       string  `json:"preferred_site"`
}

type jobJSON struct {
	ID          string `json:"id"`
	VO          string `json:"vo"`
	User        string `json:"user"`
	State       string `json:"state"`
	SubmittedAt string `json:"submitted_sim_time"`
	DoneAt      string `json:"done_sim_time,omitempty"`
	Error       string `json:"error,omitempty"`
}

func jobDTO(rec *JobRecord) jobJSON {
	out := jobJSON{
		ID: rec.ID, VO: rec.VO, User: rec.User, State: rec.State,
		SubmittedAt: rec.SubmittedAt.String(),
		Error:       rec.Error,
	}
	if rec.State != JobSubmitted {
		out.DoneAt = rec.DoneAt.String()
	}
	return out
}

// handleSubmit is Condor-G submission: the request is admitted at the
// current sim time and routed through AUP, the VO's schedd, matchmaking,
// GRAM, and the data path; the terminal callback lands back in the job
// table. 202: accepted for asynchronous execution.
func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errDTO("bad submit body: "+err.Error()))
		return
	}
	if req.VO == "" || req.User == "" {
		writeJSON(w, http.StatusBadRequest, errDTO("vo and user are required"))
		return
	}
	if req.RuntimeSeconds <= 0 {
		writeJSON(w, http.StatusBadRequest, errDTO("runtime_seconds must be positive"))
		return
	}
	var rec JobRecord
	err := s.Do(func() {
		live := applySubmit(s.scen, s.jobs, req)
		// Even a synchronous rejection consumed a job ID and fired its
		// callback, so every executed submission enters the replay journal.
		s.journalOp(opSubmit, req)
		// A synchronous rejection (AUP, unknown VO, SRM denial) has already
		// fired the callback; report the terminal state in the response.
		rec = *live
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	code := http.StatusAccepted
	if rec.State == JobFailed {
		code = http.StatusUnprocessableEntity
	}
	writeJSON(w, code, jobDTO(&rec))
}

func (s *Service) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var rec JobRecord
	found := false
	err := s.Do(func() {
		if live, ok := s.jobs.get(id); ok {
			rec, found = *live, true
		}
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	if !found {
		writeJSON(w, http.StatusNotFound, errDTO("no such job "+id))
		return
	}
	writeJSON(w, http.StatusOK, jobDTO(&rec))
}

type scheddJSON struct {
	VO            string `json:"vo"`
	Idle          int    `json:"idle"`
	Submitted     int    `json:"submitted"`
	Completed     int    `json:"completed"`
	Held          int    `json:"held"`
	MatchFailures int    `json:"match_failures"`
}

func (s *Service) handleJobsSummary(w http.ResponseWriter, r *http.Request) {
	var counts JobCounts
	var schedds []scheddJSON
	err := s.Do(func() {
		counts = s.jobs.counts
		g := s.scen.Grid
		for _, voName := range vo.Grid3VOs {
			sch, ok := g.Schedds[voName]
			if !ok {
				continue
			}
			schedds = append(schedds, scheddJSON{
				VO:            voName,
				Idle:          sch.IdleCount(),
				Submitted:     sch.SubmittedCount(),
				Completed:     sch.CompletedCount(),
				Held:          sch.HeldCount(),
				MatchFailures: sch.MatchFailures(),
			})
		}
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"service_jobs": counts, "schedds": schedds})
}

// appsRequest converts the wire shape into the workload request the grid
// consumes.
func appsRequest(req submitRequest, id string, runtime, walltime time.Duration) apps.Request {
	return apps.Request{
		ID:          id,
		VO:          req.VO,
		User:        req.User,
		Runtime:     runtime,
		Walltime:    walltime,
		InputBytes:  req.InputBytes,
		OutputBytes: req.OutputBytes,
		Priority:    req.Priority,
		Preferred:   req.Preferred,
	}
}

// --- RLS -------------------------------------------------------------------

type replicaJSON struct {
	Site string `json:"site"`
	Path string `json:"path"`
	PFN  string `json:"pfn"`
}

func (s *Service) handleRLS(w http.ResponseWriter, r *http.Request) {
	lfn := r.PathValue("lfn")
	var pfns []rls.PFN
	var lookupErr error
	err := s.Do(func() {
		pfns, lookupErr = s.scen.Grid.RLI.Locate(lfn)
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	if lookupErr != nil {
		writeJSON(w, http.StatusNotFound, errDTO(lookupErr.Error()))
		return
	}
	replicas := make([]replicaJSON, len(pfns))
	for i, p := range pfns {
		replicas[i] = replicaJSON{Site: p.Site, Path: p.Path, PFN: p.String()}
	}
	writeJSON(w, http.StatusOK, map[string]any{"lfn": lfn, "replicas": replicas})
}

// --- monitoring ------------------------------------------------------------

type metricJSON struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var counters, gauges []metricJSON
	var events uint64
	var pending int
	var simNow time.Duration
	obsOn := false
	err := s.Do(func() {
		g := s.scen.Grid
		events = g.Eng.Processed()
		pending = g.Eng.Pending()
		simNow = g.Eng.Now()
		if g.Obs != nil {
			obsOn = true
			snap := g.Obs.Metrics.Snapshot()
			for _, c := range snap.Counters {
				counters = append(counters, metricJSON{Name: c.Name, Value: float64(c.Value)})
			}
			for _, ga := range snap.Gauges {
				gauges = append(gauges, metricJSON{Name: ga.Name, Value: ga.Value})
			}
		}
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"sim_time":       simNow.String(),
		"events":         events,
		"pending_events": pending,
		"observability":  obsOn,
		"counters":       counters,
		"gauges":         gauges,
	})
}

// handleMonALISA serves the repository: without parameters, the series
// inventory; with farm and param, the latest sample of that series.
func (s *Service) handleMonALISA(w http.ResponseWriter, r *http.Request) {
	farm, param := r.URL.Query().Get("farm"), r.URL.Query().Get("param")
	if farm == "" && param == "" {
		var series []string
		if err := s.Do(func() { series = s.scen.Grid.Repo.Series() }); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"series": series})
		return
	}
	if farm == "" || param == "" {
		writeJSON(w, http.StatusBadRequest, errDTO("farm and param go together"))
		return
	}
	var value float64
	var at time.Duration
	found := false
	err := s.Do(func() {
		if m, ok := s.scen.Grid.Repo.Last(farm, param); ok {
			value, at, found = m.Value, m.Time, true
		}
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	if !found {
		writeJSON(w, http.StatusNotFound, errDTO("no samples for "+farm+"/"+param))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"farm": farm, "param": param, "value": value, "sim_time": at.String(),
	})
}

type acdcJSON struct {
	VO              string  `json:"vo"`
	Jobs            int     `json:"jobs_completed"`
	Failed          int     `json:"jobs_failed"`
	SitesUsed       int     `json:"sites_used"`
	TotalCPUDays    float64 `json:"total_cpu_days"`
	AvgRuntimeHours float64 `json:"avg_runtime_hours"`
	Efficiency      float64 `json:"efficiency"`
}

func (s *Service) handleACDC(w http.ResponseWriter, r *http.Request) {
	var records int
	var rows []acdcJSON
	err := s.Do(func() {
		g := s.scen.Grid
		g.ACDC.Pull() // fold the latest completion logs into the warehouse
		records = g.ACDC.Len()
		for _, voName := range vo.Grid3VOs {
			st := g.ACDC.Stats(voName)
			if st.Jobs == 0 && st.Failed == 0 {
				continue
			}
			rows = append(rows, acdcJSON{
				VO: voName, Jobs: st.Jobs, Failed: st.Failed,
				SitesUsed: st.SitesUsed, TotalCPUDays: st.TotalCPUDays,
				AvgRuntimeHours: st.AvgRuntimeHours, Efficiency: st.Efficiency(),
			})
		}
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"records": records, "by_vo": rows})
}

type siteJSON struct {
	Name     string  `json:"name"`
	Location string  `json:"location"`
	Status   string  `json:"status"`
	Uptime   float64 `json:"uptime"`
	CPUs     int     `json:"cpus"`
	Note     string  `json:"note,omitempty"`
	LastErr  string  `json:"last_error,omitempty"`
}

func (s *Service) handleSites(w http.ResponseWriter, r *http.Request) {
	var sites []siteJSON
	err := s.Do(func() {
		g := s.scen.Grid
		for _, e := range g.Catalog.Entries() {
			row := siteJSON{
				Name: e.SiteName, Location: e.Location,
				Status: e.Status().String(), Uptime: e.Uptime(),
				Note: e.Note(), LastErr: e.LastError(),
			}
			if n, ok := g.Nodes[e.SiteName]; ok {
				row.CPUs = n.Spec.CPUs
			}
			sites = append(sites, row)
		}
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"sites": sites})
}

// --- iGOC ------------------------------------------------------------------

type ticketJSON struct {
	ID          int     `json:"id"`
	Site        string  `json:"site"`
	VO          string  `json:"vo"`
	Severity    string  `json:"severity"`
	Summary     string  `json:"summary"`
	State       string  `json:"state"`
	Assignee    string  `json:"assignee,omitempty"`
	OpenedSim   string  `json:"opened_sim_time"`
	ResolvedSim string  `json:"resolved_sim_time,omitempty"`
	EffortHours float64 `json:"effort_hours"`
	Reopens     int     `json:"reopens"`
}

func ticketDTO(t *goc.Ticket) ticketJSON {
	out := ticketJSON{
		ID: t.ID, Site: t.Site, VO: t.VO,
		Severity: t.Severity.String(), Summary: t.Summary,
		State: t.State.String(), Assignee: t.Assignee,
		OpenedSim:   t.Opened.String(),
		EffortHours: t.EffortHours, Reopens: t.Reopens,
	}
	if t.State == goc.Resolved {
		out.ResolvedSim = t.Resolved.String()
	}
	return out
}

func (s *Service) handleTickets(w http.ResponseWriter, r *http.Request) {
	var sites []string
	if site := r.URL.Query().Get("site"); site != "" {
		sites = append(sites, site)
	}
	var open []ticketJSON
	var total int
	var mttr time.Duration
	err := s.Do(func() {
		d := s.scen.Grid.Desk
		total = d.TicketCount()
		mttr = d.MeanTimeToResolve()
		for _, t := range d.OpenTickets(sites...) {
			open = append(open, ticketDTO(t))
		}
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total": total, "open": open, "mttr_sim_seconds": mttr.Seconds(),
	})
}

func (s *Service) handleTicket(w http.ResponseWriter, r *http.Request) {
	var id int
	if _, err := fmt.Sscanf(r.PathValue("id"), "%d", &id); err != nil {
		writeJSON(w, http.StatusBadRequest, errDTO("bad ticket id"))
		return
	}
	var tk goc.Ticket
	var lookupErr error
	err := s.Do(func() {
		t, err := s.scen.Grid.Desk.Ticket(id)
		if err != nil {
			lookupErr = err
			return
		}
		tk = *t
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	if lookupErr != nil {
		writeJSON(w, http.StatusNotFound, errDTO(lookupErr.Error()))
		return
	}
	writeJSON(w, http.StatusOK, ticketDTO(&tk))
}
