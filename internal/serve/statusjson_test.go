package serve

import (
	"encoding/json"
	"testing"
	"time"
)

// TestStatusJSONRoundTrip pins the grid3.serve-status/1 wire shape: the
// frozen kind and key names, and that the record parses back.
func TestStatusJSONRoundTrip(t *testing.T) {
	st := Status{
		SimNow:        36 * time.Hour,
		SimClock:      time.Date(2003, 10, 24, 12, 0, 0, 0, time.UTC),
		Pace:          3600,
		Events:        123456,
		Finished:      false,
		Jobs:          JobCounts{Submitted: 10, Completed: 7, Failed: 1},
		Accepted:      42,
		Shed:          3,
		UptimeSeconds: 99.5,
	}
	data, err := StatusJSON(st)
	if err != nil {
		t.Fatal(err)
	}
	if data[len(data)-1] != '\n' {
		t.Fatal("status JSON must be newline-terminated")
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("status JSON does not round-trip: %v\n%s", err, data)
	}
	if m["schema"] != StatusSchema {
		t.Fatalf("schema = %v, want %q", m["schema"], StatusSchema)
	}
	if m["kind"] != StatusKind {
		t.Fatalf("kind = %v, want %q", m["kind"], StatusKind)
	}
	for _, k := range []string{"sim_seconds", "sim_clock", "pace",
		"events_processed", "finished", "service_jobs_submitted",
		"service_jobs_completed", "service_jobs_failed",
		"requests_accepted", "requests_shed", "uptime_seconds"} {
		if _, ok := m[k]; !ok {
			t.Errorf("frozen key %q missing", k)
		}
	}
	if m["sim_seconds"] != 36*3600.0 {
		t.Errorf("sim_seconds = %v", m["sim_seconds"])
	}
	if m["sim_clock"] != "2003-10-24T12:00:00Z" {
		t.Errorf("sim_clock = %v", m["sim_clock"])
	}
}
