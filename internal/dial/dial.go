// Package dial implements DIAL — Distributed Interactive Analysis of
// Large datasets — the ATLAS analysis layer of §4.1/§6.1: "The distributed
// analysis program DIAL is used for creation and analysis of physics
// histograms" and "A dataset catalog was created for produced samples,
// making them available to the DIAL distributed analysis package."
//
// DIAL's model: a *dataset* names a set of logical files; an *analysis
// task* maps each file to a partial result (a histogram) and merges the
// partials. The scheduler splits a task into one sub-job per file block,
// runs the sub-jobs wherever the grid offers capacity, and folds results
// as they arrive.
package dial

import (
	"errors"
	"fmt"
	"sort"
)

// Errors.
var (
	ErrNoDataset   = errors.New("dial: no such dataset")
	ErrEmptyDS     = errors.New("dial: dataset has no files")
	ErrDuplicateDS = errors.New("dial: dataset already registered")
	ErrJobFailed   = errors.New("dial: analysis sub-job failed")
)

// Dataset names a set of logical files produced by a production campaign.
type Dataset struct {
	Name  string
	Files []string // LFNs
	// Bytes per file, aligned with Files (0 = unknown).
	Sizes []int64
}

// TotalBytes sums known file sizes.
func (d *Dataset) TotalBytes() int64 {
	var t int64
	for _, s := range d.Sizes {
		t += s
	}
	return t
}

// Catalog is the dataset catalog fed by production ("making them
// available to the DIAL distributed analysis package").
type Catalog struct {
	sets map[string]*Dataset
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{sets: make(map[string]*Dataset)}
}

// Register adds a dataset.
func (c *Catalog) Register(d *Dataset) error {
	if d.Name == "" {
		return errors.New("dial: dataset without name")
	}
	if _, dup := c.sets[d.Name]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateDS, d.Name)
	}
	c.sets[d.Name] = d
	return nil
}

// Append adds files to an existing dataset, creating it if needed — how
// production registers outputs sample by sample.
func (c *Catalog) Append(name, lfn string, bytes int64) {
	d, ok := c.sets[name]
	if !ok {
		d = &Dataset{Name: name}
		c.sets[name] = d
	}
	d.Files = append(d.Files, lfn)
	d.Sizes = append(d.Sizes, bytes)
}

// Lookup returns a dataset.
func (c *Catalog) Lookup(name string) (*Dataset, error) {
	d, ok := c.sets[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoDataset, name)
	}
	return d, nil
}

// Names lists registered datasets, sorted.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.sets))
	for n := range c.sets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Histogram is the analysis result type: named bins of event counts.
// (Real DIAL produced ROOT histograms; the merge semantics are what
// matter here.)
type Histogram struct {
	Bins []float64
}

// Merge folds another histogram into h (bin-wise sum, growing as needed).
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	if len(o.Bins) > len(h.Bins) {
		grown := make([]float64, len(o.Bins))
		copy(grown, h.Bins)
		h.Bins = grown
	}
	for i, v := range o.Bins {
		h.Bins[i] += v
	}
}

// Entries sums all bins.
func (h *Histogram) Entries() float64 {
	t := 0.0
	for _, v := range h.Bins {
		t += v
	}
	return t
}

// Task is one analysis definition: Process maps a file to a partial
// histogram (nil error required for the partial to count).
type Task struct {
	Name string
	// FilesPerJob controls the split granularity (≥1).
	FilesPerJob int
	// Process analyzes one file.
	Process func(lfn string, bytes int64) (*Histogram, error)
}

// SubJob is one schedulable unit of a task.
type SubJob struct {
	Index int
	Files []string
	Sizes []int64
}

// Split partitions a dataset into sub-jobs.
func (t *Task) Split(d *Dataset) ([]SubJob, error) {
	if len(d.Files) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrEmptyDS, d.Name)
	}
	per := t.FilesPerJob
	if per < 1 {
		per = 1
	}
	var jobs []SubJob
	for start := 0; start < len(d.Files); start += per {
		end := start + per
		if end > len(d.Files) {
			end = len(d.Files)
		}
		sizes := make([]int64, end-start)
		if len(d.Sizes) >= end {
			copy(sizes, d.Sizes[start:end])
		}
		jobs = append(jobs, SubJob{
			Index: len(jobs),
			Files: append([]string(nil), d.Files[start:end]...),
			Sizes: sizes,
		})
	}
	return jobs, nil
}

// Runner executes sub-jobs. The grid adapter submits each as a compute
// job; done must be called exactly once per sub-job.
type Runner interface {
	RunSubJob(task *Task, job SubJob, done func(*Histogram, error))
}

// LocalRunner processes sub-jobs synchronously in place — interactive
// DIAL against locally cached data.
type LocalRunner struct{}

// RunSubJob implements Runner.
func (LocalRunner) RunSubJob(task *Task, job SubJob, done func(*Histogram, error)) {
	merged := &Histogram{}
	for i, lfn := range job.Files {
		var bytes int64
		if i < len(job.Sizes) {
			bytes = job.Sizes[i]
		}
		h, err := task.Process(lfn, bytes)
		if err != nil {
			done(nil, fmt.Errorf("%w: %s: %v", ErrJobFailed, lfn, err))
			return
		}
		merged.Merge(h)
	}
	done(merged, nil)
}

// Result is a completed analysis.
type Result struct {
	Histogram Histogram
	SubJobs   int
	Failed    int
}

// Analyze splits the dataset, runs every sub-job through the runner, and
// merges partials as they land. onDone fires once when all sub-jobs have
// reported. Failed sub-jobs are counted, not retried (the analysis user
// resubmits interactively).
func Analyze(cat *Catalog, dsName string, task *Task, r Runner, onDone func(Result)) error {
	d, err := cat.Lookup(dsName)
	if err != nil {
		return err
	}
	jobs, err := task.Split(d)
	if err != nil {
		return err
	}
	res := &Result{SubJobs: len(jobs)}
	remaining := len(jobs)
	for _, job := range jobs {
		r.RunSubJob(task, job, func(h *Histogram, err error) {
			if err != nil {
				res.Failed++
			} else {
				res.Histogram.Merge(h)
			}
			remaining--
			if remaining == 0 {
				onDone(*res)
			}
		})
	}
	return nil
}
