package dial

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func sampleCatalog(t *testing.T, files int) *Catalog {
	t.Helper()
	c := NewCatalog()
	for i := 0; i < files; i++ {
		c.Append("dc1.esd", fmt.Sprintf("lfn:esd-%03d", i), 2<<30)
	}
	return c
}

// countTask returns one entry per file in bin 0, plus a bin-1 marker per
// gigabyte, so merges are checkable.
func countTask(per int) *Task {
	return &Task{
		Name:        "count",
		FilesPerJob: per,
		Process: func(lfn string, bytes int64) (*Histogram, error) {
			return &Histogram{Bins: []float64{1, float64(bytes >> 30)}}, nil
		},
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	if err := c.Register(&Dataset{Name: "x", Files: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(&Dataset{Name: "x"}); !errors.Is(err, ErrDuplicateDS) {
		t.Fatalf("dup err = %v", err)
	}
	if err := c.Register(&Dataset{}); err == nil {
		t.Fatal("unnamed dataset accepted")
	}
	if _, err := c.Lookup("ghost"); !errors.Is(err, ErrNoDataset) {
		t.Fatalf("lookup err = %v", err)
	}
	c.Append("y", "lfn:1", 100)
	c.Append("y", "lfn:2", 200)
	d, err := c.Lookup("y")
	if err != nil || len(d.Files) != 2 || d.TotalBytes() != 300 {
		t.Fatalf("appended dataset = %+v, %v", d, err)
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Fatalf("names = %v", names)
	}
}

func TestSplitGranularity(t *testing.T) {
	c := sampleCatalog(t, 10)
	d, _ := c.Lookup("dc1.esd")
	jobs, err := countTask(3).Split(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 4 {
		t.Fatalf("jobs = %d, want ceil(10/3)=4", len(jobs))
	}
	if len(jobs[3].Files) != 1 {
		t.Fatalf("last job files = %d", len(jobs[3].Files))
	}
	if _, err := countTask(1).Split(&Dataset{Name: "empty"}); !errors.Is(err, ErrEmptyDS) {
		t.Fatalf("empty split err = %v", err)
	}
	// FilesPerJob < 1 degrades to 1.
	jobs, _ = countTask(0).Split(d)
	if len(jobs) != 10 {
		t.Fatalf("per=0 jobs = %d", len(jobs))
	}
}

func TestAnalyzeMergesAllFiles(t *testing.T) {
	c := sampleCatalog(t, 25)
	var res Result
	done := false
	err := Analyze(c, "dc1.esd", countTask(4), LocalRunner{}, func(r Result) {
		res = r
		done = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("onDone never fired")
	}
	if res.SubJobs != 7 || res.Failed != 0 {
		t.Fatalf("result = %+v", res)
	}
	// Bin 0 counts files; bin 1 counts GiB (2 per file).
	if res.Histogram.Bins[0] != 25 || res.Histogram.Bins[1] != 50 {
		t.Fatalf("histogram = %+v", res.Histogram)
	}
	if res.Histogram.Entries() != 75 {
		t.Fatalf("entries = %v", res.Histogram.Entries())
	}
}

func TestAnalyzeCountsFailures(t *testing.T) {
	c := sampleCatalog(t, 6)
	task := &Task{
		Name:        "flaky",
		FilesPerJob: 1,
		Process: func(lfn string, bytes int64) (*Histogram, error) {
			if lfn == "lfn:esd-003" {
				return nil, errors.New("corrupt file")
			}
			return &Histogram{Bins: []float64{1}}, nil
		},
	}
	var res Result
	if err := Analyze(c, "dc1.esd", task, LocalRunner{}, func(r Result) { res = r }); err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.Histogram.Bins[0] != 5 {
		t.Fatalf("result = %+v", res)
	}
}

func TestAnalyzeUnknownDataset(t *testing.T) {
	c := NewCatalog()
	if err := Analyze(c, "nope", countTask(1), LocalRunner{}, func(Result) {}); !errors.Is(err, ErrNoDataset) {
		t.Fatalf("err = %v", err)
	}
}

func TestHistogramMergeGrows(t *testing.T) {
	a := &Histogram{Bins: []float64{1}}
	a.Merge(&Histogram{Bins: []float64{1, 2, 3}})
	if len(a.Bins) != 3 || a.Bins[0] != 2 || a.Bins[2] != 3 {
		t.Fatalf("merged = %+v", a)
	}
	a.Merge(nil) // no-op
	if a.Entries() != 7 {
		t.Fatalf("entries = %v", a.Entries())
	}
}

// Property: for any file count and granularity, Split covers every file
// exactly once and Analyze's file-count bin equals the dataset size.
func TestSplitCoverageProperty(t *testing.T) {
	f := func(nFiles, per uint8) bool {
		n := int(nFiles)%200 + 1
		c := NewCatalog()
		for i := 0; i < n; i++ {
			c.Append("ds", fmt.Sprintf("lfn:%04d", i), 1<<30)
		}
		task := countTask(int(per) % 17)
		var res Result
		if err := Analyze(c, "ds", task, LocalRunner{}, func(r Result) { res = r }); err != nil {
			return false
		}
		return res.Failed == 0 && int(res.Histogram.Bins[0]) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
