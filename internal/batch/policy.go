package batch

// FIFO is the OpenPBS-style policy: highest priority first, then submission
// order, skipping jobs whose VO quota is exhausted.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "fifo" }

// Next implements Policy.
func (FIFO) Next(queue []*Job, sys *System) int {
	best := -1
	for i, j := range queue {
		if !sys.quotaAllows(j.VO) {
			continue
		}
		if best == -1 || j.Priority > queue[best].Priority {
			best = i
		}
	}
	return best
}

// FairShare is the Condor-style policy: among queued VOs with quota
// headroom, pick the VO with the lowest decayed usage per share, then the
// highest-priority / earliest job of that VO. Shares default to 1.
type FairShare struct {
	// Shares weights each VO; a VO with share 2 may consume twice the
	// usage of a share-1 VO before losing priority.
	Shares map[string]float64
}

// Name implements Policy.
func (FairShare) Name() string { return "fairshare" }

// Next implements Policy.
func (f FairShare) Next(queue []*Job, sys *System) int {
	type cand struct {
		idx    int
		normed float64
	}
	best := -1
	var bestNormed float64
	for i, j := range queue {
		if !sys.quotaAllows(j.VO) {
			continue
		}
		share := 1.0
		if f.Shares != nil {
			if s, ok := f.Shares[j.VO]; ok && s > 0 {
				share = s
			}
		}
		normed := sys.Usage(j.VO) / share
		switch {
		case best == -1,
			normed < bestNormed,
			normed == bestNormed && betterWithinVO(j, queue[best]):
			best, bestNormed = i, normed
		}
	}
	return best
}

// betterWithinVO orders jobs of equally-deserving VOs: priority, then
// submission sequence.
func betterWithinVO(a, b *Job) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.seq < b.seq
}

// Priority is the LSF-style policy: strict priority classes with FIFO
// within a class; quota-blocked jobs are skipped but do not block
// lower-priority work (no head-of-line blocking).
type Priority struct{}

// Name implements Policy.
func (Priority) Name() string { return "priority" }

// Next implements Policy.
func (Priority) Next(queue []*Job, sys *System) int {
	best := -1
	for i, j := range queue {
		if !sys.quotaAllows(j.VO) {
			continue
		}
		if best == -1 || j.Priority > queue[best].Priority ||
			(j.Priority == queue[best].Priority && j.seq < queue[best].seq) {
			best = i
		}
	}
	return best
}
