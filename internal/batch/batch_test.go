package batch

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"grid3/internal/sim"
)

func newSys(t *testing.T, slots int, opts ...func(*Config)) (*sim.Engine, *System) {
	t.Helper()
	eng := sim.NewEngine(sim.Grid3Epoch)
	cfg := Config{Name: "test-pbs", Slots: slots, Policy: FIFO{}, EnforceWall: true, MaxWall: 100 * time.Hour}
	for _, o := range opts {
		o(&cfg)
	}
	return eng, New(eng, cfg)
}

func job(id, vo string, runtime, walltime time.Duration) *Job {
	return &Job{ID: id, VO: vo, Account: "grp_" + vo, Runtime: runtime, Walltime: walltime}
}

func TestSubmitRunComplete(t *testing.T) {
	eng, sys := newSys(t, 2)
	var started, done []string
	j := job("j1", "usatlas", 2*time.Hour, 4*time.Hour)
	j.OnStart = func(j *Job) { started = append(started, j.ID) }
	j.OnDone = func(j *Job) { done = append(done, j.ID) }
	if err := sys.Submit(j); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(started) != 1 || len(done) != 1 {
		t.Fatalf("callbacks: started %v done %v", started, done)
	}
	if j.State != Done || j.Outcome != Completed {
		t.Fatalf("state %v outcome %v", j.State, j.Outcome)
	}
	if j.Ended-j.Started != 2*time.Hour {
		t.Fatalf("execution span = %v", j.Ended-j.Started)
	}
	if sys.TotalCompleted() != 1 || sys.TotalFailed() != 0 {
		t.Fatal("counters wrong")
	}
	if sys.BusyTime() != 2*time.Hour {
		t.Fatalf("BusyTime = %v", sys.BusyTime())
	}
}

func TestQueueingWhenFull(t *testing.T) {
	eng, sys := newSys(t, 1)
	j1 := job("j1", "a", time.Hour, 2*time.Hour)
	j2 := job("j2", "a", time.Hour, 2*time.Hour)
	sys.Submit(j1)
	sys.Submit(j2)
	if sys.RunningCount() != 1 || sys.QueuedCount() != 1 {
		t.Fatalf("running %d queued %d", sys.RunningCount(), sys.QueuedCount())
	}
	eng.Run()
	if j2.Started != time.Hour {
		t.Fatalf("j2 started at %v, want after j1 finishes", j2.Started)
	}
}

func TestWalltimeEnforcement(t *testing.T) {
	eng, sys := newSys(t, 1)
	j := job("over", "a", 10*time.Hour, 3*time.Hour)
	sys.Submit(j)
	eng.Run()
	if j.Outcome != WalltimeExceeded {
		t.Fatalf("outcome = %v, want WalltimeExceeded", j.Outcome)
	}
	if j.Ended != 3*time.Hour {
		t.Fatalf("killed at %v, want 3h", j.Ended)
	}
}

func TestCondorDoesNotEnforceWalltime(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	sys := New(eng, Config{Name: "condor", Slots: 1, Policy: FairShare{}, EnforceWall: false})
	j := job("over", "a", 10*time.Hour, 3*time.Hour)
	sys.Submit(j)
	eng.Run()
	if j.Outcome != Completed || j.Ended != 10*time.Hour {
		t.Fatalf("condor job outcome %v ended %v", j.Outcome, j.Ended)
	}
}

func TestAdmissionControl(t *testing.T) {
	_, sys := newSys(t, 1)
	long := job("long", "uscms", 200*time.Hour, 200*time.Hour)
	if err := sys.Submit(long); !errors.Is(err, ErrWalltimeTooLong) {
		t.Fatalf("admission err = %v", err)
	}
	if err := sys.Submit(&Job{ID: "nowall", VO: "a", Runtime: time.Hour}); err == nil {
		t.Fatal("zero-walltime job admitted")
	}
	if err := sys.Submit(&Job{VO: "a", Runtime: time.Hour, Walltime: time.Hour}); err == nil {
		t.Fatal("job without ID admitted")
	}
}

func TestDuplicateJobID(t *testing.T) {
	_, sys := newSys(t, 2)
	sys.Submit(job("dup", "a", time.Hour, 2*time.Hour))
	if err := sys.Submit(job("dup", "a", time.Hour, 2*time.Hour)); !errors.Is(err, ErrDuplicateJob) {
		t.Fatalf("duplicate err = %v", err)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	eng, sys := newSys(t, 1)
	j1 := job("run", "a", 5*time.Hour, 6*time.Hour)
	j2 := job("wait", "a", time.Hour, 2*time.Hour)
	sys.Submit(j1)
	sys.Submit(j2)
	if err := sys.Cancel("wait"); err != nil {
		t.Fatal(err)
	}
	if j2.Outcome != Cancelled {
		t.Fatalf("queued cancel outcome = %v", j2.Outcome)
	}
	eng.RunUntil(time.Hour)
	if err := sys.Cancel("run"); err != nil {
		t.Fatal(err)
	}
	if j1.Outcome != Cancelled || j1.State != Done {
		t.Fatalf("running cancel: %v %v", j1.State, j1.Outcome)
	}
	if sys.FreeSlots() != 1 {
		t.Fatalf("slot not freed: %d", sys.FreeSlots())
	}
	eng.Run()
	if err := sys.Cancel("run"); !errors.Is(err, ErrNoSuchJob) {
		t.Fatalf("cancel done job err = %v", err)
	}
}

func TestFIFOPriority(t *testing.T) {
	eng, sys := newSys(t, 1)
	blocker := job("blocker", "a", time.Hour, 2*time.Hour)
	low := job("low", "a", time.Hour, 2*time.Hour)
	low.Priority = -10 // exerciser backfill
	high := job("high", "a", time.Hour, 2*time.Hour)
	sys.Submit(blocker)
	sys.Submit(low)
	sys.Submit(high)
	eng.Run()
	if !(high.Started < low.Started) {
		t.Fatalf("priority ignored: high at %v, low at %v", high.Started, low.Started)
	}
}

func TestVOQuota(t *testing.T) {
	eng, sys := newSys(t, 4, func(c *Config) {
		c.VOQuota = map[string]int{"uscms": 1}
	})
	c1 := job("c1", "uscms", 4*time.Hour, 5*time.Hour)
	c2 := job("c2", "uscms", 4*time.Hour, 5*time.Hour)
	a1 := job("a1", "usatlas", time.Hour, 2*time.Hour)
	sys.Submit(c1)
	sys.Submit(c2)
	sys.Submit(a1)
	eng.RunUntil(time.Minute)
	if sys.RunningByVO("uscms") != 1 {
		t.Fatalf("uscms running = %d, want quota 1", sys.RunningByVO("uscms"))
	}
	if a1.State != Running {
		t.Fatal("quota on uscms blocked usatlas")
	}
	eng.Run()
	if c2.Started < c1.Ended {
		t.Fatal("second uscms job ran inside quota window")
	}
}

func TestFairShare(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	sys := New(eng, Config{Name: "condor", Slots: 1, Policy: FairShare{}, EnforceWall: false})
	// VO "hog" accumulates usage first.
	sys.Submit(job("hog1", "hog", 10*time.Hour, 12*time.Hour))
	// Queue one job from each VO while the slot is busy; when it frees,
	// fair-share should pick the zero-usage VO even though hog submitted
	// earlier.
	eng.RunUntil(9 * time.Hour)
	h2 := job("hog2", "hog", time.Hour, 2*time.Hour)
	n1 := job("new1", "newvo", time.Hour, 2*time.Hour)
	sys.Submit(h2)
	sys.Submit(n1)
	eng.Run()
	if !(n1.Started < h2.Started) {
		t.Fatalf("fair share ignored usage: new at %v, hog at %v", n1.Started, h2.Started)
	}
}

func TestFairShareWeights(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	shares := map[string]float64{"big": 4, "small": 1}
	sys := New(eng, Config{Name: "condor", Slots: 1, Policy: FairShare{Shares: shares}, EnforceWall: false})
	// Equal raw usage; big's share discounts it 4x so big goes first.
	sys.Submit(job("b0", "big", time.Hour, 2*time.Hour))
	eng.Run()
	sys.Submit(job("s0", "small", time.Hour, 2*time.Hour))
	eng.Run()
	// Occupy the slot so both contenders queue, then let the policy pick.
	sys.Submit(job("blocker", "other", time.Hour, 2*time.Hour))
	b1 := job("b1", "big", time.Hour, 2*time.Hour)
	s1 := job("s1", "small", time.Hour, 2*time.Hour)
	sys.Submit(s1)
	sys.Submit(b1)
	eng.Run()
	if !(b1.Started < s1.Started) {
		t.Fatalf("share weights ignored: big at %v, small at %v", b1.Started, s1.Started)
	}
}

func TestUsageDecay(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	sys := New(eng, Config{Name: "condor", Slots: 1, Policy: FairShare{}})
	sys.Submit(job("j", "vo1", 10*time.Hour, 12*time.Hour))
	eng.Run()
	u0 := sys.Usage("vo1")
	if u0 <= 0 {
		t.Fatal("no usage recorded")
	}
	eng.RunUntil(eng.Now() + fairShareHalfLife)
	u1 := sys.Usage("vo1")
	if u1 > u0*0.51 || u1 < u0*0.49 {
		t.Fatalf("usage after one half-life = %v, want ~%v/2", u1, u0)
	}
}

func TestPriorityPolicy(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	sys := New(eng, Config{Name: "lsf", Slots: 1, Policy: Priority{}, EnforceWall: true})
	sys.Submit(job("block", "a", time.Hour, 2*time.Hour))
	j1 := job("p1", "a", time.Hour, 2*time.Hour)
	j1.Priority = 1
	j5 := job("p5", "a", time.Hour, 2*time.Hour)
	j5.Priority = 5
	j5b := job("p5b", "a", time.Hour, 2*time.Hour)
	j5b.Priority = 5
	sys.Submit(j1)
	sys.Submit(j5)
	sys.Submit(j5b)
	eng.Run()
	if !(j5.Started < j5b.Started && j5b.Started < j1.Started) {
		t.Fatalf("priority order wrong: %v %v %v", j5.Started, j5b.Started, j1.Started)
	}
}

func TestKillRunning(t *testing.T) {
	eng, sys := newSys(t, 4)
	jobs := make([]*Job, 4)
	for i := range jobs {
		jobs[i] = job(fmt.Sprintf("j%d", i), "uscms", 10*time.Hour, 20*time.Hour)
		sys.Submit(jobs[i])
	}
	eng.RunUntil(time.Hour)
	// Whole-site service failure: all uscms jobs die in a group (§6.2).
	n := sys.KillRunning(func(j *Job) bool { return j.VO == "uscms" }, NodeFailure)
	if n != 4 {
		t.Fatalf("killed %d, want 4", n)
	}
	for _, j := range jobs {
		if j.Outcome != NodeFailure {
			t.Fatalf("job %s outcome %v", j.ID, j.Outcome)
		}
	}
	if sys.FreeSlots() != 4 {
		t.Fatalf("slots not freed: %d", sys.FreeSlots())
	}
	// The scheduled completion events must not fire afterwards.
	eng.Run()
	if sys.TotalCompleted() != 0 {
		t.Fatal("killed job later completed")
	}
}

func TestDrainSlotsIdleFirst(t *testing.T) {
	eng, sys := newSys(t, 4)
	sys.Submit(job("j1", "a", 10*time.Hour, 20*time.Hour))
	eng.RunUntil(time.Minute)
	killed := sys.DrainSlots(3) // 3 idle slots absorb it
	if killed != 0 {
		t.Fatalf("drain killed %d jobs with idle slots available", killed)
	}
	if sys.AvailableSlots() != 1 || sys.FreeSlots() != 0 {
		t.Fatalf("available %d free %d", sys.AvailableSlots(), sys.FreeSlots())
	}
}

func TestDrainSlotsKillsYoungest(t *testing.T) {
	eng, sys := newSys(t, 2)
	old := job("old", "a", 10*time.Hour, 20*time.Hour)
	sys.Submit(old)
	eng.RunUntil(time.Hour)
	young := job("young", "a", 10*time.Hour, 20*time.Hour)
	sys.Submit(young)
	eng.RunUntil(2 * time.Hour)
	killed := sys.DrainSlots(1)
	if killed != 1 {
		t.Fatalf("killed %d, want 1", killed)
	}
	if young.State != Done || young.Outcome != NodeFailure {
		t.Fatal("youngest job not the rollover victim")
	}
	if old.State != Running {
		t.Fatal("older job should survive")
	}
	sys.RestoreSlots(1)
	if sys.AvailableSlots() != 2 {
		t.Fatalf("restore failed: %d", sys.AvailableSlots())
	}
	eng.Run()
	if old.Outcome != Completed {
		t.Fatal("survivor did not complete")
	}
}

func TestDrainDoesNotLetQueueStealSlot(t *testing.T) {
	eng, sys := newSys(t, 1)
	running := job("r", "a", 10*time.Hour, 20*time.Hour)
	waiting := job("w", "a", time.Hour, 2*time.Hour)
	sys.Submit(running)
	sys.Submit(waiting)
	eng.RunUntil(time.Minute)
	sys.DrainSlots(1)
	if sys.FreeSlots() != 0 {
		t.Fatalf("free slots = %d after full drain", sys.FreeSlots())
	}
	if waiting.State == Running {
		t.Fatal("queued job started on a drained slot")
	}
	sys.RestoreSlots(1)
	eng.Run()
	if waiting.Outcome != Completed {
		t.Fatal("waiting job never ran after restore")
	}
}

func TestFlushQueue(t *testing.T) {
	eng, sys := newSys(t, 1)
	sys.Submit(job("r", "a", 10*time.Hour, 20*time.Hour))
	sys.Submit(job("q1", "a", time.Hour, 2*time.Hour))
	sys.Submit(job("q2", "a", time.Hour, 2*time.Hour))
	eng.RunUntil(time.Minute)
	if n := sys.FlushQueue(); n != 2 {
		t.Fatalf("flushed %d, want 2", n)
	}
	if sys.QueuedCount() != 0 || sys.RunningCount() != 1 {
		t.Fatal("flush disturbed running job")
	}
}

func TestRecordsDrain(t *testing.T) {
	eng, sys := newSys(t, 2)
	sys.Submit(job("a", "usatlas", time.Hour, 2*time.Hour))
	sys.Submit(job("b", "uscms", 30*time.Hour, 40*time.Hour))
	eng.Run()
	recs := sys.DrainRecords()
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	byID := map[string]Record{}
	for _, r := range recs {
		byID[r.JobID] = r
	}
	if byID["a"].VO != "usatlas" || byID["a"].Runtime() != time.Hour {
		t.Fatalf("record a = %+v", byID["a"])
	}
	if byID["b"].Runtime() != 30*time.Hour {
		t.Fatalf("record b runtime = %v", byID["b"].Runtime())
	}
	if len(sys.DrainRecords()) != 0 {
		t.Fatal("drain did not clear records")
	}
}

func TestCloseRejectsSubmissions(t *testing.T) {
	_, sys := newSys(t, 1)
	sys.Close()
	if err := sys.Submit(job("x", "a", time.Hour, 2*time.Hour)); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("closed submit err = %v", err)
	}
}

func TestManyJobsThroughput(t *testing.T) {
	eng, sys := newSys(t, 10)
	const n = 500
	for i := 0; i < n; i++ {
		sys.Submit(job(fmt.Sprintf("j%03d", i), "ivdgl", time.Hour, 2*time.Hour))
	}
	eng.Run()
	if sys.TotalCompleted() != n {
		t.Fatalf("completed %d/%d", sys.TotalCompleted(), n)
	}
	// 500 1-hour jobs over 10 slots: 50 hours of makespan.
	if eng.Now() != 50*time.Hour {
		t.Fatalf("makespan = %v, want 50h", eng.Now())
	}
	if sys.BusyTime() != 500*time.Hour {
		t.Fatalf("busy time = %v", sys.BusyTime())
	}
}
