// Package batch implements the local resource management systems behind
// Grid3 gatekeepers: OpenPBS-, Condor-, and LSF-style schedulers with
// per-VO policies (§5: "Appropriate policies were implemented at each local
// batch scheduler (OpenPBS, Condor, and LSF) and Unix group accounts were
// established at each site for each VO").
//
// A System owns a fixed pool of CPU slots and a queue. Scheduling policy is
// pluggable: FIFO with priorities (OpenPBS), decayed-usage fair-share
// (Condor), or strict priority (LSF). PBS and LSF enforce the requested
// walltime by killing overrunning jobs; Condor does not. Failure injection
// (worker-node loss, nightly rollover) enters through KillRunning and
// DrainSlots.
package batch

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"grid3/internal/obs"
	"grid3/internal/sim"
)

// Instruments is the batch layer's observability wiring: a run span per
// executed job plus queue-wait and outcome metrics. Shared by every site's
// batch system (the registry aggregates grid-wide); nil disables.
type Instruments struct {
	Tracer    *obs.Tracer
	QueueWait *obs.Histogram // local queue wait, submit → start, seconds
	Started   *obs.Counter
	Completed *obs.Counter
	Failed    *obs.Counter
}

// NewInstruments wires batch instruments into an observer; nil in, nil out.
func NewInstruments(o *obs.Observer) *Instruments {
	if o == nil {
		return nil
	}
	return &Instruments{
		Tracer:    o.Tracer,
		QueueWait: o.Metrics.Histogram("batch.queue_wait.seconds", obs.DurationBounds),
		Started:   o.Metrics.Counter("batch.started"),
		Completed: o.Metrics.Counter("batch.completed"),
		Failed:    o.Metrics.Counter("batch.failed"),
	}
}

// State is a job's lifecycle state.
type State int

// Job states.
const (
	Queued State = iota
	Running
	Done
)

func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Outcome describes how a job left the system.
type Outcome int

// Job outcomes.
const (
	Completed Outcome = iota
	WalltimeExceeded
	NodeFailure
	Cancelled
	Rejected
)

func (o Outcome) String() string {
	switch o {
	case Completed:
		return "completed"
	case WalltimeExceeded:
		return "walltime-exceeded"
	case NodeFailure:
		return "node-failure"
	case Cancelled:
		return "cancelled"
	case Rejected:
		return "rejected"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Errors.
var (
	ErrWalltimeTooLong = errors.New("batch: requested walltime exceeds queue limit")
	ErrDuplicateJob    = errors.New("batch: duplicate job id")
	ErrNoSuchJob       = errors.New("batch: no such job")
	ErrQueueClosed     = errors.New("batch: queue closed")
)

// Job is one batch job. Runtime is the job's true compute duration, known
// to the workload generator but not to the scheduler, which sees only the
// requested Walltime.
type Job struct {
	ID       string
	VO       string
	Account  string // local Unix group account
	Walltime time.Duration
	Runtime  time.Duration
	Priority int // higher runs first; exerciser backfill uses negative

	Submitted time.Duration
	Started   time.Duration
	Ended     time.Duration
	State     State
	Outcome   Outcome

	// OnStart fires when the job begins executing; OnDone fires exactly
	// once when it leaves the system for any reason.
	OnStart func(*Job)
	OnDone  func(*Job)

	// Parent is the submit-side lifecycle span the run span is linked
	// under (0 = untraced).
	Parent obs.SpanID

	endEvent sim.Event
	seq      uint64
	runSpan  obs.SpanID
}

// CPUTime returns consumed CPU time (wall occupancy of one slot).
func (j *Job) CPUTime() time.Duration {
	if j.State != Done || j.Started == 0 && j.Ended == 0 {
		return 0
	}
	return j.Ended - j.Started
}

// Record is the completion log entry ACDC's job monitor pulls (§5.2).
type Record struct {
	JobID     string
	VO        string
	Account   string
	Submitted time.Duration
	Started   time.Duration
	Ended     time.Duration
	Outcome   Outcome
	Walltime  time.Duration
}

// Runtime returns the record's execution duration.
func (r Record) Runtime() time.Duration {
	if r.Started == 0 && r.Ended == 0 {
		return 0
	}
	return r.Ended - r.Started
}

// Policy selects the next queued job to start. It returns the index into
// queue, or -1 to leave the CPU idle (e.g. quota exhausted for every
// queued VO). Implementations must be deterministic.
type Policy interface {
	Next(queue []*Job, sys *System) int
	Name() string
}

// Config configures a batch system.
type Config struct {
	Name        string
	Slots       int
	Policy      Policy
	MaxWall     time.Duration // admission limit; 0 = unlimited
	EnforceWall bool          // kill jobs at their requested walltime
	// VOQuota caps simultaneously running jobs per VO; missing VO =
	// no cap. This is the per-VO site policy layer of §5.
	VOQuota map[string]int
}

// System is one site's batch scheduler.
type System struct {
	cfg        Config
	eng        sim.Scheduler
	queue      []*Job
	running    map[string]*Job
	queued     map[string]*Job
	freeSlots  int
	drained    int // slots removed by failure injection
	seq        uint64
	usage      map[string]float64 // decayed CPU-seconds per VO (fair-share)
	usageStamp time.Duration
	runningVO  map[string]int // incrementally maintained per-VO running counts
	records    []Record
	closed     bool

	// Cumulative counters for monitoring providers.
	totalStarted   int
	totalCompleted int
	totalFailed    int
	busyTime       time.Duration // slot-seconds of execution, for utilization

	// Ins enables run spans and queue metrics; nil (default) disables.
	Ins *Instruments
}

// New creates a batch system with the given engine and configuration.
func New(eng sim.Scheduler, cfg Config) *System {
	if cfg.Slots <= 0 {
		panic(fmt.Sprintf("batch %s: slots %d", cfg.Name, cfg.Slots))
	}
	if cfg.Policy == nil {
		cfg.Policy = FIFO{}
	}
	return &System{
		cfg:       cfg,
		eng:       eng,
		running:   make(map[string]*Job),
		queued:    make(map[string]*Job),
		freeSlots: cfg.Slots,
		usage:     make(map[string]float64),
		runningVO: make(map[string]int),
	}
}

// Name returns the system's name.
func (s *System) Name() string { return s.cfg.Name }

// Slots returns the configured slot count (ignoring drains).
func (s *System) Slots() int { return s.cfg.Slots }

// AvailableSlots returns slots not drained by failure injection.
func (s *System) AvailableSlots() int { return s.cfg.Slots - s.drained }

// FreeSlots returns currently idle, undrained slots.
func (s *System) FreeSlots() int { return s.freeSlots }

// RunningCount returns the number of executing jobs.
func (s *System) RunningCount() int { return len(s.running) }

// QueuedCount returns the number of waiting jobs.
func (s *System) QueuedCount() int { return len(s.queue) }

// MaxWall returns the queue's admission walltime limit (0 = none).
func (s *System) MaxWall() time.Duration { return s.cfg.MaxWall }

// TotalStarted returns the count of jobs that began execution.
func (s *System) TotalStarted() int { return s.totalStarted }

// TotalCompleted returns the count of successfully completed jobs.
func (s *System) TotalCompleted() int { return s.totalCompleted }

// TotalFailed returns the count of jobs that left unsuccessfully.
func (s *System) TotalFailed() int { return s.totalFailed }

// BusyTime returns accumulated slot-occupancy time.
func (s *System) BusyTime() time.Duration { return s.busyTime }

// Close rejects all future submissions (site decommissioning).
func (s *System) Close() { s.closed = true }

// Submit enqueues a job. Admission control rejects jobs whose requested
// walltime exceeds the queue limit — §6.2: "The official OSCAR production
// jobs are long (some more than 30 hours) and not all sites have been able
// to accommodate running them."
func (s *System) Submit(j *Job) error {
	if s.closed {
		return fmt.Errorf("%w: %s", ErrQueueClosed, s.cfg.Name)
	}
	if j.ID == "" {
		return errors.New("batch: job missing ID")
	}
	if _, dup := s.running[j.ID]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateJob, j.ID)
	}
	if _, dup := s.queued[j.ID]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateJob, j.ID)
	}
	if j.Walltime <= 0 {
		return fmt.Errorf("batch: job %s has no walltime request", j.ID)
	}
	if s.cfg.MaxWall > 0 && j.Walltime > s.cfg.MaxWall {
		return fmt.Errorf("%w: %v > %v at %s", ErrWalltimeTooLong, j.Walltime, s.cfg.MaxWall, s.cfg.Name)
	}
	s.seq++
	j.seq = s.seq
	j.State = Queued
	j.Submitted = s.eng.Now()
	s.queue = append(s.queue, j)
	s.queued[j.ID] = j
	s.schedule()
	return nil
}

// Cancel removes a queued job or kills a running one.
func (s *System) Cancel(id string) error {
	if j, ok := s.queued[id]; ok {
		s.removeFromQueue(id)
		s.finish(j, Cancelled)
		return nil
	}
	if j, ok := s.running[id]; ok {
		s.stopRunning(j, Cancelled)
		return nil
	}
	return fmt.Errorf("%w: %s", ErrNoSuchJob, id)
}

// quotaAllows reports whether starting a job of the VO respects its quota.
func (s *System) quotaAllows(vo string) bool {
	q, ok := s.cfg.VOQuota[vo]
	if !ok {
		return true
	}
	return s.runningVO[vo] < q
}

// RunningByVO returns the count of running jobs for a VO.
func (s *System) RunningByVO(vo string) int {
	return s.runningVO[vo]
}

// Usage returns the decayed fair-share usage for a VO, in CPU-seconds.
func (s *System) Usage(vo string) float64 {
	s.decayUsage()
	return s.usage[vo]
}

// fairShareHalfLife is the decay half-life for accumulated usage, matching
// Condor's default PRIORITY_HALFLIFE of one day.
const fairShareHalfLife = 24 * time.Hour

func (s *System) decayUsage() {
	now := s.eng.Now()
	dt := now - s.usageStamp
	if dt <= 0 {
		return
	}
	factor := math.Exp2(-float64(dt) / float64(fairShareHalfLife))
	for vo := range s.usage {
		s.usage[vo] *= factor
		if s.usage[vo] < 1e-9 {
			delete(s.usage, vo)
		}
	}
	s.usageStamp = now
}

func (s *System) schedule() {
	for s.freeSlots > 0 && len(s.queue) > 0 {
		idx := s.cfg.Policy.Next(s.queue, s)
		if idx < 0 || idx >= len(s.queue) {
			return
		}
		j := s.queue[idx]
		s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
		delete(s.queued, j.ID)
		s.start(j)
	}
}

func (s *System) start(j *Job) {
	s.freeSlots--
	j.State = Running
	j.Started = s.eng.Now()
	s.running[j.ID] = j
	s.runningVO[j.VO]++
	s.totalStarted++
	if in := s.Ins; in != nil {
		in.Started.Inc()
		in.QueueWait.Observe((j.Started - j.Submitted).Seconds())
		j.runSpan = in.Tracer.Begin(obs.KindRun, j.Parent, j.ID, j.VO, s.cfg.Name)
	}

	execTime := j.Runtime
	outcome := Completed
	if s.cfg.EnforceWall && j.Runtime > j.Walltime {
		execTime = j.Walltime
		outcome = WalltimeExceeded
	}
	j.endEvent = s.eng.Schedule(execTime, func() {
		s.stopRunning(j, outcome)
	})
	if j.OnStart != nil {
		j.OnStart(j)
	}
}

// stopRunning ends a running job with the given outcome.
func (s *System) stopRunning(j *Job, outcome Outcome) {
	s.stopRunningInternal(j, outcome, true)
}

// stopRunningInternal optionally suppresses rescheduling so DrainSlots can
// retire the freed slot before queued work grabs it.
func (s *System) stopRunningInternal(j *Job, outcome Outcome, resched bool) {
	if j.State != Running {
		return
	}
	j.endEvent.Cancel()
	j.endEvent = sim.Event{}
	delete(s.running, j.ID)
	s.runningVO[j.VO]--
	if s.runningVO[j.VO] == 0 {
		delete(s.runningVO, j.VO)
	}
	s.freeSlots++
	s.busyTime += s.eng.Now() - j.Started
	s.decayUsage()
	s.usage[j.VO] += (s.eng.Now() - j.Started).Seconds()
	s.finish(j, outcome)
	if resched {
		s.schedule()
	}
}

func (s *System) finish(j *Job, outcome Outcome) {
	j.State = Done
	j.Outcome = outcome
	j.Ended = s.eng.Now()
	switch outcome {
	case Completed:
		s.totalCompleted++
	default:
		s.totalFailed++
	}
	if in := s.Ins; in != nil {
		if outcome == Completed {
			in.Completed.Inc()
			in.Tracer.End(j.runSpan)
		} else {
			in.Failed.Inc()
			in.Tracer.Fail(j.runSpan, outcome.String())
		}
		j.runSpan = 0
	}
	s.records = append(s.records, Record{
		JobID:     j.ID,
		VO:        j.VO,
		Account:   j.Account,
		Submitted: j.Submitted,
		Started:   j.Started,
		Ended:     j.Ended,
		Outcome:   outcome,
		Walltime:  j.Walltime,
	})
	if j.OnDone != nil {
		j.OnDone(j)
	}
}

func (s *System) removeFromQueue(id string) {
	for i, j := range s.queue {
		if j.ID == id {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			delete(s.queued, id)
			return
		}
	}
}

// KillRunning ends every running job matching the filter with the given
// outcome; it returns how many were killed. Failure injection uses this for
// whole-site service failures ("a disk would fill up or a service would
// fail and all jobs submitted to a site would die", §6.2).
func (s *System) KillRunning(match func(*Job) bool, outcome Outcome) int {
	// Enumerate in deterministic (submission) order before filtering, so
	// stateful predicates ("kill the first one") see a stable sequence.
	all := make([]*Job, 0, len(s.running))
	for _, j := range s.running {
		all = append(all, j)
	}
	sort.Slice(all, func(i, k int) bool { return all[i].seq < all[k].seq })
	var victims []*Job
	for _, j := range all {
		if match == nil || match(j) {
			victims = append(victims, j)
		}
	}
	for _, j := range victims {
		s.stopRunning(j, outcome)
	}
	return len(victims)
}

// FlushQueue cancels all queued jobs, returning how many were dropped.
func (s *System) FlushQueue() int {
	n := len(s.queue)
	for len(s.queue) > 0 {
		j := s.queue[0]
		s.queue = s.queue[1:]
		delete(s.queued, j.ID)
		s.finish(j, Cancelled)
	}
	return n
}

// DrainSlots removes n slots from service, killing the youngest running
// jobs if necessary — the ACDC "nightly roll over of worker nodes" that
// §6.1 reports ATLAS did not handle gracefully.
func (s *System) DrainSlots(n int) int {
	if n > s.AvailableSlots() {
		n = s.AvailableSlots()
	}
	s.drained += n
	killed := 0
	// Idle slots absorb the drain first.
	if s.freeSlots >= n {
		s.freeSlots -= n
		return 0
	}
	need := n - s.freeSlots
	s.freeSlots = 0
	var victims []*Job
	for _, j := range s.running {
		victims = append(victims, j)
	}
	// Youngest first: rollovers take out the most recently started work.
	sort.Slice(victims, func(i, k int) bool {
		return victims[i].Started > victims[k].Started || (victims[i].Started == victims[k].Started && victims[i].seq > victims[k].seq)
	})
	for _, j := range victims {
		if killed == need {
			break
		}
		s.stopRunningInternal(j, NodeFailure, false)
		killed++
		s.freeSlots-- // the freed slot is consumed by the drain
	}
	s.schedule()
	return killed
}

// RestoreSlots returns n drained slots to service.
func (s *System) RestoreSlots(n int) {
	if n > s.drained {
		n = s.drained
	}
	s.drained -= n
	s.freeSlots += n
	s.schedule()
}

// DrainRecords returns and clears the completion log — the pull-based
// collection model of the ACDC job monitor.
func (s *System) DrainRecords() []Record {
	out := s.records
	s.records = nil
	return out
}

// PeekRecords returns the completion log without clearing it.
func (s *System) PeekRecords() []Record { return s.records }
