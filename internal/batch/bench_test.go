package batch

import (
	"fmt"
	"testing"
	"time"

	"grid3/internal/sim"
)

// BenchmarkSubmitSchedule measures scheduler throughput: submit+run+finish
// cycles through a saturated FIFO queue.
func BenchmarkSubmitSchedule(b *testing.B) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	sys := New(eng, Config{Name: "bench", Slots: 64, EnforceWall: true, MaxWall: 100 * time.Hour})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys.Submit(&Job{
			ID: fmt.Sprintf("b%d", i), VO: "v",
			Runtime: time.Hour, Walltime: 2 * time.Hour,
		})
		if i%256 == 255 {
			eng.Run()
		}
	}
	eng.Run()
}

// BenchmarkFairShareDecision measures policy cost with a deep queue.
func BenchmarkFairShareDecision(b *testing.B) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	sys := New(eng, Config{Name: "bench", Slots: 1, Policy: FairShare{}})
	// Occupy the slot, then queue 500 jobs across 5 VOs.
	sys.Submit(&Job{ID: "hold", VO: "x", Runtime: 1000 * time.Hour, Walltime: 2000 * time.Hour})
	for i := 0; i < 500; i++ {
		sys.Submit(&Job{
			ID: fmt.Sprintf("q%d", i), VO: fmt.Sprintf("vo%d", i%5),
			Runtime: time.Hour, Walltime: 2 * time.Hour,
		})
	}
	q := sys.queue
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if idx := (FairShare{}).Next(q, sys); idx < 0 {
			b.Fatal("no pick")
		}
	}
}
