package batch

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"grid3/internal/sim"
)

// opScript drives a batch system through a random operation sequence and
// checks conservation invariants after every step.
type opScript struct {
	Slots byte
	Ops   []struct {
		Kind    byte
		Runtime uint16
		Drain   byte
	}
}

// TestSlotConservationProperty: free + running == available slots at all
// times, under any interleaving of submit/cancel/drain/restore/kill.
func TestSlotConservationProperty(t *testing.T) {
	f := func(script opScript) bool {
		slots := int(script.Slots%16) + 1
		eng := sim.NewEngine(sim.Grid3Epoch)
		sys := New(eng, Config{
			Name: "prop", Slots: slots, Policy: FIFO{},
			EnforceWall: true, MaxWall: 1000 * time.Hour,
		})
		check := func() bool {
			if sys.FreeSlots() < 0 {
				return false
			}
			return sys.FreeSlots()+sys.RunningCount() == sys.AvailableSlots()
		}
		seq := 0
		for _, op := range script.Ops {
			switch op.Kind % 6 {
			case 0, 1: // submit
				seq++
				rt := time.Duration(op.Runtime%96+1) * time.Hour
				sys.Submit(&Job{
					ID: fmt.Sprintf("p%d", seq), VO: fmt.Sprintf("vo%d", op.Kind%3),
					Runtime: rt, Walltime: rt + time.Hour,
				})
			case 2: // advance time
				eng.RunFor(time.Duration(op.Runtime%48) * time.Hour)
			case 3: // kill a VO's jobs
				sys.KillRunning(func(j *Job) bool { return j.VO == "vo0" }, NodeFailure)
			case 4: // drain and restore
				n := int(op.Drain) % (slots + 1)
				sys.DrainSlots(n)
				if !check() {
					return false
				}
				sys.RestoreSlots(n)
			case 5: // cancel something queued if any
				sys.FlushQueue()
			}
			if !check() {
				return false
			}
		}
		eng.Run()
		// Terminal state: nothing running, all slots free.
		return sys.RunningCount() == 0 && sys.FreeSlots() == sys.AvailableSlots()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestAccountingConservationProperty: every submitted job terminates with
// exactly one record once the engine drains.
func TestAccountingConservationProperty(t *testing.T) {
	f := func(runtimes []uint16) bool {
		eng := sim.NewEngine(sim.Grid3Epoch)
		sys := New(eng, Config{Name: "acct", Slots: 3, EnforceWall: true, MaxWall: 50 * time.Hour})
		admitted := 0
		for i, r := range runtimes {
			rt := time.Duration(r%80+1) * time.Hour
			err := sys.Submit(&Job{
				ID: fmt.Sprintf("a%d", i), VO: "v",
				Runtime: rt, Walltime: rt + time.Hour,
			})
			if err == nil {
				admitted++
			}
		}
		eng.Run()
		recs := sys.DrainRecords()
		if len(recs) != admitted {
			return false
		}
		done := sys.TotalCompleted() + sys.TotalFailed()
		return done == admitted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
