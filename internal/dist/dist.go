// Package dist provides seeded random variates and arrival processes used to
// synthesize Grid3 workloads.
//
// Every application class in the paper's Table 1 is characterized by a job
// count, a mean and a maximum runtime, and a monthly production profile. The
// distributions here (exponential, lognormal, bounded Pareto, empirical
// month-weight choice) are the building blocks that internal/apps calibrates
// against those figures. All randomness flows from a single seeded source so
// that a scenario is reproducible from its seed.
package dist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// RNG wraps a seeded source. It is deliberately not safe for concurrent use:
// the simulation is single-threaded and a lock would hide ordering bugs.
type RNG struct {
	r *rand.Rand
}

// New returns an RNG seeded with the given value.
func New(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent, deterministic child stream. Each application
// class gets its own fork so adding one workload never perturbs another.
func (g *RNG) Fork() *RNG {
	return New(g.r.Int63())
}

// Float64 returns a uniform variate in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform integer in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Uniform returns a variate uniform on [lo,hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Exp returns an exponential variate with the given mean.
func (g *RNG) Exp(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Normal returns a normal variate.
func (g *RNG) Normal(mu, sigma float64) float64 {
	return mu + sigma*g.r.NormFloat64()
}

// LogNormal describes a lognormal distribution by the desired mean and the
// sigma of the underlying normal. Job runtimes in Grid3 are heavy-tailed
// (CMS mean 41.85 h, max 1238.93 h), which lognormal captures well.
type LogNormal struct {
	Mu    float64 // mean of log
	Sigma float64 // stddev of log
}

// LogNormalFromMean constructs a lognormal whose arithmetic mean is mean,
// with the given log-space sigma. mean must be positive.
func LogNormalFromMean(mean, sigma float64) LogNormal {
	if mean <= 0 {
		panic(fmt.Sprintf("dist: lognormal mean %v must be positive", mean))
	}
	return LogNormal{Mu: math.Log(mean) - sigma*sigma/2, Sigma: sigma}
}

// Sample draws a variate.
func (ln LogNormal) Sample(g *RNG) float64 {
	return math.Exp(ln.Mu + ln.Sigma*g.r.NormFloat64())
}

// Mean returns the arithmetic mean of the distribution.
func (ln LogNormal) Mean() float64 {
	return math.Exp(ln.Mu + ln.Sigma*ln.Sigma/2)
}

// TruncatedLogNormal resamples until the variate falls within [lo,hi]. The
// truncation models sites' maximum-walltime admission limits.
type TruncatedLogNormal struct {
	LN     LogNormal
	Lo, Hi float64
}

// Sample draws a variate in [Lo,Hi]; after 64 rejected draws it clamps, so a
// badly configured range degrades gracefully instead of spinning.
func (t TruncatedLogNormal) Sample(g *RNG) float64 {
	for i := 0; i < 64; i++ {
		v := t.LN.Sample(g)
		if v >= t.Lo && v <= t.Hi {
			return v
		}
	}
	return math.Min(math.Max(t.LN.Mean(), t.Lo), t.Hi)
}

// BoundedPareto is a power-law distribution on [L,H] with shape alpha,
// used for file-size synthesis in the transfer demonstrator.
type BoundedPareto struct {
	L, H  float64
	Alpha float64
}

// Sample draws a variate by inversion.
func (p BoundedPareto) Sample(g *RNG) float64 {
	if p.L <= 0 || p.H <= p.L || p.Alpha <= 0 {
		panic(fmt.Sprintf("dist: invalid bounded pareto %+v", p))
	}
	u := g.r.Float64()
	la := math.Pow(p.L, p.Alpha)
	ha := math.Pow(p.H, p.Alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/p.Alpha)
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and a normal approximation for large ones.
func (g *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		v := math.Round(g.Normal(mean, math.Sqrt(mean)))
		if v < 0 {
			return 0
		}
		return int(v)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= g.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Weighted selects index i with probability weights[i]/sum(weights).
// Zero-total weights select uniformly.
type Weighted struct {
	cum   []float64
	total float64
}

// NewWeighted builds a weighted chooser. Negative weights panic.
func NewWeighted(weights []float64) *Weighted {
	w := &Weighted{cum: make([]float64, len(weights))}
	for i, v := range weights {
		if v < 0 {
			panic(fmt.Sprintf("dist: negative weight %v at %d", v, i))
		}
		w.total += v
		w.cum[i] = w.total
	}
	return w
}

// Choose draws an index.
func (w *Weighted) Choose(g *RNG) int {
	if len(w.cum) == 0 {
		panic("dist: choose from empty weights")
	}
	if w.total == 0 {
		return g.Intn(len(w.cum))
	}
	u := g.r.Float64() * w.total
	return sort.SearchFloat64s(w.cum, u)
}

// ExpDuration returns an exponentially distributed duration with given mean.
// The result is clamped to at least 1ns so schedulers always make progress.
func (g *RNG) ExpDuration(mean time.Duration) time.Duration {
	d := time.Duration(g.Exp(float64(mean)))
	if d < 1 {
		d = 1
	}
	return d
}

// Jitter returns d scaled by a uniform factor in [1-f, 1+f].
func (g *RNG) Jitter(d time.Duration, f float64) time.Duration {
	if f < 0 || f > 1 {
		panic(fmt.Sprintf("dist: jitter fraction %v out of [0,1]", f))
	}
	return time.Duration(float64(d) * g.Uniform(1-f, 1+f))
}

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool {
	return g.r.Float64() < p
}
