package dist

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	g := New(7)
	c1 := g.Fork()
	c2 := g.Fork()
	if c1.Float64() == c2.Float64() && c1.Float64() == c2.Float64() {
		t.Fatal("forked streams appear identical")
	}
	// Forks from the same parent state are themselves deterministic.
	g2 := New(7)
	d1 := g2.Fork()
	d2 := g2.Fork()
	_ = d2
	a, b := New(7).Fork(), d1
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("fork not reproducible from parent seed")
		}
	}
}

func TestExpMean(t *testing.T) {
	g := New(1)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Exp(5.0)
	}
	mean := sum / n
	if math.Abs(mean-5.0) > 0.1 {
		t.Fatalf("exp mean = %v, want ~5.0", mean)
	}
}

func TestLogNormalFromMean(t *testing.T) {
	g := New(2)
	ln := LogNormalFromMean(41.85, 1.4) // CMS-like runtime hours
	const n = 300000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += ln.Sample(g)
	}
	mean := sum / n
	if math.Abs(mean-41.85)/41.85 > 0.05 {
		t.Fatalf("lognormal empirical mean = %v, want ~41.85", mean)
	}
	if math.Abs(ln.Mean()-41.85) > 1e-9 {
		t.Fatalf("analytic mean = %v", ln.Mean())
	}
}

func TestLogNormalRejectsNonPositiveMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for mean 0")
		}
	}()
	LogNormalFromMean(0, 1)
}

func TestTruncatedLogNormalBounds(t *testing.T) {
	g := New(3)
	tl := TruncatedLogNormal{LN: LogNormalFromMean(8.8, 1.5), Lo: 0.01, Hi: 292}
	for i := 0; i < 50000; i++ {
		v := tl.Sample(g)
		if v < tl.Lo || v > tl.Hi {
			t.Fatalf("truncated sample %v outside [%v,%v]", v, tl.Lo, tl.Hi)
		}
	}
}

func TestBoundedParetoBounds(t *testing.T) {
	g := New(4)
	p := BoundedPareto{L: 1e6, H: 2e9, Alpha: 1.1} // file sizes 1MB..2GB
	for i := 0; i < 50000; i++ {
		v := p.Sample(g)
		if v < p.L || v > p.H {
			t.Fatalf("pareto sample %v outside [%v,%v]", v, p.L, p.H)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	g := New(5)
	for _, mean := range []float64{0.5, 3, 20, 500} {
		const n = 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += g.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean)/mean > 0.05 {
			t.Fatalf("poisson(%v) empirical mean %v", mean, got)
		}
	}
	if g.Poisson(0) != 0 || g.Poisson(-1) != 0 {
		t.Fatal("poisson of non-positive mean should be 0")
	}
}

func TestWeightedChoice(t *testing.T) {
	g := New(6)
	w := NewWeighted([]float64{1, 0, 3})
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[w.Choose(g)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestWeightedZeroTotalUniform(t *testing.T) {
	g := New(8)
	w := NewWeighted([]float64{0, 0, 0, 0})
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[w.Choose(g)]++
	}
	for i, c := range counts {
		if c < 8000 {
			t.Fatalf("zero-total weights not uniform: index %d chosen %d/40000", i, c)
		}
	}
}

func TestWeightedNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative weight")
		}
	}()
	NewWeighted([]float64{1, -1})
}

func TestJitterBounds(t *testing.T) {
	g := New(9)
	base := time.Hour
	for i := 0; i < 10000; i++ {
		d := g.Jitter(base, 0.25)
		if d < 45*time.Minute || d > 75*time.Minute {
			t.Fatalf("jitter %v outside ±25%% of 1h", d)
		}
	}
}

func TestExpDurationPositive(t *testing.T) {
	g := New(10)
	for i := 0; i < 10000; i++ {
		if g.ExpDuration(time.Millisecond) < 1 {
			t.Fatal("ExpDuration returned non-positive duration")
		}
	}
}

func TestBernoulliProbability(t *testing.T) {
	g := New(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if g.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("bernoulli(0.3) empirical p = %v", p)
	}
}

// Property: lognormal construction round-trips its mean for any reasonable
// (mean, sigma) pair.
func TestLogNormalMeanProperty(t *testing.T) {
	f := func(m, s uint8) bool {
		mean := 0.01 + float64(m)   // 0.01 .. 255.01
		sigma := float64(s%30) / 10 // 0 .. 2.9
		ln := LogNormalFromMean(mean, sigma)
		return math.Abs(ln.Mean()-mean) < 1e-6*mean+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: weighted cumulative array is monotone non-decreasing.
func TestWeightedMonotoneProperty(t *testing.T) {
	f := func(ws []uint16) bool {
		if len(ws) == 0 {
			return true
		}
		fw := make([]float64, len(ws))
		for i, v := range ws {
			fw[i] = float64(v)
		}
		w := NewWeighted(fw)
		for i := 1; i < len(w.cum); i++ {
			if w.cum[i] < w.cum[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
