// Package gram implements the Globus GRAM gatekeeper and jobmanager layer:
// authenticated job submission into a site's local batch system, job state
// polling, cancellation, and the gatekeeper load model the paper quantifies.
//
// §6.4: "a typical gatekeeper using a queue manager will experience a
// sustained one minute load of ~225 when managing ~1000 computational jobs.
// This load can sharply increase when the job submission frequency is high
// ... For computational jobs that only require a minimal amount of
// production node file staging, a factor of two can be applied to the
// sustained load; on the other hand computational jobs requiring a
// substantial amount of file staging the factor can increase to three or
// four." Gatekeeper overloading was one of the three dominant site failure
// classes in §6.1.
package gram

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"grid3/internal/batch"
	"grid3/internal/gsi"
	"grid3/internal/obs"
	"grid3/internal/sim"
	"grid3/internal/site"
)

// Instruments mirrors gatekeeper admission decisions into the metrics
// registry, broken down by rejection cause — the paper's §6.1 failure
// attribution needs exactly this split. Shared across all gatekeepers
// (counters aggregate grid-wide); nil disables.
type Instruments struct {
	Accepted         *obs.Counter
	RejectedInvalid  *obs.Counter
	RejectedDown     *obs.Counter
	RejectedOverload *obs.Counter
	RejectedAuth     *obs.Counter
	RejectedLocal    *obs.Counter
}

// NewInstruments wires gatekeeper counters into an observer; nil in, nil out.
func NewInstruments(o *obs.Observer) *Instruments {
	if o == nil {
		return nil
	}
	return &Instruments{
		Accepted:         o.Metrics.Counter("gram.accepted"),
		RejectedInvalid:  o.Metrics.Counter("gram.rejected.invalid"),
		RejectedDown:     o.Metrics.Counter("gram.rejected.site_down"),
		RejectedOverload: o.Metrics.Counter("gram.rejected.overload"),
		RejectedAuth:     o.Metrics.Counter("gram.rejected.auth"),
		RejectedLocal:    o.Metrics.Counter("gram.rejected.local"),
	}
}

// JobState is the GRAM job state machine (GRAM 1.x states).
type JobState int

// GRAM job states.
const (
	StateUnsubmitted JobState = iota
	StatePending              // accepted, waiting in the local queue
	StateActive               // executing on a worker node
	StateDone                 // completed successfully
	StateFailed               // any unsuccessful terminal state
)

func (s JobState) String() string {
	switch s {
	case StateUnsubmitted:
		return "UNSUBMITTED"
	case StatePending:
		return "PENDING"
	case StateActive:
		return "ACTIVE"
	case StateDone:
		return "DONE"
	case StateFailed:
		return "FAILED"
	}
	return fmt.Sprintf("JobState(%d)", int(s))
}

// Errors.
var (
	ErrNotAuthorized = errors.New("gram: subject not authorized")
	ErrOverloaded    = errors.New("gram: gatekeeper overloaded")
	ErrSiteDown      = errors.New("gram: site services unavailable")
	ErrNoSuchJob     = errors.New("gram: no such job")
	ErrBadSpec       = errors.New("gram: invalid job specification")
)

// Spec is a job submission request (the RSL of GRAM).
type Spec struct {
	Subject    string // certificate identity DN of the submitter
	VO         string
	Executable string
	Walltime   time.Duration
	Runtime    time.Duration // true duration, consumed by the simulation
	Priority   int
	// StagingFactor scales gatekeeper load per §6.4: 1 = minimal staging,
	// 2 = typical, 3-4 = substantial file staging.
	StagingFactor float64
	// OnState fires on every state transition.
	OnState func(*Job, JobState)
	// Parent is the submit-side lifecycle span this job runs under
	// (0 = untraced); the gatekeeper forwards it to the batch system so
	// the run span links back to the grid job.
	Parent obs.SpanID
}

// Validate checks the spec.
func (s *Spec) Validate() error {
	switch {
	case s.Subject == "":
		return fmt.Errorf("%w: missing subject", ErrBadSpec)
	case s.VO == "":
		return fmt.Errorf("%w: missing VO", ErrBadSpec)
	case s.Walltime <= 0:
		return fmt.Errorf("%w: missing walltime", ErrBadSpec)
	case s.Runtime <= 0:
		return fmt.Errorf("%w: missing runtime", ErrBadSpec)
	case s.StagingFactor < 0:
		return fmt.Errorf("%w: negative staging factor", ErrBadSpec)
	}
	return nil
}

// Job is one gatekeeper-managed job.
type Job struct {
	ID      string
	Spec    Spec
	State   JobState
	Account string // local account the subject mapped to
	// FailureReason is set when State == StateFailed.
	FailureReason string

	batchJob *batch.Job
	// Position in the gatekeeper's active set while PENDING/ACTIVE.
	activeIdx int
	inActive  bool
}

// Gatekeeper fronts one site's batch system.
type Gatekeeper struct {
	eng     sim.Scheduler
	site    *site.Site
	batch   *batch.System
	gridmap *gsi.Gridmap

	jobs   map[string]*Job
	nextID int64
	// active holds exactly the PENDING/ACTIVE jobs, maintained on state
	// transitions. The load model and the monitoring providers read it
	// instead of scanning the full jobs map, which between PruneTerminal
	// sweeps is dominated by terminal entries — on a 1000-site day that
	// scan was ~25% of total run time.
	active []*Job

	// Load model state: decaying submission-rate estimator.
	submitRate float64 // submissions per minute, exponentially decayed
	rateStamp  time.Duration
	// OverloadThreshold is the 1-minute load above which new submissions
	// fail. Grid3 gatekeepers fell over well past the ~225 sustained
	// point; default 450 (~2000 managed jobs at typical staging).
	OverloadThreshold float64

	// Counters for monitoring.
	accepted, rejected, completed, failed int

	// Ins mirrors admission decisions into the metrics registry; nil
	// (default) disables.
	Ins *Instruments
}

// New creates a gatekeeper for a site and its batch system. The gridmap is
// regenerated externally (by the VOMS sync); pass the site's live map.
func New(eng sim.Scheduler, st *site.Site, bs *batch.System, gridmap *gsi.Gridmap) *Gatekeeper {
	return &Gatekeeper{
		eng:               eng,
		site:              st,
		batch:             bs,
		gridmap:           gridmap,
		jobs:              make(map[string]*Job),
		OverloadThreshold: 450,
	}
}

// Site returns the gatekeeper's site.
func (g *Gatekeeper) Site() *site.Site { return g.site }

// Batch returns the underlying batch system.
func (g *Gatekeeper) Batch() *batch.System { return g.batch }

// ManagedJobs returns the number of jobs in PENDING or ACTIVE state.
func (g *Gatekeeper) ManagedJobs() int { return len(g.active) }

// loadPerJob is the paper's sustained-load coefficient: ~225 of 1-minute
// load per ~1000 managed jobs.
const loadPerJob = 225.0 / 1000.0

// submitSpikeWeight converts submissions-per-minute into load: short
// duration high frequency jobs "sharply increase the gatekeeper loading".
const submitSpikeWeight = 0.5

// Load returns the modeled 1-minute load average: the sustained term
// (managed jobs × staging factor) plus the submission-frequency spike.
func (g *Gatekeeper) Load() float64 {
	g.decayRate()
	sustained := 0.0
	for _, j := range g.active {
		f := j.Spec.StagingFactor
		if f < 1 {
			f = 1
		}
		sustained += loadPerJob * f
	}
	return sustained + submitSpikeWeight*g.submitRate
}

// trackActive and untrackActive maintain the PENDING/ACTIVE set with
// O(1) swap-removal; activeIdx pins each job's slot.
func (g *Gatekeeper) trackActive(j *Job) {
	if j.inActive {
		return
	}
	j.inActive = true
	j.activeIdx = len(g.active)
	g.active = append(g.active, j)
}

func (g *Gatekeeper) untrackActive(j *Job) {
	if !j.inActive {
		return
	}
	last := len(g.active) - 1
	k := j.activeIdx
	g.active[k] = g.active[last]
	g.active[k].activeIdx = k
	g.active[last] = nil
	g.active = g.active[:last]
	j.inActive = false
}

// decayRate ages the submission-rate estimator with a one-minute
// exponential window.
func (g *Gatekeeper) decayRate() {
	now := g.eng.Now()
	dt := now - g.rateStamp
	if dt <= 0 {
		return
	}
	g.submitRate *= math.Exp(-float64(dt) / float64(time.Minute))
	g.rateStamp = now
}

// Accepted, Rejected, CompletedCount and FailedCount expose counters for
// monitoring providers.
func (g *Gatekeeper) Accepted() int { return g.accepted }

// Rejected returns the count of refused submissions.
func (g *Gatekeeper) Rejected() int { return g.rejected }

// CompletedCount returns the count of jobs that reached DONE.
func (g *Gatekeeper) CompletedCount() int { return g.completed }

// FailedCount returns the count of jobs that reached FAILED.
func (g *Gatekeeper) FailedCount() int { return g.failed }

// Submit authenticates, authorizes, and enqueues a job. It returns the
// GRAM job (with contact ID) or an error.
func (g *Gatekeeper) Submit(spec Spec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		g.rejected++
		if in := g.Ins; in != nil {
			in.RejectedInvalid.Inc()
		}
		return nil, err
	}
	if !g.site.Healthy() {
		g.rejected++
		if in := g.Ins; in != nil {
			in.RejectedDown.Inc()
		}
		return nil, fmt.Errorf("%w: %s", ErrSiteDown, g.site.Name)
	}
	g.decayRate()
	g.submitRate++
	if g.Load() > g.OverloadThreshold {
		g.rejected++
		if in := g.Ins; in != nil {
			in.RejectedOverload.Inc()
		}
		return nil, fmt.Errorf("%w: load %.0f > %.0f at %s",
			ErrOverloaded, g.Load(), g.OverloadThreshold, g.site.Name)
	}
	acct, err := g.gridmap.Lookup(spec.Subject)
	if err != nil {
		g.rejected++
		if in := g.Ins; in != nil {
			in.RejectedAuth.Inc()
		}
		return nil, fmt.Errorf("%w: %s at %s", ErrNotAuthorized, spec.Subject, g.site.Name)
	}
	// The VO must have a group account here, and the mapped account must
	// belong to the claimed VO (prevents VO spoofing in the spec).
	voAcct, err := g.site.Account(spec.VO)
	if err != nil {
		g.rejected++
		if in := g.Ins; in != nil {
			in.RejectedAuth.Inc()
		}
		return nil, fmt.Errorf("%w: VO %s has no account at %s", ErrNotAuthorized, spec.VO, g.site.Name)
	}
	if voAcct != acct {
		g.rejected++
		if in := g.Ins; in != nil {
			in.RejectedAuth.Inc()
		}
		return nil, fmt.Errorf("%w: %s maps to %s, not VO %s's account", ErrNotAuthorized, spec.Subject, acct, spec.VO)
	}

	g.nextID++
	id := fmt.Sprintf("https://%s:2119/%d", g.site.Host, g.nextID)
	j := &Job{ID: id, Spec: spec, State: StateUnsubmitted, Account: acct}

	bj := &batch.Job{
		ID:       id,
		VO:       spec.VO,
		Account:  acct,
		Walltime: spec.Walltime,
		Runtime:  spec.Runtime,
		Priority: spec.Priority,
		Parent:   spec.Parent,
		OnStart: func(*batch.Job) {
			g.transition(j, StateActive)
		},
		OnDone: func(b *batch.Job) {
			if b.Outcome == batch.Completed {
				g.completed++
				g.transition(j, StateDone)
			} else {
				g.failed++
				j.FailureReason = b.Outcome.String()
				g.transition(j, StateFailed)
			}
		},
	}
	j.batchJob = bj
	if err := g.batch.Submit(bj); err != nil {
		g.rejected++
		if in := g.Ins; in != nil {
			in.RejectedLocal.Inc()
		}
		return nil, fmt.Errorf("gram: local submission failed: %w", err)
	}
	g.jobs[id] = j
	g.accepted++
	if in := g.Ins; in != nil {
		in.Accepted.Inc()
	}
	if j.State == StateUnsubmitted {
		// Batch may have started it synchronously (free slot); only move
		// to PENDING if still queued.
		g.transition(j, StatePending)
	}
	return j, nil
}

// transition applies a state change, never moving backwards from a
// terminal state, and fires the callback.
func (g *Gatekeeper) transition(j *Job, to JobState) {
	if j.State == StateDone || j.State == StateFailed {
		return
	}
	if to == StatePending && j.State != StateUnsubmitted {
		return // already ACTIVE: don't regress
	}
	j.State = to
	switch to {
	case StatePending, StateActive:
		g.trackActive(j)
	case StateDone, StateFailed:
		g.untrackActive(j)
	}
	if j.Spec.OnState != nil {
		j.Spec.OnState(j, to)
	}
}

// Poll returns the job's current state.
func (g *Gatekeeper) Poll(id string) (JobState, error) {
	j, ok := g.jobs[id]
	if !ok {
		return StateUnsubmitted, fmt.Errorf("%w: %s", ErrNoSuchJob, id)
	}
	return j.State, nil
}

// Job returns the managed job by contact ID.
func (g *Gatekeeper) Job(id string) (*Job, error) {
	j, ok := g.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchJob, id)
	}
	return j, nil
}

// Cancel terminates a managed job.
func (g *Gatekeeper) Cancel(id string) error {
	j, ok := g.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchJob, id)
	}
	if j.State == StateDone || j.State == StateFailed {
		return nil
	}
	return g.batch.Cancel(id)
}

// PruneTerminal drops DONE/FAILED jobs from the managed-job table,
// bounding memory across a 183-day scenario. Polling a pruned contact
// returns ErrNoSuchJob, as a real gatekeeper would after jobmanager exit.
func (g *Gatekeeper) PruneTerminal() int {
	n := 0
	for id, j := range g.jobs {
		if j.State == StateDone || j.State == StateFailed {
			delete(g.jobs, id)
			n++
		}
	}
	return n
}

// FailAllManaged force-fails every non-terminal job: a whole-gatekeeper
// service failure ("jobs often failed ... in groups from site service
// failures", §6.2). Queued and running jobs both die.
func (g *Gatekeeper) FailAllManaged(reason string) int {
	ids := make([]string, 0, len(g.active))
	for _, j := range g.active {
		ids = append(ids, j.ID)
	}
	sort.Strings(ids)
	n := 0
	for _, id := range ids {
		j := g.jobs[id]
		if j.State != StatePending && j.State != StateActive {
			continue // killed as a side effect of an earlier cancel
		}
		g.batch.Cancel(id)
		if j.State != StateFailed {
			// Cancel reports as Cancelled; record as a failure.
			g.failed++
			j.State = StateFailed
			g.untrackActive(j)
		}
		j.FailureReason = reason
		n++
	}
	return n
}
