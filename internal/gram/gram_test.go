package gram

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"grid3/internal/batch"
	"grid3/internal/glue"
	"grid3/internal/gsi"
	"grid3/internal/sim"
	"grid3/internal/site"
)

type rig struct {
	eng  *sim.Engine
	site *site.Site
	bs   *batch.System
	gk   *Gatekeeper
}

func newRig(t *testing.T, slots int) *rig {
	t.Helper()
	eng := sim.NewEngine(sim.Grid3Epoch)
	st := site.MustNew(site.Config{
		Name: "IU_iuatlas", Host: "atlas.iu.edu", Tier: 2, CPUs: slots,
		DiskBytes: 1 << 40, WANMbps: 622, LRMS: glue.PBS, MaxWall: 100 * time.Hour,
		OwnerVO:  "usatlas",
		Accounts: map[string]string{"usatlas": "grp_usatlas", "ivdgl": "grp_ivdgl"},
	})
	bs := batch.New(eng, batch.Config{
		Name: st.Name, Slots: slots, Policy: batch.FIFO{}, EnforceWall: true, MaxWall: st.MaxWall,
	})
	gm := gsi.NewGridmap()
	gm.Map("/CN=atlas-prod", "grp_usatlas")
	gm.Map("/CN=ivdgl-user", "grp_ivdgl")
	gk := New(eng, st, bs, gm)
	return &rig{eng: eng, site: st, bs: bs, gk: gk}
}

func spec(subject, vo string, runtime time.Duration) Spec {
	return Spec{
		Subject: subject, VO: vo, Executable: "/bin/sim",
		Walltime: runtime * 2, Runtime: runtime, StagingFactor: 1,
	}
}

func TestSubmitLifecycle(t *testing.T) {
	r := newRig(t, 2)
	var states []JobState
	s := spec("/CN=atlas-prod", "usatlas", 2*time.Hour)
	s.OnState = func(_ *Job, st JobState) { states = append(states, st) }
	j, err := r.gk.Submit(s)
	if err != nil {
		t.Fatal(err)
	}
	if j.Account != "grp_usatlas" {
		t.Fatalf("account = %q", j.Account)
	}
	r.eng.Run()
	st, err := r.gk.Poll(j.ID)
	if err != nil || st != StateDone {
		t.Fatalf("final state = %v, %v", st, err)
	}
	// Free slot: job goes straight to ACTIVE, then DONE.
	if len(states) != 2 || states[0] != StateActive || states[1] != StateDone {
		t.Fatalf("state sequence = %v", states)
	}
	if r.gk.CompletedCount() != 1 {
		t.Fatal("completed counter")
	}
}

func TestPendingWhenQueued(t *testing.T) {
	r := newRig(t, 1)
	r.gk.Submit(spec("/CN=atlas-prod", "usatlas", 5*time.Hour))
	var states []JobState
	s := spec("/CN=atlas-prod", "usatlas", time.Hour)
	s.OnState = func(_ *Job, st JobState) { states = append(states, st) }
	j, err := r.gk.Submit(s)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := r.gk.Poll(j.ID); got != StatePending {
		t.Fatalf("queued job state = %v", got)
	}
	r.eng.Run()
	if len(states) != 3 || states[0] != StatePending || states[1] != StateActive || states[2] != StateDone {
		t.Fatalf("state sequence = %v", states)
	}
}

func TestAuthRejections(t *testing.T) {
	r := newRig(t, 2)
	// Unknown DN.
	if _, err := r.gk.Submit(spec("/CN=stranger", "usatlas", time.Hour)); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("stranger err = %v", err)
	}
	// Known DN, unsupported VO at site.
	if _, err := r.gk.Submit(spec("/CN=atlas-prod", "uscms", time.Hour)); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("unsupported VO err = %v", err)
	}
	// Known DN claiming the wrong VO (account mismatch).
	if _, err := r.gk.Submit(spec("/CN=ivdgl-user", "usatlas", time.Hour)); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("VO spoof err = %v", err)
	}
	if r.gk.Rejected() != 3 {
		t.Fatalf("rejected = %d", r.gk.Rejected())
	}
}

func TestSpecValidation(t *testing.T) {
	r := newRig(t, 1)
	bad := []Spec{
		{VO: "usatlas", Walltime: 1, Runtime: 1},
		{Subject: "/CN=x", Walltime: 1, Runtime: 1},
		{Subject: "/CN=x", VO: "v", Runtime: 1},
		{Subject: "/CN=x", VO: "v", Walltime: 1},
		{Subject: "/CN=x", VO: "v", Walltime: 1, Runtime: 1, StagingFactor: -1},
	}
	for i, s := range bad {
		if _, err := r.gk.Submit(s); !errors.Is(err, ErrBadSpec) {
			t.Errorf("case %d err = %v", i, err)
		}
	}
}

func TestSiteDownRejectsSubmissions(t *testing.T) {
	r := newRig(t, 1)
	r.site.SetHealthy(false)
	if _, err := r.gk.Submit(spec("/CN=atlas-prod", "usatlas", time.Hour)); !errors.Is(err, ErrSiteDown) {
		t.Fatalf("down-site err = %v", err)
	}
}

func TestCancel(t *testing.T) {
	r := newRig(t, 1)
	j, _ := r.gk.Submit(spec("/CN=atlas-prod", "usatlas", 10*time.Hour))
	r.eng.RunUntil(time.Hour)
	if err := r.gk.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	if st, _ := r.gk.Poll(j.ID); st != StateFailed {
		t.Fatalf("cancelled state = %v", st)
	}
	if err := r.gk.Cancel(j.ID); err != nil {
		t.Fatal("cancel of terminal job should be a no-op")
	}
	if err := r.gk.Cancel("https://nowhere/99"); !errors.Is(err, ErrNoSuchJob) {
		t.Fatalf("cancel unknown err = %v", err)
	}
}

func TestWalltimeKillIsFailure(t *testing.T) {
	r := newRig(t, 1)
	s := spec("/CN=atlas-prod", "usatlas", 10*time.Hour)
	s.Walltime = 2 * time.Hour // under-requested
	j, err := r.gk.Submit(s)
	if err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if j.State != StateFailed || j.FailureReason != "walltime-exceeded" {
		t.Fatalf("state %v reason %q", j.State, j.FailureReason)
	}
	if r.gk.FailedCount() != 1 {
		t.Fatal("failed counter")
	}
}

func TestLoadModelSustained(t *testing.T) {
	// ~1000 managed jobs at staging factor 1 → load ≈ 225 (§6.4).
	r := newRig(t, 1000)
	r.gk.OverloadThreshold = 1e9
	for i := 0; i < 1000; i++ {
		if _, err := r.gk.Submit(spec("/CN=atlas-prod", "usatlas", 48*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	// Let the submission spike decay (several 1-minute windows).
	r.eng.RunUntil(30 * time.Minute)
	load := r.gk.Load()
	if load < 215 || load > 235 {
		t.Fatalf("sustained load = %.1f, want ~225 per the paper", load)
	}
	if r.gk.ManagedJobs() != 1000 {
		t.Fatalf("managed = %d", r.gk.ManagedJobs())
	}
}

func TestLoadModelStagingFactor(t *testing.T) {
	r := newRig(t, 1000)
	r.gk.OverloadThreshold = 1e9
	for i := 0; i < 500; i++ {
		s := spec("/CN=atlas-prod", "usatlas", 48*time.Hour)
		s.StagingFactor = 4 // substantial file staging
		if _, err := r.gk.Submit(s); err != nil {
			t.Fatal(err)
		}
	}
	r.eng.RunUntil(30 * time.Minute)
	load := r.gk.Load()
	// 500 jobs × 0.225 × 4 = 450.
	if load < 440 || load > 460 {
		t.Fatalf("staged load = %.1f, want ~450", load)
	}
}

func TestOverloadRejectsSubmissions(t *testing.T) {
	r := newRig(t, 5000)
	overloaded := 0
	for i := 0; i < 4000; i++ {
		_, err := r.gk.Submit(spec("/CN=atlas-prod", "usatlas", 48*time.Hour))
		if errors.Is(err, ErrOverloaded) {
			overloaded++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if overloaded == 0 {
		t.Fatal("no submissions rejected despite load past threshold")
	}
	if r.gk.Load() < r.gk.OverloadThreshold*0.8 {
		t.Fatalf("load = %.0f after rejection onset", r.gk.Load())
	}
}

func TestSubmissionSpikeLoad(t *testing.T) {
	// "short duration high frequency computational jobs tend to sharply
	// increase the gatekeeper loading": a submission burst must raise Load
	// beyond the sustained term even with few managed jobs.
	r := newRig(t, 10)
	r.gk.OverloadThreshold = 1e9
	for i := 0; i < 100; i++ {
		r.gk.Submit(spec("/CN=atlas-prod", "usatlas", time.Minute))
	}
	burstLoad := r.gk.Load()
	sustainedOnly := loadPerJob * 10 // only 10 can be managed at once... queue holds the rest
	if burstLoad < sustainedOnly+20 {
		t.Fatalf("burst load %.1f shows no submission spike", burstLoad)
	}
	// The spike decays once submissions stop.
	r.eng.RunUntil(20 * time.Minute)
	if r.gk.Load() > burstLoad/2 {
		t.Fatalf("load did not decay: %.1f -> %.1f", burstLoad, r.gk.Load())
	}
}

func TestFailAllManaged(t *testing.T) {
	r := newRig(t, 4)
	var jobs []*Job
	for i := 0; i < 8; i++ {
		j, err := r.gk.Submit(spec("/CN=atlas-prod", "usatlas", 10*time.Hour))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	r.eng.RunUntil(time.Hour)
	n := r.gk.FailAllManaged("gatekeeper service failure")
	if n != 8 {
		t.Fatalf("failed %d, want 8 (4 active + 4 pending)", n)
	}
	for _, j := range jobs {
		if j.State != StateFailed || j.FailureReason != "gatekeeper service failure" {
			t.Fatalf("job %s: %v %q", j.ID, j.State, j.FailureReason)
		}
	}
}

func TestPollUnknownJob(t *testing.T) {
	r := newRig(t, 1)
	if _, err := r.gk.Poll("https://nope/1"); !errors.Is(err, ErrNoSuchJob) {
		t.Fatalf("err = %v", err)
	}
	if _, err := r.gk.Job("https://nope/1"); !errors.Is(err, ErrNoSuchJob) {
		t.Fatalf("err = %v", err)
	}
}

func TestContactIDsUnique(t *testing.T) {
	r := newRig(t, 100)
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		j, err := r.gk.Submit(spec("/CN=atlas-prod", "usatlas", time.Hour))
		if err != nil {
			t.Fatal(err)
		}
		if seen[j.ID] {
			t.Fatalf("duplicate contact %s", j.ID)
		}
		seen[j.ID] = true
		if want := fmt.Sprintf("https://%s:2119/", r.site.Host); len(j.ID) <= len(want) {
			t.Fatalf("contact format %q", j.ID)
		}
	}
}
