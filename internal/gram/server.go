package gram

import (
	"bufio"
	"bytes"
	"crypto/rand"
	"encoding/base64"
	"encoding/gob"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"grid3/internal/gsi"
)

// This file implements a real TCP gatekeeper/jobmanager speaking a compact
// GRAM-like protocol with GSI challenge-response authentication — the
// analogue of globus-gatekeeper + jobmanager-fork. The simulated Gatekeeper
// above drives calibrated scenarios; this server is what the examples and
// integration tests exercise over real sockets.
//
// Protocol (one text control channel):
//
//	S: 220 grid3 gatekeeper nonce=<hex>
//	C: AUTH <base64(gob bundle)> <base64(sig over nonce)>
//	S: 230 mapped to <account>                    | 530 <reason>
//	C: SUBMIT <executable> <duration-ms>          → 201 <job-id>
//	C: POLL <job-id>                              → 202 <STATE>
//	C: CANCEL <job-id>                            → 203 cancelled
//	C: QUIT                                       → 221 bye

// wireBundle is the gob form of a credential's public half.
type wireBundle struct {
	Leaf  *gsi.Certificate
	Chain []*gsi.Certificate
}

// serverJob is one jobmanager-managed process.
type serverJob struct {
	id       string
	state    JobState
	timer    *time.Timer
	account  string
	duration time.Duration
}

// Server is a GSI-authenticated TCP gatekeeper executing jobs on the wall
// clock (durations are milliseconds; tests use short ones).
type Server struct {
	Trust   *gsi.TrustStore
	Gridmap *gsi.Gridmap
	Now     func() time.Time
	// Slots bounds simultaneously ACTIVE jobs; excess stay PENDING.
	Slots int

	listener net.Listener
	wg       sync.WaitGroup

	mu      sync.Mutex
	jobs    map[string]*serverJob
	active  int
	pending []*serverJob
	nextID  int64
	closed  bool
}

// NewServer creates a gatekeeper with the given trust anchors and map.
func NewServer(trust *gsi.TrustStore, gridmap *gsi.Gridmap, slots int) *Server {
	if slots <= 0 {
		slots = 1
	}
	return &Server{
		Trust: trust, Gridmap: gridmap, Now: time.Now, Slots: slots,
		jobs: make(map[string]*serverJob),
	}
}

// Serve starts listening on a fresh localhost port.
func (s *Server) Serve() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	s.listener = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.handle(conn)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the listener, cancels running jobs, and waits for sessions.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for _, j := range s.jobs {
		if j.timer != nil {
			j.timer.Stop()
		}
	}
	s.mu.Unlock()
	err := s.listener.Close()
	s.wg.Wait()
	return err
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	rw := bufio.NewReadWriter(bufio.NewReader(conn), bufio.NewWriter(conn))
	reply := func(format string, args ...any) bool {
		fmt.Fprintf(rw, format+"\r\n", args...)
		return rw.Flush() == nil
	}
	nonce := make([]byte, 32)
	if _, err := rand.Read(nonce); err != nil {
		reply("421 internal error")
		return
	}
	if !reply("220 grid3 gatekeeper nonce=%x", nonce) {
		return
	}
	account := ""
	for {
		line, err := rw.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 0 {
			continue
		}
		switch strings.ToUpper(fields[0]) {
		case "QUIT":
			reply("221 bye")
			return
		case "AUTH":
			if len(fields) != 3 {
				reply("501 AUTH <bundle> <sig>")
				continue
			}
			acct, err := s.authenticate(fields[1], fields[2], nonce)
			if err != nil {
				reply("530 %v", err)
				continue
			}
			account = acct
			reply("230 mapped to %s", acct)
		case "SUBMIT":
			if account == "" {
				reply("530 authenticate first")
				continue
			}
			if len(fields) != 3 {
				reply("501 SUBMIT <executable> <duration-ms>")
				continue
			}
			ms, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil || ms < 0 || ms > int64(time.Hour/time.Millisecond) {
				reply("501 bad duration")
				continue
			}
			id := s.submit(account, time.Duration(ms)*time.Millisecond)
			reply("201 %s", id)
		case "POLL":
			if len(fields) != 2 {
				reply("501 POLL <job-id>")
				continue
			}
			st, ok := s.poll(fields[1])
			if !ok {
				reply("550 no such job")
				continue
			}
			reply("202 %s", st)
		case "CANCEL":
			if len(fields) != 2 {
				reply("501 CANCEL <job-id>")
				continue
			}
			if !s.cancel(fields[1]) {
				reply("550 no such job")
				continue
			}
			reply("203 cancelled")
		default:
			reply("500 unknown command")
		}
	}
}

func (s *Server) authenticate(bundleB64, sigB64 string, nonce []byte) (string, error) {
	raw, err := base64.StdEncoding.DecodeString(bundleB64)
	if err != nil {
		return "", fmt.Errorf("bad bundle encoding")
	}
	sig, err := base64.StdEncoding.DecodeString(sigB64)
	if err != nil {
		return "", fmt.Errorf("bad signature encoding")
	}
	var bundle wireBundle
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&bundle); err != nil || bundle.Leaf == nil {
		return "", fmt.Errorf("bad bundle")
	}
	if err := gsi.VerifyChallenge(bundle.Leaf, nonce, sig); err != nil {
		return "", fmt.Errorf("challenge failed")
	}
	identity, err := s.Trust.Verify(bundle.Leaf, bundle.Chain, s.Now())
	if err != nil {
		return "", fmt.Errorf("certificate rejected: %v", err)
	}
	acct, err := s.Gridmap.Lookup(identity)
	if err != nil {
		return "", fmt.Errorf("not authorized: %s", identity)
	}
	return acct, nil
}

func (s *Server) submit(account string, d time.Duration) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	j := &serverJob{
		id:       fmt.Sprintf("gram-%d", s.nextID),
		state:    StatePending,
		account:  account,
		duration: d,
	}
	s.jobs[j.id] = j
	s.pending = append(s.pending, j)
	s.pump()
	return j.id
}

// pump starts pending jobs while slots are free. Caller holds s.mu.
func (s *Server) pump() {
	for s.active < s.Slots && len(s.pending) > 0 {
		j := s.pending[0]
		s.pending = s.pending[1:]
		if j.state != StatePending {
			continue
		}
		j.state = StateActive
		s.active++
		job := j
		j.timer = time.AfterFunc(job.duration, func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			if job.state == StateActive {
				job.state = StateDone
				s.active--
				s.pump()
			}
		})
	}
}

func (s *Server) poll(id string) (JobState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return StateUnsubmitted, false
	}
	return j.state, true
}

func (s *Server) cancel(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return false
	}
	switch j.state {
	case StateActive:
		if j.timer != nil {
			j.timer.Stop()
		}
		j.state = StateFailed
		s.active--
		s.pump()
	case StatePending:
		j.state = StateFailed
	}
	return true
}
