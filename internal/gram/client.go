package gram

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"strings"
	"time"

	"grid3/internal/gsi"
)

// Client is a connection to a real TCP gatekeeper, authenticated with a
// GSI credential (typically a proxy) — the globus-job-run side.
type Client struct {
	conn    net.Conn
	rw      *bufio.ReadWriter
	Account string
}

// ErrServer wraps 4xx/5xx control-channel replies.
var ErrServer = errors.New("gram: server error")

// Dial connects and authenticates.
func Dial(addr string, cred *gsi.Credential) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, rw: bufio.NewReadWriter(bufio.NewReader(conn), bufio.NewWriter(conn))}
	greeting, err := c.readReply()
	if err != nil {
		conn.Close()
		return nil, err
	}
	const marker = "nonce="
	i := strings.Index(greeting, marker)
	if i < 0 {
		conn.Close()
		return nil, fmt.Errorf("gram: greeting missing nonce: %q", greeting)
	}
	hexStr := strings.TrimSpace(greeting[i+len(marker):])
	nonce := make([]byte, len(hexStr)/2)
	if _, err := fmt.Sscanf(hexStr, "%x", &nonce); err != nil {
		conn.Close()
		return nil, fmt.Errorf("gram: bad nonce: %w", err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wireBundle{Leaf: cred.Cert, Chain: cred.Chain}); err != nil {
		conn.Close()
		return nil, err
	}
	sig := gsi.SignChallenge(cred, nonce)
	reply, err := c.command("AUTH %s %s",
		base64.StdEncoding.EncodeToString(buf.Bytes()),
		base64.StdEncoding.EncodeToString(sig))
	if err != nil {
		conn.Close()
		return nil, err
	}
	if i := strings.LastIndex(reply, " "); i >= 0 {
		c.Account = reply[i+1:]
	}
	return c, nil
}

func (c *Client) readReply() (string, error) {
	line, err := c.rw.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimRight(line, "\r\n")
	if len(line) < 3 {
		return "", fmt.Errorf("gram: short reply %q", line)
	}
	if line[0] == '4' || line[0] == '5' {
		return "", fmt.Errorf("%w: %s", ErrServer, line)
	}
	return line, nil
}

func (c *Client) command(format string, args ...any) (string, error) {
	fmt.Fprintf(c.rw, format+"\r\n", args...)
	if err := c.rw.Flush(); err != nil {
		return "", err
	}
	return c.readReply()
}

// Submit starts a job of the given duration and returns its contact ID.
func (c *Client) Submit(executable string, d time.Duration) (string, error) {
	reply, err := c.command("SUBMIT %s %d", executable, d.Milliseconds())
	if err != nil {
		return "", err
	}
	fields := strings.Fields(reply)
	if len(fields) != 2 {
		return "", fmt.Errorf("gram: bad submit reply %q", reply)
	}
	return fields[1], nil
}

// Poll returns a job's state string (PENDING/ACTIVE/DONE/FAILED).
func (c *Client) Poll(id string) (string, error) {
	reply, err := c.command("POLL %s", id)
	if err != nil {
		return "", err
	}
	fields := strings.Fields(reply)
	if len(fields) != 2 {
		return "", fmt.Errorf("gram: bad poll reply %q", reply)
	}
	return fields[1], nil
}

// WaitDone polls until the job reaches DONE/FAILED or the timeout lapses.
func (c *Client) WaitDone(id string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.Poll(id)
		if err != nil {
			return "", err
		}
		if st == "DONE" || st == "FAILED" {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("gram: timeout waiting for %s (state %s)", id, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Cancel terminates a job.
func (c *Client) Cancel(id string) error {
	_, err := c.command("CANCEL %s", id)
	return err
}

// Close sends QUIT and closes the connection.
func (c *Client) Close() error {
	c.command("QUIT")
	return c.conn.Close()
}
