package gram

import (
	"errors"
	"testing"
	"time"

	"grid3/internal/gsi"
)

type tcpRig struct {
	ca    *gsi.CA
	proxy *gsi.Credential
	srv   *Server
	addr  string
}

func newTCPRig(t *testing.T, slots int) *tcpRig {
	t.Helper()
	now := time.Now()
	ca, err := gsi.NewCA("/CN=Test CA", now.Add(-time.Hour), 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	user, err := ca.Issue("/OU=People/CN=Grid User", now.Add(-time.Minute), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := gsi.NewProxy(user, now, 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	gm := gsi.NewGridmap()
	gm.Map(user.Cert.Subject, "usatlas")
	srv := NewServer(gsi.NewTrustStore(ca.Certificate()), gm, slots)
	addr, err := srv.Serve()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return &tcpRig{ca: ca, proxy: proxy, srv: srv, addr: addr}
}

func TestTCPSubmitPollDone(t *testing.T) {
	rig := newTCPRig(t, 2)
	c, err := Dial(rig.addr, rig.proxy)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Account != "usatlas" {
		t.Fatalf("account = %q", c.Account)
	}
	id, err := c.Submit("/bin/athena", 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.WaitDone(id, 2*time.Second)
	if err != nil || st != "DONE" {
		t.Fatalf("final state = %s, %v", st, err)
	}
}

func TestTCPSlotsQueue(t *testing.T) {
	rig := newTCPRig(t, 1)
	c, err := Dial(rig.addr, rig.proxy)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id1, _ := c.Submit("/bin/a", 100*time.Millisecond)
	id2, _ := c.Submit("/bin/b", 20*time.Millisecond)
	st2, _ := c.Poll(id2)
	if st2 != "PENDING" {
		t.Fatalf("second job state = %s, want PENDING behind the slot", st2)
	}
	if st, err := c.WaitDone(id1, 2*time.Second); err != nil || st != "DONE" {
		t.Fatalf("job1 = %s, %v", st, err)
	}
	if st, err := c.WaitDone(id2, 2*time.Second); err != nil || st != "DONE" {
		t.Fatalf("job2 = %s, %v", st, err)
	}
}

func TestTCPCancel(t *testing.T) {
	rig := newTCPRig(t, 1)
	c, _ := Dial(rig.addr, rig.proxy)
	defer c.Close()
	id, _ := c.Submit("/bin/longjob", 10*time.Second)
	if err := c.Cancel(id); err != nil {
		t.Fatal(err)
	}
	st, _ := c.Poll(id)
	if st != "FAILED" {
		t.Fatalf("cancelled state = %s", st)
	}
	if err := c.Cancel("gram-404"); !errors.Is(err, ErrServer) {
		t.Fatalf("cancel unknown err = %v", err)
	}
	if _, err := c.Poll("gram-404"); !errors.Is(err, ErrServer) {
		t.Fatalf("poll unknown err = %v", err)
	}
}

func TestTCPUnauthorized(t *testing.T) {
	rig := newTCPRig(t, 1)
	stranger, err := rig.ca.Issue("/CN=Stranger", time.Now().Add(-time.Minute), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(rig.addr, stranger); !errors.Is(err, ErrServer) {
		t.Fatalf("unauthorized dial err = %v", err)
	}
}
