package health

import "grid3/internal/checkpoint"

// HashState folds every breaker's state machine into h, in the monitor's
// deterministic sweep order. A nil monitor (health probes disabled) folds
// nothing, so digests compose uniformly whether or not the feature is on.
func (m *Monitor) HashState(h *checkpoint.Hasher) {
	if m == nil {
		return
	}
	h.Int(int64(len(m.order)))
	h.Int(int64(m.openCount))
	h.Int(int64(len(m.transitions)))
	for _, name := range m.order {
		sh := m.sites[name]
		h.String(name)
		for svc, b := range sh.svcs {
			if b == nil {
				h.Bool(false)
				continue
			}
			h.Bool(true)
			h.Int(int64(svc))
			h.Int(int64(b.state))
			h.Int(int64(b.fails))
			h.Int(int64(b.oks))
			h.Dur(b.backoff)
			h.Dur(b.retryAt)
		}
	}
}
