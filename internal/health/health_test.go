package health

import (
	"errors"
	"testing"
	"time"

	"grid3/internal/dist"
	"grid3/internal/obs"
	"grid3/internal/sim"
)

var errDown = errors.New("service down")

// scripted is a probe whose outcome a test flips at will.
type scripted struct{ down bool }

func (p *scripted) run() error {
	if p.down {
		return errDown
	}
	return nil
}

func newTestMonitor(t *testing.T, o *obs.Observer) (*sim.Engine, *Monitor, *scripted) {
	t.Helper()
	eng := sim.NewEngine(sim.Grid3Epoch)
	m := NewMonitor(eng, dist.New(42), Config{}, NewInstruments(o))
	p := &scripted{}
	m.Register("BNL", GRAM, p.run)
	m.Start()
	return eng, m, p
}

func TestBreakerLifecycle(t *testing.T) {
	eng, m, p := newTestMonitor(t, nil)

	eng.RunFor(1 * time.Hour)
	if got := m.State("BNL", GRAM); got != Closed {
		t.Fatalf("healthy service: state = %v, want Closed", got)
	}
	if !m.Allow("BNL", GRAM) {
		t.Fatal("healthy service must be allowed")
	}

	// Two consecutive failures (FailureThreshold default) open the breaker.
	p.down = true
	eng.RunFor(2 * m.Interval())
	if got := m.State("BNL", GRAM); got != Open {
		t.Fatalf("after %d failing probes: state = %v, want Open", 2, got)
	}
	if m.Allow("BNL", GRAM) {
		t.Fatal("open breaker must not allow traffic")
	}
	if got := m.OpenBreakers(); got != 1 {
		t.Fatalf("OpenBreakers = %d, want 1", got)
	}
	if got := m.DegradedSites(); len(got) != 1 || got[0] != "BNL" {
		t.Fatalf("DegradedSites = %v, want [BNL]", got)
	}

	// While the service stays down the breaker stays open; trial probes are
	// spaced by the (growing) backoff, not the base interval.
	eng.RunFor(12 * time.Hour)
	if got := m.State("BNL", GRAM); got != Open {
		t.Fatalf("service still down: state = %v, want Open", got)
	}

	// Recovery: trial passes -> HalfOpen, SuccessThreshold passes -> Closed.
	p.down = false
	eng.RunFor(6 * time.Hour)
	if got := m.State("BNL", GRAM); got != Closed {
		t.Fatalf("after recovery: state = %v, want Closed", got)
	}
	if got := m.OpenBreakers(); got != 0 {
		t.Fatalf("OpenBreakers after recovery = %d, want 0", got)
	}

	// The transition log shows the full episode in order.
	var states []State
	for _, tr := range m.Transitions() {
		states = append(states, tr.To)
	}
	want := []State{Open, HalfOpen, Closed}
	if len(states) != len(want) {
		t.Fatalf("transitions = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, states[i], want[i])
		}
	}
	if m.Transitions()[0].Err != "service down" {
		t.Fatalf("opening transition error = %q", m.Transitions()[0].Err)
	}
}

func TestSingleFailureDoesNotOpen(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	m := NewMonitor(eng, dist.New(1), Config{}, nil)
	p := &scripted{}
	m.Register("UF", GridFTP, p.run)
	m.Start()

	// One failing probe, then recovery before the threshold is met.
	eng.RunFor(m.Interval() + time.Minute)
	p.down = true
	eng.RunFor(m.Interval())
	p.down = false
	eng.RunFor(2 * m.Interval())
	if got := m.State("UF", GridFTP); got != Closed {
		t.Fatalf("single blip: state = %v, want Closed", got)
	}
	if len(m.Transitions()) != 0 {
		t.Fatalf("single blip recorded transitions: %v", m.Transitions())
	}
}

func TestBackoffStopsProbeTraffic(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	probes := 0
	m := NewMonitor(eng, dist.New(7), Config{}, nil)
	m.Register("IU", SRM, func() error { probes++; return errDown })
	m.Start()

	// Run long enough for many intervals; once the breaker opens, probe
	// traffic is paced by the exponential backoff instead of the interval.
	eng.RunFor(24 * time.Hour)
	intervals := int(24 * time.Hour / m.Interval())
	if probes >= intervals {
		t.Fatalf("open breaker kept probing every interval: %d probes in %d intervals", probes, intervals)
	}
	if probes < 5 {
		t.Fatalf("expected periodic trial probes, got %d", probes)
	}
}

func TestHalfOpenRelapseReopens(t *testing.T) {
	// Drive sweeps by hand for precise state control: no ticker.
	eng := sim.NewEngine(sim.Grid3Epoch)
	m := NewMonitor(eng, dist.New(3), Config{SuccessThreshold: 3}, nil)
	p := &scripted{down: true}
	m.Register("CIT", GRAM, p.run)

	m.Sweep() // fail 1
	m.Sweep() // fail 2 -> Open
	if got := m.State("CIT", GRAM); got != Open {
		t.Fatalf("state = %v, want Open", got)
	}
	eng.RunFor(6 * time.Hour) // well past any jittered backoff
	p.down = false
	m.Sweep() // trial passes -> HalfOpen (needs 3 passes to close)
	if got := m.State("CIT", GRAM); got != HalfOpen {
		t.Fatalf("state = %v, want HalfOpen", got)
	}
	p.down = true
	m.Sweep() // relapse -> straight back to Open
	if got := m.State("CIT", GRAM); got != Open {
		t.Fatalf("state after relapse = %v, want Open", got)
	}
}

func TestDeterministicBackoff(t *testing.T) {
	run := func() []Transition {
		eng := sim.NewEngine(sim.Grid3Epoch)
		m := NewMonitor(eng, dist.New(99), Config{}, nil)
		p := &scripted{}
		m.Register("BU", GRAM, p.run)
		m.Start()
		eng.Schedule(2*time.Hour, func() { p.down = true })
		eng.Schedule(20*time.Hour, func() { p.down = false })
		eng.RunFor(48 * time.Hour)
		return m.Transitions()
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) < 3 {
		t.Fatalf("runs diverged or too short: %d vs %d transitions", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("transition %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Jitter must actually be applied: the gap between Open and the first
	// recovery transition is not an exact multiple of the base backoff.
	if a[0].To != Open {
		t.Fatalf("first transition %+v, want Open", a[0])
	}
}

func TestOutageSpansAndInstruments(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	o := obs.New(eng.Now)
	m := NewMonitor(eng, dist.New(5), Config{}, NewInstruments(o))
	p := &scripted{}
	m.Register("BNL", GRAM, p.run)
	m.Start()

	downAt := 4 * time.Hour
	upAt := 16 * time.Hour
	eng.Schedule(downAt, func() { p.down = true })
	eng.Schedule(upAt, func() { p.down = false })
	eng.RunFor(48 * time.Hour)

	var outages []obs.Span
	for _, sp := range o.Tracer.Spans() {
		if sp.Kind == obs.KindOutage {
			outages = append(outages, sp)
		}
	}
	if len(outages) != 1 {
		t.Fatalf("outage spans = %d, want 1", len(outages))
	}
	sp := outages[0]
	if sp.Site != "BNL" || sp.Job != "gram" {
		t.Fatalf("outage span site/service = %q/%q", sp.Site, sp.Job)
	}
	if !sp.Ended() {
		t.Fatal("outage span never closed despite recovery")
	}
	if sp.Start < downAt || sp.Start > downAt+4*m.Interval() {
		t.Fatalf("detection at %v, outage began at %v (interval %v)", sp.Start, downAt, m.Interval())
	}
	if sp.End < upAt {
		t.Fatalf("recovery span ended %v before service came back at %v", sp.End, upAt)
	}

	snap := o.Metrics.Snapshot()
	var pass, fail, opened, closed float64
	var probeN uint64
	for _, c := range snap.Counters {
		switch c.Name {
		case "health.probe.pass":
			pass = float64(c.Value)
		case "health.probe.fail":
			fail = float64(c.Value)
		case "health.breaker.opened":
			opened = float64(c.Value)
		case "health.breaker.closed":
			closed = float64(c.Value)
		}
	}
	for _, h := range snap.Histograms {
		if h.Name == "health.probe.seconds" {
			probeN = h.N
		}
	}
	if pass == 0 || fail == 0 {
		t.Fatalf("probe counters pass=%v fail=%v", pass, fail)
	}
	if opened != 1 || closed != 1 {
		t.Fatalf("breaker counters opened=%v closed=%v, want 1/1", opened, closed)
	}
	if probeN != uint64(pass+fail) {
		t.Fatalf("probe latency samples %d != pass+fail %v", probeN, pass+fail)
	}
	var openGauge float64 = -1
	for _, g := range snap.Gauges {
		if g.Name == "health.breakers.open" {
			openGauge = g.Value
		}
	}
	if openGauge != 0 {
		t.Fatalf("health.breakers.open gauge = %v, want 0 after recovery", openGauge)
	}
}

func TestUnregisteredAlwaysAllowed(t *testing.T) {
	var m *Monitor
	if !m.Allow("X", GRAM) || m.State("X", GRAM) != Closed || m.OpenBreakers() != 0 {
		t.Fatal("nil monitor must behave as all-healthy")
	}
	eng := sim.NewEngine(sim.Grid3Epoch)
	m = NewMonitor(eng, dist.New(1), Config{}, nil)
	if !m.Allow("X", SRM) {
		t.Fatal("unregistered pair must be allowed")
	}
}
