// Package health is the Site Status Catalog's active half: the closed-loop
// fault-management subsystem the Grid2003 operations chapter describes.
//
// §6 of the paper attributes roughly 90% of failures to site-level problems
// — full disks, dead gatekeepers, network interruptions — and §5.2/§6
// describe the response: periodic probes against each site's public
// services, a status page, iGOC trouble tickets, and operators steering
// work away from sick sites until the probes pass again. The Monitor here
// automates that loop. It runs a probe per (site, service) on the sim timer
// wheel and drives a circuit breaker per pair:
//
//	Closed ──FailureThreshold consecutive failures──▶ Open
//	Open ──backoff elapses, trial probe passes──▶ HalfOpen
//	Open ──trial probe fails──▶ Open (backoff doubles, capped)
//	HalfOpen ──SuccessThreshold consecutive passes──▶ Closed
//	HalfOpen ──any failure──▶ Open (backoff doubles, capped)
//
// While a breaker is Open the monitor stops probing the service until the
// backoff elapses (no hammering a dead endpoint) and Allow reports false,
// which schedulers and data movers use to route around the site. Backoff is
// exponential with deterministic seeded jitter from a private RNG, so
// recovered services are not hit by every consumer in lockstep and runs
// remain bit-reproducible for a given seed.
//
// Detection and recovery are observable: each probe records a latency
// sample, breakers export state gauges, and every Open→…→Closed episode is
// one KindOutage span whose Start−injection and End−injection offsets give
// mean-time-to-detect and mean-time-to-recover in the chaos sweep.
package health

import (
	"sort"
	"time"

	"grid3/internal/dist"
	"grid3/internal/obs"
	"grid3/internal/sim"
)

// Service identifies one probed site service, mirroring the three entries a
// Grid3 site published: the GRAM gatekeeper, the GridFTP door, and the
// storage element.
type Service int

// Probed services.
const (
	GRAM Service = iota
	GridFTP
	SRM
	numServices
)

func (s Service) String() string {
	switch s {
	case GRAM:
		return "gram"
	case GridFTP:
		return "gridftp"
	case SRM:
		return "srm"
	}
	return "unknown"
}

// State is a circuit-breaker state.
type State int

// Breaker states.
const (
	Closed   State = iota // service believed healthy; traffic allowed
	Open                  // service believed down; traffic blocked, probes backed off
	HalfOpen              // trial probe passed; traffic allowed while confidence rebuilds
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Probe checks one service once; a nil error means healthy. Probes run on
// the sim clock and must be side-effect free.
type Probe func() error

// Config tunes probe cadence and breaker thresholds. Zero fields take the
// defaults noted per field, which echo the ~10-minute cadence of the real
// Site Status Catalog scripts.
type Config struct {
	Interval         time.Duration // probe cadence (default 10m)
	FailureThreshold int           // consecutive failures that open a breaker (default 2)
	SuccessThreshold int           // consecutive half-open passes that close it (default 2)
	BaseBackoff      time.Duration // first open→trial delay (default 20m)
	MaxBackoff       time.Duration // backoff cap (default 3h)
	JitterFrac       float64       // ± fraction applied to every backoff (default 0.25)
	ProbeRTT         time.Duration // mean round-trip of a passing probe (default 2s)
	ProbeTimeout     time.Duration // latency charged to a failing probe (default 30s)
}

func (c *Config) defaults() {
	if c.Interval <= 0 {
		c.Interval = 10 * time.Minute
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 2
	}
	if c.SuccessThreshold <= 0 {
		c.SuccessThreshold = 2
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 20 * time.Minute
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 3 * time.Hour
	}
	if c.JitterFrac <= 0 || c.JitterFrac >= 1 {
		c.JitterFrac = 0.25
	}
	if c.ProbeRTT <= 0 {
		c.ProbeRTT = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 30 * time.Second
	}
}

// Transition records one breaker state change, in the order they happened.
type Transition struct {
	Site    string
	Service Service
	At      time.Duration
	From    State
	To      State
	Err     string // probe error that caused an opening transition
}

// Instruments is the monitor's obs surface. A nil *Instruments (observability
// off) makes every recording a no-op; the breakers behave identically either
// way.
type Instruments struct {
	Tracer       *obs.Tracer
	ProbeLatency *obs.Histogram // health.probe.seconds
	ProbePass    *obs.Counter   // health.probe.pass
	ProbeFail    *obs.Counter   // health.probe.fail
	Opened       *obs.Counter   // health.breaker.opened
	Reclosed     *obs.Counter   // health.breaker.closed

	// Failover counters are bumped by the scheduling and data paths that
	// consult the monitor, not by the monitor itself.
	ReplicaFailovers *obs.Counter // health.failover.replica: transfer rerouted to an alternate replica
	StageRetries     *obs.Counter // health.retry.stage: stage-in/out attempt retried after failure

	reg *obs.Registry
}

// NewInstruments builds the instrument set on o's registry and tracer, or
// returns nil when o is nil.
func NewInstruments(o *obs.Observer) *Instruments {
	if o == nil {
		return nil
	}
	reg := o.Metrics
	return &Instruments{
		Tracer:           o.Tracer,
		ProbeLatency:     reg.Histogram("health.probe.seconds", obs.DurationBounds),
		ProbePass:        reg.Counter("health.probe.pass"),
		ProbeFail:        reg.Counter("health.probe.fail"),
		Opened:           reg.Counter("health.breaker.opened"),
		Reclosed:         reg.Counter("health.breaker.closed"),
		ReplicaFailovers: reg.Counter("health.failover.replica"),
		StageRetries:     reg.Counter("health.retry.stage"),
		reg:              reg,
	}
}

// breaker is the per-(site, service) state machine.
type breaker struct {
	probe   Probe
	state   State
	fails   int           // consecutive failures while Closed
	oks     int           // consecutive passes while HalfOpen
	backoff time.Duration // current raw (unjittered) open→trial delay
	retryAt time.Duration // next trial probe time while Open
	span    obs.SpanID    // open outage span, 0 when healthy
}

type siteHealth struct {
	name string
	svcs [numServices]*breaker
}

// Monitor probes every registered (site, service) pair on a fixed cadence
// and maintains their circuit breakers. It is single-threaded on the sim
// engine like every other service.
type Monitor struct {
	eng sim.Scheduler
	rng *dist.RNG // private stream: backoff jitter + probe RTT only
	cfg Config
	Ins *Instruments

	// OnTransition, if set, observes every breaker state change after it is
	// applied — the hook the iGOC ticket loop hangs off.
	OnTransition func(Transition)

	sites       map[string]*siteHealth
	order       []string // sorted site names: deterministic sweep order
	transitions []Transition
	ticker      *sim.Ticker
	openCount   int // breakers currently Open (exported as a gauge)
}

// NewMonitor builds a monitor on eng. rng must be a private stream (never
// the scenario's master RNG: probe cadence would otherwise perturb the
// workload draw sequence). ins may be nil.
func NewMonitor(eng sim.Scheduler, rng *dist.RNG, cfg Config, ins *Instruments) *Monitor {
	cfg.defaults()
	m := &Monitor{eng: eng, rng: rng, cfg: cfg, Ins: ins, sites: map[string]*siteHealth{}}
	if ins != nil && ins.reg != nil {
		ins.reg.Gauge("health.breakers.open", func() float64 { return float64(m.openCount) })
		ins.reg.Gauge("health.sites.degraded", func() float64 { return float64(len(m.DegradedSites())) })
	}
	return m
}

// Interval returns the probe cadence after defaulting.
func (m *Monitor) Interval() time.Duration { return m.cfg.Interval }

// Register adds a probe for one service at one site. Registering the same
// pair again replaces the probe but keeps breaker state.
func (m *Monitor) Register(site string, svc Service, probe Probe) {
	sh, ok := m.sites[site]
	if !ok {
		sh = &siteHealth{name: site}
		m.sites[site] = sh
		// Insert into sorted position rather than re-sorting the whole
		// order per registration (quadratic at 1000-site populations).
		i := sort.SearchStrings(m.order, site)
		m.order = append(m.order, "")
		copy(m.order[i+1:], m.order[i:])
		m.order[i] = site
	}
	if b := sh.svcs[svc]; b != nil {
		b.probe = probe
		return
	}
	sh.svcs[svc] = &breaker{probe: probe}
}

// Start arms the periodic sweep on the timer wheel. The first sweep fires
// one full interval in, matching the sitecatalog ticker.
func (m *Monitor) Start() {
	if m.ticker == nil {
		m.ticker = sim.NewTicker(m.eng, m.cfg.Interval, m.Sweep)
	}
}

// Stop cancels the periodic sweep.
func (m *Monitor) Stop() {
	if m.ticker != nil {
		m.ticker.Stop()
		m.ticker = nil
	}
}

// Sweep probes every registered pair once, in deterministic (site, service)
// order. Open breakers whose backoff has not elapsed are skipped — the whole
// point of the breaker is to stop hammering a dead endpoint.
func (m *Monitor) Sweep() {
	now := m.eng.Now()
	for _, name := range m.order {
		sh := m.sites[name]
		for svc, b := range sh.svcs {
			if b == nil {
				continue
			}
			if b.state == Open && now < b.retryAt {
				continue
			}
			err := b.probe()
			// The RTT draw happens whether or not instruments are attached,
			// so enabling observability never shifts the jitter stream.
			rtt := m.rng.Jitter(m.cfg.ProbeRTT, 0.5)
			if err != nil {
				rtt = m.cfg.ProbeTimeout
			}
			if m.Ins != nil {
				if err != nil {
					m.Ins.ProbeFail.Inc()
				} else {
					m.Ins.ProbePass.Inc()
				}
				m.Ins.ProbeLatency.Observe(rtt.Seconds())
			}
			m.step(sh.name, Service(svc), b, err, now)
		}
	}
}

// step advances one breaker on one probe outcome.
func (m *Monitor) step(site string, svc Service, b *breaker, err error, now time.Duration) {
	pass := err == nil
	switch b.state {
	case Closed:
		if pass {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= m.cfg.FailureThreshold {
			b.backoff = m.cfg.BaseBackoff
			b.retryAt = now + m.jitter(b.backoff)
			m.transition(site, svc, b, Open, err, now)
		}
	case Open:
		// The backoff elapsed and this probe was the half-open trial.
		if pass {
			m.transition(site, svc, b, HalfOpen, nil, now)
			b.oks = 1
			if b.oks >= m.cfg.SuccessThreshold {
				m.transition(site, svc, b, Closed, nil, now)
			}
		} else {
			// Still down: double the capped backoff and stay Open. Not a
			// state change, so no transition is recorded.
			if b.backoff < m.cfg.MaxBackoff {
				b.backoff *= 2
				if b.backoff > m.cfg.MaxBackoff {
					b.backoff = m.cfg.MaxBackoff
				}
			}
			b.retryAt = now + m.jitter(b.backoff)
		}
	case HalfOpen:
		if pass {
			b.oks++
			if b.oks >= m.cfg.SuccessThreshold {
				m.transition(site, svc, b, Closed, nil, now)
			}
		} else {
			if b.backoff < m.cfg.MaxBackoff {
				b.backoff *= 2
				if b.backoff > m.cfg.MaxBackoff {
					b.backoff = m.cfg.MaxBackoff
				}
			}
			b.retryAt = now + m.jitter(b.backoff)
			m.transition(site, svc, b, Open, err, now)
		}
	}
}

// jitter spreads d by ±JitterFrac using the monitor's private stream.
func (m *Monitor) jitter(d time.Duration) time.Duration {
	return m.rng.Jitter(d, m.cfg.JitterFrac)
}

// transition applies a state change, maintains the outage span and gauges,
// records it, and notifies OnTransition.
func (m *Monitor) transition(site string, svc Service, b *breaker, to State, err error, now time.Duration) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	switch to {
	case Open:
		b.fails = 0
		m.openCount++
		if m.Ins != nil {
			m.Ins.Opened.Inc()
			if b.span == 0 {
				// One outage span covers the whole episode, Open through the
				// possibly repeated half-open attempts until Closed.
				b.span = m.Ins.Tracer.Begin(obs.KindOutage, 0, svc.String(), "", site)
			}
		}
	case HalfOpen:
		m.openCount--
	case Closed:
		if from == Open {
			m.openCount--
		}
		b.oks = 0
		b.backoff = 0
		if m.Ins != nil {
			m.Ins.Reclosed.Inc()
			if b.span != 0 {
				m.Ins.Tracer.End(b.span)
				b.span = 0
			}
		}
	}
	tr := Transition{Site: site, Service: svc, At: now, From: from, To: to}
	if err != nil {
		tr.Err = err.Error()
	}
	m.transitions = append(m.transitions, tr)
	if m.OnTransition != nil {
		m.OnTransition(tr)
	}
}

// Allow reports whether traffic may be sent to the service: true unless its
// breaker is Open. HalfOpen admits traffic — that is how confidence rebuilds.
// Unregistered pairs are always allowed.
func (m *Monitor) Allow(site string, svc Service) bool {
	if m == nil {
		return true
	}
	if sh, ok := m.sites[site]; ok {
		if b := sh.svcs[svc]; b != nil {
			return b.state != Open
		}
	}
	return true
}

// Handle is a pre-resolved view of one site's breakers. Consumers that
// check the same site repeatedly (per-resource matchmaking hooks, planner
// exclusion) resolve the site once at wiring time and skip the per-call
// map lookup — the difference between O(1) and one string hash per
// (job, resource) pair per negotiation cycle at 1000-site scale.
type Handle struct {
	sh *siteHealth
}

// HandleFor resolves a site once. Handles for unregistered sites (or a nil
// monitor) always allow traffic, matching Allow's contract.
func (m *Monitor) HandleFor(site string) Handle {
	if m == nil {
		return Handle{}
	}
	return Handle{sh: m.sites[site]}
}

// Allow reports whether traffic may be sent to the service at the handle's
// site; semantics match Monitor.Allow.
func (h Handle) Allow(svc Service) bool {
	if h.sh == nil {
		return true
	}
	b := h.sh.svcs[svc]
	return b == nil || b.state != Open
}

// Degraded reports whether any of the site's breakers is Open.
func (h Handle) Degraded() bool {
	if h.sh == nil {
		return false
	}
	for _, b := range h.sh.svcs {
		if b != nil && b.state == Open {
			return true
		}
	}
	return false
}

// State returns the breaker state for a pair (Closed for unknown pairs).
func (m *Monitor) State(site string, svc Service) State {
	if m == nil {
		return Closed
	}
	if sh, ok := m.sites[site]; ok {
		if b := sh.svcs[svc]; b != nil {
			return b.state
		}
	}
	return Closed
}

// OpenServices returns the services with Open breakers at site, in service
// order — the blast radius the ticket loop maps to severity.
func (m *Monitor) OpenServices(site string) []Service {
	if m == nil {
		return nil
	}
	sh, ok := m.sites[site]
	if !ok {
		return nil
	}
	var out []Service
	for svc, b := range sh.svcs {
		if b != nil && b.state == Open {
			out = append(out, Service(svc))
		}
	}
	return out
}

// DegradedSites returns the sorted names of sites with at least one Open
// breaker.
func (m *Monitor) DegradedSites() []string {
	if m == nil {
		return nil
	}
	var out []string
	for _, name := range m.order {
		if len(m.OpenServices(name)) > 0 {
			out = append(out, name)
		}
	}
	return out
}

// OpenBreakers returns how many breakers are currently Open.
func (m *Monitor) OpenBreakers() int {
	if m == nil {
		return 0
	}
	return m.openCount
}

// Transitions returns every recorded state change in order. The slice is
// the monitor's own storage; callers must not mutate it.
func (m *Monitor) Transitions() []Transition {
	if m == nil {
		return nil
	}
	return m.transitions
}
