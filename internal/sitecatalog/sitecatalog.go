// Package sitecatalog implements the Grid3 Site Status Catalog (§5.2):
// periodic functional probes of every site's services, a status page with
// per-site state and location, and uptime history.
//
// "The Site Status Catalog periodically tests all sites and stores some
// critical information centrally. A web interface provides a list of all
// Grid3 sites, their location on a map, their status, and other important
// information."
package sitecatalog

import (
	"fmt"
	"io"
	"sort"
	"time"

	"grid3/internal/sim"
)

// Status is a site's probe verdict.
type Status int

// Site statuses.
const (
	Unknown Status = iota
	Pass
	Fail
)

func (s Status) String() string {
	switch s {
	case Pass:
		return "PASS"
	case Fail:
		return "FAIL"
	}
	return "UNKNOWN"
}

// Probe checks one service at one site; nil means healthy.
type Probe struct {
	Name string
	Run  func() error
}

// Entry is one cataloged site.
type Entry struct {
	SiteName  string
	Location  string // institution, for the catalog's map view
	probes    []Probe
	status    Status
	lastErr   string
	lastCheck time.Duration

	// Uptime accounting.
	passTime    time.Duration
	totalTime   time.Duration
	since       time.Duration // time of last status change
	transitions int

	// note is an operator annotation shown on the status page (e.g. the
	// health monitor's open-breaker summary). Informational only: it never
	// affects the probe verdict.
	note string
}

// Status returns the current probe verdict.
func (e *Entry) Status() Status { return e.status }

// LastError returns the most recent failing probe's message.
func (e *Entry) LastError() string { return e.lastErr }

// Transitions counts status flips — a proxy for site stability ("Once a
// site becomes stable, it usually remains so", §7).
func (e *Entry) Transitions() int { return e.transitions }

// Uptime returns the fraction of monitored time spent in PASS.
func (e *Entry) Uptime() float64 {
	if e.totalTime == 0 {
		return 0
	}
	return float64(e.passTime) / float64(e.totalTime)
}

// Catalog probes all registered sites on a fixed interval.
type Catalog struct {
	eng     sim.Scheduler
	entries map[string]*Entry
	// order holds entries in sorted-name order, maintained incrementally
	// at registration. The sweep used to rebuild and re-sort the name
	// list every 15 simulated minutes — at 1000 sites that alloc+sort
	// dominated the sweep itself.
	order  []*Entry
	ticker *sim.Ticker
}

// New creates a catalog probing every interval (Grid3 used ~15 minutes).
func New(eng sim.Scheduler, interval time.Duration) *Catalog {
	c := &Catalog{eng: eng, entries: make(map[string]*Entry)}
	c.ticker = sim.NewTicker(eng, interval, c.Sweep)
	return c
}

// Register adds a site with its probes. Registering an existing name
// replaces its entry.
func (c *Catalog) Register(siteName, location string, probes ...Probe) *Entry {
	e := &Entry{SiteName: siteName, Location: location, probes: probes, since: c.eng.Now()}
	_, existed := c.entries[siteName]
	c.entries[siteName] = e
	i := sort.Search(len(c.order), func(i int) bool { return c.order[i].SiteName >= siteName })
	if existed {
		c.order[i] = e
		return e
	}
	c.order = append(c.order, nil)
	copy(c.order[i+1:], c.order[i:])
	c.order[i] = e
	return e
}

// Stop halts probing.
func (c *Catalog) Stop() { c.ticker.Stop() }

// Sweep probes every site once; the ticker calls this periodically.
func (c *Catalog) Sweep() {
	now := c.eng.Now()
	for _, e := range c.order {
		// Accrue time in the previous state first.
		if e.status != Unknown {
			dt := now - e.lastCheck
			e.totalTime += dt
			if e.status == Pass {
				e.passTime += dt
			}
		}
		next := Pass
		e.lastErr = ""
		for _, p := range e.probes {
			if err := p.Run(); err != nil {
				next = Fail
				e.lastErr = fmt.Sprintf("%s: %v", p.Name, err)
				break
			}
		}
		if next != e.status {
			if e.status != Unknown {
				e.transitions++
			}
			e.status = next
			e.since = now
		}
		e.lastCheck = now
	}
}

// Sites returns registered site names, sorted.
func (c *Catalog) Sites() []string {
	out := make([]string, 0, len(c.order))
	for _, e := range c.order {
		out = append(out, e.SiteName)
	}
	return out
}

// Entries returns the catalog's entries in sorted-name order. The slice is
// the catalog's own storage; callers must not mutate it.
func (c *Catalog) Entries() []*Entry { return c.order }

// Entry returns a site's catalog entry.
func (c *Catalog) Entry(siteName string) (*Entry, bool) {
	e, ok := c.entries[siteName]
	return e, ok
}

// SetNote annotates a site's status-page row (empty clears it). Notes are
// purely informational: the probe verdict and uptime are unaffected.
func (c *Catalog) SetNote(siteName, note string) {
	if e, ok := c.entries[siteName]; ok {
		e.note = note
	}
}

// Note returns the site's current status-page annotation.
func (e *Entry) Note() string { return e.note }

// Passing returns the number of sites currently in PASS.
func (c *Catalog) Passing() int {
	n := 0
	for _, e := range c.entries {
		if e.status == Pass {
			n++
		}
	}
	return n
}

// WriteStatusPage renders the catalog's web view as text.
func (c *Catalog) WriteStatusPage(w io.Writer) (int64, error) {
	var total int64
	n, err := fmt.Fprintf(w, "%-24s %-28s %-7s %8s %s\n", "SITE", "LOCATION", "STATUS", "UPTIME", "LAST ERROR")
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, e := range c.order {
		detail := e.lastErr
		if e.note != "" {
			if detail != "" {
				detail += " | "
			}
			detail += e.note
		}
		n, err := fmt.Fprintf(w, "%-24s %-28s %-7s %7.1f%% %s\n",
			e.SiteName, e.Location, e.status, 100*e.Uptime(), detail)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
