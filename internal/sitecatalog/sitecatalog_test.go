package sitecatalog

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"grid3/internal/sim"
)

func TestSweepAndStatus(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	cat := New(eng, 15*time.Minute)
	healthy := true
	cat.Register("UC_ATLAS_Tier2", "U. Chicago",
		Probe{Name: "gram-ping", Run: func() error {
			if !healthy {
				return errors.New("connection timed out")
			}
			return nil
		}},
		Probe{Name: "gridftp-ls", Run: func() error { return nil }},
	)
	cat.Register("Vanderbilt", "Vanderbilt U.", Probe{Name: "gram-ping", Run: func() error { return nil }})

	eng.RunUntil(time.Hour)
	if cat.Passing() != 2 {
		t.Fatalf("passing = %d", cat.Passing())
	}
	e, ok := cat.Entry("UC_ATLAS_Tier2")
	if !ok || e.Status() != Pass {
		t.Fatalf("entry = %+v", e)
	}

	healthy = false
	eng.RunUntil(90 * time.Minute)
	if e.Status() != Fail {
		t.Fatalf("status after failure = %v", e.Status())
	}
	if !strings.Contains(e.LastError(), "gram-ping") {
		t.Fatalf("last error = %q", e.LastError())
	}
	if cat.Passing() != 1 {
		t.Fatalf("passing = %d", cat.Passing())
	}

	healthy = true
	eng.RunUntil(2 * time.Hour)
	if e.Status() != Pass || e.Transitions() != 2 {
		t.Fatalf("status %v transitions %d", e.Status(), e.Transitions())
	}
}

func TestUptimeFraction(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	cat := New(eng, 10*time.Minute)
	healthy := true
	cat.Register("site", "loc", Probe{Name: "p", Run: func() error {
		if !healthy {
			return errors.New("down")
		}
		return nil
	}})
	// Healthy for ~12h, down for ~12h: uptime ≈ 50%.
	eng.RunUntil(12 * time.Hour)
	healthy = false
	eng.RunUntil(24 * time.Hour)
	e, _ := cat.Entry("site")
	if math.Abs(e.Uptime()-0.5) > 0.02 {
		t.Fatalf("uptime = %v, want ~0.5", e.Uptime())
	}
}

func TestUnknownUntilFirstSweep(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	cat := New(eng, 15*time.Minute)
	e := cat.Register("site", "loc", Probe{Name: "p", Run: func() error { return nil }})
	if e.Status() != Unknown {
		t.Fatalf("pre-sweep status = %v", e.Status())
	}
	if _, ok := cat.Entry("ghost"); ok {
		t.Fatal("phantom entry")
	}
}

func TestStatusPage(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	cat := New(eng, 15*time.Minute)
	cat.Register("BNL_ATLAS_Tier1", "Brookhaven", Probe{Name: "p", Run: func() error { return nil }})
	cat.Register("KNU_Kyungpook", "Kyungpook Natl. U.", Probe{Name: "p", Run: func() error { return errors.New("firewall") }})
	eng.RunUntil(time.Hour)
	var sb strings.Builder
	if _, err := cat.WriteStatusPage(&sb); err != nil {
		t.Fatal(err)
	}
	page := sb.String()
	for _, want := range []string{"BNL_ATLAS_Tier1", "PASS", "KNU_Kyungpook", "FAIL", "firewall"} {
		if !strings.Contains(page, want) {
			t.Fatalf("status page missing %q:\n%s", want, page)
		}
	}
}

func TestProbeShortCircuits(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	cat := New(eng, 15*time.Minute)
	secondRan := false
	cat.Register("site", "loc",
		Probe{Name: "first", Run: func() error { return errors.New("bad") }},
		Probe{Name: "second", Run: func() error { secondRan = true; return nil }},
	)
	cat.Sweep()
	if secondRan {
		t.Fatal("probes after a failure should not run")
	}
}

func TestStatusPageNotes(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	c := New(eng, 15*time.Minute)
	c.Register("BNL", "Brookhaven", Probe{Name: "gram-ping", Run: func() error { return nil }})
	eng.RunFor(time.Hour)

	c.SetNote("BNL", "breaker open: gridftp")
	e, _ := c.Entry("BNL")
	if e.Note() != "breaker open: gridftp" {
		t.Fatalf("note = %q", e.Note())
	}
	if e.Status() != Pass {
		t.Fatalf("note must not change status, got %v", e.Status())
	}
	var buf bytes.Buffer
	if _, err := c.WriteStatusPage(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "breaker open: gridftp") {
		t.Fatalf("status page missing note:\n%s", buf.String())
	}
	c.SetNote("BNL", "")
	if e.Note() != "" {
		t.Fatal("note not cleared")
	}
	c.SetNote("NOPE", "ignored") // unknown site: no-op
}
