package condorg

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"grid3/internal/batch"
	"grid3/internal/classad"
	"grid3/internal/dist"
	"grid3/internal/glue"
	"grid3/internal/gram"
	"grid3/internal/gsi"
	"grid3/internal/sim"
	"grid3/internal/site"
)

// rig builds a schedd over two sites with live CE ads.
type rig struct {
	eng    *sim.Engine
	schedd *Schedd
	sites  map[string]*site.Site
	batch  map[string]*batch.System
	gks    map[string]*gram.Gatekeeper
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.NewEngine(sim.Grid3Epoch)
	r := &rig{
		eng: eng, schedd: New(eng, 0),
		sites: map[string]*site.Site{}, batch: map[string]*batch.System{},
		gks: map[string]*gram.Gatekeeper{},
	}
	for _, cfg := range []struct {
		name  string
		slots int
		vos   []string
	}{
		{"BNL", 8, []string{"usatlas", "ivdgl"}},
		{"UC", 4, []string{"usatlas"}},
	} {
		accounts := map[string]string{}
		for _, vo := range cfg.vos {
			accounts[vo] = "grp_" + vo
		}
		st := site.MustNew(site.Config{
			Name: cfg.name, Host: cfg.name + ".example.org", CPUs: cfg.slots,
			DiskBytes: 1 << 40, WANMbps: 622, LRMS: glue.PBS,
			MaxWall: 100 * time.Hour, Accounts: accounts,
		})
		bs := batch.New(eng, batch.Config{Name: cfg.name, Slots: cfg.slots, EnforceWall: true, MaxWall: st.MaxWall})
		gm := gsi.NewGridmap()
		gm.Map("/CN=prod", "grp_usatlas")
		gk := gram.New(eng, st, bs, gm)
		r.sites[cfg.name] = st
		r.batch[cfg.name] = bs
		r.gks[cfg.name] = gk
		name := cfg.name
		r.schedd.AddResource(&Resource{
			Name:       name,
			Gatekeeper: gk,
			AdFunc: func() *classad.Ad {
				ce := &glue.CE{
					ID: name, SiteName: name, Host: name, LRMSType: glue.PBS,
					TotalCPUs: cfg.slots, FreeCPUs: r.batch[name].FreeSlots(),
					RunningJobs: r.batch[name].RunningCount(), WaitingJobs: r.batch[name].QueuedCount(),
					MaxWallTime: 100 * time.Hour, VOs: cfg.vos,
				}
				return ce.Ad()
			},
		})
	}
	return r
}

func gridJob(id string, runtime time.Duration) *GridJob {
	return &GridJob{
		ID: id,
		Spec: gram.Spec{
			Subject: "/CN=prod", VO: "usatlas", Executable: "/bin/sim",
			Walltime: runtime * 2, Runtime: runtime, StagingFactor: 1,
		},
	}
}

func TestSubmitMatchRun(t *testing.T) {
	r := newRig(t)
	var doneErr error
	done := false
	j := gridJob("j1", 2*time.Hour)
	j.OnDone = func(_ *GridJob, err error) { done = true; doneErr = err }
	if err := r.schedd.Submit(j); err != nil {
		t.Fatal(err)
	}
	if j.State != Running {
		t.Fatalf("state after submit = %v", j.State)
	}
	r.eng.RunUntil(3 * time.Hour)
	if !done || doneErr != nil {
		t.Fatalf("done=%v err=%v", done, doneErr)
	}
	if j.State != Completed || r.schedd.CompletedCount() != 1 {
		t.Fatalf("state %v completed %d", j.State, r.schedd.CompletedCount())
	}
	// Matchmaking picks BNL: more free CPUs, the job ad has no rank but
	// BestMatch breaks ties deterministically; verify it landed somewhere.
	if j.Site != "BNL" && j.Site != "UC" {
		t.Fatalf("site = %q", j.Site)
	}
}

func TestRankSteersPlacement(t *testing.T) {
	r := newRig(t)
	j := gridJob("ranked", time.Hour)
	j.Ad = classad.NewAd()
	j.Ad.SetExpr("Rank", "TARGET.FreeCpus")
	r.schedd.Submit(j)
	if j.Site != "BNL" {
		t.Fatalf("rank ignored: placed at %s", j.Site)
	}
}

func TestTargetSitePinning(t *testing.T) {
	r := newRig(t)
	j := gridJob("pinned", time.Hour)
	j.TargetSite = "UC"
	r.schedd.Submit(j)
	if j.Site != "UC" {
		t.Fatalf("pinned job placed at %q", j.Site)
	}
}

func TestNoMatchStaysIdle(t *testing.T) {
	r := newRig(t)
	j := gridJob("cms", time.Hour)
	j.Spec.VO = "uscms" // no site supports uscms
	r.schedd.Submit(j)
	if j.State != Idle || r.schedd.IdleCount() != 1 {
		t.Fatalf("state = %v idle = %d", j.State, r.schedd.IdleCount())
	}
	if r.schedd.MatchFailures() == 0 {
		t.Fatal("match failure not counted")
	}
}

func TestThrottleHoldsJobsAtSchedd(t *testing.T) {
	r := newRig(t)
	res, _ := r.schedd.Resource("UC")
	res.MaxSubmitted = 2
	for i := 0; i < 5; i++ {
		j := gridJob(fmt.Sprintf("t%d", i), time.Hour)
		j.TargetSite = "UC"
		r.schedd.Submit(j)
	}
	if got := r.schedd.IdleCount(); got != 3 {
		t.Fatalf("idle = %d, want 3 held back by throttle", got)
	}
	if r.gks["UC"].ManagedJobs() != 2 {
		t.Fatalf("gatekeeper managing %d", r.gks["UC"].ManagedJobs())
	}
	// As jobs finish, the negotiation ticker drains the idle queue.
	r.eng.RunUntil(10 * time.Hour)
	if r.schedd.CompletedCount() != 5 {
		t.Fatalf("completed = %d", r.schedd.CompletedCount())
	}
}

func TestBackoffAfterSiteDown(t *testing.T) {
	r := newRig(t)
	r.sites["BNL"].SetHealthy(false)
	r.sites["UC"].SetHealthy(false)
	j := gridJob("stuck", time.Hour)
	r.schedd.Submit(j)
	if j.State != Idle {
		t.Fatalf("state = %v", j.State)
	}
	// Site recovers; the next negotiation cycles place it after backoff.
	r.sites["BNL"].SetHealthy(true)
	r.sites["UC"].SetHealthy(true)
	r.eng.RunUntil(4 * time.Hour)
	if j.State != Completed {
		t.Fatalf("state after recovery = %v (err %v)", j.State, j.LastErr)
	}
}

func TestRetryAfterRemoteFailure(t *testing.T) {
	r := newRig(t)
	// Under-requested walltime: killed remotely, retried, fails again...
	j := gridJob("flaky", 4*time.Hour)
	j.Spec.Walltime = time.Hour
	j.MaxRetries = 1
	var finalErr error
	j.OnDone = func(_ *GridJob, err error) { finalErr = err }
	r.schedd.Submit(j)
	r.eng.RunUntil(24 * time.Hour)
	if j.State != Held {
		t.Fatalf("state = %v", j.State)
	}
	if !errors.Is(finalErr, ErrExhausted) {
		t.Fatalf("final err = %v", finalErr)
	}
	if j.Attempts != 2 {
		t.Fatalf("attempts = %d, want MaxRetries+1", j.Attempts)
	}
	if r.schedd.HeldCount() != 1 {
		t.Fatal("held counter")
	}
}

func TestAuthFailureDoesNotLoopForever(t *testing.T) {
	r := newRig(t)
	j := gridJob("mallory", time.Hour)
	j.Spec.Subject = "/CN=stranger"
	j.MaxRetries = 1
	var finalErr error
	j.OnDone = func(_ *GridJob, err error) { finalErr = err }
	r.schedd.Submit(j)
	r.eng.RunUntil(time.Hour)
	if j.State != Held || finalErr == nil {
		t.Fatalf("state = %v, err = %v", j.State, finalErr)
	}
}

func TestManyJobsLoadSpread(t *testing.T) {
	r := newRig(t)
	for i := 0; i < 12; i++ {
		j := gridJob(fmt.Sprintf("m%02d", i), time.Hour)
		j.Ad = classad.NewAd()
		j.Ad.SetExpr("Rank", "TARGET.FreeCpus")
		r.schedd.Submit(j)
	}
	// 12 slots total (8 BNL + 4 UC): everything should eventually run.
	r.eng.RunUntil(12 * time.Hour)
	if r.schedd.CompletedCount() != 12 {
		t.Fatalf("completed = %d", r.schedd.CompletedCount())
	}
	if r.batch["UC"].TotalCompleted() == 0 {
		t.Fatal("rank-based spread never used the smaller site")
	}
}

func TestResourceLookupError(t *testing.T) {
	r := newRig(t)
	if _, err := r.schedd.Resource("FNAL"); !errors.Is(err, ErrNoResource) {
		t.Fatalf("err = %v", err)
	}
	if err := r.schedd.Submit(&GridJob{}); err == nil {
		t.Fatal("job without ID accepted")
	}
}

func TestOnStartFires(t *testing.T) {
	r := newRig(t)
	var startedAt []string
	j := gridJob("hooked", time.Hour)
	j.OnStart = func(g *GridJob) { startedAt = append(startedAt, g.Site) }
	r.schedd.Submit(j)
	r.eng.RunUntil(2 * time.Hour)
	if len(startedAt) != 1 || startedAt[0] == "" {
		t.Fatalf("OnStart calls = %v", startedAt)
	}
	// A retried job fires OnStart again on its second launch.
	j2 := gridJob("retry-hooked", 4*time.Hour)
	j2.Spec.Walltime = time.Hour // walltime-killed remotely
	j2.MaxRetries = 1
	starts := 0
	j2.OnStart = func(*GridJob) { starts++ }
	r.schedd.Submit(j2)
	r.eng.RunUntil(24 * time.Hour)
	if starts != 2 {
		t.Fatalf("retried OnStart fired %d times, want 2", starts)
	}
}

func TestMaxMatchesPerCycle(t *testing.T) {
	r := newRig(t)
	r.schedd.MaxMatchesPerCycle = 3
	// Pin to an unhealthy site so nothing places; the cap bounds the
	// work per cycle but never loses jobs.
	r.sites["UC"].SetHealthy(false)
	for i := 0; i < 10; i++ {
		j := gridJob(fmt.Sprintf("capped%d", i), time.Hour)
		j.TargetSite = "UC"
		r.schedd.Submit(j)
	}
	if got := r.schedd.IdleCount(); got != 10 {
		t.Fatalf("idle = %d, want all 10 retained", got)
	}
	r.sites["UC"].SetHealthy(true)
	r.eng.RunUntil(48 * time.Hour)
	if r.schedd.CompletedCount() != 10 {
		t.Fatalf("completed = %d, want 10", r.schedd.CompletedCount())
	}
}

func TestAllResourcesThrottledFastPath(t *testing.T) {
	r := newRig(t)
	for _, name := range []string{"BNL", "UC"} {
		res, _ := r.schedd.Resource(name)
		res.MaxSubmitted = 1
	}
	for i := 0; i < 6; i++ {
		r.schedd.Submit(gridJob(fmt.Sprintf("f%d", i), time.Hour))
	}
	// Two in flight (one per resource), four idle; the fast path must
	// not drop them and the ticker drains everything eventually.
	if got := r.schedd.IdleCount(); got != 4 {
		t.Fatalf("idle = %d, want 4", got)
	}
	r.eng.RunUntil(24 * time.Hour)
	if r.schedd.CompletedCount() != 6 {
		t.Fatalf("completed = %d", r.schedd.CompletedCount())
	}
}

func TestBackoffJitterSpreadsRetries(t *testing.T) {
	// Two schedds see the same down site; with distinct jitter streams
	// their GridManager backoff windows must not stay in lockstep.
	until := func(seed int64) []time.Duration {
		r := newRig(t)
		r.schedd.BackoffJitter = dist.New(seed)
		r.sites["UC"].SetHealthy(false)
		j := gridJob("storm", time.Hour)
		j.TargetSite = "UC"
		r.schedd.Submit(j)
		var out []time.Duration
		res, _ := r.schedd.Resource("UC")
		for i := 0; i < 5; i++ {
			r.eng.RunFor(2 * time.Hour)
			out = append(out, res.backoffUntil)
		}
		return out
	}
	a := until(1)
	b := until(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("different jitter seeds produced identical backoff schedules: %v", a)
	}
	// Same seed must reproduce the schedule exactly (determinism).
	c := until(1)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, c)
		}
	}
}

func TestJitterStaysWithinBackoffEnvelope(t *testing.T) {
	r := newRig(t)
	r.schedd.BackoffJitter = dist.New(7)
	r.sites["UC"].SetHealthy(false)
	j := gridJob("envelope", time.Hour)
	j.TargetSite = "UC"
	r.schedd.Submit(j) // first failure: step = initialBackoff, jittered ±25%
	res, _ := r.schedd.Resource("UC")
	delay := res.backoffUntil - r.eng.Now()
	lo := time.Duration(float64(initialBackoff) * (1 - backoffJitterFrac))
	hi := time.Duration(float64(initialBackoff) * (1 + backoffJitterFrac))
	if delay < lo || delay > hi {
		t.Fatalf("first jittered backoff %v outside [%v, %v]", delay, lo, hi)
	}
}

func TestExcludeSkipsSiteInMatchmaking(t *testing.T) {
	r := newRig(t)
	r.schedd.Exclude = func(site string) bool { return site == "BNL" }
	j := gridJob("steer", time.Hour)
	j.Ad = classad.NewAd()
	j.Ad.SetExpr("Rank", "TARGET.FreeCpus") // would pick BNL (8 > 4 CPUs)
	r.schedd.Submit(j)
	if j.Site != "UC" {
		t.Fatalf("excluded site still used: placed at %q", j.Site)
	}
}

func TestExcludedPinFallsBackToMatchmaking(t *testing.T) {
	r := newRig(t)
	r.schedd.Exclude = func(site string) bool { return site == "UC" }
	j := gridJob("pinned-sick", time.Hour)
	j.TargetSite = "UC"
	r.schedd.Submit(j)
	if j.Site != "BNL" {
		t.Fatalf("pinned job did not fall back: site %q state %v", j.Site, j.State)
	}
	// Without Exclude the pin is honored (regression guard).
	r2 := newRig(t)
	j2 := gridJob("pinned-ok", time.Hour)
	j2.TargetSite = "UC"
	r2.schedd.Submit(j2)
	if j2.Site != "UC" {
		t.Fatalf("pin not honored without exclusion: %q", j2.Site)
	}
}

func TestAvoidFailedSitesSteersRetry(t *testing.T) {
	r := newRig(t)
	r.schedd.AvoidFailedSites = true
	// Under-requested walltime: the job is killed wherever it runs, so
	// without avoidance the retry would land on the same best-ranked site.
	j := gridJob("avoider", 4*time.Hour)
	j.Spec.Walltime = time.Hour
	j.MaxRetries = 1
	j.Ad = classad.NewAd()
	j.Ad.SetExpr("Rank", "TARGET.FreeCpus")
	r.schedd.Submit(j)
	first := j.Site
	if first == "" {
		t.Fatalf("job not placed")
	}
	r.eng.RunUntil(24 * time.Hour)
	if j.Site == first {
		t.Fatalf("retry landed on the failed site %q again", first)
	}
	failedRes, err := r.schedd.Resource(first)
	if err != nil {
		t.Fatalf("failed site %q not registered: %v", first, err)
	}
	if !j.avoid[failedRes] {
		t.Fatalf("failed site %q not recorded: %v", first, j.avoid)
	}
}
