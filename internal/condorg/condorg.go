// Package condorg implements Condor-G: a grid job queue (schedd) that
// matches job ClassAds against resource ClassAds and manages execution
// through remote GRAM gatekeepers, with per-resource GridManager throttles
// and retry on grid-level failures.
//
// "CMS Production jobs are specified by ... converting them to DAGs
// suitable for submission to Condor-G/DAGMan" (§4.2); computer science
// groups provided "Globus client libraries, Condor-G, RLS" as the common
// application middleware (§4.7).
package condorg

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"grid3/internal/classad"
	"grid3/internal/dist"
	"grid3/internal/gram"
	"grid3/internal/obs"
	"grid3/internal/sim"
)

// Instruments is the schedd's observability wiring: match and gram-auth
// spans for the per-job lifecycle trace plus registry counters. A nil
// *Instruments (the default) disables all of it at the cost of one branch.
type Instruments struct {
	Tracer        *obs.Tracer
	Submitted     *obs.Counter
	Completed     *obs.Counter
	Held          *obs.Counter
	MatchFailures *obs.Counter
	// PinFallbacks counts planned (site-pinned) jobs that fell back to full
	// matchmaking because their target's health breaker was open.
	PinFallbacks *obs.Counter
	// CyclePlacements is the number of jobs actually launched per
	// negotiation cycle — the negotiator's effective throughput.
	CyclePlacements *obs.Histogram
}

// NewInstruments wires instruments into an observer; nil in, nil out.
func NewInstruments(o *obs.Observer) *Instruments {
	if o == nil {
		return nil
	}
	return &Instruments{
		Tracer:        o.Tracer,
		Submitted:     o.Metrics.Counter("condorg.submitted"),
		Completed:     o.Metrics.Counter("condorg.completed"),
		Held:          o.Metrics.Counter("condorg.held"),
		MatchFailures: o.Metrics.Counter("condorg.match_failures"),
		PinFallbacks:  o.Metrics.Counter("condorg.pin_fallbacks"),
		CyclePlacements: o.Metrics.Histogram("condorg.negotiation.placements",
			[]float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000}),
	}
}

// tracer returns the span tracer, nil (disabled) when instruments are off.
func (in *Instruments) tracer() *obs.Tracer {
	if in == nil {
		return nil
	}
	return in.Tracer
}

// Errors.
var (
	ErrNoMatch    = errors.New("condorg: no resource matches job requirements")
	ErrExhausted  = errors.New("condorg: job failed after all retries")
	ErrNoResource = errors.New("condorg: unknown resource")
)

// JobState is the schedd-side job state.
type JobState int

// Schedd job states.
const (
	Idle JobState = iota
	Running
	Completed
	Held // failed all retries
)

func (s JobState) String() string {
	switch s {
	case Idle:
		return "idle"
	case Running:
		return "running"
	case Completed:
		return "completed"
	case Held:
		return "held"
	}
	return fmt.Sprintf("JobState(%d)", int(s))
}

// Resource is one grid site registered with the schedd.
type Resource struct {
	Name       string
	Gatekeeper *gram.Gatekeeper
	// AdFunc returns the resource's current ClassAd (live CE state).
	AdFunc func() *classad.Ad
	// MaxSubmitted is the GridManager throttle: the most jobs this schedd
	// keeps at the resource simultaneously (protects the gatekeeper from
	// the §6.4 overload). 0 = unlimited.
	MaxSubmitted int
	// Excluded, when set, reports that the resource must not receive new
	// traffic (its health breaker is open). It is the per-resource form of
	// Schedd.Exclude — resolved once at wiring time, so the matchmaking
	// scan pays a closure call instead of a site-name hash — and takes
	// precedence over Schedd.Exclude when both are set.
	Excluded func() bool
	// Region is the site's region shard (intern.Regions over its dense
	// ID). Sharded matchmaking chunks the candidate list by region; 0 for
	// every resource (the default) degrades to a single chunk.
	Region int

	inFlight int
	// backoffUntil pauses submissions after an overload/down response.
	backoffUntil time.Duration
	backoffStep  time.Duration
}

// full reports whether the GridManager throttle is saturated.
func (r *Resource) full() bool {
	return r.MaxSubmitted > 0 && r.inFlight >= r.MaxSubmitted
}

// GridJob is one queued grid job.
type GridJob struct {
	ID   string
	Ad   *classad.Ad
	Spec gram.Spec
	// TargetSite pins the job to one resource (a Pegasus-planned job);
	// empty means matchmake.
	TargetSite string
	// MaxRetries bounds grid-level resubmissions after remote failures.
	MaxRetries int
	// OnStart fires each time the job is launched at a site (Site is set);
	// a retried job may fire it again.
	OnStart func(*GridJob)
	// OnDone fires exactly once on terminal state; err nil on success.
	OnDone func(*GridJob, error)
	// Span is the job's root lifecycle span (0 = untraced); the schedd
	// parents its match and gram-auth spans under it and forwards it to
	// the gatekeeper for the run span.
	Span obs.SpanID

	State    JobState
	Site     string // where it ran (last attempt)
	Contact  string // execution-side GRAM contact of the last attempt
	Attempts int
	LastErr  error

	matchSpan obs.SpanID // open while the job waits to be placed
	// avoid marks resources where this job already failed. Keyed by
	// pointer: membership tests in the candidate scan stay O(1) without
	// hashing site names, and pointers are stable for the schedd's life.
	avoid       map[*Resource]bool
	pinFellBack bool // pin-fallback already counted for this job
}

// Schedd is the Condor-G scheduler daemon.
type Schedd struct {
	eng       *sim.Engine
	resources map[string]*Resource
	// list holds the resources in sorted-name order: the dense candidate
	// array every matchmaking scan walks (no per-candidate map lookup).
	list   []*Resource
	idle   []*GridJob
	jobs   map[string]*GridJob // every submitted job, by ID
	ticker *sim.Ticker

	// fullCount tracks how many resources are throttle-saturated,
	// maintained event-driven on launch/completion instead of rescanned:
	// when every resource is full, a negotiation cycle is O(1), which is
	// what bounds cost when a production burst outruns a 1000-site grid.
	fullCount int

	// Scratch buffers reused across matchmaking scans; rebuilt from
	// scratch per call, so only their backing arrays persist.
	adScratch    []*classad.Ad
	availScratch []*Resource

	// Region-sharded matchmaking (SetParallel). The candidate scan is pure
	// — eligibility, ClassAd matching, and ranking only read schedd and
	// site state, and the per-node ad caches it refreshes partition by
	// region — so the scan fans out over the eval pool, one chunk per
	// region, and the serial reduction below replicates BestMatch's
	// tie-break exactly. nil pool keeps the serial scan.
	pool        *sim.EvalPool
	regions     int
	chunkStarts []int        // chunkStarts[r] = first list index of region r
	chunkDirty  bool         // list changed since chunkStarts was built
	chunkBest   []chunkMatch // per-chunk scan results, reused

	// MaxMatchesPerCycle bounds matchmaking work per negotiation cycle;
	// excess idle jobs wait for the next cycle (0 = unlimited).
	MaxMatchesPerCycle int

	// BackoffJitter, when set, spreads each GridManager backoff delay by a
	// deterministic ±25% draw from this private seeded stream, so the
	// GridManagers of every schedd do not retry a recovered gatekeeper in
	// lockstep (a synchronized retry storm). Nil keeps pure doubling.
	BackoffJitter *dist.RNG

	// Exclude, when set, reports sites that must not receive new traffic
	// (open health breakers). Excluded resources are skipped in matchmaking,
	// and a pinned job whose target is excluded falls back to full
	// matchmaking instead of queueing on a dead site.
	Exclude func(site string) bool

	// AvoidFailedSites steers a job's grid-level retries away from sites
	// where it already failed, as long as another resource is eligible.
	AvoidFailedSites bool

	// Ins enables lifecycle tracing and metrics; nil (default) disables.
	Ins *Instruments

	submitted, completed, held int
	matchFailures              int
}

// DefaultNegotiationInterval matches Condor's NEGOTIATOR_INTERVAL of 300s.
const DefaultNegotiationInterval = 5 * time.Minute

// initialBackoff is the first GridManager retry delay after an overloaded
// or unreachable gatekeeper; it doubles per consecutive failure.
const initialBackoff = time.Minute

// maxBackoff caps the retry delay.
const maxBackoff = 30 * time.Minute

// backoffJitterFrac is the ± spread BackoffJitter applies to each delay.
const backoffJitterFrac = 0.25

// New creates a schedd negotiating every interval (0 = default).
func New(eng *sim.Engine, interval time.Duration) *Schedd {
	if interval <= 0 {
		interval = DefaultNegotiationInterval
	}
	s := &Schedd{eng: eng, resources: make(map[string]*Resource), jobs: make(map[string]*GridJob)}
	s.ticker = sim.NewTicker(eng, interval, s.Negotiate)
	return s
}

// Stop halts the negotiation cycle.
func (s *Schedd) Stop() { s.ticker.Stop() }

// AddResource registers a grid site, inserting it into the sorted
// candidate list (no full re-sort per registration).
func (s *Schedd) AddResource(r *Resource) {
	if r.Name == "" {
		r.Name = r.Gatekeeper.Site().Name
	}
	s.resources[r.Name] = r
	i := sort.Search(len(s.list), func(i int) bool { return s.list[i].Name >= r.Name })
	s.list = append(s.list, nil)
	copy(s.list[i+1:], s.list[i:])
	s.list[i] = r
	s.chunkDirty = true
	if r.full() {
		s.fullCount++
	}
}

// SetParallel arms region-sharded matchmaking: the candidate scan fans out
// over the pool, one chunk per region (resources carry their Region, and
// the sorted list keeps regions contiguous because dense site IDs follow
// sorted-name order). A nil pool restores the serial scan. The outcome of
// every pick is bit-identical either way; only the wall-clock cost changes.
func (s *Schedd) SetParallel(pool *sim.EvalPool, regions int) {
	if pool != nil && regions < 1 {
		panic(fmt.Sprintf("condorg: parallel matchmaking with %d regions", regions))
	}
	s.pool = pool
	s.regions = regions
	s.chunkDirty = true
}

// Resource returns a registered resource.
func (s *Schedd) Resource(name string) (*Resource, error) {
	r, ok := s.resources[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoResource, name)
	}
	return r, nil
}

// IdleCount returns queued-but-unmatched jobs.
func (s *Schedd) IdleCount() int { return len(s.idle) }

// Counters.
func (s *Schedd) SubmittedCount() int { return s.submitted }

// CompletedCount returns the number of successfully finished jobs.
func (s *Schedd) CompletedCount() int { return s.completed }

// HeldCount returns the number of jobs that exhausted retries.
func (s *Schedd) HeldCount() int { return s.held }

// MatchFailures counts negotiation cycles where a job found no resource.
func (s *Schedd) MatchFailures() int { return s.matchFailures }

// Submit queues a job and tries to place it immediately.
func (s *Schedd) Submit(j *GridJob) error {
	if j.ID == "" {
		return errors.New("condorg: job without ID")
	}
	if j.Ad == nil {
		j.Ad = classad.NewAd()
	}
	// Standard attributes every Grid3 job ad carried.
	j.Ad.SetString("VO", j.Spec.VO)
	j.Ad.SetInt("WallTime", int64(j.Spec.Walltime/time.Second))
	j.State = Idle
	s.jobs[j.ID] = j
	j.matchSpan = s.Ins.tracer().Begin(obs.KindMatch, j.Span, j.ID, j.Spec.VO, "")
	// Try to place the new job right away; if nothing fits it waits for
	// the negotiation ticker. (Placing only the newcomer keeps a burst of
	// submissions linear — a full queue scan per submit would be
	// quadratic under the November production bursts.)
	if !s.placeOne(j) {
		s.idle = append(s.idle, j)
	}
	return nil
}

// placeOne attempts to match and launch one job now. It reports whether
// the job reached a resource (or terminally failed); false means it should
// wait in the idle queue.
func (s *Schedd) placeOne(j *GridJob) bool {
	r := s.pickResource(j, s.eng.Now())
	if r == nil {
		s.matchFailures++
		if in := s.Ins; in != nil {
			in.MatchFailures.Inc()
		}
		return false
	}
	if err := s.launch(j, r); err != nil {
		return false
	}
	return true
}

// Negotiate runs one matchmaking cycle: for each idle job, find the
// best matching resource with throttle headroom and submit to its
// gatekeeper. Jobs that cannot be placed stay idle for the next cycle.
func (s *Schedd) Negotiate() {
	if len(s.idle) == 0 {
		return
	}
	now := s.eng.Now()
	// Fast path: if every resource is throttled or backing off, nothing
	// can be placed this cycle. This bounds negotiation cost when a
	// production burst outruns the grid (§6.4 peak months). The saturation
	// counter makes the all-throttled case O(1); otherwise the scan breaks
	// at the first open resource.
	if len(s.list) > 0 && s.fullCount == len(s.list) {
		return
	}
	anyOpen := false
	for _, r := range s.list {
		if !r.full() && now >= r.backoffUntil {
			anyOpen = true
			break
		}
	}
	if !anyOpen {
		return
	}
	// Drain the queue first: launch failures and asynchronous remote
	// failures requeue onto the fresh s.idle without being clobbered.
	jobs := s.idle
	s.idle = nil
	matches, placed := 0, 0
	for _, j := range jobs {
		if s.MaxMatchesPerCycle > 0 && matches >= s.MaxMatchesPerCycle {
			s.idle = append(s.idle, j)
			continue
		}
		matches++
		r := s.pickResource(j, now)
		if r == nil {
			s.matchFailures++
			if in := s.Ins; in != nil {
				in.MatchFailures.Inc()
			}
			s.idle = append(s.idle, j)
			continue
		}
		if err := s.launch(j, r); err != nil {
			s.idle = append(s.idle, j)
			continue
		}
		placed++
	}
	if in := s.Ins; in != nil && placed > 0 {
		in.CyclePlacements.Observe(float64(placed))
	}
}

// excluded reports whether a resource is breaker-blocked, preferring the
// pre-resolved per-resource hook over the schedd-level name lookup.
func (s *Schedd) excluded(r *Resource) bool {
	if r.Excluded != nil {
		return r.Excluded()
	}
	return s.Exclude != nil && s.Exclude(r.Name)
}

// pickResource selects the target for a job, honoring pinning, throttles,
// backoff, breaker exclusion, failed-site avoidance, and ClassAd matching.
func (s *Schedd) pickResource(j *GridJob, now time.Duration) *Resource {
	// pinned selects the single-candidate path; nil with pinnedOnly false
	// means full matchmaking over the sorted list.
	var pinned *Resource
	pinnedOnly := false
	if j.TargetSite != "" {
		pinned = s.resources[j.TargetSite]
		excl := false
		if pinned != nil {
			excl = s.excluded(pinned)
		} else if s.Exclude != nil {
			excl = s.Exclude(j.TargetSite)
		}
		if excl {
			// Pinned to a site with an open breaker: fall back to full
			// matchmaking rather than queueing on a dead site.
			pinned = nil
			if !j.pinFellBack {
				j.pinFellBack = true
				if in := s.Ins; in != nil {
					in.PinFallbacks.Inc()
				}
			}
		} else {
			// An unknown pinned target keeps the job idle (pinned nil,
			// pinnedOnly true), matching a schedd with no such resource.
			pinnedOnly = true
		}
	}
	eligible := func(r *Resource) bool {
		return !r.full() && now >= r.backoffUntil && !s.excluded(r)
	}
	pick := func(avoidFailed bool) *Resource {
		if s.pool != nil && !pinnedOnly {
			return s.pickParallel(j, now, avoidFailed)
		}
		ads := s.adScratch[:0]
		avail := s.availScratch[:0]
		if pinnedOnly {
			if pinned != nil && eligible(pinned) && !(avoidFailed && j.avoid[pinned]) {
				ads = append(ads, pinned.AdFunc())
				avail = append(avail, pinned)
			}
		} else {
			for _, r := range s.list {
				if !eligible(r) {
					continue
				}
				if avoidFailed && j.avoid[r] {
					continue
				}
				ads = append(ads, r.AdFunc())
				avail = append(avail, r)
			}
		}
		s.adScratch, s.availScratch = ads, avail
		best := classad.BestMatch(j.Ad, ads)
		if best < 0 {
			return nil
		}
		return avail[best]
	}
	// Prefer a site the job has not failed at; if avoidance filters out
	// every eligible resource, fall back to the full set rather than
	// stranding the job.
	if s.AvoidFailedSites && len(j.avoid) > 0 {
		if r := pick(true); r != nil {
			return r
		}
	}
	return pick(false)
}

// chunkMatch is one region chunk's scan result: the best candidate's global
// list index and its (job-rank, target-rank) key, or idx -1 for no match.
type chunkMatch struct {
	idx         int
	rank, trank float64
}

// evalSubChunks splits every region into this many evaluation sub-chunks.
// The eval pool assigns chunks round-robin, so sub-chunking spreads each
// region across all workers and a systematically expensive region (say, the
// historical catalog sites, which support more VOs than the synthetic tail)
// no longer pins one worker's critical path. Chunk boundaries still nest
// inside region boundaries, so any state a scan refreshes per node (the CE
// ad caches) stays confined to a single chunk.
const evalSubChunks = 4

// rebuildChunks recomputes the evaluation chunk offsets: region boundaries
// first (resource regions are non-decreasing along the sorted list, because
// dense IDs follow sorted-name order), then each region's span split into
// evalSubChunks even index ranges. Chunk r*evalSubChunks+k is the k-th
// slice of region r.
func (s *Schedd) rebuildChunks() {
	if !s.chunkDirty {
		return
	}
	nchunks := s.regions * evalSubChunks
	if cap(s.chunkStarts) < nchunks+1 {
		s.chunkStarts = make([]int, nchunks+1)
	}
	s.chunkStarts = s.chunkStarts[:nchunks+1]
	i := 0
	for r := 0; r < s.regions; r++ {
		for i < len(s.list) && s.list[i].Region < r {
			i++
		}
		lo := i
		hi := len(s.list)
		for j := lo; j < len(s.list); j++ {
			if s.list[j].Region > r {
				hi = j
				break
			}
		}
		span := hi - lo
		for k := 0; k < evalSubChunks; k++ {
			s.chunkStarts[r*evalSubChunks+k] = lo + span*k/evalSubChunks
		}
		i = hi
	}
	s.chunkStarts[nchunks] = len(s.list)
	s.chunkDirty = false
}

// pickParallel is the sharded matchmaking scan: each region chunk finds its
// local best on an eval-pool worker, then the chunk results reduce in
// ascending region order with the exact BestMatch comparison (higher job
// rank, then higher target rank, strictly), which preserves the serial
// scan's lowest-index tie-break — so the sharded pick is bit-identical to
// the serial one.
func (s *Schedd) pickParallel(j *GridJob, now time.Duration, avoidFailed bool) *Resource {
	s.rebuildChunks()
	n := s.regions * evalSubChunks
	if cap(s.chunkBest) < n {
		s.chunkBest = make([]chunkMatch, n)
	}
	res := s.chunkBest[:n]
	s.pool.Map(n, func(c int) {
		best := -1
		var br, btr float64
		for i := s.chunkStarts[c]; i < s.chunkStarts[c+1]; i++ {
			r := s.list[i]
			if r.full() || now < r.backoffUntil || s.excluded(r) {
				continue
			}
			if avoidFailed && j.avoid[r] {
				continue
			}
			ad := r.AdFunc()
			if ad == nil || !classad.Match(j.Ad, ad) {
				continue
			}
			rk := classad.Rank(j.Ad, ad)
			trk := classad.Rank(ad, j.Ad)
			if best == -1 || rk > br || (rk == br && trk > btr) {
				best, br, btr = i, rk, trk
			}
		}
		res[c] = chunkMatch{idx: best, rank: br, trank: btr}
	})
	best := -1
	var br, btr float64
	for _, cm := range res {
		if cm.idx < 0 {
			continue
		}
		if best == -1 || cm.rank > br || (cm.rank == br && cm.trank > btr) {
			best, br, btr = cm.idx, cm.rank, cm.trank
		}
	}
	if best < 0 {
		return nil
	}
	return s.list[best]
}

// Job returns a submitted job by schedd-side ID — the §8 troubleshooting
// lesson: "the ability to link a job ID on the execution side with a job
// ID at the submit (VO) side".
func (s *Schedd) Job(id string) (*GridJob, bool) {
	j, ok := s.jobs[id]
	return j, ok
}

// launch submits a job to a resource's gatekeeper.
func (s *Schedd) launch(j *GridJob, r *Resource) error {
	spec := j.Spec
	spec.Parent = j.Span
	spec.OnState = func(gj *gram.Job, st gram.JobState) {
		switch st {
		case gram.StateDone:
			s.dropInFlight(r)
			r.backoffStep = 0
			j.State = Completed
			s.completed++
			if in := s.Ins; in != nil {
				in.Completed.Inc()
			}
			if j.OnDone != nil {
				j.OnDone(j, nil)
			}
		case gram.StateFailed:
			s.dropInFlight(r)
			s.remoteFailure(j, r, fmt.Errorf("condorg: remote failure at %s: %s", r.Name, gj.FailureReason))
		}
	}
	tr := s.Ins.tracer()
	auth := tr.Begin(obs.KindGramAuth, j.Span, j.ID, spec.VO, r.Name)
	gj, err := r.Gatekeeper.Submit(spec)
	if err != nil {
		tr.Fail(auth, err.Error())
		// Overload / down gatekeeper: exponential backoff on the
		// resource, job stays idle (its match span stays open).
		if errors.Is(err, gram.ErrOverloaded) || errors.Is(err, gram.ErrSiteDown) {
			if r.backoffStep == 0 {
				r.backoffStep = initialBackoff
			} else if r.backoffStep < maxBackoff {
				r.backoffStep *= 2
			}
			delay := r.backoffStep
			if s.BackoffJitter != nil {
				delay = s.BackoffJitter.Jitter(delay, backoffJitterFrac)
			}
			r.backoffUntil = s.eng.Now() + delay
			return err
		}
		// Anything else (authorization, walltime policy) is a job-level
		// failure: burn an attempt.
		j.Attempts++
		s.remoteFailure(j, r, err)
		return nil
	}
	tr.End(auth)
	tr.SetSite(j.matchSpan, r.Name)
	tr.End(j.matchSpan)
	j.matchSpan = 0
	j.Attempts++
	j.State = Running
	j.Site = r.Name
	j.Contact = gj.ID
	s.addInFlight(r)
	s.submitted++
	if in := s.Ins; in != nil {
		in.Submitted.Inc()
	}
	if j.OnStart != nil {
		j.OnStart(j)
	}
	return nil
}

// addInFlight and dropInFlight adjust a resource's GridManager occupancy
// while keeping the schedd's saturation counter exact.
func (s *Schedd) addInFlight(r *Resource) {
	wasFull := r.full()
	r.inFlight++
	if !wasFull && r.full() {
		s.fullCount++
	}
}

func (s *Schedd) dropInFlight(r *Resource) {
	wasFull := r.full()
	r.inFlight--
	if wasFull && !r.full() {
		s.fullCount--
	}
}

// remoteFailure retries a failed job or holds it. r is where the failed
// attempt ran, recorded so retries can steer elsewhere.
func (s *Schedd) remoteFailure(j *GridJob, r *Resource, err error) {
	j.LastErr = err
	if s.AvoidFailedSites && r != nil {
		if j.avoid == nil {
			j.avoid = make(map[*Resource]bool)
		}
		j.avoid[r] = true
	}
	if j.Attempts <= j.MaxRetries {
		j.State = Idle
		s.idle = append(s.idle, j)
		if j.matchSpan == 0 {
			// Back in the idle queue: a fresh match wait starts now.
			j.matchSpan = s.Ins.tracer().Begin(obs.KindMatch, j.Span, j.ID, j.Spec.VO, "")
		}
		return
	}
	j.State = Held
	s.held++
	if in := s.Ins; in != nil {
		in.Held.Inc()
	}
	if j.matchSpan != 0 {
		s.Ins.tracer().Fail(j.matchSpan, "held: retries exhausted")
		j.matchSpan = 0
	}
	if j.OnDone != nil {
		j.OnDone(j, fmt.Errorf("%w: %v", ErrExhausted, err))
	}
}
