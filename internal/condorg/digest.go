package condorg

import (
	"sort"

	"grid3/internal/checkpoint"
)

// HashState folds the schedd's scheduling state into h: per-resource
// in-flight counts and GridManager backoff clocks (sorted-name candidate
// order), the idle queue in its FIFO order, every submitted job's lifecycle
// record (ID order), and the negotiation counters.
func (s *Schedd) HashState(h *checkpoint.Hasher) {
	h.Int(int64(len(s.list)))
	for _, r := range s.list {
		h.String(r.Name)
		h.Int(int64(r.inFlight))
		h.Dur(r.backoffUntil)
		h.Dur(r.backoffStep)
	}
	h.Int(int64(s.fullCount))
	h.Int(int64(len(s.idle)))
	for _, j := range s.idle {
		h.String(j.ID)
	}
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	h.Int(int64(len(ids)))
	for _, id := range ids {
		j := s.jobs[id]
		h.String(j.ID)
		h.Int(int64(j.State))
		h.String(j.Site)
		h.String(j.Contact)
		h.Int(int64(j.Attempts))
		h.String(j.TargetSite)
	}
	h.Int(int64(s.submitted))
	h.Int(int64(s.completed))
	h.Int(int64(s.held))
	h.Int(int64(s.matchFailures))
}
