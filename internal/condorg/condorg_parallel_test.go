package condorg

import (
	"fmt"
	"testing"
	"time"

	"grid3/internal/batch"
	"grid3/internal/classad"
	"grid3/internal/glue"
	"grid3/internal/gram"
	"grid3/internal/gsi"
	"grid3/internal/intern"
	"grid3/internal/sim"
	"grid3/internal/site"
)

// wideRig builds a schedd over n synthetic sites with live CE ads and
// region assignments from intern.Regions(n, regions).
func wideRig(t *testing.T, n, regions int) (*sim.Engine, *Schedd) {
	t.Helper()
	eng := sim.NewEngine(sim.Grid3Epoch)
	s := New(eng, 0)
	ri := intern.Regions(n, regions)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("site%03d", i) // sorted-name order == index order
		slots := 2 + (i*7)%13
		st := site.MustNew(site.Config{
			Name: name, Host: name + ".example.org", CPUs: slots,
			DiskBytes: 1 << 40, WANMbps: 622, LRMS: glue.PBS,
			MaxWall:  100 * time.Hour,
			Accounts: map[string]string{"usatlas": "grp_usatlas"},
		})
		bs := batch.New(eng, batch.Config{Name: name, Slots: slots, EnforceWall: true, MaxWall: st.MaxWall})
		gm := gsi.NewGridmap()
		gm.Map("/CN=prod", "grp_usatlas")
		gk := gram.New(eng, st, bs, gm)
		s.AddResource(&Resource{
			Name:         name,
			Gatekeeper:   gk,
			Region:       ri.Of(intern.ID(i)),
			MaxSubmitted: 2 * slots,
			AdFunc: func() *classad.Ad {
				ce := &glue.CE{
					ID: name, SiteName: name, Host: name, LRMSType: glue.PBS,
					TotalCPUs: slots, FreeCPUs: bs.FreeSlots(),
					RunningJobs: bs.RunningCount(), WaitingJobs: bs.QueuedCount(),
					MaxWallTime: 100 * time.Hour, VOs: []string{"usatlas"},
				}
				return ce.Ad()
			},
		})
	}
	return eng, s
}

// runWorkload submits a deterministic job stream and returns every job's
// final (site, state) plus the schedd counters.
func runWorkload(t *testing.T, eng *sim.Engine, s *Schedd) []string {
	t.Helper()
	var out []string
	const jobs = 120
	for i := 0; i < jobs; i++ {
		i := i
		eng.At(time.Duration(i)*37*time.Second, func() {
			j := &GridJob{
				ID: fmt.Sprintf("job%04d", i),
				Spec: gram.Spec{
					Subject: "/CN=prod", VO: "usatlas", Executable: "/bin/sim",
					Walltime: 4 * time.Hour, Runtime: time.Duration(30+i%90) * time.Minute,
					StagingFactor: float64(1 + i%3),
				},
				MaxRetries: 2,
			}
			j.Ad = classad.NewAd()
			switch i % 3 {
			case 0:
				j.Ad.SetExpr("Rank", "TARGET.FreeCpus - TARGET.WaitingJobs")
			case 1:
				j.Ad.SetExpr("Rank", "TARGET.FreeCpus")
			}
			if err := s.Submit(j); err != nil {
				t.Errorf("submit %s: %v", j.ID, err)
			}
		})
	}
	eng.RunUntil(24 * time.Hour)
	for id := 0; id < jobs; id++ {
		j, ok := s.Job(fmt.Sprintf("job%04d", id))
		if !ok {
			t.Fatalf("job%04d lost", id)
		}
		out = append(out, fmt.Sprintf("job%04d %s state=%v attempts=%d", id, j.Site, j.State, j.Attempts))
	}
	out = append(out, fmt.Sprintf("submitted=%d completed=%d held=%d idle=%d matchfail=%d",
		s.SubmittedCount(), s.CompletedCount(), s.HeldCount(), s.IdleCount(), s.MatchFailures()))
	return out
}

// TestParallelMatchmakingEquivalence: the region-sharded scan must place
// every job exactly where the serial scan does — bit-identical outcomes,
// not just statistically similar ones.
func TestParallelMatchmakingEquivalence(t *testing.T) {
	const sites, regions = 60, 4
	engA, serial := wideRig(t, sites, regions)
	serialOut := runWorkload(t, engA, serial)

	pool := sim.NewEvalPool(regions)
	defer pool.Close()
	engB, parallel := wideRig(t, sites, regions)
	parallel.SetParallel(pool, regions)
	parallelOut := runWorkload(t, engB, parallel)

	if len(serialOut) != len(parallelOut) {
		t.Fatalf("output lengths differ: %d vs %d", len(serialOut), len(parallelOut))
	}
	for i := range serialOut {
		if serialOut[i] != parallelOut[i] {
			t.Fatalf("line %d diverged:\n  serial:   %s\n  parallel: %s", i, serialOut[i], parallelOut[i])
		}
	}
	if st := pool.Stats(); st.Windows == 0 {
		t.Fatal("parallel run never used the eval pool")
	}
}

// TestParallelMatchmakingAvoidance: the two-pass avoid-failed logic runs
// through the sharded scan too.
func TestParallelMatchmakingAvoidance(t *testing.T) {
	pool := sim.NewEvalPool(2)
	defer pool.Close()
	eng, s := wideRig(t, 8, 2)
	s.SetParallel(pool, 2)
	s.AvoidFailedSites = true
	j := &GridJob{
		ID: "picky",
		Spec: gram.Spec{
			Subject: "/CN=prod", VO: "usatlas", Executable: "/bin/sim",
			Walltime: 2 * time.Hour, Runtime: time.Hour, StagingFactor: 1,
		},
		MaxRetries: 3,
	}
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	first := j.Site
	if first == "" {
		t.Fatal("job not placed")
	}
	firstRes, err := s.Resource(first)
	if err != nil {
		t.Fatal(err)
	}
	// Fail it at its first site; the retry must land elsewhere.
	s.remoteFailure(j, firstRes, fmt.Errorf("injected"))
	s.Negotiate()
	if j.Site == first || j.Site == "" {
		t.Fatalf("retry landed at %q, want a different site than %q", j.Site, first)
	}
	eng.RunUntil(4 * time.Hour)
	if j.State != Completed {
		t.Fatalf("state %v, want Completed", j.State)
	}
}
