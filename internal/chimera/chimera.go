// Package chimera implements the Chimera virtual data system: a catalog of
// transformations (executable templates) and derivations (invocations
// binding logical files), and the request planner that walks the catalog
// backwards from requested logical files to produce an abstract DAG.
//
// Chimera was the common application interface on Grid3: ATLAS implemented
// its multi-step simulation workflow "using Chimera and Pegasus virtual
// data tools" (§4.1), SDSS cluster finding "resulted in workflows with
// several thousand processing steps organized by Chimera virtual data
// tools" (§4.3), LIGO and BTeV likewise (§4.4, §4.5).
package chimera

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Errors.
var (
	ErrUnknownTR    = errors.New("chimera: unknown transformation")
	ErrDuplicate    = errors.New("chimera: duplicate definition")
	ErrConflict     = errors.New("chimera: output produced by two derivations")
	ErrCycle        = errors.New("chimera: derivation graph has a cycle")
	ErrNotDerivable = errors.New("chimera: no derivation produces requested LFN")
)

// Transformation is a TR definition: an executable template with formal
// arguments and a resource profile used by downstream planners.
type Transformation struct {
	Name string
	// Profile hints for Pegasus/Condor-G.
	MeanRuntime   time.Duration
	Walltime      time.Duration
	StagingFactor float64
	// OutputBytes estimates each produced file's size.
	OutputBytes int64
	// RequiresApp names the application release that must be installed in
	// the site's $APP area (Grid3 schema extension).
	RequiresApp string
	// RequiresOutboundIP marks transformations whose worker process must
	// reach external databases (§6.4 requirement 1).
	RequiresOutboundIP bool
}

// Derivation is a DV: one invocation of a transformation with actual
// logical files bound.
type Derivation struct {
	ID      string
	TR      string
	Inputs  []string // LFNs consumed
	Outputs []string // LFNs produced
	Params  map[string]string
}

// Catalog is the virtual data catalog.
type Catalog struct {
	trs      map[string]*Transformation
	dvs      map[string]*Derivation
	producer map[string]*Derivation // LFN → producing derivation
}

// NewCatalog creates an empty VDC.
func NewCatalog() *Catalog {
	return &Catalog{
		trs:      make(map[string]*Transformation),
		dvs:      make(map[string]*Derivation),
		producer: make(map[string]*Derivation),
	}
}

// AddTR registers a transformation.
func (c *Catalog) AddTR(tr *Transformation) error {
	if tr.Name == "" {
		return errors.New("chimera: transformation without name")
	}
	if _, dup := c.trs[tr.Name]; dup {
		return fmt.Errorf("%w: TR %s", ErrDuplicate, tr.Name)
	}
	c.trs[tr.Name] = tr
	return nil
}

// TR looks up a transformation.
func (c *Catalog) TR(name string) (*Transformation, error) {
	tr, ok := c.trs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownTR, name)
	}
	return tr, nil
}

// AddDV registers a derivation. Each LFN may be produced by at most one
// derivation (virtual data uniqueness).
func (c *Catalog) AddDV(dv *Derivation) error {
	if dv.ID == "" {
		return errors.New("chimera: derivation without ID")
	}
	if _, dup := c.dvs[dv.ID]; dup {
		return fmt.Errorf("%w: DV %s", ErrDuplicate, dv.ID)
	}
	if _, ok := c.trs[dv.TR]; !ok {
		return fmt.Errorf("%w: %s (in DV %s)", ErrUnknownTR, dv.TR, dv.ID)
	}
	if len(dv.Outputs) == 0 {
		return fmt.Errorf("chimera: DV %s produces nothing", dv.ID)
	}
	for _, out := range dv.Outputs {
		if prev, ok := c.producer[out]; ok {
			return fmt.Errorf("%w: %s by %s and %s", ErrConflict, out, prev.ID, dv.ID)
		}
	}
	c.dvs[dv.ID] = dv
	for _, out := range dv.Outputs {
		c.producer[out] = dv
	}
	return nil
}

// Producer returns the derivation producing an LFN, if any.
func (c *Catalog) Producer(lfn string) (*Derivation, bool) {
	dv, ok := c.producer[lfn]
	return dv, ok
}

// Len returns (transformations, derivations) counts.
func (c *Catalog) Len() (trs, dvs int) { return len(c.trs), len(c.dvs) }

// AbstractJob is one node of an abstract (site-independent) DAG.
type AbstractJob struct {
	DV *Derivation
	TR *Transformation
	// ExternalInputs are consumed LFNs with no producer in the plan: they
	// must already exist somewhere (resolved against RLS by Pegasus).
	ExternalInputs []string
	// Parents are DV IDs this job depends on.
	Parents []string
}

// AbstractDAG is Chimera's planner output.
type AbstractDAG struct {
	Jobs map[string]*AbstractJob
	// Order is a deterministic topological order of DV IDs.
	Order []string
	// Requested lists the LFNs the plan materializes.
	Requested []string
}

// Plan walks backwards from the requested LFNs through the producer
// relation, emitting every derivation needed. Requested LFNs with no
// producer are an error (they cannot be materialized); *intermediate*
// inputs with no producer become ExternalInputs.
func (c *Catalog) Plan(requested ...string) (*AbstractDAG, error) {
	if len(requested) == 0 {
		return nil, errors.New("chimera: nothing requested")
	}
	dag := &AbstractDAG{
		Jobs:      make(map[string]*AbstractJob),
		Requested: append([]string(nil), requested...),
	}
	state := map[string]int{} // DV ID: 0 unseen, 1 visiting, 2 done

	var visitDV func(dv *Derivation) error
	visitDV = func(dv *Derivation) error {
		switch state[dv.ID] {
		case 1:
			return fmt.Errorf("%w (at DV %s)", ErrCycle, dv.ID)
		case 2:
			return nil
		}
		state[dv.ID] = 1
		tr := c.trs[dv.TR]
		job := &AbstractJob{DV: dv, TR: tr}
		inputs := append([]string(nil), dv.Inputs...)
		sort.Strings(inputs)
		parentSet := map[string]bool{}
		for _, in := range inputs {
			if parent, ok := c.producer[in]; ok {
				if err := visitDV(parent); err != nil {
					return err
				}
				if !parentSet[parent.ID] {
					parentSet[parent.ID] = true
					job.Parents = append(job.Parents, parent.ID)
				}
			} else {
				job.ExternalInputs = append(job.ExternalInputs, in)
			}
		}
		state[dv.ID] = 2
		dag.Jobs[dv.ID] = job
		dag.Order = append(dag.Order, dv.ID)
		return nil
	}

	sortedReq := append([]string(nil), requested...)
	sort.Strings(sortedReq)
	for _, lfn := range sortedReq {
		dv, ok := c.producer[lfn]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotDerivable, lfn)
		}
		if err := visitDV(dv); err != nil {
			return nil, err
		}
	}
	return dag, nil
}

// Outputs returns every LFN the plan produces, sorted.
func (d *AbstractDAG) Outputs() []string {
	var out []string
	for _, id := range d.Order {
		out = append(out, d.Jobs[id].DV.Outputs...)
	}
	sort.Strings(out)
	return out
}

// ExternalInputs returns the union of all jobs' external inputs, sorted
// and deduplicated — the data Pegasus must locate in RLS.
func (d *AbstractDAG) ExternalInputs() []string {
	seen := map[string]bool{}
	for _, id := range d.Order {
		for _, in := range d.Jobs[id].ExternalInputs {
			seen[in] = true
		}
	}
	out := make([]string, 0, len(seen))
	for in := range seen {
		out = append(out, in)
	}
	sort.Strings(out)
	return out
}
