package chimera

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// atlasCatalog builds the §4.1 three-step ATLAS pipeline:
// pythia (event generation) → atlsim (GEANT simulation) → atrecon
// (reconstruction), for two event batches.
func atlasCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := NewCatalog()
	for _, tr := range []*Transformation{
		{Name: "pythia", MeanRuntime: time.Hour, Walltime: 4 * time.Hour, StagingFactor: 1, OutputBytes: 100 << 20, RequiresApp: "atlas-gce-7.0.3"},
		{Name: "atlsim", MeanRuntime: 8 * time.Hour, Walltime: 24 * time.Hour, StagingFactor: 2, OutputBytes: 2 << 30, RequiresApp: "atlas-gce-7.0.3"},
		{Name: "atrecon", MeanRuntime: 4 * time.Hour, Walltime: 12 * time.Hour, StagingFactor: 2, OutputBytes: 500 << 20, RequiresApp: "atlas-gce-7.0.3"},
	} {
		if err := c.AddTR(tr); err != nil {
			t.Fatal(err)
		}
	}
	for batch := 1; batch <= 2; batch++ {
		b := fmt.Sprint(batch)
		mustDV(t, c, &Derivation{
			ID: "gen" + b, TR: "pythia",
			Inputs:  []string{"lfn:pythia-card-" + b},
			Outputs: []string{"lfn:evgen-" + b},
		})
		mustDV(t, c, &Derivation{
			ID: "sim" + b, TR: "atlsim",
			Inputs:  []string{"lfn:evgen-" + b, "lfn:geometry-db"},
			Outputs: []string{"lfn:hits-" + b},
		})
		mustDV(t, c, &Derivation{
			ID: "reco" + b, TR: "atrecon",
			Inputs:  []string{"lfn:hits-" + b, "lfn:calib-db"},
			Outputs: []string{"lfn:esd-" + b},
		})
	}
	return c
}

func mustDV(t *testing.T, c *Catalog, dv *Derivation) {
	t.Helper()
	if err := c.AddDV(dv); err != nil {
		t.Fatal(err)
	}
}

func TestPlanSingleChain(t *testing.T) {
	c := atlasCatalog(t)
	dag, err := c.Plan("lfn:esd-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(dag.Order) != 3 {
		t.Fatalf("plan has %d jobs: %v", len(dag.Order), dag.Order)
	}
	pos := map[string]int{}
	for i, id := range dag.Order {
		pos[id] = i
	}
	if !(pos["gen1"] < pos["sim1"] && pos["sim1"] < pos["reco1"]) {
		t.Fatalf("order = %v", dag.Order)
	}
	reco := dag.Jobs["reco1"]
	if len(reco.Parents) != 1 || reco.Parents[0] != "sim1" {
		t.Fatalf("reco parents = %v", reco.Parents)
	}
	if len(reco.ExternalInputs) != 1 || reco.ExternalInputs[0] != "lfn:calib-db" {
		t.Fatalf("reco externals = %v", reco.ExternalInputs)
	}
	ext := dag.ExternalInputs()
	want := []string{"lfn:calib-db", "lfn:geometry-db", "lfn:pythia-card-1"}
	if len(ext) != 3 || ext[0] != want[0] || ext[1] != want[1] || ext[2] != want[2] {
		t.Fatalf("externals = %v", ext)
	}
	if reco.TR == nil || reco.TR.Name != "atrecon" {
		t.Fatal("TR not attached")
	}
}

func TestPlanMultipleRequestsShareNothing(t *testing.T) {
	c := atlasCatalog(t)
	dag, err := c.Plan("lfn:esd-1", "lfn:esd-2")
	if err != nil {
		t.Fatal(err)
	}
	if len(dag.Order) != 6 {
		t.Fatalf("plan has %d jobs", len(dag.Order))
	}
	outs := dag.Outputs()
	if len(outs) != 6 {
		t.Fatalf("outputs = %v", outs)
	}
}

func TestPlanIntermediateRequest(t *testing.T) {
	c := atlasCatalog(t)
	dag, err := c.Plan("lfn:hits-2")
	if err != nil {
		t.Fatal(err)
	}
	if len(dag.Order) != 2 {
		t.Fatalf("plan = %v", dag.Order)
	}
}

func TestPlanSharedAncestorOnce(t *testing.T) {
	c := NewCatalog()
	c.AddTR(&Transformation{Name: "t"})
	mustDV(t, c, &Derivation{ID: "common", TR: "t", Inputs: nil, Outputs: []string{"lfn:shared"}})
	mustDV(t, c, &Derivation{ID: "left", TR: "t", Inputs: []string{"lfn:shared"}, Outputs: []string{"lfn:l"}})
	mustDV(t, c, &Derivation{ID: "right", TR: "t", Inputs: []string{"lfn:shared"}, Outputs: []string{"lfn:r"}})
	dag, err := c.Plan("lfn:l", "lfn:r")
	if err != nil {
		t.Fatal(err)
	}
	if len(dag.Order) != 3 {
		t.Fatalf("shared ancestor duplicated: %v", dag.Order)
	}
}

func TestPlanErrors(t *testing.T) {
	c := atlasCatalog(t)
	if _, err := c.Plan("lfn:nonexistent"); !errors.Is(err, ErrNotDerivable) {
		t.Fatalf("underivable err = %v", err)
	}
	if _, err := c.Plan(); err == nil {
		t.Fatal("empty request accepted")
	}
}

func TestCycleDetection(t *testing.T) {
	c := NewCatalog()
	c.AddTR(&Transformation{Name: "t"})
	mustDV(t, c, &Derivation{ID: "a", TR: "t", Inputs: []string{"lfn:b-out"}, Outputs: []string{"lfn:a-out"}})
	mustDV(t, c, &Derivation{ID: "b", TR: "t", Inputs: []string{"lfn:a-out"}, Outputs: []string{"lfn:b-out"}})
	if _, err := c.Plan("lfn:a-out"); !errors.Is(err, ErrCycle) {
		t.Fatalf("cycle err = %v", err)
	}
}

func TestCatalogValidation(t *testing.T) {
	c := NewCatalog()
	if err := c.AddTR(&Transformation{}); err == nil {
		t.Fatal("unnamed TR accepted")
	}
	c.AddTR(&Transformation{Name: "t"})
	if err := c.AddTR(&Transformation{Name: "t"}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("dup TR err = %v", err)
	}
	if err := c.AddDV(&Derivation{ID: "d", TR: "ghost", Outputs: []string{"x"}}); !errors.Is(err, ErrUnknownTR) {
		t.Fatalf("unknown TR err = %v", err)
	}
	if err := c.AddDV(&Derivation{ID: "d", TR: "t"}); err == nil {
		t.Fatal("outputless DV accepted")
	}
	mustDV(t, c, &Derivation{ID: "d1", TR: "t", Outputs: []string{"lfn:x"}})
	if err := c.AddDV(&Derivation{ID: "d1", TR: "t", Outputs: []string{"lfn:y"}}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("dup DV err = %v", err)
	}
	if err := c.AddDV(&Derivation{ID: "d2", TR: "t", Outputs: []string{"lfn:x"}}); !errors.Is(err, ErrConflict) {
		t.Fatalf("conflict err = %v", err)
	}
	if _, err := c.TR("ghost"); !errors.Is(err, ErrUnknownTR) {
		t.Fatalf("TR lookup err = %v", err)
	}
	trs, dvs := c.Len()
	if trs != 1 || dvs != 1 {
		t.Fatalf("Len = %d, %d", trs, dvs)
	}
	if _, ok := c.Producer("lfn:x"); !ok {
		t.Fatal("producer lookup failed")
	}
}

func TestSDSSScaleWorkflow(t *testing.T) {
	// §4.3: "workflows with several thousand processing steps".
	c := NewCatalog()
	c.AddTR(&Transformation{Name: "findClusters", MeanRuntime: 90 * time.Minute})
	c.AddTR(&Transformation{Name: "coadd", MeanRuntime: 30 * time.Minute})
	const fields = 1500
	for i := 0; i < fields; i++ {
		mustDV(t, c, &Derivation{
			ID: fmt.Sprintf("coadd-%04d", i), TR: "coadd",
			Inputs:  []string{fmt.Sprintf("lfn:sdss-field-%04d", i)},
			Outputs: []string{fmt.Sprintf("lfn:coadded-%04d", i)},
		})
		mustDV(t, c, &Derivation{
			ID: fmt.Sprintf("find-%04d", i), TR: "findClusters",
			Inputs:  []string{fmt.Sprintf("lfn:coadded-%04d", i)},
			Outputs: []string{fmt.Sprintf("lfn:clusters-%04d", i)},
		})
	}
	var want []string
	for i := 0; i < fields; i++ {
		want = append(want, fmt.Sprintf("lfn:clusters-%04d", i))
	}
	dag, err := c.Plan(want...)
	if err != nil {
		t.Fatal(err)
	}
	if len(dag.Order) != 2*fields {
		t.Fatalf("plan size = %d, want %d", len(dag.Order), 2*fields)
	}
	if len(dag.ExternalInputs()) != fields {
		t.Fatalf("externals = %d", len(dag.ExternalInputs()))
	}
}
