package chimera

import (
	"fmt"
	"testing"
	"testing/quick"
)

// TestPlanTopologicalProperty: for random layered derivation graphs, every
// plan lists producers before consumers and contains no duplicates.
func TestPlanTopologicalProperty(t *testing.T) {
	f := func(layerSizes []uint8, edges []uint16) bool {
		// Build a layered DAG: derivations in layer k consume outputs of
		// layer k-1 (guaranteeing acyclicity), with edge choices drawn
		// from the fuzz input.
		c := NewCatalog()
		c.AddTR(&Transformation{Name: "t"})
		var layers [][]string // layer → output LFNs
		dvCount := 0
		edgeIdx := 0
		nextEdge := func(n int) int {
			if n <= 0 {
				return 0
			}
			if edgeIdx >= len(edges) {
				return 0
			}
			v := int(edges[edgeIdx]) % n
			edgeIdx++
			return v
		}
		for li, szRaw := range layerSizes {
			if li >= 4 {
				break
			}
			sz := int(szRaw%4) + 1
			var outs []string
			for k := 0; k < sz; k++ {
				dvCount++
				id := fmt.Sprintf("dv-%d", dvCount)
				out := fmt.Sprintf("lfn:out-%d", dvCount)
				var ins []string
				if li == 0 {
					ins = []string{fmt.Sprintf("lfn:raw-%d", k)}
				} else {
					prev := layers[li-1]
					// one or two inputs from the previous layer
					ins = append(ins, prev[nextEdge(len(prev))])
					if nextEdge(2) == 1 {
						ins = append(ins, prev[nextEdge(len(prev))])
					}
				}
				if err := c.AddDV(&Derivation{ID: id, TR: "t", Inputs: ins, Outputs: []string{out}}); err != nil {
					return false
				}
				outs = append(outs, out)
			}
			layers = append(layers, outs)
		}
		if len(layers) == 0 {
			return true
		}
		// Request the top layer's outputs.
		dag, err := c.Plan(layers[len(layers)-1]...)
		if err != nil {
			return false
		}
		pos := map[string]int{}
		for i, id := range dag.Order {
			if _, dup := pos[id]; dup {
				return false
			}
			pos[id] = i
		}
		for id, job := range dag.Jobs {
			for _, parent := range job.Parents {
				pp, ok := pos[parent]
				if !ok || pp >= pos[id] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
