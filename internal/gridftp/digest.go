package gridftp

import (
	"sort"

	"grid3/internal/checkpoint"
)

// HashState folds the WAN state into h: every endpoint's service state,
// traffic accounting, and door occupancy (sorted-name order), every active
// transfer's flow record (ID order), the door queue in its FIFO order, and
// the queue accounting counters.
func (n *Network) HashState(h *checkpoint.Hasher) {
	names := make([]string, 0, len(n.endpoints))
	for name := range n.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	h.Int(int64(len(names)))
	for _, name := range names {
		e := n.endpoints[name]
		h.String(e.Name)
		h.Bool(e.up)
		h.Float(e.CapacityBps)
		h.Int(int64(e.Doors))
		h.Int(e.BytesIn)
		h.Int(e.BytesOut)
		h.Int(int64(e.doorsBusy))
		h.Int(int64(e.queuedHere))
	}
	h.Int(n.nextID)
	ids := make([]int64, 0, len(n.active))
	for id := range n.active {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	h.Int(int64(len(ids)))
	for _, id := range ids {
		t := n.active[id]
		h.Int(t.ID)
		h.String(t.Src)
		h.String(t.Dst)
		h.Int(t.Bytes)
		h.String(t.Label)
		h.Dur(t.Started)
		h.Float(t.remaining)
		h.Float(t.rate)
		h.Dur(t.lastUpdate)
		h.Dur(t.queuedAt)
	}
	h.Int(int64(len(n.pending)))
	for _, t := range n.pending {
		h.Int(t.ID)
	}
	h.Int(n.queuedTotal)
	h.Int(int64(n.peakQueue))
	h.Int(n.dequeued)
	h.Dur(n.queueWaitSum)
}
