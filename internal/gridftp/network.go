// Package gridftp provides Grid3's bulk data movement: a simulated wide-area
// network with max–min fair bandwidth sharing for scenario runs, and a real
// TCP file server/client speaking a GridFTP-like control protocol with GSI
// authentication for the examples and integration tests.
//
// The paper's transfer demonstrator (§6.3) moved more than 2 TB/day between
// Grid3 sites, nearly 100 TB in the 30 days around SC2003 (Figure 5), using
// NetLogger-instrumented GridFTP. The simulation models each site's WAN link
// as a capacity shared by all concurrent transfers touching it, allocating
// rates by progressive filling (max–min fairness), which is the standard
// first-order model of long-lived TCP flows over shared links.
package gridftp

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"grid3/internal/obs"
	"grid3/internal/sim"
)

// Instruments is the WAN's observability wiring: a transfer span per bulk
// movement plus volume and throughput metrics. A nil *Instruments (the
// default) disables all of it.
type Instruments struct {
	Tracer         *obs.Tracer
	Started        *obs.Counter
	Completed      *obs.Counter
	Failed         *obs.Counter
	Bytes          *obs.Counter   // completed transfer volume
	ThroughputMbps *obs.Histogram // achieved rate per completed transfer
	Queued         *obs.Counter   // transfers that waited for a door
	QueueWaitSecs  *obs.Histogram // time spent waiting for a door

	// metrics backs the lazily created per-VO byte counters (Figure 5's
	// per-VO traffic accounting); voBytes caches them by label.
	metrics *obs.Registry
	voBytes map[string]*obs.Counter
}

// NewInstruments wires network instruments into an observer; nil in, nil out.
func NewInstruments(o *obs.Observer) *Instruments {
	if o == nil {
		return nil
	}
	return &Instruments{
		Tracer:    o.Tracer,
		Started:   o.Metrics.Counter("gridftp.transfers.started"),
		Completed: o.Metrics.Counter("gridftp.transfers.completed"),
		Failed:    o.Metrics.Counter("gridftp.transfers.failed"),
		Bytes:     o.Metrics.Counter("gridftp.bytes.completed"),
		ThroughputMbps: o.Metrics.Histogram("gridftp.throughput.mbps",
			[]float64{1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 10000}),
		Queued: o.Metrics.Counter("gridftp.transfers.queued"),
		QueueWaitSecs: o.Metrics.Histogram("gridftp.queue.wait.secs",
			[]float64{1, 10, 60, 300, 1800, 3600, 21600}),
		metrics: o.Metrics,
	}
}

// labelBytes returns the per-VO completed-bytes counter for a label,
// creating it on first use ("gridftp.bytes.vo.<label>").
func (in *Instruments) labelBytes(label string) *obs.Counter {
	if in.metrics == nil {
		return nil // Counter methods are nil-safe
	}
	c, ok := in.voBytes[label]
	if !ok {
		c = in.metrics.Counter("gridftp.bytes.vo." + label)
		if in.voBytes == nil {
			in.voBytes = make(map[string]*obs.Counter)
		}
		in.voBytes[label] = c
	}
	return c
}

// Errors.
var (
	ErrUnknownEndpoint = errors.New("gridftp: unknown endpoint")
	ErrEndpointDown    = errors.New("gridftp: endpoint down")
	ErrInterrupted     = errors.New("gridftp: transfer interrupted")
	ErrBadSize         = errors.New("gridftp: transfer size must be positive")
	ErrSameEndpoint    = errors.New("gridftp: source and destination are the same endpoint")
)

// IsEndpointFailure reports whether a transfer error is a site-side service
// failure (door down, unknown, or the transfer was severed by an outage) —
// the class where retrying an alternate replica source can succeed — as
// opposed to a caller mistake like a bad size.
func IsEndpointFailure(err error) bool {
	return errors.Is(err, ErrEndpointDown) ||
		errors.Is(err, ErrUnknownEndpoint) ||
		errors.Is(err, ErrInterrupted)
}

// Endpoint is one site's WAN attachment.
type Endpoint struct {
	Name        string
	CapacityBps float64 // bytes per second
	up          bool

	// Doors bounds concurrent transfers through this endpoint (the GridFTP
	// data-door limit, the gatekeeper-overload analog for data movement).
	// 0 means unbounded — the historical behavior.
	Doors int

	// Traffic accounting for Figure 5 ("data consumed by Grid3 sites").
	BytesIn  int64
	BytesOut int64

	// doorsBusy counts admitted transfers (including connection setup)
	// holding a door here; queuedHere counts pending transfers waiting on
	// this endpoint. Both feed replica ranking.
	doorsBusy  int
	queuedHere int

	// Progressive-filling scratch, valid only within one rebalance pass
	// (rebalGen marks which). Keeping it on the endpoint lets a pass run
	// without allocating per-endpoint maps — the dominant rebalance cost
	// once hundreds of sites move data concurrently. Between passes the
	// leftover remCapScratch doubles as the live allocation snapshot that
	// Load reports.
	remCapScratch float64
	countScratch  int
	rebalGen      uint64
}

// Up reports whether the endpoint is in service.
func (e *Endpoint) Up() bool { return e.up }

// ActiveFlows returns the number of transfers currently holding a door.
func (e *Endpoint) ActiveFlows() int { return e.doorsBusy }

// QueuedFlows returns the number of transfers waiting for a door here.
func (e *Endpoint) QueuedFlows() int { return e.queuedHere }

// Transfer is one bulk file movement.
type Transfer struct {
	ID    int64
	Src   string
	Dst   string
	Bytes int64
	// Label tags the transfer for accounting, by convention the VO name.
	Label string

	Started time.Duration
	Ended   time.Duration

	remaining  float64
	rate       float64 // current allocation, bytes/sec
	lastUpdate time.Duration
	finish     sim.Event
	done       func(*Transfer, error)
	failed     bool
	span       obs.SpanID

	// queuedAt stamps when the transfer joined the door queue (zero when it
	// was admitted immediately).
	queuedAt time.Duration

	// srcEP/dstEP are resolved once at Start so the rebalance and
	// completion paths never hash endpoint names again.
	srcEP, dstEP *Endpoint
	// Progressive-filling scratch, valid only within one rebalance pass.
	newRate float64
	frozen  bool
}

// Rate returns the transfer's current bandwidth allocation in bytes/sec.
func (t *Transfer) Rate() float64 { return t.rate }

// Remaining returns bytes not yet moved as of the last rate recomputation.
func (t *Transfer) Remaining() int64 { return int64(math.Ceil(t.remaining)) }

// Network simulates the Grid3 WAN.
type Network struct {
	eng       *sim.Engine
	endpoints map[string]*Endpoint
	active    map[int64]*Transfer
	nextID    int64

	// SetupDelay models connection establishment and GSI handshake
	// before data flows.
	SetupDelay time.Duration

	// DefaultDoors is the door count applied to endpoints added after it is
	// set; 0 keeps every endpoint unbounded (the historical WAN).
	DefaultDoors int

	// pending is the FIFO of transfers waiting for a free door on both of
	// their endpoints; drainPending coalesces admission scans the way
	// rebalancePending coalesces filling passes.
	pending      []*Transfer
	drainPending bool

	// Door-queue accounting for the data sweep.
	queuedTotal  int64
	peakQueue    int
	queueWaitSum time.Duration
	dequeued     int64

	logger func(Event) // NetLogger hook; see netlogger.go

	// Ins enables transfer spans and throughput metrics; nil disables.
	Ins *Instruments

	// rebalancePending coalesces rate recomputations: many transfers
	// starting or finishing at the same virtual instant trigger a single
	// progressive-filling pass.
	rebalancePending bool

	// Pooled rebalance scratch: the sorted transfer and endpoint working
	// sets are rebuilt per pass into these reusable backing arrays, and
	// rebalGen stamps which pass an endpoint's scratch fields belong to.
	transferScratch []*Transfer
	epScratch       []*Endpoint
	rebalGen        uint64

	// TotalBytes accumulates completed transfer volume by label.
	totalByLabel map[string]int64
	completed    int64
	failures     int64

	// history logs completed transfers for windowed queries (Figure 5's
	// "30 days before and after SC2003" accounting).
	history []CompletedTransfer
}

// CompletedTransfer is one history row.
type CompletedTransfer struct {
	Src, Dst string
	Label    string
	Bytes    int64
	Ended    time.Duration
}

// NewNetwork creates an empty WAN attached to the engine.
func NewNetwork(eng *sim.Engine) *Network {
	return &Network{
		eng:          eng,
		endpoints:    make(map[string]*Endpoint),
		active:       make(map[int64]*Transfer),
		SetupDelay:   2 * time.Second,
		totalByLabel: make(map[string]int64),
	}
}

// AddEndpoint attaches a site with the given WAN capacity in megabits/s.
func (n *Network) AddEndpoint(name string, mbps float64) *Endpoint {
	if mbps <= 0 {
		panic(fmt.Sprintf("gridftp: endpoint %s capacity %f", name, mbps))
	}
	e := &Endpoint{Name: name, CapacityBps: mbps * 1e6 / 8, up: true, Doors: n.DefaultDoors}
	n.endpoints[name] = e
	return e
}

// Load reports an endpoint's live WAN state: transfers holding doors
// (including connection setup), transfers queued for a door, and the
// fraction of link capacity allocated by the most recent max–min filling
// pass. Unknown endpoints report idle.
func (n *Network) Load(name string) (flows, queued int, busyFrac float64) {
	e, ok := n.endpoints[name]
	if !ok {
		return 0, 0, 0
	}
	if e.rebalGen == n.rebalGen && e.CapacityBps > 0 {
		busyFrac = (e.CapacityBps - e.remCapScratch) / e.CapacityBps
	}
	return e.doorsBusy, e.queuedHere, busyFrac
}

// QueueDepth returns the number of transfers currently waiting for a door.
func (n *Network) QueueDepth() int { return len(n.pending) }

// PeakQueueDepth returns the deepest the door queue has been.
func (n *Network) PeakQueueDepth() int { return n.peakQueue }

// QueuedTotal returns how many transfers have ever waited for a door.
func (n *Network) QueuedTotal() int64 { return n.queuedTotal }

// MeanQueueWait returns the mean time queued transfers waited before
// admission (zero if nothing has been dequeued).
func (n *Network) MeanQueueWait() time.Duration {
	if n.dequeued == 0 {
		return 0
	}
	return n.queueWaitSum / time.Duration(n.dequeued)
}

// Endpoint returns a registered endpoint.
func (n *Network) Endpoint(name string) (*Endpoint, error) {
	e, ok := n.endpoints[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownEndpoint, name)
	}
	return e, nil
}

// SetLogger installs the NetLogger event hook.
func (n *Network) SetLogger(fn func(Event)) { n.logger = fn }

func (n *Network) log(ev Event) {
	if n.logger != nil {
		ev.Time = n.eng.Now()
		n.logger(ev)
	}
}

// ActiveCount returns the number of in-flight transfers.
func (n *Network) ActiveCount() int { return len(n.active) }

// Completed returns the count of successful transfers.
func (n *Network) Completed() int64 { return n.completed }

// Failures returns the count of failed transfers.
func (n *Network) Failures() int64 { return n.failures }

// BytesByLabel returns completed bytes per label (VO), a fresh copy.
func (n *Network) BytesByLabel() map[string]int64 {
	out := make(map[string]int64, len(n.totalByLabel))
	for k, v := range n.totalByLabel {
		out[k] = v
	}
	return out
}

// BytesByLabelWindow returns completed bytes per label within (from, to].
func (n *Network) BytesByLabelWindow(from, to time.Duration) map[string]int64 {
	out := make(map[string]int64)
	for _, h := range n.history {
		if h.Ended > from && h.Ended <= to {
			out[h.Label] += h.Bytes
		}
	}
	return out
}

// BytesInByDstWindow returns completed bytes per destination site within
// (from, to] — Figure 5's "data consumed by Grid3 sites" view.
func (n *Network) BytesInByDstWindow(from, to time.Duration) map[string]int64 {
	out := make(map[string]int64)
	for _, h := range n.history {
		if h.Ended > from && h.Ended <= to {
			out[h.Dst] += h.Bytes
		}
	}
	return out
}

// History returns the completed-transfer log (live slice; do not mutate).
func (n *Network) History() []CompletedTransfer { return n.history }

// Start begins a transfer of size bytes from src to dst. done fires exactly
// once, with nil on success or an error if the transfer was interrupted.
func (n *Network) Start(src, dst string, size int64, label string, done func(*Transfer, error)) (*Transfer, error) {
	return n.StartTraced(src, dst, size, label, 0, done)
}

// StartTraced is Start with a lifecycle-span parent: the transfer span is
// linked under parent (a stage-in/stage-out or workflow span), so a job's
// trace includes the data movements it caused. With tracing disabled or
// parent 0 the behaviour is identical to Start.
func (n *Network) StartTraced(src, dst string, size int64, label string, parent obs.SpanID, done func(*Transfer, error)) (*Transfer, error) {
	if size <= 0 {
		return nil, ErrBadSize
	}
	if src == dst {
		return nil, fmt.Errorf("%w: %s", ErrSameEndpoint, src)
	}
	se, ok := n.endpoints[src]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownEndpoint, src)
	}
	de, ok := n.endpoints[dst]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownEndpoint, dst)
	}
	if !se.up {
		return nil, fmt.Errorf("%w: %s", ErrEndpointDown, src)
	}
	if !de.up {
		return nil, fmt.Errorf("%w: %s", ErrEndpointDown, dst)
	}
	n.nextID++
	t := &Transfer{
		ID:        n.nextID,
		Src:       src,
		Dst:       dst,
		Bytes:     size,
		Label:     label,
		remaining: float64(size),
		done:      done,
		srcEP:     se,
		dstEP:     de,
	}
	if in := n.Ins; in != nil {
		in.Started.Inc()
		t.span = in.Tracer.BeginTransfer(parent, label, label, src, dst, size)
	}
	n.log(Event{Kind: EventStart, Transfer: t})
	if doorsFull(se) || doorsFull(de) {
		// Both endpoints must have a free door; otherwise wait in FIFO
		// order (the GridFTP door limit — excess requests queue at the
		// server instead of thrashing the link).
		t.queuedAt = n.eng.Now()
		se.queuedHere++
		de.queuedHere++
		n.pending = append(n.pending, t)
		n.queuedTotal++
		if len(n.pending) > n.peakQueue {
			n.peakQueue = len(n.pending)
		}
		if in := n.Ins; in != nil {
			in.Queued.Inc()
		}
		return t, nil
	}
	n.admit(t)
	return t, nil
}

// doorsFull reports whether an endpoint has no free door.
func doorsFull(e *Endpoint) bool { return e.Doors > 0 && e.doorsBusy >= e.Doors }

// admit takes a door on both endpoints and begins connection setup.
func (n *Network) admit(t *Transfer) {
	se, de := t.srcEP, t.dstEP
	se.doorsBusy++
	de.doorsBusy++
	n.eng.Schedule(n.SetupDelay, func() {
		// The endpoint may have failed during setup.
		if !se.up || !de.up {
			n.releaseDoors(t)
			n.fail(t, fmt.Errorf("%w during setup", ErrEndpointDown))
			return
		}
		t.Started = n.eng.Now()
		t.lastUpdate = t.Started
		n.active[t.ID] = t
		n.scheduleRebalance()
	})
}

// releaseDoors returns a transfer's doors and wakes the admission scan.
func (n *Network) releaseDoors(t *Transfer) {
	t.srcEP.doorsBusy--
	t.dstEP.doorsBusy--
	n.scheduleDrain()
}

// scheduleDrain coalesces door-queue admission to the end of the current
// virtual instant, mirroring scheduleRebalance.
func (n *Network) scheduleDrain() {
	if n.drainPending || len(n.pending) == 0 {
		return
	}
	n.drainPending = true
	n.eng.Schedule(0, func() {
		n.drainPending = false
		n.drain()
	})
}

// drain scans the door queue in FIFO order, admitting every transfer whose
// endpoints both have a free door. A transfer blocked on a busy endpoint
// does not hold up later transfers between other endpoints (the scan is
// work-conserving), but transfers contending for the same door are served
// in arrival order.
func (n *Network) drain() {
	if len(n.pending) == 0 {
		return
	}
	now := n.eng.Now()
	kept := n.pending[:0]
	for _, t := range n.pending {
		if doorsFull(t.srcEP) || doorsFull(t.dstEP) {
			kept = append(kept, t)
			continue
		}
		t.srcEP.queuedHere--
		t.dstEP.queuedHere--
		wait := now - t.queuedAt
		n.queueWaitSum += wait
		n.dequeued++
		if in := n.Ins; in != nil {
			in.QueueWaitSecs.Observe(wait.Seconds())
		}
		n.admit(t)
	}
	n.pending = kept
}

// SetEndpointUp changes an endpoint's service state. Taking an endpoint
// down interrupts every transfer touching it (the §6.1 "network
// interruptions" failure class).
func (n *Network) SetEndpointUp(name string, up bool) error {
	e, ok := n.endpoints[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownEndpoint, name)
	}
	if e.up == up {
		return nil
	}
	e.up = up
	if !up {
		// Queued transfers touching the endpoint fail in arrival order —
		// they never held a door, so none is released.
		if len(n.pending) > 0 {
			kept := n.pending[:0]
			for _, t := range n.pending {
				if t.Src != name && t.Dst != name {
					kept = append(kept, t)
					continue
				}
				t.srcEP.queuedHere--
				t.dstEP.queuedHere--
				n.fail(t, fmt.Errorf("%w: %s went down while queued", ErrEndpointDown, name))
			}
			n.pending = kept
		}
		var victims []*Transfer
		for _, t := range n.active {
			if t.Src == name || t.Dst == name {
				victims = append(victims, t)
			}
		}
		sort.Slice(victims, func(i, j int) bool { return victims[i].ID < victims[j].ID })
		n.settle()
		for _, t := range victims {
			n.remove(t)
			n.fail(t, fmt.Errorf("%w: %s went down", ErrInterrupted, name))
		}
		n.rebalanceSettled()
	}
	return nil
}

func (n *Network) fail(t *Transfer, err error) {
	t.failed = true
	t.Ended = n.eng.Now()
	n.failures++
	if in := n.Ins; in != nil {
		in.Failed.Inc()
		in.Tracer.Fail(t.span, err.Error())
	}
	n.log(Event{Kind: EventError, Transfer: t, Err: err})
	if t.done != nil {
		t.done(t, err)
	}
}

func (n *Network) remove(t *Transfer) {
	delete(n.active, t.ID)
	t.finish.Cancel()
	t.finish = sim.Event{}
	n.releaseDoors(t)
}

// settle advances every active transfer's remaining-byte counter to now at
// its current rate.
func (n *Network) settle() {
	now := n.eng.Now()
	for _, t := range n.active {
		dt := (now - t.lastUpdate).Seconds()
		if dt > 0 {
			moved := t.rate * dt
			if moved > t.remaining {
				moved = t.remaining
			}
			t.remaining -= moved
			t.lastUpdate = now
		}
	}
}

// scheduleRebalance coalesces recomputation to the end of the current
// virtual instant: simultaneous starts/finishes cost one filling pass.
func (n *Network) scheduleRebalance() {
	if n.rebalancePending {
		return
	}
	n.rebalancePending = true
	n.eng.Schedule(0, func() {
		n.rebalancePending = false
		n.rebalance()
	})
}

// rebalance settles progress and recomputes all rates.
func (n *Network) rebalance() {
	n.settle()
	n.rebalanceSettled()
}

// rebalanceSettled assigns max–min fair rates by progressive filling and
// reschedules completion events. The working sets live in pooled scratch
// (per-endpoint fields stamped by generation, reusable sorted slices):
// steady-state passes allocate nothing, which matters once hundreds of
// sites move data concurrently.
func (n *Network) rebalanceSettled() {
	if len(n.active) == 0 {
		// Still invalidate the endpoint allocation snapshots: with nothing
		// active, Load must report idle links, not the last pass's rates.
		n.rebalGen++
		return
	}
	n.rebalGen++
	gen := n.rebalGen

	// Gather active transfers in deterministic ID order and initialize
	// per-endpoint remaining capacity / unfrozen counts.
	ts := n.transferScratch[:0]
	eps := n.epScratch[:0]
	for _, t := range n.active {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].ID < ts[j].ID })
	touch := func(ep *Endpoint) {
		if ep.rebalGen != gen {
			ep.rebalGen = gen
			ep.remCapScratch = ep.CapacityBps
			ep.countScratch = 0
			eps = append(eps, ep)
		}
		ep.countScratch++
	}
	for _, t := range ts {
		t.frozen = false
		t.newRate = 0
		touch(t.srcEP)
		touch(t.dstEP)
	}
	// The bottleneck search iterates endpoints in sorted-name order so
	// share ties break exactly as the historical map-collect-and-sort did.
	sort.Slice(eps, func(i, j int) bool { return eps[i].Name < eps[j].Name })
	n.transferScratch = ts
	n.epScratch = eps

	unfrozen := len(ts)
	for unfrozen > 0 {
		// Find the bottleneck endpoint: minimum per-transfer share.
		var bottleneck *Endpoint
		best := math.Inf(1)
		for _, ep := range eps {
			if ep.countScratch <= 0 {
				continue
			}
			share := ep.remCapScratch / float64(ep.countScratch)
			if share < best {
				best = share
				bottleneck = ep
			}
		}
		if bottleneck == nil {
			break
		}
		// Freeze every unfrozen transfer touching the bottleneck.
		for _, t := range ts {
			if t.frozen || (t.srcEP != bottleneck && t.dstEP != bottleneck) {
				continue
			}
			t.newRate = best
			t.frozen = true
			unfrozen--
			t.srcEP.remCapScratch -= best
			t.dstEP.remCapScratch -= best
			t.srcEP.countScratch--
			t.dstEP.countScratch--
		}
	}

	// Reschedule completion events — but only for transfers whose rate
	// actually changed: with an unchanged rate, the previously scheduled
	// absolute finish time is still exact.
	now := n.eng.Now()
	for _, t := range ts {
		rate := t.newRate
		if t.finish.Pending() && rateClose(rate, t.rate) {
			continue
		}
		t.rate = rate
		t.finish.Cancel()
		t.finish = sim.Event{}
		if t.rate <= 0 {
			continue // starved; rescheduled on the next rebalance
		}
		secs := t.remaining / t.rate
		tt := t
		t.finish = n.eng.At(now+time.Duration(secs*float64(time.Second))+1, func() {
			n.complete(tt)
		})
	}
}

// rateClose reports whether two rates agree to within rounding noise.
func rateClose(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	return diff <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func (n *Network) complete(t *Transfer) {
	t.finish = sim.Event{} // this event has fired
	n.settle()
	if t.remaining > 0.5 {
		// Rounding left a sliver; finish it at the current rate.
		if t.rate > 0 {
			secs := t.remaining / t.rate
			tt := t
			t.finish = n.eng.Schedule(time.Duration(secs*float64(time.Second))+1, func() {
				n.complete(tt)
			})
		}
		return
	}
	n.remove(t)
	t.Ended = n.eng.Now()
	n.completed++
	if in := n.Ins; in != nil {
		in.Completed.Inc()
		in.Bytes.Add(uint64(t.Bytes))
		in.labelBytes(t.Label).Add(uint64(t.Bytes))
		if secs := (t.Ended - t.Started).Seconds(); secs > 0 {
			in.ThroughputMbps.Observe(float64(t.Bytes) * 8 / 1e6 / secs)
		}
		in.Tracer.End(t.span)
	}
	n.totalByLabel[t.Label] += t.Bytes
	t.srcEP.BytesOut += t.Bytes
	t.dstEP.BytesIn += t.Bytes
	n.history = append(n.history, CompletedTransfer{
		Src: t.Src, Dst: t.Dst, Label: t.Label, Bytes: t.Bytes, Ended: t.Ended,
	})
	n.log(Event{Kind: EventEnd, Transfer: t})
	if t.done != nil {
		t.done(t, nil)
	}
	n.scheduleRebalance()
}
