package gridftp

import (
	"bufio"
	"bytes"
	"crypto/rand"
	"encoding/base64"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"grid3/internal/gsi"
)

// This file implements a real TCP file server speaking a compact
// GridFTP-like control protocol with GSI challenge-response authentication.
// The simulated Network above is used for calibrated scenario runs; this
// server is what the examples and integration tests drive end-to-end, the
// analogue of the Globus GridFTP server every Grid3 site ran (§5.1).
//
// Protocol (one text control channel; data flows inline, length-prefixed):
//
//	S: 220 grid3 gridftp ready nonce=<hex>
//	C: AUTH <base64(gob bundle)> <base64(sig over nonce)>
//	S: 230 mapped to <account>            | 530 <reason>
//	C: SIZE <path>                        → 213 <n> | 550 no such file
//	C: STOR <path> <n> + n raw bytes      → 150 send | 226 ok | 552 disk full
//	C: RETR <path>                        → 150 <n> + n raw bytes
//	C: DELE <path>                        → 250 ok | 550 no such file
//	C: QUIT                               → 221 bye

// certBundle is the gob wire form of a credential's public half.
type certBundle struct {
	Leaf  *gsi.Certificate
	Chain []*gsi.Certificate
}

// FileStore is the server's capacity-bounded in-memory file system.
type FileStore struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	files    map[string][]byte
}

// NewFileStore creates a store with the given byte capacity.
func NewFileStore(capacity int64) *FileStore {
	return &FileStore{capacity: capacity, files: make(map[string][]byte)}
}

// Put stores a file, failing when capacity would be exceeded.
func (fs *FileStore) Put(name string, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	old := int64(len(fs.files[name]))
	if fs.used-old+int64(len(data)) > fs.capacity {
		return fmt.Errorf("%w: %d bytes over capacity", ErrDiskFull, fs.used-old+int64(len(data))-fs.capacity)
	}
	fs.used += int64(len(data)) - old
	fs.files[name] = data
	return nil
}

// Get returns a file's contents.
func (fs *FileStore) Get(name string) ([]byte, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, ok := fs.files[name]
	return d, ok
}

// Delete removes a file.
func (fs *FileStore) Delete(name string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, ok := fs.files[name]
	if !ok {
		return false
	}
	fs.used -= int64(len(d))
	delete(fs.files, name)
	return true
}

// Used returns stored bytes.
func (fs *FileStore) Used() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.used
}

// ErrDiskFull mirrors site.ErrDiskFull for the real server.
var ErrDiskFull = fmt.Errorf("gridftp: disk full")

// Server is a GSI-authenticated file server.
type Server struct {
	Store   *FileStore
	Trust   *gsi.TrustStore
	Gridmap *gsi.Gridmap
	Now     func() time.Time // credential validity check; defaults to time.Now
	// HostCred, when set, enables third-party transfers: on SENDTO the
	// server dials the destination server and authenticates as itself
	// (the globus-url-copy server-to-server mode). The host identity must
	// be authorized in the destination's grid-mapfile.
	HostCred *gsi.Credential

	listener net.Listener
	wg       sync.WaitGroup
	mu       sync.Mutex
	closed   bool
}

// NewServer creates a server over the given store, trust anchors, and
// authorization map.
func NewServer(store *FileStore, trust *gsi.TrustStore, gridmap *gsi.Gridmap) *Server {
	return &Server{Store: store, Trust: trust, Gridmap: gridmap, Now: time.Now}
}

// Serve starts accepting connections on a fresh localhost listener and
// returns its address.
func (s *Server) Serve() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	s.listener = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops the listener and waits for in-flight sessions.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.listener.Close()
	s.wg.Wait()
	return err
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	rw := bufio.NewReadWriter(bufio.NewReader(conn), bufio.NewWriter(conn))
	reply := func(format string, args ...any) bool {
		fmt.Fprintf(rw, format+"\r\n", args...)
		return rw.Flush() == nil
	}

	nonce := make([]byte, 32)
	if _, err := rand.Read(nonce); err != nil {
		reply("421 internal error")
		return
	}
	if !reply("220 grid3 gridftp ready nonce=%x", nonce) {
		return
	}

	authed := false
	for {
		line, err := rw.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 0 {
			continue
		}
		cmd := strings.ToUpper(fields[0])
		switch cmd {
		case "QUIT":
			reply("221 bye")
			return
		case "AUTH":
			if len(fields) != 3 {
				reply("501 AUTH <bundle> <sig>")
				continue
			}
			acct, err := s.authenticate(fields[1], fields[2], nonce)
			if err != nil {
				reply("530 %s", err)
				continue
			}
			authed = true
			reply("230 mapped to %s", acct)
		case "SIZE", "STOR", "RETR", "DELE":
			if !authed {
				reply("530 authenticate first")
				continue
			}
			if !s.fileCommand(cmd, fields, rw, reply) {
				return
			}
		case "SENDTO":
			// Third-party transfer: push a local file to another server.
			if !authed {
				reply("530 authenticate first")
				continue
			}
			if len(fields) != 3 {
				reply("501 SENDTO <path> <host:port>")
				continue
			}
			if err := s.sendTo(fields[1], fields[2]); err != nil {
				reply("552 %v", err)
				continue
			}
			reply("226 relayed %s to %s", fields[1], fields[2])
		default:
			reply("500 unknown command %s", cmd)
		}
	}
}

func (s *Server) fileCommand(cmd string, fields []string, rw *bufio.ReadWriter, reply func(string, ...any) bool) bool {
	switch cmd {
	case "SIZE":
		if len(fields) != 2 {
			return reply("501 SIZE <path>")
		}
		data, ok := s.Store.Get(fields[1])
		if !ok {
			return reply("550 no such file")
		}
		return reply("213 %d", len(data))
	case "DELE":
		if len(fields) != 2 {
			return reply("501 DELE <path>")
		}
		if !s.Store.Delete(fields[1]) {
			return reply("550 no such file")
		}
		return reply("250 ok")
	case "STOR":
		if len(fields) != 3 {
			return reply("501 STOR <path> <size>")
		}
		size, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil || size < 0 || size > 1<<32 {
			return reply("501 bad size")
		}
		if !reply("150 send %d bytes", size) {
			return false
		}
		data := make([]byte, size)
		if _, err := io.ReadFull(rw, data); err != nil {
			return false
		}
		if err := s.Store.Put(fields[1], data); err != nil {
			return reply("552 %s", err)
		}
		return reply("226 stored %s", fields[1])
	case "RETR":
		if len(fields) != 2 {
			return reply("501 RETR <path>")
		}
		data, ok := s.Store.Get(fields[1])
		if !ok {
			return reply("550 no such file")
		}
		if !reply("150 %d bytes follow", len(data)) {
			return false
		}
		if _, err := rw.Write(data); err != nil {
			return false
		}
		return rw.Flush() == nil
	}
	return reply("500 bad file command")
}

// sendTo implements the server side of a third-party transfer.
func (s *Server) sendTo(path, addr string) error {
	if s.HostCred == nil {
		return fmt.Errorf("third-party transfers disabled (no host credential)")
	}
	data, ok := s.Store.Get(path)
	if !ok {
		return fmt.Errorf("no such file %s", path)
	}
	c, err := Dial(addr, s.HostCred)
	if err != nil {
		return fmt.Errorf("dialing destination: %v", err)
	}
	defer c.Close()
	return c.Put(path, data)
}

func (s *Server) authenticate(bundleB64, sigB64 string, nonce []byte) (string, error) {
	raw, err := base64.StdEncoding.DecodeString(bundleB64)
	if err != nil {
		return "", fmt.Errorf("bad bundle encoding")
	}
	sig, err := base64.StdEncoding.DecodeString(sigB64)
	if err != nil {
		return "", fmt.Errorf("bad signature encoding")
	}
	var bundle certBundle
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&bundle); err != nil {
		return "", fmt.Errorf("bad bundle")
	}
	if bundle.Leaf == nil {
		return "", fmt.Errorf("missing certificate")
	}
	if err := gsi.VerifyChallenge(bundle.Leaf, nonce, sig); err != nil {
		return "", fmt.Errorf("challenge failed")
	}
	identity, err := s.Trust.Verify(bundle.Leaf, bundle.Chain, s.Now())
	if err != nil {
		return "", fmt.Errorf("certificate rejected: %v", err)
	}
	acct, err := s.Gridmap.Lookup(identity)
	if err != nil {
		return "", fmt.Errorf("not authorized: %s", identity)
	}
	return acct, nil
}
