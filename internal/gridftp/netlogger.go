package gridftp

import (
	"fmt"
	"io"
	"time"
)

// EventKind classifies NetLogger events. The paper (§4.7): "NetLogger
// events were generated at program start, end, and on errors (the default)
// and for all significant I/O requests (by request)."
type EventKind int

// NetLogger event kinds.
const (
	EventStart EventKind = iota
	EventEnd
	EventError
)

func (k EventKind) String() string {
	switch k {
	case EventStart:
		return "gridftp.transfer.start"
	case EventEnd:
		return "gridftp.transfer.end"
	case EventError:
		return "gridftp.transfer.error"
	}
	return fmt.Sprintf("gridftp.event.%d", int(k))
}

// Event is one NetLogger record.
type Event struct {
	Kind     EventKind
	Time     time.Duration // virtual time of the event
	Transfer *Transfer
	Err      error
}

// NetLogger accumulates instrumentation events and can render them in the
// classic NetLogger "NL" line format.
type NetLogger struct {
	Events []Event
}

// Attach installs the logger on a network and returns it.
func Attach(n *Network) *NetLogger {
	nl := &NetLogger{}
	n.SetLogger(nl.record)
	return nl
}

func (nl *NetLogger) record(ev Event) {
	nl.Events = append(nl.Events, ev)
}

// Count returns the number of recorded events of a kind.
func (nl *NetLogger) Count(kind EventKind) int {
	n := 0
	for _, e := range nl.Events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// WriteTo renders all events in NetLogger line format:
//
//	DATE=<virtual-seconds> HOST=<src> PROG=gridftp NL.EVNT=<kind> DEST=<dst> BYTES=<n>
func (nl *NetLogger) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, e := range nl.Events {
		var suffix string
		if e.Err != nil {
			suffix = fmt.Sprintf(" ERR=%q", e.Err.Error())
		}
		n, err := fmt.Fprintf(w, "DATE=%.3f HOST=%s PROG=gridftp NL.EVNT=%s DEST=%s BYTES=%d%s\n",
			e.Time.Seconds(), e.Transfer.Src, e.Kind, e.Transfer.Dst, e.Transfer.Bytes, suffix)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
