package gridftp

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"grid3/internal/gsi"
)

// testRig spins up a CA, an authorized user proxy, and a server.
type testRig struct {
	ca     *gsi.CA
	user   *gsi.Credential
	proxy  *gsi.Credential
	server *Server
	addr   string
}

func newRig(t *testing.T) *testRig {
	t.Helper()
	now := time.Now()
	ca, err := gsi.NewCA("/CN=Test CA", now.Add(-time.Hour), 100*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	user, err := ca.Issue("/OU=People/CN=Transfer User", now.Add(-time.Hour), 30*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := gsi.NewProxy(user, now, 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	gm := gsi.NewGridmap()
	gm.Map(user.Cert.Subject, "ivdgl")
	srv := NewServer(NewFileStore(1<<20), gsi.NewTrustStore(ca.Certificate()), gm)
	addr, err := srv.Serve()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return &testRig{ca: ca, user: user, proxy: proxy, server: srv, addr: addr}
}

func TestRealTransferRoundTrip(t *testing.T) {
	rig := newRig(t)
	c, err := Dial(rig.addr, rig.proxy)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Account != "ivdgl" {
		t.Fatalf("mapped account = %q", c.Account)
	}
	payload := bytes.Repeat([]byte("grid3-data-"), 1000)
	if err := c.Put("/data/run42.sft", payload); err != nil {
		t.Fatal(err)
	}
	n, err := c.Size("/data/run42.sft")
	if err != nil || n != int64(len(payload)) {
		t.Fatalf("Size = %d, %v", n, err)
	}
	got, err := c.Get("/data/run42.sft")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("round-trip corrupted data")
	}
	if err := c.Delete("/data/run42.sft"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Size("/data/run42.sft"); !errors.Is(err, ErrServer) {
		t.Fatalf("size after delete err = %v", err)
	}
}

func TestUnauthorizedUserRejected(t *testing.T) {
	rig := newRig(t)
	stranger, err := rig.ca.Issue("/CN=Stranger", time.Now().Add(-time.Minute), 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(rig.addr, stranger); !errors.Is(err, ErrServer) {
		t.Fatalf("unauthorized dial err = %v", err)
	}
}

func TestUntrustedCARejected(t *testing.T) {
	rig := newRig(t)
	rogue, _ := gsi.NewCA("/CN=Rogue", time.Now().Add(-time.Hour), 24*time.Hour)
	mallory, _ := rogue.Issue("/OU=People/CN=Transfer User", time.Now().Add(-time.Minute), 12*time.Hour)
	if _, err := Dial(rig.addr, mallory); !errors.Is(err, ErrServer) {
		t.Fatalf("rogue-CA dial err = %v", err)
	}
}

func TestExpiredProxyRejected(t *testing.T) {
	rig := newRig(t)
	// A proxy created within the signer's validity but already expired.
	old, err := gsi.NewProxy(rig.user, time.Now().Add(-50*time.Minute), 20*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(rig.addr, old); !errors.Is(err, ErrServer) {
		t.Fatalf("expired proxy dial err = %v", err)
	}
}

func TestServerDiskFull(t *testing.T) {
	rig := newRig(t)
	c, err := Dial(rig.addr, rig.proxy)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	big := make([]byte, 1<<20+1)
	if err := c.Put("/too-big", big); !errors.Is(err, ErrServer) {
		t.Fatalf("over-capacity put err = %v", err)
	}
	// The session survives the error.
	if err := c.Put("/fits", make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentClients(t *testing.T) {
	rig := newRig(t)
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(rig.addr, rig.proxy)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			name := fmt.Sprintf("/f%d", i)
			data := bytes.Repeat([]byte{byte(i)}, 4096)
			if err := c.Put(name, data); err != nil {
				errs <- err
				return
			}
			got, err := c.Get(name)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, data) {
				errs <- fmt.Errorf("worker %d: data mismatch", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if used := rig.server.Store.Used(); used != workers*4096 {
		t.Fatalf("store used = %d", used)
	}
}

func TestFileStoreOverwriteAccounting(t *testing.T) {
	fs := NewFileStore(100)
	if err := fs.Put("a", make([]byte, 80)); err != nil {
		t.Fatal(err)
	}
	// Overwriting with a smaller file must release the difference.
	if err := fs.Put("a", make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if fs.Used() != 10 {
		t.Fatalf("used = %d", fs.Used())
	}
	if err := fs.Put("b", make([]byte, 90)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Put("c", []byte{1}); err == nil {
		t.Fatal("over-capacity put succeeded")
	}
	if !fs.Delete("b") || fs.Delete("b") {
		t.Fatal("delete semantics wrong")
	}
}

func TestThirdPartyTransfer(t *testing.T) {
	rig := newRig(t)
	// Source server gets a host credential that the destination trusts.
	hostCred, err := rig.ca.Issue("/OU=Services/CN=gridftp/src.example.org", time.Now().Add(-time.Minute), 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	rig.server.HostCred = hostCred

	dstMap := gsi.NewGridmap()
	dstMap.Map(hostCred.Cert.Subject, "gftp")
	dst := NewServer(NewFileStore(1<<20), gsi.NewTrustStore(rig.ca.Certificate()), dstMap)
	dstAddr, err := dst.Serve()
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	c, err := Dial(rig.addr, rig.proxy)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := bytes.Repeat([]byte("xyz"), 5000)
	if err := c.Put("/data/relay.bin", payload); err != nil {
		t.Fatal(err)
	}
	// Client-initiated server-to-server push.
	if err := c.SendTo("/data/relay.bin", dstAddr); err != nil {
		t.Fatal(err)
	}
	got, ok := dst.Store.Get("/data/relay.bin")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatal("third-party copy corrupted or missing")
	}
	// Missing file and unauthorized host both fail cleanly.
	if err := c.SendTo("/data/ghost", dstAddr); !errors.Is(err, ErrServer) {
		t.Fatalf("missing-file relay err = %v", err)
	}
	rig.server.HostCred = nil
	if err := c.SendTo("/data/relay.bin", dstAddr); !errors.Is(err, ErrServer) {
		t.Fatalf("disabled relay err = %v", err)
	}
}
