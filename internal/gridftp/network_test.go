package gridftp

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"grid3/internal/sim"
)

// newNet builds a network with zero setup delay for exact-arithmetic tests.
func newNet(t *testing.T) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine(sim.Grid3Epoch)
	n := NewNetwork(eng)
	n.SetupDelay = 0
	return eng, n
}

const mb = 1 << 20

func TestSingleTransferRate(t *testing.T) {
	eng, n := newNet(t)
	n.AddEndpoint("bnl", 800) // 100 MB/s
	n.AddEndpoint("uc", 800)
	var got *Transfer
	n.Start("bnl", "uc", 1000*mb, "usatlas", func(tr *Transfer, err error) {
		if err != nil {
			t.Errorf("transfer failed: %v", err)
		}
		got = tr
	})
	eng.Run()
	if got == nil {
		t.Fatal("transfer never completed")
	}
	wantSecs := float64(1000*mb) / (800e6 / 8)
	if math.Abs(eng.Now().Seconds()-wantSecs) > 0.1 {
		t.Fatalf("completion at %.2fs, want ~%.2fs", eng.Now().Seconds(), wantSecs)
	}
	if n.Completed() != 1 || n.Failures() != 0 {
		t.Fatal("counters wrong")
	}
}

func TestFairSharingTwoFlowsOneLink(t *testing.T) {
	eng, n := newNet(t)
	n.AddEndpoint("fnal", 800)
	n.AddEndpoint("ucsd", 8000) // not the bottleneck
	n.AddEndpoint("ufl", 8000)
	var ends []time.Duration
	done := func(tr *Transfer, err error) {
		if err != nil {
			t.Errorf("err: %v", err)
		}
		ends = append(ends, tr.Ended)
	}
	// Both flows leave fnal: each should get half its 100 MB/s.
	n.Start("fnal", "ucsd", 1000*mb, "uscms", done)
	n.Start("fnal", "ufl", 1000*mb, "uscms", done)
	eng.Run()
	if len(ends) != 2 {
		t.Fatalf("completed %d", len(ends))
	}
	wantSecs := float64(1000*mb) / (800e6 / 8 / 2)
	for _, e := range ends {
		if math.Abs(e.Seconds()-wantSecs) > 0.5 {
			t.Fatalf("flow ended at %.2fs, want ~%.2fs (fair half share)", e.Seconds(), wantSecs)
		}
	}
}

func TestMaxMinBottleneckAllocation(t *testing.T) {
	eng, n := newNet(t)
	// slow has 80 Mb/s (10 MB/s); fast endpoints have 800 Mb/s.
	n.AddEndpoint("slow", 80)
	n.AddEndpoint("fast1", 800)
	n.AddEndpoint("fast2", 800)
	// Flow A: slow→fast1 (bottlenecked at 10 MB/s).
	// Flow B: fast1→fast2 (should get fast1's leftover 90 MB/s).
	var aEnd, bEnd time.Duration
	n.Start("slow", "fast1", 100*mb, "x", func(tr *Transfer, err error) { aEnd = tr.Ended })
	n.Start("fast1", "fast2", 900*mb, "x", func(tr *Transfer, err error) { bEnd = tr.Ended })
	eng.Run()
	// A: 100 MB at 10 MB/s = 10s. B: 900 MB at 90 MB/s = 10s.
	if math.Abs(aEnd.Seconds()-10) > 0.5 {
		t.Fatalf("bottlenecked flow ended at %.2fs, want ~10s", aEnd.Seconds())
	}
	if math.Abs(bEnd.Seconds()-10) > 0.5 {
		t.Fatalf("leftover flow ended at %.2fs, want ~10s (got max-min leftover)", bEnd.Seconds())
	}
}

func TestRateAdjustsWhenFlowFinishes(t *testing.T) {
	eng, n := newNet(t)
	n.AddEndpoint("a", 800) // 100 MB/s
	n.AddEndpoint("b", 8000)
	n.AddEndpoint("c", 8000)
	var longEnd time.Duration
	// Short flow shares a's link for its duration; long flow then speeds up.
	n.Start("a", "b", 100*mb, "x", nil)
	n.Start("a", "c", 1000*mb, "x", func(tr *Transfer, err error) { longEnd = tr.Ended })
	eng.Run()
	// Phase 1: both flows split a's capacity until the short one drains
	// (serving 2×100 MiB of combined traffic); the long flow's remaining
	// 900 MiB then gets the full link. Total bytes through a's link at
	// full utilization: 1100 MiB.
	cap := 800e6 / 8
	wantSecs := float64(1100*mb) / cap
	if math.Abs(longEnd.Seconds()-wantSecs) > 0.5 {
		t.Fatalf("long flow ended at %.2fs, want ~%.2fs", longEnd.Seconds(), wantSecs)
	}
}

func TestEndpointDownInterruptsTransfers(t *testing.T) {
	eng, n := newNet(t)
	n.AddEndpoint("a", 80)
	n.AddEndpoint("b", 80)
	n.AddEndpoint("c", 80)
	var gotErr error
	var survived bool
	n.Start("a", "b", 10000*mb, "x", func(tr *Transfer, err error) { gotErr = err })
	n.Start("c", "b", 10*mb, "x", func(tr *Transfer, err error) { survived = err == nil })
	eng.RunUntil(2 * time.Second)
	if err := n.SetEndpointUp("a", false); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !errors.Is(gotErr, ErrInterrupted) {
		t.Fatalf("interrupted transfer err = %v", gotErr)
	}
	if !survived {
		t.Fatal("unrelated transfer was killed by a's failure")
	}
	if n.Failures() != 1 {
		t.Fatalf("failures = %d", n.Failures())
	}
	// New transfers to the dead endpoint are refused.
	if _, err := n.Start("a", "b", mb, "x", nil); !errors.Is(err, ErrEndpointDown) {
		t.Fatalf("start to down endpoint err = %v", err)
	}
	// Bring it back: transfers flow again.
	n.SetEndpointUp("a", true)
	ok := false
	n.Start("a", "b", mb, "x", func(tr *Transfer, err error) { ok = err == nil })
	eng.Run()
	if !ok {
		t.Fatal("transfer after recovery failed")
	}
}

func TestStartValidation(t *testing.T) {
	_, n := newNet(t)
	n.AddEndpoint("a", 80)
	n.AddEndpoint("b", 80)
	if _, err := n.Start("a", "b", 0, "x", nil); !errors.Is(err, ErrBadSize) {
		t.Fatalf("zero size err = %v", err)
	}
	if _, err := n.Start("a", "a", mb, "x", nil); !errors.Is(err, ErrSameEndpoint) {
		t.Fatalf("same endpoint err = %v", err)
	}
	if _, err := n.Start("a", "zz", mb, "x", nil); !errors.Is(err, ErrUnknownEndpoint) {
		t.Fatalf("unknown endpoint err = %v", err)
	}
	if _, err := n.Endpoint("zz"); !errors.Is(err, ErrUnknownEndpoint) {
		t.Fatalf("Endpoint lookup err = %v", err)
	}
}

func TestSetupDelayAppliesAndFailsIfEndpointDies(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	n := NewNetwork(eng)
	n.SetupDelay = 5 * time.Second
	n.AddEndpoint("a", 80000) // effectively instant data movement
	n.AddEndpoint("b", 80000)
	var end time.Duration
	n.Start("a", "b", 1, "x", func(tr *Transfer, err error) { end = tr.Ended })
	eng.Run()
	if end < 5*time.Second {
		t.Fatalf("transfer finished before setup delay: %v", end)
	}
	// Endpoint dies during setup.
	var setupErr error
	n.Start("a", "b", 1, "x", func(tr *Transfer, err error) { setupErr = err })
	n.SetEndpointUp("a", false)
	eng.Run()
	if setupErr == nil {
		t.Fatal("setup-phase death not reported")
	}
}

func TestAccountingByLabelAndEndpoint(t *testing.T) {
	eng, n := newNet(t)
	n.AddEndpoint("bnl", 800)
	n.AddEndpoint("uc", 800)
	n.AddEndpoint("iu", 800)
	n.Start("bnl", "uc", 100*mb, "usatlas", nil)
	n.Start("bnl", "iu", 50*mb, "ivdgl", nil)
	n.Start("uc", "bnl", 25*mb, "usatlas", nil)
	eng.Run()
	by := n.BytesByLabel()
	if by["usatlas"] != 125*mb || by["ivdgl"] != 50*mb {
		t.Fatalf("label accounting = %v", by)
	}
	bnl, _ := n.Endpoint("bnl")
	if bnl.BytesOut != 150*mb || bnl.BytesIn != 25*mb {
		t.Fatalf("bnl in %d out %d", bnl.BytesIn, bnl.BytesOut)
	}
	uc, _ := n.Endpoint("uc")
	if uc.BytesIn != 100*mb || uc.BytesOut != 25*mb {
		t.Fatalf("uc in %d out %d", uc.BytesIn, uc.BytesOut)
	}
}

func TestNetLoggerEvents(t *testing.T) {
	eng, n := newNet(t)
	nl := Attach(n)
	n.AddEndpoint("a", 800)
	n.AddEndpoint("b", 800)
	n.AddEndpoint("c", 800)
	n.Start("a", "b", 10*mb, "x", nil)
	n.Start("a", "c", 100000*mb, "x", nil)
	eng.RunUntil(time.Second)
	n.SetEndpointUp("c", false)
	eng.Run()
	if nl.Count(EventStart) != 2 {
		t.Fatalf("start events = %d", nl.Count(EventStart))
	}
	if nl.Count(EventEnd) != 1 {
		t.Fatalf("end events = %d", nl.Count(EventEnd))
	}
	if nl.Count(EventError) != 1 {
		t.Fatalf("error events = %d", nl.Count(EventError))
	}
	var sb strings.Builder
	if _, err := nl.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "NL.EVNT=gridftp.transfer.end") || !strings.Contains(out, "ERR=") {
		t.Fatalf("NetLogger output missing records:\n%s", out)
	}
}

func TestManyConcurrentFlowsConserveBytes(t *testing.T) {
	eng, n := newNet(t)
	for i := 0; i < 8; i++ {
		n.AddEndpoint(fmt.Sprintf("s%d", i), 100+float64(i)*50)
	}
	var totalDone int64
	const flows = 60
	for i := 0; i < flows; i++ {
		src := fmt.Sprintf("s%d", i%8)
		dst := fmt.Sprintf("s%d", (i+3)%8)
		size := int64((i + 1) * mb)
		n.Start(src, dst, size, "x", func(tr *Transfer, err error) {
			if err != nil {
				t.Errorf("flow failed: %v", err)
				return
			}
			totalDone += tr.Bytes
		})
	}
	eng.Run()
	var want int64
	for i := 0; i < flows; i++ {
		want += int64((i + 1) * mb)
	}
	if totalDone != want {
		t.Fatalf("bytes done = %d, want %d", totalDone, want)
	}
	if n.ActiveCount() != 0 {
		t.Fatalf("transfers still active: %d", n.ActiveCount())
	}
	// Conservation: per-endpoint in totals equal per-endpoint out totals
	// summed across the network.
	var in, out int64
	for i := 0; i < 8; i++ {
		e, _ := n.Endpoint(fmt.Sprintf("s%d", i))
		in += e.BytesIn
		out += e.BytesOut
	}
	if in != want || out != want {
		t.Fatalf("endpoint accounting in=%d out=%d want=%d", in, out, want)
	}
}

func TestAggregateThroughputMatchesCapacity(t *testing.T) {
	// A hub with 1000 flows through a 100 MB/s link moves ~100 MB/s total.
	eng, n := newNet(t)
	n.AddEndpoint("hub", 800)
	for i := 0; i < 10; i++ {
		n.AddEndpoint(fmt.Sprintf("leaf%d", i), 8000)
	}
	const each = 10 * mb
	for i := 0; i < 100; i++ {
		n.Start("hub", fmt.Sprintf("leaf%d", i%10), each, "x", nil)
	}
	eng.Run()
	wantSecs := float64(100*each) / (800e6 / 8)
	if math.Abs(eng.Now().Seconds()-wantSecs) > 1 {
		t.Fatalf("drain time %.2fs, want ~%.2fs", eng.Now().Seconds(), wantSecs)
	}
}

func BenchmarkNetworkChurn(b *testing.B) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	n := NewNetwork(eng)
	n.SetupDelay = 0
	for i := 0; i < 27; i++ {
		n.AddEndpoint(fmt.Sprintf("site%d", i), 622)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src := fmt.Sprintf("site%d", i%27)
		dst := fmt.Sprintf("site%d", (i+13)%27)
		n.Start(src, dst, 4<<30, "bench", nil)
		if i%64 == 63 {
			eng.Run()
		}
	}
	eng.Run()
}
