package gridftp

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"

	"grid3/internal/gsi"
)

// Client is a connection to a real GridFTP server, authenticated with a
// GSI credential (normally a short-lived proxy, as globus-url-copy used).
type Client struct {
	conn    net.Conn
	rw      *bufio.ReadWriter
	Account string // local account the server mapped us to
}

// ErrServer wraps non-2xx control-channel replies.
var ErrServer = errors.New("gridftp: server error")

// Dial connects and authenticates.
func Dial(addr string, cred *gsi.Credential) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn: conn,
		rw:   bufio.NewReadWriter(bufio.NewReader(conn), bufio.NewWriter(conn)),
	}
	greeting, err := c.readReply()
	if err != nil {
		conn.Close()
		return nil, err
	}
	nonce, err := parseNonce(greeting)
	if err != nil {
		conn.Close()
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(certBundle{Leaf: cred.Cert, Chain: cred.Chain}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("gridftp: encoding credential: %w", err)
	}
	sig := gsi.SignChallenge(cred, nonce)
	reply, err := c.command("AUTH %s %s",
		base64.StdEncoding.EncodeToString(buf.Bytes()),
		base64.StdEncoding.EncodeToString(sig))
	if err != nil {
		conn.Close()
		return nil, err
	}
	if i := strings.LastIndex(reply, " "); i >= 0 {
		c.Account = reply[i+1:]
	}
	return c, nil
}

func parseNonce(greeting string) ([]byte, error) {
	const marker = "nonce="
	i := strings.Index(greeting, marker)
	if i < 0 {
		return nil, fmt.Errorf("gridftp: greeting missing nonce: %q", greeting)
	}
	hexStr := strings.TrimSpace(greeting[i+len(marker):])
	nonce := make([]byte, len(hexStr)/2)
	if _, err := fmt.Sscanf(hexStr, "%x", &nonce); err != nil {
		return nil, fmt.Errorf("gridftp: bad nonce: %w", err)
	}
	return nonce, nil
}

// readReply reads one control line, returning an error for 4xx/5xx codes.
func (c *Client) readReply() (string, error) {
	line, err := c.rw.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimRight(line, "\r\n")
	if len(line) < 3 {
		return "", fmt.Errorf("gridftp: short reply %q", line)
	}
	if line[0] == '4' || line[0] == '5' {
		return "", fmt.Errorf("%w: %s", ErrServer, line)
	}
	return line, nil
}

func (c *Client) command(format string, args ...any) (string, error) {
	fmt.Fprintf(c.rw, format+"\r\n", args...)
	if err := c.rw.Flush(); err != nil {
		return "", err
	}
	return c.readReply()
}

// Size returns the remote file's size.
func (c *Client) Size(path string) (int64, error) {
	reply, err := c.command("SIZE %s", path)
	if err != nil {
		return 0, err
	}
	var code int
	var n int64
	if _, err := fmt.Sscanf(reply, "%d %d", &code, &n); err != nil {
		return 0, fmt.Errorf("gridftp: bad SIZE reply %q", reply)
	}
	return n, nil
}

// Put uploads data to path.
func (c *Client) Put(path string, data []byte) error {
	if _, err := c.command("STOR %s %d", path, len(data)); err != nil {
		return err
	}
	if _, err := c.rw.Write(data); err != nil {
		return err
	}
	if err := c.rw.Flush(); err != nil {
		return err
	}
	_, err := c.readReply()
	return err
}

// Get downloads path.
func (c *Client) Get(path string) ([]byte, error) {
	reply, err := c.command("RETR %s", path)
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(reply)
	if len(fields) < 2 {
		return nil, fmt.Errorf("gridftp: bad RETR reply %q", reply)
	}
	size, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("gridftp: bad RETR size in %q", reply)
	}
	data := make([]byte, size)
	if _, err := io.ReadFull(c.rw, data); err != nil {
		return nil, err
	}
	return data, nil
}

// SendTo asks the server to push path to another server (third-party
// transfer); the server authenticates at the destination with its host
// credential.
func (c *Client) SendTo(path, addr string) error {
	_, err := c.command("SENDTO %s %s", path, addr)
	return err
}

// Delete removes a remote file.
func (c *Client) Delete(path string) error {
	_, err := c.command("DELE %s", path)
	return err
}

// Close sends QUIT and closes the connection.
func (c *Client) Close() error {
	c.command("QUIT")
	return c.conn.Close()
}
