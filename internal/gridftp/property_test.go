package gridftp

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"grid3/internal/sim"
)

// TestMaxMinAllocationProperty: after any set of simultaneous transfers is
// admitted, (1) no endpoint's aggregate rate exceeds its capacity, and
// (2) every flow is bottlenecked somewhere: each flow touches at least one
// endpoint that is saturated (within rounding), which is the defining
// property of a max-min fair allocation.
func TestMaxMinAllocationProperty(t *testing.T) {
	f := func(caps []uint8, pairs []uint16) bool {
		nEndpoints := len(caps)%6 + 2
		eng := sim.NewEngine(sim.Grid3Epoch)
		n := NewNetwork(eng)
		n.SetupDelay = 0
		capacity := make([]float64, nEndpoints)
		for i := 0; i < nEndpoints; i++ {
			mbps := 10.0
			if i < len(caps) {
				mbps = float64(caps[i]%200) + 10
			}
			capacity[i] = mbps * 1e6 / 8
			n.AddEndpoint(fmt.Sprintf("e%d", i), mbps)
		}
		var flows []*Transfer
		for i, p := range pairs {
			if i >= 24 {
				break
			}
			src := int(p) % nEndpoints
			dst := int(p>>4) % nEndpoints
			if src == dst {
				continue
			}
			tr, err := n.Start(fmt.Sprintf("e%d", src), fmt.Sprintf("e%d", dst), 1<<40, "x", nil)
			if err != nil {
				return false
			}
			flows = append(flows, tr)
		}
		// Let the admissions and the coalesced rebalance fire.
		eng.RunUntil(time.Millisecond)
		if len(flows) == 0 {
			return true
		}
		load := make([]float64, nEndpoints)
		for _, tr := range flows {
			if tr.Rate() < 0 {
				return false
			}
			var s, d int
			fmt.Sscanf(tr.Src, "e%d", &s)
			fmt.Sscanf(tr.Dst, "e%d", &d)
			load[s] += tr.Rate()
			load[d] += tr.Rate()
		}
		const tol = 1.0001
		for i := range load {
			if load[i] > capacity[i]*tol {
				return false
			}
		}
		// Bottleneck property.
		for _, tr := range flows {
			var s, d int
			fmt.Sscanf(tr.Src, "e%d", &s)
			fmt.Sscanf(tr.Dst, "e%d", &d)
			srcSat := load[s] > capacity[s]/tol-1
			dstSat := load[d] > capacity[d]/tol-1
			if !srcSat && !dstSat {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
