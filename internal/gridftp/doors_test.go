package gridftp

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"
)

func TestDoorsSerializeTransfersFIFO(t *testing.T) {
	eng, n := newNet(t)
	hub := n.AddEndpoint("hub", 800) // 100 MB/s
	hub.Doors = 1
	for i := 0; i < 3; i++ {
		n.AddEndpoint(fmt.Sprintf("leaf%d", i), 8000)
	}
	var order []string
	for i := 0; i < 3; i++ {
		n.Start("hub", fmt.Sprintf("leaf%d", i), 100*mb, "x", func(tr *Transfer, err error) {
			if err != nil {
				t.Errorf("transfer failed: %v", err)
				return
			}
			order = append(order, tr.Dst)
		})
	}
	// One door: the first transfer holds it, the other two wait.
	if hub.ActiveFlows() != 1 || hub.QueuedFlows() != 2 {
		t.Fatalf("doors busy %d queued %d, want 1/2", hub.ActiveFlows(), hub.QueuedFlows())
	}
	eng.Run()
	if len(order) != 3 || order[0] != "leaf0" || order[1] != "leaf1" || order[2] != "leaf2" {
		t.Fatalf("completion order = %v, want FIFO admission", order)
	}
	// Serialized: each gets the full link in turn.
	wantSecs := 3 * float64(100*mb) / (800e6 / 8)
	if math.Abs(eng.Now().Seconds()-wantSecs) > 0.5 {
		t.Fatalf("drained at %.2fs, want ~%.2fs (serialized)", eng.Now().Seconds(), wantSecs)
	}
	if n.QueuedTotal() != 2 || n.PeakQueueDepth() != 2 || n.QueueDepth() != 0 {
		t.Fatalf("queue stats: total %d peak %d depth %d", n.QueuedTotal(), n.PeakQueueDepth(), n.QueueDepth())
	}
	if n.MeanQueueWait() <= 0 {
		t.Fatal("mean queue wait not recorded")
	}
	if hub.ActiveFlows() != 0 || hub.QueuedFlows() != 0 {
		t.Fatalf("doors leaked: busy %d queued %d", hub.ActiveFlows(), hub.QueuedFlows())
	}
}

func TestDoorsAdmissionIsWorkConserving(t *testing.T) {
	eng, n := newNet(t)
	a := n.AddEndpoint("a", 800)
	a.Doors = 1
	c := n.AddEndpoint("c", 800)
	c.Doors = 1
	n.AddEndpoint("b", 8000)
	n.AddEndpoint("d", 8000)
	n.Start("a", "b", 1000*mb, "x", nil) // holds a's door ~10s
	n.Start("c", "d", 100*mb, "x", nil)  // holds c's door ~1s
	n.Start("a", "d", 100*mb, "x", nil)  // queue head, blocked on a
	var late time.Duration
	n.Start("c", "b", 100*mb, "x", func(tr *Transfer, err error) {
		if err != nil {
			t.Errorf("err: %v", err)
		}
		late = tr.Ended
	})
	eng.Run()
	// c→b sits behind the blocked a→d in the FIFO but contends for a
	// different door; it must ride as soon as c frees, not wait for a.
	if late.Seconds() > 3 {
		t.Fatalf("blocked queue head stalled an unrelated pair: c→b ended at %v", late)
	}
}

func TestZeroDoorsKeepsUnboundedWAN(t *testing.T) {
	eng, n := newNet(t)
	n.AddEndpoint("hub", 800)
	for i := 0; i < 10; i++ {
		n.AddEndpoint(fmt.Sprintf("leaf%d", i), 8000)
	}
	for i := 0; i < 10; i++ {
		n.Start("hub", fmt.Sprintf("leaf%d", i), 10*mb, "x", nil)
	}
	eng.Run()
	if n.Completed() != 10 {
		t.Fatalf("completed = %d", n.Completed())
	}
	if n.QueuedTotal() != 0 || n.PeakQueueDepth() != 0 {
		t.Fatalf("unbounded endpoints queued: total %d peak %d", n.QueuedTotal(), n.PeakQueueDepth())
	}
}

func TestQueuedTransfersFailWhenEndpointDies(t *testing.T) {
	eng, n := newNet(t)
	hub := n.AddEndpoint("hub", 800)
	hub.Doors = 1
	n.AddEndpoint("b", 8000)
	n.AddEndpoint("c", 8000)
	var activeErr, queuedErr error
	n.Start("hub", "b", 10000*mb, "x", func(tr *Transfer, err error) { activeErr = err })
	n.Start("hub", "c", mb, "x", func(tr *Transfer, err error) { queuedErr = err })
	eng.RunUntil(time.Second)
	if err := n.SetEndpointUp("hub", false); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !errors.Is(queuedErr, ErrEndpointDown) {
		t.Fatalf("queued transfer err = %v", queuedErr)
	}
	if !errors.Is(activeErr, ErrInterrupted) {
		t.Fatalf("active transfer err = %v", activeErr)
	}
	if n.QueueDepth() != 0 || hub.QueuedFlows() != 0 || hub.ActiveFlows() != 0 {
		t.Fatalf("state after failure: depth %d queued %d busy %d",
			n.QueueDepth(), hub.QueuedFlows(), hub.ActiveFlows())
	}
	// Doors were not corrupted: after recovery the endpoint serves again.
	n.SetEndpointUp("hub", true)
	ok := false
	n.Start("hub", "b", mb, "x", func(tr *Transfer, err error) { ok = err == nil })
	eng.Run()
	if !ok {
		t.Fatal("transfer after recovery failed")
	}
}

// Regression guard for the data-plane accounting invariant: an interrupted
// transfer moves no bytes into BytesIn/BytesOut or the per-label totals —
// volume accrues only at completion, so a crash mid-flight cannot inflate
// the Figure 5 numbers.
func TestInterruptedTransferLeavesAccountingClean(t *testing.T) {
	eng, n := newNet(t)
	n.AddEndpoint("a", 800)
	n.AddEndpoint("b", 800)
	n.AddEndpoint("c", 800)
	var failed error
	n.Start("a", "b", 10000*mb, "usatlas", func(tr *Transfer, err error) { failed = err })
	eng.RunUntil(5 * time.Second) // mid-flight, bytes in motion
	n.SetEndpointUp("a", false)
	eng.Run()
	if failed == nil {
		t.Fatal("interruption not reported")
	}
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	if a.BytesOut != 0 || b.BytesIn != 0 {
		t.Fatalf("interrupted transfer corrupted accounting: a.out=%d b.in=%d", a.BytesOut, b.BytesIn)
	}
	if by := n.BytesByLabel(); len(by) != 0 {
		t.Fatalf("label totals after interruption: %v", by)
	}
	// A subsequent completed transfer adds exactly its own volume.
	n.Start("c", "b", 100*mb, "usatlas", nil)
	eng.Run()
	if b.BytesIn != 100*mb || n.BytesByLabel()["usatlas"] != 100*mb {
		t.Fatalf("post-recovery accounting: b.in=%d label=%d", b.BytesIn, n.BytesByLabel()["usatlas"])
	}
}
