package srm

import (
	"sort"

	"grid3/internal/checkpoint"
)

// HashState folds the manager's lifecycle state into h: outstanding
// reservations (sorted by ID), live pins (sorted by file), the staged-file
// FIFO in its eviction order, and the lifetime counters. It is a pure read:
// no lazy expiry runs, because lapsed-but-unreaped records are real state
// that a replayed run rebuilds identically.
func (m *Manager) HashState(h *checkpoint.Hasher) {
	ids := make([]string, 0, len(m.reservations))
	for id := range m.reservations {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	h.Int(int64(len(ids)))
	for _, id := range ids {
		r := m.reservations[id]
		h.String(r.ID)
		h.String(r.VO)
		h.Int(r.Bytes)
		h.Int(r.Remaining)
		h.Dur(r.Expires)
	}
	h.Int(m.nextID)
	pins := make([]string, 0, len(m.pins))
	for name := range m.pins {
		pins = append(pins, name)
	}
	sort.Strings(pins)
	h.Int(int64(len(pins)))
	for _, name := range pins {
		h.String(name)
		h.Dur(m.pins[name])
	}
	h.Int(int64(len(m.staged)))
	for _, name := range m.staged {
		h.String(name)
	}
	h.Float(m.watermark)
	h.Int(int64(m.granted))
	h.Int(int64(m.denied))
	h.Int(int64(m.expired))
	h.Int(int64(m.evicted))
	h.Int(m.evictedBytes)
}
