package srm

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"grid3/internal/sim"
	"grid3/internal/site"
)

func newMgr(t *testing.T, capacity int64) (*sim.Engine, *site.Storage, *Manager) {
	t.Helper()
	eng := sim.NewEngine(sim.Grid3Epoch)
	st := site.NewStorage(capacity)
	return eng, st, New(eng, st)
}

func TestReservePutRelease(t *testing.T) {
	_, st, m := newMgr(t, 1000)
	r, err := m.Reserve("uscms", 600, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Put(r.ID, "evt1", 250); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(r.ID, "evt2", 250); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(r.ID, "evt3", 200); !errors.Is(err, ErrExhausted) {
		t.Fatalf("over-reservation put err = %v", err)
	}
	if err := m.Release(r.ID); err != nil {
		t.Fatal(err)
	}
	if st.Used() != 500 || st.Reserved() != 0 || st.Free() != 500 {
		t.Fatalf("store state: used %d reserved %d free %d", st.Used(), st.Reserved(), st.Free())
	}
	if err := m.Release(r.ID); !errors.Is(err, ErrNoReservation) {
		t.Fatalf("double release err = %v", err)
	}
	if m.Granted() != 1 {
		t.Fatal("granted counter")
	}
}

func TestReserveFailsFast(t *testing.T) {
	_, _, m := newMgr(t, 1000)
	if _, err := m.Reserve("uscms", 800, time.Hour); err != nil {
		t.Fatal(err)
	}
	// The second reservation is denied up front — before any CPU is spent
	// producing data that could not be stored (the §8 lesson).
	if _, err := m.Reserve("usatlas", 300, time.Hour); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("overcommit err = %v", err)
	}
	if m.Denied() != 1 {
		t.Fatal("denied counter")
	}
}

func TestReservationExpiry(t *testing.T) {
	eng, st, m := newMgr(t, 1000)
	r, _ := m.Reserve("ligo", 400, 30*time.Minute)
	eng.RunUntil(time.Hour)
	if err := m.Put(r.ID, "late", 100); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired put err = %v", err)
	}
	// Expired space is reclaimed, so a new reservation fits.
	if _, err := m.Reserve("sdss", 900, time.Hour); err != nil {
		t.Fatal(err)
	}
	if st.Reserved() != 900 {
		t.Fatalf("reserved = %d", st.Reserved())
	}
	if m.Outstanding() != 1 {
		t.Fatalf("outstanding = %d", m.Outstanding())
	}
}

func TestPutUnknownReservation(t *testing.T) {
	_, _, m := newMgr(t, 100)
	if err := m.Put("srm-404", "x", 1); !errors.Is(err, ErrNoReservation) {
		t.Fatalf("err = %v", err)
	}
}

func TestExpiryReclaimsOnlyUnused(t *testing.T) {
	eng, st, m := newMgr(t, 1000)
	r, _ := m.Reserve("btev", 500, 30*time.Minute)
	m.Put(r.ID, "mc-batch-1", 300)
	eng.RunUntil(time.Hour)
	m.Outstanding() // trigger GC
	// The written file stays; only the unused 200 returns to free.
	if st.Used() != 300 || st.Reserved() != 0 || st.Free() != 700 {
		t.Fatalf("store: used %d reserved %d free %d", st.Used(), st.Reserved(), st.Free())
	}
	if !st.Has("mc-batch-1") {
		t.Fatal("stored file vanished with reservation expiry")
	}
}

// Regression: a reservation whose grantee never comes back must still be
// reclaimed by the scheduled reaper. Before expiry moved onto the timer
// wheel, lapsed reservations only released on the next Reserve/Outstanding
// call — a site nobody asked again held the space forever.
func TestAbandonedReservationReclaimedBySchedule(t *testing.T) {
	eng, st, m := newMgr(t, 1000)
	if _, err := m.Reserve("uscms", 400, 30*time.Minute); err != nil {
		t.Fatal(err)
	}
	// No further SRM calls: only scheduled events may reclaim.
	eng.RunUntil(30*time.Minute + reapGrace + time.Hour)
	if st.Reserved() != 0 || st.Free() != 1000 {
		t.Fatalf("abandoned reservation leaked: reserved %d free %d", st.Reserved(), st.Free())
	}
	if len(m.reservations) != 0 {
		t.Fatalf("reservation map still holds %d entries", len(m.reservations))
	}
}

// Regression: a write lost to a lapsed reservation must tick the expired
// counter exactly once — the loss-at-put signal, distinct from both
// denial-at-reserve and the silent reclaim the scheduled reaper does after
// the grace window.
func TestExpiredCounterTicksAtPut(t *testing.T) {
	eng, _, m := newMgr(t, 1000)
	r, _ := m.Reserve("btev", 300, 30*time.Minute)
	eng.RunUntil(time.Hour) // lapsed, but inside the reap grace window
	if err := m.Put(r.ID, "late", 100); !errors.Is(err, ErrExpired) {
		t.Fatalf("late put err = %v", err)
	}
	if m.Expired() != 1 {
		t.Fatalf("expired = %d", m.Expired())
	}
	// The failed put released the reservation; retrying cannot double-count.
	if err := m.Put(r.ID, "late2", 100); !errors.Is(err, ErrNoReservation) {
		t.Fatalf("second put err = %v", err)
	}
	if m.Expired() != 1 {
		t.Fatalf("expired double-counted: %d", m.Expired())
	}
}

// stage reserves, writes, and releases one file — the stage-out sequence.
func stage(t *testing.T, m *Manager, name string, size int64) {
	t.Helper()
	r, err := m.Reserve("sdss", size, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Put(r.ID, name, size); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(r.ID); err != nil {
		t.Fatal(err)
	}
}

func TestPinLifecycle(t *testing.T) {
	eng, _, m := newMgr(t, 1000)
	if err := m.Pin("ghost", time.Hour); !errors.Is(err, ErrUnknownFile) {
		t.Fatalf("pin of unknown file err = %v", err)
	}
	stage(t, m, "f1", 100)
	if err := m.Pin("f1", 30*time.Minute); err != nil {
		t.Fatal(err)
	}
	if !m.Pinned("f1") {
		t.Fatal("fresh pin not live")
	}
	eng.RunUntil(time.Hour)
	if m.Pinned("f1") {
		t.Fatal("lapsed pin still live")
	}
	if err := m.Pin("f1", time.Hour); err != nil {
		t.Fatal(err)
	}
	m.Unpin("f1")
	if m.Pinned("f1") {
		t.Fatal("unpinned file still shielded")
	}
}

func TestCleanupSweepEvictsUnpinnedInPutOrder(t *testing.T) {
	_, st, m := newMgr(t, 1000)
	m.watermark = 0.5
	stage(t, m, "f1", 200)
	stage(t, m, "f2", 200)
	stage(t, m, "f3", 200) // used 600, free 400 < watermark 500
	if err := m.Pin("f1", time.Hour); err != nil {
		t.Fatal(err)
	}
	var evicted []string
	m.OnEvict = func(name string, size int64) { evicted = append(evicted, name) }
	if n := m.CleanupSweep(); n != 1 || len(evicted) != 1 || evicted[0] != "f2" {
		t.Fatalf("sweep evicted %v (n=%d), want f2 only (f1 pinned, put order)", evicted, n)
	}
	if !st.Has("f1") || st.Has("f2") || !st.Has("f3") {
		t.Fatal("wrong files survived the sweep")
	}
	if m.Evicted() != 1 || m.EvictedBytes() != 200 {
		t.Fatalf("eviction counters: %d files, %d bytes", m.Evicted(), m.EvictedBytes())
	}
	if m.StagedCount() != 2 {
		t.Fatalf("staged count = %d", m.StagedCount())
	}
	// Free recovered past the watermark; the next sweep is a no-op.
	if st.Free() < 500 {
		t.Fatalf("free %d still below watermark", st.Free())
	}
	if m.CleanupSweep() != 0 {
		t.Fatal("recovered store still evicting")
	}
}

func TestEnableCleanupRunsOnTimerWheel(t *testing.T) {
	eng, st, m := newMgr(t, 1000)
	if err := m.EnableCleanup(time.Hour, 0.5); err != nil {
		t.Fatal(err)
	}
	stage(t, m, "f1", 200)
	stage(t, m, "f2", 200)
	stage(t, m, "f3", 200)
	// The pin lapses before the first sweep fires, so f1 is fair game.
	if err := m.Pin("f1", 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(90 * time.Minute)
	if st.Has("f1") {
		t.Fatal("file with lapsed pin survived the scheduled sweep")
	}
	if st.Used() != 400 || st.Free() < 500 {
		t.Fatalf("store after sweep: used %d free %d", st.Used(), st.Free())
	}
}

func TestEnableCleanupNeedsScheduler(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	m := New(plainClock{eng}, site.NewStorage(100))
	if err := m.EnableCleanup(time.Hour, 0.5); !errors.Is(err, ErrNoScheduler) {
		t.Fatalf("err = %v", err)
	}
}

// plainClock strips the engine down to its Clock face, hiding Scheduler.
type plainClock struct{ eng *sim.Engine }

func (c plainClock) Now() time.Duration { return c.eng.Now() }

func (c plainClock) WallClock() time.Time { return c.eng.WallClock() }

// Property: reserved + used + free == capacity under any operation mix,
// and reservations never overcommit the store.
func TestSRMConservationProperty(t *testing.T) {
	type op struct {
		Kind uint8
		Size uint16
		Life uint8
	}
	f := func(ops []op) bool {
		eng := sim.NewEngine(sim.Grid3Epoch)
		st := site.NewStorage(1 << 20)
		m := New(eng, st)
		var live []*Reservation
		files := 0
		for _, o := range ops {
			size := int64(o.Size)%4096 + 1
			switch o.Kind % 4 {
			case 0:
				if r, err := m.Reserve("vo", size, time.Duration(o.Life%48+1)*time.Hour); err == nil {
					live = append(live, r)
				}
			case 1:
				if len(live) > 0 {
					files++
					m.Put(live[0].ID, fmt.Sprintf("f%d", files), size)
				}
			case 2:
				if len(live) > 0 {
					m.Release(live[0].ID)
					live = live[1:]
				}
			case 3:
				eng.RunFor(time.Duration(o.Life%24) * time.Hour)
				m.Outstanding() // trigger expiry GC
			}
			if st.Used()+st.Reserved()+st.Free() != st.Capacity() {
				return false
			}
			if st.Reserved() < 0 || st.Free() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the full lifecycle mix — reservations, managed and raw writes,
// deletes out from under the manager, pins, time, and cleanup sweeps — never
// breaks used + reserved + free == capacity.
func TestLifecycleConservationProperty(t *testing.T) {
	type op struct {
		Kind uint8
		Size uint16
		Life uint8
	}
	f := func(ops []op) bool {
		eng := sim.NewEngine(sim.Grid3Epoch)
		st := site.NewStorage(1 << 18)
		m := New(eng, st)
		m.watermark = 0.25
		var live []*Reservation
		var names []string
		files := 0
		for _, o := range ops {
			size := int64(o.Size)%4096 + 1
			switch o.Kind % 7 {
			case 0:
				if r, err := m.Reserve("vo", size, time.Duration(o.Life%48+1)*time.Hour); err == nil {
					live = append(live, r)
				}
			case 1:
				if len(live) > 0 {
					files++
					name := fmt.Sprintf("f%d", files)
					if m.Put(live[0].ID, name, size) == nil {
						names = append(names, name)
					}
				}
			case 2:
				if len(live) > 0 {
					m.Release(live[0].ID)
					live = live[1:]
				}
			case 3:
				// Raw write around the manager (a job without SRM).
				files++
				name := fmt.Sprintf("raw%d", files)
				if st.Store(name, size, false) == nil {
					names = append(names, name)
				}
			case 4:
				// Delete out from under the manager (tape migration).
				if len(names) > 0 {
					st.Delete(names[0])
					names = names[1:]
				}
			case 5:
				if len(names) > 0 {
					if o.Life%2 == 0 {
						m.Pin(names[0], time.Duration(o.Life%12+1)*time.Hour)
					} else {
						m.Unpin(names[0])
					}
				}
			case 6:
				eng.RunFor(time.Duration(o.Life%24) * time.Hour)
				m.CleanupSweep()
			}
			if st.Used()+st.Reserved()+st.Free() != st.Capacity() {
				return false
			}
			if st.Reserved() < 0 || st.Free() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
