package srm

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"grid3/internal/sim"
	"grid3/internal/site"
)

func newMgr(t *testing.T, capacity int64) (*sim.Engine, *site.Storage, *Manager) {
	t.Helper()
	eng := sim.NewEngine(sim.Grid3Epoch)
	st := site.NewStorage(capacity)
	return eng, st, New(eng, st)
}

func TestReservePutRelease(t *testing.T) {
	_, st, m := newMgr(t, 1000)
	r, err := m.Reserve("uscms", 600, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Put(r.ID, "evt1", 250); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(r.ID, "evt2", 250); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(r.ID, "evt3", 200); !errors.Is(err, ErrExhausted) {
		t.Fatalf("over-reservation put err = %v", err)
	}
	if err := m.Release(r.ID); err != nil {
		t.Fatal(err)
	}
	if st.Used() != 500 || st.Reserved() != 0 || st.Free() != 500 {
		t.Fatalf("store state: used %d reserved %d free %d", st.Used(), st.Reserved(), st.Free())
	}
	if err := m.Release(r.ID); !errors.Is(err, ErrNoReservation) {
		t.Fatalf("double release err = %v", err)
	}
	if m.Granted() != 1 {
		t.Fatal("granted counter")
	}
}

func TestReserveFailsFast(t *testing.T) {
	_, _, m := newMgr(t, 1000)
	if _, err := m.Reserve("uscms", 800, time.Hour); err != nil {
		t.Fatal(err)
	}
	// The second reservation is denied up front — before any CPU is spent
	// producing data that could not be stored (the §8 lesson).
	if _, err := m.Reserve("usatlas", 300, time.Hour); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("overcommit err = %v", err)
	}
	if m.Denied() != 1 {
		t.Fatal("denied counter")
	}
}

func TestReservationExpiry(t *testing.T) {
	eng, st, m := newMgr(t, 1000)
	r, _ := m.Reserve("ligo", 400, 30*time.Minute)
	eng.RunUntil(time.Hour)
	if err := m.Put(r.ID, "late", 100); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired put err = %v", err)
	}
	// Expired space is reclaimed, so a new reservation fits.
	if _, err := m.Reserve("sdss", 900, time.Hour); err != nil {
		t.Fatal(err)
	}
	if st.Reserved() != 900 {
		t.Fatalf("reserved = %d", st.Reserved())
	}
	if m.Outstanding() != 1 {
		t.Fatalf("outstanding = %d", m.Outstanding())
	}
}

func TestPutUnknownReservation(t *testing.T) {
	_, _, m := newMgr(t, 100)
	if err := m.Put("srm-404", "x", 1); !errors.Is(err, ErrNoReservation) {
		t.Fatalf("err = %v", err)
	}
}

func TestExpiryReclaimsOnlyUnused(t *testing.T) {
	eng, st, m := newMgr(t, 1000)
	r, _ := m.Reserve("btev", 500, 30*time.Minute)
	m.Put(r.ID, "mc-batch-1", 300)
	eng.RunUntil(time.Hour)
	m.Outstanding() // trigger GC
	// The written file stays; only the unused 200 returns to free.
	if st.Used() != 300 || st.Reserved() != 0 || st.Free() != 700 {
		t.Fatalf("store: used %d reserved %d free %d", st.Used(), st.Reserved(), st.Free())
	}
	if !st.Has("mc-batch-1") {
		t.Fatal("stored file vanished with reservation expiry")
	}
}

// Property: reserved + used + free == capacity under any operation mix,
// and reservations never overcommit the store.
func TestSRMConservationProperty(t *testing.T) {
	type op struct {
		Kind uint8
		Size uint16
		Life uint8
	}
	f := func(ops []op) bool {
		eng := sim.NewEngine(sim.Grid3Epoch)
		st := site.NewStorage(1 << 20)
		m := New(eng, st)
		var live []*Reservation
		files := 0
		for _, o := range ops {
			size := int64(o.Size)%4096 + 1
			switch o.Kind % 4 {
			case 0:
				if r, err := m.Reserve("vo", size, time.Duration(o.Life%48+1)*time.Hour); err == nil {
					live = append(live, r)
				}
			case 1:
				if len(live) > 0 {
					files++
					m.Put(live[0].ID, fmt.Sprintf("f%d", files), size)
				}
			case 2:
				if len(live) > 0 {
					m.Release(live[0].ID)
					live = live[1:]
				}
			case 3:
				eng.RunFor(time.Duration(o.Life%24) * time.Hour)
				m.Outstanding() // trigger expiry GC
			}
			if st.Used()+st.Reserved()+st.Free() != st.Capacity() {
				return false
			}
			if st.Reserved() < 0 || st.Free() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
