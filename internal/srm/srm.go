// Package srm implements a Storage Resource Manager in front of a site's
// storage: space reservation with scheduled expiry, best-effort pinning,
// managed writes, and a watermark-driven cleanup sweep.
//
// SRM is the §8 "lesson learned" extension: "storage reservation (e.g., as
// provided by SRM) would have prevented various storage-related service
// failures" (§6.2). The ABL-SRM ablation bench compares CMS-like production
// with raw GridFTP writes (which hit disk-full mid-job) against SRM-managed
// writes (which fail fast at reservation time, before CPU is wasted). The
// lifecycle loop — reservations reaped on the sim timer wheel, unpinned
// staged files evicted when free space falls below a watermark — closes the
// §6.1 "disk filling, unreclaimed space" failure class.
package srm

import (
	"errors"
	"fmt"
	"time"

	"grid3/internal/sim"
	"grid3/internal/site"
)

// Errors.
var (
	ErrNoSpace       = errors.New("srm: reservation denied, insufficient space")
	ErrNoReservation = errors.New("srm: no such reservation")
	ErrExpired       = errors.New("srm: reservation expired")
	ErrExhausted     = errors.New("srm: reservation exhausted")
	ErrUnknownFile   = errors.New("srm: no such file")
	ErrNoScheduler   = errors.New("srm: clock cannot schedule events")
)

// Reservation is a bounded-lifetime space grant.
type Reservation struct {
	ID        string
	VO        string
	Bytes     int64 // originally granted
	Remaining int64
	Expires   time.Duration
	released  bool
	// expiry is the scheduled reaper event; zero when the manager's clock
	// cannot schedule (plain-Clock embeddings fall back to lazy expiry).
	expiry sim.Event
}

// Manager fronts one site's storage element.
type Manager struct {
	clock sim.Clock
	// sched is clock's scheduling face when it has one (the sim engine
	// does); reservation expiry and the cleanup sweep ride its timer wheel.
	sched sim.Scheduler
	store *site.Storage

	reservations map[string]*Reservation
	nextID       int64

	// pins maps staged file → pin expiry. A live pin shields the file from
	// the cleanup sweep.
	pins map[string]time.Duration
	// staged is the Put-order FIFO of SRM-written files — the sweep's
	// eviction order — with stagedSet deduplicating re-puts.
	staged    []string
	stagedSet map[string]bool

	// watermark is the Free()/Capacity() fraction below which the sweep
	// evicts; zero until EnableCleanup arms the loop.
	watermark float64

	// OnEvict, when set, fires for each file the cleanup sweep deletes, so
	// the embedding site can retract catalog entries (LRC mappings).
	OnEvict func(name string, size int64)

	// Counters for the ablation bench and the data sweep.
	granted, denied int
	// expired counts writes lost because their reservation lapsed before
	// Put — the loss-at-put failure, distinct from denial-at-reserve.
	expired int
	// evicted counts files removed by the cleanup sweep.
	evicted      int
	evictedBytes int64
}

// New creates an SRM over a storage element. When clock can also schedule
// (the sim engine), reservation expiry runs on the timer wheel: a site that
// stops calling Reserve still gets its lapsed space back.
func New(clock sim.Clock, store *site.Storage) *Manager {
	m := &Manager{
		clock:        clock,
		store:        store,
		reservations: make(map[string]*Reservation),
		pins:         make(map[string]time.Duration),
		stagedSet:    make(map[string]bool),
	}
	if s, ok := clock.(sim.Scheduler); ok {
		m.sched = s
	}
	return m
}

// Granted and Denied count reservation outcomes.
func (m *Manager) Granted() int { return m.granted }

// Denied returns the number of refused reservations.
func (m *Manager) Denied() int { return m.denied }

// Expired returns the number of writes refused because their reservation
// had lapsed by Put time.
func (m *Manager) Expired() int { return m.expired }

// Evicted returns the number of files the cleanup sweep has deleted.
func (m *Manager) Evicted() int { return m.evicted }

// EvictedBytes returns the volume the cleanup sweep has reclaimed.
func (m *Manager) EvictedBytes() int64 { return m.evictedBytes }

// reapGrace is how long past expiry a reservation lingers before the
// scheduled reaper reclaims it. The grace window keeps loss-at-put
// observable: a grantee writing shortly after its lifetime lapsed still
// gets ErrExpired (and the expired counter ticks) instead of the
// reservation having silently vanished. Lazy expiry in Reserve and
// Outstanding still reclaims immediately, as it always did.
const reapGrace = 24 * time.Hour

// Reserve grants space for lifetime, or fails fast if the store cannot
// hold it. Expired reservations are garbage-collected first; with a
// scheduling clock the new grant is also reaped by the timer wheel at
// expiry + reapGrace, so the space returns even if the grantee never
// comes back and nobody else ever calls Reserve.
func (m *Manager) Reserve(vo string, bytes int64, lifetime time.Duration) (*Reservation, error) {
	m.expire()
	if err := m.store.Reserve(bytes); err != nil {
		m.denied++
		return nil, fmt.Errorf("%w: %v", ErrNoSpace, err)
	}
	m.nextID++
	r := &Reservation{
		ID:        fmt.Sprintf("srm-%d", m.nextID),
		VO:        vo,
		Bytes:     bytes,
		Remaining: bytes,
		Expires:   m.clock.Now() + lifetime,
	}
	m.reservations[r.ID] = r
	m.granted++
	if m.sched != nil {
		rr := r
		r.expiry = m.sched.At(r.Expires+reapGrace+1, func() { m.reap(rr) })
	}
	return r, nil
}

// reap is the scheduled expiry callback: release the reservation if it is
// still outstanding when its lifetime lapses.
func (m *Manager) reap(r *Reservation) {
	r.expiry = sim.Event{} // this event has fired
	if !r.released && m.clock.Now() > r.Expires {
		m.release(r)
	}
}

// Put writes a file against a reservation.
func (m *Manager) Put(resID, name string, size int64) error {
	r, ok := m.reservations[resID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoReservation, resID)
	}
	if m.clock.Now() > r.Expires {
		m.expired++
		m.release(r)
		return fmt.Errorf("%w: %s", ErrExpired, resID)
	}
	if size > r.Remaining {
		return fmt.Errorf("%w: %d > %d left in %s", ErrExhausted, size, r.Remaining, resID)
	}
	if err := m.store.Store(name, size, true); err != nil {
		return err
	}
	r.Remaining -= size
	if !m.stagedSet[name] {
		m.stagedSet[name] = true
		m.staged = append(m.staged, name)
	}
	if m.sched == nil {
		m.expire() // no timer wheel: reap lapsed peers lazily
	}
	return nil
}

// Release returns a reservation's unused space.
func (m *Manager) Release(resID string) error {
	r, ok := m.reservations[resID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoReservation, resID)
	}
	m.release(r)
	if m.sched == nil {
		m.expire()
	}
	return nil
}

func (m *Manager) release(r *Reservation) {
	if r.released {
		return
	}
	r.released = true
	r.expiry.Cancel()
	r.expiry = sim.Event{}
	if r.Remaining > 0 {
		m.store.Release(r.Remaining)
		r.Remaining = 0
	}
	delete(m.reservations, r.ID)
}

// expire garbage-collects lapsed reservations, returning their space.
func (m *Manager) expire() {
	now := m.clock.Now()
	var dead []*Reservation
	for _, r := range m.reservations {
		if now > r.Expires {
			dead = append(dead, r)
		}
	}
	for _, r := range dead {
		m.release(r)
	}
}

// Outstanding returns the number of live reservations.
func (m *Manager) Outstanding() int {
	m.expire()
	return len(m.reservations)
}

// Pin shields a staged file from the cleanup sweep until ttl elapses.
// Re-pinning extends the lifetime.
func (m *Manager) Pin(name string, ttl time.Duration) error {
	if !m.store.Has(name) {
		return fmt.Errorf("%w: %s", ErrUnknownFile, name)
	}
	m.pins[name] = m.clock.Now() + ttl
	return nil
}

// Unpin releases a pin, making the file eligible for eviction.
func (m *Manager) Unpin(name string) { delete(m.pins, name) }

// Pinned reports whether a file holds a live pin.
func (m *Manager) Pinned(name string) bool {
	exp, ok := m.pins[name]
	return ok && exp >= m.clock.Now()
}

// EnableCleanup arms the lifecycle sweep on the manager's timer wheel:
// every interval, if free space has fallen below watermark×capacity, the
// sweep deletes unpinned staged files oldest-first until it recovers.
// Requires a scheduling clock.
func (m *Manager) EnableCleanup(interval time.Duration, watermark float64) error {
	if m.sched == nil {
		return ErrNoScheduler
	}
	m.watermark = watermark
	var tick func()
	tick = func() {
		m.CleanupSweep()
		m.sched.Schedule(interval, tick)
	}
	m.sched.Schedule(interval, tick)
	return nil
}

// CleanupSweep runs one pass of the lifecycle loop: reap lapsed
// reservations and pins, then, if free space is below the watermark, evict
// unpinned staged files in Put order until it recovers. Returns the number
// of files evicted.
func (m *Manager) CleanupSweep() int {
	m.expire()
	now := m.clock.Now()
	for name, exp := range m.pins {
		if exp < now {
			delete(m.pins, name)
		}
	}
	low := int64(m.watermark * float64(m.store.Capacity()))
	if m.store.Free() >= low {
		return 0
	}
	n := 0
	kept := m.staged[:0]
	for i, name := range m.staged {
		if m.store.Free() >= low {
			kept = append(kept, m.staged[i:]...)
			break
		}
		if !m.store.Has(name) {
			// Deleted out from under us (tape migration); drop the record.
			delete(m.stagedSet, name)
			delete(m.pins, name)
			continue
		}
		if exp, ok := m.pins[name]; ok && exp >= now {
			kept = append(kept, name)
			continue
		}
		size, _ := m.store.Size(name)
		m.store.Delete(name)
		delete(m.stagedSet, name)
		delete(m.pins, name)
		m.evicted++
		m.evictedBytes += size
		n++
		if m.OnEvict != nil {
			m.OnEvict(name, size)
		}
	}
	m.staged = kept
	return n
}

// StagedCount returns the number of SRM-written files still tracked by the
// lifecycle loop.
func (m *Manager) StagedCount() int { return len(m.stagedSet) }
