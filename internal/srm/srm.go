// Package srm implements a Storage Resource Manager in front of a site's
// storage: space reservation, best-effort pinning, and managed writes.
//
// SRM is the §8 "lesson learned" extension: "storage reservation (e.g., as
// provided by SRM) would have prevented various storage-related service
// failures" (§6.2). The ABL-SRM ablation bench compares CMS-like production
// with raw GridFTP writes (which hit disk-full mid-job) against SRM-managed
// writes (which fail fast at reservation time, before CPU is wasted).
package srm

import (
	"errors"
	"fmt"
	"time"

	"grid3/internal/sim"
	"grid3/internal/site"
)

// Errors.
var (
	ErrNoSpace       = errors.New("srm: reservation denied, insufficient space")
	ErrNoReservation = errors.New("srm: no such reservation")
	ErrExpired       = errors.New("srm: reservation expired")
	ErrExhausted     = errors.New("srm: reservation exhausted")
)

// Reservation is a bounded-lifetime space grant.
type Reservation struct {
	ID        string
	VO        string
	Bytes     int64 // originally granted
	Remaining int64
	Expires   time.Duration
	released  bool
}

// Manager fronts one site's storage element.
type Manager struct {
	clock        sim.Clock
	store        *site.Storage
	reservations map[string]*Reservation
	nextID       int64

	// Counters for the ablation bench.
	granted, denied int
}

// New creates an SRM over a storage element.
func New(clock sim.Clock, store *site.Storage) *Manager {
	return &Manager{
		clock:        clock,
		store:        store,
		reservations: make(map[string]*Reservation),
	}
}

// Granted and Denied count reservation outcomes.
func (m *Manager) Granted() int { return m.granted }

// Denied returns the number of refused reservations.
func (m *Manager) Denied() int { return m.denied }

// Reserve grants space for lifetime, or fails fast if the store cannot
// hold it. Expired reservations are garbage-collected first.
func (m *Manager) Reserve(vo string, bytes int64, lifetime time.Duration) (*Reservation, error) {
	m.expire()
	if err := m.store.Reserve(bytes); err != nil {
		m.denied++
		return nil, fmt.Errorf("%w: %v", ErrNoSpace, err)
	}
	m.nextID++
	r := &Reservation{
		ID:        fmt.Sprintf("srm-%d", m.nextID),
		VO:        vo,
		Bytes:     bytes,
		Remaining: bytes,
		Expires:   m.clock.Now() + lifetime,
	}
	m.reservations[r.ID] = r
	m.granted++
	return r, nil
}

// Put writes a file against a reservation.
func (m *Manager) Put(resID, name string, size int64) error {
	r, ok := m.reservations[resID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoReservation, resID)
	}
	if m.clock.Now() > r.Expires {
		m.release(r)
		return fmt.Errorf("%w: %s", ErrExpired, resID)
	}
	if size > r.Remaining {
		return fmt.Errorf("%w: %d > %d left in %s", ErrExhausted, size, r.Remaining, resID)
	}
	if err := m.store.Store(name, size, true); err != nil {
		return err
	}
	r.Remaining -= size
	return nil
}

// Release returns a reservation's unused space.
func (m *Manager) Release(resID string) error {
	r, ok := m.reservations[resID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoReservation, resID)
	}
	m.release(r)
	return nil
}

func (m *Manager) release(r *Reservation) {
	if r.released {
		return
	}
	r.released = true
	if r.Remaining > 0 {
		m.store.Release(r.Remaining)
		r.Remaining = 0
	}
	delete(m.reservations, r.ID)
}

// expire garbage-collects lapsed reservations, returning their space.
func (m *Manager) expire() {
	now := m.clock.Now()
	var dead []*Reservation
	for _, r := range m.reservations {
		if now > r.Expires {
			dead = append(dead, r)
		}
	}
	for _, r := range dead {
		m.release(r)
	}
}

// Outstanding returns the number of live reservations.
func (m *Manager) Outstanding() int {
	m.expire()
	return len(m.reservations)
}
