// Package goc implements the iVDGL Grid Operations Center (iGOC) support
// machinery of §5.4: a trouble-ticket system, the acceptable-use policy
// check, and operations support-load accounting (the §7 "operations
// support load" metric, target <2 FTEs).
package goc

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"grid3/internal/sim"
)

// Severity classifies tickets.
type Severity int

// Ticket severities.
const (
	Low Severity = iota
	Medium
	High // site-wide outage, blocks a VO's production
)

func (s Severity) String() string {
	switch s {
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// TicketState tracks a ticket's lifecycle.
type TicketState int

// Ticket states.
const (
	Open TicketState = iota
	Assigned
	Resolved
)

func (s TicketState) String() string {
	switch s {
	case Open:
		return "open"
	case Assigned:
		return "assigned"
	case Resolved:
		return "resolved"
	}
	return fmt.Sprintf("TicketState(%d)", int(s))
}

// Errors.
var (
	ErrNoTicket       = errors.New("goc: no such ticket")
	ErrAlreadyClosed  = errors.New("goc: ticket already resolved")
	ErrNotResolved    = errors.New("goc: ticket not resolved")
	ErrPolicyViolated = errors.New("goc: acceptable use policy violation")
)

// Ticket is one trouble report.
type Ticket struct {
	ID       int
	Site     string
	VO       string
	Severity Severity
	Summary  string
	State    TicketState
	Assignee string
	Opened   time.Duration
	Resolved time.Duration
	// EffortHours is support effort logged against the ticket, summed
	// across every resolution when the ticket has been reopened.
	EffortHours float64
	// Reopens counts how many times the ticket came back after being
	// resolved — the §6 "site fixed, then broke again" pattern.
	Reopens int
}

// Desk is the iGOC trouble-ticket system.
type Desk struct {
	clock   sim.Clock
	tickets map[int]*Ticket
	nextID  int
}

// NewDesk creates an empty ticket system.
func NewDesk(clock sim.Clock) *Desk {
	return &Desk{clock: clock, tickets: make(map[int]*Ticket)}
}

// Open files a ticket and returns it.
func (d *Desk) Open(siteName, vo, summary string, sev Severity) *Ticket {
	d.nextID++
	t := &Ticket{
		ID: d.nextID, Site: siteName, VO: vo, Severity: sev,
		Summary: summary, State: Open, Opened: d.clock.Now(),
	}
	d.tickets[t.ID] = t
	return t
}

// Assign routes a ticket per the §5.4 responsibility split: site problems
// to the site administrator, application problems to the VO's support
// organization.
func (d *Desk) Assign(id int, assignee string) error {
	t, ok := d.tickets[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoTicket, id)
	}
	if t.State == Resolved {
		return fmt.Errorf("%w: %d", ErrAlreadyClosed, id)
	}
	t.Assignee = assignee
	t.State = Assigned
	return nil
}

// Resolve closes a ticket, logging the effort spent. Resolving an
// already-resolved ticket is rejected with ErrAlreadyClosed; effort
// accumulates across reopen/resolve cycles.
func (d *Desk) Resolve(id int, effortHours float64) error {
	t, ok := d.tickets[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoTicket, id)
	}
	if t.State == Resolved {
		return fmt.Errorf("%w: %d", ErrAlreadyClosed, id)
	}
	t.State = Resolved
	t.Resolved = d.clock.Now()
	t.EffortHours += effortHours
	return nil
}

// Reopen puts a resolved ticket back in the queue when the same problem
// recurs, recording the new symptom and escalating severity if the repeat
// failure is worse. Reopening a ticket that is still open is rejected with
// ErrNotResolved. Opened keeps the original filing time, so
// MeanTimeToResolve charges the full saga to the ticket.
func (d *Desk) Reopen(id int, summary string, sev Severity) error {
	t, ok := d.tickets[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoTicket, id)
	}
	if t.State != Resolved {
		return fmt.Errorf("%w: %d", ErrNotResolved, id)
	}
	t.State = Open
	t.Resolved = 0
	t.Reopens++
	if summary != "" {
		t.Summary = summary
	}
	if sev > t.Severity {
		t.Severity = sev
	}
	return nil
}

// Escalate raises an open ticket's severity when the blast radius grows
// (severity never decreases). Escalating a resolved ticket is rejected with
// ErrAlreadyClosed.
func (d *Desk) Escalate(id int, sev Severity) error {
	t, ok := d.tickets[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoTicket, id)
	}
	if t.State == Resolved {
		return fmt.Errorf("%w: %d", ErrAlreadyClosed, id)
	}
	if sev > t.Severity {
		t.Severity = sev
	}
	return nil
}

// TicketCount returns the total number of tickets ever filed.
func (d *Desk) TicketCount() int { return len(d.tickets) }

// Ticket returns a ticket by ID.
func (d *Desk) Ticket(id int) (*Ticket, error) {
	t, ok := d.tickets[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoTicket, id)
	}
	return t, nil
}

// OpenTickets returns unresolved tickets sorted by (severity desc, ID).
// With site arguments it returns only tickets filed against those sites.
func (d *Desk) OpenTickets(sites ...string) []*Ticket {
	match := func(t *Ticket) bool {
		if len(sites) == 0 {
			return true
		}
		for _, s := range sites {
			if t.Site == s {
				return true
			}
		}
		return false
	}
	var out []*Ticket
	for _, t := range d.tickets {
		if t.State != Resolved && match(t) {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Severity != out[j].Severity {
			return out[i].Severity > out[j].Severity
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// MeanTimeToResolve averages resolution latency over closed tickets.
func (d *Desk) MeanTimeToResolve() time.Duration {
	var total time.Duration
	n := 0
	for _, t := range d.tickets {
		if t.State == Resolved {
			total += t.Resolved - t.Opened
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / time.Duration(n)
}

// SupportFTEs converts logged effort over a window into full-time
// equivalents (2080 work-hours/year ≈ 40 h/week) — the §7 operations
// support-load metric.
func (d *Desk) SupportFTEs(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	var hours float64
	for _, t := range d.tickets {
		if t.State == Resolved {
			hours += t.EffortHours
		}
	}
	workWeeks := window.Hours() / (7 * 24)
	if workWeeks == 0 {
		return 0
	}
	return hours / (40 * workWeeks)
}

// AUP is the acceptable-use policy adopted from the LCG (§5.4): jobs must
// belong to a registered VO and declare a scientific purpose.
type AUP struct {
	// RegisteredVOs lists VOs that have signed the policy.
	RegisteredVOs map[string]bool
	// BannedSubjects lists DNs with revoked access.
	BannedSubjects map[string]bool
}

// NewAUP builds a policy over the registered VOs.
func NewAUP(vos ...string) *AUP {
	p := &AUP{RegisteredVOs: map[string]bool{}, BannedSubjects: map[string]bool{}}
	for _, vo := range vos {
		p.RegisteredVOs[vo] = true
	}
	return p
}

// Check validates a (subject, vo) pair against the policy.
func (p *AUP) Check(subject, vo string) error {
	if p.BannedSubjects[subject] {
		return fmt.Errorf("%w: %s is banned", ErrPolicyViolated, subject)
	}
	if !p.RegisteredVOs[vo] {
		return fmt.Errorf("%w: VO %s has not accepted the AUP", ErrPolicyViolated, vo)
	}
	return nil
}
