package goc

import (
	"errors"
	"math"
	"testing"
	"time"

	"grid3/internal/sim"
)

func TestTicketLifecycle(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	desk := NewDesk(eng)
	tk := desk.Open("UC_ATLAS_Tier2", "usatlas", "gatekeeper load >400, submissions failing", High)
	if tk.ID != 1 || tk.State != Open {
		t.Fatalf("ticket = %+v", tk)
	}
	if err := desk.Assign(tk.ID, "uc-site-admin"); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(6 * time.Hour)
	if err := desk.Resolve(tk.ID, 3.5); err != nil {
		t.Fatal(err)
	}
	got, err := desk.Ticket(tk.ID)
	if err != nil || got.State != Resolved || got.EffortHours != 3.5 {
		t.Fatalf("resolved ticket = %+v, %v", got, err)
	}
	if err := desk.Resolve(tk.ID, 1); !errors.Is(err, ErrAlreadyClosed) {
		t.Fatalf("double resolve err = %v", err)
	}
	if err := desk.Assign(tk.ID, "x"); !errors.Is(err, ErrAlreadyClosed) {
		t.Fatalf("assign closed err = %v", err)
	}
	if _, err := desk.Ticket(99); !errors.Is(err, ErrNoTicket) {
		t.Fatalf("missing ticket err = %v", err)
	}
	if desk.MeanTimeToResolve() != 6*time.Hour {
		t.Fatalf("MTTR = %v", desk.MeanTimeToResolve())
	}
}

func TestOpenTicketsOrdering(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	desk := NewDesk(eng)
	desk.Open("a", "ivdgl", "slow gridftp", Low)
	hi := desk.Open("b", "uscms", "all jobs dying", High)
	desk.Open("c", "ligo", "stale MDS data", Medium)
	resolved := desk.Open("d", "sdss", "fixed already", High)
	desk.Resolve(resolved.ID, 0.5)
	open := desk.OpenTickets()
	if len(open) != 3 {
		t.Fatalf("open = %d", len(open))
	}
	if open[0].ID != hi.ID {
		t.Fatalf("first open ticket = %+v, want the high-severity one", open[0])
	}
	if open[1].Severity != Medium || open[2].Severity != Low {
		t.Fatal("severity ordering wrong")
	}
}

func TestSupportFTEs(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	desk := NewDesk(eng)
	// 80 hours of effort over 4 weeks = 0.5 FTE.
	for i := 0; i < 8; i++ {
		tk := desk.Open("site", "vo", "issue", Medium)
		desk.Resolve(tk.ID, 10)
	}
	got := desk.SupportFTEs(4 * 7 * 24 * time.Hour)
	if math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("FTEs = %v, want 0.5", got)
	}
	if desk.SupportFTEs(0) != 0 {
		t.Fatal("zero window should be 0")
	}
}

func TestAUP(t *testing.T) {
	p := NewAUP("usatlas", "uscms")
	if err := p.Check("/CN=alice", "usatlas"); err != nil {
		t.Fatal(err)
	}
	if err := p.Check("/CN=alice", "freeloaders"); !errors.Is(err, ErrPolicyViolated) {
		t.Fatalf("unregistered VO err = %v", err)
	}
	p.BannedSubjects["/CN=mallory"] = true
	if err := p.Check("/CN=mallory", "usatlas"); !errors.Is(err, ErrPolicyViolated) {
		t.Fatalf("banned subject err = %v", err)
	}
}

func TestStringers(t *testing.T) {
	if Low.String() != "low" || Medium.String() != "medium" || High.String() != "high" {
		t.Fatal("severity strings")
	}
	if Open.String() != "open" || Assigned.String() != "assigned" || Resolved.String() != "resolved" {
		t.Fatal("state strings")
	}
	if Severity(99).String() == "" || TicketState(99).String() == "" {
		t.Fatal("unknown values must still render")
	}
}

func TestAssignUnknownTicket(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	desk := NewDesk(eng)
	if err := desk.Assign(42, "x"); !errors.Is(err, ErrNoTicket) {
		t.Fatalf("err = %v", err)
	}
	if err := desk.Resolve(42, 1); !errors.Is(err, ErrNoTicket) {
		t.Fatalf("err = %v", err)
	}
	if desk.MeanTimeToResolve() != 0 {
		t.Fatal("MTTR with no resolved tickets should be 0")
	}
}

func TestReopenSemantics(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	desk := NewDesk(eng)
	tk := desk.Open("BNL_ATLAS_Tier1", "usatlas", "gridftp door down", Medium)

	// Reopening a still-open ticket is rejected.
	if err := desk.Reopen(tk.ID, "again", High); !errors.Is(err, ErrNotResolved) {
		t.Fatalf("reopen open ticket err = %v", err)
	}
	if err := desk.Reopen(99, "x", Low); !errors.Is(err, ErrNoTicket) {
		t.Fatalf("reopen missing ticket err = %v", err)
	}

	eng.RunUntil(2 * time.Hour)
	if err := desk.Resolve(tk.ID, 1.5); err != nil {
		t.Fatal(err)
	}

	// Same problem recurs: the ticket comes back with the new symptom,
	// severity escalates but never de-escalates.
	eng.RunUntil(10 * time.Hour)
	if err := desk.Reopen(tk.ID, "gridftp door down again, gatekeeper too", High); err != nil {
		t.Fatal(err)
	}
	got, _ := desk.Ticket(tk.ID)
	if got.State != Open || got.Reopens != 1 || got.Severity != High {
		t.Fatalf("reopened ticket = %+v", got)
	}
	if got.Opened != 0 {
		t.Fatalf("reopen must keep the original filing time, got %v", got.Opened)
	}
	if err := desk.Reopen(tk.ID, "x", Low); !errors.Is(err, ErrNotResolved) {
		t.Fatalf("double reopen err = %v", err)
	}

	// Effort accumulates across the saga; double-resolve still rejected.
	eng.RunUntil(14 * time.Hour)
	if err := desk.Resolve(tk.ID, 2.5); err != nil {
		t.Fatal(err)
	}
	got, _ = desk.Ticket(tk.ID)
	if got.EffortHours != 4.0 {
		t.Fatalf("EffortHours = %v, want accumulated 4.0", got.EffortHours)
	}
	if got.Severity != High {
		t.Fatalf("severity after de-escalating reopen attempt = %v", got.Severity)
	}
	if err := desk.Resolve(tk.ID, 1); !errors.Is(err, ErrAlreadyClosed) {
		t.Fatalf("double resolve err = %v", err)
	}
	// The whole saga counts toward MTTR: 14h open-to-final-resolve.
	if desk.MeanTimeToResolve() != 14*time.Hour {
		t.Fatalf("MTTR = %v", desk.MeanTimeToResolve())
	}
}

func TestOpenTicketsSiteFilter(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	desk := NewDesk(eng)
	desk.Open("BNL", "usatlas", "a", Low)
	desk.Open("FNAL", "uscms", "b", High)
	bnl2 := desk.Open("BNL", "ivdgl", "c", Medium)
	desk.Resolve(bnl2.ID, 0.1)

	if got := desk.OpenTickets("BNL"); len(got) != 1 || got[0].Site != "BNL" {
		t.Fatalf("OpenTickets(BNL) = %+v", got)
	}
	if got := desk.OpenTickets("BNL", "FNAL"); len(got) != 2 {
		t.Fatalf("OpenTickets(BNL, FNAL) = %d tickets", len(got))
	}
	if got := desk.OpenTickets("IU"); len(got) != 0 {
		t.Fatalf("OpenTickets(IU) = %+v", got)
	}
	if got := desk.OpenTickets(); len(got) != 2 {
		t.Fatalf("OpenTickets() = %d tickets", len(got))
	}
}
