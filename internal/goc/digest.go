package goc

import (
	"sort"

	"grid3/internal/checkpoint"
)

// HashState folds the ticket system into h: every ticket in ID order with
// its full lifecycle record, plus the ID allocator.
func (d *Desk) HashState(h *checkpoint.Hasher) {
	h.Int(int64(d.nextID))
	ids := make([]int, 0, len(d.tickets))
	for id := range d.tickets {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	h.Int(int64(len(ids)))
	for _, id := range ids {
		t := d.tickets[id]
		h.Int(int64(t.ID))
		h.String(t.Site)
		h.String(t.VO)
		h.Int(int64(t.Severity))
		h.String(t.Summary)
		h.Int(int64(t.State))
		h.String(t.Assignee)
		h.Dur(t.Opened)
		h.Dur(t.Resolved)
		h.Float(t.EffortHours)
		h.Int(int64(t.Reopens))
	}
}
