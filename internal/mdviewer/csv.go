package mdviewer

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteCSV renders the plot as CSV: a header of series names, then one row
// per X label. NaN renders as an empty cell. This is the export path the
// real MDViewer offered alongside its predefined plots.
func (p *Plot) WriteCSV(w io.Writer) error {
	if err := p.Validate(); err != nil {
		return err
	}
	cols := make([]string, 0, len(p.Series)+1)
	cols = append(cols, "t")
	for _, s := range p.Series {
		cols = append(cols, csvEscape(s.Name))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i, label := range p.XLabels {
		row := make([]string, 0, len(p.Series)+1)
		row = append(row, csvEscape(label))
		for _, s := range p.Series {
			v := s.Values[i]
			if math.IsNaN(v) {
				row = append(row, "")
			} else {
				row = append(row, fmt.Sprintf("%g", v))
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
