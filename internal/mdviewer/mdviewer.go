// Package mdviewer implements the Metrics Data Viewer (MDViewer) of §5.2:
// "analysis and display of collected metrics information ... an API for
// manipulating, comparing and viewing information and a set of predefined
// plots, parametric in arbitrary time intervals, sites and VOs, tailored
// to Grid2003 needs."
//
// Plots render as aligned text tables and horizontal bar charts — the
// medium through which the benchmark harness reproduces Figures 2-6.
package mdviewer

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// ErrRagged reports series of unequal length.
var ErrRagged = errors.New("mdviewer: series lengths disagree")

// Series is one named line of a plot.
type Series struct {
	Name   string
	Values []float64
}

// Total sums the series.
func (s Series) Total() float64 {
	t := 0.0
	for _, v := range s.Values {
		if !math.IsNaN(v) {
			t += v
		}
	}
	return t
}

// Plot is a parametric multi-series view.
type Plot struct {
	Title   string
	Unit    string
	XLabels []string
	Series  []Series
}

// Validate checks label/series agreement.
func (p *Plot) Validate() error {
	for _, s := range p.Series {
		if len(s.Values) != len(p.XLabels) {
			return fmt.Errorf("%w: %s has %d values for %d labels",
				ErrRagged, s.Name, len(s.Values), len(p.XLabels))
		}
	}
	return nil
}

// Cumulative returns a running-sum transform of the plot (the Figure 2
// "integrated" view of a differential series).
func (p *Plot) Cumulative() *Plot {
	out := &Plot{
		Title:   p.Title + " (cumulative)",
		Unit:    p.Unit,
		XLabels: append([]string(nil), p.XLabels...),
	}
	for _, s := range p.Series {
		cum := make([]float64, len(s.Values))
		run := 0.0
		for i, v := range s.Values {
			if !math.IsNaN(v) {
				run += v
			}
			cum[i] = run
		}
		out.Series = append(out.Series, Series{Name: s.Name, Values: cum})
	}
	return out
}

// SortSeriesByTotal orders series by descending total (the paper's plots
// stack the largest consumer on top).
func (p *Plot) SortSeriesByTotal() {
	sort.SliceStable(p.Series, func(i, j int) bool {
		return p.Series[i].Total() > p.Series[j].Total()
	})
}

// WriteTable renders the plot as an aligned table: one row per X label,
// one column per series, plus a TOTAL column.
func (p *Plot) WriteTable(w io.Writer) error {
	if err := p.Validate(); err != nil {
		return err
	}
	fmt.Fprintf(w, "%s", p.Title)
	if p.Unit != "" {
		fmt.Fprintf(w, " [%s]", p.Unit)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-14s", "")
	for _, s := range p.Series {
		fmt.Fprintf(w, " %14s", truncate(s.Name, 14))
	}
	fmt.Fprintf(w, " %14s\n", "TOTAL")
	for i, label := range p.XLabels {
		fmt.Fprintf(w, "%-14s", truncate(label, 14))
		rowTotal := 0.0
		for _, s := range p.Series {
			v := s.Values[i]
			if math.IsNaN(v) {
				fmt.Fprintf(w, " %14s", "-")
				continue
			}
			rowTotal += v
			fmt.Fprintf(w, " %14.1f", v)
		}
		fmt.Fprintf(w, " %14.1f\n", rowTotal)
	}
	return nil
}

// BarChart renders name→value pairs as a horizontal bar chart, descending,
// scaled to width characters.
func BarChart(w io.Writer, title, unit string, values map[string]float64, width int) {
	if width <= 0 {
		width = 40
	}
	type kv struct {
		k string
		v float64
	}
	items := make([]kv, 0, len(values))
	max := 0.0
	for k, v := range values {
		items = append(items, kv{k, v})
		if v > max {
			max = v
		}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].v != items[j].v {
			return items[i].v > items[j].v
		}
		return items[i].k < items[j].k
	})
	fmt.Fprintf(w, "%s", title)
	if unit != "" {
		fmt.Fprintf(w, " [%s]", unit)
	}
	fmt.Fprintln(w)
	for _, it := range items {
		n := 0
		if max > 0 {
			n = int(math.Round(it.v / max * float64(width)))
		}
		fmt.Fprintf(w, "  %-22s %12.1f %s\n", truncate(it.k, 22), it.v, strings.Repeat("#", n))
	}
}

// Histogram renders labeled counts (Figure 6's jobs-by-month bars).
func Histogram(w io.Writer, title string, labels []string, counts []int, width int) error {
	if len(labels) != len(counts) {
		return fmt.Errorf("%w: %d labels, %d counts", ErrRagged, len(labels), len(counts))
	}
	if width <= 0 {
		width = 40
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	fmt.Fprintln(w, title)
	for i, label := range labels {
		n := 0
		if max > 0 {
			n = int(math.Round(float64(counts[i]) / float64(max) * float64(width)))
		}
		fmt.Fprintf(w, "  %-10s %9d %s\n", label, counts[i], strings.Repeat("#", n))
	}
	return nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
