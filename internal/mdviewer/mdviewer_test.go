package mdviewer

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func samplePlot() *Plot {
	return &Plot{
		Title:   "CPU usage by VO",
		Unit:    "CPU-days",
		XLabels: []string{"day1", "day2", "day3"},
		Series: []Series{
			{Name: "uscms", Values: []float64{10, 20, 30}},
			{Name: "usatlas", Values: []float64{5, 5, 5}},
		},
	}
}

func TestValidate(t *testing.T) {
	p := samplePlot()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Series[0].Values = p.Series[0].Values[:2]
	if err := p.Validate(); !errors.Is(err, ErrRagged) {
		t.Fatalf("err = %v", err)
	}
}

func TestCumulative(t *testing.T) {
	c := samplePlot().Cumulative()
	want := []float64{10, 30, 60}
	for i, v := range c.Series[0].Values {
		if v != want[i] {
			t.Fatalf("cumulative = %v", c.Series[0].Values)
		}
	}
	if !strings.Contains(c.Title, "cumulative") {
		t.Fatal("title not marked")
	}
}

func TestCumulativeSkipsNaN(t *testing.T) {
	p := &Plot{
		XLabels: []string{"a", "b", "c"},
		Series:  []Series{{Name: "s", Values: []float64{1, math.NaN(), 2}}},
	}
	c := p.Cumulative()
	got := c.Series[0].Values
	if got[0] != 1 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("cumulative with NaN = %v", got)
	}
}

func TestSeriesTotalIgnoresNaN(t *testing.T) {
	s := Series{Values: []float64{1, math.NaN(), 2}}
	if s.Total() != 3 {
		t.Fatalf("total = %v", s.Total())
	}
}

func TestSortSeriesByTotal(t *testing.T) {
	p := samplePlot()
	p.SortSeriesByTotal()
	if p.Series[0].Name != "uscms" {
		t.Fatalf("order = %v, %v", p.Series[0].Name, p.Series[1].Name)
	}
}

func TestWriteTable(t *testing.T) {
	var sb strings.Builder
	if err := samplePlot().WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"CPU usage by VO", "[CPU-days]", "uscms", "usatlas", "TOTAL", "day2", "25.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	// NaN renders as "-" and is excluded from the total.
	p := samplePlot()
	p.Series[1].Values[1] = math.NaN()
	sb.Reset()
	p.WriteTable(&sb)
	if !strings.Contains(sb.String(), "-") || !strings.Contains(sb.String(), "20.0") {
		t.Fatalf("NaN rendering:\n%s", sb.String())
	}
	// Ragged plot refuses to render.
	p.Series[0].Values = p.Series[0].Values[:1]
	if err := p.WriteTable(&sb); err == nil {
		t.Fatal("ragged table rendered")
	}
}

func TestBarChart(t *testing.T) {
	var sb strings.Builder
	BarChart(&sb, "Data consumed", "TB", map[string]float64{
		"ivdgl": 60, "uscms": 20, "usatlas": 20, "ligo": 0,
	}, 30)
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "ivdgl") {
		t.Fatalf("largest bar not first:\n%s", out)
	}
	// Ties order lexically: usatlas before uscms.
	if !strings.Contains(lines[2], "usatlas") || !strings.Contains(lines[3], "uscms") {
		t.Fatalf("tie ordering:\n%s", out)
	}
	// The top bar is full width.
	if strings.Count(lines[1], "#") != 30 {
		t.Fatalf("bar scaling:\n%s", out)
	}
	if strings.Count(lines[4], "#") != 0 {
		t.Fatalf("zero bar should be empty:\n%s", out)
	}
}

func TestHistogram(t *testing.T) {
	var sb strings.Builder
	err := Histogram(&sb, "Jobs by month", []string{"10-2003", "11-2003"}, []int{100, 400}, 20)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "11-2003") || !strings.Contains(out, "400") {
		t.Fatalf("histogram:\n%s", out)
	}
	if err := Histogram(&sb, "x", []string{"a"}, []int{1, 2}, 10); !errors.Is(err, ErrRagged) {
		t.Fatalf("ragged err = %v", err)
	}
}

func TestTruncate(t *testing.T) {
	if got := truncate("short", 10); got != "short" {
		t.Fatalf("truncate = %q", got)
	}
	if got := truncate("averylongsitename", 10); len([]rune(got)) != 10 {
		t.Fatalf("truncate = %q (len %d)", got, len(got))
	}
}

func TestWriteCSV(t *testing.T) {
	p := samplePlot()
	p.Series[1].Values[2] = math.NaN()
	p.Series[0].Name = `with,comma`
	var sb strings.Builder
	if err := p.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != `t,"with,comma",usatlas` {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[3] != "day3,30," {
		t.Fatalf("NaN row = %q", lines[3])
	}
	p.Series[0].Values = nil
	if err := p.WriteCSV(&sb); err == nil {
		t.Fatal("ragged CSV rendered")
	}
}
