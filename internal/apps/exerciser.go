package apps

import (
	"fmt"
	"time"

	"grid3/internal/dist"
	"grid3/internal/sim"
	"grid3/internal/vo"
)

// Exerciser is the Condor group's backfill demonstrator (§4.7): "An
// exerciser backfill application provided by the Condor group tested the
// status of the batch systems and operation characteristics of each Grid3
// site. This application ran repeatedly with a low priority at 15 minute
// intervals."
type Exerciser struct {
	eng *sim.Engine
	rng *dist.RNG
	sub Submitter
	// Interval between probe submissions per site.
	Interval time.Duration
	// Priority of probe jobs (negative: pure backfill).
	Priority int

	sites    []string
	tickers  []*sim.Ticker
	seq      int
	runtimes dist.TruncatedLogNormal
}

// NewExerciser creates a backfill prober over the given sites.
func NewExerciser(eng *sim.Engine, rng *dist.RNG, sub Submitter, sites []string) *Exerciser {
	return &Exerciser{
		eng: eng, rng: rng, sub: sub,
		Interval: 15 * time.Minute,
		Priority: -10,
		sites:    append([]string(nil), sites...),
		runtimes: dist.TruncatedLogNormal{
			LN: dist.LogNormalFromMean(0.13, 0.8), // Table 1: 0.13 h mean
			Lo: (10 * time.Second).Hours(),
			Hi: 36, // Table 1: 36.45 h max
		},
	}
}

// Start arms one probe ticker per site, each with an independent phase so
// submissions don't synchronize across the grid.
func (e *Exerciser) Start() {
	for _, siteName := range e.sites {
		siteName := siteName
		phase := time.Duration(e.rng.Intn(int(e.Interval)))
		e.eng.Schedule(phase, func() {
			t := sim.NewTicker(e.eng, e.Interval, func() {
				e.probe(siteName)
			})
			e.tickers = append(e.tickers, t)
			e.probe(siteName)
		})
	}
}

// Stop halts all probing.
func (e *Exerciser) Stop() {
	for _, t := range e.tickers {
		t.Stop()
	}
}

// Submitted returns the probe count so far.
func (e *Exerciser) Submitted() int { return e.seq }

func (e *Exerciser) probe(siteName string) {
	e.seq++
	runtime := time.Duration(e.runtimes.Sample(e.rng) * float64(time.Hour))
	e.sub.SubmitJob(Request{
		ID:            fmt.Sprintf("exerciser-%06d", e.seq),
		VO:            vo.Exerciser,
		User:          "/DC=org/DC=doegrids/OU=Services/CN=condor exerciser",
		Runtime:       runtime,
		Walltime:      runtime*2 + time.Minute,
		StagingFactor: 1,
		Priority:      e.Priority,
		Preferred:     siteName,
	})
}
