// Package apps models the ten Grid3 application workloads: the seven
// Table 1 job classes (BTeV, iVDGL, LIGO, SDSS, US-ATLAS, US-CMS, and the
// Condor exerciser) plus the computer-science demonstrators (the
// Entrada/GridFTP transfer matrix of §4.7/§6.3).
//
// Each class is calibrated against the paper's Table 1 statistics — job
// counts, mean/max runtimes, peak production months, VO user counts, and
// site-affinity skew — so the full scenario regenerates the table's shape.
package apps

import (
	"fmt"
	"time"

	"grid3/internal/dist"
	"grid3/internal/sim"
	"grid3/internal/vo"
)

// Request is one job the workload hands to the grid (the submit-side view;
// the embedding system routes it through Condor-G → GRAM).
type Request struct {
	ID            string
	VO            string
	User          string // submitter DN
	Runtime       time.Duration
	Walltime      time.Duration
	StagingFactor float64
	InputBytes    int64 // staged in before execution
	OutputBytes   int64 // archived after success
	Priority      int
	// Preferred pins the job to a site by name ("favorite resources",
	// §6.4); empty means matchmake.
	Preferred string
}

// Submitter consumes job requests.
type Submitter interface {
	SubmitJob(Request)
}

// SubmitterFunc adapts a closure.
type SubmitterFunc func(Request)

// SubmitJob implements Submitter.
func (f SubmitterFunc) SubmitJob(r Request) { f(r) }

// Class describes one application demonstrator's workload.
type Class struct {
	VO    string
	Users int // Table 1 "Number of Users"
	// TotalJobs targets the Table 1 completed-job count over the window.
	TotalJobs int
	// MeanRuntime and MaxRuntime bound the lognormal runtime draw
	// (Table 1 "Avg./Max. Runtime").
	MeanRuntime time.Duration
	MaxRuntime  time.Duration
	// Sigma is the lognormal log-space spread.
	Sigma float64
	// MonthWeights apportions TotalJobs across the seven scenario months
	// (Oct 2003 .. Apr 2004); it is normalized internally.
	MonthWeights [7]float64
	// BurstMean is the mean extra jobs per submission event (production
	// systems submit assignments, not single jobs).
	BurstMean float64
	// StagingFactor is the §6.4 gatekeeper load multiplier.
	StagingFactor float64
	// InputBytes / OutputBytes are per-job data volumes.
	InputBytes  int64
	OutputBytes int64
	// AffinityProb is the probability a job is pinned to one of the VO's
	// preferred sites (producing Table 1's single-resource skew).
	AffinityProb float64
	// FavoriteShare is, among pinned jobs, the probability of picking the
	// single favorite (first preferred) site — calibrated to Table 1's
	// "Max. Prod. from Single Resource [%]" column.
	FavoriteShare float64
	// MaxSites caps how many distinct sites the class uses (Table 1
	// "Grid3 Sites Used"); 0 = no cap.
	MaxSites int
	// Priority for the local scheduler; the exerciser is negative.
	Priority int
	// UnderestimateProb is the chance a user requests too little
	// walltime, producing a walltime-kill failure (§6.2 long OSCAR jobs).
	UnderestimateProb float64
	// SurgeStart/SurgeEnd/SurgeFactor model a demonstration push: within
	// the window, submission gaps shrink by SurgeFactor. The scenario
	// sets this to the SC2003 week, when every group drove its
	// application at once (the 1300-concurrent-jobs §7 milestone landed
	// on Nov 20, mid-conference).
	SurgeStart  time.Duration
	SurgeEnd    time.Duration
	SurgeFactor float64
}

const (
	mib = int64(1) << 20
	gib = int64(1) << 30
)

// Grid3Classes returns the seven Table 1 classes with calibration
// constants from the paper.
func Grid3Classes() []Class {
	return []Class{
		{
			VO: vo.BTeV, Users: 1, TotalJobs: 2598,
			MeanRuntime: time.Duration(1.77 * float64(time.Hour)), MaxRuntime: 118 * time.Hour, Sigma: 1.1,
			// Peak 11-2003 with 91% of all production (2377/2598).
			MonthWeights:  [7]float64{0.03, 0.915, 0.02, 0.015, 0.01, 0.005, 0.005},
			BurstMean:     25, // "1000 10-hour jobs across Grid3" style assignments
			StagingFactor: 1, OutputBytes: 200 * mib,
			AffinityProb: 0.95, FavoriteShare: 0.598, MaxSites: 8, UnderestimateProb: 0.02,
		},
		{
			VO: vo.IVDGL, Users: 24, TotalJobs: 58145,
			MeanRuntime: time.Duration(1.22 * float64(time.Hour)), MaxRuntime: 292 * time.Hour, Sigma: 1.3,
			// Peak 11-2003 (25722/58145 = 44%).
			MonthWeights:  [7]float64{0.15, 0.44, 0.12, 0.09, 0.08, 0.07, 0.05},
			BurstMean:     10, // SnB and GADU batches
			StagingFactor: 1, InputBytes: 20 * mib, OutputBytes: 50 * mib,
			AffinityProb: 0.92, FavoriteShare: 0.881, MaxSites: 19, UnderestimateProb: 0.01,
		},
		{
			VO: vo.LIGO, Users: 7, TotalJobs: 3,
			MeanRuntime: 36 * time.Second, MaxRuntime: 72 * time.Second, Sigma: 0.3,
			// The ACDC sample saw only a December trickle; LIGO's real
			// pulsar workflows ran outside this accounting (§4.4).
			MonthWeights:  [7]float64{0, 0, 1, 0, 0, 0, 0},
			BurstMean:     0,
			StagingFactor: 4, InputBytes: 4 * gib,
			AffinityProb: 1.0, FavoriteShare: 1.0, MaxSites: 1,
		},
		{
			VO: vo.SDSS, Users: 9, TotalJobs: 5410,
			MeanRuntime: time.Duration(1.46 * float64(time.Hour)), MaxRuntime: 153 * time.Hour, Sigma: 1.2,
			// Peak 02-2004 (1564/5410 = 29%).
			MonthWeights:  [7]float64{0.08, 0.15, 0.11, 0.12, 0.29, 0.14, 0.11},
			BurstMean:     15, // thousand-step cluster-finding workflows
			StagingFactor: 2, InputBytes: 100 * mib, OutputBytes: 30 * mib,
			AffinityProb: 0.92, FavoriteShare: 0.716, MaxSites: 13, UnderestimateProb: 0.02,
		},
		{
			VO: vo.USATLAS, Users: 25, TotalJobs: 7455,
			MeanRuntime: time.Duration(8.81 * float64(time.Hour)), MaxRuntime: 292 * time.Hour, Sigma: 1.0,
			// Peak 11-2003 (3198/7455 = 43%), spread over 17 sites with a
			// low single-site share (28.2%).
			MonthWeights:  [7]float64{0.12, 0.43, 0.12, 0.10, 0.09, 0.08, 0.06},
			BurstMean:     20, // GCE DC assignments
			StagingFactor: 2, InputBytes: 100 * mib, OutputBytes: 2 * gib,
			AffinityProb: 0.92, FavoriteShare: 0.20, MaxSites: 18, UnderestimateProb: 0.03,
		},
		{
			VO: vo.USCMS, Users: 26, TotalJobs: 19354,
			MeanRuntime: time.Duration(41.85 * float64(time.Hour)), MaxRuntime: 1239 * time.Hour, Sigma: 1.05,
			// Peak 11-2003 (8834/19354 = 46%).
			MonthWeights:  [7]float64{0.10, 0.46, 0.12, 0.10, 0.08, 0.08, 0.06},
			BurstMean:     30, // MOP assignments
			StagingFactor: 2, InputBytes: 200 * mib, OutputBytes: 1 * gib,
			AffinityProb: 0.92, FavoriteShare: 0.484, MaxSites: 18, UnderestimateProb: 0.05, // long OSCAR jobs, §6.2
		},
		{
			VO: vo.Exerciser, Users: 3, TotalJobs: 198272,
			MeanRuntime: time.Duration(0.13 * float64(time.Hour)), MaxRuntime: 36 * time.Hour, Sigma: 0.8,
			// The exerciser is interval-driven, not burst-driven; weights
			// still matter for the rate profile (peak 12-2003).
			MonthWeights:  [7]float64{0.10, 0.15, 0.36, 0.13, 0.10, 0.09, 0.07},
			BurstMean:     0,
			StagingFactor: 1,
			AffinityProb:  1.0, FavoriteShare: 0.534, MaxSites: 14, Priority: -10,
		},
	}
}

// ClassByVO finds a class in a set.
func ClassByVO(classes []Class, voName string) (Class, bool) {
	for _, c := range classes {
		if c.VO == voName {
			return c, true
		}
	}
	return Class{}, false
}

// UserDNs synthesizes the class's member DNs (registered in VOMS by the
// embedding system).
func (c *Class) UserDNs() []string {
	out := make([]string, c.Users)
	for i := range out {
		out[i] = fmt.Sprintf("/DC=org/DC=doegrids/OU=People/CN=%s user %02d", c.VO, i)
	}
	return out
}

// MonthWindow is one calendar month slice of the scenario.
type MonthWindow struct {
	Start, End time.Duration
	Label      string
}

// MonthWindows splits [0, horizon) anchored at epoch into calendar months.
func MonthWindows(epoch time.Time, horizon time.Duration) []MonthWindow {
	var out []MonthWindow
	cur := epoch
	for epochOffset(epoch, cur) < horizon {
		next := time.Date(cur.Year(), cur.Month()+1, 1, 0, 0, 0, 0, time.UTC)
		start := epochOffset(epoch, cur)
		end := epochOffset(epoch, next)
		if end > horizon {
			end = horizon
		}
		out = append(out, MonthWindow{
			Start: start, End: end,
			Label: fmt.Sprintf("%02d-%d", int(cur.Month()), cur.Year()),
		})
		cur = next
	}
	return out
}

func epochOffset(epoch, t time.Time) time.Duration { return t.Sub(epoch) }

// Generator drives one class's submissions over the scenario.
type Generator struct {
	eng   *sim.Engine
	rng   *dist.RNG
	class Class
	sub   Submitter
	epoch time.Time
	// PreferredSites receives affinity-pinned jobs (round-robin weighted
	// toward the first entry, matching the single-site skew).
	PreferredSites []string

	users     []string
	runtimes  dist.TruncatedLogNormal
	submitted int
	horizon   time.Duration
}

// NewGenerator builds a generator for one class.
func NewGenerator(eng *sim.Engine, rng *dist.RNG, epoch time.Time, class Class, sub Submitter, preferred []string) *Generator {
	minRT := time.Second
	return &Generator{
		eng: eng, rng: rng, class: class, sub: sub, epoch: epoch,
		PreferredSites: preferred,
		users:          class.UserDNs(),
		runtimes: dist.TruncatedLogNormal{
			LN: dist.LogNormalFromMean(class.MeanRuntime.Hours(), class.Sigma),
			Lo: minRT.Hours(),
			Hi: class.MaxRuntime.Hours(),
		},
	}
}

// Submitted returns how many jobs the generator has produced.
func (g *Generator) Submitted() int { return g.submitted }

// Start schedules the class's submission process across [0, horizon).
func (g *Generator) Start(horizon time.Duration) {
	g.horizon = horizon
	months := MonthWindows(g.epoch, horizon)
	var totalW float64
	for i := range months {
		if i < len(g.class.MonthWeights) {
			totalW += g.class.MonthWeights[i]
		}
	}
	if totalW == 0 {
		return
	}
	for i, mw := range months {
		if i >= len(g.class.MonthWeights) {
			break
		}
		w := g.class.MonthWeights[i] / totalW
		target := float64(g.class.TotalJobs) * w
		if target < 0.5 {
			continue
		}
		g.scheduleMonth(mw, target)
	}
}

// scheduleMonth arms a Poisson submission process covering one month.
func (g *Generator) scheduleMonth(mw MonthWindow, targetJobs float64) {
	burst := g.class.BurstMean
	if burst < 0 {
		burst = 0
	}
	meanPerEvent := 1 + burst
	events := targetJobs / meanPerEvent
	if events < 1 {
		events = 1
	}
	meanGap := time.Duration(float64(mw.End-mw.Start) / events)
	// A surge compresses submissions inside its window without inflating
	// the month's calibrated total: stretch the baseline gap by the
	// expected surge gain so the two effects cancel.
	if c := &g.class; c.SurgeFactor > 1 {
		lo, hi := c.SurgeStart, c.SurgeEnd
		if lo < mw.Start {
			lo = mw.Start
		}
		if hi > mw.End {
			hi = mw.End
		}
		if hi > lo {
			span := float64(mw.End - mw.Start)
			surge := float64(hi - lo)
			inflation := (span - surge + surge*c.SurgeFactor) / span
			meanGap = time.Duration(float64(meanGap) * inflation)
		}
	}
	var arm func(at time.Duration)
	arm = func(at time.Duration) {
		if at >= mw.End || at >= g.horizon {
			return
		}
		g.eng.At(at, func() {
			n := 1
			if burst > 0 {
				n += g.rng.Poisson(burst)
			}
			for i := 0; i < n; i++ {
				g.emit()
			}
			gap := g.rng.ExpDuration(meanGap)
			now := g.eng.Now()
			if c := &g.class; c.SurgeFactor > 1 && now >= c.SurgeStart && now < c.SurgeEnd {
				gap = time.Duration(float64(gap) / c.SurgeFactor)
			}
			arm(now + gap)
		})
	}
	arm(mw.Start + g.rng.ExpDuration(meanGap))
}

// emit produces one job request.
func (g *Generator) emit() {
	c := &g.class
	g.submitted++
	runtime := time.Duration(g.runtimes.Sample(g.rng) * float64(time.Hour))
	if runtime < time.Second {
		runtime = time.Second
	}
	var walltime time.Duration
	if g.rng.Bernoulli(c.UnderestimateProb) {
		walltime = time.Duration(float64(runtime) * g.rng.Uniform(0.5, 0.95))
	} else {
		walltime = time.Duration(float64(runtime) * g.rng.Uniform(1.2, 2.5))
	}
	if walltime < time.Minute {
		walltime = time.Minute
	}
	req := Request{
		ID:            fmt.Sprintf("%s-%06d", c.VO, g.submitted),
		VO:            c.VO,
		User:          g.users[g.rng.Intn(len(g.users))],
		Runtime:       runtime,
		Walltime:      walltime,
		StagingFactor: c.StagingFactor,
		InputBytes:    c.InputBytes,
		OutputBytes:   c.OutputBytes,
		Priority:      c.Priority,
	}
	if len(g.PreferredSites) > 0 && g.rng.Bernoulli(c.AffinityProb) {
		// Weight the first preferred site by the class's calibrated
		// single-resource share (Table 1's "Max. Prod." column).
		fav := c.FavoriteShare
		if fav == 0 {
			fav = 0.5
		}
		if g.rng.Bernoulli(fav) {
			req.Preferred = g.PreferredSites[0]
		} else {
			req.Preferred = g.PreferredSites[g.rng.Intn(len(g.PreferredSites))]
		}
	}
	g.sub.SubmitJob(req)
}
