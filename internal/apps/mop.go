package apps

import (
	"fmt"
	"time"

	"grid3/internal/dagman"
	"grid3/internal/dist"
)

// MOP (§4.2) is the CMS production framework: "CMS Production jobs are
// specified by reading input parameters from a control database and
// converting them to DAGs suitable for submission to Condor-G/DAGMan."
// MCRunJob configures the workflow; MOP writes the DAG. Each assignment
// becomes a fan of independent simulation jobs plus a merge/collect step.

// Assignment is one row of the MOP control database.
type Assignment struct {
	ID     string
	Events int
	// Kind selects the application: "cmsim" (GEANT3 FORTRAN, shorter) or
	// "oscar" (GEANT4 C++, 30 h+ per job, §6.2).
	Kind string
	// EventsPerJob controls the fan-out (default 250).
	EventsPerJob int
}

// jobRuntime returns the mean runtime per job for an assignment kind.
func (a *Assignment) jobRuntime() time.Duration {
	if a.Kind == "oscar" {
		return 34 * time.Hour
	}
	return 6 * time.Hour
}

// MOPJob is one planned grid job of an assignment DAG.
type MOPJob struct {
	Request Request
	// Collect marks the final summary/registration step.
	Collect bool
}

// BuildDAG converts an assignment into a DAGMan DAG: N independent
// simulation nodes feeding one collect node. submit is invoked per node
// when DAGMan schedules it; it must call done exactly once.
func (a *Assignment) BuildDAG(rng *dist.RNG, user string, submit func(MOPJob, func(error))) (*dagman.DAG, error) {
	per := a.EventsPerJob
	if per <= 0 {
		per = 250
	}
	jobs := (a.Events + per - 1) / per
	if jobs < 1 {
		jobs = 1
	}
	d := dagman.New()
	for i := 0; i < jobs; i++ {
		runtime := rng.Jitter(a.jobRuntime(), 0.4)
		req := Request{
			ID:            fmt.Sprintf("%s-%03d", a.ID, i),
			VO:            "uscms",
			User:          user,
			Runtime:       runtime,
			Walltime:      runtime * 2,
			StagingFactor: 2,
			InputBytes:    200 << 20,
			OutputBytes:   1 << 30,
		}
		job := MOPJob{Request: req}
		if err := d.Add(&dagman.Node{
			Name:    req.ID,
			Retries: 2,
			Work: func(done func(error)) {
				submit(job, done)
			},
		}); err != nil {
			return nil, err
		}
	}
	collectReq := Request{
		ID:       a.ID + "-collect",
		VO:       "uscms",
		User:     user,
		Runtime:  30 * time.Minute,
		Walltime: 2 * time.Hour,
	}
	collect := MOPJob{Request: collectReq, Collect: true}
	if err := d.Add(&dagman.Node{
		Name: collectReq.ID,
		Work: func(done func(error)) {
			submit(collect, done)
		},
	}); err != nil {
		return nil, err
	}
	for i := 0; i < jobs; i++ {
		if err := d.AddEdge(fmt.Sprintf("%s-%03d", a.ID, i), collectReq.ID); err != nil {
			return nil, err
		}
	}
	return d, nil
}
