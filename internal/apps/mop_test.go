package apps

import (
	"errors"
	"strings"
	"testing"

	"grid3/internal/dagman"
	"grid3/internal/dist"
)

func TestMOPBuildDAGShape(t *testing.T) {
	a := Assignment{ID: "mop-007", Events: 1000, Kind: "oscar", EventsPerJob: 250}
	rng := dist.New(4)
	var submitted []MOPJob
	d, err := a.BuildDAG(rng, "/CN=cms-prod", func(j MOPJob, done func(error)) {
		submitted = append(submitted, j)
		done(nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 simulation nodes + collect.
	if d.Len() != 5 {
		t.Fatalf("dag size = %d", d.Len())
	}
	var res dagman.Result
	if err := dagman.NewRunner(d).Run(func(r dagman.Result) { res = r }); err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded() || len(submitted) != 5 {
		t.Fatalf("res = %+v, submitted = %d", res, len(submitted))
	}
	// Collect runs last and is marked.
	last := submitted[len(submitted)-1]
	if !last.Collect || !strings.HasSuffix(last.Request.ID, "-collect") {
		t.Fatalf("last job = %+v", last)
	}
	// OSCAR jobs are long (§6.2: "some more than 30 hours").
	long := 0
	for _, j := range submitted[:4] {
		if j.Request.Runtime.Hours() > 20 {
			long++
		}
		if j.Request.VO != "uscms" || j.Request.OutputBytes != 1<<30 {
			t.Fatalf("request = %+v", j.Request)
		}
	}
	if long == 0 {
		t.Fatal("no long OSCAR jobs generated")
	}
}

func TestMOPCollectWaitsForFailures(t *testing.T) {
	a := Assignment{ID: "mop-008", Events: 500, Kind: "cmsim"}
	rng := dist.New(5)
	collectRan := false
	d, err := a.BuildDAG(rng, "/CN=cms-prod", func(j MOPJob, done func(error)) {
		if j.Collect {
			collectRan = true
			done(nil)
			return
		}
		done(errors.New("site service failure"))
	})
	if err != nil {
		t.Fatal(err)
	}
	var res dagman.Result
	dagman.NewRunner(d).Run(func(r dagman.Result) { res = r })
	if res.Succeeded() {
		t.Fatal("DAG succeeded despite failing simulation jobs")
	}
	if collectRan {
		t.Fatal("collect ran although its parents failed")
	}
	// Retries were attempted (2 per node).
	n, _ := d.Node("mop-008-000")
	if n.Attempts() != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", n.Attempts())
	}
}

func TestMOPDefaults(t *testing.T) {
	a := Assignment{ID: "d", Events: 10, Kind: "cmsim"} // EventsPerJob default 250
	d, err := a.BuildDAG(dist.New(1), "/CN=u", func(j MOPJob, done func(error)) { done(nil) })
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 { // one sim job + collect
		t.Fatalf("dag size = %d", d.Len())
	}
	if a.jobRuntime().Hours() > 10 {
		t.Fatal("cmsim runtime should be short")
	}
}
