package apps

import (
	"math"
	"testing"
	"time"

	"grid3/internal/dist"
	"grid3/internal/sim"
	"grid3/internal/vo"
)

const scenarioHorizon = 183 * 24 * time.Hour // Oct 23 2003 – Apr 23 2004

func TestGrid3ClassesCalibration(t *testing.T) {
	classes := Grid3Classes()
	if len(classes) != 7 {
		t.Fatalf("classes = %d", len(classes))
	}
	users := 0
	for _, c := range classes {
		users += c.Users
		if c.TotalJobs <= 0 || c.MeanRuntime <= 0 || c.MaxRuntime < c.MeanRuntime {
			t.Errorf("class %s has bad calibration: %+v", c.VO, c)
		}
		var sum float64
		for _, w := range c.MonthWeights {
			if w < 0 {
				t.Errorf("class %s negative month weight", c.VO)
			}
			sum += w
		}
		if sum <= 0 {
			t.Errorf("class %s has no production profile", c.VO)
		}
		if len(c.UserDNs()) != c.Users {
			t.Errorf("class %s UserDNs = %d", c.VO, len(c.UserDNs()))
		}
	}
	// Table 1 user total: 1+24+7+9+25+26+3 = 95 (plus admins elsewhere).
	if users != 95 {
		t.Fatalf("total users = %d, want 95", users)
	}
	if _, ok := ClassByVO(classes, vo.USCMS); !ok {
		t.Fatal("ClassByVO failed")
	}
	if _, ok := ClassByVO(classes, "nope"); ok {
		t.Fatal("phantom class")
	}
}

func TestMonthWindows(t *testing.T) {
	ws := MonthWindows(sim.Grid3Epoch, scenarioHorizon)
	if len(ws) != 7 {
		t.Fatalf("windows = %d: %v", len(ws), ws)
	}
	if ws[0].Label != "10-2003" || ws[6].Label != "04-2004" {
		t.Fatalf("labels = %v .. %v", ws[0].Label, ws[6].Label)
	}
	// October window is the 9 partial days from Oct 23.
	if ws[0].Start != 0 || ws[0].End != 9*24*time.Hour {
		t.Fatalf("october window = %+v", ws[0])
	}
	// February 2004 is a leap month: 29 days.
	feb := ws[4]
	if feb.Label != "02-2004" || feb.End-feb.Start != 29*24*time.Hour {
		t.Fatalf("february window = %+v", feb)
	}
	// Contiguous coverage.
	for i := 1; i < len(ws); i++ {
		if ws[i].Start != ws[i-1].End {
			t.Fatalf("gap between %+v and %+v", ws[i-1], ws[i])
		}
	}
	if ws[6].End != scenarioHorizon {
		t.Fatalf("horizon clamp = %v", ws[6].End)
	}
}

func TestGeneratorJobCountAndRuntimes(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	rng := dist.New(42)
	var reqs []Request
	classes := Grid3Classes()
	cms, _ := ClassByVO(classes, vo.USCMS)
	g := NewGenerator(eng, rng, sim.Grid3Epoch, cms, SubmitterFunc(func(r Request) {
		reqs = append(reqs, r)
	}), []string{"FNAL", "UFlorida", "UCSD"})
	g.Start(scenarioHorizon)
	eng.RunUntil(scenarioHorizon)

	n := len(reqs)
	if math.Abs(float64(n)-float64(cms.TotalJobs))/float64(cms.TotalJobs) > 0.15 {
		t.Fatalf("generated %d jobs, want ~%d", n, cms.TotalJobs)
	}
	// Mean runtime tracks the Table 1 column.
	var sum time.Duration
	var maxRT time.Duration
	pinned := 0
	fnal := 0
	under := 0
	for _, r := range reqs {
		sum += r.Runtime
		if r.Runtime > maxRT {
			maxRT = r.Runtime
		}
		if r.Preferred != "" {
			pinned++
			if r.Preferred == "FNAL" {
				fnal++
			}
		}
		if r.Walltime < r.Runtime {
			under++
		}
		if r.VO != vo.USCMS || r.User == "" || r.ID == "" {
			t.Fatalf("malformed request %+v", r)
		}
	}
	meanH := sum.Hours() / float64(n)
	if math.Abs(meanH-41.85)/41.85 > 0.20 {
		t.Fatalf("mean runtime = %.2f h, want ~41.85", meanH)
	}
	if maxRT > 1239*time.Hour {
		t.Fatalf("max runtime %v beyond Table 1 cap", maxRT)
	}
	// Affinity: pinned fraction tracks the class's calibrated probability,
	// and the favorite site dominates within the pinned set.
	pinFrac := float64(pinned) / float64(n)
	if math.Abs(pinFrac-cms.AffinityProb) > 0.1 {
		t.Fatalf("pinned fraction = %.2f, want ~%.2f", pinFrac, cms.AffinityProb)
	}
	favFrac := float64(fnal) / float64(pinned)
	if math.Abs(favFrac-cms.FavoriteShare-(1-cms.FavoriteShare)/3) > 0.12 {
		t.Fatalf("favorite-site share = %.2f", favFrac)
	}
	// A few percent underestimate their walltime.
	underFrac := float64(under) / float64(n)
	if underFrac < 0.01 || underFrac > 0.12 {
		t.Fatalf("underestimate fraction = %.3f", underFrac)
	}
}

func TestGeneratorMonthProfile(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	rng := dist.New(7)
	byMonth := map[string]int{}
	classes := Grid3Classes()
	btev, _ := ClassByVO(classes, vo.BTeV)
	months := MonthWindows(sim.Grid3Epoch, scenarioHorizon)
	g := NewGenerator(eng, rng, sim.Grid3Epoch, btev, SubmitterFunc(func(r Request) {
		now := eng.Now()
		for _, m := range months {
			if now >= m.Start && now < m.End {
				byMonth[m.Label]++
				return
			}
		}
	}), nil)
	g.Start(scenarioHorizon)
	eng.RunUntil(scenarioHorizon)
	// BTeV's production peaks hard in November 2003 (91% weight).
	total := 0
	for _, n := range byMonth {
		total += n
	}
	if total == 0 {
		t.Fatal("nothing generated")
	}
	novShare := float64(byMonth["11-2003"]) / float64(total)
	if novShare < 0.75 {
		t.Fatalf("november share = %.2f (%v)", novShare, byMonth)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	gen := func() []Request {
		eng := sim.NewEngine(sim.Grid3Epoch)
		rng := dist.New(99)
		var reqs []Request
		classes := Grid3Classes()
		sdss, _ := ClassByVO(classes, vo.SDSS)
		g := NewGenerator(eng, rng, sim.Grid3Epoch, sdss, SubmitterFunc(func(r Request) {
			reqs = append(reqs, r)
		}), []string{"FNAL"})
		g.Start(scenarioHorizon)
		eng.RunUntil(scenarioHorizon)
		return reqs
	}
	a, b := gen(), gen()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestExerciserInterval(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	rng := dist.New(5)
	count := 0
	perSite := map[string]int{}
	ex := NewExerciser(eng, rng, SubmitterFunc(func(r Request) {
		count++
		perSite[r.Preferred]++
		if r.Priority >= 0 {
			t.Fatal("exerciser probe not low priority")
		}
		if r.VO != vo.Exerciser {
			t.Fatalf("probe VO = %s", r.VO)
		}
	}), []string{"IU", "UNM", "OU"})
	ex.Start()
	eng.RunUntil(24 * time.Hour)
	ex.Stop()
	// 3 sites × 96 probes/day (every 15 min) + initial probes ≈ 291.
	if count < 280 || count > 300 {
		t.Fatalf("probes in a day = %d, want ~290", count)
	}
	for _, s := range []string{"IU", "UNM", "OU"} {
		if perSite[s] < 90 {
			t.Fatalf("site %s probed %d times", s, perSite[s])
		}
	}
	at := count
	eng.RunUntil(48 * time.Hour)
	if count != at {
		t.Fatal("probes continued after Stop")
	}
}

// memTransferSvc completes transfers instantly.
type memTransferSvc struct {
	calls int
	bytes int64
	fail  bool
}

func (m *memTransferSvc) StartTransfer(src, dst string, n int64, label string, done func(error)) {
	m.calls++
	m.bytes += n
	if m.fail {
		done(errTest)
		return
	}
	done(nil)
}

var errTest = &testErr{}

type testErr struct{}

func (*testErr) Error() string { return "test" }

func TestTransferDemoDailyTarget(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	rng := dist.New(3)
	svc := &memTransferSvc{}
	d := NewTransferDemo(eng, rng, svc, []string{"BNL", "FNAL", "UC", "Caltech"})
	d.Start()
	eng.RunUntil(10 * 24 * time.Hour)
	d.Stop()
	rate := d.DailyRate(eng.Now())
	target := float64(d.DailyTargetBytes)
	if math.Abs(rate-target)/target > 0.25 {
		t.Fatalf("daily rate = %.2f TB, want ~%.2f TB",
			rate/(1<<40), target/(1<<40))
	}
	if d.Completed() != d.Started() || d.Failed() != 0 {
		t.Fatalf("counters: started %d completed %d failed %d", d.Started(), d.Completed(), d.Failed())
	}
}

func TestTransferDemoFailuresCounted(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	rng := dist.New(3)
	svc := &memTransferSvc{fail: true}
	d := NewTransferDemo(eng, rng, svc, []string{"A", "B"})
	d.Start()
	eng.RunUntil(2 * time.Hour)
	d.Stop()
	if d.Failed() == 0 || d.Completed() != 0 {
		t.Fatalf("failed %d completed %d", d.Failed(), d.Completed())
	}
	if d.BytesMoved() != 0 {
		t.Fatal("failed transfers counted as moved bytes")
	}
}

func TestTransferDemoNeedsTwoSites(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	svc := &memTransferSvc{}
	d := NewTransferDemo(eng, dist.New(1), svc, []string{"only"})
	d.Start()
	eng.RunUntil(2 * time.Hour)
	d.Stop()
	if svc.calls != 0 {
		t.Fatal("single-site matrix transferred")
	}
}
