package apps

import (
	"time"

	"grid3/internal/dist"
	"grid3/internal/sim"
	"grid3/internal/vo"
)

// TransferService is the data-movement surface the demonstrator drives
// (the simulated GridFTP network in scenarios).
type TransferService interface {
	StartTransfer(src, dst string, bytes int64, label string, done func(error))
}

// TransferDemo is the §4.7/§6.3 data transfer study: "A Java-based plug-in
// environment (Entrada) was used to generate simulated traffic between a
// matrix of sites in a periodic fashion." The demonstrator sustained the
// 2 TB/day §7 milestone and accounted for most of Figure 5's ~100 TB.
type TransferDemo struct {
	eng *sim.Engine
	rng *dist.RNG
	svc TransferService
	// Sites is the transfer matrix.
	Sites []string
	// Interval between matrix sweeps.
	Interval time.Duration
	// DailyTargetBytes is the aggregate volume goal per 24 h.
	DailyTargetBytes int64
	// PairsPerSweep bounds concurrent flows per sweep.
	PairsPerSweep int

	ticker    *sim.Ticker
	started   int64
	completed int64
	failed    int64
	bytesDone int64
	sizes     dist.BoundedPareto
	cursor    int
}

// NewTransferDemo creates the demonstrator with the §6.3 defaults:
// half-hourly sweeps targeting 2 TB/day.
func NewTransferDemo(eng *sim.Engine, rng *dist.RNG, svc TransferService, sites []string) *TransferDemo {
	return &TransferDemo{
		eng: eng, rng: rng, svc: svc,
		Sites:            append([]string(nil), sites...),
		Interval:         30 * time.Minute,
		DailyTargetBytes: 2 << 40, // 2 TiB/day
		PairsPerSweep:    8,
		sizes:            dist.BoundedPareto{L: 1 << 30, H: 16 << 30, Alpha: 1.15},
	}
}

// Start begins periodic sweeps.
func (d *TransferDemo) Start() {
	d.ticker = sim.NewTicker(d.eng, d.Interval, d.sweep)
}

// Stop halts sweeps; in-flight transfers complete.
func (d *TransferDemo) Stop() {
	if d.ticker != nil {
		d.ticker.Stop()
	}
}

// Started, Completed, Failed and BytesMoved expose demonstrator counters.
func (d *TransferDemo) Started() int64 { return d.started }

// Completed returns successful transfers.
func (d *TransferDemo) Completed() int64 { return d.completed }

// Failed returns interrupted transfers.
func (d *TransferDemo) Failed() int64 { return d.failed }

// BytesMoved returns total completed volume.
func (d *TransferDemo) BytesMoved() int64 { return d.bytesDone }

// DailyRate returns the achieved average bytes/day so far.
func (d *TransferDemo) DailyRate(now time.Duration) float64 {
	if now <= 0 {
		return 0
	}
	return float64(d.bytesDone) / (float64(now) / float64(24*time.Hour))
}

// sweep launches one periodic batch of matrix transfers sized so the
// aggregate tracks the daily target.
func (d *TransferDemo) sweep() {
	if len(d.Sites) < 2 {
		return
	}
	perSweep := float64(d.DailyTargetBytes) * float64(d.Interval) / float64(24*time.Hour)
	var launched float64
	// Launch flows until the sweep's volume share is covered; PairsPerSweep
	// only bounds pathological configurations.
	maxPairs := d.PairsPerSweep
	if maxPairs < 512 {
		maxPairs = 512
	}
	for i := 0; i < maxPairs && launched < perSweep; i++ {
		src := d.Sites[d.cursor%len(d.Sites)]
		dst := d.Sites[(d.cursor+1+d.rng.Intn(len(d.Sites)-1))%len(d.Sites)]
		d.cursor++
		if src == dst {
			continue
		}
		size := int64(d.sizes.Sample(d.rng))
		if remaining := perSweep - launched; float64(size) > remaining {
			size = int64(remaining)
		}
		if size < 1<<20 {
			size = 1 << 20
		}
		launched += float64(size)
		d.started++
		sz := size
		d.svc.StartTransfer(src, dst, sz, vo.IVDGL, func(err error) {
			if err != nil {
				d.failed++
				return
			}
			d.completed++
			d.bytesDone += sz
		})
	}
}
