package pacman

import (
	"errors"
	"fmt"
	"testing"
)

func buildCache(pkgs map[string][]string) *Cache {
	c := NewCache("test")
	for name, deps := range pkgs {
		c.Add(&Package{Name: name, Version: "1.0", Depends: deps})
	}
	return c
}

func TestResolveOrder(t *testing.T) {
	c := buildCache(map[string][]string{
		"grid3":  {"vdt", "monalisa"},
		"vdt":    {"globus", "condor"},
		"globus": nil, "condor": nil, "monalisa": nil,
	})
	order, err := Resolve(c, "grid3")
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, p := range order {
		pos[p.Name] = i
	}
	if len(order) != 5 {
		t.Fatalf("order has %d packages: %v", len(order), pos)
	}
	deps := map[string][]string{
		"grid3": {"vdt", "monalisa"}, "vdt": {"globus", "condor"},
	}
	for pkg, ds := range deps {
		for _, d := range ds {
			if pos[d] > pos[pkg] {
				t.Fatalf("dependency %s installs after %s", d, pkg)
			}
		}
	}
}

func TestResolveDeterministic(t *testing.T) {
	c := buildCache(map[string][]string{
		"a": {"z", "m", "b"}, "z": nil, "m": nil, "b": nil,
	})
	first, _ := Resolve(c, "a")
	for i := 0; i < 10; i++ {
		again, _ := Resolve(c, "a")
		for k := range first {
			if first[k].Name != again[k].Name {
				t.Fatalf("resolve order unstable: %v vs %v", first, again)
			}
		}
	}
	// Dependencies resolve in sorted order.
	if first[0].Name != "b" || first[1].Name != "m" || first[2].Name != "z" {
		t.Fatalf("deps not sorted: %v %v %v", first[0].Name, first[1].Name, first[2].Name)
	}
}

func TestResolveCycle(t *testing.T) {
	c := buildCache(map[string][]string{
		"a": {"b"}, "b": {"c"}, "c": {"a"},
	})
	if _, err := Resolve(c, "a"); !errors.Is(err, ErrCycle) {
		t.Fatalf("cycle err = %v", err)
	}
}

func TestResolveMissing(t *testing.T) {
	c := buildCache(map[string][]string{"a": {"ghost"}})
	if _, err := Resolve(c, "a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing err = %v", err)
	}
	if _, err := Resolve(c, "phantom"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing root err = %v", err)
	}
}

func TestCacheChaining(t *testing.T) {
	igoc := NewCache("igoc")
	igoc.Add(&Package{Name: "vdt", Version: "1.1.8"})
	local := NewCache("site-local")
	local.Add(&Package{Name: "local-tweak", Version: "0.1", Depends: []string{"vdt"}})
	local.Trust(igoc)
	order, err := Resolve(local, "local-tweak")
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0].Name != "vdt" {
		t.Fatalf("chained resolve = %v", order)
	}
	// Local overrides shadow upstream.
	local.Add(&Package{Name: "vdt", Version: "1.1.8-patched"})
	p, err := local.Lookup("vdt")
	if err != nil || p.Version != "1.1.8-patched" {
		t.Fatalf("override lookup = %v, %v", p, err)
	}
	// Cache loops don't hang.
	igoc.Trust(local)
	if _, err := local.Lookup("nothing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("loop lookup err = %v", err)
	}
}

func TestInstallSkipsInstalled(t *testing.T) {
	c := buildCache(map[string][]string{
		"app": {"lib"}, "lib": nil,
	})
	tgt := NewMemTarget()
	first, err := Install(c, tgt, "app")
	if err != nil || len(first) != 2 {
		t.Fatalf("first install = %v, %v", first, err)
	}
	second, err := Install(c, tgt, "app")
	if err != nil || len(second) != 0 {
		t.Fatalf("reinstall should be empty: %v, %v", second, err)
	}
}

func TestInstallSetupHookAndFailure(t *testing.T) {
	c := NewCache("t")
	ran := []string{}
	c.Add(&Package{Name: "base", Version: "1", Setup: func(Target) error {
		ran = append(ran, "base")
		return nil
	}})
	c.Add(&Package{Name: "broken", Version: "1", Depends: []string{"base"}, Setup: func(Target) error {
		return fmt.Errorf("no write permission in $APP")
	}})
	c.Add(&Package{Name: "top", Version: "1", Depends: []string{"broken"}})
	tgt := NewMemTarget()
	installed, err := Install(c, tgt, "top")
	if !errors.Is(err, ErrInstallFailed) {
		t.Fatalf("err = %v", err)
	}
	if len(installed) != 1 || installed[0].Name != "base" {
		t.Fatalf("partial install = %v", installed)
	}
	if len(ran) != 1 {
		t.Fatalf("setup hooks ran = %v", ran)
	}
}

func TestInstallRecordsPaths(t *testing.T) {
	c := NewCache("t")
	c.Add(&Package{Name: "grid3", Version: "1.0", Paths: []string{"/opt/grid3", "$APP"}})
	tgt := NewMemTarget()
	if _, err := Install(c, tgt, "grid3"); err != nil {
		t.Fatal(err)
	}
	if len(tgt.Files) != 2 || tgt.Files[0] != "/opt/grid3" {
		t.Fatalf("paths = %v", tgt.Files)
	}
	if !tgt.Installed("grid3-1.0") {
		t.Fatal("not recorded")
	}
}

func TestPackagesSorted(t *testing.T) {
	c := buildCache(map[string][]string{"zz": nil, "aa": nil, "mm": nil})
	got := c.Packages()
	if len(got) != 3 || got[0] != "aa" || got[2] != "zz" {
		t.Fatalf("Packages = %v", got)
	}
}
