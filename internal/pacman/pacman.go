// Package pacman implements the Pacman packaging and configuration tool
// used to deploy Grid3 (§5.1): named package caches, dependency
// resolution with cycle and version-conflict detection, and transactional
// installation into a target environment.
//
// "A Pacman package encoded the basic VDT-based Grid3 installation" — a
// single `pacman -get Grid3` gave a site the entire middleware stack. The
// iGOC hosted the authoritative Pacman cache.
package pacman

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Errors.
var (
	ErrNotFound        = errors.New("pacman: package not found in any cache")
	ErrCycle           = errors.New("pacman: dependency cycle")
	ErrVersionConflict = errors.New("pacman: conflicting versions required")
	ErrInstallFailed   = errors.New("pacman: installation failed")
)

// Package is one installable unit.
type Package struct {
	Name    string
	Version string
	// Depends lists required package names (resolved in the same cache
	// chain). Versions are whatever the cache carries; requiring two
	// different versions of one name is a conflict.
	Depends []string
	// Paths are filesystem locations the package creates, recorded in the
	// target (used by the Grid3 schema extensions: $APP, $DATA, VDT
	// location).
	Paths []string
	// Setup optionally runs after the package lands on a target;
	// returning an error aborts the transaction.
	Setup func(target Target) error
}

// ID renders name-version.
func (p *Package) ID() string { return p.Name + "-" + p.Version }

// Cache is a named Pacman repository. Caches chain: a lookup falls through
// to trusted upstream caches (the "trusted caches" mechanism Pacman used).
type Cache struct {
	Name     string
	packages map[string]*Package
	upstream []*Cache
}

// NewCache creates an empty cache.
func NewCache(name string) *Cache {
	return &Cache{Name: name, packages: make(map[string]*Package)}
}

// Add registers a package, replacing any same-name entry.
func (c *Cache) Add(p *Package) {
	if p.Name == "" {
		panic("pacman: package without name")
	}
	c.packages[p.Name] = p
}

// Trust chains an upstream cache, consulted after this one.
func (c *Cache) Trust(up *Cache) { c.upstream = append(c.upstream, up) }

// Clone returns a new cache named name carrying this cache's packages.
// Upstream links are not copied: a clone is a frozen release snapshot, the
// way the iGOC cut an updated cache by replacing a few packages while
// inheriting the rest of the graph. Packages are shared, not deep-copied —
// they are immutable once published.
func (c *Cache) Clone(name string) *Cache {
	out := NewCache(name)
	for n, p := range c.packages {
		out.packages[n] = p
	}
	return out
}

// Lookup finds a package by name in this cache or its upstream chain.
func (c *Cache) Lookup(name string) (*Package, error) {
	return c.lookup(name, map[*Cache]bool{})
}

func (c *Cache) lookup(name string, seen map[*Cache]bool) (*Package, error) {
	if seen[c] {
		return nil, fmt.Errorf("%w: %s (cache loop)", ErrNotFound, name)
	}
	seen[c] = true
	if p, ok := c.packages[name]; ok {
		return p, nil
	}
	for _, up := range c.upstream {
		if p, err := up.lookup(name, seen); err == nil {
			return p, nil
		}
	}
	return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
}

// Packages returns the names in this cache (not upstreams), sorted.
func (c *Cache) Packages() []string {
	out := make([]string, 0, len(c.packages))
	for n := range c.packages {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Target is an installation destination: a site's software area.
type Target interface {
	// Installed reports whether a package (by exact ID) is present.
	Installed(id string) bool
	// Record marks a package as installed and registers its paths.
	Record(p *Package) error
}

// Resolve computes a dependency-closed install order for the named roots:
// dependencies before dependents, deterministic, with cycle and
// version-conflict detection.
func Resolve(cache *Cache, roots ...string) ([]*Package, error) {
	var order []*Package
	state := map[string]int{} // 0 unseen, 1 visiting, 2 done
	chosen := map[string]*Package{}
	var path []string

	var visit func(name string) error
	visit = func(name string) error {
		switch state[name] {
		case 1:
			return fmt.Errorf("%w: %s", ErrCycle, strings.Join(append(path, name), " -> "))
		case 2:
			return nil
		}
		p, err := cache.Lookup(name)
		if err != nil {
			return err
		}
		if prev, ok := chosen[p.Name]; ok && prev.Version != p.Version {
			return fmt.Errorf("%w: %s vs %s", ErrVersionConflict, prev.ID(), p.ID())
		}
		chosen[p.Name] = p
		state[name] = 1
		path = append(path, name)
		deps := append([]string(nil), p.Depends...)
		sort.Strings(deps)
		for _, d := range deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		path = path[:len(path)-1]
		state[name] = 2
		order = append(order, p)
		return nil
	}
	sorted := append([]string(nil), roots...)
	sort.Strings(sorted)
	for _, r := range sorted {
		if err := visit(r); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Install resolves and installs the named roots on the target. Already
// installed packages are skipped; Setup hooks run in dependency order. On a
// Setup failure, installation stops and the error reports how far it got.
func Install(cache *Cache, target Target, roots ...string) ([]*Package, error) {
	order, err := Resolve(cache, roots...)
	if err != nil {
		return nil, err
	}
	var installed []*Package
	for _, p := range order {
		if target.Installed(p.ID()) {
			continue
		}
		if err := target.Record(p); err != nil {
			return installed, fmt.Errorf("%w: recording %s: %v", ErrInstallFailed, p.ID(), err)
		}
		if p.Setup != nil {
			if err := p.Setup(target); err != nil {
				return installed, fmt.Errorf("%w: setup of %s: %v", ErrInstallFailed, p.ID(), err)
			}
		}
		installed = append(installed, p)
	}
	return installed, nil
}

// MemTarget is an in-memory Target for tests and dry runs.
type MemTarget struct {
	Pkgs  map[string]bool
	Files []string
}

// NewMemTarget returns an empty target.
func NewMemTarget() *MemTarget {
	return &MemTarget{Pkgs: make(map[string]bool)}
}

// Installed implements Target.
func (m *MemTarget) Installed(id string) bool { return m.Pkgs[id] }

// Record implements Target.
func (m *MemTarget) Record(p *Package) error {
	m.Pkgs[p.ID()] = true
	m.Files = append(m.Files, p.Paths...)
	return nil
}
