package rrd

import (
	"math"
	"testing"
	"time"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Fatal("no archives accepted")
	}
	if _, err := New(ArchiveSpec{Step: 0, Rows: 5}); err == nil {
		t.Fatal("zero step accepted")
	}
	if _, err := New(ArchiveSpec{Step: time.Minute, Rows: 0}); err == nil {
		t.Fatal("zero rows accepted")
	}
}

func TestAverageConsolidation(t *testing.T) {
	db := MustNew(ArchiveSpec{Step: time.Minute, Rows: 10, CF: Average})
	// Bucket 1 (0..1m): samples 10, 20 → 15.
	db.Update(10*time.Second, 10)
	db.Update(30*time.Second, 20)
	// Bucket 2 (1m..2m): 40.
	db.Update(90*time.Second, 40)
	db.FlushTo(2 * time.Minute)
	pts, err := db.Fetch(0, 0, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %v", pts)
	}
	if pts[0].Value != 15 || pts[0].Time != time.Minute {
		t.Fatalf("bucket1 = %+v", pts[0])
	}
	if pts[1].Value != 40 || pts[1].Time != 2*time.Minute {
		t.Fatalf("bucket2 = %+v", pts[1])
	}
}

func TestConsolidationFunctions(t *testing.T) {
	db := MustNew(
		ArchiveSpec{Step: time.Minute, Rows: 5, CF: Max},
		ArchiveSpec{Step: time.Minute, Rows: 5, CF: Min},
		ArchiveSpec{Step: time.Minute, Rows: 5, CF: Last},
		ArchiveSpec{Step: time.Minute, Rows: 5, CF: Sum},
	)
	for i, v := range []float64{3, 9, 1} {
		db.Update(time.Duration(i)*10*time.Second, v)
	}
	db.FlushTo(time.Minute)
	want := []float64{9, 1, 1, 13}
	for i, w := range want {
		if got := db.LastValue(i); got != w {
			t.Errorf("%s = %v, want %v", db.Archives()[i].CF, got, w)
		}
	}
}

func TestGapsAreNaN(t *testing.T) {
	db := MustNew(ArchiveSpec{Step: time.Minute, Rows: 10, CF: Average})
	db.Update(30*time.Second, 5)
	// Skip buckets 2 and 3 entirely.
	db.Update(3*time.Minute+30*time.Second, 7)
	db.FlushTo(4 * time.Minute)
	pts, _ := db.Fetch(0, 0, 4*time.Minute)
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	if !math.IsNaN(pts[1].Value) || !math.IsNaN(pts[2].Value) {
		t.Fatalf("gap buckets not NaN: %v", pts)
	}
	if pts[3].Value != 7 {
		t.Fatalf("bucket4 = %v", pts[3])
	}
}

func TestRingWraparound(t *testing.T) {
	db := MustNew(ArchiveSpec{Step: time.Minute, Rows: 3, CF: Average})
	for i := 0; i < 10; i++ {
		db.Update(time.Duration(i)*time.Minute+time.Second, float64(i))
	}
	db.FlushTo(10 * time.Minute)
	pts, _ := db.Fetch(0, 0, 10*time.Minute)
	// Only the 3 newest buckets survive: values 7, 8, 9.
	if len(pts) != 3 {
		t.Fatalf("points = %v", pts)
	}
	for i, want := range []float64{7, 8, 9} {
		if pts[i].Value != want {
			t.Fatalf("wrapped points = %v", pts)
		}
	}
}

func TestMultiResolutionArchives(t *testing.T) {
	db := MustNew(
		ArchiveSpec{Step: time.Minute, Rows: 60, CF: Average},
		ArchiveSpec{Step: time.Hour, Rows: 24, CF: Average},
	)
	// Constant value 10 for 2 hours, sampled once a minute.
	for i := 0; i < 120; i++ {
		db.Update(time.Duration(i)*time.Minute+time.Second, 10)
	}
	db.FlushTo(2 * time.Hour)
	fine, _ := db.Fetch(0, time.Hour, 2*time.Hour)
	if len(fine) != 60 {
		t.Fatalf("fine archive points = %d", len(fine))
	}
	coarse, _ := db.Fetch(1, 0, 2*time.Hour)
	if len(coarse) != 2 || coarse[0].Value != 10 || coarse[1].Value != 10 {
		t.Fatalf("coarse archive = %v", coarse)
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	db := MustNew(ArchiveSpec{Step: time.Minute, Rows: 5, CF: Average})
	db.Update(time.Minute, 1)
	if err := db.Update(time.Second, 2); err == nil {
		t.Fatal("out-of-order update accepted")
	}
}

func TestFetchBadArchive(t *testing.T) {
	db := MustNew(ArchiveSpec{Step: time.Minute, Rows: 5, CF: Average})
	if _, err := db.Fetch(1, 0, time.Hour); err == nil {
		t.Fatal("bad archive index accepted")
	}
}

func TestLastValueBeforeAnyFlush(t *testing.T) {
	db := MustNew(ArchiveSpec{Step: time.Minute, Rows: 5, CF: Average})
	if !math.IsNaN(db.LastValue(0)) {
		t.Fatal("LastValue before data should be NaN")
	}
}

func TestCFStrings(t *testing.T) {
	for cf, want := range map[CF]string{
		Average: "AVERAGE", Max: "MAX", Min: "MIN", Last: "LAST", Sum: "SUM",
	} {
		if cf.String() != want {
			t.Fatalf("%v", cf)
		}
	}
	if CF(42).String() == "" {
		t.Fatal("unknown CF must render")
	}
}

func TestArchivesAccessor(t *testing.T) {
	db := MustNew(
		ArchiveSpec{Step: time.Minute, Rows: 5, CF: Average},
		ArchiveSpec{Step: time.Hour, Rows: 24, CF: Max},
	)
	specs := db.Archives()
	if len(specs) != 2 || specs[1].CF != Max || specs[0].Step != time.Minute {
		t.Fatalf("archives = %+v", specs)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with no archives did not panic")
		}
	}()
	MustNew()
}

func TestFetchWindowEdges(t *testing.T) {
	db := MustNew(ArchiveSpec{Step: time.Minute, Rows: 10, CF: Average})
	for i := 0; i < 5; i++ {
		db.Update(time.Duration(i)*time.Minute+time.Second, float64(i))
	}
	db.FlushTo(5 * time.Minute)
	// (from, to] semantics: a bucket ending exactly at from is excluded,
	// one ending exactly at to is included.
	pts, err := db.Fetch(0, time.Minute, 3*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Time != 2*time.Minute || pts[1].Time != 3*time.Minute {
		t.Fatalf("window points = %+v", pts)
	}
}
