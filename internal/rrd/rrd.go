// Package rrd implements a round-robin database: fixed-size time-series
// storage with per-archive consolidation, the store behind the MonALISA
// central repository (§5.2: "storing it in a round robin-like database").
//
// A database owns one or more archives, each consolidating raw updates into
// buckets of a fixed step and keeping the most recent N rows in a ring.
// Typical Grid3 configuration: a 5-minute/24-hour archive for dashboards
// and a 1-hour/6-month archive for the retrospective usage plots
// (Figures 2-6 are all derived from such archives).
package rrd

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// CF is a consolidation function.
type CF int

// Consolidation functions.
const (
	Average CF = iota
	Max
	Min
	Last
	Sum
)

func (c CF) String() string {
	switch c {
	case Average:
		return "AVERAGE"
	case Max:
		return "MAX"
	case Min:
		return "MIN"
	case Last:
		return "LAST"
	case Sum:
		return "SUM"
	}
	return fmt.Sprintf("CF(%d)", int(c))
}

// ErrBadArchive reports invalid archive parameters.
var ErrBadArchive = errors.New("rrd: invalid archive specification")

// ArchiveSpec describes one archive.
type ArchiveSpec struct {
	Step time.Duration
	Rows int
	CF   CF
}

// Point is one consolidated sample. Time is the *end* of its bucket.
// Value is NaN for buckets with no updates.
type Point struct {
	Time  time.Duration
	Value float64
}

// archive is the ring state for one ArchiveSpec.
type archive struct {
	spec ArchiveSpec
	ring []float64 // NaN = unknown
	// head indexes the bucket that ends at headEnd (the most recently
	// completed bucket).
	head    int
	headEnd time.Duration
	filled  int

	// accumulator for the in-progress bucket [headEnd, headEnd+step).
	accSum   float64
	accMax   float64
	accMin   float64
	accLast  float64
	accCount int
}

// Database is a multi-archive RRD.
type Database struct {
	archives []*archive
	lastT    time.Duration
}

// New creates a database with the given archives.
func New(specs ...ArchiveSpec) (*Database, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("%w: no archives", ErrBadArchive)
	}
	db := &Database{}
	for _, s := range specs {
		if s.Step <= 0 || s.Rows <= 0 {
			return nil, fmt.Errorf("%w: step %v rows %d", ErrBadArchive, s.Step, s.Rows)
		}
		ring := make([]float64, s.Rows)
		for i := range ring {
			ring[i] = math.NaN()
		}
		db.archives = append(db.archives, &archive{spec: s, ring: ring})
	}
	return db, nil
}

// MustNew creates a database or panics.
func MustNew(specs ...ArchiveSpec) *Database {
	db, err := New(specs...)
	if err != nil {
		panic(err)
	}
	return db
}

// Update records a sample at time t. Updates must be monotonically
// non-decreasing in time; out-of-order samples are rejected.
func (db *Database) Update(t time.Duration, v float64) error {
	if t < db.lastT {
		return fmt.Errorf("rrd: out-of-order update at %v (last %v)", t, db.lastT)
	}
	db.lastT = t
	for _, a := range db.archives {
		a.update(t, v)
	}
	return nil
}

func (a *archive) update(t time.Duration, v float64) {
	a.advanceTo(t)
	if a.accCount == 0 {
		a.accSum, a.accMax, a.accMin = v, v, v
	} else {
		a.accSum += v
		if v > a.accMax {
			a.accMax = v
		}
		if v < a.accMin {
			a.accMin = v
		}
	}
	a.accLast = v
	a.accCount++
}

// advanceTo flushes completed buckets so that the in-progress bucket
// contains time t.
func (a *archive) advanceTo(t time.Duration) {
	for t >= a.headEnd+a.spec.Step {
		a.flush()
	}
}

// flush closes the in-progress bucket into the ring.
func (a *archive) flush() {
	var v float64
	if a.accCount == 0 {
		v = math.NaN()
	} else {
		switch a.spec.CF {
		case Average:
			v = a.accSum / float64(a.accCount)
		case Max:
			v = a.accMax
		case Min:
			v = a.accMin
		case Last:
			v = a.accLast
		case Sum:
			v = a.accSum
		}
	}
	a.ring[a.head] = v
	a.head = (a.head + 1) % a.spec.Rows
	a.headEnd += a.spec.Step
	if a.filled < a.spec.Rows {
		a.filled++
	}
	a.accCount = 0
}

// FlushTo closes buckets up to (not including) the bucket containing t, so
// reads reflect all data before t. Typically called with "now".
func (db *Database) FlushTo(t time.Duration) {
	for _, a := range db.archives {
		a.advanceTo(t)
	}
}

// Archives returns the archive specs.
func (db *Database) Archives() []ArchiveSpec {
	out := make([]ArchiveSpec, len(db.archives))
	for i, a := range db.archives {
		out[i] = a.spec
	}
	return out
}

// Fetch returns consolidated points from archive idx whose bucket-end times
// fall in (from, to]. Points are oldest-first.
func (db *Database) Fetch(idx int, from, to time.Duration) ([]Point, error) {
	if idx < 0 || idx >= len(db.archives) {
		return nil, fmt.Errorf("rrd: archive %d out of range", idx)
	}
	a := db.archives[idx]
	var out []Point
	// Oldest available bucket ends at headEnd - filled*step + step.
	for i := a.filled; i >= 1; i-- {
		end := a.headEnd - time.Duration(i-1)*a.spec.Step
		if end <= from || end > to {
			continue
		}
		pos := (a.head - i + a.spec.Rows*2) % a.spec.Rows
		out = append(out, Point{Time: end, Value: a.ring[pos]})
	}
	return out, nil
}

// LastValue returns the most recently consolidated value of archive idx,
// or NaN when nothing has been consolidated yet.
func (db *Database) LastValue(idx int) float64 {
	a := db.archives[idx]
	if a.filled == 0 {
		return math.NaN()
	}
	pos := (a.head - 1 + a.spec.Rows) % a.spec.Rows
	return a.ring[pos]
}
