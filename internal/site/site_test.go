package site

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"grid3/internal/glue"
)

func testConfig() Config {
	return Config{
		Name:      "UC_ATLAS_Tier2",
		Host:      "tier2-01.uchicago.edu",
		Tier:      2,
		CPUs:      64,
		DiskBytes: 1 << 40, // 1 TiB
		WANMbps:   622,
		LRMS:      glue.PBS,
		MaxWall:   48 * time.Hour,
		OwnerVO:   "usatlas",
		Accounts:  map[string]string{"usatlas": "grp_usatlas", "ivdgl": "grp_ivdgl"},
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := testConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Name = "" },
		func(c *Config) { c.CPUs = 0 },
		func(c *Config) { c.DiskBytes = 0 },
		func(c *Config) { c.WANMbps = 0 },
		func(c *Config) { c.MaxWall = 0 },
		func(c *Config) { c.Accounts = nil },
	}
	for i, mutate := range bad {
		c := testConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestSiteAccounts(t *testing.T) {
	s := MustNew(testConfig())
	acct, err := s.Account("usatlas")
	if err != nil || acct != "grp_usatlas" {
		t.Fatalf("Account = %q, %v", acct, err)
	}
	if _, err := s.Account("uscms"); !errors.Is(err, ErrNoVOAccount) {
		t.Fatalf("unsupported VO error = %v", err)
	}
	if !s.SupportsVO("ivdgl") || s.SupportsVO("ligo") {
		t.Fatal("SupportsVO wrong")
	}
	vos := s.VOs()
	if len(vos) != 2 || vos[0] != "ivdgl" || vos[1] != "usatlas" {
		t.Fatalf("VOs = %v", vos)
	}
}

func TestSiteHealthToggle(t *testing.T) {
	s := MustNew(testConfig())
	if !s.Healthy() {
		t.Fatal("new site unhealthy")
	}
	s.SetHealthy(false)
	if s.Healthy() {
		t.Fatal("SetHealthy(false) ignored")
	}
}

func TestSiteAppArea(t *testing.T) {
	s := MustNew(testConfig())
	if s.HasApp("atlas-gce-7.0.3") {
		t.Fatal("app present before install")
	}
	s.InstallApp("atlas-gce-7.0.3")
	if !s.HasApp("atlas-gce-7.0.3") {
		t.Fatal("app missing after install")
	}
}

func TestStorageStoreDelete(t *testing.T) {
	st := NewStorage(1000)
	if err := st.Store("f1", 400, false); err != nil {
		t.Fatal(err)
	}
	if err := st.Store("f1", 100, false); !errors.Is(err, ErrFileExists) {
		t.Fatalf("duplicate store err = %v", err)
	}
	if err := st.Store("f2", 700, false); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("overfull store err = %v", err)
	}
	if err := st.Store("f2", 600, false); err != nil {
		t.Fatal(err)
	}
	if st.Used() != 1000 || st.Free() != 0 {
		t.Fatalf("used %d free %d", st.Used(), st.Free())
	}
	size, err := st.Size("f1")
	if err != nil || size != 400 {
		t.Fatalf("Size = %d, %v", size, err)
	}
	if err := st.Delete("f1"); err != nil {
		t.Fatal(err)
	}
	if st.Has("f1") {
		t.Fatal("deleted file still present")
	}
	if err := st.Delete("f1"); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("double delete err = %v", err)
	}
	if _, err := st.Size("f1"); err == nil {
		t.Fatal("Size of deleted file succeeded")
	}
	files := st.Files()
	if len(files) != 1 || files[0] != "f2" {
		t.Fatalf("Files = %v", files)
	}
	if st.FileCount() != 1 {
		t.Fatalf("FileCount = %d", st.FileCount())
	}
}

func TestStorageRejectsBadSizes(t *testing.T) {
	st := NewStorage(100)
	if err := st.Store("z", 0, false); !errors.Is(err, ErrBadAllocSize) {
		t.Fatalf("zero-size store err = %v", err)
	}
	if err := st.Reserve(-5); !errors.Is(err, ErrBadAllocSize) {
		t.Fatalf("negative reserve err = %v", err)
	}
}

func TestStorageReservations(t *testing.T) {
	st := NewStorage(1000)
	if err := st.Reserve(600); err != nil {
		t.Fatal(err)
	}
	if st.Free() != 400 || st.Reserved() != 600 {
		t.Fatalf("free %d reserved %d", st.Free(), st.Reserved())
	}
	// Unreserved write can't take reserved space.
	if err := st.Store("raw", 500, false); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("raw store into reserved space err = %v", err)
	}
	// Reservation-backed write draws down the reservation.
	if err := st.Store("managed", 500, true); err != nil {
		t.Fatal(err)
	}
	if st.Reserved() != 100 || st.Used() != 500 {
		t.Fatalf("after managed write: reserved %d used %d", st.Reserved(), st.Used())
	}
	// Writing more than remains reserved fails.
	if err := st.Store("managed2", 200, true); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("over-reservation write err = %v", err)
	}
	st.Release(1000) // clamps to outstanding reservation
	if st.Reserved() != 0 {
		t.Fatalf("release did not clamp: %d", st.Reserved())
	}
	if st.Free() != 500 {
		t.Fatalf("free after release = %d", st.Free())
	}
}

func TestStorageFillFraction(t *testing.T) {
	st := NewStorage(1000)
	st.Store("a", 250, false)
	if f := st.FillFraction(); f != 0.25 {
		t.Fatalf("FillFraction = %v", f)
	}
	st.Reserve(250)
	if f := st.FillFraction(); f != 0.5 {
		t.Fatalf("FillFraction with reservation = %v", f)
	}
}

// Property: used + reserved + free == capacity under any sequence of
// successful operations.
func TestStorageConservationProperty(t *testing.T) {
	type op struct {
		Kind uint8
		Size uint16
	}
	f := func(ops []op) bool {
		st := NewStorage(1 << 20)
		names := 0
		stored := []string{}
		for _, o := range ops {
			size := int64(o.Size) + 1
			switch o.Kind % 4 {
			case 0:
				name := string(rune('a'+names%26)) + "-" + string(rune('0'+names%10))
				names++
				if st.Store(name, size, false) == nil {
					stored = append(stored, name)
				}
			case 1:
				st.Reserve(size)
			case 2:
				st.Release(size)
			case 3:
				if len(stored) > 0 {
					st.Delete(stored[0])
					stored = stored[1:]
				}
			}
			if st.Used()+st.Reserved()+st.Free() != st.Capacity() {
				return false
			}
			if st.Free() < 0 || st.Used() < 0 || st.Reserved() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
