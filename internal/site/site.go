// Package site models a Grid3 site: a cluster of worker nodes behind a
// gatekeeper host, shared storage with finite capacity, per-VO Unix group
// accounts, and a WAN link.
//
// The paper's §5 describes the two-tier design: "each resource (compute,
// storage, application, site, user) was logically associated with a VO. At
// each site, a core set of grid middleware services with VO-specific
// configuration and additions were installed." Sites retain full autonomy:
// local batch policies, walltime limits, and VO support lists differ per
// site, and >60% of Grid3 CPUs were non-dedicated facilities shared with
// local users.
package site

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"grid3/internal/glue"
)

// Errors.
var (
	ErrDiskFull     = errors.New("site: disk full")
	ErrNoSuchFile   = errors.New("site: no such file")
	ErrFileExists   = errors.New("site: file already exists")
	ErrNoVOAccount  = errors.New("site: no group account for VO")
	ErrBadAllocSize = errors.New("site: allocation size must be positive")
)

// Storage is a finite-capacity file store: the site's shared disk / storage
// element. Disk-filling was the leading cause of the ATLAS failure class in
// §6.1 ("Approximately 90% of failures were due to site problems: disk
// filling errors, gatekeeper overloading, or network interruptions").
type Storage struct {
	capacity int64
	used     int64
	reserved int64 // space held by SRM reservations (see internal/srm)
	files    map[string]int64
}

// NewStorage returns an empty store of the given capacity in bytes.
func NewStorage(capacity int64) *Storage {
	if capacity <= 0 {
		panic(fmt.Sprintf("site: storage capacity %d must be positive", capacity))
	}
	return &Storage{capacity: capacity, files: make(map[string]int64)}
}

// Capacity returns total bytes.
func (s *Storage) Capacity() int64 { return s.capacity }

// Used returns bytes held by files.
func (s *Storage) Used() int64 { return s.used }

// Free returns unallocated, unreserved bytes.
func (s *Storage) Free() int64 { return s.capacity - s.used - s.reserved }

// Reserve holds n bytes for a future write (the SRM path). It fails rather
// than overcommitting.
func (s *Storage) Reserve(n int64) error {
	if n <= 0 {
		return ErrBadAllocSize
	}
	if s.Free() < n {
		return fmt.Errorf("%w: reserve %d > free %d", ErrDiskFull, n, s.Free())
	}
	s.reserved += n
	return nil
}

// Release returns reserved bytes to the free pool.
func (s *Storage) Release(n int64) {
	if n > s.reserved {
		n = s.reserved
	}
	s.reserved -= n
}

// Reserved returns bytes currently held by reservations.
func (s *Storage) Reserved() int64 { return s.reserved }

// Store writes a file of the given size. With fromReservation true the
// bytes come out of the reserved pool (SRM-managed write); otherwise they
// must fit in free space (raw GridFTP write — the §8 failure mode).
func (s *Storage) Store(name string, size int64, fromReservation bool) error {
	if size <= 0 {
		return ErrBadAllocSize
	}
	if _, ok := s.files[name]; ok {
		return fmt.Errorf("%w: %s", ErrFileExists, name)
	}
	if fromReservation {
		if size > s.reserved {
			return fmt.Errorf("%w: write %d > reserved %d", ErrDiskFull, size, s.reserved)
		}
		s.reserved -= size
	} else {
		if s.Free() < size {
			return fmt.Errorf("%w: write %d > free %d", ErrDiskFull, size, s.Free())
		}
	}
	s.files[name] = size
	s.used += size
	return nil
}

// Delete removes a file, freeing its space.
func (s *Storage) Delete(name string) error {
	size, ok := s.files[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchFile, name)
	}
	delete(s.files, name)
	s.used -= size
	return nil
}

// Has reports whether the named file exists.
func (s *Storage) Has(name string) bool {
	_, ok := s.files[name]
	return ok
}

// Size returns a file's size.
func (s *Storage) Size(name string) (int64, error) {
	size, ok := s.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoSuchFile, name)
	}
	return size, nil
}

// FileCount returns the number of stored files.
func (s *Storage) FileCount() int { return len(s.files) }

// Files returns stored file names, sorted.
func (s *Storage) Files() []string {
	out := make([]string, 0, len(s.files))
	for name := range s.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// FillFraction returns used/capacity, the Ganglia disk metric.
func (s *Storage) FillFraction() float64 {
	return float64(s.used+s.reserved) / float64(s.capacity)
}

// Config describes a site's static configuration.
type Config struct {
	Name      string
	Host      string // gatekeeper host name
	Tier      int    // 1 = lab Tier1, 2 = university Tier2, 3 = small
	CPUs      int
	DiskBytes int64
	WANMbps   float64       // WAN link capacity, megabits/s
	LRMS      glue.LRMS     // local batch flavor
	MaxWall   time.Duration // longest job the queue admits
	OwnerVO   string        // VO that owns/operates the site ("favorite" affinity, §6.4)
	Dedicated bool          // false: shared with local users (>60% of Grid3 CPUs)
	// Accounts maps VO name → Unix group account. Only VOs present here
	// can run at the site (§5: "Unix group accounts were established at
	// each site for each VO").
	Accounts map[string]string
	// OutboundIP: worker nodes can reach the internet (§6.4 requirement 1).
	OutboundIP bool
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.Name == "":
		return errors.New("site: missing name")
	case c.CPUs <= 0:
		return fmt.Errorf("site %s: cpus %d", c.Name, c.CPUs)
	case c.DiskBytes <= 0:
		return fmt.Errorf("site %s: disk %d", c.Name, c.DiskBytes)
	case c.WANMbps <= 0:
		return fmt.Errorf("site %s: wan %f", c.Name, c.WANMbps)
	case c.MaxWall <= 0:
		return fmt.Errorf("site %s: maxwall %v", c.Name, c.MaxWall)
	case len(c.Accounts) == 0:
		return fmt.Errorf("site %s: no VO accounts", c.Name)
	}
	return nil
}

// Site is the live state of one Grid3 site.
type Site struct {
	Config
	Disk *Storage
	// AppAreas tracks per-VO installed application releases, keyed by
	// package name (the $APP area of the Grid3 schema extensions).
	AppAreas map[string]bool
	// healthy is toggled by failure injection; an unhealthy site fails
	// gatekeeper interactions.
	healthy bool
}

// New constructs a site from configuration.
func New(cfg Config) (*Site, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Site{
		Config:   cfg,
		Disk:     NewStorage(cfg.DiskBytes),
		AppAreas: make(map[string]bool),
		healthy:  true,
	}, nil
}

// MustNew constructs a site or panics; for catalog literals and tests.
func MustNew(cfg Config) *Site {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Account returns the Unix group account for a VO.
func (s *Site) Account(vo string) (string, error) {
	acct, ok := s.Accounts[vo]
	if !ok {
		return "", fmt.Errorf("%w: %s at %s", ErrNoVOAccount, vo, s.Name)
	}
	return acct, nil
}

// SupportsVO reports whether the site has a group account for vo.
func (s *Site) SupportsVO(vo string) bool {
	_, ok := s.Accounts[vo]
	return ok
}

// VOs returns supported VO names, sorted.
func (s *Site) VOs() []string {
	out := make([]string, 0, len(s.Accounts))
	for vo := range s.Accounts {
		out = append(out, vo)
	}
	sort.Strings(out)
	return out
}

// Healthy reports whether the site's services are up.
func (s *Site) Healthy() bool { return s.healthy }

// SetHealthy toggles site service health (failure injection).
func (s *Site) SetHealthy(v bool) { s.healthy = v }

// InstallApp marks an application release as present in the $APP area.
func (s *Site) InstallApp(pkg string) { s.AppAreas[pkg] = true }

// HasApp reports whether an application release is installed.
func (s *Site) HasApp(pkg string) bool { return s.AppAreas[pkg] }
