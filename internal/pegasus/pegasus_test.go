package pegasus

import (
	"errors"
	"strings"
	"testing"
	"time"

	"grid3/internal/chimera"
	"grid3/internal/mds"
)

// twoStepDAG builds gen → sim with an external geometry input.
func twoStepDAG(t *testing.T) *chimera.AbstractDAG {
	t.Helper()
	c := chimera.NewCatalog()
	c.AddTR(&chimera.Transformation{Name: "gen", Walltime: 4 * time.Hour, OutputBytes: 100 << 20, RequiresApp: "atlas-gce-7.0.3"})
	c.AddTR(&chimera.Transformation{Name: "sim", Walltime: 24 * time.Hour, OutputBytes: 2 << 30, RequiresApp: "atlas-gce-7.0.3"})
	c.AddDV(&chimera.Derivation{ID: "g1", TR: "gen", Inputs: []string{"lfn:card"}, Outputs: []string{"lfn:ev"}})
	c.AddDV(&chimera.Derivation{ID: "s1", TR: "sim", Inputs: []string{"lfn:ev", "lfn:geom"}, Outputs: []string{"lfn:hits"}})
	dag, err := c.Plan("lfn:hits")
	if err != nil {
		t.Fatal(err)
	}
	return dag
}

func atlasApps() map[string]bool { return map[string]bool{"atlas-gce-7.0.3": true} }

func sites() []SiteInfo {
	return []SiteInfo{
		{Name: "BNL", VOs: []string{"usatlas", "ivdgl"}, MaxWall: 100 * time.Hour, TotalCPUs: 400, FreeCPUs: 100, Apps: atlasApps(), OwnerVO: "usatlas", FreeDisk: 1 << 42, OutboundIP: true},
		{Name: "UC", VOs: []string{"usatlas", "ivdgl"}, MaxWall: 48 * time.Hour, TotalCPUs: 64, FreeCPUs: 60, Apps: atlasApps(), OwnerVO: "usatlas", FreeDisk: 1 << 40, OutboundIP: true},
		{Name: "FNAL", VOs: []string{"uscms"}, MaxWall: 100 * time.Hour, TotalCPUs: 500, FreeCPUs: 400, Apps: map[string]bool{"cms-mop-1.2": true}, OwnerVO: "uscms", FreeDisk: 1 << 42, OutboundIP: true},
		{Name: "Buffalo", VOs: []string{"ivdgl", "usatlas"}, MaxWall: 12 * time.Hour, TotalCPUs: 80, FreeCPUs: 80, Apps: atlasApps(), OwnerVO: "ivdgl", FreeDisk: 1 << 40, OutboundIP: false},
	}
}

// rlsStub maps LFN → replica sites.
type rlsStub map[string][]string

func (r rlsStub) locate(lfn string) []string { return r[lfn] }

func newPlanner(replicas rlsStub) *Planner {
	return &Planner{
		Sites:       sites,
		Locate:      replicas.locate,
		InputBytes:  func(string) int64 { return 50 << 20 },
		ArchiveSite: "BNL",
		Policy:      VOAffinity,
	}
}

func TestPlanBasicStructure(t *testing.T) {
	a := twoStepDAG(t)
	p := newPlanner(rlsStub{"lfn:card": {"BNL"}, "lfn:geom": {"BNL"}})
	dag, err := p.Plan(a, "usatlas")
	if err != nil {
		t.Fatal(err)
	}
	counts := dag.CountByType()
	if counts[Compute] != 2 {
		t.Fatalf("computes = %d", counts[Compute])
	}
	// VOAffinity picks BNL (most free CPUs among usatlas-owned);
	// replicas are at BNL so no stage-in nodes, outputs register with no
	// stage-out (archive == exec site).
	if counts[StageIn] != 0 || counts[StageOut] != 0 {
		t.Fatalf("unexpected staging: %v", counts)
	}
	if counts[Register] != 2 {
		t.Fatalf("registers = %d", counts[Register])
	}
	g, ok := dag.Jobs["compute_g1"]
	if !ok || g.Site != "BNL" {
		t.Fatalf("gen site = %+v", g)
	}
	s := dag.Jobs["compute_s1"]
	if len(s.Parents) != 1 || s.Parents[0] != "compute_g1" {
		t.Fatalf("sim parents = %v", s.Parents)
	}
}

func TestStageInInserted(t *testing.T) {
	a := twoStepDAG(t)
	// Replicas live at UC only; execution lands on BNL → stage-ins needed.
	p := newPlanner(rlsStub{"lfn:card": {"UC"}, "lfn:geom": {"UC"}})
	dag, err := p.Plan(a, "usatlas")
	if err != nil {
		t.Fatal(err)
	}
	counts := dag.CountByType()
	if counts[StageIn] != 2 {
		t.Fatalf("stage-ins = %d: %v", counts[StageIn], dag.Order)
	}
	si, ok := dag.Jobs["stagein_lfn:card_to_BNL"]
	if !ok || si.SrcSite != "UC" || si.Bytes != 50<<20 {
		t.Fatalf("stage-in node = %+v", si)
	}
	// The compute depends on its stage-in.
	g := dag.Jobs["compute_g1"]
	if !contains(g.Parents, "stagein_lfn:card_to_BNL") {
		t.Fatalf("gen parents = %v", g.Parents)
	}
}

func TestMissingReplicaFails(t *testing.T) {
	a := twoStepDAG(t)
	p := newPlanner(rlsStub{"lfn:card": {"UC"}}) // geom missing
	if _, err := p.Plan(a, "usatlas"); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("err = %v", err)
	}
}

func TestVirtualDataReuse(t *testing.T) {
	a := twoStepDAG(t)
	// lfn:ev already exists: the gen job is pruned, sim stages ev in.
	p := newPlanner(rlsStub{
		"lfn:card": {"BNL"}, "lfn:geom": {"BNL"}, "lfn:ev": {"UC"},
	})
	dag, err := p.Plan(a, "usatlas")
	if err != nil {
		t.Fatal(err)
	}
	if len(dag.Reused) != 1 || dag.Reused[0] != "g1" {
		t.Fatalf("reused = %v", dag.Reused)
	}
	if _, ok := dag.Jobs["compute_g1"]; ok {
		t.Fatal("pruned job still planned")
	}
	s := dag.Jobs["compute_s1"]
	if !contains(s.Parents, "stagein_lfn:ev_to_BNL") {
		t.Fatalf("sim parents = %v (want stage-in of reused output)", s.Parents)
	}
}

func TestInterSiteTransfer(t *testing.T) {
	// Force gen and sim to different sites: sim's walltime (24h) excludes
	// Buffalo (12h max); constrain gen to Buffalo by owner affinity.
	a := twoStepDAG(t)
	p := newPlanner(rlsStub{"lfn:card": {"Buffalo"}, "lfn:geom": {"BNL"}})
	p.Policy = LoadBalanced
	// Make Buffalo the least-loaded for gen; sim can't run there.
	p.Sites = func() []SiteInfo {
		s := sites()
		for i := range s {
			if s[i].Name == "Buffalo" {
				s[i].FreeCPUs = 10000
			}
		}
		return s
	}
	dag, err := p.Plan(a, "usatlas")
	if err != nil {
		t.Fatal(err)
	}
	g, s := dag.Jobs["compute_g1"], dag.Jobs["compute_s1"]
	if g.Site != "Buffalo" {
		t.Fatalf("gen site = %s", g.Site)
	}
	if s.Site == "Buffalo" {
		t.Fatal("sim placed on a site with too-short MaxWall")
	}
	// The intermediate product crosses sites via a Transfer node.
	xferName := "xfer_lfn:ev_to_" + s.Site
	x, ok := dag.Jobs[xferName]
	if !ok {
		t.Fatalf("no inter-site transfer node; order = %v", dag.Order)
	}
	if x.SrcSite != "Buffalo" || x.Bytes != 100<<20 {
		t.Fatalf("transfer = %+v", x)
	}
	if !contains(s.Parents, xferName) {
		t.Fatalf("sim parents = %v", s.Parents)
	}
}

func TestStageOutToArchive(t *testing.T) {
	a := twoStepDAG(t)
	p := newPlanner(rlsStub{"lfn:card": {"UC"}, "lfn:geom": {"UC"}})
	p.Policy = LoadBalanced
	// Execution will land at FNAL? FNAL doesn't support usatlas. BNL has
	// most free CPUs; force UC by deflating BNL.
	p.Sites = func() []SiteInfo {
		s := sites()
		for i := range s {
			if s[i].Name == "BNL" {
				s[i].FreeCPUs = 0
				s[i].QueuedJobs = 500
			}
		}
		return s
	}
	dag, err := p.Plan(a, "usatlas")
	if err != nil {
		t.Fatal(err)
	}
	s := dag.Jobs["compute_s1"]
	if s.Site == "BNL" {
		t.Fatal("load-balanced policy chose the overloaded site")
	}
	so, ok := dag.Jobs["stageout_lfn:hits"]
	if !ok || so.Site != "BNL" || so.SrcSite != s.Site {
		t.Fatalf("stage-out = %+v", so)
	}
	reg := dag.Jobs["register_lfn:hits"]
	if !contains(reg.Parents, "stageout_lfn:hits") {
		t.Fatalf("register parents = %v", reg.Parents)
	}
}

func TestEligibilityFilters(t *testing.T) {
	p := newPlanner(rlsStub{})
	// Wrong VO everywhere.
	if _, err := p.selectSite(sites(), &chimera.Transformation{Name: "t"}, "ligo"); !errors.Is(err, ErrNoEligibleSite) {
		t.Fatalf("vo filter err = %v", err)
	}
	// Walltime beyond every site.
	if _, err := p.selectSite(sites(), &chimera.Transformation{Name: "t", Walltime: 2000 * time.Hour}, "usatlas"); !errors.Is(err, ErrNoEligibleSite) {
		t.Fatalf("walltime filter err = %v", err)
	}
	// App not installed anywhere.
	if _, err := p.selectSite(sites(), &chimera.Transformation{Name: "t", RequiresApp: "ligo-pulsar-2.1"}, "usatlas"); !errors.Is(err, ErrNoEligibleSite) {
		t.Fatalf("app filter err = %v", err)
	}
	// Outbound IP: Buffalo excluded, others fine.
	site, err := p.selectSite(sites(), &chimera.Transformation{Name: "t", RequiresOutboundIP: true}, "ivdgl")
	if err != nil || site == "Buffalo" {
		t.Fatalf("outbound filter: %s, %v", site, err)
	}
}

func TestRoundRobinPolicy(t *testing.T) {
	p := newPlanner(rlsStub{})
	p.Policy = RoundRobin
	tr := &chimera.Transformation{Name: "t"}
	seen := map[string]int{}
	for i := 0; i < 6; i++ {
		s, err := p.selectSite(sites(), tr, "usatlas")
		if err != nil {
			t.Fatal(err)
		}
		seen[s]++
	}
	// Three usatlas-capable sites (BNL, UC, Buffalo): each hit twice.
	if len(seen) != 3 {
		t.Fatalf("round robin spread = %v", seen)
	}
	for s, n := range seen {
		if n != 2 {
			t.Fatalf("site %s chosen %d times: %v", s, n, seen)
		}
	}
}

func TestVOAffinityPrefersOwnedSites(t *testing.T) {
	p := newPlanner(rlsStub{})
	tr := &chimera.Transformation{Name: "t"}
	// ivdgl owns only Buffalo; affinity must pick it although BNL has
	// more free CPUs.
	s, err := p.selectSite(sites(), tr, "ivdgl")
	if err != nil || s != "Buffalo" {
		t.Fatalf("affinity site = %s, %v", s, err)
	}
	// Without an owned site, falls back to least loaded eligible.
	p.Policy = LoadBalanced
	s, err = p.selectSite(sites(), tr, "ivdgl")
	if err != nil || s != "BNL" {
		t.Fatalf("load-balanced site = %s, %v", s, err)
	}
}

func TestFromMDS(t *testing.T) {
	e := mds.Entry{DN: "ce=uc", Attrs: map[string][]string{
		"GlueSiteName":                  {"UC_ATLAS_Tier2"},
		"GlueCEPolicyMaxWallClockTime":  {"172800"},
		"GlueCEStateTotalCPUs":          {"64"},
		"GlueCEStateFreeCPUs":           {"20"},
		"GlueCEStateWaitingJobs":        {"7"},
		"GlueCEAccessControlBaseRule":   {"VO:usatlas", "VO:ivdgl"},
		"Grid3-App-Installed":           {"atlas-gce-7.0.3", "grid3-1.0"},
		"Grid3-Disk-Free":               {"1099511627776"},
		"Grid3-Worker-Node-Outbound-IP": {"true"},
		"Grid3-Owner-VO":                {"usatlas"},
	}}
	info := FromMDS(e)
	if info.Name != "UC_ATLAS_Tier2" || info.MaxWall != 48*time.Hour ||
		info.TotalCPUs != 64 || info.FreeCPUs != 20 || info.QueuedJobs != 7 {
		t.Fatalf("info = %+v", info)
	}
	if !info.SupportsVO("ivdgl") || info.SupportsVO("uscms") {
		t.Fatal("VO parse wrong")
	}
	if !info.Apps["atlas-gce-7.0.3"] || !info.OutboundIP || info.OwnerVO != "usatlas" {
		t.Fatalf("extensions = %+v", info)
	}
	if info.FreeDisk != 1<<40 {
		t.Fatalf("disk = %d", info.FreeDisk)
	}
}

func TestPlanDeterministic(t *testing.T) {
	a := twoStepDAG(t)
	mk := func() string {
		p := newPlanner(rlsStub{"lfn:card": {"UC"}, "lfn:geom": {"UC"}})
		dag, err := p.Plan(a, "usatlas")
		if err != nil {
			t.Fatal(err)
		}
		return strings.Join(dag.Order, "|")
	}
	first := mk()
	for i := 0; i < 5; i++ {
		if mk() != first {
			t.Fatal("plan order not deterministic")
		}
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

func TestStageInDeduplicatedAcrossConsumers(t *testing.T) {
	// Two jobs at the same site consuming the same external input share
	// one stage-in node.
	c := chimera.NewCatalog()
	c.AddTR(&chimera.Transformation{Name: "t", Walltime: 4 * time.Hour, OutputBytes: 1 << 20, RequiresApp: "atlas-gce-7.0.3"})
	c.AddDV(&chimera.Derivation{ID: "j1", TR: "t", Inputs: []string{"lfn:shared-db"}, Outputs: []string{"lfn:o1"}})
	c.AddDV(&chimera.Derivation{ID: "j2", TR: "t", Inputs: []string{"lfn:shared-db"}, Outputs: []string{"lfn:o2"}})
	a, err := c.Plan("lfn:o1", "lfn:o2")
	if err != nil {
		t.Fatal(err)
	}
	p := newPlanner(rlsStub{"lfn:shared-db": {"UC"}})
	dag, err := p.Plan(a, "usatlas")
	if err != nil {
		t.Fatal(err)
	}
	if n := dag.CountByType()[StageIn]; n != 1 {
		t.Fatalf("stage-ins = %d, want 1 shared", n)
	}
	// Both computes depend on the same stage-in node.
	si := "stagein_lfn:shared-db_to_BNL"
	for _, id := range []string{"compute_j1", "compute_j2"} {
		if !contains(dag.Jobs[id].Parents, si) {
			t.Fatalf("%s parents = %v", id, dag.Jobs[id].Parents)
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	if VOAffinity.String() != "vo-affinity" || LoadBalanced.String() != "load-balanced" || RoundRobin.String() != "round-robin" {
		t.Fatal("policy strings")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy renders empty")
	}
	for jt, want := range map[JobType]string{
		Compute: "compute", StageIn: "stage-in", Transfer: "transfer",
		StageOut: "stage-out", Register: "register",
	} {
		if jt.String() != want {
			t.Fatalf("%v != %s", jt, want)
		}
	}
}

func TestExcludeSteersPlanning(t *testing.T) {
	a := twoStepDAG(t)
	p := newPlanner(rlsStub{"lfn:card": {"BNL"}, "lfn:geom": {"BNL"}})
	// BNL's breaker is open: planning must land on UC instead (the other
	// usatlas-owned site) even though BNL has more free CPUs.
	p.Exclude = func(site string) bool { return site == "BNL" }
	dag, err := p.Plan(a, "usatlas")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range dag.Order {
		j := dag.Jobs[name]
		if j.Type == Compute && j.Site == "BNL" {
			t.Fatalf("compute %s planned onto excluded site", name)
		}
	}
	if dag.Jobs["compute_g1"].Site != "UC" {
		t.Fatalf("gen site = %q, want UC", dag.Jobs["compute_g1"].Site)
	}
}

func TestExcludeAllFallsBackToFullSet(t *testing.T) {
	a := twoStepDAG(t)
	p := newPlanner(rlsStub{"lfn:card": {"BNL"}, "lfn:geom": {"BNL"}})
	// Every site sick: exclusion is advisory, the plan must still succeed.
	p.Exclude = func(string) bool { return true }
	dag, err := p.Plan(a, "usatlas")
	if err != nil {
		t.Fatalf("plan with all sites excluded failed: %v", err)
	}
	if dag.Jobs["compute_g1"].Site == "" {
		t.Fatal("no site chosen")
	}
}

func TestRankReplicasSelectsSource(t *testing.T) {
	a := twoStepDAG(t)
	p := newPlanner(rlsStub{"lfn:card": {"Buffalo", "UC"}, "lfn:geom": {"Buffalo", "UC"}})
	ranked := 0
	p.RankReplicas = func(_ string, cands []string) string {
		ranked++
		return cands[len(cands)-1] // deliberately not the default first pick
	}
	dag, err := p.Plan(a, "usatlas")
	if err != nil {
		t.Fatal(err)
	}
	si, ok := dag.Jobs["stagein_lfn:card_to_BNL"]
	if !ok {
		t.Fatalf("no stage-in node: %v", dag.Order)
	}
	if si.SrcSite != "UC" {
		t.Fatalf("stage-in source = %q, want the ranker's pick UC", si.SrcSite)
	}
	if ranked == 0 {
		t.Fatal("ranking hook never consulted")
	}
}

func TestRankReplicasSeesOnlyHealthyCandidates(t *testing.T) {
	a := twoStepDAG(t)
	p := newPlanner(rlsStub{"lfn:card": {"Buffalo", "UC"}, "lfn:geom": {"Buffalo", "UC"}})
	p.Exclude = func(site string) bool { return site == "UC" }
	p.RankReplicas = func(_ string, cands []string) string {
		for _, c := range cands {
			if c == "UC" {
				t.Fatal("excluded site offered to the ranker")
			}
		}
		return cands[0]
	}
	dag, err := p.Plan(a, "usatlas")
	if err != nil {
		t.Fatal(err)
	}
	if si := dag.Jobs["stagein_lfn:card_to_BNL"]; si.SrcSite != "Buffalo" {
		t.Fatalf("stage-in source = %q, want Buffalo", si.SrcSite)
	}
}

func TestExcludePrefersHealthyReplica(t *testing.T) {
	a := twoStepDAG(t)
	// Both inputs have two replicas; the first holder is sick.
	p := newPlanner(rlsStub{"lfn:card": {"UC", "Buffalo"}, "lfn:geom": {"UC", "Buffalo"}})
	p.Exclude = func(site string) bool { return site == "UC" }
	dag, err := p.Plan(a, "usatlas")
	if err != nil {
		t.Fatal(err)
	}
	si, ok := dag.Jobs["stagein_lfn:card_to_BNL"]
	if !ok {
		t.Fatalf("no stage-in node: %v", dag.Order)
	}
	if si.SrcSite != "Buffalo" {
		t.Fatalf("stage-in source = %q, want healthy replica Buffalo", si.SrcSite)
	}
}
