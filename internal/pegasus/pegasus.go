// Package pegasus implements the Pegasus concrete planner: it maps a
// Chimera abstract DAG onto Grid3 sites by querying resource information
// (MDS) and replica locations (RLS), prunes jobs whose outputs already
// exist (virtual-data reuse), and inserts stage-in, inter-site transfer,
// stage-out, and replica-registration jobs.
//
// §4.1: ATLAS workflows were "implemented using Chimera and Pegasus
// virtual data tools"; the GriPhyN-LIGO working group "developed the
// necessary infrastructure using Chimera and Pegasus to generate and
// execute the workflows" (§4.4).
package pegasus

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"grid3/internal/chimera"
	"grid3/internal/mds"
	"grid3/internal/obs"
)

// Instruments is the planner's observability wiring: one span per Plan call
// plus planning counters. Nil disables.
type Instruments struct {
	Tracer     *obs.Tracer
	Plans      *obs.Counter
	JobsOut    *obs.Counter // concrete jobs emitted across all plans
	JobsReused *obs.Counter // abstract jobs pruned by virtual-data reuse
}

// NewInstruments wires planner instruments into an observer; nil in, nil out.
func NewInstruments(o *obs.Observer) *Instruments {
	if o == nil {
		return nil
	}
	return &Instruments{
		Tracer:     o.Tracer,
		Plans:      o.Metrics.Counter("pegasus.plans"),
		JobsOut:    o.Metrics.Counter("pegasus.jobs.planned"),
		JobsReused: o.Metrics.Counter("pegasus.jobs.reused"),
	}
}

// tracer returns the span tracer, nil (disabled) when instruments are off.
func (in *Instruments) tracer() *obs.Tracer {
	if in == nil {
		return nil
	}
	return in.Tracer
}

// Errors.
var (
	ErrNoEligibleSite = errors.New("pegasus: no eligible site")
	ErrNoReplica      = errors.New("pegasus: required input has no replica")
)

// SiteInfo is the planner's view of one computing element, assembled from
// MDS (or directly by the embedding system).
type SiteInfo struct {
	Name       string
	VOs        []string
	MaxWall    time.Duration
	TotalCPUs  int
	FreeCPUs   int
	QueuedJobs int
	FreeDisk   int64
	Apps       map[string]bool // installed releases ($APP area)
	OutboundIP bool
	OwnerVO    string
}

// SupportsVO reports whether the site has an account for vo.
func (s *SiteInfo) SupportsVO(vo string) bool {
	for _, v := range s.VOs {
		if v == vo {
			return true
		}
	}
	return false
}

// FromMDS parses a GLUE CE entry (with Grid3 extensions) into SiteInfo.
func FromMDS(e mds.Entry) SiteInfo {
	info := SiteInfo{
		Name:       e.Get("GlueSiteName"),
		MaxWall:    time.Duration(e.GetInt("GlueCEPolicyMaxWallClockTime")) * time.Second,
		TotalCPUs:  int(e.GetInt("GlueCEStateTotalCPUs")),
		FreeCPUs:   int(e.GetInt("GlueCEStateFreeCPUs")),
		QueuedJobs: int(e.GetInt("GlueCEStateWaitingJobs")),
		FreeDisk:   e.GetInt("Grid3-Disk-Free"),
		OutboundIP: e.Get("Grid3-Worker-Node-Outbound-IP") == "true",
		OwnerVO:    e.Get("Grid3-Owner-VO"),
		Apps:       map[string]bool{},
	}
	for _, rule := range e.Attrs["GlueCEAccessControlBaseRule"] {
		if len(rule) > 3 && rule[:3] == "VO:" {
			info.VOs = append(info.VOs, rule[3:])
		}
	}
	for _, app := range e.Attrs["Grid3-App-Installed"] {
		info.Apps[app] = true
	}
	return info
}

// Policy selects among eligible sites.
type Policy int

// Site-selection policies. VOAffinity reproduces the §6.4 observation that
// "applications tend to favor the resources provided within their VO";
// LoadBalanced is the ablation alternative (ABL-FED).
const (
	VOAffinity Policy = iota
	LoadBalanced
	RoundRobin
)

func (p Policy) String() string {
	switch p {
	case VOAffinity:
		return "vo-affinity"
	case LoadBalanced:
		return "load-balanced"
	case RoundRobin:
		return "round-robin"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// JobType classifies concrete jobs.
type JobType int

// Concrete job types.
const (
	Compute JobType = iota
	StageIn
	Transfer // inter-site intermediate product movement
	StageOut
	Register
)

func (t JobType) String() string {
	switch t {
	case Compute:
		return "compute"
	case StageIn:
		return "stage-in"
	case Transfer:
		return "transfer"
	case StageOut:
		return "stage-out"
	case Register:
		return "register"
	}
	return fmt.Sprintf("JobType(%d)", int(t))
}

// ConcreteJob is one node of the executable workflow.
type ConcreteJob struct {
	Name    string
	Type    JobType
	Site    string // execution site, or destination for data movement
	SrcSite string // source for data movement
	LFN     string // moved/registered file
	Bytes   int64
	DV      *chimera.Derivation     // compute only
	TR      *chimera.Transformation // compute only
	Parents []string
}

// ConcreteDAG is the planner's output, executable by Condor-G/DAGMan.
type ConcreteDAG struct {
	Jobs  map[string]*ConcreteJob
	Order []string
	// Reused lists abstract jobs pruned because their outputs already had
	// replicas (virtual-data reuse).
	Reused []string
}

// CountByType tallies jobs per type.
func (d *ConcreteDAG) CountByType() map[JobType]int {
	out := map[JobType]int{}
	for _, j := range d.Jobs {
		out[j.Type]++
	}
	return out
}

// Planner maps abstract DAGs to concrete ones.
type Planner struct {
	// Sites returns the current resource view (an MDS query).
	Sites func() []SiteInfo
	// Locate returns the sites holding a replica of an LFN (an RLS
	// query); empty means no replica.
	Locate func(lfn string) []string
	// InputBytes returns the size of an existing LFN (RLS size attribute);
	// used for stage-in volume accounting.
	InputBytes func(lfn string) int64
	// ArchiveSite receives stage-out copies (BNL for ATLAS, FNAL for CMS).
	ArchiveSite string
	// Policy picks the site-selection strategy.
	Policy Policy
	// Exclude, when set, reports sites that should not be planned onto or
	// read from (open health breakers). Exclusion is advisory: if every
	// otherwise-eligible site is excluded the planner uses the full set
	// rather than failing the workflow.
	Exclude func(site string) bool
	// RankReplicas, when set, chooses the stage-in source among the
	// candidate replica holders (already filtered by Exclude, sorted).
	// Nil keeps the historical first-sorted-site choice; the embedding
	// system wires a WAN-load ranker here for replica-aware staging.
	RankReplicas func(lfn string, candidates []string) string
	// Ins enables observability (nil = off).
	Ins *Instruments
	// Parent is the span under which plan spans are parented (the enclosing
	// workflow span), zero for none.
	Parent obs.SpanID

	rrNext int // round-robin cursor
}

// Plan produces a concrete DAG for the VO's abstract workflow.
func (p *Planner) Plan(a *chimera.AbstractDAG, vo string) (*ConcreteDAG, error) {
	span := p.Ins.tracer().Begin(obs.KindPlan, p.Parent, "", vo, "")
	dag, err := p.plan(a, vo)
	if err != nil {
		p.Ins.tracer().Fail(span, err.Error())
		return nil, err
	}
	p.Ins.tracer().End(span)
	if in := p.Ins; in != nil {
		in.Plans.Inc()
		in.JobsOut.Add(uint64(len(dag.Order)))
		in.JobsReused.Add(uint64(len(dag.Reused)))
	}
	return dag, nil
}

func (p *Planner) plan(a *chimera.AbstractDAG, vo string) (*ConcreteDAG, error) {
	if p.Sites == nil {
		return nil, errors.New("pegasus: planner has no site catalog")
	}
	sites := p.Sites()
	out := &ConcreteDAG{Jobs: make(map[string]*ConcreteJob)}
	add := func(j *ConcreteJob) *ConcreteJob {
		if existing, ok := out.Jobs[j.Name]; ok {
			return existing
		}
		out.Jobs[j.Name] = j
		out.Order = append(out.Order, j.Name)
		return j
	}

	// computeSite maps DV ID → chosen site; outputSite maps LFN → site
	// where the plan materializes it.
	computeSite := map[string]string{}
	outputSite := map[string]string{}
	// stagedAt dedups data-movement nodes per (lfn,site).
	stagedAt := map[string]string{} // key lfn@site → node name

	locate := p.Locate
	if locate == nil {
		locate = func(string) []string { return nil }
	}
	sizeOf := p.InputBytes
	if sizeOf == nil {
		sizeOf = func(string) int64 { return 0 }
	}

	for _, id := range a.Order {
		aj := a.Jobs[id]

		// Virtual-data reuse: prune jobs whose every output already has a
		// replica somewhere.
		allExist := true
		for _, lfn := range aj.DV.Outputs {
			if len(locate(lfn)) == 0 {
				allExist = false
				break
			}
		}
		if allExist {
			out.Reused = append(out.Reused, id)
			continue
		}

		execSite, err := p.selectSite(sites, aj.TR, vo)
		if err != nil {
			return nil, fmt.Errorf("%w (job %s)", err, id)
		}
		computeSite[id] = execSite

		compute := add(&ConcreteJob{
			Name: "compute_" + id,
			Type: Compute,
			Site: execSite,
			DV:   aj.DV,
			TR:   aj.TR,
		})

		// Inputs produced by plan parents: move across sites if needed.
		for _, parentID := range aj.Parents {
			if _, pruned := computeSite[parentID]; !pruned {
				// Parent was reused: its outputs come from RLS like
				// external inputs.
				continue
			}
			parentSite := computeSite[parentID]
			parentName := "compute_" + parentID
			if parentSite == execSite {
				compute.Parents = append(compute.Parents, parentName)
				continue
			}
			// Inter-site transfer of every parent output this job consumes.
			for _, lfn := range a.Jobs[parentID].DV.Outputs {
				if !consumes(aj.DV.Inputs, lfn) {
					continue
				}
				key := lfn + "@" + execSite
				name, ok := stagedAt[key]
				if !ok {
					node := add(&ConcreteJob{
						Name:    fmt.Sprintf("xfer_%s_to_%s", lfn, execSite),
						Type:    Transfer,
						Site:    execSite,
						SrcSite: parentSite,
						LFN:     lfn,
						Bytes:   a.Jobs[parentID].TR.OutputBytes,
						Parents: []string{parentName},
					})
					stagedAt[key] = node.Name
					name = node.Name
				}
				compute.Parents = append(compute.Parents, name)
			}
		}

		// External inputs (including reused parents' outputs): stage in
		// from an RLS replica unless one is already at the exec site.
		externals := append([]string(nil), aj.ExternalInputs...)
		for _, parentID := range aj.Parents {
			if _, planned := computeSite[parentID]; !planned {
				for _, lfn := range a.Jobs[parentID].DV.Outputs {
					if consumes(aj.DV.Inputs, lfn) {
						externals = append(externals, lfn)
					}
				}
			}
		}
		sort.Strings(externals)
		for _, lfn := range externals {
			replicas := locate(lfn)
			if len(replicas) == 0 {
				return nil, fmt.Errorf("%w: %s (job %s)", ErrNoReplica, lfn, id)
			}
			if hasSite(replicas, execSite) {
				continue // already local
			}
			key := lfn + "@" + execSite
			name, ok := stagedAt[key]
			if !ok {
				node := add(&ConcreteJob{
					Name:    fmt.Sprintf("stagein_%s_to_%s", lfn, execSite),
					Type:    StageIn,
					Site:    execSite,
					SrcSite: p.pickReplica(lfn, replicas),
					LFN:     lfn,
					Bytes:   sizeOf(lfn),
				})
				stagedAt[key] = node.Name
				name = node.Name
			}
			compute.Parents = append(compute.Parents, name)
		}

		// Stage out + register each output.
		for _, lfn := range aj.DV.Outputs {
			outputSite[lfn] = execSite
			registerParent := compute.Name
			if p.ArchiveSite != "" && p.ArchiveSite != execSite {
				so := add(&ConcreteJob{
					Name:    fmt.Sprintf("stageout_%s", lfn),
					Type:    StageOut,
					Site:    p.ArchiveSite,
					SrcSite: execSite,
					LFN:     lfn,
					Bytes:   aj.TR.OutputBytes,
					Parents: []string{compute.Name},
				})
				registerParent = so.Name
			}
			add(&ConcreteJob{
				Name:    fmt.Sprintf("register_%s", lfn),
				Type:    Register,
				Site:    execSite,
				LFN:     lfn,
				Parents: []string{registerParent},
			})
		}
	}
	return out, nil
}

// selectSite applies eligibility filters then the selection policy.
func (p *Planner) selectSite(sites []SiteInfo, tr *chimera.Transformation, vo string) (string, error) {
	var eligible []SiteInfo
	for _, s := range sites {
		switch {
		case !s.SupportsVO(vo):
		case tr.Walltime > 0 && s.MaxWall > 0 && tr.Walltime > s.MaxWall:
		case tr.RequiresApp != "" && !s.Apps[tr.RequiresApp]:
		case tr.RequiresOutboundIP && !s.OutboundIP:
		case tr.OutputBytes > 0 && s.FreeDisk > 0 && s.FreeDisk < tr.OutputBytes:
		default:
			eligible = append(eligible, s)
		}
	}
	if len(eligible) == 0 {
		return "", fmt.Errorf("%w for VO %s, TR %s", ErrNoEligibleSite, vo, tr.Name)
	}
	// Steer around sick sites, but never let exclusion alone fail the plan.
	if p.Exclude != nil {
		var healthy []SiteInfo
		for _, s := range eligible {
			if !p.Exclude(s.Name) {
				healthy = append(healthy, s)
			}
		}
		if len(healthy) > 0 {
			eligible = healthy
		}
	}
	sort.Slice(eligible, func(i, j int) bool { return eligible[i].Name < eligible[j].Name })

	switch p.Policy {
	case RoundRobin:
		s := eligible[p.rrNext%len(eligible)]
		p.rrNext++
		return s.Name, nil
	case VOAffinity:
		var owned []SiteInfo
		for _, s := range eligible {
			if s.OwnerVO == vo {
				owned = append(owned, s)
			}
		}
		if len(owned) > 0 {
			eligible = owned
		}
		fallthrough
	case LoadBalanced:
		best := eligible[0]
		bestScore := score(best)
		for _, s := range eligible[1:] {
			if sc := score(s); sc > bestScore {
				best, bestScore = s, sc
			}
		}
		return best.Name, nil
	}
	return eligible[0].Name, nil
}

// pickReplica chooses a stage-in source among the LFN's replica holders.
// Excluded (sick) sites are filtered first, falling back to the full set
// when every holder is sick (the transfer layer retries with failover at
// execution time). The survivors go through RankReplicas when the embedder
// wired one; otherwise the first sorted site wins, the historical choice.
func (p *Planner) pickReplica(lfn string, replicas []string) string {
	cands := replicas
	if p.Exclude != nil {
		var healthy []string
		for _, r := range replicas {
			if !p.Exclude(r) {
				healthy = append(healthy, r)
			}
		}
		if len(healthy) > 0 {
			cands = healthy
		}
	}
	if p.RankReplicas != nil {
		return p.RankReplicas(lfn, cands)
	}
	return cands[0]
}

// score ranks sites: free CPUs minus queue depth (higher is better).
func score(s SiteInfo) int { return s.FreeCPUs - s.QueuedJobs }

func consumes(inputs []string, lfn string) bool {
	for _, in := range inputs {
		if in == lfn {
			return true
		}
	}
	return false
}

func hasSite(sites []string, name string) bool {
	for _, s := range sites {
		if s == name {
			return true
		}
	}
	return false
}
