// Package ganglia implements cluster telemetry in the style of Ganglia as
// deployed on Grid3 (§5.1-5.2): per-node metric daemons (gmond), per-site
// aggregation, and a hierarchical grid-level view served centrally at the
// iGOC (gmetad).
//
// "Ganglia is used to collect cluster monitoring information such as CPU
// and network load and memory and disk usage. Ganglia-collected information
// is available through web pages served at the sites and a summary [at] a
// central server at iGOC."
package ganglia

import (
	"fmt"
	"sort"
	"time"

	"grid3/internal/rrd"
	"grid3/internal/sim"
)

// Gauge supplies the current value of one metric; the site adapter wires
// gauges to live batch/storage state.
type Gauge func() float64

// Gmond is a node- or cluster-level metric daemon: a named set of gauges.
type Gmond struct {
	Host   string
	gauges map[string]Gauge
}

// NewGmond creates a daemon for a host.
func NewGmond(host string) *Gmond {
	return &Gmond{Host: host, gauges: make(map[string]Gauge)}
}

// Register adds a metric gauge.
func (g *Gmond) Register(metric string, fn Gauge) {
	g.gauges[metric] = fn
}

// Sample reads all gauges.
func (g *Gmond) Sample() map[string]float64 {
	out := make(map[string]float64, len(g.gauges))
	for m, fn := range g.gauges {
		out[m] = fn()
	}
	return out
}

// Metrics returns registered metric names, sorted.
func (g *Gmond) Metrics() []string {
	out := make([]string, 0, len(g.gauges))
	for m := range g.gauges {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// ClusterSummary is one site's aggregate at a sample instant.
type ClusterSummary struct {
	Cluster string
	Time    time.Duration
	Hosts   int
	// Metrics holds per-metric sums across the cluster's gmonds.
	Metrics map[string]float64
}

// Gmetad polls a set of gmonds on a fixed interval, keeps the latest
// cluster summary, and records each metric into an RRD for history.
type Gmetad struct {
	eng     sim.Scheduler
	cluster string
	gmonds  []*Gmond
	ticker  *sim.Ticker
	last    ClusterSummary
	history map[string]*rrd.Database
	specs   []rrd.ArchiveSpec

	// Stage, when set, receives each poll's history samples (in sorted
	// metric order) instead of the immediate RRD update; the ingest
	// batcher commits them later through CommitHistory. The live
	// Summary is unaffected — only history writes are staged.
	Stage func(metric string, t time.Duration, v float64)
	// PreRead, when set, runs before history reads; the ingest batcher
	// hooks its Drain here (read-your-writes).
	PreRead func()
}

// DefaultArchives is the Grid3 dashboard configuration: 5-minute buckets
// for a day, 1-hour buckets for 200 days (covering the whole Table 1
// window).
var DefaultArchives = []rrd.ArchiveSpec{
	{Step: 5 * time.Minute, Rows: 288, CF: rrd.Average},
	{Step: time.Hour, Rows: 4800, CF: rrd.Average},
}

// NewGmetad creates an aggregator polling every interval.
func NewGmetad(eng sim.Scheduler, cluster string, interval time.Duration) *Gmetad {
	g := &Gmetad{
		eng:     eng,
		cluster: cluster,
		history: make(map[string]*rrd.Database),
		specs:   DefaultArchives,
	}
	g.ticker = sim.NewTicker(eng, interval, g.poll)
	return g
}

// Cluster returns the aggregator's cluster name.
func (g *Gmetad) Cluster() string { return g.cluster }

// Watch adds a gmond to the polling set.
func (g *Gmetad) Watch(m *Gmond) { g.gmonds = append(g.gmonds, m) }

// Stop halts polling.
func (g *Gmetad) Stop() { g.ticker.Stop() }

func (g *Gmetad) poll() {
	sum := ClusterSummary{
		Cluster: g.cluster,
		Time:    g.eng.Now(),
		Hosts:   len(g.gmonds),
		Metrics: make(map[string]float64),
	}
	for _, m := range g.gmonds {
		for metric, v := range m.Sample() {
			sum.Metrics[metric] += v
		}
	}
	g.last = sum
	if g.Stage != nil {
		// Staged path: emit in sorted metric order so batch contents are
		// reproducible run-to-run (map iteration order is not).
		keys := make([]string, 0, len(sum.Metrics))
		for metric := range sum.Metrics {
			keys = append(keys, metric)
		}
		sort.Strings(keys)
		for _, metric := range keys {
			g.Stage(metric, sum.Time, sum.Metrics[metric])
		}
		return
	}
	for metric, v := range sum.Metrics {
		g.CommitHistory(metric, sum.Time, v)
	}
}

// CommitHistory applies one history sample to the metric's RRD — the
// write half of poll, called directly on the per-event path and from
// the ingest batcher's commit on the staged path.
func (g *Gmetad) CommitHistory(metric string, t time.Duration, v float64) {
	db, ok := g.history[metric]
	if !ok {
		db = rrd.MustNew(g.specs...)
		g.history[metric] = db
	}
	db.Update(t, v)
}

// Summary returns the most recent cluster summary.
func (g *Gmetad) Summary() ClusterSummary { return g.last }

// History returns consolidated points of a metric from archive idx in
// (from, to].
func (g *Gmetad) History(metric string, idx int, from, to time.Duration) ([]rrd.Point, error) {
	if g.PreRead != nil {
		g.PreRead()
	}
	db, ok := g.history[metric]
	if !ok {
		return nil, fmt.Errorf("ganglia: no history for metric %q at %s", metric, g.cluster)
	}
	db.FlushTo(g.eng.Now())
	return db.Fetch(idx, from, to)
}

// Grid is the iGOC's hierarchical view over all site aggregators.
type Grid struct {
	metads []*Gmetad
}

// NewGrid builds the top-level view.
func NewGrid(metads ...*Gmetad) *Grid {
	return &Grid{metads: metads}
}

// Add attaches another site aggregator.
func (g *Grid) Add(m *Gmetad) { g.metads = append(g.metads, m) }

// Summaries returns per-site summaries sorted by cluster name.
func (g *Grid) Summaries() []ClusterSummary {
	out := make([]ClusterSummary, 0, len(g.metads))
	for _, m := range g.metads {
		out = append(out, m.Summary())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cluster < out[j].Cluster })
	return out
}

// Total sums one metric across all sites' latest summaries — the grid-wide
// resource availability number on the iGOC front page.
func (g *Grid) Total(metric string) float64 {
	t := 0.0
	for _, m := range g.metads {
		t += m.last.Metrics[metric]
	}
	return t
}
