package ganglia

import (
	"testing"
	"time"

	"grid3/internal/sim"
)

func TestGmondSample(t *testing.T) {
	g := NewGmond("wn01.uchicago.edu")
	load := 0.5
	g.Register("load_one", func() float64 { return load })
	g.Register("cpu_num", func() float64 { return 2 })
	s := g.Sample()
	if s["load_one"] != 0.5 || s["cpu_num"] != 2 {
		t.Fatalf("sample = %v", s)
	}
	load = 1.5
	if g.Sample()["load_one"] != 1.5 {
		t.Fatal("gauge not live")
	}
	m := g.Metrics()
	if len(m) != 2 || m[0] != "cpu_num" || m[1] != "load_one" {
		t.Fatalf("metrics = %v", m)
	}
}

func TestGmetadAggregation(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	gm := NewGmetad(eng, "UC_ATLAS_Tier2", 5*time.Minute)
	for i := 0; i < 4; i++ {
		node := NewGmond("wn")
		node.Register("cpu_num", func() float64 { return 2 })
		node.Register("load_one", func() float64 { return 0.5 })
		gm.Watch(node)
	}
	eng.RunUntil(time.Hour)
	sum := gm.Summary()
	if sum.Hosts != 4 || sum.Metrics["cpu_num"] != 8 || sum.Metrics["load_one"] != 2 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Cluster != "UC_ATLAS_Tier2" || gm.Cluster() != sum.Cluster {
		t.Fatal("cluster name wrong")
	}
}

func TestGmetadHistory(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	gm := NewGmetad(eng, "site", 5*time.Minute)
	busy := 0.0
	node := NewGmond("wn")
	node.Register("load_one", func() float64 { return busy })
	gm.Watch(node)
	eng.RunUntil(time.Hour)
	busy = 10
	eng.RunUntil(2 * time.Hour)
	pts, err := gm.History("load_one", 0, 0, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 20 {
		t.Fatalf("history points = %d", len(pts))
	}
	// The bucket ending at the very first tick is empty (NaN); the next
	// buckets carry the low then high values.
	if pts[1].Value != 0 || pts[len(pts)-1].Value != 10 {
		t.Fatalf("history endpoints = %v .. %v", pts[1], pts[len(pts)-1])
	}
	if _, err := gm.History("no_such_metric", 0, 0, time.Hour); err == nil {
		t.Fatal("missing metric history succeeded")
	}
}

func TestGmetadStop(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	gm := NewGmetad(eng, "site", 5*time.Minute)
	node := NewGmond("wn")
	calls := 0
	node.Register("x", func() float64 { calls++; return 0 })
	gm.Watch(node)
	eng.RunUntil(30 * time.Minute)
	gm.Stop()
	at := calls
	eng.RunUntil(2 * time.Hour)
	if calls != at {
		t.Fatalf("gauge polled after Stop: %d -> %d", at, calls)
	}
}

func TestGridHierarchicalView(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	grid := NewGrid()
	for _, cfg := range []struct {
		name string
		cpus float64
	}{{"BNL_ATLAS_Tier1", 400}, {"FNAL_CMS", 500}, {"UC_ATLAS_Tier2", 64}} {
		gm := NewGmetad(eng, cfg.name, 5*time.Minute)
		node := NewGmond("head")
		cpus := cfg.cpus
		node.Register("cpu_num", func() float64 { return cpus })
		gm.Watch(node)
		grid.Add(gm)
	}
	eng.RunUntil(time.Hour)
	if total := grid.Total("cpu_num"); total != 964 {
		t.Fatalf("grid total CPUs = %v", total)
	}
	sums := grid.Summaries()
	if len(sums) != 3 || sums[0].Cluster != "BNL_ATLAS_Tier1" {
		t.Fatalf("summaries = %+v", sums)
	}
}
