// Package exp is the declarative experiment grid: a versioned JSON spec
// (grid3.exp/1) naming experiments over the existing campaign modes —
// chaos, scale, data, ingest, and the plain multi-seed sweep — with axis
// lists and scenario knobs, executed deterministically through the
// campaign layer by one runner (cmd/grid3exp). Each experiment owns one
// BENCH_*.json output; the analyzer pass flattens every report into a
// grouped CSV and regenerates the EXPERIMENTS.md summary table, so the
// full evidence set the repo tracks across PRs comes from one command
// over one checked-in file instead of a drawer of ad-hoc demo scripts.
//
// The spec decoder is strict: unknown fields, a wrong schema string,
// duplicate experiment names, and axes that don't belong to the
// experiment's mode are rejected with errors naming the offender. Same
// spec, same seed, same bytes — wall-clock fields aside, which
// Normalize zeroes for diffing.
package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// Schema is the spec wire identifier. Adding optional fields is
// compatible within the version; renaming or removing one bumps it.
const Schema = "grid3.exp/1"

// Experiment modes, one per campaign runner.
const (
	ModeChaos  = "chaos"  // campaign.ChaosSweep: seeds x intensities, baseline vs recovery
	ModeScale  = "scale"  // campaign.ScaleSweep: growing site populations, serial points
	ModeData   = "data"   // campaign.DataSweep: raw GridFTP baseline vs managed plane
	ModeIngest = "ingest" // campaign.IngestSweep: synthetic metric stream per batch size
	ModeSweep  = "sweep"  // campaign.Sweep: one full scenario per seed
)

// Duration is a time.Duration that rides JSON as a Go duration string
// ("48h", "90m"). The zero value marshals "0s" but is normally omitted.
type Duration time.Duration

// Std converts back to the standard library type.
func (d Duration) Std() time.Duration { return time.Duration(d) }

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("durations are strings like \"48h\": %w", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("bad duration %q (want Go syntax like \"48h\")", s)
	}
	*d = Duration(v)
	return nil
}

// Spec is one experiment grid: a named set of experiments plus the
// analyzer outputs the runner regenerates after a full pass.
type Spec struct {
	Schema string `json:"schema"`
	// Name labels the grid in logs and the markdown block.
	Name string `json:"name"`
	// CSV, when set, receives the grouped long-format table of every
	// deterministic metric across all experiments (one row per scalar).
	CSV string `json:"csv,omitempty"`
	// Markdown, when set, is the file whose grid3exp marker block is
	// rewritten with the summary table (created whole if missing).
	Markdown    string       `json:"markdown,omitempty"`
	Experiments []Experiment `json:"experiments"`
}

// Experiment is one named point grid: a campaign mode, the axes swept,
// the scenario knobs held constant, and the report file it owns.
type Experiment struct {
	Name string `json:"name"`
	Mode string `json:"mode"`
	// Out is the report path (relative to the runner's -out-dir), e.g.
	// "BENCH_chaos.json". The written bytes are the campaign report's
	// versioned JSON rendering, identical to grid3sim's -json-out.
	Out   string `json:"out"`
	Axes  Axes   `json:"axes,omitempty"`
	Knobs Knobs  `json:"knobs,omitempty"`
}

// Axes are the swept dimensions. Which fields are legal depends on the
// mode — seeds everywhere but ingest, intensities only for chaos, sites
// only for scale, batch_sizes only for ingest — and validation rejects a
// spec that crosses them. Empty axes fall back to the campaign's own
// defaults (the same ones the grid3sim flags use).
type Axes struct {
	Seeds       []int64   `json:"seeds,omitempty"`
	Intensities []float64 `json:"intensities,omitempty"`
	Sites       []int     `json:"sites,omitempty"`
	BatchSizes  []int     `json:"batch_sizes,omitempty"`
}

// Knobs are the scenario settings held constant across the experiment's
// points. Zero values keep the same defaults the grid3sim flags have, so
// a spec line and a CLI invocation with the same words mean the same run.
type Knobs struct {
	// Scale is the workload scale factor (0 = 1.0, the paper's ~290k jobs).
	Scale float64 `json:"scale,omitempty"`
	// Days is the simulated horizon; 0 keeps each mode's own default
	// (chaos/sweep: the 183-day campaign; data: 30; scale: 1).
	Days int `json:"days,omitempty"`
	// TestbedSites grows the synthetic testbed (0 = the 27-site catalog).
	TestbedSites int `json:"testbed_sites,omitempty"`
	// Doors bounds concurrent GridFTP flows per endpoint (data mode).
	Doors int `json:"doors,omitempty"`
	// Shards partitions the testbed for the sharded engine; in scale mode
	// every point is then measured serial AND sharded.
	Shards int `json:"shards,omitempty"`
	// Watermark is the managed data plane's cleanup threshold.
	Watermark float64 `json:"watermark,omitempty"`
	// Events is the synthetic stream length per ingest point.
	Events int `json:"events,omitempty"`
	// AuditDays bounds the ingest audit leg (0 = default 2; negative skips).
	AuditDays int `json:"audit_days,omitempty"`
	// Window is the ingest batching window (0 = the monitor interval).
	Window Duration `json:"window,omitempty"`
	// Workers caps campaign parallelism (0 = GOMAXPROCS). Point results
	// never depend on it; only wall time does.
	Workers int `json:"workers,omitempty"`
	// Health arms site health probing; Recovery closes the loop.
	Health   bool `json:"health,omitempty"`
	Recovery bool `json:"recovery,omitempty"`
	// UpgradeAt arms the rolling VDT/Pacman upgrade wave; UpgradeStagger
	// is the tier-to-tier delay (0 = the 48h default).
	UpgradeAt      Duration `json:"upgrade_at,omitempty"`
	UpgradeStagger Duration `json:"upgrade_stagger,omitempty"`
	// CertLifetime arms GSI host-credential expiry storms; CertRenewal is
	// the mean renewal outage (0 = the 3h default); RevokeFraction is the
	// per-cycle chance a credential is revoked mid-life instead.
	CertLifetime   Duration `json:"cert_lifetime,omitempty"`
	CertRenewal    Duration `json:"cert_renewal,omitempty"`
	RevokeFraction float64  `json:"revoke_fraction,omitempty"`
}

// Decode reads one strict JSON spec: unknown fields and trailing data are
// errors, and the result is validated before it is returned.
func Decode(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("exp: decode spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("exp: trailing data after the spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// DecodeFile reads and validates a spec file.
func DecodeFile(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("exp: %w", err)
	}
	defer f.Close()
	s, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}

// Validate checks the whole grid; the first problem found is returned
// with the offending experiment named.
func (s *Spec) Validate() error {
	if s.Schema != Schema {
		return fmt.Errorf("exp: schema %q is not %q", s.Schema, Schema)
	}
	if len(s.Experiments) == 0 {
		return fmt.Errorf("exp: spec names no experiments")
	}
	names := map[string]bool{}
	outs := map[string]string{}
	for i := range s.Experiments {
		e := &s.Experiments[i]
		if e.Name == "" {
			return fmt.Errorf("exp: experiment %d has no name", i)
		}
		if names[e.Name] {
			return fmt.Errorf("exp: duplicate experiment name %q", e.Name)
		}
		names[e.Name] = true
		if e.Out == "" {
			return fmt.Errorf("exp: experiment %q has no output file", e.Name)
		}
		if prev, dup := outs[e.Out]; dup {
			return fmt.Errorf("exp: experiments %q and %q both write %s", prev, e.Name, e.Out)
		}
		outs[e.Out] = e.Name
		if err := e.validate(); err != nil {
			return fmt.Errorf("exp: experiment %q: %w", e.Name, err)
		}
	}
	return nil
}

func (e *Experiment) validate() error {
	// Axis legality per mode: an axis on the wrong mode is a silent no-op
	// waiting to mislead, so it is rejected outright.
	type axisRule struct {
		name    string
		present bool
		modes   map[string]bool
	}
	rules := []axisRule{
		{"seeds", len(e.Axes.Seeds) > 0, map[string]bool{ModeChaos: true, ModeScale: true, ModeData: true, ModeSweep: true}},
		{"intensities", len(e.Axes.Intensities) > 0, map[string]bool{ModeChaos: true}},
		{"sites", len(e.Axes.Sites) > 0, map[string]bool{ModeScale: true}},
		{"batch_sizes", len(e.Axes.BatchSizes) > 0, map[string]bool{ModeIngest: true}},
	}
	switch e.Mode {
	case ModeChaos, ModeScale, ModeData, ModeIngest, ModeSweep:
	default:
		return fmt.Errorf("unknown mode %q (want chaos, scale, data, ingest, or sweep)", e.Mode)
	}
	for _, r := range rules {
		if r.present && !r.modes[e.Mode] {
			return fmt.Errorf("axis %s does not apply to mode %q", r.name, e.Mode)
		}
	}
	for _, v := range e.Axes.Intensities {
		if v <= 0 {
			return fmt.Errorf("intensity %g is not positive", v)
		}
	}
	for _, n := range e.Axes.Sites {
		if n <= 0 {
			return fmt.Errorf("site count %d is not positive", n)
		}
	}
	for _, n := range e.Axes.BatchSizes {
		if n < 0 {
			return fmt.Errorf("batch size %d is negative", n)
		}
	}
	k := e.Knobs
	if k.Scale < 0 {
		return fmt.Errorf("scale %g is negative", k.Scale)
	}
	if k.Days < 0 {
		return fmt.Errorf("days %d is negative", k.Days)
	}
	if k.RevokeFraction < 0 || k.RevokeFraction > 1 {
		return fmt.Errorf("revoke_fraction %g is outside [0, 1]", k.RevokeFraction)
	}
	for _, d := range []struct {
		name string
		v    Duration
	}{
		{"window", k.Window},
		{"upgrade_at", k.UpgradeAt},
		{"upgrade_stagger", k.UpgradeStagger},
		{"cert_lifetime", k.CertLifetime},
		{"cert_renewal", k.CertRenewal},
	} {
		if d.v < 0 {
			return fmt.Errorf("%s %v is negative", d.name, d.v.Std())
		}
	}
	// The tuning knob without its arming knob is the same configuration
	// mistake the grid3sim flag pairs refuse.
	if k.UpgradeStagger != 0 && k.UpgradeAt == 0 {
		return fmt.Errorf("upgrade_stagger needs upgrade_at")
	}
	if k.CertRenewal != 0 && k.CertLifetime == 0 {
		return fmt.Errorf("cert_renewal needs cert_lifetime")
	}
	if k.RevokeFraction != 0 && k.CertLifetime == 0 {
		return fmt.Errorf("revoke_fraction needs cert_lifetime")
	}
	return nil
}

// Experiment returns the named experiment, or nil.
func (s *Spec) Experiment(name string) *Experiment {
	for i := range s.Experiments {
		if s.Experiments[i].Name == name {
			return &s.Experiments[i]
		}
	}
	return nil
}
