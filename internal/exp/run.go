package exp

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"grid3/internal/campaign"
	"grid3/internal/core"
)

// RunOptions shape one runner pass.
type RunOptions struct {
	// OutDir receives every output path in the spec ("" = the current
	// directory). Created if missing.
	OutDir string
	// Only restricts the pass to the named experiments; empty runs all.
	// A name not in the spec is an error, not a silent skip.
	Only []string
	// Log receives the campaign reports' human renderings and per-file
	// progress lines (nil = discard).
	Log io.Writer
}

// Outcome is one executed experiment: the report file written and its
// exact bytes, for the analyzer pass.
type Outcome struct {
	Name string
	Mode string
	Path string // full path written (OutDir joined with the spec's out)
	Raw  []byte // the report JSON as written
}

// report is the shared surface of every campaign report.
type report interface {
	Write(io.Writer)
	JSON() ([]byte, error)
}

// Run executes the grid: every selected experiment in spec order, each
// through its campaign runner, each writing its own report file.
// Experiments run serially — scale mode's allocation accounting demands
// it, and the campaigns parallelize internally where it is safe.
func Run(spec *Spec, opts RunOptions) ([]Outcome, error) {
	logw := opts.Log
	if logw == nil {
		logw = io.Discard
	}
	selected := spec.Experiments
	if len(opts.Only) > 0 {
		selected = nil
		for _, name := range opts.Only {
			e := spec.Experiment(name)
			if e == nil {
				return nil, fmt.Errorf("exp: -only names unknown experiment %q", name)
			}
			selected = append(selected, *e)
		}
	}
	if opts.OutDir != "" {
		if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
			return nil, fmt.Errorf("exp: %w", err)
		}
	}
	var outcomes []Outcome
	for i := range selected {
		e := &selected[i]
		fmt.Fprintf(logw, "== experiment %s (%s)\n", e.Name, e.Mode)
		rep, err := runExperiment(e)
		if err != nil {
			return nil, fmt.Errorf("exp: experiment %q: %w", e.Name, err)
		}
		rep.Write(logw)
		raw, err := rep.JSON()
		if err != nil {
			return nil, fmt.Errorf("exp: experiment %q: render report: %w", e.Name, err)
		}
		path := filepath.Join(opts.OutDir, e.Out)
		if dir := filepath.Dir(path); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, fmt.Errorf("exp: %w", err)
			}
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			return nil, fmt.Errorf("exp: experiment %q: %w", e.Name, err)
		}
		fmt.Fprintf(logw, "wrote %s\n", path)
		outcomes = append(outcomes, Outcome{Name: e.Name, Mode: e.Mode, Path: path, Raw: raw})
	}
	return outcomes, nil
}

// base builds the scenario configuration the knobs describe, mirroring
// the grid3sim flag-to-config wiring so a spec knob and the CLI flag of
// the same name produce byte-identical runs.
func (k Knobs) base() core.ScenarioConfig {
	scale := k.Scale
	if scale == 0 {
		scale = 1.0
	}
	days := k.Days
	if days == 0 {
		days = 183
	}
	return core.ScenarioConfig{
		Config: core.Config{
			TestbedSites:   k.TestbedSites,
			TransferDoors:  k.Doors,
			Shards:         k.Shards,
			EnableHealth:   k.Health,
			EnableRecovery: k.Recovery,
		},
		Horizon:  time.Duration(days) * 24 * time.Hour,
		JobScale: scale,
		UpgradeWave: core.UpgradeWaveConfig{
			Start:   k.UpgradeAt.Std(),
			Stagger: k.UpgradeStagger.Std(),
		},
		CertWave: core.CertWaveConfig{
			Lifetime:       k.CertLifetime.Std(),
			RenewalDelay:   k.CertRenewal.Std(),
			RevokeFraction: k.RevokeFraction,
		},
	}
}

// runExperiment dispatches one experiment to its campaign runner.
func runExperiment(e *Experiment) (report, error) {
	base := e.Knobs.base()
	switch e.Mode {
	case ModeChaos:
		return campaign.ChaosSweep(campaign.ChaosSweepConfig{
			Seeds:       e.Axes.Seeds,
			Intensities: e.Axes.Intensities,
			Base:        base,
			Workers:     e.Knobs.Workers,
		})
	case ModeScale:
		return campaign.ScaleSweep(campaign.ScaleSweepConfig{
			SiteCounts: e.Axes.Sites,
			Seeds:      e.Axes.Seeds,
			Days:       e.Knobs.Days,
			JobScale:   base.JobScale,
			Base:       base,
		})
	case ModeData:
		return campaign.DataSweep(campaign.DataSweepConfig{
			Seeds:     e.Axes.Seeds,
			Days:      e.Knobs.Days,
			Doors:     e.Knobs.Doors,
			Watermark: e.Knobs.Watermark,
			Base:      base,
			Workers:   e.Knobs.Workers,
		})
	case ModeIngest:
		return campaign.IngestSweep(campaign.IngestSweepConfig{
			BatchSizes: e.Axes.BatchSizes,
			Events:     e.Knobs.Events,
			Window:     e.Knobs.Window.Std(),
			AuditDays:  e.Knobs.AuditDays,
			Base:       base,
		})
	case ModeSweep:
		seeds := e.Axes.Seeds
		if len(seeds) == 0 {
			seeds = []int64{1}
		}
		runs := make([]campaign.Run, len(seeds))
		for i, s := range seeds {
			runs[i] = campaign.Run{Seed: s, Scale: base.JobScale, Config: base}
		}
		return campaign.Sweep(runs, e.Knobs.Workers)
	}
	return nil, fmt.Errorf("unknown mode %q", e.Mode)
}
