package exp

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoldenRoundTrip freezes the grid3.exp/1 wire form: the checked-in
// golden decodes, re-marshals to its own bytes exactly, and survives a
// second decode. Any field rename, reorder, or representation change
// breaks this test before it breaks a user's checked-in spec.
func TestGoldenRoundTrip(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Decode(bytes.NewReader(golden))
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, '\n')
	if !bytes.Equal(out, golden) {
		t.Fatalf("golden round trip changed the bytes:\n--- golden\n%s\n--- re-marshal\n%s", golden, out)
	}
	if _, err := Decode(bytes.NewReader(out)); err != nil {
		t.Fatalf("re-marshaled golden does not decode: %v", err)
	}
	if got := spec.Experiment("waves"); got == nil || got.Knobs.RevokeFraction != 0.25 {
		t.Fatalf("golden lookup: %+v", got)
	}
}

// TestCheckedInSpecsValidate keeps the repo's own experiment grids honest
// against the decoder they will meet at run time.
func TestCheckedInSpecsValidate(t *testing.T) {
	for _, path := range []string{"core.json", "smoke.json"} {
		spec, err := DecodeFile(filepath.Join("..", "..", "experiments", path))
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if len(spec.Experiments) == 0 {
			t.Errorf("%s: no experiments", path)
		}
	}
}

// TestDecodeRejects walks the refusal matrix: every malformed spec gets a
// loud error naming the offense, never a silent partial decode.
func TestDecodeRejects(t *testing.T) {
	const valid = `{"schema": "grid3.exp/1", "name": "x", "experiments": [
		{"name": "a", "mode": "sweep", "out": "a.json"}]}`
	if _, err := Decode(strings.NewReader(valid)); err != nil {
		t.Fatalf("baseline spec rejected: %v", err)
	}
	cases := []struct {
		name, spec, want string
	}{
		{"wrong schema",
			`{"schema": "grid3.exp/2", "experiments": [{"name": "a", "mode": "sweep", "out": "a.json"}]}`,
			`schema "grid3.exp/2" is not "grid3.exp/1"`},
		{"unknown top-level field",
			`{"schema": "grid3.exp/1", "bogus": 1, "experiments": [{"name": "a", "mode": "sweep", "out": "a.json"}]}`,
			`unknown field "bogus"`},
		{"unknown knob",
			`{"schema": "grid3.exp/1", "experiments": [{"name": "a", "mode": "sweep", "out": "a.json", "knobs": {"dayz": 3}}]}`,
			`unknown field "dayz"`},
		{"no experiments",
			`{"schema": "grid3.exp/1", "experiments": []}`,
			"names no experiments"},
		{"empty name",
			`{"schema": "grid3.exp/1", "experiments": [{"name": "", "mode": "sweep", "out": "a.json"}]}`,
			"has no name"},
		{"duplicate names",
			`{"schema": "grid3.exp/1", "experiments": [
				{"name": "a", "mode": "sweep", "out": "a.json"},
				{"name": "a", "mode": "sweep", "out": "b.json"}]}`,
			`duplicate experiment name "a"`},
		{"duplicate outputs",
			`{"schema": "grid3.exp/1", "experiments": [
				{"name": "a", "mode": "sweep", "out": "a.json"},
				{"name": "b", "mode": "sweep", "out": "a.json"}]}`,
			`both write a.json`},
		{"missing out",
			`{"schema": "grid3.exp/1", "experiments": [{"name": "a", "mode": "sweep"}]}`,
			"no output file"},
		{"bad mode",
			`{"schema": "grid3.exp/1", "experiments": [{"name": "a", "mode": "warp", "out": "a.json"}]}`,
			`unknown mode "warp"`},
		{"axis on wrong mode",
			`{"schema": "grid3.exp/1", "experiments": [
				{"name": "a", "mode": "chaos", "out": "a.json", "axes": {"sites": [27]}}]}`,
			`axis sites does not apply to mode "chaos"`},
		{"seeds on ingest",
			`{"schema": "grid3.exp/1", "experiments": [
				{"name": "a", "mode": "ingest", "out": "a.json", "axes": {"seeds": [1]}}]}`,
			`axis seeds does not apply to mode "ingest"`},
		{"non-positive intensity",
			`{"schema": "grid3.exp/1", "experiments": [
				{"name": "a", "mode": "chaos", "out": "a.json", "axes": {"intensities": [2, 0]}}]}`,
			"intensity 0 is not positive"},
		{"non-positive site count",
			`{"schema": "grid3.exp/1", "experiments": [
				{"name": "a", "mode": "scale", "out": "a.json", "axes": {"sites": [27, -3]}}]}`,
			"site count -3 is not positive"},
		{"negative batch size",
			`{"schema": "grid3.exp/1", "experiments": [
				{"name": "a", "mode": "ingest", "out": "a.json", "axes": {"batch_sizes": [-1]}}]}`,
			"batch size -1 is negative"},
		{"negative scale",
			`{"schema": "grid3.exp/1", "experiments": [
				{"name": "a", "mode": "sweep", "out": "a.json", "knobs": {"scale": -1}}]}`,
			"scale -1 is negative"},
		{"bad duration",
			`{"schema": "grid3.exp/1", "experiments": [
				{"name": "a", "mode": "sweep", "out": "a.json", "knobs": {"upgrade_at": "2 days"}}]}`,
			`bad duration "2 days"`},
		{"numeric duration",
			`{"schema": "grid3.exp/1", "experiments": [
				{"name": "a", "mode": "sweep", "out": "a.json", "knobs": {"upgrade_at": 86400}}]}`,
			`durations are strings`},
		{"stagger without start",
			`{"schema": "grid3.exp/1", "experiments": [
				{"name": "a", "mode": "sweep", "out": "a.json", "knobs": {"upgrade_stagger": "48h"}}]}`,
			"upgrade_stagger needs upgrade_at"},
		{"renewal without lifetime",
			`{"schema": "grid3.exp/1", "experiments": [
				{"name": "a", "mode": "sweep", "out": "a.json", "knobs": {"cert_renewal": "3h"}}]}`,
			"cert_renewal needs cert_lifetime"},
		{"revoke fraction without lifetime",
			`{"schema": "grid3.exp/1", "experiments": [
				{"name": "a", "mode": "sweep", "out": "a.json", "knobs": {"revoke_fraction": 0.5}}]}`,
			"revoke_fraction needs cert_lifetime"},
		{"revoke fraction out of range",
			`{"schema": "grid3.exp/1", "experiments": [
				{"name": "a", "mode": "sweep", "out": "a.json", "knobs": {"cert_lifetime": "96h", "revoke_fraction": 1.5}}]}`,
			"outside [0, 1]"},
		{"trailing garbage", valid + ` {"second": "object"}`,
			"trailing data"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(strings.NewReader(tc.spec))
			if err == nil {
				t.Fatalf("accepted: %s", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestNormalize pins the diffable form: wall-clock fields zeroed at any
// depth, deterministic literals untouched, keys sorted, idempotent.
func TestNormalize(t *testing.T) {
	raw := []byte(`{
		"wall_seconds": 12.5,
		"schema": "grid3.scale-sweep/1",
		"points": [
			{"sites": 27, "events_per_second": 99999.9, "goodput": 0.8125, "mallocs": 123456}
		],
		"aggregate": {"gomaxprocs": 16, "jobs": 42}
	}`)
	norm, err := Normalize(raw)
	if err != nil {
		t.Fatal(err)
	}
	var v struct {
		Wall   float64 `json:"wall_seconds"`
		Points []struct {
			EventsPerS float64 `json:"events_per_second"`
			Goodput    float64 `json:"goodput"`
			Mallocs    int     `json:"mallocs"`
		} `json:"points"`
		Agg struct {
			GoMaxProcs int `json:"gomaxprocs"`
			Jobs       int `json:"jobs"`
		} `json:"aggregate"`
	}
	if err := json.Unmarshal(norm, &v); err != nil {
		t.Fatal(err)
	}
	if v.Wall != 0 || v.Points[0].EventsPerS != 0 || v.Points[0].Mallocs != 0 || v.Agg.GoMaxProcs != 0 {
		t.Fatalf("wall-clock fields survived: %s", norm)
	}
	if v.Points[0].Goodput != 0.8125 || v.Agg.Jobs != 42 {
		t.Fatalf("deterministic fields damaged: %s", norm)
	}
	if !bytes.HasSuffix(norm, []byte("\n")) {
		t.Fatal("normalized output is not newline-terminated")
	}
	again, err := Normalize(norm)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(norm, again) {
		t.Fatal("Normalize is not idempotent")
	}
}

// TestRows pins the CSV flattening: dotted sorted paths, wall-clock
// fields dropped rather than zero-padded.
func TestRows(t *testing.T) {
	o := Outcome{Name: "x", Mode: ModeSweep, Raw: []byte(
		`{"b": 2, "a": {"nested": true}, "wall_seconds": 9, "list": ["s", 3]}`)}
	rows, err := Rows(o)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, r := range rows {
		got = append(got, r.Key+"="+r.Value)
	}
	want := []string{"a.nested=true", "b=2", "list.0=s", "list.1=3"}
	if len(got) != len(want) {
		t.Fatalf("rows %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rows %v, want %v", got, want)
		}
	}
}

// smokeSpec is a grid small enough for unit tests: one wave-armed sweep
// and one truncated ingest run.
const smokeSpec = `{
  "schema": "grid3.exp/1",
  "name": "unit",
  "csv": "summary.csv",
  "markdown": "SUMMARY.md",
  "experiments": [
    {"name": "waves", "mode": "sweep", "out": "BENCH_waves.json",
     "axes": {"seeds": [7]},
     "knobs": {"scale": 0.002, "days": 4, "testbed_sites": 6,
               "upgrade_at": "12h", "upgrade_stagger": "12h"}},
    {"name": "ingest", "mode": "ingest", "out": "BENCH_ingest.json",
     "axes": {"batch_sizes": [0, 16]},
     "knobs": {"events": 5000, "audit_days": -1}}
  ]
}`

// TestRunDeterministic executes the unit grid twice into separate
// directories: every report must normalize to identical bytes, the CSV
// must be byte-identical as written (it carries only deterministic
// fields), and the markdown block must be created with both markers.
func TestRunDeterministic(t *testing.T) {
	spec, err := Decode(strings.NewReader(smokeSpec))
	if err != nil {
		t.Fatal(err)
	}
	dirs := []string{t.TempDir(), t.TempDir()}
	for _, dir := range dirs {
		outcomes, err := Run(spec, RunOptions{OutDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if len(outcomes) != 2 {
			t.Fatalf("ran %d experiments, want 2", len(outcomes))
		}
		if err := Analyze(spec, outcomes, dir); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"BENCH_waves.json", "BENCH_ingest.json"} {
		var norm [][]byte
		for _, dir := range dirs {
			raw, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			n, err := Normalize(raw)
			if err != nil {
				t.Fatal(err)
			}
			norm = append(norm, n)
		}
		if !bytes.Equal(norm[0], norm[1]) {
			t.Errorf("%s: normalized reports differ across runs", name)
		}
	}
	csvA, err := os.ReadFile(filepath.Join(dirs[0], "summary.csv"))
	if err != nil {
		t.Fatal(err)
	}
	csvB, err := os.ReadFile(filepath.Join(dirs[1], "summary.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csvA, csvB) {
		t.Error("summary.csv differs across runs")
	}
	if !bytes.Contains(csvA, []byte("waves,sweep,")) {
		t.Errorf("CSV is missing the waves experiment:\n%s", csvA)
	}
	md, err := os.ReadFile(filepath.Join(dirs[0], "SUMMARY.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(md, []byte(markerBegin)) || !bytes.Contains(md, []byte(markerEnd)) {
		t.Fatalf("markdown block is missing its markers:\n%s", md)
	}
	if !bytes.Contains(md, []byte("site upgrades")) {
		t.Errorf("markdown headline is missing the upgrade-wave counters:\n%s", md)
	}

	// The waves report must actually carry the wave counters.
	raw, _ := os.ReadFile(filepath.Join(dirs[0], "BENCH_waves.json"))
	var rep struct {
		Runs []struct {
			Waves *struct {
				UpgradedSites int `json:"upgraded_sites"`
			} `json:"waves"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 1 || rep.Runs[0].Waves == nil || rep.Runs[0].Waves.UpgradedSites == 0 {
		t.Fatalf("waves report carries no upgrade counters: %s", raw)
	}
}

// TestRunOnly pins the subset contract: unknown names refuse, known
// names run just that experiment.
func TestRunOnly(t *testing.T) {
	spec, err := Decode(strings.NewReader(smokeSpec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, RunOptions{OutDir: t.TempDir(), Only: []string{"nope"}}); err == nil ||
		!strings.Contains(err.Error(), `unknown experiment "nope"`) {
		t.Fatalf("unknown -only name not refused: %v", err)
	}
	dir := t.TempDir()
	outcomes, err := Run(spec, RunOptions{OutDir: dir, Only: []string{"ingest"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 1 || outcomes[0].Name != "ingest" {
		t.Fatalf("outcomes %+v, want just ingest", outcomes)
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_waves.json")); !os.IsNotExist(err) {
		t.Fatal("-only ingest still wrote the waves report")
	}
}

// TestRewriteMarkdown covers the three file states: absent (created),
// markers present (replaced in place), markers absent (appended).
func TestRewriteMarkdown(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "EXP.md")
	block := markerBegin + "\nv1\n" + markerEnd

	if err := RewriteMarkdown(path, block); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if !bytes.Contains(got, []byte("v1")) {
		t.Fatalf("create: %s", got)
	}

	block2 := markerBegin + "\nv2\n" + markerEnd
	if err := RewriteMarkdown(path, block2); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if bytes.Contains(got, []byte("v1")) || !bytes.Contains(got, []byte("v2")) {
		t.Fatalf("replace: %s", got)
	}
	if n := bytes.Count(got, []byte(markerBegin)); n != 1 {
		t.Fatalf("replace left %d begin markers", n)
	}

	plain := filepath.Join(dir, "PLAIN.md")
	if err := os.WriteFile(plain, []byte("# Hand-written intro\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := RewriteMarkdown(plain, block); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(plain)
	if !bytes.Contains(got, []byte("Hand-written intro")) || !bytes.Contains(got, []byte("v1")) {
		t.Fatalf("append: %s", got)
	}
}
