package campaign

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"grid3/internal/core"
)

// ScaleSweepConfig parameterizes a testbed-scale campaign: the same
// scenario run at growing site populations, measuring how the scheduling
// and information-system hot paths hold up from Grid3's 27 sites to the
// 1000+ the synthetic testbed can generate.
type ScaleSweepConfig struct {
	// SiteCounts defaults to {27, 100, 300, 1000}.
	SiteCounts []int
	// Seeds defaults to {1}.
	Seeds []int64
	// Days is the simulated horizon per point; default 1.
	Days int
	// JobScale multiplies the workload (default 1.0). Held constant across
	// points so ns/sim-day growth isolates the cost of more sites, not
	// more jobs.
	JobScale float64
	// Shards lists the region-shard counts to measure at every (sites,
	// seed) point; 0 or 1 entries mean the serial path. Empty defaults to
	// {0}, or {0, Base.Config.Shards} when the base config is sharded — so
	// a sharded sweep records the serial reference beside each sharded
	// point and the speedup attribution stays within one sweep.
	Shards []int
	// Base rides along into every point's ScenarioConfig; Sites, Seed,
	// Shards, and Horizon are overridden per point.
	Base core.ScenarioConfig
}

// ScalePoint is one (sites, seed) measurement.
type ScalePoint struct {
	Sites       int     `json:"sites"`
	Seed        int64   `json:"seed"`
	CPUs        int     `json:"cpus"`
	WallSecs    float64 `json:"wall_seconds"`
	Events      uint64  `json:"events"`
	EventsPerS  float64 `json:"events_per_second"`
	NsPerSimDay float64 `json:"ns_per_sim_day"`
	Mallocs     uint64  `json:"mallocs"`
	AllocBytes  uint64  `json:"alloc_bytes"`
	Submitted   int     `json:"submitted"`
	Completed   int     `json:"completed"`
	// Goodput is completed/submitted — held near the 27-site value when
	// the matchmaking and information paths scale cleanly.
	Goodput float64 `json:"goodput"`
	// Shards is the point's region-shard count (absent = serial).
	Shards int `json:"shards,omitempty"`
	// ParallelSpeedup is the sharded point's achieved work-parallelism:
	// summed per-region evaluation work over the critical path. Absent for
	// serial points.
	ParallelSpeedup float64 `json:"parallel_speedup,omitempty"`
}

// ScaleReport is a completed scale sweep.
type ScaleReport struct {
	Days     int
	JobScale float64
	Points   []ScalePoint
	Elapsed  time.Duration
}

// ScaleSweep measures simulation cost as the testbed grows. Points run
// SERIALLY — unlike Sweep's parallel seeds — because each point's
// Mallocs/AllocBytes come from runtime.ReadMemStats deltas, which only
// attribute cleanly when nothing else allocates concurrently.
func ScaleSweep(cfg ScaleSweepConfig) (*ScaleReport, error) {
	if len(cfg.SiteCounts) == 0 {
		cfg.SiteCounts = []int{27, 100, 300, 1000}
	}
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []int64{1}
	}
	if cfg.Days <= 0 {
		cfg.Days = 1
	}
	if cfg.JobScale == 0 {
		cfg.JobScale = 1.0
	}
	if len(cfg.Shards) == 0 {
		cfg.Shards = []int{0}
		if cfg.Base.Config.Shards > 1 {
			cfg.Shards = []int{0, cfg.Base.Config.Shards}
		}
	}
	start := time.Now()
	rep := &ScaleReport{Days: cfg.Days, JobScale: cfg.JobScale}
	for _, sites := range cfg.SiteCounts {
		for _, seed := range cfg.Seeds {
			for _, shards := range cfg.Shards {
				pt, err := scalePoint(cfg, sites, seed, shards)
				if err != nil {
					return nil, fmt.Errorf("campaign: scale point sites=%d seed=%d shards=%d: %w", sites, seed, shards, err)
				}
				rep.Points = append(rep.Points, pt)
			}
		}
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

func scalePoint(cfg ScaleSweepConfig, sites int, seed int64, shards int) (ScalePoint, error) {
	scfg := cfg.Base
	scfg.Config.Seed = seed
	scfg.Config.Sites = nil
	scfg.Config.TestbedSites = sites
	scfg.Config.Shards = shards
	scfg.Horizon = time.Duration(cfg.Days) * 24 * time.Hour
	scfg.JobScale = cfg.JobScale

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	s, err := core.NewScenario(scfg)
	if err != nil {
		return ScalePoint{}, err
	}
	if err := s.Run(); err != nil {
		return ScalePoint{}, err
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)

	completed := 0
	for _, st := range s.Table1() {
		completed += st.Jobs
	}
	pt := ScalePoint{
		Sites:       sites,
		Seed:        seed,
		CPUs:        core.TotalCPUs(s.Cfg.Config.Sites),
		WallSecs:    wall.Seconds(),
		Events:      s.Grid.Eng.Processed(),
		NsPerSimDay: float64(wall.Nanoseconds()) / float64(cfg.Days),
		Mallocs:     after.Mallocs - before.Mallocs,
		AllocBytes:  after.TotalAlloc - before.TotalAlloc,
		Submitted:   s.SubmittedTotal(),
		Completed:   completed,
	}
	if wall > 0 {
		pt.EventsPerS = float64(pt.Events) / wall.Seconds()
	}
	if pt.Submitted > 0 {
		pt.Goodput = float64(pt.Completed) / float64(pt.Submitted)
	}
	if st := s.Grid.ShardStats(); st.Windows > 0 {
		pt.Shards = shards
		pt.ParallelSpeedup = st.Speedup()
	}
	return pt, nil
}

// Write renders the sweep as a table.
func (rep *ScaleReport) Write(w io.Writer) {
	fmt.Fprintf(w, "Testbed scale sweep: %d simulated day(s) per point, job scale %.2f, total wall %v\n",
		rep.Days, rep.JobScale, rep.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  %6s %6s %6s %7s %10s %12s %12s %12s %9s %9s %8s %8s\n",
		"sites", "seed", "shards", "cpus", "wall(s)", "events", "events/s", "mallocs", "submit", "done", "goodput", "pspeed")
	for _, pt := range rep.Points {
		pspeed := "-"
		if pt.ParallelSpeedup > 0 {
			pspeed = fmt.Sprintf("%.2fx", pt.ParallelSpeedup)
		}
		fmt.Fprintf(w, "  %6d %6d %6d %7d %10.2f %12d %12.0f %12d %9d %9d %7.1f%% %8s\n",
			pt.Sites, pt.Seed, pt.Shards, pt.CPUs, pt.WallSecs, pt.Events, pt.EventsPerS,
			pt.Mallocs, pt.Submitted, pt.Completed, 100*pt.Goodput, pspeed)
	}
}
