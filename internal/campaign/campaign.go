// Package campaign fans independent Grid3 scenarios across CPUs.
//
// The paper's result is sustained production — 27 sites serving seven
// application classes for a 183-day sample window — and reproducing it
// credibly means running the campaign many times: across seeds for error
// bars, across configurations for ablations. A Sweep runs N (seed, scale,
// config) scenarios in parallel, one discrete-event Engine per worker
// goroutine, so each seed's run is bit-for-bit identical to running it
// alone; only the wall-clock time changes. Aggregation reports min/mean/max
// across seeds for the Table 1 and §7 milestone quantities.
package campaign

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"grid3/internal/acdc"
	"grid3/internal/core"
	"grid3/internal/obs"
)

// Run describes one independent scenario execution. Seed and Scale override
// the corresponding Config fields; everything else in Config rides along
// unchanged, so ablation sweeps can vary any scenario knob per run.
type Run struct {
	Seed   int64
	Scale  float64
	Config core.ScenarioConfig
}

// Seeds builds the common sweep shape: n runs at consecutive seeds starting
// from first, all at the same scale and configuration.
func Seeds(first int64, n int, scale float64, cfg core.ScenarioConfig) []Run {
	runs := make([]Run, n)
	for i := range runs {
		runs[i] = Run{Seed: first + int64(i), Scale: scale, Config: cfg}
	}
	return runs
}

// Result captures one run's outputs. Table1Text and MilestonesText are the
// rendered exhibits, retained verbatim so determinism can be asserted
// byte-for-byte against a serial run of the same seed.
type Result struct {
	Seed           int64
	Scale          float64
	Elapsed        time.Duration // wall-clock build+run time for this seed
	Submitted      int
	Records        int
	Events         uint64 // engine events processed
	Milestones     core.Milestones
	Table1         []acdc.ClassStats
	Table1Text     string
	MilestonesText string
	// StageLatencies holds the run's per-stage span-duration histograms
	// (stage name → snapshot), nil unless the run had observability on.
	StageLatencies map[string]obs.HistSnapshot
	// Waves carries the operational wave-family counters (rolling
	// upgrades, cert storms); zero when neither family was armed.
	Waves core.WaveStats
}

// Stat is a min/mean/max summary across seeds.
type Stat struct {
	Min, Mean, Max float64
}

func newStat(vals []float64) Stat {
	if len(vals) == 0 {
		return Stat{}
	}
	s := Stat{Min: vals[0], Max: vals[0]}
	sum := 0.0
	for _, v := range vals {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		sum += v
	}
	s.Mean = sum / float64(len(vals))
	return s
}

// StageQuantiles summarizes one lifecycle stage's latency across all seeds
// (histogram-merged, so quantiles are bucket-interpolated estimates).
type StageQuantiles struct {
	Count         uint64
	P50, P90, P99 float64 // seconds
}

// Aggregate summarizes the sweep across seeds.
type Aggregate struct {
	JobsCompleted  Stat // all classes combined
	PeakJobs       Stat
	Utilization    Stat
	DataTBPerDay   Stat
	SupportFTEs    Stat
	ConcurrentVO   Stat // sites serving ≥2 VOs
	EfficiencyByVO map[string]Stat
	// StageLatency maps lifecycle stage (submit, match, run, ...) to its
	// cross-seed latency quantiles; nil unless runs had observability on.
	StageLatency map[string]StageQuantiles
}

// Report is a completed sweep: per-seed results in input order plus the
// cross-seed aggregate.
type Report struct {
	Runs    []Result
	Workers int
	Elapsed time.Duration // wall clock for the whole sweep
	Agg     Aggregate
}

// Sweep executes every run, fanning across at most workers goroutines
// (workers <= 0 means GOMAXPROCS). Each worker owns a private Engine, RNG,
// and grid, so per-seed determinism is untouched; results come back in
// input order regardless of completion order. The first scenario
// construction error aborts the sweep.
func Sweep(runs []Run, workers int) (*Report, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("campaign: empty sweep")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(runs) {
		workers = len(runs)
	}
	start := time.Now()
	results := make([]Result, len(runs))
	errs := make([]error, len(runs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i], errs[i] = execute(runs[i])
			}
		}()
	}
	for i := range runs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("campaign: seed %d: %w", runs[i].Seed, err)
		}
	}
	rep := &Report{Runs: results, Workers: workers, Elapsed: time.Since(start)}
	rep.Agg = aggregate(results)
	return rep, nil
}

// execute runs one scenario to completion on the calling goroutine.
func execute(r Run) (Result, error) {
	cfg := r.Config
	cfg.Config.Seed = r.Seed
	if r.Scale != 0 {
		cfg.JobScale = r.Scale
	}
	t0 := time.Now()
	s, err := core.NewScenario(cfg)
	if err != nil {
		return Result{}, err
	}
	if err := s.Run(); err != nil {
		return Result{}, err
	}
	res := Result{
		Seed:       r.Seed,
		Scale:      cfg.JobScale,
		Elapsed:    time.Since(t0),
		Submitted:  s.SubmittedTotal(),
		Records:    s.Grid.ACDC.Len(),
		Events:     s.Grid.Eng.Processed(),
		Milestones: s.ComputeMilestones(),
		Table1:     s.Table1(),
		Waves:      s.WaveStats(),
	}
	var buf bytes.Buffer
	s.WriteTable1(&buf)
	res.Table1Text = buf.String()
	buf.Reset()
	res.Milestones.Write(&buf)
	res.MilestonesText = buf.String()
	if o := s.Grid.Obs; o != nil {
		res.StageLatencies = o.Metrics.Snapshot().StageLatencies()
	}
	return res, nil
}

func aggregate(results []Result) Aggregate {
	pick := func(f func(Result) float64) Stat {
		vals := make([]float64, len(results))
		for i, r := range results {
			vals[i] = f(r)
		}
		return newStat(vals)
	}
	agg := Aggregate{
		JobsCompleted: pick(func(r Result) float64 {
			n := 0
			for _, st := range r.Table1 {
				n += st.Jobs
			}
			return float64(n)
		}),
		PeakJobs:       pick(func(r Result) float64 { return float64(r.Milestones.PeakJobs) }),
		Utilization:    pick(func(r Result) float64 { return r.Milestones.Utilization }),
		DataTBPerDay:   pick(func(r Result) float64 { return r.Milestones.DataTBPerDay }),
		SupportFTEs:    pick(func(r Result) float64 { return r.Milestones.SupportFTEs }),
		ConcurrentVO:   pick(func(r Result) float64 { return float64(r.Milestones.ConcurrentSites) }),
		EfficiencyByVO: map[string]Stat{},
	}
	for _, voName := range core.VOColumns {
		vals := make([]float64, 0, len(results))
		for _, r := range results {
			if eff, ok := r.Milestones.EfficiencyByVO[voName]; ok {
				vals = append(vals, eff)
			}
		}
		if len(vals) > 0 {
			agg.EfficiencyByVO[voName] = newStat(vals)
		}
	}
	// Merge stage histograms across seeds, then read quantiles off the
	// combined distribution.
	merged := map[string]obs.HistSnapshot{}
	for _, r := range results {
		for stage, snap := range r.StageLatencies {
			// The zero snapshot's first Merge copies, so per-seed counts
			// are never mutated in place.
			m := merged[stage]
			m.Merge(snap)
			merged[stage] = m
		}
	}
	for stage, snap := range merged {
		if snap.N == 0 {
			continue
		}
		if agg.StageLatency == nil {
			agg.StageLatency = map[string]StageQuantiles{}
		}
		agg.StageLatency[stage] = StageQuantiles{
			Count: snap.N,
			P50:   snap.Quantile(0.50),
			P90:   snap.Quantile(0.90),
			P99:   snap.Quantile(0.99),
		}
	}
	return agg
}

// Write renders the cross-seed summary.
func (rep *Report) Write(w io.Writer) {
	seeds := make([]string, len(rep.Runs))
	var events uint64
	var serial time.Duration
	for i, r := range rep.Runs {
		seeds[i] = fmt.Sprint(r.Seed)
		events += r.Events
		serial += r.Elapsed
	}
	// Per-run elapsed times are measured while other workers share the
	// CPUs, so their sum estimates (and with more workers than cores,
	// overstates) the true serial cost — hence "est.".
	fmt.Fprintf(w, "Campaign sweep: %d seeds {%s} on %d workers in %v (summed seed runtimes %v, est. speedup %.2fx)\n",
		len(rep.Runs), joinMax(seeds, 8), rep.Workers, rep.Elapsed.Round(time.Millisecond),
		serial.Round(time.Millisecond), float64(serial)/float64(rep.Elapsed))
	fmt.Fprintf(w, "  %d engine events total\n", events)
	row := func(label string, s Stat, format string) {
		fmt.Fprintf(w, "  %-24s min "+format+"  mean "+format+"  max "+format+"\n", label, s.Min, s.Mean, s.Max)
	}
	row("Jobs completed", rep.Agg.JobsCompleted, "%8.0f")
	row("Peak concurrent jobs", rep.Agg.PeakJobs, "%8.0f")
	row("Utilization", rep.Agg.Utilization, "%8.2f")
	row("Data TB/day", rep.Agg.DataTBPerDay, "%8.2f")
	row("Support FTEs", rep.Agg.SupportFTEs, "%8.2f")
	row("Concurrent-VO sites", rep.Agg.ConcurrentVO, "%8.0f")
	voNames := make([]string, 0, len(rep.Agg.EfficiencyByVO))
	for v := range rep.Agg.EfficiencyByVO {
		voNames = append(voNames, v)
	}
	sort.Strings(voNames)
	for _, v := range voNames {
		row("Efficiency "+v, rep.Agg.EfficiencyByVO[v], "%8.2f")
	}
	var waves core.WaveStats
	for _, r := range rep.Runs {
		waves.UpgradedSites += r.Waves.UpgradedSites
		waves.UpgradeKills += r.Waves.UpgradeKills
		waves.SkewKills += r.Waves.SkewKills
		waves.CertExpiries += r.Waves.CertExpiries
		waves.CertRenewals += r.Waves.CertRenewals
		waves.CertRevocations += r.Waves.CertRevocations
	}
	if !waves.Zero() {
		fmt.Fprintf(w, "  Waves (all seeds): %d site upgrades (%d restart kills, %d skew kills), %d cert expiries, %d renewals, %d revocations\n",
			waves.UpgradedSites, waves.UpgradeKills, waves.SkewKills,
			waves.CertExpiries, waves.CertRenewals, waves.CertRevocations)
	}
	if len(rep.Agg.StageLatency) > 0 {
		fmt.Fprintf(w, "  Stage latency quantiles (s):\n")
		stages := make([]string, 0, len(rep.Agg.StageLatency))
		for stage := range rep.Agg.StageLatency {
			stages = append(stages, stage)
		}
		sort.Strings(stages)
		for _, stage := range stages {
			q := rep.Agg.StageLatency[stage]
			fmt.Fprintf(w, "    %-22s n %8d  p50 %10.1f  p90 %10.1f  p99 %10.1f\n",
				stage, q.Count, q.P50, q.P90, q.P99)
		}
	}
}

func joinMax(parts []string, max int) string {
	if len(parts) <= max {
		out := parts[0]
		for _, p := range parts[1:] {
			out += " " + p
		}
		return out
	}
	return fmt.Sprintf("%s .. %s", parts[0], parts[len(parts)-1])
}
