package campaign

import (
	"encoding/json"
	"testing"
	"time"
)

// decode unmarshals a report's JSON() output back into a generic map so the
// tests can assert the frozen wire keys, not Go struct shapes.
func decode(t *testing.T, data []byte, err error) map[string]any {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[len(data)-1] != '\n' {
		t.Fatal("report JSON must be newline-terminated")
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("report JSON does not round-trip: %v\n%s", err, data)
	}
	return m
}

// wantKeys asserts that every frozen key is present at the top level —
// renaming or dropping one is a schema version bump, which these tests
// force to be deliberate.
func wantKeys(t *testing.T, m map[string]any, schema, kind string, keys ...string) {
	t.Helper()
	if got := m["schema"]; got != schema {
		t.Fatalf("schema = %v, want %q", got, schema)
	}
	if got := m["kind"]; got != kind {
		t.Fatalf("kind = %v, want %q", got, kind)
	}
	for _, k := range keys {
		if _, ok := m[k]; !ok {
			t.Errorf("frozen key %q missing", k)
		}
	}
}

func TestSweepReportJSONRoundTrip(t *testing.T) {
	rep := &Report{
		Workers: 2,
		Elapsed: 3 * time.Second,
		Runs: []Result{{
			Seed: 1, Scale: 0.1, Elapsed: time.Second,
			Submitted: 100, Records: 90, Events: 5000,
		}},
		Agg: Aggregate{
			JobsCompleted:  Stat{Min: 90, Mean: 90, Max: 90},
			EfficiencyByVO: map[string]Stat{"usatlas": {Min: 0.9, Mean: 0.9, Max: 0.9}},
		},
	}
	data, err := rep.JSON()
	m := decode(t, data, err)
	wantKeys(t, m, SweepSchema, "grid3-sweep",
		"gomaxprocs", "workers", "wall_seconds", "events_total", "runs", "aggregate")
	agg := m["aggregate"].(map[string]any)
	for _, k := range []string{"jobs_completed", "peak_jobs", "utilization",
		"data_tb_per_day", "support_ftes", "concurrent_vo_sites", "efficiency_by_vo"} {
		if _, ok := agg[k]; !ok {
			t.Errorf("aggregate key %q missing", k)
		}
	}
	run := m["runs"].([]any)[0].(map[string]any)
	for _, k := range []string{"seed", "scale", "elapsed_seconds", "jobs", "records", "events"} {
		if _, ok := run[k]; !ok {
			t.Errorf("run key %q missing", k)
		}
	}
}

func TestChaosReportJSONRoundTrip(t *testing.T) {
	rep := &ChaosReport{
		Scale:          0.05,
		Horizon:        30 * 24 * time.Hour,
		Elapsed:        time.Minute,
		CleanCompleted: map[int64]int{1: 1000},
		Points: []ChaosPoint{{
			Seed: 1, Intensity: 2,
			Baseline: ChaosOutcome{Submitted: 1100, Completed: 900},
			Recovery: ChaosOutcome{Submitted: 1100, Completed: 1000},
		}},
	}
	data, err := rep.JSON()
	m := decode(t, data, err)
	wantKeys(t, m, ChaosSchema, "grid3sim-chaos",
		"scale", "days", "wall_seconds", "clean_completed_by_seed", "points")
	pt := m["points"].([]any)[0].(map[string]any)
	for _, k := range []string{"seed", "intensity", "baseline", "recovery"} {
		if _, ok := pt[k]; !ok {
			t.Errorf("point key %q missing", k)
		}
	}
	base := pt["baseline"].(map[string]any)
	for _, k := range []string{"submitted", "completed", "jobs_lost",
		"completion_rate", "goodput_retention", "incidents"} {
		if _, ok := base[k]; !ok {
			t.Errorf("outcome key %q missing", k)
		}
	}
}

func TestScaleReportJSONRoundTrip(t *testing.T) {
	rep := &ScaleReport{
		Days: 1, JobScale: 0.1, Elapsed: time.Minute,
		Points: []ScalePoint{
			{Sites: 27, Seed: 1, CPUs: 2800, WallSecs: 1.5, Events: 100000,
				Submitted: 500, Completed: 480, Goodput: 0.96},
			{Sites: 1000, Seed: 1, Shards: 4, ParallelSpeedup: 3.4},
		},
	}
	data, err := rep.JSON()
	m := decode(t, data, err)
	wantKeys(t, m, ScaleSchema, "grid3sim-scale",
		"gomaxprocs", "days", "job_scale", "wall_seconds", "points")
	pts := m["points"].([]any)
	serial := pts[0].(map[string]any)
	for _, k := range []string{"sites", "seed", "cpus", "wall_seconds", "events",
		"events_per_second", "ns_per_sim_day", "mallocs", "alloc_bytes",
		"submitted", "completed", "goodput"} {
		if _, ok := serial[k]; !ok {
			t.Errorf("point key %q missing", k)
		}
	}
	if _, ok := serial["shards"]; ok {
		t.Error("serial point must omit the shards key")
	}
	sharded := pts[1].(map[string]any)
	if got := sharded["shards"]; got != 4.0 {
		t.Errorf("sharded point shards = %v, want 4", got)
	}
	if got := sharded["parallel_speedup"]; got != 3.4 {
		t.Errorf("sharded point parallel_speedup = %v, want 3.4", got)
	}
}

func TestDataReportJSONRoundTrip(t *testing.T) {
	rep := &DataReport{
		Days: 30, JobScale: 0.05, Doors: 4, Elapsed: time.Minute,
		MinTBPerDay: 2.1, MeanTBPerDay: 2.5, MaxTBPerDay: 3.0,
		Points: []DataPoint{{
			Seed:     1,
			Baseline: DataOutcome{TBTotal: 60, TBPerDay: 2.0},
			Managed:  DataOutcome{TBTotal: 75, TBPerDay: 2.5},
		}},
	}
	data, err := rep.JSON()
	m := decode(t, data, err)
	wantKeys(t, m, DataSchema, "grid3sim-data",
		"gomaxprocs", "days", "job_scale", "doors", "wall_seconds",
		"managed_tb_per_day_min", "managed_tb_per_day_mean", "managed_tb_per_day_max",
		"points")
	pt := m["points"].([]any)[0].(map[string]any)
	for _, k := range []string{"seed", "baseline", "managed"} {
		if _, ok := pt[k]; !ok {
			t.Errorf("point key %q missing", k)
		}
	}
	managed := pt["managed"].(map[string]any)
	for _, k := range []string{"tb_total", "tb_per_day", "tb_per_day_by_vo",
		"transfers_completed", "transfers_failed"} {
		if _, ok := managed[k]; !ok {
			t.Errorf("outcome key %q missing", k)
		}
	}
}
