package campaign

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"grid3/internal/core"
	"grid3/internal/ingest"
	"grid3/internal/monalisa"
	"grid3/internal/vo"
)

// IngestSweepConfig parameterizes a monitoring-ingestion campaign: a
// deterministic synthetic metric stream pushed through the repository at
// several batch sizes (0 = the per-event baseline), measuring throughput
// and allocation volume, plus one small batched scenario whose usage
// ledger is fully audit-verified.
type IngestSweepConfig struct {
	// BatchSizes lists the batcher sizes to measure; 0 means the direct
	// per-event Ingest path. Defaults to {0, 64, 512, 4096}.
	BatchSizes []int
	// Events is the synthetic stream length per point (default 2,000,000).
	Events int
	// Farms × Params shapes the synthetic series population (defaults
	// 32 × 8: 256 series, the order of a big testbed's station fan-in).
	Farms, Params int
	// Window is the batching window (default 5 minutes of sim time; the
	// synthetic clock advances one second per series round).
	Window time.Duration
	// AuditDays is the horizon of the audit-verification scenario
	// (default 2); 0 < AuditDays keeps it cheap, negative skips it.
	AuditDays int
	// Base rides along into the audit scenario; seed, sites, horizon,
	// scale, and the ingest toggles are overridden.
	Base core.ScenarioConfig
}

// IngestPoint is one batch-size measurement over the synthetic stream.
type IngestPoint struct {
	Batch      int     `json:"batch"` // 0 = per-event baseline
	Events     uint64  `json:"events"`
	WallSecs   float64 `json:"wall_seconds"`
	EventsPerS float64 `json:"events_per_second"`
	Batches    uint64  `json:"batches,omitempty"`
	MaxPending int     `json:"max_pending,omitempty"`
	Mallocs    uint64  `json:"mallocs"`
	AllocBytes uint64  `json:"alloc_bytes"`
	// BytesPerEvent is AllocBytes/Events — the bounded-memory evidence:
	// batching must not trade throughput for per-event allocation growth.
	BytesPerEvent float64 `json:"bytes_per_event"`
}

// IngestReport is a completed ingestion campaign.
type IngestReport struct {
	Events int
	Farms  int
	Params int
	Window time.Duration
	Points []IngestPoint
	// BestEventsPerS is the fastest batched point's throughput — the
	// headline the bench floor gates.
	BestEventsPerS float64
	// AuditWindows / AuditVerified summarize the scenario leg: every
	// (window, VO) inclusion proof was generated, wire round-tripped,
	// and verified against its published root.
	AuditWindows  int
	AuditVerified bool
	Elapsed       time.Duration
}

// streamClock is the synthetic stream's manual clock.
type streamClock struct{ t time.Duration }

func (c *streamClock) Now() time.Duration   { return c.t }
func (c *streamClock) WallClock() time.Time { return time.Unix(0, 0).Add(c.t) }

// IngestSweep measures the monitoring-ingestion pipeline. Points run
// serially (ReadMemStats deltas attribute per point, as in ScaleSweep),
// and the stream is fully deterministic — same config, same numbers
// except wall time.
func IngestSweep(cfg IngestSweepConfig) (*IngestReport, error) {
	if len(cfg.BatchSizes) == 0 {
		cfg.BatchSizes = []int{0, 64, 512, 4096}
	}
	if cfg.Events <= 0 {
		cfg.Events = 2_000_000
	}
	if cfg.Farms <= 0 {
		cfg.Farms = 32
	}
	if cfg.Params <= 0 {
		cfg.Params = 8
	}
	if cfg.Window <= 0 {
		cfg.Window = 5 * time.Minute
	}
	if cfg.AuditDays == 0 {
		cfg.AuditDays = 2
	}
	start := time.Now()
	rep := &IngestReport{
		Events: cfg.Events, Farms: cfg.Farms, Params: cfg.Params, Window: cfg.Window,
	}
	for _, batch := range cfg.BatchSizes {
		pt := ingestPoint(cfg, batch)
		rep.Points = append(rep.Points, pt)
		if batch > 0 && pt.EventsPerS > rep.BestEventsPerS {
			rep.BestEventsPerS = pt.EventsPerS
		}
	}
	if cfg.AuditDays > 0 {
		windows, verified, err := ingestAudit(cfg)
		if err != nil {
			return nil, fmt.Errorf("campaign: ingest audit leg: %w", err)
		}
		rep.AuditWindows, rep.AuditVerified = windows, verified
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// ingestPoint pushes the synthetic stream through one pipeline
// configuration and measures it.
func ingestPoint(cfg IngestSweepConfig, batch int) IngestPoint {
	clk := &streamClock{}
	repo := monalisa.NewRepository(clk)
	sink := repo.Ingest
	var b *ingest.Batcher[monalisa.Metric]
	if batch > 0 {
		b = ingest.New(clk.Now, repo.IngestBatch, ingest.Options{
			BatchSize: batch,
			Window:    cfg.Window,
			Pending:   4,
			Policy:    ingest.Block,
		})
		repo.PreRead = b.Drain
		sink = func(m monalisa.Metric) { b.Add(m) }
	}

	farms := make([]string, cfg.Farms)
	for i := range farms {
		farms[i] = fmt.Sprintf("farm-%03d", i)
	}
	params := make([]string, cfg.Params)
	for i := range params {
		params[i] = fmt.Sprintf("grid3.synthetic.p%02d", i)
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	perRound := cfg.Farms * cfg.Params
	for i := 0; i < cfg.Events; i++ {
		if i%perRound == 0 {
			clk.t += time.Second // one sample per series per sim second
		}
		sink(monalisa.Metric{
			Farm:  farms[i%cfg.Farms],
			Param: params[(i/cfg.Farms)%cfg.Params],
			Time:  clk.t,
			Value: float64(i % 1024),
		})
	}
	if b != nil {
		b.Drain()
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)

	pt := IngestPoint{
		Batch:      batch,
		Events:     uint64(cfg.Events),
		WallSecs:   wall.Seconds(),
		Mallocs:    after.Mallocs - before.Mallocs,
		AllocBytes: after.TotalAlloc - before.TotalAlloc,
	}
	if wall > 0 {
		pt.EventsPerS = float64(cfg.Events) / wall.Seconds()
	}
	if cfg.Events > 0 {
		pt.BytesPerEvent = float64(pt.AllocBytes) / float64(cfg.Events)
	}
	if b != nil {
		st := b.Stats()
		pt.Batches = st.Batches
		pt.MaxPending = st.MaxPending
	}
	return pt
}

// ingestAudit runs one small batched scenario and verifies every
// (window, VO) claim in its usage ledger end to end: proof generation,
// wire round trip, Merkle verification against the sealed root.
func ingestAudit(cfg IngestSweepConfig) (windows int, verified bool, err error) {
	scfg := cfg.Base
	scfg.Config.Seed = 1
	scfg.Config.TestbedSites = 5
	scfg.Config.Sites = nil
	scfg.Config.IngestBatch = 64
	scfg.Config.IngestWindow = 0 // default to the monitor interval
	scfg.Horizon = time.Duration(cfg.AuditDays) * 24 * time.Hour
	scfg.JobScale = 0.002
	s, err := core.NewScenario(scfg)
	if err != nil {
		return 0, false, err
	}
	if err := s.Run(); err != nil {
		return 0, false, err
	}
	led := s.Grid.Ledger
	if led == nil || led.Len() == 0 {
		return 0, false, fmt.Errorf("no sealed usage windows")
	}
	for _, w := range led.Windows() {
		for _, voName := range vo.Grid3VOs {
			p, err := led.Prove(w.Index, voName)
			if err != nil {
				return led.Len(), false, err
			}
			rt, err := ingest.DecodeProof(ingest.EncodeProof(p))
			if err != nil {
				return led.Len(), false, err
			}
			if !ingest.Verify(w.Root, rt) {
				return led.Len(), false, fmt.Errorf("window %d vo %s: proof rejected", w.Index, voName)
			}
		}
	}
	return led.Len(), true, nil
}

// Write renders the sweep as a table.
func (rep *IngestReport) Write(w io.Writer) {
	fmt.Fprintf(w, "Monitoring-ingestion sweep: %d synthetic events over %d series, window %v, total wall %v\n",
		rep.Events, rep.Farms*rep.Params, rep.Window, rep.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  %6s %12s %10s %14s %12s %12s %10s %8s\n",
		"batch", "events", "wall(s)", "events/s", "batches", "mallocs", "bytes/ev", "maxpend")
	for _, pt := range rep.Points {
		label := "direct"
		if pt.Batch > 0 {
			label = fmt.Sprintf("%d", pt.Batch)
		}
		fmt.Fprintf(w, "  %6s %12d %10.3f %14.0f %12d %12d %10.1f %8d\n",
			label, pt.Events, pt.WallSecs, pt.EventsPerS, pt.Batches, pt.Mallocs, pt.BytesPerEvent, pt.MaxPending)
	}
	fmt.Fprintf(w, "  best batched throughput: %.0f events/s\n", rep.BestEventsPerS)
	if rep.AuditWindows > 0 {
		status := "FAILED"
		if rep.AuditVerified {
			status = "verified"
		}
		fmt.Fprintf(w, "  audit: %d usage windows, every (window, VO) proof %s\n", rep.AuditWindows, status)
	}
}
