package campaign

import (
	"strings"
	"testing"
	"time"

	"grid3/internal/core"
)

func testCfg() core.ScenarioConfig {
	return core.ScenarioConfig{
		Horizon:  12 * 24 * time.Hour,
		JobScale: 0.01,
	}
}

// TestSweepParallelMatchesSerial is the determinism property: sweeping seeds
// {1..4} across parallel workers must produce byte-identical per-seed
// Table 1 and Milestones output to running the same seeds one at a time.
// Each run owns a private engine, so placement on a worker goroutine cannot
// perturb the discrete-event order.
func TestSweepParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep scenario in -short mode")
	}
	runs := Seeds(1, 4, 0.01, testCfg())
	parallel, err := Sweep(runs, 4)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Sweep(runs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range runs {
		p, s := parallel.Runs[i], serial.Runs[i]
		if p.Seed != s.Seed {
			t.Fatalf("result order diverged: %d vs %d", p.Seed, s.Seed)
		}
		if p.Table1Text != s.Table1Text {
			t.Errorf("seed %d: parallel Table 1 differs from serial:\n--- parallel ---\n%s\n--- serial ---\n%s",
				p.Seed, p.Table1Text, s.Table1Text)
		}
		if p.MilestonesText != s.MilestonesText {
			t.Errorf("seed %d: parallel Milestones differ from serial:\n--- parallel ---\n%s\n--- serial ---\n%s",
				p.Seed, p.MilestonesText, s.MilestonesText)
		}
		if p.Events != s.Events || p.Submitted != s.Submitted || p.Records != s.Records {
			t.Errorf("seed %d: counters diverged: parallel {events %d jobs %d records %d}, serial {events %d jobs %d records %d}",
				p.Seed, p.Events, p.Submitted, p.Records, s.Events, s.Submitted, s.Records)
		}
	}
	// Distinct seeds must actually produce distinct campaigns.
	if parallel.Runs[0].Table1Text == parallel.Runs[1].Table1Text {
		t.Error("seeds 1 and 2 produced identical Table 1 output")
	}
}

func TestSweepAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep scenario in -short mode")
	}
	rep, err := Sweep(Seeds(7, 2, 0.01, testCfg()), 2)
	if err != nil {
		t.Fatal(err)
	}
	agg := rep.Agg
	if agg.JobsCompleted.Min <= 0 || agg.JobsCompleted.Min > agg.JobsCompleted.Mean ||
		agg.JobsCompleted.Mean > agg.JobsCompleted.Max {
		t.Fatalf("jobs stat out of order: %+v", agg.JobsCompleted)
	}
	if agg.PeakJobs.Max <= 0 {
		t.Fatalf("peak jobs = %+v", agg.PeakJobs)
	}
	if len(agg.EfficiencyByVO) == 0 {
		t.Fatal("no per-VO efficiency aggregates")
	}
	var buf strings.Builder
	rep.Write(&buf)
	out := buf.String()
	for _, want := range []string{"Campaign sweep: 2 seeds {7 8}", "Jobs completed", "Efficiency"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestSweepRejectsEmpty(t *testing.T) {
	if _, err := Sweep(nil, 4); err == nil {
		t.Fatal("empty sweep did not error")
	}
}

func TestStat(t *testing.T) {
	s := newStat([]float64{3, 1, 2})
	if s.Min != 1 || s.Max != 3 || s.Mean != 2 {
		t.Fatalf("stat = %+v", s)
	}
	if z := newStat(nil); z != (Stat{}) {
		t.Fatalf("empty stat = %+v", z)
	}
}
