package campaign

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"grid3/internal/core"
	"grid3/internal/failure"
	"grid3/internal/obs"
	"grid3/internal/vo"
)

// ChaosSweepConfig shapes a chaos campaign: for every (seed, intensity)
// pair the sweep runs the same scenario twice — once with injection only
// (the no-reaction baseline) and once with the closed fault-management loop
// (EnableRecovery) — plus one failure-free reference run per seed. The
// resulting curves show how much goodput the recovery loop buys back as
// failure intensity climbs.
type ChaosSweepConfig struct {
	// Seeds are the campaign seeds; empty means {1}.
	Seeds []int64
	// Intensities are the failure multipliers to sweep (see
	// failure.Scaled); empty means {1, 2, 4}.
	Intensities []float64
	// Scale is the JobScale for every run (0 keeps the scenario default).
	Scale float64
	// Horizon bounds each run (0 keeps the scenario default).
	Horizon time.Duration
	// Base rides along into every run; seed, intensity, failure and
	// recovery toggles are overridden per run.
	Base core.ScenarioConfig
	// Workers caps sweep parallelism (<=0 means GOMAXPROCS).
	Workers int
}

// KindStats aggregates detection and repair latency for one failure kind,
// measured by correlating injected incidents with the health monitor's
// outage spans (breaker open → close).
type KindStats struct {
	Injected int           // incidents injected
	Detected int           // incidents matched to an outage span
	MTTD     time.Duration // mean time from injection to breaker open
	MTTR     time.Duration // mean time from injection to breaker close
}

// ChaosOutcome is one run's fault-tolerance scorecard.
type ChaosOutcome struct {
	Submitted      int
	Completed      int
	JobsLost       int     // jobs that reached a failed terminal state
	CompletionRate float64 // completed / decided (completed + lost)
	// GoodputRetention is completed jobs as a fraction of the same seed's
	// failure-free run — how much of the clean-weather goodput survived.
	GoodputRetention float64
	Incidents        int
	// Recovery-loop activity (zero in baseline runs).
	ReplicaFailovers uint64
	StageRetries     uint64
	BreakersOpened   uint64
	TicketsOpened    int
	// Outages maps failure kind → detection/repair latency; only populated
	// for recovery runs (the baseline has no health monitor watching).
	Outages map[string]KindStats
}

// ChaosPoint pairs the baseline and recovery outcomes at one (seed,
// intensity) coordinate.
type ChaosPoint struct {
	Seed      int64
	Intensity float64
	Baseline  ChaosOutcome
	Recovery  ChaosOutcome
}

// ChaosReport is a completed chaos sweep.
type ChaosReport struct {
	Scale   float64
	Horizon time.Duration
	Elapsed time.Duration
	// CleanCompleted is each seed's failure-free completion count — the
	// denominator of every goodput-retention figure.
	CleanCompleted map[int64]int
	// Points are ordered by (seed, intensity) in input order.
	Points []ChaosPoint
}

// ChaosSweep runs the campaign. Runs fan across a worker pool exactly like
// Sweep: each run owns a private engine, so per-run determinism is
// untouched by parallel execution.
func ChaosSweep(cfg ChaosSweepConfig) (*ChaosReport, error) {
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []int64{1}
	}
	if len(cfg.Intensities) == 0 {
		cfg.Intensities = []float64{1, 2, 4}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Flatten the campaign into independent jobs: one clean run per seed,
	// then a baseline + recovery pair per (seed, intensity).
	type job struct {
		cfg core.ScenarioConfig
	}
	var jobs []job
	mk := func(seed int64, intensity float64, recovery, clean bool) job {
		sc := cfg.Base
		sc.Seed = seed
		if cfg.Scale != 0 {
			sc.JobScale = cfg.Scale
		}
		if cfg.Horizon != 0 {
			sc.Horizon = cfg.Horizon
		}
		sc.ChaosIntensity = intensity
		sc.DisableFailures = clean
		sc.EnableRecovery = recovery
		if recovery {
			// MTTD/MTTR come from outage spans, so recovery runs trace.
			sc.EnableObservability = true
		}
		return job{cfg: sc}
	}
	for _, seed := range cfg.Seeds {
		jobs = append(jobs, mk(seed, 0, false, true))
		for _, in := range cfg.Intensities {
			jobs = append(jobs, mk(seed, in, false, false))
			jobs = append(jobs, mk(seed, in, true, false))
		}
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	start := time.Now()
	outcomes := make([]ChaosOutcome, len(jobs))
	errs := make([]error, len(jobs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				outcomes[i], errs[i] = runChaos(jobs[i].cfg)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("campaign: chaos seed %d: %w", jobs[i].cfg.Seed, err)
		}
	}

	// Record the effective scale and horizon (the sweep override, else the
	// base scenario's, else the calibrated defaults) so the report and its
	// JSON rendering describe what actually ran.
	scale := cfg.Scale
	if scale == 0 {
		scale = cfg.Base.JobScale
	}
	if scale == 0 {
		scale = 1.0
	}
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = cfg.Base.Horizon
	}
	if horizon == 0 {
		horizon = core.ScenarioHorizon
	}
	rep := &ChaosReport{
		Scale:          scale,
		Horizon:        horizon,
		Elapsed:        time.Since(start),
		CleanCompleted: make(map[int64]int),
	}
	i := 0
	for _, seed := range cfg.Seeds {
		clean := outcomes[i]
		i++
		rep.CleanCompleted[seed] = clean.Completed
		for _, in := range cfg.Intensities {
			pt := ChaosPoint{Seed: seed, Intensity: in, Baseline: outcomes[i], Recovery: outcomes[i+1]}
			i += 2
			if clean.Completed > 0 {
				pt.Baseline.GoodputRetention = float64(pt.Baseline.Completed) / float64(clean.Completed)
				pt.Recovery.GoodputRetention = float64(pt.Recovery.Completed) / float64(clean.Completed)
			}
			rep.Points = append(rep.Points, pt)
		}
	}
	return rep, nil
}

// runChaos executes one scenario and scores it.
func runChaos(cfg core.ScenarioConfig) (ChaosOutcome, error) {
	s, err := core.NewScenario(cfg)
	if err != nil {
		return ChaosOutcome{}, err
	}
	if err := s.Run(); err != nil {
		return ChaosOutcome{}, err
	}
	g := s.Grid
	var out ChaosOutcome
	for _, voName := range vo.Grid3VOs {
		st := g.Stats(voName)
		out.Submitted += st.Submitted
		out.Completed += st.Completed
		out.JobsLost += st.ExecFailures + st.StageOutFailures + st.SRMDeferred
	}
	// Rate over decided jobs: a bounded-horizon run cuts off jobs still in
	// flight, which are neither successes nor casualties.
	if decided := out.Completed + out.JobsLost; decided > 0 {
		out.CompletionRate = float64(out.Completed) / float64(decided)
	}
	if s.Injector != nil {
		out.Incidents = len(s.Injector.Events())
	}
	if o := g.Obs; o != nil {
		for _, c := range o.Metrics.Snapshot().Counters {
			switch c.Name {
			case "health.failover.replica":
				out.ReplicaFailovers = c.Value
			case "health.retry.stage":
				out.StageRetries = c.Value
			case "health.breaker.opened":
				out.BreakersOpened = c.Value
			}
		}
	}
	if g.Health != nil {
		out.TicketsOpened = g.Desk.TicketCount()
		if s.Injector != nil && g.Obs != nil {
			out.Outages = outageStats(s.Injector.Events(), g.Obs.Tracer.Spans())
		}
	}
	return out, nil
}

// outageService maps an injected failure kind to the probed service whose
// breaker detects it; kinds with no service-level symptom (rollovers,
// random loss) produce no outage span and are not latency-scored.
func outageService(k failure.Kind) (string, bool) {
	switch k {
	case failure.ServiceFailure:
		return "gram", true
	case failure.NetworkOutage:
		return "gridftp", true
	case failure.DiskFull:
		return "srm", true
	}
	return "", false
}

// outageStats greedily matches injected incidents to the health monitor's
// KindOutage spans (same site and service, span opens at or after
// injection) and averages detection and repair latency per kind.
func outageStats(events []failure.Event, spans []obs.Span) map[string]KindStats {
	type epKey struct{ site, svc string }
	bySurface := map[epKey][]obs.Span{}
	for _, sp := range spans {
		if sp.Kind != obs.KindOutage || !sp.Ended() {
			continue
		}
		k := epKey{sp.Site, sp.Job} // outage spans carry the service in Job
		bySurface[k] = append(bySurface[k], sp)
	}
	for k := range bySurface {
		sort.Slice(bySurface[k], func(i, j int) bool { return bySurface[k][i].Start < bySurface[k][j].Start })
	}
	used := map[epKey]int{}
	out := map[string]KindStats{}
	for _, e := range events {
		svc, ok := outageService(e.Kind)
		if !ok {
			continue
		}
		st := out[e.Kind.String()]
		st.Injected++
		k := epKey{e.Site, svc}
		// Consume the first unclaimed span opening at or after injection.
		for i := used[k]; i < len(bySurface[k]); i++ {
			sp := bySurface[k][i]
			if sp.Start < e.At {
				used[k] = i + 1
				continue
			}
			used[k] = i + 1
			st.Detected++
			st.MTTD += sp.Start - e.At
			st.MTTR += sp.End - e.At
			break
		}
		out[e.Kind.String()] = st
	}
	for kind, st := range out {
		if st.Detected > 0 {
			st.MTTD /= time.Duration(st.Detected)
			st.MTTR /= time.Duration(st.Detected)
		}
		out[kind] = st
	}
	return out
}

// Write renders the sweep as goodput-retention and recovery-latency curves.
func (rep *ChaosReport) Write(w io.Writer) {
	fmt.Fprintf(w, "Chaos sweep: %d points in %v\n", len(rep.Points), rep.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  %-6s %-9s | %-28s | %-28s | %s\n",
		"seed", "intensity", "baseline (no reaction)", "recovery (closed loop)", "loop activity")
	for _, pt := range rep.Points {
		b, r := pt.Baseline, pt.Recovery
		fmt.Fprintf(w, "  %-6d %-9.2g | done %5d/%-5d ret %5.1f%% | done %5d/%-5d ret %5.1f%% | failovers %d, stage retries %d, breakers %d, tickets %d\n",
			pt.Seed, pt.Intensity,
			b.Completed, b.Submitted, 100*b.GoodputRetention,
			r.Completed, r.Submitted, 100*r.GoodputRetention,
			r.ReplicaFailovers, r.StageRetries, r.BreakersOpened, r.TicketsOpened)
		kinds := make([]string, 0, len(r.Outages))
		for k := range r.Outages {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			st := r.Outages[k]
			if st.Detected == 0 {
				continue
			}
			fmt.Fprintf(w, "    %-18s injected %3d detected %3d  MTTD %8s  MTTR %8s\n",
				k, st.Injected, st.Detected, st.MTTD.Round(time.Second), st.MTTR.Round(time.Second))
		}
	}
}
