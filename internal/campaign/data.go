package campaign

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"grid3/internal/core"
)

// DataSweepConfig shapes a data-plane campaign: for every seed the sweep
// runs the same scenario twice — once with the historical data plane (raw
// GridFTP writes, unbounded WAN flows, first-listed replica) and once with
// the managed plane (SRM reservations + lifecycle cleanup, per-endpoint
// transfer doors, load-ranked replica selection). The outcomes put numbers
// on the §7 "2-3 TB/day" milestone and the Figure 5 per-VO split, and show
// what the management machinery costs or buys.
type DataSweepConfig struct {
	// Seeds are the campaign seeds; empty means {1, 2, 3}.
	Seeds []int64
	// Days is the simulated horizon per run; default 30 (the SC2003 window).
	Days int
	// JobScale multiplies the workload (0 keeps the scenario default).
	JobScale float64
	// Doors bounds concurrent GridFTP flows per endpoint in managed runs;
	// default 4 (a typical gsiftp door count).
	Doors int
	// Watermark is the managed runs' cleanup threshold (0 keeps the
	// scenario default).
	Watermark float64
	// Base rides along into every run; seed, horizon, and the data-plane
	// toggles are overridden per run.
	Base core.ScenarioConfig
	// Workers caps sweep parallelism (<=0 means GOMAXPROCS).
	Workers int
}

// DataOutcome is one run's data-plane scorecard.
type DataOutcome struct {
	// TBTotal and TBPerDay cover the whole run, all VO labels.
	TBTotal  float64            `json:"tb_total"`
	TBPerDay float64            `json:"tb_per_day"`
	ByVO     map[string]float64 `json:"tb_per_day_by_vo"`
	// WAN activity.
	Transfers    int64   `json:"transfers_completed"`
	Failures     int64   `json:"transfers_failed"`
	Queued       int64   `json:"transfers_queued"`
	PeakQueue    int     `json:"peak_queue_depth"`
	MeanWaitSecs float64 `json:"mean_queue_wait_seconds"`
	// SRM lifecycle totals across all sites.
	Granted      int   `json:"srm_granted"`
	Denied       int   `json:"srm_denied"`
	Expired      int   `json:"srm_expired"`
	Evicted      int   `json:"srm_evicted"`
	EvictedBytes int64 `json:"srm_evicted_bytes"`
	// RLIIndex is the replica index size at end of run — bounded by the
	// soft-state GC even as files churn.
	RLIIndex int `json:"rli_index_lfns"`
}

// DataPoint pairs the baseline and managed outcomes at one seed.
type DataPoint struct {
	Seed     int64       `json:"seed"`
	Baseline DataOutcome `json:"baseline"`
	Managed  DataOutcome `json:"managed"`
}

// DataReport is a completed data sweep.
type DataReport struct {
	Days     int
	JobScale float64
	Doors    int
	Elapsed  time.Duration
	// Points are ordered by seed in input order.
	Points []DataPoint
	// Managed TB/day across seeds — the milestone evidence.
	MinTBPerDay, MeanTBPerDay, MaxTBPerDay float64
}

// DataSweep runs the campaign. Runs fan across a worker pool exactly like
// Sweep: each run owns a private engine, so per-run determinism is
// untouched by parallel execution.
func DataSweep(cfg DataSweepConfig) (*DataReport, error) {
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []int64{1, 2, 3}
	}
	if cfg.Days <= 0 {
		cfg.Days = 30
	}
	if cfg.Doors <= 0 {
		cfg.Doors = 4
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Flatten into independent jobs: a baseline + managed pair per seed.
	var jobs []core.ScenarioConfig
	mk := func(seed int64, managed bool) core.ScenarioConfig {
		sc := cfg.Base
		sc.Seed = seed
		sc.Horizon = time.Duration(cfg.Days) * 24 * time.Hour
		if cfg.JobScale != 0 {
			sc.JobScale = cfg.JobScale
		}
		if managed {
			sc.UseSRM = true
			sc.TransferDoors = cfg.Doors
			sc.EnableReplicaRanking = true
			sc.EnableStorageCleanup = true
			sc.CleanupWatermark = cfg.Watermark
		}
		return sc
	}
	for _, seed := range cfg.Seeds {
		jobs = append(jobs, mk(seed, false), mk(seed, true))
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	start := time.Now()
	outcomes := make([]DataOutcome, len(jobs))
	errs := make([]error, len(jobs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				outcomes[i], errs[i] = runData(jobs[i])
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("campaign: data seed %d: %w", jobs[i].Seed, err)
		}
	}

	// Record the effective job scale so the report describes what ran.
	jobScale := cfg.JobScale
	if jobScale == 0 {
		jobScale = cfg.Base.JobScale
	}
	if jobScale == 0 {
		jobScale = 1.0
	}
	rep := &DataReport{
		Days:     cfg.Days,
		JobScale: jobScale,
		Doors:    cfg.Doors,
		Elapsed:  time.Since(start),
	}
	for i, seed := range cfg.Seeds {
		pt := DataPoint{Seed: seed, Baseline: outcomes[2*i], Managed: outcomes[2*i+1]}
		rep.Points = append(rep.Points, pt)
		v := pt.Managed.TBPerDay
		if i == 0 || v < rep.MinTBPerDay {
			rep.MinTBPerDay = v
		}
		if v > rep.MaxTBPerDay {
			rep.MaxTBPerDay = v
		}
		rep.MeanTBPerDay += v
	}
	rep.MeanTBPerDay /= float64(len(cfg.Seeds))
	return rep, nil
}

// runData executes one scenario and scores its data plane.
func runData(cfg core.ScenarioConfig) (DataOutcome, error) {
	s, err := core.NewScenario(cfg)
	if err != nil {
		return DataOutcome{}, err
	}
	if err := s.Run(); err != nil {
		return DataOutcome{}, err
	}
	g := s.Grid
	out := DataOutcome{ByVO: map[string]float64{}}

	days := g.Eng.Now().Hours() / 24
	var bytes int64
	for label, v := range g.Network.BytesByLabel() {
		bytes += v
		if days > 0 {
			out.ByVO[label] = float64(v) / float64(1<<40) / days
		}
	}
	out.TBTotal = float64(bytes) / float64(1<<40)
	if days > 0 {
		out.TBPerDay = out.TBTotal / days
	}

	out.Transfers = g.Network.Completed()
	out.Failures = g.Network.Failures()
	out.Queued = g.Network.QueuedTotal()
	out.PeakQueue = g.Network.PeakQueueDepth()
	out.MeanWaitSecs = g.Network.MeanQueueWait().Seconds()

	for _, name := range g.Order {
		m := g.Nodes[name].SRM
		out.Granted += m.Granted()
		out.Denied += m.Denied()
		out.Expired += m.Expired()
		out.Evicted += m.Evicted()
		out.EvictedBytes += m.EvictedBytes()
	}
	out.RLIIndex = g.RLI.KnownLFNs()
	return out, nil
}

// Write renders the sweep as a baseline-vs-managed table.
func (rep *DataReport) Write(w io.Writer) {
	fmt.Fprintf(w, "Data sweep: %d day(s) per run, %d doors, %d points in %v\n",
		rep.Days, rep.Doors, len(rep.Points), rep.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  %-6s | %-30s | %s\n", "seed", "baseline (raw GridFTP)", "managed (SRM + doors + ranking)")
	for _, pt := range rep.Points {
		b, m := pt.Baseline, pt.Managed
		fmt.Fprintf(w, "  %-6d | %6.2f TB/day %6d xfers %4d fail | %6.2f TB/day %6d xfers %4d fail, queued %d (peak %d, wait %s), srm %d/%d/%d g/d/e, evicted %d\n",
			pt.Seed,
			b.TBPerDay, b.Transfers, b.Failures,
			m.TBPerDay, m.Transfers, m.Failures,
			m.Queued, m.PeakQueue, (time.Duration(m.MeanWaitSecs * float64(time.Second))).Round(time.Second),
			m.Granted, m.Denied, m.Expired, m.Evicted)
	}
	fmt.Fprintf(w, "  managed TB/day across seeds: min %.2f  mean %.2f  max %.2f (milestone target 2-3)\n",
		rep.MinTBPerDay, rep.MeanTBPerDay, rep.MaxTBPerDay)
}
