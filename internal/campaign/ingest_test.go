package campaign

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"grid3/internal/core"
)

func TestIngestSweepRunsPoints(t *testing.T) {
	rep, err := IngestSweep(IngestSweepConfig{
		BatchSizes: []int{0, 64},
		Events:     100_000,
		AuditDays:  1,
		Base: core.ScenarioConfig{
			DisableFailures:     true,
			DisableTransferDemo: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(rep.Points))
	}
	direct, batched := rep.Points[0], rep.Points[1]
	if direct.Batch != 0 || batched.Batch != 64 {
		t.Fatalf("point order wrong: %+v", rep.Points)
	}
	for _, pt := range rep.Points {
		if pt.Events != 100_000 || pt.WallSecs <= 0 || pt.EventsPerS <= 0 {
			t.Errorf("batch=%d: measurement incomplete: %+v", pt.Batch, pt)
		}
	}
	if direct.Batches != 0 {
		t.Errorf("direct point recorded batches: %+v", direct)
	}
	if batched.Batches == 0 {
		t.Errorf("batched point recorded no batches: %+v", batched)
	}
	if rep.BestEventsPerS != batched.EventsPerS {
		t.Errorf("best throughput %f, want the batched point's %f",
			rep.BestEventsPerS, batched.EventsPerS)
	}
	if rep.AuditWindows == 0 || !rep.AuditVerified {
		t.Fatalf("audit leg failed: windows=%d verified=%v", rep.AuditWindows, rep.AuditVerified)
	}
	var buf bytes.Buffer
	rep.Write(&buf)
	out := buf.String()
	if !strings.Contains(out, "Monitoring-ingestion sweep") || !strings.Contains(out, "verified") {
		t.Errorf("report rendering incomplete:\n%s", out)
	}
}

func TestIngestSweepSkipsAudit(t *testing.T) {
	rep, err := IngestSweep(IngestSweepConfig{
		BatchSizes: []int{32},
		Events:     10_000,
		AuditDays:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AuditWindows != 0 || rep.AuditVerified {
		t.Fatalf("audit leg should be skipped: %+v", rep)
	}
}

func TestIngestReportJSONRoundTrip(t *testing.T) {
	rep := &IngestReport{
		Events: 1000, Farms: 4, Params: 2, Window: 5 * time.Minute,
		Elapsed: time.Second, BestEventsPerS: 1.5e6,
		AuditWindows: 9, AuditVerified: true,
		Points: []IngestPoint{
			{Batch: 0, Events: 1000, WallSecs: 0.1, EventsPerS: 1e4, Mallocs: 50},
			{Batch: 64, Events: 1000, WallSecs: 0.05, EventsPerS: 2e4, Batches: 16, MaxPending: 2},
		},
	}
	data, err := rep.JSON()
	m := decode(t, data, err)
	wantKeys(t, m, IngestSchema, "grid3sim-ingest",
		"gomaxprocs", "events", "series", "window_seconds", "wall_seconds",
		"best_events_per_second", "audit_windows", "audit_verified", "points")
	if got := m["best_events_per_second"]; got != 1.5e6 {
		t.Errorf("best_events_per_second = %v", got)
	}
	pts := m["points"].([]any)
	directPt := pts[0].(map[string]any)
	for _, k := range []string{"batch", "events", "wall_seconds", "events_per_second",
		"mallocs", "alloc_bytes", "bytes_per_event"} {
		if _, ok := directPt[k]; !ok {
			t.Errorf("point key %q missing", k)
		}
	}
	if _, ok := directPt["batches"]; ok {
		t.Error("direct point must omit the batches key")
	}
	batchedPt := pts[1].(map[string]any)
	if got := batchedPt["batches"]; got != 16.0 {
		t.Errorf("batched point batches = %v, want 16", got)
	}
}
