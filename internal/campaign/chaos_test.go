package campaign

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestChaosSweepSmall runs a compact chaos campaign end to end and checks
// the report's structure: one point per (seed, intensity), a clean-run
// denominator, recovery-loop activity at elevated intensity, and per-kind
// detection latency from the outage spans.
func TestChaosSweepSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign in -short mode")
	}
	rep, err := ChaosSweep(ChaosSweepConfig{
		Seeds:       []int64{1},
		Intensities: []float64{1, 6},
		Scale:       0.03,
		Horizon:     24 * time.Hour,
		Workers:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(rep.Points))
	}
	clean := rep.CleanCompleted[1]
	if clean == 0 {
		t.Fatal("failure-free reference run completed no jobs")
	}
	for _, pt := range rep.Points {
		if pt.Seed != 1 {
			t.Fatalf("point seed = %d, want 1", pt.Seed)
		}
		if pt.Baseline.Submitted == 0 || pt.Recovery.Submitted == 0 {
			t.Fatalf("intensity %g: no jobs submitted", pt.Intensity)
		}
		if pt.Baseline.Incidents == 0 {
			t.Fatalf("intensity %g: no incidents injected in baseline", pt.Intensity)
		}
		if pt.Recovery.GoodputRetention < pt.Baseline.GoodputRetention-0.02 {
			t.Errorf("intensity %g: recovery retention %.3f below baseline %.3f",
				pt.Intensity, pt.Recovery.GoodputRetention, pt.Baseline.GoodputRetention)
		}
		// The baseline has no health monitor: no breakers, no tickets.
		if pt.Baseline.BreakersOpened != 0 || pt.Baseline.Outages != nil {
			t.Errorf("intensity %g: baseline shows health activity", pt.Intensity)
		}
	}

	// At 6x intensity the closed loop must be visibly working.
	hot := rep.Points[1]
	if hot.Intensity != 6 {
		t.Fatalf("points out of input order: second intensity = %g", hot.Intensity)
	}
	r := hot.Recovery
	if r.BreakersOpened == 0 {
		t.Error("no breakers opened at 6x intensity")
	}
	if r.StageRetries == 0 {
		t.Error("no stage retries at 6x intensity")
	}
	if r.TicketsOpened == 0 {
		t.Error("no iGOC tickets at 6x intensity")
	}
	if len(r.Outages) == 0 {
		t.Fatal("no outage latency stats in recovery run")
	}
	detected := 0
	for kind, st := range r.Outages {
		if st.Injected == 0 {
			t.Errorf("kind %q scored with zero injections", kind)
		}
		if st.Detected > 0 {
			detected += st.Detected
			if st.MTTD <= 0 || st.MTTR < st.MTTD {
				t.Errorf("kind %q: implausible latency MTTD=%v MTTR=%v", kind, st.MTTD, st.MTTR)
			}
		}
	}
	if detected == 0 {
		t.Fatal("health monitor detected no injected incidents")
	}

	var b strings.Builder
	rep.Write(&b)
	out := b.String()
	for _, want := range []string{"Chaos sweep: 2 points", "recovery (closed loop)", "MTTD"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestChaosSweepDeterministic: the same config twice gives identical scores —
// worker-pool placement must not perturb any run.
func TestChaosSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign in -short mode")
	}
	cfg := ChaosSweepConfig{
		Seeds:       []int64{2},
		Intensities: []float64{3},
		Scale:       0.02,
		Horizon:     24 * time.Hour,
	}
	a, err := ChaosSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	b, err := ChaosSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Points[0], b.Points[0]
	// ChaosOutcome embeds a map, so the struct is not ==-comparable; a
	// rendered %+v covers every field including the map contents.
	if ra, rb := fmt.Sprintf("%+v", pa.Baseline), fmt.Sprintf("%+v", pb.Baseline); ra != rb {
		t.Errorf("baseline outcomes diverged:\n%s\n%s", ra, rb)
	}
	if ra, rb := fmt.Sprintf("%+v", pa.Recovery), fmt.Sprintf("%+v", pb.Recovery); ra != rb {
		t.Errorf("recovery outcomes diverged:\n%s\n%s", ra, rb)
	}
}
