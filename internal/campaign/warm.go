package campaign

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"grid3/internal/checkpoint"
	"grid3/internal/core"
	"grid3/internal/dist"
)

// WarmVariant is one fork of a checkpointed steady state. The replay up to
// the snapshot's sim time is byte-identical for every variant (it is digest-
// verified); the variants then diverge only in what the knobs below change
// about the future.
type WarmVariant struct {
	// Name labels the variant in the report; empty gets "variant<i>".
	Name string
	// ForwardSeed, when nonzero, reseeds the failure injector's RNG after
	// the restore point, so this variant sees a different failure future
	// over an identical past — the error-bar construction that does not pay
	// for N full warmups. 0 keeps the recorded stream (the variant
	// reproduces the original run exactly).
	ForwardSeed int64
	// Horizon, when beyond the recorded horizon, extends this variant's
	// continuation (the replay itself always uses the recorded horizon).
	Horizon time.Duration
	// Shards overrides the execution shard count (0 keeps the recorded
	// value); output is shard-independent.
	Shards int
}

// WarmStartConfig shapes a warm-start campaign: one batch-scope snapshot
// forked into N variants.
type WarmStartConfig struct {
	// Snapshot is the checkpointed steady state every variant restores
	// from. Batch scope (grid3sim -checkpoint-out, Scenario.Checkpoint).
	Snapshot *checkpoint.Snapshot
	// Variants are the forks; at least one.
	Variants []WarmVariant
	// Workers caps parallelism (<=0 means GOMAXPROCS).
	Workers int
}

// WarmResult is one variant's outcome.
type WarmResult struct {
	Name        string
	ForwardSeed int64
	Elapsed     time.Duration // wall clock: restore replay + forward run
	RestoredAt  time.Duration // snapshot sim time
	Horizon     time.Duration // horizon this variant actually ran to
	Submitted   int
	Records     int
	Events      uint64
	Milestones  core.Milestones
	// Digest is the end-state digest. Variants with identical forward
	// parameters land on identical digests; a zero-knob variant lands on
	// the original run's.
	Digest uint64
}

// WarmReport is a completed warm-start campaign.
type WarmReport struct {
	SnapshotID string
	SimTime    time.Duration // restore point shared by every variant
	Workers    int
	Elapsed    time.Duration
	Variants   []WarmResult // input order
}

// WarmStart restores the snapshot once per variant (each worker replays and
// digest-verifies independently, so a corrupt snapshot can never seed a
// variant with wrong state) and runs every fork to its horizon in parallel.
func WarmStart(cfg WarmStartConfig) (*WarmReport, error) {
	if cfg.Snapshot == nil {
		return nil, fmt.Errorf("campaign: warm start needs a snapshot")
	}
	if len(cfg.Variants) == 0 {
		return nil, fmt.Errorf("campaign: warm start needs at least one variant")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfg.Variants) {
		workers = len(cfg.Variants)
	}
	start := time.Now()
	results := make([]WarmResult, len(cfg.Variants))
	errs := make([]error, len(cfg.Variants))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i], errs[i] = executeWarm(cfg.Snapshot, cfg.Variants[i], i)
			}
		}()
	}
	for i := range cfg.Variants {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("campaign: variant %q: %w", results[i].Name, err)
		}
	}
	return &WarmReport{
		SnapshotID: cfg.Snapshot.ID(),
		SimTime:    cfg.Snapshot.SimTime,
		Workers:    workers,
		Elapsed:    time.Since(start),
		Variants:   results,
	}, nil
}

// executeWarm restores and runs one variant on the calling goroutine.
func executeWarm(snap *checkpoint.Snapshot, v WarmVariant, i int) (WarmResult, error) {
	name := v.Name
	if name == "" {
		name = fmt.Sprintf("variant%d", i)
	}
	res := WarmResult{Name: name, ForwardSeed: v.ForwardSeed, RestoredAt: snap.SimTime}
	t0 := time.Now()
	s, err := core.RestoreScenario(snap, core.RestoreOverrides{
		Shards:  v.Shards,
		Horizon: v.Horizon,
	})
	if err != nil {
		return res, err
	}
	// Fork the failure future: swap the injector's RNG after the verified
	// restore point. Everything before it is shared history; everything
	// after draws from the variant's own stream.
	if v.ForwardSeed != 0 && s.Injector != nil {
		s.Injector.Reseed(dist.New(v.ForwardSeed))
	}
	if err := s.Run(); err != nil {
		return res, err
	}
	res.Elapsed = time.Since(t0)
	res.Horizon = s.Cfg.Horizon
	res.Submitted = s.SubmittedTotal()
	res.Records = s.Grid.ACDC.Len()
	res.Events = s.Grid.Eng.Processed()
	res.Milestones = s.ComputeMilestones()
	res.Digest = s.StateDigest(nil)
	return res, nil
}

// Write renders the warm-start summary.
func (rep *WarmReport) Write(w io.Writer) {
	fmt.Fprintf(w, "Warm-start campaign: %d variants from %s (sim %v) on %d workers in %v\n",
		len(rep.Variants), rep.SnapshotID, rep.SimTime.Round(time.Second),
		rep.Workers, rep.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  %-16s %-10s %-8s %10s %10s %8s %8s  %s\n",
		"variant", "fwd-seed", "horizon", "jobs", "records", "peak", "util", "digest")
	for _, v := range rep.Variants {
		fmt.Fprintf(w, "  %-16s %-10d %-8s %10d %10d %8d %8.2f  %016x\n",
			v.Name, v.ForwardSeed, fmt.Sprintf("%dd", int(v.Horizon/(24*time.Hour))),
			v.Submitted, v.Records, v.Milestones.PeakJobs, v.Milestones.Utilization, v.Digest)
	}
}
