// Versioned JSON renderings for every sweep report. Each report kind owns a
// wire schema identified by a "schema" field ("grid3.<kind>/<version>");
// adding fields is compatible within a version, renaming or removing one
// bumps it. The "kind" values predate the schema field (they were minted by
// the grid3sim CLI writers) and are frozen: downstream tooling greps for
// them.

package campaign

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strconv"
	"time"
)

// Wire schema identifiers.
const (
	SweepSchema  = "grid3.sweep/1"
	ChaosSchema  = "grid3.chaos-sweep/1"
	ScaleSchema  = "grid3.scale-sweep/1"
	DataSchema   = "grid3.data-sweep/1"
	WarmSchema   = "grid3.warm-start/1"
	IngestSchema = "grid3.ingest-sweep/1"
)

func marshalReport(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// --- Report (multi-seed production sweep) ----------------------------------

type sweepRunJSON struct {
	Seed        int64   `json:"seed"`
	Scale       float64 `json:"scale"`
	ElapsedSecs float64 `json:"elapsed_seconds"`
	Jobs        int     `json:"jobs"`
	Records     int     `json:"records"`
	Events      uint64  `json:"events"`
	// Waves appears only when a wave family was armed, so wave-free sweep
	// reports stay byte-identical to the pre-wave schema (additive within
	// grid3.sweep/1).
	Waves *waveStatsJSON `json:"waves,omitempty"`
}

type waveStatsJSON struct {
	UpgradedSites   int `json:"upgraded_sites"`
	UpgradeKills    int `json:"upgrade_kills"`
	SkewKills       int `json:"skew_kills"`
	CertExpiries    int `json:"cert_expiries"`
	CertRenewals    int `json:"cert_renewals"`
	CertRevocations int `json:"cert_revocations"`
}

type statJSON struct {
	Min  float64 `json:"min"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

type stageQuantilesJSON struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_seconds"`
	P90   float64 `json:"p90_seconds"`
	P99   float64 `json:"p99_seconds"`
}

type sweepAggJSON struct {
	JobsCompleted  statJSON                      `json:"jobs_completed"`
	PeakJobs       statJSON                      `json:"peak_jobs"`
	Utilization    statJSON                      `json:"utilization"`
	DataTBPerDay   statJSON                      `json:"data_tb_per_day"`
	SupportFTEs    statJSON                      `json:"support_ftes"`
	ConcurrentVO   statJSON                      `json:"concurrent_vo_sites"`
	EfficiencyByVO map[string]statJSON           `json:"efficiency_by_vo"`
	StageLatency   map[string]stageQuantilesJSON `json:"stage_latency,omitempty"`
}

type sweepRecordJSON struct {
	Schema     string         `json:"schema"`
	Kind       string         `json:"kind"`
	GoMaxProcs int            `json:"gomaxprocs"`
	Workers    int            `json:"workers"`
	WallSecs   float64        `json:"wall_seconds"`
	Events     uint64         `json:"events_total"`
	Runs       []sweepRunJSON `json:"runs"`
	Aggregate  sweepAggJSON   `json:"aggregate"`
}

func statView(s Stat) statJSON { return statJSON{Min: s.Min, Mean: s.Mean, Max: s.Max} }

// JSON renders the sweep under the grid3.sweep/1 schema.
func (rep *Report) JSON() ([]byte, error) {
	rec := sweepRecordJSON{
		Schema:     SweepSchema,
		Kind:       "grid3-sweep",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    rep.Workers,
		WallSecs:   rep.Elapsed.Seconds(),
		Aggregate: sweepAggJSON{
			JobsCompleted:  statView(rep.Agg.JobsCompleted),
			PeakJobs:       statView(rep.Agg.PeakJobs),
			Utilization:    statView(rep.Agg.Utilization),
			DataTBPerDay:   statView(rep.Agg.DataTBPerDay),
			SupportFTEs:    statView(rep.Agg.SupportFTEs),
			ConcurrentVO:   statView(rep.Agg.ConcurrentVO),
			EfficiencyByVO: map[string]statJSON{},
		},
	}
	for v, s := range rep.Agg.EfficiencyByVO {
		rec.Aggregate.EfficiencyByVO[v] = statView(s)
	}
	for stage, q := range rep.Agg.StageLatency {
		if rec.Aggregate.StageLatency == nil {
			rec.Aggregate.StageLatency = map[string]stageQuantilesJSON{}
		}
		rec.Aggregate.StageLatency[stage] = stageQuantilesJSON{
			Count: q.Count, P50: q.P50, P90: q.P90, P99: q.P99,
		}
	}
	for _, r := range rep.Runs {
		rec.Events += r.Events
		run := sweepRunJSON{
			Seed: r.Seed, Scale: r.Scale, ElapsedSecs: r.Elapsed.Seconds(),
			Jobs: r.Submitted, Records: r.Records, Events: r.Events,
		}
		if !r.Waves.Zero() {
			run.Waves = &waveStatsJSON{
				UpgradedSites:   r.Waves.UpgradedSites,
				UpgradeKills:    r.Waves.UpgradeKills,
				SkewKills:       r.Waves.SkewKills,
				CertExpiries:    r.Waves.CertExpiries,
				CertRenewals:    r.Waves.CertRenewals,
				CertRevocations: r.Waves.CertRevocations,
			}
		}
		rec.Runs = append(rec.Runs, run)
	}
	return marshalReport(rec)
}

// --- ChaosReport -----------------------------------------------------------

type chaosOutcomeJSON struct {
	Submitted        int                   `json:"submitted"`
	Completed        int                   `json:"completed"`
	JobsLost         int                   `json:"jobs_lost"`
	CompletionRate   float64               `json:"completion_rate"`
	GoodputRetention float64               `json:"goodput_retention"`
	Incidents        int                   `json:"incidents"`
	ReplicaFailovers uint64                `json:"replica_failovers"`
	StageRetries     uint64                `json:"stage_retries"`
	BreakersOpened   uint64                `json:"breakers_opened"`
	TicketsOpened    int                   `json:"tickets_opened"`
	Outages          map[string]outageJSON `json:"outages,omitempty"`
}

type outageJSON struct {
	Injected int     `json:"injected"`
	Detected int     `json:"detected"`
	MTTDSecs float64 `json:"mttd_seconds"`
	MTTRSecs float64 `json:"mttr_seconds"`
}

type chaosPointJSON struct {
	Seed      int64            `json:"seed"`
	Intensity float64          `json:"intensity"`
	Baseline  chaosOutcomeJSON `json:"baseline"`
	Recovery  chaosOutcomeJSON `json:"recovery"`
}

type chaosRecordJSON struct {
	Schema   string           `json:"schema"`
	Kind     string           `json:"kind"`
	Scale    float64          `json:"scale"`
	Days     int              `json:"days"`
	WallSecs float64          `json:"wall_seconds"`
	Clean    map[string]int   `json:"clean_completed_by_seed"`
	Points   []chaosPointJSON `json:"points"`
}

func chaosOutcomeView(o ChaosOutcome) chaosOutcomeJSON {
	out := chaosOutcomeJSON{
		Submitted:        o.Submitted,
		Completed:        o.Completed,
		JobsLost:         o.JobsLost,
		CompletionRate:   o.CompletionRate,
		GoodputRetention: o.GoodputRetention,
		Incidents:        o.Incidents,
		ReplicaFailovers: o.ReplicaFailovers,
		StageRetries:     o.StageRetries,
		BreakersOpened:   o.BreakersOpened,
		TicketsOpened:    o.TicketsOpened,
	}
	for kind, st := range o.Outages {
		if out.Outages == nil {
			out.Outages = map[string]outageJSON{}
		}
		out.Outages[kind] = outageJSON{
			Injected: st.Injected, Detected: st.Detected,
			MTTDSecs: st.MTTD.Seconds(), MTTRSecs: st.MTTR.Seconds(),
		}
	}
	return out
}

// JSON renders the sweep under the grid3.chaos-sweep/1 schema (kind
// "grid3sim-chaos", frozen from the original CLI writer).
func (rep *ChaosReport) JSON() ([]byte, error) {
	rec := chaosRecordJSON{
		Schema:   ChaosSchema,
		Kind:     "grid3sim-chaos",
		Scale:    rep.Scale,
		Days:     int(rep.Horizon / (24 * time.Hour)),
		WallSecs: rep.Elapsed.Seconds(),
		Clean:    map[string]int{},
	}
	for seed, n := range rep.CleanCompleted {
		rec.Clean[strconv.FormatInt(seed, 10)] = n
	}
	for _, pt := range rep.Points {
		rec.Points = append(rec.Points, chaosPointJSON{
			Seed: pt.Seed, Intensity: pt.Intensity,
			Baseline: chaosOutcomeView(pt.Baseline), Recovery: chaosOutcomeView(pt.Recovery),
		})
	}
	return marshalReport(rec)
}

// --- ScaleReport -----------------------------------------------------------

type scaleRecordJSON struct {
	Schema     string       `json:"schema"`
	Kind       string       `json:"kind"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Days       int          `json:"days"`
	JobScale   float64      `json:"job_scale"`
	WallSecs   float64      `json:"wall_seconds"`
	Points     []ScalePoint `json:"points"`
}

// JSON renders the sweep under the grid3.scale-sweep/1 schema (kind
// "grid3sim-scale", frozen from the original CLI writer).
func (rep *ScaleReport) JSON() ([]byte, error) {
	return marshalReport(scaleRecordJSON{
		Schema:     ScaleSchema,
		Kind:       "grid3sim-scale",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Days:       rep.Days,
		JobScale:   rep.JobScale,
		WallSecs:   rep.Elapsed.Seconds(),
		Points:     rep.Points,
	})
}

// --- IngestReport ----------------------------------------------------------

type ingestRecordJSON struct {
	Schema     string  `json:"schema"`
	Kind       string  `json:"kind"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Events     int     `json:"events"`
	Series     int     `json:"series"`
	WindowSecs float64 `json:"window_seconds"`
	WallSecs   float64 `json:"wall_seconds"`
	// BestEventsPerS is the headline key the bench floor greps; frozen.
	BestEventsPerS float64       `json:"best_events_per_second"`
	AuditWindows   int           `json:"audit_windows"`
	AuditVerified  bool          `json:"audit_verified"`
	Points         []IngestPoint `json:"points"`
}

// JSON renders the sweep under the grid3.ingest-sweep/1 schema (kind
// "grid3sim-ingest"; best_events_per_second is frozen — the bench-check
// tooling greps it).
func (rep *IngestReport) JSON() ([]byte, error) {
	return marshalReport(ingestRecordJSON{
		Schema:         IngestSchema,
		Kind:           "grid3sim-ingest",
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		Events:         rep.Events,
		Series:         rep.Farms * rep.Params,
		WindowSecs:     rep.Window.Seconds(),
		WallSecs:       rep.Elapsed.Seconds(),
		BestEventsPerS: rep.BestEventsPerS,
		AuditWindows:   rep.AuditWindows,
		AuditVerified:  rep.AuditVerified,
		Points:         rep.Points,
	})
}

// --- WarmReport ------------------------------------------------------------

type warmVariantJSON struct {
	Name        string  `json:"name"`
	ForwardSeed int64   `json:"forward_seed"`
	HorizonDays float64 `json:"horizon_days"`
	ElapsedSecs float64 `json:"elapsed_seconds"`
	Jobs        int     `json:"jobs"`
	Records     int     `json:"records"`
	Events      uint64  `json:"events"`
	PeakJobs    int     `json:"peak_jobs"`
	Utilization float64 `json:"utilization"`
	Digest      string  `json:"digest"`
}

type warmRecordJSON struct {
	Schema       string            `json:"schema"`
	Kind         string            `json:"kind"`
	GoMaxProcs   int               `json:"gomaxprocs"`
	SnapshotID   string            `json:"snapshot_id"`
	RestoredSecs float64           `json:"restored_sim_seconds"`
	Workers      int               `json:"workers"`
	WallSecs     float64           `json:"wall_seconds"`
	Variants     []warmVariantJSON `json:"variants"`
}

// JSON renders the campaign under the grid3.warm-start/1 schema.
func (rep *WarmReport) JSON() ([]byte, error) {
	rec := warmRecordJSON{
		Schema:       WarmSchema,
		Kind:         "grid3sim-warm",
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		SnapshotID:   rep.SnapshotID,
		RestoredSecs: rep.SimTime.Seconds(),
		Workers:      rep.Workers,
		WallSecs:     rep.Elapsed.Seconds(),
	}
	for _, v := range rep.Variants {
		rec.Variants = append(rec.Variants, warmVariantJSON{
			Name:        v.Name,
			ForwardSeed: v.ForwardSeed,
			HorizonDays: v.Horizon.Hours() / 24,
			ElapsedSecs: v.Elapsed.Seconds(),
			Jobs:        v.Submitted,
			Records:     v.Records,
			Events:      v.Events,
			PeakJobs:    v.Milestones.PeakJobs,
			Utilization: v.Milestones.Utilization,
			Digest:      fmt.Sprintf("%016x", v.Digest),
		})
	}
	return marshalReport(rec)
}

// --- DataReport ------------------------------------------------------------

type dataRecordJSON struct {
	Schema       string      `json:"schema"`
	Kind         string      `json:"kind"`
	GoMaxProcs   int         `json:"gomaxprocs"`
	Days         int         `json:"days"`
	JobScale     float64     `json:"job_scale"`
	Doors        int         `json:"doors"`
	WallSecs     float64     `json:"wall_seconds"`
	MinTBPerDay  float64     `json:"managed_tb_per_day_min"`
	MeanTBPerDay float64     `json:"managed_tb_per_day_mean"`
	MaxTBPerDay  float64     `json:"managed_tb_per_day_max"`
	Points       []DataPoint `json:"points"`
}

// JSON renders the sweep under the grid3.data-sweep/1 schema (kind
// "grid3sim-data" and the managed_tb_per_day_* keys are frozen: the
// bench-check tooling greps them).
func (rep *DataReport) JSON() ([]byte, error) {
	return marshalReport(dataRecordJSON{
		Schema:       DataSchema,
		Kind:         "grid3sim-data",
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Days:         rep.Days,
		JobScale:     rep.JobScale,
		Doors:        rep.Doors,
		WallSecs:     rep.Elapsed.Seconds(),
		MinTBPerDay:  rep.MinTBPerDay,
		MeanTBPerDay: rep.MeanTBPerDay,
		MaxTBPerDay:  rep.MaxTBPerDay,
		Points:       rep.Points,
	})
}
