package campaign

import (
	"bytes"
	"strings"
	"testing"

	"grid3/internal/core"
)

func TestScaleSweepRunsPoints(t *testing.T) {
	rep, err := ScaleSweep(ScaleSweepConfig{
		SiteCounts: []int{5, 40},
		Seeds:      []int64{1},
		Days:       1,
		JobScale:   0.02,
		Base: core.ScenarioConfig{
			DisableFailures:     true,
			DisableTransferDemo: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(rep.Points))
	}
	small, large := rep.Points[0], rep.Points[1]
	if small.Sites != 5 || large.Sites != 40 {
		t.Fatalf("point order wrong: %+v", rep.Points)
	}
	if large.CPUs <= small.CPUs {
		t.Errorf("40 sites should have more CPUs than 5: %d vs %d", large.CPUs, small.CPUs)
	}
	for _, pt := range rep.Points {
		if pt.Events == 0 {
			t.Errorf("sites=%d: no events processed", pt.Sites)
		}
		if pt.WallSecs <= 0 {
			t.Errorf("sites=%d: wall time not measured", pt.Sites)
		}
		if pt.Mallocs == 0 {
			t.Errorf("sites=%d: alloc delta not measured", pt.Sites)
		}
	}
	var buf bytes.Buffer
	rep.Write(&buf)
	if !strings.Contains(buf.String(), "Testbed scale sweep") {
		t.Errorf("report header missing:\n%s", buf.String())
	}
}

func TestScaleSweepDefaults(t *testing.T) {
	cfg := ScaleSweepConfig{}
	if len(cfg.SiteCounts) != 0 {
		t.Fatal("zero value should carry no counts")
	}
	// Defaults are applied inside ScaleSweep; verify the documented set by
	// running a sweep whose Base makes each point trivial is too slow here,
	// so just check the config contract via a tiny explicit sweep instead.
	rep, err := ScaleSweep(ScaleSweepConfig{
		SiteCounts: []int{3},
		Seeds:      []int64{7, 8},
		Days:       1,
		JobScale:   0.01,
		Base: core.ScenarioConfig{
			DisableFailures:     true,
			DisableTransferDemo: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("got %d points, want one per seed", len(rep.Points))
	}
	if rep.Points[0].Seed != 7 || rep.Points[1].Seed != 8 {
		t.Fatalf("seed order wrong: %+v", rep.Points)
	}
}
