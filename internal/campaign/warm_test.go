package campaign

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"grid3/internal/checkpoint"
	"grid3/internal/core"
)

// warmSnapshot checkpoints a small scenario halfway, runs it to completion,
// and returns the snapshot plus the original run's end-state digest.
func warmSnapshot(t *testing.T) (*checkpoint.Snapshot, uint64) {
	t.Helper()
	store := checkpoint.NewMemStore()
	s, err := core.NewScenario(core.ScenarioConfig{
		Config:          core.Config{Seed: 7, TestbedSites: 5},
		Horizon:         3 * 24 * time.Hour,
		JobScale:        0.01,
		ChaosIntensity:  4, // frequent failures, so forward seeds visibly diverge
		CheckpointAt:    []time.Duration{36 * time.Hour},
		CheckpointStore: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	snap, _, err := checkpoint.Latest(store)
	if err != nil {
		t.Fatal(err)
	}
	return snap, s.StateDigest(nil)
}

// The warm-start guarantee: every variant shares the verified warmup
// prefix; a zero-knob variant reproduces the original run exactly, equal
// forward seeds land on equal futures, and different forward seeds diverge.
func TestWarmStartForksFailureFutures(t *testing.T) {
	snap, wantDigest := warmSnapshot(t)
	rep, err := WarmStart(WarmStartConfig{
		Snapshot: snap,
		Variants: []WarmVariant{
			{Name: "replay"},
			{Name: "alt-a", ForwardSeed: 99},
			{Name: "alt-b", ForwardSeed: 99},
			{Name: "alt-c", ForwardSeed: 1234},
		},
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Variants) != 4 {
		t.Fatalf("%d variants, want 4", len(rep.Variants))
	}
	byName := map[string]WarmResult{}
	for _, v := range rep.Variants {
		byName[v.Name] = v
		if v.RestoredAt != 36*time.Hour {
			t.Fatalf("%s restored at %v, want 36h", v.Name, v.RestoredAt)
		}
		if v.Submitted == 0 || v.Events == 0 {
			t.Fatalf("%s ran nothing: %+v", v.Name, v)
		}
	}
	if byName["replay"].Digest != wantDigest {
		t.Fatalf("zero-knob variant diverged from the original run: %016x vs %016x",
			byName["replay"].Digest, wantDigest)
	}
	if byName["alt-a"].Digest != byName["alt-b"].Digest {
		t.Fatalf("equal forward seeds diverged: %016x vs %016x",
			byName["alt-a"].Digest, byName["alt-b"].Digest)
	}
	if byName["alt-a"].Digest == byName["replay"].Digest {
		t.Fatal("reseeded variant reproduced the recorded failure future")
	}
	if byName["alt-c"].Digest == byName["alt-a"].Digest {
		t.Fatal("distinct forward seeds landed on the same future")
	}
}

// A variant may extend the horizon: the fork runs further than the recorded
// window without perturbing the shared prefix.
func TestWarmStartExtendsHorizon(t *testing.T) {
	snap, _ := warmSnapshot(t)
	rep, err := WarmStart(WarmStartConfig{
		Snapshot: snap,
		Variants: []WarmVariant{
			{Name: "recorded"},
			{Name: "extended", Horizon: 4 * 24 * time.Hour},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, ext := rep.Variants[0], rep.Variants[1]
	if rec.Horizon != 3*24*time.Hour || ext.Horizon != 4*24*time.Hour {
		t.Fatalf("horizons %v / %v, want 3d / 4d", rec.Horizon, ext.Horizon)
	}
	if ext.Events <= rec.Events {
		t.Fatalf("extended variant processed %d events, recorded %d", ext.Events, rec.Events)
	}
}

func TestWarmStartRejectsBadInput(t *testing.T) {
	if _, err := WarmStart(WarmStartConfig{}); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	snap, _ := warmSnapshot(t)
	if _, err := WarmStart(WarmStartConfig{Snapshot: snap}); err == nil {
		t.Fatal("empty variant list accepted")
	}
	snap.Digest ^= 1
	if _, err := WarmStart(WarmStartConfig{
		Snapshot: snap,
		Variants: []WarmVariant{{Name: "x"}},
	}); err == nil {
		t.Fatal("tampered snapshot accepted")
	}
}

func TestWarmReportRenders(t *testing.T) {
	snap, _ := warmSnapshot(t)
	rep, err := WarmStart(WarmStartConfig{
		Snapshot: snap,
		Variants: []WarmVariant{{ForwardSeed: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rep.Write(&buf)
	if !strings.Contains(buf.String(), "Warm-start campaign") ||
		!strings.Contains(buf.String(), "variant0") {
		t.Fatalf("text render:\n%s", buf.String())
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{WarmSchema, "grid3sim-warm", "forward_seed", "digest"} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("JSON missing %q:\n%s", want, data)
		}
	}
}
