package classad

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Ad is a ClassAd: an unordered set of (attribute, expression) pairs.
// Attribute names are case-insensitive, as in Condor.
type Ad struct {
	attrs map[string]Expr
}

// NewAd returns an empty ad.
func NewAd() *Ad {
	return &Ad{attrs: make(map[string]Expr)}
}

// Set binds an attribute to an expression.
func (a *Ad) Set(name string, e Expr) {
	a.attrs[strings.ToLower(name)] = e
}

// SetValue binds an attribute to a literal value.
func (a *Ad) SetValue(name string, v Value) {
	a.Set(name, litExpr{v})
}

// SetString, SetInt, SetFloat and SetBool are literal-binding conveniences.
func (a *Ad) SetString(name, s string) { a.SetValue(name, Str(s)) }

// SetInt binds an integer literal.
func (a *Ad) SetInt(name string, i int64) { a.SetValue(name, Int(i)) }

// SetFloat binds a real literal.
func (a *Ad) SetFloat(name string, f float64) { a.SetValue(name, Float(f)) }

// SetBool binds a boolean literal.
func (a *Ad) SetBool(name string, b bool) { a.SetValue(name, Bool(b)) }

// SetExpr parses src and binds it; it returns a parse error if any.
func (a *Ad) SetExpr(name, src string) error {
	e, err := Parse(src)
	if err != nil {
		return err
	}
	a.Set(name, e)
	return nil
}

// Get returns the bound expression.
func (a *Ad) Get(name string) (Expr, bool) {
	e, ok := a.attrs[strings.ToLower(name)]
	return e, ok
}

// Delete removes an attribute.
func (a *Ad) Delete(name string) {
	delete(a.attrs, strings.ToLower(name))
}

// Len returns the number of attributes.
func (a *Ad) Len() int { return len(a.attrs) }

// Names returns attribute names, sorted.
func (a *Ad) Names() []string {
	out := make([]string, 0, len(a.attrs))
	for n := range a.attrs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Clone returns a shallow copy (expressions are immutable once parsed).
func (a *Ad) Clone() *Ad {
	c := NewAd()
	for n, e := range a.attrs {
		c.attrs[n] = e
	}
	return c
}

// String renders the ad in old-ClassAd "attr = expr" line syntax.
func (a *Ad) String() string {
	var sb strings.Builder
	for _, n := range a.Names() {
		fmt.Fprintf(&sb, "%s = %s\n", n, a.attrs[n].String())
	}
	return sb.String()
}

// ParseAd reads an old-syntax ad: one "Attr = Expr" per line, with blank
// lines and '#' comments ignored.
func ParseAd(r io.Reader) (*Ad, error) {
	a := NewAd()
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		eq := strings.Index(line, "=")
		if eq <= 0 {
			return nil, fmt.Errorf("classad: line %d: expected Attr = Expr", lineno)
		}
		name := strings.TrimSpace(line[:eq])
		if strings.ContainsAny(name, " \t") {
			return nil, fmt.Errorf("classad: line %d: bad attribute name %q", lineno, name)
		}
		if err := a.SetExpr(name, line[eq+1:]); err != nil {
			return nil, fmt.Errorf("classad: line %d: %w", lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return a, nil
}

// ParseAdString parses an old-syntax ad from a string.
func ParseAdString(s string) (*Ad, error) {
	return ParseAd(strings.NewReader(s))
}

// MustParseAd parses or panics; for test fixtures and built-in ads.
func MustParseAd(s string) *Ad {
	a, err := ParseAdString(s)
	if err != nil {
		panic(err)
	}
	return a
}
