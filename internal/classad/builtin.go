package classad

import (
	"math"
	"strings"
)

// evalCall dispatches the built-in function library. Unknown functions
// evaluate to ERROR, matching Condor.
func evalCall(ex callExpr, ctx *evalContext) Value {
	argv := make([]Value, len(ex.args))
	// isundefined must see the raw value, but that falls out naturally:
	// UNDEFINED is a first-class value here.
	for i, a := range ex.args {
		argv[i] = evalIn(a, ctx)
	}
	switch ex.fn {
	case "isundefined":
		if len(argv) != 1 {
			return ErrorValue()
		}
		return Bool(argv[0].IsUndefined())
	case "iserror":
		if len(argv) != 1 {
			return ErrorValue()
		}
		return Bool(argv[0].IsError())
	case "ifthenelse":
		if len(argv) != 3 {
			return ErrorValue()
		}
		c := argv[0]
		if c.IsError() || c.IsUndefined() {
			return c
		}
		if c.IsTrue() {
			return argv[1]
		}
		return argv[2]
	}

	// Remaining functions propagate ERROR/UNDEFINED from any argument.
	for _, v := range argv {
		if v.IsError() {
			return ErrorValue()
		}
		if v.IsUndefined() {
			return UndefinedValue()
		}
	}

	num1 := func(f func(float64) Value) Value {
		if len(argv) != 1 {
			return ErrorValue()
		}
		x, ok := argv[0].Number()
		if !ok {
			return ErrorValue()
		}
		return f(x)
	}

	switch ex.fn {
	case "floor":
		return num1(func(x float64) Value { return Int(int64(math.Floor(x))) })
	case "ceiling":
		return num1(func(x float64) Value { return Int(int64(math.Ceil(x))) })
	case "round":
		return num1(func(x float64) Value { return Int(int64(math.Round(x))) })
	case "int":
		return num1(func(x float64) Value { return Int(int64(x)) })
	case "real":
		return num1(Float)
	case "min", "max":
		if len(argv) < 1 {
			return ErrorValue()
		}
		best, ok := argv[0].Number()
		if !ok {
			return ErrorValue()
		}
		allInt := argv[0].kind == Integer
		for _, v := range argv[1:] {
			x, ok := v.Number()
			if !ok {
				return ErrorValue()
			}
			allInt = allInt && v.kind == Integer
			if (ex.fn == "min" && x < best) || (ex.fn == "max" && x > best) {
				best = x
			}
		}
		if allInt {
			return Int(int64(best))
		}
		return Float(best)
	case "strcat":
		var sb strings.Builder
		for _, v := range argv {
			s, ok := v.StringVal()
			if !ok {
				s = v.String()
			}
			sb.WriteString(s)
		}
		return Str(sb.String())
	case "toupper":
		if len(argv) != 1 || argv[0].kind != String {
			return ErrorValue()
		}
		return Str(strings.ToUpper(argv[0].s))
	case "tolower":
		if len(argv) != 1 || argv[0].kind != String {
			return ErrorValue()
		}
		return Str(strings.ToLower(argv[0].s))
	case "size":
		if len(argv) != 1 || argv[0].kind != String {
			return ErrorValue()
		}
		return Int(int64(len(argv[0].s)))
	case "substr":
		if len(argv) < 2 || argv[0].kind != String {
			return ErrorValue()
		}
		s := argv[0].s
		off, ok := argv[1].IntVal()
		if !ok {
			return ErrorValue()
		}
		if off < 0 {
			off += int64(len(s))
		}
		if off < 0 || off > int64(len(s)) {
			return Str("")
		}
		end := int64(len(s))
		if len(argv) == 3 {
			n, ok := argv[2].IntVal()
			if !ok {
				return ErrorValue()
			}
			if off+n < end {
				end = off + n
			}
		}
		if end < off {
			end = off
		}
		return Str(s[off:end])
	case "stringlistmember":
		// stringListMember(item, "a,b,c") — used for site VO support lists.
		if len(argv) != 2 || argv[0].kind != String || argv[1].kind != String {
			return ErrorValue()
		}
		for _, part := range strings.Split(argv[1].s, ",") {
			if strings.EqualFold(strings.TrimSpace(part), argv[0].s) {
				return Bool(true)
			}
		}
		return Bool(false)
	case "stringlistsize":
		if len(argv) != 1 || argv[0].kind != String {
			return ErrorValue()
		}
		if strings.TrimSpace(argv[0].s) == "" {
			return Int(0)
		}
		return Int(int64(len(strings.Split(argv[0].s, ","))))
	}
	return ErrorValue()
}
