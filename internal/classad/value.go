// Package classad implements the Condor ClassAd language: typed values with
// UNDEFINED/ERROR three-valued logic, an expression lexer/parser/evaluator,
// attribute ads, and two-ad matchmaking (Requirements/Rank).
//
// Condor-G, which Grid3 used for all grid job management (§4.2, §4.7),
// matches job ads against resource ads by evaluating each ad's Requirements
// expression in the context of the other. This package reproduces the 2003
// "old ClassAd" semantics that condor_submit and the Condor matchmaker used.
package classad

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates value types.
type Kind int

// Value kinds. Undefined and Error are first-class values, not Go errors:
// ClassAd evaluation never fails, it produces ERROR.
const (
	Undefined Kind = iota
	Error
	Boolean
	Integer
	Real
	String
)

func (k Kind) String() string {
	switch k {
	case Undefined:
		return "UNDEFINED"
	case Error:
		return "ERROR"
	case Boolean:
		return "BOOLEAN"
	case Integer:
		return "INTEGER"
	case Real:
		return "REAL"
	case String:
		return "STRING"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Value is a ClassAd runtime value.
type Value struct {
	kind Kind
	b    bool
	i    int64
	f    float64
	s    string
}

// Constructors.

// UndefinedValue returns the UNDEFINED value.
func UndefinedValue() Value { return Value{kind: Undefined} }

// ErrorValue returns the ERROR value.
func ErrorValue() Value { return Value{kind: Error} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{kind: Boolean, b: b} }

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: Integer, i: i} }

// Float returns a real value.
func Float(f float64) Value { return Value{kind: Real, f: f} }

// Str returns a string value.
func Str(s string) Value { return Value{kind: String, s: s} }

// Kind returns the value's type.
func (v Value) Kind() Kind { return v.kind }

// IsUndefined reports kind == Undefined.
func (v Value) IsUndefined() bool { return v.kind == Undefined }

// IsError reports kind == Error.
func (v Value) IsError() bool { return v.kind == Error }

// BoolVal returns the boolean content; ok is false for non-booleans.
func (v Value) BoolVal() (val, ok bool) { return v.b, v.kind == Boolean }

// IntVal returns the integer content; ok is false for non-integers.
func (v Value) IntVal() (int64, bool) { return v.i, v.kind == Integer }

// StringVal returns the string content; ok is false for non-strings.
func (v Value) StringVal() (string, bool) { return v.s, v.kind == String }

// Number returns the value as a float64 for Integer or Real kinds.
func (v Value) Number() (float64, bool) {
	switch v.kind {
	case Integer:
		return float64(v.i), true
	case Real:
		return v.f, true
	}
	return 0, false
}

// IsTrue reports whether the value is the boolean true, or a non-zero
// number (old-ClassAd truthiness used by Requirements evaluation).
func (v Value) IsTrue() bool {
	switch v.kind {
	case Boolean:
		return v.b
	case Integer:
		return v.i != 0
	case Real:
		return v.f != 0
	}
	return false
}

// String renders the value in ClassAd literal syntax.
func (v Value) String() string {
	switch v.kind {
	case Undefined:
		return "UNDEFINED"
	case Error:
		return "ERROR"
	case Boolean:
		if v.b {
			return "TRUE"
		}
		return "FALSE"
	case Integer:
		return strconv.FormatInt(v.i, 10)
	case Real:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case String:
		return strconv.Quote(v.s)
	}
	return "ERROR"
}

// Equal implements =?= (is-identical-to): same kind and same content, with
// no type promotion and no UNDEFINED propagation.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		// =?= promotes between Integer and Real per Condor semantics.
		a, aok := v.Number()
		b, bok := o.Number()
		return aok && bok && a == b
	}
	switch v.kind {
	case Undefined, Error:
		return true
	case Boolean:
		return v.b == o.b
	case Integer:
		return v.i == o.i
	case Real:
		return v.f == o.f || (math.IsNaN(v.f) && math.IsNaN(o.f))
	case String:
		return v.s == o.s
	}
	return false
}
