package classad

import (
	"strings"
	"testing"
	"testing/quick"
)

func evalStr(t *testing.T, src string) Value {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return Eval(e, NewAd())
}

func TestLiteralsAndArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want Value
	}{
		{"42", Int(42)},
		{"-7", Int(-7)},
		{"3.5", Float(3.5)},
		{"2e3", Float(2000)},
		{"1 + 2 * 3", Int(7)},
		{"(1 + 2) * 3", Int(9)},
		{"7 / 2", Int(3)},
		{"7.0 / 2", Float(3.5)},
		{"7 % 3", Int(1)},
		{"1/0", ErrorValue()},
		{"1%0", ErrorValue()},
		{`"abc" + "def"`, Str("abcdef")},
		{"true", Bool(true)},
		{"FALSE", Bool(false)},
		{"UNDEFINED", UndefinedValue()},
		{"1 + undefined", UndefinedValue()},
		{"1 + error", ErrorValue()},
		{"-(2.5)", Float(-2.5)},
		{"!true", Bool(false)},
		{"!0", Bool(true)},
		{"2 < 3", Bool(true)},
		{"2 >= 3", Bool(false)},
		{"2.0 == 2", Bool(true)},
		{`"ABC" == "abc"`, Bool(true)}, // case-insensitive string compare
		{`"abc" < "abd"`, Bool(true)},
		{"true == true", Bool(true)},
		{"1 == 2 ? 10 : 20", Int(20)},
		{"2 ? 10 : 20", Int(10)},
		{"undefined ? 10 : 20", UndefinedValue()},
	}
	for _, c := range cases {
		got := evalStr(t, c.src)
		if !got.Equal(c.want) || got.Kind() != c.want.Kind() {
			t.Errorf("%q = %v (%v), want %v (%v)", c.src, got, got.Kind(), c.want, c.want.Kind())
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	cases := []struct {
		src  string
		want Value
	}{
		{"false && undefined", Bool(false)},
		{"undefined && false", Bool(false)},
		{"true && undefined", UndefinedValue()},
		{"undefined && true", UndefinedValue()},
		{"true || undefined", Bool(true)},
		{"undefined || true", Bool(true)},
		{"false || undefined", UndefinedValue()},
		{"undefined || false", UndefinedValue()},
		{"undefined && undefined", UndefinedValue()},
		{"error && false", ErrorValue()},
		{"true && error", ErrorValue()},
	}
	for _, c := range cases {
		got := evalStr(t, c.src)
		if got.Kind() != c.want.Kind() || !got.Equal(c.want) {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestMetaOperators(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"undefined =?= undefined", true},
		{"undefined =?= 1", false},
		{"undefined =!= 1", true},
		{"1 =?= 1", true},
		{"1 =?= 1.0", true},    // numeric promotion
		{`"a" =?= "A"`, false}, // identity is case-sensitive
		{`"a" =?= "a"`, true},
	}
	for _, c := range cases {
		got := evalStr(t, c.src)
		b, ok := got.BoolVal()
		if !ok || b != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestAttributeReferences(t *testing.T) {
	ad := MustParseAd(`
Memory = 2048
Disk = Memory * 2
Cpus = 4
Deep = Disk + Cpus
`)
	if v := EvalAttr("deep", ad, nil); !v.Equal(Int(4100)) {
		t.Fatalf("deep = %v", v)
	}
	if v := EvalAttr("missing", ad, nil); !v.IsUndefined() {
		t.Fatalf("missing attr = %v, want UNDEFINED", v)
	}
}

func TestCyclicReferenceYieldsError(t *testing.T) {
	ad := MustParseAd("a = b\nb = a\n")
	if v := EvalAttr("a", ad, nil); !v.IsError() {
		t.Fatalf("cyclic ref = %v, want ERROR", v)
	}
}

func TestScopedReferences(t *testing.T) {
	job := MustParseAd(`
ImageSize = 500
Requirements = TARGET.Memory >= MY.ImageSize
`)
	machine := MustParseAd("Memory = 1024\n")
	req, _ := job.Get("requirements")
	if v := EvalWithTarget(req, job, machine); !v.IsTrue() {
		t.Fatalf("requirements = %v", v)
	}
	small := MustParseAd("Memory = 256\n")
	if v := EvalWithTarget(req, job, small); v.IsTrue() {
		t.Fatal("requirements true against small machine")
	}
}

func TestUnscopedFallsThroughToTarget(t *testing.T) {
	job := MustParseAd("Requirements = Arch == \"INTEL\"\n")
	machine := MustParseAd("Arch = \"INTEL\"\n")
	req, _ := job.Get("requirements")
	if v := EvalWithTarget(req, job, machine); !v.IsTrue() {
		t.Fatalf("unscoped lookup failed: %v", v)
	}
}

func TestBuiltins(t *testing.T) {
	cases := []struct {
		src  string
		want Value
	}{
		{"floor(3.9)", Int(3)},
		{"ceiling(3.1)", Int(4)},
		{"round(3.5)", Int(4)},
		{"int(3.9)", Int(3)},
		{"real(3)", Float(3)},
		{"min(3, 1, 2)", Int(1)},
		{"max(3, 1, 2.5)", Float(3)},
		{`strcat("a", "b", 3)`, Str("ab3")},
		{`toUpper("gram")`, Str("GRAM")},
		{`toLower("GRAM")`, Str("gram")},
		{`size("grid3")`, Int(5)},
		{`substr("gatekeeper", 4)`, Str("keeper")},
		{`substr("gatekeeper", 0, 4)`, Str("gate")},
		{`substr("abc", -2)`, Str("bc")},
		{`stringListMember("usatlas", "uscms, usatlas, ligo")`, Bool(true)},
		{`stringListMember("btev", "uscms, usatlas")`, Bool(false)},
		{`stringListSize("a,b,c")`, Int(3)},
		{`stringListSize("")`, Int(0)},
		{"isUndefined(undefined)", Bool(true)},
		{"isUndefined(1)", Bool(false)},
		{"isError(1/0)", Bool(true)},
		{"ifThenElse(true, 1, 2)", Int(1)},
		{"ifThenElse(false, 1, 2)", Int(2)},
		{"floor(undefined)", UndefinedValue()},
		{"nosuchfunction(1)", ErrorValue()},
	}
	for _, c := range cases {
		got := evalStr(t, c.src)
		if got.Kind() != c.want.Kind() || !got.Equal(c.want) {
			t.Errorf("%q = %v (%v), want %v", c.src, got, got.Kind(), c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"1 +", "(1", "foo(", "1 ? 2", "a b", `"unterminated`, "& &", "|",
		"1 @ 2",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseAdErrors(t *testing.T) {
	bad := []string{
		"noequals\n",
		"= expr\n",
		"two words = 1\n",
		"a = 1 +\n",
	}
	for _, src := range bad {
		if _, err := ParseAdString(src); err == nil {
			t.Errorf("ParseAdString(%q) succeeded, want error", src)
		}
	}
}

func TestAdRoundTrip(t *testing.T) {
	ad := MustParseAd(`
Name = "UC_ATLAS_Tier2"
Cpus = 64
Requirements = TARGET.WallTime <= 86400 && stringListMember(TARGET.VO, "usatlas,ivdgl")
Rank = 10.5 - 0.5
`)
	rendered := ad.String()
	back, err := ParseAdString(rendered)
	if err != nil {
		t.Fatalf("round-trip parse failed: %v\n%s", err, rendered)
	}
	if back.Len() != ad.Len() {
		t.Fatalf("round trip lost attributes: %d vs %d", back.Len(), ad.Len())
	}
	for _, n := range ad.Names() {
		a, _ := ad.Get(n)
		b, _ := back.Get(n)
		if Eval(a, ad).String() != Eval(b, back).String() {
			t.Fatalf("attribute %s changed: %s vs %s", n, a, b)
		}
	}
}

func TestMatchSymmetric(t *testing.T) {
	job := MustParseAd(`
VO = "uscms"
WallTime = 108000
Requirements = TARGET.FreeCpus > 0 && TARGET.MaxWallTime >= MY.WallTime
Rank = TARGET.FreeCpus
`)
	okSite := MustParseAd(`
FreeCpus = 20
MaxWallTime = 200000
Requirements = stringListMember(TARGET.VO, "uscms,usatlas")
`)
	noVOSite := MustParseAd(`
FreeCpus = 50
MaxWallTime = 200000
Requirements = stringListMember(TARGET.VO, "ligo")
`)
	shortSite := MustParseAd(`
FreeCpus = 50
MaxWallTime = 3600
`)
	if !Match(job, okSite) {
		t.Fatal("job should match okSite")
	}
	if Match(job, noVOSite) {
		t.Fatal("job matched a site that rejects its VO")
	}
	if Match(job, shortSite) {
		t.Fatal("job matched a site with too-short MaxWallTime")
	}
}

func TestMatchMissingRequirementsIsTrue(t *testing.T) {
	a := NewAd()
	b := NewAd()
	if !Match(a, b) {
		t.Fatal("two unconstrained ads should match")
	}
}

func TestUndefinedRequirementsDoesNotMatch(t *testing.T) {
	job := MustParseAd("Requirements = TARGET.NoSuchAttr > 5\n")
	site := NewAd()
	if Match(job, site) {
		t.Fatal("UNDEFINED requirements treated as a match")
	}
}

func TestBestMatchRanking(t *testing.T) {
	job := MustParseAd(`
Requirements = TARGET.FreeCpus > 0
Rank = TARGET.FreeCpus
`)
	sites := []*Ad{
		MustParseAd("FreeCpus = 5\n"),
		MustParseAd("FreeCpus = 50\n"),
		MustParseAd("FreeCpus = 0\n"),
		MustParseAd("FreeCpus = 50\n"), // tie with index 1; index 1 wins
	}
	if got := BestMatch(job, sites); got != 1 {
		t.Fatalf("BestMatch = %d, want 1", got)
	}
	all := MatchAll(job, sites)
	if len(all) != 3 || all[0] != 0 || all[1] != 1 || all[2] != 3 {
		t.Fatalf("MatchAll = %v", all)
	}
}

func TestBestMatchNoCandidates(t *testing.T) {
	job := MustParseAd("Requirements = TARGET.FreeCpus > 100\n")
	sites := []*Ad{MustParseAd("FreeCpus = 5\n"), nil}
	if got := BestMatch(job, sites); got != -1 {
		t.Fatalf("BestMatch = %d, want -1", got)
	}
}

func TestRankDefaults(t *testing.T) {
	a := NewAd()
	if r := Rank(a, NewAd()); r != 0 {
		t.Fatalf("missing rank = %v, want 0", r)
	}
	a.SetExpr("Rank", "TARGET.NoSuch")
	if r := Rank(a, NewAd()); r != 0 {
		t.Fatalf("undefined rank = %v, want 0", r)
	}
	a.SetExpr("Rank", "true")
	if r := Rank(a, NewAd()); r != 1 {
		t.Fatalf("boolean true rank = %v, want 1", r)
	}
}

// Property: any expression the parser accepts renders to a string that
// re-parses to an expression with the same value.
func TestExprStringRoundTripProperty(t *testing.T) {
	srcs := []string{
		"1 + 2 * 3 - 4 / 2",
		"a && b || !c",
		"(x > 5) ? \"big\" : \"small\"",
		"min(a, 3) + max(1, b)",
		"TARGET.Memory >= MY.ImageSize && stringListMember(vo, list)",
		"x =?= undefined",
	}
	ad := MustParseAd("a = true\nb = false\nc = true\nx = 7\nvo = \"ligo\"\nlist = \"ligo,sdss\"\nmemory = 10\nimagesize = 5\n")
	for _, src := range srcs {
		e1 := MustParse(src)
		e2, err := Parse(e1.String())
		if err != nil {
			t.Fatalf("re-parse of %q -> %q failed: %v", src, e1.String(), err)
		}
		v1 := EvalWithTarget(e1, ad, ad)
		v2 := EvalWithTarget(e2, ad, ad)
		if v1.Kind() != v2.Kind() || !v1.Equal(v2) {
			t.Fatalf("round trip changed value of %q: %v vs %v", src, v1, v2)
		}
	}
}

// Property: integer arithmetic in the ClassAd evaluator agrees with Go.
func TestArithmeticAgreesWithGoProperty(t *testing.T) {
	f := func(a, b int16) bool {
		ad := NewAd()
		ad.SetInt("a", int64(a))
		ad.SetInt("b", int64(b))
		sum := EvalAttr("a", ad, nil)
		_ = sum
		e := MustParse("a + b * 2 - (a % ifThenElse(b == 0, 1, b))")
		v := Eval(e, ad)
		bb := int64(b)
		div := bb
		if div == 0 {
			div = 1
		}
		want := int64(a) + bb*2 - int64(a)%div
		got, ok := v.IntVal()
		return ok && got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Match is symmetric by construction.
func TestMatchSymmetryProperty(t *testing.T) {
	f := func(x, y uint8) bool {
		a := NewAd()
		a.SetInt("v", int64(x))
		a.SetExpr("Requirements", "TARGET.v >= 10")
		b := NewAd()
		b.SetInt("v", int64(y))
		b.SetExpr("Requirements", "TARGET.v >= 10")
		return Match(a, b) == Match(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLexerStrings(t *testing.T) {
	e := MustParse(`"tab\there \"quoted\" back\\slash"`)
	v := Eval(e, NewAd())
	s, _ := v.StringVal()
	if !strings.Contains(s, "\t") || !strings.Contains(s, `"quoted"`) || !strings.Contains(s, `back\slash`) {
		t.Fatalf("escapes mishandled: %q", s)
	}
}

func BenchmarkMatch(b *testing.B) {
	job := MustParseAd(`
VO = "uscms"
WallTime = 108000
Requirements = TARGET.FreeCpus > 0 && TARGET.MaxWallTime >= MY.WallTime && stringListMember(MY.VO, TARGET.SupportedVOs)
Rank = TARGET.FreeCpus
`)
	site := MustParseAd(`
FreeCpus = 20
MaxWallTime = 200000
SupportedVOs = "uscms,usatlas,ivdgl"
`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !Match(job, site) {
			b.Fatal("no match")
		}
	}
}

// Property: Parse never panics and either returns an expression or an
// error for arbitrary input; accepted input re-renders and re-parses.
func TestParseTotalityProperty(t *testing.T) {
	f := func(src string) bool {
		e, err := Parse(src)
		if err != nil {
			return true
		}
		// Whatever parsed must round-trip through String().
		e2, err := Parse(e.String())
		if err != nil {
			return false
		}
		v1 := Eval(e, NewAd())
		v2 := Eval(e2, NewAd())
		return v1.Kind() == v2.Kind()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: evaluation is pure — evaluating the same expression against
// the same ad twice yields identical values.
func TestEvalPurityProperty(t *testing.T) {
	ad := MustParseAd("x = 3\ny = 4.5\ns = \"abc\"\n")
	exprs := []string{
		"x + y", "x > y || s == \"ABC\"", "substr(s, x - 2)",
		"min(x, y) * max(x, y)", "x % 2 == 1 ? s : \"even\"",
	}
	for _, src := range exprs {
		e := MustParse(src)
		a := Eval(e, ad)
		b := Eval(e, ad)
		if a.Kind() != b.Kind() || !a.Equal(b) {
			t.Fatalf("%q evaluated differently: %v vs %v", src, a, b)
		}
	}
}
