package classad

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokReal
	tokString
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokPercent
	tokNot
	tokAnd      // &&
	tokOr       // ||
	tokEq       // ==
	tokNe       // !=
	tokLt       // <
	tokLe       // <=
	tokGt       // >
	tokGe       // >=
	tokMetaEq   // =?=
	tokMetaNe   // =!=
	tokQuestion // ?
	tokColon    // :
	tokAssign   // =
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	src []rune
	pos int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src)}
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) at(off int) rune {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(l.src[l.pos]) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case unicode.IsLetter(c) || c == '_':
		for l.pos < len(l.src) && (unicode.IsLetter(l.src[l.pos]) || unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
			l.pos++
		}
		return token{kind: tokIdent, text: string(l.src[start:l.pos]), pos: start}, nil
	case unicode.IsDigit(c):
		isReal := false
		for l.pos < len(l.src) && unicode.IsDigit(l.src[l.pos]) {
			l.pos++
		}
		if l.peek() == '.' && unicode.IsDigit(l.at(1)) {
			isReal = true
			l.pos++
			for l.pos < len(l.src) && unicode.IsDigit(l.src[l.pos]) {
				l.pos++
			}
		}
		if l.peek() == 'e' || l.peek() == 'E' {
			save := l.pos
			l.pos++
			if l.peek() == '+' || l.peek() == '-' {
				l.pos++
			}
			if unicode.IsDigit(l.peek()) {
				isReal = true
				for l.pos < len(l.src) && unicode.IsDigit(l.src[l.pos]) {
					l.pos++
				}
			} else {
				l.pos = save
			}
		}
		kind := tokInt
		if isReal {
			kind = tokReal
		}
		return token{kind: kind, text: string(l.src[start:l.pos]), pos: start}, nil
	case c == '"':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, fmt.Errorf("classad: unterminated string at %d", start)
			}
			ch := l.src[l.pos]
			if ch == '"' {
				l.pos++
				return token{kind: tokString, text: sb.String(), pos: start}, nil
			}
			if ch == '\\' && l.pos+1 < len(l.src) {
				l.pos++
				esc := l.src[l.pos]
				switch esc {
				case 'n':
					sb.WriteRune('\n')
				case 't':
					sb.WriteRune('\t')
				case '\\', '"':
					sb.WriteRune(esc)
				default:
					sb.WriteRune('\\')
					sb.WriteRune(esc)
				}
				l.pos++
				continue
			}
			sb.WriteRune(ch)
			l.pos++
		}
	}
	two := func(k tokenKind, n int) (token, error) {
		t := token{kind: k, text: string(l.src[start : start+n]), pos: start}
		l.pos += n
		return t, nil
	}
	switch c {
	case '(':
		return two(tokLParen, 1)
	case ')':
		return two(tokRParen, 1)
	case ',':
		return two(tokComma, 1)
	case '.':
		return two(tokDot, 1)
	case '+':
		return two(tokPlus, 1)
	case '-':
		return two(tokMinus, 1)
	case '*':
		return two(tokStar, 1)
	case '/':
		return two(tokSlash, 1)
	case '%':
		return two(tokPercent, 1)
	case '?':
		return two(tokQuestion, 1)
	case ':':
		return two(tokColon, 1)
	case '!':
		if l.at(1) == '=' {
			return two(tokNe, 2)
		}
		return two(tokNot, 1)
	case '&':
		if l.at(1) == '&' {
			return two(tokAnd, 2)
		}
		return token{}, fmt.Errorf("classad: stray '&' at %d", start)
	case '|':
		if l.at(1) == '|' {
			return two(tokOr, 2)
		}
		return token{}, fmt.Errorf("classad: stray '|' at %d", start)
	case '=':
		if l.at(1) == '=' {
			return two(tokEq, 2)
		}
		if l.at(1) == '?' && l.at(2) == '=' {
			return two(tokMetaEq, 3)
		}
		if l.at(1) == '!' && l.at(2) == '=' {
			return two(tokMetaNe, 3)
		}
		return two(tokAssign, 1)
	case '<':
		if l.at(1) == '=' {
			return two(tokLe, 2)
		}
		return two(tokLt, 1)
	case '>':
		if l.at(1) == '=' {
			return two(tokGe, 2)
		}
		return two(tokGt, 1)
	}
	return token{}, fmt.Errorf("classad: unexpected character %q at %d", c, start)
}

func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
