package classad

import (
	"math"
	"strings"
)

// maxEvalDepth bounds recursive attribute references; exceeding it yields
// ERROR rather than unbounded recursion (e.g. "a = b \n b = a").
const maxEvalDepth = 64

// evalContext carries the self/target ads during evaluation.
type evalContext struct {
	my     *Ad
	target *Ad
	depth  int
}

// Eval evaluates an expression in the context of ad my, with no target.
func Eval(e Expr, my *Ad) Value {
	return evalIn(e, &evalContext{my: my})
}

// EvalWithTarget evaluates e with both MY and TARGET scopes bound, as the
// matchmaker does.
func EvalWithTarget(e Expr, my, target *Ad) Value {
	return evalIn(e, &evalContext{my: my, target: target})
}

// EvalAttr evaluates the named attribute of ad my; UNDEFINED if absent.
func EvalAttr(name string, my, target *Ad) Value {
	e, ok := my.Get(name)
	if !ok {
		return UndefinedValue()
	}
	return EvalWithTarget(e, my, target)
}

func evalIn(e Expr, ctx *evalContext) Value {
	ctx.depth++
	defer func() { ctx.depth-- }()
	if ctx.depth > maxEvalDepth {
		return ErrorValue()
	}
	switch ex := e.(type) {
	case litExpr:
		return ex.v
	case attrExpr:
		return evalAttrRef(ex, ctx)
	case unaryExpr:
		return evalUnary(ex, ctx)
	case binaryExpr:
		return evalBinary(ex, ctx)
	case condExpr:
		c := evalIn(ex.cond, ctx)
		if c.IsError() {
			return c
		}
		if c.IsUndefined() {
			return c
		}
		if c.IsTrue() {
			return evalIn(ex.then, ctx)
		}
		return evalIn(ex.els, ctx)
	case callExpr:
		return evalCall(ex, ctx)
	}
	return ErrorValue()
}

// evalAttrRef resolves an attribute reference. Unscoped references resolve
// in MY first, then TARGET (old-ClassAd matchmaking lookup order).
func evalAttrRef(ex attrExpr, ctx *evalContext) Value {
	lookup := func(ad *Ad) (Value, bool) {
		if ad == nil {
			return UndefinedValue(), false
		}
		e, ok := ad.Get(ex.name)
		if !ok {
			return UndefinedValue(), false
		}
		return evalIn(e, ctx), true
	}
	switch ex.scope {
	case "my":
		v, _ := lookup(ctx.my)
		return v
	case "target":
		v, _ := lookup(ctx.target)
		return v
	default:
		if v, ok := lookup(ctx.my); ok {
			return v
		}
		if v, ok := lookup(ctx.target); ok {
			return v
		}
		return UndefinedValue()
	}
}

func evalUnary(ex unaryExpr, ctx *evalContext) Value {
	x := evalIn(ex.x, ctx)
	switch ex.op {
	case tokNot:
		switch x.kind {
		case Boolean:
			return Bool(!x.b)
		case Integer:
			return Bool(x.i == 0)
		case Real:
			return Bool(x.f == 0)
		case Undefined:
			return x
		}
		return ErrorValue()
	case tokMinus:
		switch x.kind {
		case Integer:
			return Int(-x.i)
		case Real:
			return Float(-x.f)
		case Undefined:
			return x
		}
		return ErrorValue()
	}
	return ErrorValue()
}

func evalBinary(ex binaryExpr, ctx *evalContext) Value {
	// Meta-operators never propagate UNDEFINED: they test identity.
	if ex.op == tokMetaEq || ex.op == tokMetaNe {
		l := evalIn(ex.l, ctx)
		r := evalIn(ex.r, ctx)
		eq := l.Equal(r)
		if ex.op == tokMetaNe {
			eq = !eq
		}
		return Bool(eq)
	}

	// Short-circuit logic with three-valued semantics:
	// FALSE && x == FALSE; TRUE || x == TRUE even if x is UNDEFINED.
	if ex.op == tokAnd || ex.op == tokOr {
		return evalLogic(ex, ctx)
	}

	l := evalIn(ex.l, ctx)
	r := evalIn(ex.r, ctx)
	if l.IsError() || r.IsError() {
		return ErrorValue()
	}
	if l.IsUndefined() || r.IsUndefined() {
		return UndefinedValue()
	}

	switch ex.op {
	case tokPlus, tokMinus, tokStar, tokSlash, tokPercent:
		return evalArith(ex.op, l, r)
	case tokEq, tokNe, tokLt, tokLe, tokGt, tokGe:
		return evalCompare(ex.op, l, r)
	}
	return ErrorValue()
}

func toTri(v Value) (val bool, undef, errv bool) {
	switch v.kind {
	case Undefined:
		return false, true, false
	case Error:
		return false, false, true
	default:
		return v.IsTrue(), false, false
	}
}

func evalLogic(ex binaryExpr, ctx *evalContext) Value {
	l := evalIn(ex.l, ctx)
	lv, lu, le := toTri(l)
	if ex.op == tokAnd {
		if le {
			return ErrorValue()
		}
		if !lu && !lv {
			return Bool(false)
		}
		r := evalIn(ex.r, ctx)
		rv, ru, re := toTri(r)
		if re {
			return ErrorValue()
		}
		if !ru && !rv {
			return Bool(false)
		}
		if lu || ru {
			return UndefinedValue()
		}
		return Bool(true)
	}
	// OR
	if le {
		return ErrorValue()
	}
	if !lu && lv {
		return Bool(true)
	}
	r := evalIn(ex.r, ctx)
	rv, ru, re := toTri(r)
	if re {
		return ErrorValue()
	}
	if !ru && rv {
		return Bool(true)
	}
	if lu || ru {
		return UndefinedValue()
	}
	return Bool(false)
}

func evalArith(op tokenKind, l, r Value) Value {
	// String concatenation via '+'.
	if op == tokPlus && l.kind == String && r.kind == String {
		return Str(l.s + r.s)
	}
	if l.kind == Integer && r.kind == Integer {
		switch op {
		case tokPlus:
			return Int(l.i + r.i)
		case tokMinus:
			return Int(l.i - r.i)
		case tokStar:
			return Int(l.i * r.i)
		case tokSlash:
			if r.i == 0 {
				return ErrorValue()
			}
			return Int(l.i / r.i)
		case tokPercent:
			if r.i == 0 {
				return ErrorValue()
			}
			return Int(l.i % r.i)
		}
	}
	lf, lok := l.Number()
	rf, rok := r.Number()
	if !lok || !rok {
		return ErrorValue()
	}
	switch op {
	case tokPlus:
		return Float(lf + rf)
	case tokMinus:
		return Float(lf - rf)
	case tokStar:
		return Float(lf * rf)
	case tokSlash:
		if rf == 0 {
			return ErrorValue()
		}
		return Float(lf / rf)
	case tokPercent:
		if rf == 0 {
			return ErrorValue()
		}
		return Float(math.Mod(lf, rf))
	}
	return ErrorValue()
}

func evalCompare(op tokenKind, l, r Value) Value {
	// String comparisons are case-insensitive in old ClassAds.
	if l.kind == String && r.kind == String {
		c := strings.Compare(strings.ToLower(l.s), strings.ToLower(r.s))
		return cmpResult(op, c)
	}
	if l.kind == Boolean && r.kind == Boolean {
		switch op {
		case tokEq:
			return Bool(l.b == r.b)
		case tokNe:
			return Bool(l.b != r.b)
		}
		return ErrorValue()
	}
	lf, lok := l.Number()
	rf, rok := r.Number()
	if !lok || !rok {
		return ErrorValue()
	}
	switch {
	case lf < rf:
		return cmpResult(op, -1)
	case lf > rf:
		return cmpResult(op, 1)
	default:
		return cmpResult(op, 0)
	}
}

func cmpResult(op tokenKind, c int) Value {
	switch op {
	case tokEq:
		return Bool(c == 0)
	case tokNe:
		return Bool(c != 0)
	case tokLt:
		return Bool(c < 0)
	case tokLe:
		return Bool(c <= 0)
	case tokGt:
		return Bool(c > 0)
	case tokGe:
		return Bool(c >= 0)
	}
	return ErrorValue()
}
