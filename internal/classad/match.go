package classad

// Matchmaking follows the Condor negotiator's symmetric protocol: two ads
// match when each ad's Requirements expression evaluates to TRUE in the
// context where MY is that ad and TARGET is the other. Rank (a number,
// higher is better) orders the matches.

// Attribute names with conventional meaning to the matchmaker.
const (
	AttrRequirements = "requirements"
	AttrRank         = "rank"
)

// Match reports whether ads a and b match symmetrically. A missing
// Requirements attribute counts as TRUE (an unconstrained ad), matching the
// behavior of resource ads that accept anything.
func Match(a, b *Ad) bool {
	return halfMatch(a, b) && halfMatch(b, a)
}

func halfMatch(my, target *Ad) bool {
	req, ok := my.Get(AttrRequirements)
	if !ok {
		return true
	}
	return EvalWithTarget(req, my, target).IsTrue()
}

// Rank evaluates my's Rank expression against target. Missing, UNDEFINED,
// or non-numeric ranks are 0, per Condor.
func Rank(my, target *Ad) float64 {
	e, ok := my.Get(AttrRank)
	if !ok {
		return 0
	}
	v := EvalWithTarget(e, my, target)
	f, ok := v.Number()
	if !ok {
		if b, bok := v.BoolVal(); bok && b {
			return 1
		}
		return 0
	}
	return f
}

// BestMatch returns the index of the candidate with the highest
// job-Rank among those that match job, breaking ties by the candidate's
// own Rank of the job, then by lowest index (deterministic). It returns -1
// if nothing matches.
func BestMatch(job *Ad, candidates []*Ad) int {
	best := -1
	var bestRank, bestTargetRank float64
	for i, c := range candidates {
		if c == nil || !Match(job, c) {
			continue
		}
		r := Rank(job, c)
		tr := Rank(c, job)
		if best == -1 || r > bestRank || (r == bestRank && tr > bestTargetRank) {
			best, bestRank, bestTargetRank = i, r, tr
		}
	}
	return best
}

// MatchAll returns the indices of all candidates matching job, in order.
func MatchAll(job *Ad, candidates []*Ad) []int {
	var out []int
	for i, c := range candidates {
		if c != nil && Match(job, c) {
			out = append(out, i)
		}
	}
	return out
}
