package classad

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is a parsed ClassAd expression.
type Expr interface {
	// String renders the expression back to parseable source.
	String() string
}

type litExpr struct{ v Value }

type attrExpr struct {
	scope string // "", "my", or "target"
	name  string
}

type unaryExpr struct {
	op tokenKind
	x  Expr
}

type binaryExpr struct {
	op   tokenKind
	l, r Expr
}

type condExpr struct {
	cond, then, els Expr
}

type callExpr struct {
	fn   string
	args []Expr
}

func (e litExpr) String() string { return e.v.String() }

func (e attrExpr) String() string {
	if e.scope != "" {
		return e.scope + "." + e.name
	}
	return e.name
}

func (e unaryExpr) String() string {
	op := "!"
	if e.op == tokMinus {
		op = "-"
	}
	return op + e.x.String()
}

var opText = map[tokenKind]string{
	tokPlus: "+", tokMinus: "-", tokStar: "*", tokSlash: "/", tokPercent: "%",
	tokAnd: "&&", tokOr: "||", tokEq: "==", tokNe: "!=",
	tokLt: "<", tokLe: "<=", tokGt: ">", tokGe: ">=",
	tokMetaEq: "=?=", tokMetaNe: "=!=",
}

func (e binaryExpr) String() string {
	return "(" + e.l.String() + " " + opText[e.op] + " " + e.r.String() + ")"
}

func (e condExpr) String() string {
	return "(" + e.cond.String() + " ? " + e.then.String() + " : " + e.els.String() + ")"
}

func (e callExpr) String() string {
	parts := make([]string, len(e.args))
	for i, a := range e.args {
		parts[i] = a.String()
	}
	return e.fn + "(" + strings.Join(parts, ", ") + ")"
}

type parser struct {
	toks []token
	pos  int
}

// Parse parses a single ClassAd expression.
func Parse(src string) (Expr, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("classad: trailing input at %s", p.cur())
	}
	return e, nil
}

// MustParse parses or panics; for package-level expression constants.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	if p.cur().kind != k {
		return token{}, fmt.Errorf("classad: expected %s, found %s", what, p.cur())
	}
	return p.advance(), nil
}

// Grammar, lowest to highest precedence:
//   cond   := or ('?' cond ':' cond)?
//   or     := and ('||' and)*
//   and    := cmp ('&&' cmp)*
//   cmp    := add (relop add)*
//   add    := mul (('+'|'-') mul)*
//   mul    := unary (('*'|'/'|'%') unary)*
//   unary  := ('!'|'-'|'+')* postfix
//   postfix:= primary
//   primary:= literal | ident | ident '(' args ')' | scope '.' ident | '(' cond ')'

func (p *parser) parseCond() (Expr, error) {
	c, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokQuestion {
		return c, nil
	}
	p.advance()
	then, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokColon, "':'"); err != nil {
		return nil, err
	}
	els, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	return condExpr{cond: c, then: then, els: els}, nil
}

func (p *parser) parseBinaryChain(sub func() (Expr, error), ops ...tokenKind) (Expr, error) {
	l, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		k := p.cur().kind
		found := false
		for _, op := range ops {
			if k == op {
				found = true
				break
			}
		}
		if !found {
			return l, nil
		}
		p.advance()
		r, err := sub()
		if err != nil {
			return nil, err
		}
		l = binaryExpr{op: k, l: l, r: r}
	}
}

func (p *parser) parseOr() (Expr, error) {
	return p.parseBinaryChain(p.parseAnd, tokOr)
}

func (p *parser) parseAnd() (Expr, error) {
	return p.parseBinaryChain(p.parseCmp, tokAnd)
}

func (p *parser) parseCmp() (Expr, error) {
	return p.parseBinaryChain(p.parseAdd,
		tokEq, tokNe, tokLt, tokLe, tokGt, tokGe, tokMetaEq, tokMetaNe)
}

func (p *parser) parseAdd() (Expr, error) {
	return p.parseBinaryChain(p.parseMul, tokPlus, tokMinus)
}

func (p *parser) parseMul() (Expr, error) {
	return p.parseBinaryChain(p.parseUnary, tokStar, tokSlash, tokPercent)
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.cur().kind {
	case tokNot:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{op: tokNot, x: x}, nil
	case tokMinus:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{op: tokMinus, x: x}, nil
	case tokPlus:
		p.advance()
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.advance()
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("classad: bad integer %q: %v", t.text, err)
		}
		return litExpr{Int(i)}, nil
	case tokReal:
		p.advance()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("classad: bad real %q: %v", t.text, err)
		}
		return litExpr{Float(f)}, nil
	case tokString:
		p.advance()
		return litExpr{Str(t.text)}, nil
	case tokLParen:
		p.advance()
		e, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		p.advance()
		lower := strings.ToLower(t.text)
		switch lower {
		case "true":
			return litExpr{Bool(true)}, nil
		case "false":
			return litExpr{Bool(false)}, nil
		case "undefined":
			return litExpr{UndefinedValue()}, nil
		case "error":
			return litExpr{ErrorValue()}, nil
		}
		if p.cur().kind == tokLParen {
			p.advance()
			var args []Expr
			if p.cur().kind != tokRParen {
				for {
					a, err := p.parseCond()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.cur().kind != tokComma {
						break
					}
					p.advance()
				}
			}
			if _, err := p.expect(tokRParen, "')' after arguments"); err != nil {
				return nil, err
			}
			return callExpr{fn: lower, args: args}, nil
		}
		if (lower == "my" || lower == "target") && p.cur().kind == tokDot {
			p.advance()
			name, err := p.expect(tokIdent, "attribute after scope")
			if err != nil {
				return nil, err
			}
			return attrExpr{scope: lower, name: strings.ToLower(name.text)}, nil
		}
		return attrExpr{name: lower}, nil
	}
	return nil, fmt.Errorf("classad: unexpected token %s", t)
}
