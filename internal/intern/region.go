package intern

import "fmt"

// RegionIndex partitions a dense ID space [0, Sites) into Shards contiguous
// regions of near-equal size. It is a pure function of (sites, shards): two
// processes that intern the same site catalog (FromSorted assigns dense IDs
// in sorted-name order) and ask for the same shard count derive the same
// region for every site, with no communication — the property the sharded
// engine's deterministic merge order rests on.
//
// Because dense IDs follow sorted-name order, a region is an alphabetical
// band of the testbed, mirroring how Grid3 itself was operated as regional
// site groups coordinated through a thin central tier.
type RegionIndex struct {
	sites  int
	shards int
	// The first rem regions hold base+1 IDs, the rest base.
	base int
	rem  int
}

// Regions builds the index. shards is clamped to [1, sites] (a testbed
// smaller than the shard count cannot populate every region); sites must be
// non-negative.
func Regions(sites, shards int) RegionIndex {
	if sites < 0 {
		panic(fmt.Sprintf("intern: negative site count %d", sites))
	}
	if shards < 1 {
		shards = 1
	}
	if sites > 0 && shards > sites {
		shards = sites
	}
	ri := RegionIndex{sites: sites, shards: shards}
	if shards > 0 {
		ri.base = sites / shards
		ri.rem = sites % shards
	}
	return ri
}

// Sites returns the size of the partitioned ID space.
func (ri RegionIndex) Sites() int { return ri.sites }

// Shards returns the effective region count (after clamping).
func (ri RegionIndex) Shards() int { return ri.shards }

// Of returns the region owning dense ID id.
func (ri RegionIndex) Of(id ID) int {
	i := int(id)
	if i < 0 || i >= ri.sites {
		panic(fmt.Sprintf("intern: ID %d outside [0,%d)", i, ri.sites))
	}
	// The first rem regions are one wider than base.
	wide := ri.rem * (ri.base + 1)
	if i < wide {
		return i / (ri.base + 1)
	}
	return ri.rem + (i-wide)/ri.base
}

// Span returns the half-open dense ID range [lo, hi) of region r.
func (ri RegionIndex) Span(r int) (lo, hi ID) {
	if r < 0 || r >= ri.shards {
		panic(fmt.Sprintf("intern: region %d outside [0,%d)", r, ri.shards))
	}
	l := r*ri.base + min(r, ri.rem)
	h := l + ri.base
	if r < ri.rem {
		h++
	}
	return ID(l), ID(h)
}

// Size returns the number of dense IDs in region r.
func (ri RegionIndex) Size(r int) int {
	lo, hi := ri.Span(r)
	return int(hi - lo)
}
