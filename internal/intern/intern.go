// Package intern maps the stack's recurring string identifiers — site
// names first of all — onto dense integer IDs, so hot paths index slices
// and bitsets instead of hashing strings.
//
// Grid2003 ran 27 sites, and at that size a map[string]*Node lookup per
// scheduling decision is invisible. The paper's §7 trajectory (and the
// INFN-GRID operations experience in PAPERS.md) points at federations an
// order of magnitude larger; at 1000+ sites the string keys show up in
// every profile: matchmaking candidate scans, health-breaker checks,
// concurrency sampling. A Table assigns each name an ID once, at
// construction, and everything downstream carries the ID.
package intern

import "sort"

// ID is a dense identifier handed out by a Table. IDs are small
// non-negative integers suitable for slice indexing; None marks "no ID".
type ID int32

// None is the zero-value-adjacent sentinel for "not interned".
const None ID = -1

// Table is a bidirectional string↔ID registry. The zero value is not
// usable; call NewTable. Tables are not safe for concurrent mutation —
// like the rest of the simulation they live on one engine goroutine.
type Table struct {
	ids   map[string]ID
	names []string
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{ids: make(map[string]ID)}
}

// FromSorted builds a table whose IDs follow the given name order. The
// caller guarantees names are unique; sortedness is conventional (the
// grid interns its site catalog in sorted-name order so ascending-ID
// iteration reproduces the historical sorted-string sweeps exactly).
func FromSorted(names []string) *Table {
	t := &Table{ids: make(map[string]ID, len(names)), names: append([]string(nil), names...)}
	for i, n := range names {
		t.ids[n] = ID(i)
	}
	return t
}

// Intern returns the name's ID, assigning the next dense ID on first use.
func (t *Table) Intern(name string) ID {
	if id, ok := t.ids[name]; ok {
		return id
	}
	id := ID(len(t.names))
	t.ids[name] = id
	t.names = append(t.names, name)
	return id
}

// ID returns the name's ID, or None when the name was never interned.
func (t *Table) ID(name string) ID {
	if id, ok := t.ids[name]; ok {
		return id
	}
	return None
}

// Name returns the string for an ID; it panics on out-of-range IDs, the
// same contract as slice indexing.
func (t *Table) Name(id ID) string { return t.names[id] }

// Len returns the number of interned names.
func (t *Table) Len() int { return len(t.names) }

// Names returns a copy of the table's names in ID order.
func (t *Table) Names() []string { return append([]string(nil), t.names...) }

// SortedNames returns a sorted copy of the table's names.
func (t *Table) SortedNames() []string {
	out := t.Names()
	sort.Strings(out)
	return out
}

// Set is a bitset keyed by ID — the dense replacement for the
// map[string]bool site sets the scheduler used to allocate per job. The
// zero value is an empty set.
type Set struct {
	bits []uint64
}

// Add inserts an ID.
func (s *Set) Add(id ID) {
	w := int(id >> 6)
	for len(s.bits) <= w {
		s.bits = append(s.bits, 0)
	}
	s.bits[w] |= 1 << (uint(id) & 63)
}

// Has reports membership.
func (s *Set) Has(id ID) bool {
	w := int(id >> 6)
	if id < 0 || w >= len(s.bits) {
		return false
	}
	return s.bits[w]&(1<<(uint(id)&63)) != 0
}

// Remove deletes an ID (no-op when absent).
func (s *Set) Remove(id ID) {
	w := int(id >> 6)
	if id < 0 || w >= len(s.bits) {
		return
	}
	s.bits[w] &^= 1 << (uint(id) & 63)
}

// Len counts members.
func (s *Set) Len() int {
	n := 0
	for _, w := range s.bits {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Empty reports whether the set has no members.
func (s *Set) Empty() bool {
	for _, w := range s.bits {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear empties the set, keeping its storage for reuse.
func (s *Set) Clear() {
	for i := range s.bits {
		s.bits[i] = 0
	}
}
