package intern

import (
	"reflect"
	"testing"
)

func TestTableInternAssignsDenseIDs(t *testing.T) {
	tab := NewTable()
	a := tab.Intern("ANL_HEP")
	b := tab.Intern("BNL_ATLAS_Tier1")
	if a != 0 || b != 1 {
		t.Fatalf("expected dense IDs 0,1; got %d,%d", a, b)
	}
	if got := tab.Intern("ANL_HEP"); got != a {
		t.Fatalf("re-intern changed ID: %d != %d", got, a)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
	if tab.Name(a) != "ANL_HEP" || tab.Name(b) != "BNL_ATLAS_Tier1" {
		t.Fatalf("Name round-trip broken")
	}
	if tab.ID("nope") != None {
		t.Fatalf("missing name should map to None")
	}
}

func TestFromSortedPreservesOrder(t *testing.T) {
	names := []string{"ANL_HEP", "BNL_ATLAS_Tier1", "CalTech_PG"}
	tab := FromSorted(names)
	for i, n := range names {
		if tab.ID(n) != ID(i) {
			t.Fatalf("ID(%q) = %d, want %d", n, tab.ID(n), i)
		}
	}
	if !reflect.DeepEqual(tab.Names(), names) {
		t.Fatalf("Names() = %v, want %v", tab.Names(), names)
	}
	if !reflect.DeepEqual(tab.SortedNames(), names) {
		t.Fatalf("SortedNames() = %v, want %v", tab.SortedNames(), names)
	}
}

func TestSetBasics(t *testing.T) {
	var s Set
	if !s.Empty() || s.Len() != 0 {
		t.Fatalf("zero set should be empty")
	}
	s.Add(3)
	s.Add(70) // second word
	s.Add(3)  // idempotent
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if !s.Has(3) || !s.Has(70) || s.Has(4) || s.Has(-1) {
		t.Fatalf("membership wrong: %v", s)
	}
	s.Remove(3)
	s.Remove(500) // out of range no-op
	if s.Has(3) || !s.Has(70) || s.Len() != 1 {
		t.Fatalf("remove wrong: %v", s)
	}
	s.Clear()
	if !s.Empty() {
		t.Fatalf("Clear should empty the set")
	}
	if s.Has(70) {
		t.Fatalf("cleared set retained member")
	}
}
