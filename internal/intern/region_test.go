package intern

import "testing"

func TestRegionsPartition(t *testing.T) {
	for _, tc := range []struct{ sites, shards int }{
		{27, 4}, {27, 1}, {1000, 4}, {1000, 8}, {10000, 16},
		{5, 8}, // more shards than sites: clamped
		{1, 1}, {2, 2},
	} {
		ri := Regions(tc.sites, tc.shards)
		if ri.Shards() > tc.sites {
			t.Fatalf("Regions(%d,%d): %d shards exceed site count", tc.sites, tc.shards, ri.Shards())
		}
		// Spans tile [0, sites) exactly, in order, and agree with Of.
		next := ID(0)
		for r := 0; r < ri.Shards(); r++ {
			lo, hi := ri.Span(r)
			if lo != next {
				t.Fatalf("Regions(%d,%d): region %d starts at %d, want %d", tc.sites, tc.shards, r, lo, next)
			}
			if hi <= lo {
				t.Fatalf("Regions(%d,%d): region %d empty [%d,%d)", tc.sites, tc.shards, r, lo, hi)
			}
			if got := ri.Size(r); got != int(hi-lo) {
				t.Fatalf("Regions(%d,%d): Size(%d)=%d, span says %d", tc.sites, tc.shards, r, got, hi-lo)
			}
			for id := lo; id < hi; id++ {
				if got := ri.Of(id); got != r {
					t.Fatalf("Regions(%d,%d): Of(%d)=%d, want %d", tc.sites, tc.shards, id, got, r)
				}
			}
			next = hi
		}
		if int(next) != tc.sites {
			t.Fatalf("Regions(%d,%d): spans cover [0,%d), want [0,%d)", tc.sites, tc.shards, next, tc.sites)
		}
	}
}

func TestRegionsBalanced(t *testing.T) {
	ri := Regions(1002, 4)
	minSz, maxSz := ri.Size(0), ri.Size(0)
	for r := 1; r < ri.Shards(); r++ {
		sz := ri.Size(r)
		if sz < minSz {
			minSz = sz
		}
		if sz > maxSz {
			maxSz = sz
		}
	}
	if maxSz-minSz > 1 {
		t.Fatalf("region sizes differ by %d, want at most 1", maxSz-minSz)
	}
}

func TestRegionsPureFunction(t *testing.T) {
	a, b := Regions(1000, 4), Regions(1000, 4)
	for id := ID(0); id < 1000; id++ {
		if a.Of(id) != b.Of(id) {
			t.Fatalf("Of(%d) differs between identical indexes", id)
		}
	}
}

func TestRegionsOfOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Of on out-of-range ID did not panic")
		}
	}()
	Regions(10, 2).Of(10)
}
