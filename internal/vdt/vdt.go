// Package vdt defines the Virtual Data Toolkit and Grid3 package graphs for
// Pacman, and the post-installation certification tests of §5.1.
//
// "We opted for a middleware installation based on the Virtual Data Toolkit
// (VDT), which provides services from the Globus Toolkit, Condor, GriPhyN,
// and PPDG, as well as components from other providers such as the European
// Data Grid Project." The Grid3 Pacman package pulled in the whole stack:
// GSI, GRAM, GridFTP, MDS with the Grid3 schema extensions, Ganglia,
// MonALISA, and VO registration scripts.
package vdt

import (
	"fmt"

	"grid3/internal/pacman"
	"grid3/internal/site"
)

// Version identifiers matching the Grid3 deployment era.
const (
	VDTVersion   = "1.1.8"
	Grid3Version = "1.0"
)

// The next release cut mid-run for the §5.1 rolling-upgrade campaigns:
// "the Grid3 infrastructure allowed for rolling upgrades ... new versions
// of the VDT were propagated with Pacman while the grid stayed in
// production".
const (
	NextVDTVersion   = "1.2.0"
	NextGrid3Version = "1.1"
)

// Grid3Cache builds the iGOC's authoritative Pacman cache carrying the
// Grid3 package and its full dependency closure.
func Grid3Cache() *pacman.Cache {
	c := pacman.NewCache("iGOC")
	add := func(name, version string, deps []string, paths ...string) {
		c.Add(&pacman.Package{Name: name, Version: version, Depends: deps, Paths: paths})
	}
	// Globus Toolkit components.
	add("globus-gsi", "2.4", nil, "/opt/vdt/globus/etc/grid-security")
	add("globus-gram", "2.4", []string{"globus-gsi"}, "/opt/vdt/globus/sbin/globus-gatekeeper")
	add("globus-gridftp", "2.4", []string{"globus-gsi"}, "/opt/vdt/globus/sbin/in.ftpd")
	add("globus-mds", "2.4", []string{"globus-gsi"}, "/opt/vdt/globus/sbin/grid-info-soft-register")
	// Condor and friends.
	add("condor", "6.6.0", nil, "/opt/vdt/condor")
	add("condor-g", "6.6.0", []string{"condor", "globus-gram"}, "/opt/vdt/condor-g")
	// GriPhyN virtual data tools.
	add("chimera", "1.3", []string{"condor-g"}, "/opt/vdt/chimera")
	add("pegasus", "1.1", []string{"chimera", "rls-client"}, "/opt/vdt/pegasus")
	add("rls-client", "2.0", []string{"globus-gsi"}, "/opt/vdt/rls")
	// EDG contributions.
	add("edg-mkgridmap", "1.0", []string{"globus-gsi"}, "/opt/vdt/edg/sbin/edg-mkgridmap")
	// Monitoring.
	add("ganglia", "2.5.4", nil, "/opt/ganglia")
	add("monalisa", "0.94", nil, "/opt/monalisa")
	// The VDT umbrella.
	add("vdt", VDTVersion, []string{
		"globus-gsi", "globus-gram", "globus-gridftp", "globus-mds",
		"condor", "condor-g", "chimera", "pegasus", "rls-client",
		"edg-mkgridmap",
	}, "/opt/vdt")
	// Grid3 = VDT + monitoring + site configuration conventions.
	add("grid3", Grid3Version, []string{"vdt", "ganglia", "monalisa"},
		"/opt/grid3", "$APP", "$DATA", "$WNTMP")
	// Per-experiment application releases installed via the same machinery
	// (user-level Pacman installs, §6.1).
	add("atlas-gce", "7.0.3", []string{"grid3"}, "$APP/atlas-gce-7.0.3")
	add("cms-mop", "1.2", []string{"grid3"}, "$APP/cms-mop-1.2")
	add("ligo-pulsar", "2.1", []string{"grid3"}, "$APP/ligo-pulsar-2.1")
	add("sdss-cluster", "1.0", []string{"grid3"}, "$APP/sdss-cluster-1.0")
	add("btev-mc", "0.9", []string{"grid3"}, "$APP/btev-mc-0.9")
	add("snb", "2.2", []string{"grid3"}, "$APP/snb-2.2")
	add("gadu", "1.1", []string{"grid3"}, "$APP/gadu-1.1")
	return c
}

// UpgradeCache cuts the iGOC cache for the NextGrid3Version release from a
// base cache: the same dependency graph with the vdt and grid3 umbrella
// packages bumped. Leaf components keep their versions, so a site that
// already carries the base install only pulls the two new umbrellas — the
// incremental `pacman -get Grid3` a rolling upgrade performs.
func UpgradeCache(base *pacman.Cache) *pacman.Cache {
	c := base.Clone("iGOC-grid3-" + NextGrid3Version)
	c.Add(&pacman.Package{Name: "vdt", Version: NextVDTVersion, Depends: []string{
		"globus-gsi", "globus-gram", "globus-gridftp", "globus-mds",
		"condor", "condor-g", "chimera", "pegasus", "rls-client",
		"edg-mkgridmap",
	}, Paths: []string{"/opt/vdt"}})
	c.Add(&pacman.Package{Name: "grid3", Version: NextGrid3Version,
		Depends: []string{"vdt", "ganglia", "monalisa"},
		Paths:   []string{"/opt/grid3", "$APP", "$DATA", "$WNTMP"}})
	return c
}

// SiteTarget adapts a site's application area to pacman.Target.
type SiteTarget struct {
	Site *site.Site
}

// Installed implements pacman.Target.
func (t SiteTarget) Installed(id string) bool { return t.Site.HasApp(id) }

// Record implements pacman.Target.
func (t SiteTarget) Record(p *pacman.Package) error {
	t.Site.InstallApp(p.ID())
	return nil
}

// InstallGrid3 performs the §5.1 site installation: `pacman -get Grid3`
// against the iGOC cache, into the site's software area.
func InstallGrid3(cache *pacman.Cache, st *site.Site) error {
	_, err := pacman.Install(cache, SiteTarget{Site: st}, "grid3")
	return err
}

// InstallUpgrade performs one site's rolling upgrade against an
// UpgradeCache: the incremental pacman pull that lands the new vdt and
// grid3 umbrellas on top of the existing install. It returns the packages
// actually installed (already-present components are skipped).
func InstallUpgrade(cache *pacman.Cache, st *site.Site) ([]*pacman.Package, error) {
	return pacman.Install(cache, SiteTarget{Site: st}, "grid3")
}

// Check is one post-installation certification probe.
type Check struct {
	Name string
	Run  func() error
}

// Certification is the §5.1 "post-installation testing and certification"
// checklist for one site.
type Certification struct {
	SiteName string
	Checks   []Check
}

// Failures runs every check and returns the names of those failing,
// with their errors.
func (c *Certification) Failures() map[string]error {
	out := make(map[string]error)
	for _, chk := range c.Checks {
		if err := chk.Run(); err != nil {
			out[chk.Name] = err
		}
	}
	return out
}

// Certify runs the checklist and returns an error naming every failed
// probe, or nil when the site passes certification.
func (c *Certification) Certify() error {
	fails := c.Failures()
	if len(fails) == 0 {
		return nil
	}
	msg := fmt.Sprintf("vdt: site %s failed certification:", c.SiteName)
	for name, err := range fails {
		msg += fmt.Sprintf(" [%s: %v]", name, err)
	}
	return fmt.Errorf("%s", msg)
}
