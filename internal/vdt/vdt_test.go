package vdt

import (
	"errors"
	"strings"
	"testing"
	"time"

	"grid3/internal/glue"
	"grid3/internal/pacman"
	"grid3/internal/site"
)

func testSite(t *testing.T) *site.Site {
	t.Helper()
	return site.MustNew(site.Config{
		Name: "UFlorida-PG", Host: "pg.phys.ufl.edu", Tier: 2, CPUs: 32,
		DiskBytes: 1 << 40, WANMbps: 155, LRMS: glue.Condor, MaxWall: 72 * time.Hour,
		OwnerVO:  "uscms",
		Accounts: map[string]string{"uscms": "grp_uscms", "ivdgl": "grp_ivdgl"},
	})
}

func TestGrid3CacheResolves(t *testing.T) {
	c := Grid3Cache()
	order, err := pacman.Resolve(c, "grid3")
	if err != nil {
		t.Fatal(err)
	}
	// grid3's closure covers the whole middleware stack.
	names := map[string]bool{}
	for _, p := range order {
		names[p.Name] = true
	}
	for _, want := range []string{
		"globus-gsi", "globus-gram", "globus-gridftp", "globus-mds",
		"condor", "condor-g", "chimera", "pegasus", "rls-client",
		"edg-mkgridmap", "ganglia", "monalisa", "vdt", "grid3",
	} {
		if !names[want] {
			t.Errorf("grid3 closure missing %s", want)
		}
	}
	// grid3 must install last.
	if order[len(order)-1].Name != "grid3" {
		t.Fatalf("grid3 not last: %v", order[len(order)-1].Name)
	}
}

func TestApplicationPackagesResolve(t *testing.T) {
	c := Grid3Cache()
	for _, app := range []string{"atlas-gce", "cms-mop", "ligo-pulsar", "sdss-cluster", "btev-mc", "snb", "gadu"} {
		if _, err := pacman.Resolve(c, app); err != nil {
			t.Errorf("%s does not resolve: %v", app, err)
		}
	}
}

func TestInstallGrid3OnSite(t *testing.T) {
	st := testSite(t)
	if err := InstallGrid3(Grid3Cache(), st); err != nil {
		t.Fatal(err)
	}
	if !st.HasApp("grid3-"+Grid3Version) || !st.HasApp("vdt-"+VDTVersion) {
		t.Fatal("grid3/vdt not recorded in site software area")
	}
	// Idempotent.
	if err := InstallGrid3(Grid3Cache(), st); err != nil {
		t.Fatal(err)
	}
}

func TestUserLevelAppInstall(t *testing.T) {
	st := testSite(t)
	cache := Grid3Cache()
	if err := InstallGrid3(cache, st); err != nil {
		t.Fatal(err)
	}
	// ATLAS's automated user-level installation (§6.1).
	if _, err := pacman.Install(cache, SiteTarget{Site: st}, "atlas-gce"); err != nil {
		t.Fatal(err)
	}
	if !st.HasApp("atlas-gce-7.0.3") {
		t.Fatal("application release not installed")
	}
}

func TestCertification(t *testing.T) {
	ok := Check{Name: "gram-ping", Run: func() error { return nil }}
	bad := Check{Name: "gridftp-ls", Run: func() error { return errors.New("connection refused") }}
	cert := &Certification{SiteName: "UBuffalo-CCR", Checks: []Check{ok, bad}}
	err := cert.Certify()
	if err == nil {
		t.Fatal("failing certification passed")
	}
	if !strings.Contains(err.Error(), "gridftp-ls") || !strings.Contains(err.Error(), "connection refused") {
		t.Fatalf("error lacks probe detail: %v", err)
	}
	fails := cert.Failures()
	if len(fails) != 1 {
		t.Fatalf("failures = %v", fails)
	}
	cert.Checks = []Check{ok}
	if err := cert.Certify(); err != nil {
		t.Fatal(err)
	}
}
