// Package glue defines the GLUE-schema resource descriptions published by
// Grid3 sites, plus the Grid3-specific schema extensions of §5.1.
//
// The GLUE (Grid Laboratory Uniform Environment) schema describes computing
// elements (a gatekeeper + batch queue), storage elements, and clusters.
// Grid3 added "only a few extensions": application installation areas,
// temporary working directories, storage element locations, and the VDT
// software installation location. These extensions are what made automated
// user-level application installation (the ATLAS GCE path, §6.1) possible.
package glue

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"grid3/internal/classad"
)

// LRMS identifies the local resource management system behind a CE.
// Grid3 sites ran OpenPBS, Condor, or LSF (§5).
type LRMS string

// The batch systems deployed on Grid3.
const (
	PBS    LRMS = "pbs"
	Condor LRMS = "condor"
	LSF    LRMS = "lsf"
)

// CE describes a computing element: one gatekeeper/jobmanager pair in front
// of a batch queue.
type CE struct {
	ID          string // "host/jobmanager-lrms"
	SiteName    string
	Host        string
	LRMSType    LRMS
	TotalCPUs   int
	FreeCPUs    int
	RunningJobs int
	WaitingJobs int
	MaxWallTime time.Duration // longest job the queue admits
	MaxRunning  int           // cap on simultaneously running grid jobs; 0 = TotalCPUs
	VOs         []string      // VOs with group accounts at this site

	// Grid3 schema extensions (§5.1).
	AppDir      string // application installation area ($APP)
	DataDir     string // persistent data area ($DATA)
	TmpDir      string // temporary working directory ($WNTMP)
	VDTLocation string // VDT software installation location
	// OutboundIP reports whether worker nodes have outbound internet
	// connectivity — application requirement 1 of §6.4.
	OutboundIP bool
}

// Validate checks internal consistency.
func (ce *CE) Validate() error {
	switch {
	case ce.ID == "":
		return fmt.Errorf("glue: CE missing ID")
	case ce.SiteName == "":
		return fmt.Errorf("glue: CE %s missing site name", ce.ID)
	case ce.TotalCPUs <= 0:
		return fmt.Errorf("glue: CE %s has %d CPUs", ce.ID, ce.TotalCPUs)
	case ce.FreeCPUs < 0 || ce.FreeCPUs > ce.TotalCPUs:
		return fmt.Errorf("glue: CE %s free CPUs %d out of range", ce.ID, ce.FreeCPUs)
	case ce.MaxWallTime <= 0:
		return fmt.Errorf("glue: CE %s has no MaxWallTime", ce.ID)
	case len(ce.VOs) == 0:
		return fmt.Errorf("glue: CE %s supports no VOs", ce.ID)
	}
	return nil
}

// SupportsVO reports whether the CE has a group account for vo.
func (ce *CE) SupportsVO(vo string) bool {
	for _, v := range ce.VOs {
		if v == vo {
			return true
		}
	}
	return false
}

// Ad renders the CE as a ClassAd resource offer for Condor-G matchmaking.
func (ce *CE) Ad() *classad.Ad {
	ad := classad.NewAd()
	ad.SetString("Name", ce.ID)
	ad.SetString("Site", ce.SiteName)
	ad.SetString("GatekeeperHost", ce.Host)
	ad.SetString("LRMS", string(ce.LRMSType))
	ad.SetInt("TotalCpus", int64(ce.TotalCPUs))
	ad.SetInt("FreeCpus", int64(ce.FreeCPUs))
	ad.SetInt("RunningJobs", int64(ce.RunningJobs))
	ad.SetInt("WaitingJobs", int64(ce.WaitingJobs))
	ad.SetInt("MaxWallTime", int64(ce.MaxWallTime/time.Second))
	ad.SetString("SupportedVOs", strings.Join(ce.VOs, ","))
	ad.SetBool("OutboundIP", ce.OutboundIP)
	ad.SetString("AppDir", ce.AppDir)
	ad.SetString("DataDir", ce.DataDir)
	ad.SetString("TmpDir", ce.TmpDir)
	ad.SetString("VDTLocation", ce.VDTLocation)
	// Resource-side policy: accept jobs from supported VOs that fit the
	// walltime limit.
	ad.Set("Requirements", ceRequirements)
	return ad
}

// ceRequirements is parsed once: Ad() runs on every matchmaking pass, and
// re-parsing the policy there dominated scenario CPU.
var ceRequirements = classad.MustParse(
	"stringListMember(TARGET.VO, MY.SupportedVOs) && TARGET.WallTime <= MY.MaxWallTime")

// Attributes renders the CE as an MDS attribute map in GLUE naming.
func (ce *CE) Attributes() map[string][]string {
	return map[string][]string{
		"GlueCEUniqueID":                {ce.ID},
		"GlueCEInfoHostName":            {ce.Host},
		"GlueCEInfoLRMSType":            {string(ce.LRMSType)},
		"GlueCEStateTotalCPUs":          {strconv.Itoa(ce.TotalCPUs)},
		"GlueCEStateFreeCPUs":           {strconv.Itoa(ce.FreeCPUs)},
		"GlueCEStateRunningJobs":        {strconv.Itoa(ce.RunningJobs)},
		"GlueCEStateWaitingJobs":        {strconv.Itoa(ce.WaitingJobs)},
		"GlueCEPolicyMaxWallClockTime":  {strconv.FormatInt(int64(ce.MaxWallTime/time.Second), 10)},
		"GlueCEAccessControlBaseRule":   voRules(ce.VOs),
		"GlueSiteName":                  {ce.SiteName},
		"Grid3-App-Dir":                 {ce.AppDir},
		"Grid3-Data-Dir":                {ce.DataDir},
		"Grid3-Tmp-WN-Dir":              {ce.TmpDir},
		"Grid3-VDT-Location":            {ce.VDTLocation},
		"Grid3-Worker-Node-Outbound-IP": {strconv.FormatBool(ce.OutboundIP)},
	}
}

func voRules(vos []string) []string {
	out := make([]string, len(vos))
	for i, v := range vos {
		out[i] = "VO:" + v
	}
	sort.Strings(out)
	return out
}

// SE describes a storage element reachable over GridFTP.
type SE struct {
	ID         string
	SiteName   string
	Host       string
	TotalBytes int64
	UsedBytes  int64
	Protocol   string // "gsiftp"
}

// Validate checks internal consistency.
func (se *SE) Validate() error {
	switch {
	case se.ID == "":
		return fmt.Errorf("glue: SE missing ID")
	case se.TotalBytes <= 0:
		return fmt.Errorf("glue: SE %s has no capacity", se.ID)
	case se.UsedBytes < 0 || se.UsedBytes > se.TotalBytes:
		return fmt.Errorf("glue: SE %s used bytes %d out of range", se.ID, se.UsedBytes)
	}
	return nil
}

// FreeBytes returns remaining capacity.
func (se *SE) FreeBytes() int64 { return se.TotalBytes - se.UsedBytes }

// Attributes renders the SE as an MDS attribute map.
func (se *SE) Attributes() map[string][]string {
	return map[string][]string{
		"GlueSEUniqueID":           {se.ID},
		"GlueSEName":               {se.SiteName + ":" + se.ID},
		"GlueSEHost":               {se.Host},
		"GlueSESizeTotal":          {strconv.FormatInt(se.TotalBytes, 10)},
		"GlueSESizeFree":           {strconv.FormatInt(se.FreeBytes(), 10)},
		"GlueSEAccessProtocolType": {se.Protocol},
		"GlueSiteName":             {se.SiteName},
	}
}

// SubCluster describes homogeneous worker-node hardware behind a CE.
type SubCluster struct {
	ID        string
	CPUModel  string
	ClockMHz  int
	MemoryMB  int
	NodeCount int
	CPUsPer   int
}

// Attributes renders the subcluster as an MDS attribute map.
func (sc *SubCluster) Attributes() map[string][]string {
	return map[string][]string{
		"GlueSubClusterUniqueID":      {sc.ID},
		"GlueHostProcessorModel":      {sc.CPUModel},
		"GlueHostProcessorClockSpeed": {strconv.Itoa(sc.ClockMHz)},
		"GlueHostMainMemoryRAMSize":   {strconv.Itoa(sc.MemoryMB)},
		"GlueSubClusterPhysicalCPUs":  {strconv.Itoa(sc.NodeCount * sc.CPUsPer)},
		"GlueSubClusterLogicalCPUs":   {strconv.Itoa(sc.NodeCount * sc.CPUsPer)},
	}
}
