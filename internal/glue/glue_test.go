package glue

import (
	"testing"
	"time"

	"grid3/internal/classad"
)

func validCE() *CE {
	return &CE{
		ID:          "tier2-01.uchicago.edu/jobmanager-pbs",
		SiteName:    "UC_ATLAS_Tier2",
		Host:        "tier2-01.uchicago.edu",
		LRMSType:    PBS,
		TotalCPUs:   64,
		FreeCPUs:    20,
		RunningJobs: 44,
		WaitingJobs: 7,
		MaxWallTime: 48 * time.Hour,
		VOs:         []string{"usatlas", "ivdgl"},
		AppDir:      "/share/app",
		DataDir:     "/share/data",
		TmpDir:      "/scratch",
		VDTLocation: "/opt/vdt-1.1.8",
		OutboundIP:  true,
	}
}

func TestCEValidate(t *testing.T) {
	if err := validCE().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*CE){
		func(c *CE) { c.ID = "" },
		func(c *CE) { c.SiteName = "" },
		func(c *CE) { c.TotalCPUs = 0 },
		func(c *CE) { c.FreeCPUs = -1 },
		func(c *CE) { c.FreeCPUs = c.TotalCPUs + 1 },
		func(c *CE) { c.MaxWallTime = 0 },
		func(c *CE) { c.VOs = nil },
	}
	for i, mutate := range bad {
		c := validCE()
		mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid CE validated", i)
		}
	}
}

func TestCESupportsVO(t *testing.T) {
	ce := validCE()
	if !ce.SupportsVO("usatlas") || ce.SupportsVO("uscms") {
		t.Fatal("SupportsVO wrong")
	}
}

func TestCEAdMatchesEligibleJob(t *testing.T) {
	ce := validCE()
	ad := ce.Ad()
	job := classad.MustParseAd(`
VO = "usatlas"
WallTime = 36000
Requirements = TARGET.FreeCpus > 0
`)
	if !classad.Match(job, ad) {
		t.Fatal("eligible job did not match CE ad")
	}
	// Wrong VO is rejected by the CE's own Requirements.
	wrongVO := classad.MustParseAd("VO = \"uscms\"\nWallTime = 3600\n")
	if classad.Match(wrongVO, ad) {
		t.Fatal("CE ad accepted unsupported VO")
	}
	// Too-long job rejected by MaxWallTime policy.
	long := classad.MustParseAd("VO = \"usatlas\"\nWallTime = 1000000\n")
	if classad.Match(long, ad) {
		t.Fatal("CE ad accepted job exceeding MaxWallTime")
	}
}

func TestCEAttributesCarryGrid3Extensions(t *testing.T) {
	attrs := validCE().Attributes()
	for _, key := range []string{
		"Grid3-App-Dir", "Grid3-Data-Dir", "Grid3-Tmp-WN-Dir", "Grid3-VDT-Location",
		"GlueCEStateFreeCPUs", "GlueCEPolicyMaxWallClockTime",
	} {
		if len(attrs[key]) == 0 || attrs[key][0] == "" {
			t.Errorf("attribute %s missing", key)
		}
	}
	if attrs["GlueCEPolicyMaxWallClockTime"][0] != "172800" {
		t.Errorf("MaxWallClockTime = %v, want 172800 s", attrs["GlueCEPolicyMaxWallClockTime"])
	}
	rules := attrs["GlueCEAccessControlBaseRule"]
	if len(rules) != 2 || rules[0] != "VO:ivdgl" || rules[1] != "VO:usatlas" {
		t.Errorf("access rules = %v", rules)
	}
}

func TestSEValidateAndFree(t *testing.T) {
	se := &SE{ID: "se.fnal.gov", SiteName: "FNAL_CMS", Host: "se.fnal.gov", TotalBytes: 10 << 40, UsedBytes: 3 << 40, Protocol: "gsiftp"}
	if err := se.Validate(); err != nil {
		t.Fatal(err)
	}
	if se.FreeBytes() != 7<<40 {
		t.Fatalf("FreeBytes = %d", se.FreeBytes())
	}
	se.UsedBytes = se.TotalBytes + 1
	if err := se.Validate(); err == nil {
		t.Fatal("overfull SE validated")
	}
	se2 := &SE{ID: "x", TotalBytes: 0}
	if err := se2.Validate(); err == nil {
		t.Fatal("zero-capacity SE validated")
	}
}

func TestSubClusterAttributes(t *testing.T) {
	sc := &SubCluster{ID: "wn", CPUModel: "P4 Xeon", ClockMHz: 2400, MemoryMB: 1024, NodeCount: 32, CPUsPer: 2}
	attrs := sc.Attributes()
	if attrs["GlueSubClusterLogicalCPUs"][0] != "64" {
		t.Fatalf("logical CPUs = %v", attrs["GlueSubClusterLogicalCPUs"])
	}
}
