package core

import (
	"sort"
	"time"

	"grid3/internal/apps"
	"grid3/internal/checkpoint"
	"grid3/internal/failure"
	"grid3/internal/obs"
	"grid3/internal/sim"
	"grid3/internal/vo"
)

// ScenarioHorizon is the Table 1 sample window: October 23 2003 through
// April 23 2004.
const ScenarioHorizon = 183 * 24 * time.Hour

// SC2003Start and SC2003Window bound the Figures 2/3 analysis: "a 30 day
// stretch beginning October 25, 2003".
const (
	SC2003Start  = 2 * 24 * time.Hour // Oct 25, two days after the epoch
	SC2003Window = 30 * 24 * time.Hour
)

// CMSWindow bounds Figure 4: "a 150 day period beginning in November 2003".
const (
	CMSWindowStart = 9 * 24 * time.Hour // Nov 1
	CMSWindowLen   = 150 * 24 * time.Hour
)

// ScenarioConfig tunes a full production run.
type ScenarioConfig struct {
	Config
	// Horizon bounds the run; default ScenarioHorizon.
	Horizon time.Duration
	// Classes selects the workloads; nil means all seven Table 1 classes.
	Classes []apps.Class
	// Failures tunes injection; zero value means failure.Grid3Defaults().
	// DisableFailures turns injection off entirely.
	Failures        failure.Config
	DisableFailures bool
	// ChaosIntensity scales failure injection for chaos campaigns: MTBFs
	// divide by it and the random-loss rate multiplies by it, so 2.0 doubles
	// the incident rate. 0 and 1 leave the configured rates untouched.
	ChaosIntensity float64
	// DisableTransferDemo turns off the §6.3 GridFTP demonstrator.
	DisableTransferDemo bool
	// JobScale multiplies every class's TotalJobs (sub-1.0 for quick
	// tests); 0 means 1.0.
	JobScale float64
	// RealTimePace is the scaled-real-time compression ratio (virtual
	// seconds per wall second) consumed by the serve layer's pacing
	// governor; 0 means the serve default. Batch runners (RunScenario,
	// Sweep, the campaign modes) ignore it entirely: a batch run always
	// executes as fast as the hardware allows.
	RealTimePace float64
	// TraceSinks receive the finished span trace once, at Finish. Setting
	// any sink implies EnableObservability.
	TraceSinks []obs.TraceSink
	// MetricsSinks receive the final metrics snapshot once, at Finish.
	// Setting any sink implies EnableObservability.
	MetricsSinks []obs.MetricsSink
	// UpgradeWave schedules the §5.1 rolling VDT/Pacman upgrade campaign
	// across the testbed; the zero value leaves it off.
	UpgradeWave UpgradeWaveConfig
	// CertWave schedules GSI host-credential expiry/revocation storms;
	// the zero value leaves it off.
	CertWave CertWaveConfig
	// CheckpointAt lists sim times at which Run captures a snapshot into
	// CheckpointStore (both must be set; times past the horizon are
	// skipped). Capture is a pure read, so a checkpointing run stays
	// byte-identical to one that never checkpoints.
	CheckpointAt []time.Duration
	// CheckpointStore receives Run's captures; see CheckpointAt.
	CheckpointStore checkpoint.StateStore
}

// Scenario is a running or completed production campaign.
type Scenario struct {
	Grid       *Grid
	Cfg        ScenarioConfig
	Generators map[string]*apps.Generator
	Demo       *apps.TransferDemo
	Injector   *failure.Injector
	// Upgrade and Certs are the armed wave families (nil when their
	// configs are zero); see UpgradeWaveConfig and CertWaveConfig.
	Upgrade *UpgradeWave
	Certs   *CertWave

	// CheckpointIDs records the store IDs of the snapshots Run captured
	// (in capture order) when Cfg.CheckpointAt/CheckpointStore are set.
	CheckpointIDs []string

	obsFlushed bool
}

// NewScenario assembles a grid and arms the workloads, demonstrators, and
// failure injection.
func NewScenario(cfg ScenarioConfig) (*Scenario, error) {
	if cfg.Horizon <= 0 {
		cfg.Horizon = ScenarioHorizon
	}
	if cfg.JobScale == 0 {
		cfg.JobScale = 1.0
	}
	if cfg.Classes == nil {
		cfg.Classes = apps.Grid3Classes()
	}
	if len(cfg.TraceSinks) > 0 || len(cfg.MetricsSinks) > 0 {
		cfg.EnableObservability = true
	}
	// Resolve defaults here too so the scenario's retained Cfg reflects
	// what actually ran (ComputeMilestones reads Cfg.Config.Sites).
	cfg.Config.defaults()
	g, err := New(cfg.Config)
	if err != nil {
		return nil, err
	}
	s := &Scenario{Grid: g, Cfg: cfg, Generators: make(map[string]*apps.Generator)}

	// SC2003 demonstration week: Nov 15-21 2003 (§1), when every group
	// pushed at once and the 1300-concurrent-jobs peak landed (§7).
	const sc2003DemoStart = 23 * 24 * time.Hour
	const sc2003DemoEnd = 30 * 24 * time.Hour

	// Application workloads, one fork of the RNG per class so classes
	// never perturb each other.
	for _, class := range cfg.Classes {
		if class.SurgeFactor == 0 {
			class.SurgeStart = sc2003DemoStart
			class.SurgeEnd = sc2003DemoEnd
			class.SurgeFactor = 4
		}
		orig := class.TotalJobs
		class.TotalJobs = int(float64(class.TotalJobs) * cfg.JobScale)
		if class.TotalJobs == 0 {
			if orig == 0 {
				continue
			}
			class.TotalJobs = 1 // every configured class stays visible
		}
		preferred := g.PreferredSitesFor(class.VO)
		if class.MaxSites > 0 && len(preferred) > class.MaxSites {
			preferred = preferred[:class.MaxSites]
		}
		gen := apps.NewGenerator(g.Eng, g.RNG.Fork(), sim.Grid3Epoch, class, g, preferred)
		gen.Start(cfg.Horizon)
		s.Generators[class.VO] = gen
	}

	// The §6.3 transfer demonstrator over the well-connected sites.
	if !cfg.DisableTransferDemo {
		var demoSites []string
		for _, name := range g.Order {
			if g.Nodes[name].Spec.WANMbps >= 622 {
				demoSites = append(demoSites, name)
			}
		}
		s.Demo = apps.NewTransferDemo(g.Eng, g.RNG.Fork(), g, demoSites)
		// §6.3/§7: the demo pushed the grid past its 2-3 TB/day target to
		// ~4 TB/day total (~100 TB in the 30 days around SC2003).
		s.Demo.DailyTargetBytes = 3 << 40
		s.Demo.Start()
	}

	// Failure injection.
	if !cfg.DisableFailures {
		fcfg := cfg.Failures
		if fcfg.DiskFullMTBF == 0 && fcfg.ServiceMTBF == 0 && fcfg.OutageMTBF == 0 &&
			fcfg.RandomLossPerDay == 0 && fcfg.RolloverSites == nil {
			fcfg = failure.Grid3Defaults()
		}
		if fcfg.RolloverSites == nil {
			for _, name := range g.Order {
				if g.Nodes[name].Spec.Rollover {
					fcfg.RolloverSites = append(fcfg.RolloverSites, name)
				}
			}
		}
		fcfg = failure.Scaled(fcfg, cfg.ChaosIntensity)
		s.Injector = failure.New(g.Eng, g.RNG.Fork(), fcfg, g.Network)
		s.Injector.Ins = failure.NewInstruments(g.Obs)
		for _, name := range g.Order {
			n := g.Nodes[name]
			s.Injector.Register(&failure.Target{
				Site: n.Site, Batch: n.Batch, Gatekeeper: n.Gatekeeper,
			})
		}
	}

	// Operational wave families, both strictly opt-in: each draws from its
	// own seed-salted stream, so a run without them is byte-identical to
	// one where the knobs never existed.
	if cfg.UpgradeWave.Enabled() {
		s.Upgrade = armUpgradeWave(g, cfg.UpgradeWave)
	}
	if cfg.CertWave.Enabled() {
		certs, err := armCertWave(g, cfg.CertWave)
		if err != nil {
			g.Close()
			return nil, err
		}
		s.Certs = certs
	}
	return s, nil
}

// Run advances the scenario to its horizon, then performs the end-of-run
// bookkeeping (final ACDC pull, demonstrator and injector shutdown). When
// Cfg.CheckpointAt and Cfg.CheckpointStore are set, it pauses at each
// listed sim time (ascending, past-horizon entries skipped) to capture a
// snapshot; the captures are pure reads, so the run's output is identical
// whether or not it checkpoints.
func (s *Scenario) Run() error {
	if s.Cfg.CheckpointStore != nil && len(s.Cfg.CheckpointAt) > 0 {
		at := append([]time.Duration(nil), s.Cfg.CheckpointAt...)
		sort.Slice(at, func(i, j int) bool { return at[i] < at[j] })
		for _, t := range at {
			if t > s.Cfg.Horizon || t < s.Grid.Eng.Now() {
				continue
			}
			s.RunUntil(t)
			snap, err := s.Checkpoint()
			if err != nil {
				return err
			}
			id, err := checkpoint.Save(s.Cfg.CheckpointStore, snap)
			if err != nil {
				return err
			}
			s.CheckpointIDs = append(s.CheckpointIDs, id)
		}
	}
	s.RunUntil(s.Cfg.Horizon)
	s.Finish()
	return nil
}

// RunUntil advances to an intermediate point (for incremental inspection).
func (s *Scenario) RunUntil(t time.Duration) {
	s.Grid.Eng.RunUntil(t)
}

// Finish stops generators and collects the tail of the completion logs.
func (s *Scenario) Finish() {
	if s.Demo != nil {
		s.Demo.Stop()
	}
	if s.Injector != nil {
		s.Injector.Stop()
	}
	// Let in-flight jobs and transfers drain briefly, then pull the logs.
	s.Grid.Eng.RunFor(6 * time.Hour)
	s.Grid.ACDC.Pull()
	s.Grid.FinishIngest()
	s.FlushObservability()
	// Stop the region workers. Anything that keeps simulating after Finish
	// (serve mode's drain, late inspection) falls back to the serial scan,
	// which produces the same events.
	s.Grid.Close()
}

// FlushObservability runs every configured trace and metrics sink against
// the final trace and snapshot. Finish calls it; repeated calls are no-ops
// so sinks never see the run twice. It returns the first sink error.
func (s *Scenario) FlushObservability() error {
	o := s.Grid.Obs
	if o == nil || s.obsFlushed {
		return nil
	}
	s.obsFlushed = true
	var first error
	if len(s.Cfg.TraceSinks) > 0 {
		tr := o.Tracer.Trace()
		for _, sink := range s.Cfg.TraceSinks {
			if err := sink(tr); err != nil && first == nil {
				first = err
			}
		}
	}
	if len(s.Cfg.MetricsSinks) > 0 {
		snap := o.Metrics.Snapshot()
		for _, sink := range s.Cfg.MetricsSinks {
			if err := sink(snap); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// SubmittedTotal sums generator output across classes.
func (s *Scenario) SubmittedTotal() int {
	n := 0
	for _, g := range s.Generators {
		n += g.Submitted()
	}
	return n
}

// DefaultScenario runs the full 183-day campaign at the given seed and
// scale and returns the completed scenario. Scale 1.0 reproduces the
// paper's ~290k-job sample; smaller scales keep tests fast.
func DefaultScenario(seed int64, scale float64) (*Scenario, error) {
	s, err := NewScenario(ScenarioConfig{
		Config:   Config{Seed: seed},
		JobScale: scale,
	})
	if err != nil {
		return nil, err
	}
	if err := s.Run(); err != nil {
		return nil, err
	}
	return s, nil
}

// VvoClasses is a convenience listing of the Table 1 class VOs in column
// order.
var VOColumns = []string{vo.BTeV, vo.IVDGL, vo.LIGO, vo.SDSS, vo.USATLAS, vo.USCMS, vo.Exerciser}
