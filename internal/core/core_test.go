package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"grid3/internal/apps"
	"grid3/internal/batch"
	"grid3/internal/vo"
)

func TestCatalogShape(t *testing.T) {
	specs := Grid3Sites()
	if len(specs) != 27 {
		t.Fatalf("sites = %d, want 27", len(specs))
	}
	total := TotalCPUs(specs)
	if total < 2500 || total > 3000 {
		t.Fatalf("total CPUs = %d, want ~2800 (the §7 peak)", total)
	}
	names := map[string]bool{}
	dedicated := 0
	for _, s := range specs {
		if names[s.Name] {
			t.Fatalf("duplicate site %s", s.Name)
		}
		names[s.Name] = true
		if err := s.Config.Validate(); err != nil {
			t.Fatalf("site %s invalid: %v", s.Name, err)
		}
		if s.Dedicated {
			dedicated += s.CPUs
		}
	}
	// >60% of CPUs from non-dedicated facilities (§7).
	sharedFrac := 1 - float64(dedicated)/float64(total)
	if sharedFrac < 0.6 {
		t.Fatalf("shared CPU fraction = %.2f, want > 0.6", sharedFrac)
	}
	// Archive sites exist for every VO.
	for _, voName := range vo.Grid3VOs {
		if voName == vo.Exerciser {
			continue
		}
		if !names[ArchiveSiteFor(voName)] {
			t.Fatalf("archive site for %s missing from catalog", voName)
		}
	}
}

func TestGridAssembly(t *testing.T) {
	g, err := New(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 27 {
		t.Fatalf("nodes = %d", len(g.Nodes))
	}
	// VOMS registry: ~102 users (95 class members + 7 admins).
	if users := g.Registry.TotalUsers(); users != 102 {
		t.Fatalf("users = %d, want 102", users)
	}
	// Every node passed §5.1 install + certification; the top GIIS sees
	// every site's CE entry.
	entries := g.TopGIIS.Entries()
	if len(entries) != 27 {
		t.Fatalf("MDS entries = %d", len(entries))
	}
	for _, e := range entries {
		if e.Get("GlueSiteName") == "" || e.Get("Grid3-VDT-Location") == "" {
			t.Fatalf("entry incomplete: %v", e.Attrs)
		}
	}
	// Per-VO schedds for all 7 classes.
	if len(g.Schedds) != 7 {
		t.Fatalf("schedds = %d", len(g.Schedds))
	}
	// Every site installed the grid3 package.
	for _, name := range g.Order {
		if !g.Nodes[name].Site.HasApp("grid3-1.0") {
			t.Fatalf("site %s missing grid3 package", name)
		}
	}
}

func TestSubmitJobEndToEnd(t *testing.T) {
	g, err := New(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	g.SubmitJob(apps.Request{
		ID: "t1", VO: vo.USATLAS,
		User:    "/DC=org/DC=doegrids/OU=People/CN=usatlas user 00",
		Runtime: 2 * time.Hour, Walltime: 4 * time.Hour,
		StagingFactor: 2, InputBytes: 100 << 20, OutputBytes: 2 << 30,
	})
	g.Eng.RunUntil(24 * time.Hour)
	st := g.Stats(vo.USATLAS)
	if st.Submitted != 1 || st.Completed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The output was archived at BNL and registered in the LRC.
	bnl := g.Nodes["BNL_ATLAS_Tier1"]
	if bnl.LRC.Len() != 1 {
		t.Fatalf("archive LRC entries = %d", bnl.LRC.Len())
	}
	if bnl.Site.Disk.FileCount() != 1 {
		t.Fatalf("archive files = %d", bnl.Site.Disk.FileCount())
	}
}

func TestSubmitJobAUPAndUnknownVO(t *testing.T) {
	g, _ := New(Config{Seed: 7})
	g.SubmitJob(apps.Request{ID: "x", VO: "freeloaders", User: "/CN=x", Runtime: time.Hour, Walltime: 2 * time.Hour})
	if g.Stats("freeloaders").ExecFailures != 1 {
		t.Fatal("AUP violation not counted")
	}
}

func TestWalltimeClamping(t *testing.T) {
	// A one-site grid whose queue admits 48 h: a 100 h walltime request
	// must be clamped to 48 h so the job still matches; a 60 h runtime
	// then dies at the wall (after Condor-G retries).
	specs := Grid3Sites()[:0:0]
	only := Grid3Sites()[22] // OU_HEP: PBS, 48 h MaxWall
	specs = append(specs, only)
	g, err := New(Config{Seed: 7, Sites: specs})
	if err != nil {
		t.Fatal(err)
	}
	g.SubmitJob(apps.Request{
		ID: "fits", VO: vo.USATLAS,
		User:    "/DC=org/DC=doegrids/OU=People/CN=usatlas user 00",
		Runtime: 30 * time.Hour, Walltime: 100 * time.Hour,
	})
	g.SubmitJob(apps.Request{
		ID: "dies", VO: vo.USATLAS,
		User:    "/DC=org/DC=doegrids/OU=People/CN=usatlas user 01",
		Runtime: 60 * time.Hour, Walltime: 100 * time.Hour,
	})
	g.Eng.RunUntil(400 * time.Hour)
	st := g.Stats(vo.USATLAS)
	if st.Submitted != 2 || st.Completed != 1 || st.ExecFailures != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPreferredSites(t *testing.T) {
	g, _ := New(Config{Seed: 7})
	atlas := g.PreferredSitesFor(vo.USATLAS)
	if len(atlas) == 0 || atlas[0] != "BNL_ATLAS_Tier1" {
		t.Fatalf("atlas preferred = %v", atlas)
	}
	cms := g.PreferredSitesFor(vo.USCMS)
	if cms[0] != "FNAL_CMS_Tier1" {
		t.Fatalf("cms preferred = %v", cms)
	}
	ex := g.PreferredSitesFor(vo.Exerciser)
	if len(ex) == 0 {
		t.Fatal("exerciser has no preferred pool")
	}
}

func TestLocalLoadAccounting(t *testing.T) {
	g, _ := New(Config{Seed: 7})
	g.Eng.RunUntil(48 * time.Hour)
	// Shared sites carry local load; ACDC must not record any of it.
	localRunning := 0
	for _, name := range g.Order {
		localRunning += g.Nodes[name].Batch.RunningByVO(LocalVO)
	}
	if localRunning == 0 {
		t.Fatal("no local load on shared facilities")
	}
	g.ACDC.Pull()
	for _, r := range g.ACDC.Records() {
		if r.VO == LocalVO {
			t.Fatal("local job leaked into ACDC")
		}
	}
	// Dedicated sites run no local load.
	if n := g.Nodes["BNL_ATLAS_Tier1"].Batch.RunningByVO(LocalVO); n != 0 {
		t.Fatalf("dedicated site has %d local jobs", n)
	}
}

func TestScenarioSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run in -short mode")
	}
	s, err := NewScenario(ScenarioConfig{
		Config:   Config{Seed: 11},
		Horizon:  30 * 24 * time.Hour,
		JobScale: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if s.SubmittedTotal() == 0 {
		t.Fatal("nothing submitted")
	}
	if s.Grid.ACDC.Len() == 0 {
		t.Fatal("no ACDC records")
	}
	m := s.ComputeMilestones()
	if m.CPUs < 2500 || m.Users != 102 {
		t.Fatalf("milestones = %+v", m)
	}
	if m.DataTBPerDay < 1 {
		t.Fatalf("transfer volume = %.2f TB/day", m.DataTBPerDay)
	}
	// Rendering never fails.
	var sb strings.Builder
	m.Write(&sb)
	s.WriteTable1(&sb)
	if !strings.Contains(sb.String(), "uscms") {
		t.Fatal("table rendering incomplete")
	}
	// Figures produce data.
	if len(s.Figure2()) == 0 {
		t.Fatal("figure 2 empty")
	}
	if _, total := s.Figure5(); total <= 0 {
		t.Fatal("figure 5 empty")
	}
	months, counts := s.Figure6()
	if len(months) == 0 || len(counts) != len(months) {
		t.Fatal("figure 6 empty")
	}
}

func TestScenarioDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run in -short mode")
	}
	run := func() (int, int, map[string]float64) {
		s, err := NewScenario(ScenarioConfig{
			Config:   Config{Seed: 5},
			Horizon:  15 * 24 * time.Hour,
			JobScale: 0.01,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		return s.SubmittedTotal(), s.Grid.ACDC.Len(), s.Figure2()
	}
	s1, r1, f1 := run()
	s2, r2, f2 := run()
	if s1 != s2 || r1 != r2 {
		t.Fatalf("runs differ: submitted %d/%d records %d/%d", s1, s2, r1, r2)
	}
	for k, v := range f1 {
		if math.Abs(f2[k]-v) > 1e-9 {
			t.Fatalf("figure2[%s] differs: %v vs %v", k, v, f2[k])
		}
	}
}

func TestScenarioSRMAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run in -short mode")
	}
	// With SRM on, stage-out failures convert to up-front deferrals.
	run := func(useSRM bool) *VOStats {
		s, err := NewScenario(ScenarioConfig{
			Config:   Config{Seed: 3, UseSRM: useSRM},
			Horizon:  20 * 24 * time.Hour,
			JobScale: 0.02,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		return s.Grid.Stats(vo.USCMS)
	}
	raw := run(false)
	srm := run(true)
	if raw.Completed == 0 || srm.Completed == 0 {
		t.Fatalf("no completions: raw %+v srm %+v", raw, srm)
	}
	// SRM cannot have more stage-out failures than raw (it fails fast).
	if srm.StageOutFailures > raw.StageOutFailures {
		t.Fatalf("SRM stage-out failures %d > raw %d", srm.StageOutFailures, raw.StageOutFailures)
	}
}

func TestDirectBatchVOCounters(t *testing.T) {
	g, _ := New(Config{Seed: 1})
	n := g.Nodes["ANL_MCS"]
	n.Batch.Submit(&batch.Job{ID: "a", VO: "ivdgl", Walltime: 2 * time.Hour, Runtime: time.Hour})
	if n.Batch.RunningByVO("ivdgl") != 1 {
		t.Fatal("per-VO counter wrong")
	}
	g.Eng.RunUntil(2 * time.Hour)
	if n.Batch.RunningByVO("ivdgl") != 0 {
		t.Fatal("per-VO counter not decremented")
	}
}

func TestSiteRampUp(t *testing.T) {
	g, err := New(Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	late := g.Nodes["KNU_Kyungpook"] // joins at day 15
	if late.Site.Healthy() || late.Batch.AvailableSlots() != 0 {
		t.Fatalf("late site live before JoinAt: healthy=%v slots=%d",
			late.Site.Healthy(), late.Batch.AvailableSlots())
	}
	ep, _ := g.Network.Endpoint("KNU_Kyungpook")
	if ep.Up() {
		t.Fatal("late site endpoint up before JoinAt")
	}
	g.Eng.RunUntil(16 * 24 * time.Hour)
	if !late.Site.Healthy() || late.Batch.AvailableSlots() != late.Batch.Slots() {
		t.Fatal("late site did not come alive at JoinAt")
	}
	if !ep.Up() {
		t.Fatal("late site endpoint still down after JoinAt")
	}
	// Early sites were alive the whole time.
	if !g.Nodes["BNL_ATLAS_Tier1"].Site.Healthy() {
		t.Fatal("BNL should be up from the start")
	}
}
