package core

import (
	"fmt"
	"time"

	"grid3/internal/condorg"
	"grid3/internal/dagman"
	"grid3/internal/gram"
	"grid3/internal/gridftp"
	"grid3/internal/health"
	"grid3/internal/obs"
	"grid3/internal/pegasus"
	"grid3/internal/rls"
)

// PlannerFor builds a Pegasus planner wired to this grid's live MDS and
// RLS state for the given VO (archive per ArchiveSiteFor).
func (g *Grid) PlannerFor(voName string, policy pegasus.Policy) *pegasus.Planner {
	p := &pegasus.Planner{
		Sites: func() []pegasus.SiteInfo {
			var out []pegasus.SiteInfo
			for _, e := range g.TopGIIS.Entries() {
				out = append(out, pegasus.FromMDS(e))
			}
			return out
		},
		Locate: func(lfn string) []string {
			return g.RLI.Sites(lfn)
		},
		InputBytes: func(lfn string) int64 {
			for _, pfn := range g.RLI.Sites(lfn) {
				if n, err := g.Nodes[pfn].LRC.Size(lfn); err == nil {
					return n
				}
			}
			return 0
		},
		ArchiveSite: ArchiveSiteFor(voName),
		Policy:      policy,
		Ins:         pegasus.NewInstruments(g.Obs),
	}
	if g.Cfg.EnableRecovery {
		// Plan around degraded sites: any open breaker disqualifies a site
		// from compute placement and replica selection (advisory — the
		// planner falls back to the full set if everything is excluded).
		p.Exclude = func(site string) bool {
			return g.Health.HandleFor(site).Degraded()
		}
	}
	if g.Cfg.EnableReplicaRanking {
		p.RankReplicas = func(_ string, cands []string) string {
			return g.rankReplica(cands)
		}
	}
	return p
}

// rankReplica picks the stage-in source with the least WAN pressure:
// fewest flows holding or waiting for a door, then the smallest fraction
// of link capacity already allocated by the filling pass, then sorted name
// (candidates arrive sorted from the RLI, so ties are deterministic).
func (g *Grid) rankReplica(cands []string) string {
	best := cands[0]
	bestFlows, bestQueued, bestBusy := g.Network.Load(best)
	for _, c := range cands[1:] {
		flows, queued, busy := g.Network.Load(c)
		switch {
		case flows+queued < bestFlows+bestQueued:
		case flows+queued == bestFlows+bestQueued && busy < bestBusy:
		default:
			continue
		}
		best, bestFlows, bestQueued, bestBusy = c, flows, queued, busy
	}
	return best
}

// PublishRLS pushes every site LRC into the RLI (the periodic soft-state
// publication; call after seeding input data).
func (g *Grid) PublishRLS() {
	for _, name := range g.Order {
		g.RLI.Publish(g.Nodes[name].LRC, 24*time.Hour)
	}
}

// SeedFile places a file at a site's storage element and registers it in
// RLS — how LIGO staged its SFT inputs (§4.4).
func (g *Grid) SeedFile(siteName, lfn string, bytes int64) error {
	n, ok := g.Nodes[siteName]
	if !ok {
		return fmt.Errorf("core: no such site %s", siteName)
	}
	if err := n.Site.Disk.Store(lfn, bytes, false); err != nil {
		return err
	}
	if err := n.LRC.Add(lfn, "/data/"+lfn, bytes); err != nil {
		return err
	}
	g.PublishRLS()
	return nil
}

// WorkflowRun couples a concrete DAG to its DAGMan runner.
type WorkflowRun struct {
	DAG    *dagman.DAG
	Runner *dagman.Runner
	// JobSites records where each compute node ran.
	JobSites map[string]string
	// Span is the workflow's root lifecycle span (zero with tracing off);
	// DAG-node and compute-job spans are parented under it.
	Span obs.SpanID
}

// RunWorkflow executes a Pegasus concrete DAG on the grid: compute nodes
// submit through the VO's Condor-G schedd (pinned to the planned site),
// data-movement nodes run GridFTP transfers and storage writes, register
// nodes update RLS. onDone fires when the DAG drains.
func (g *Grid) RunWorkflow(cdag *pegasus.ConcreteDAG, voName, user string, onDone func(dagman.Result)) (*WorkflowRun, error) {
	sch, ok := g.Schedds[voName]
	if !ok {
		return nil, fmt.Errorf("core: no schedd for VO %s", voName)
	}
	d := dagman.New()
	run := &WorkflowRun{DAG: d, JobSites: make(map[string]string)}
	tr := g.Obs.TracerOf()
	run.Span = tr.Begin(obs.KindWorkflow, 0, voName+"-dag", voName, "")

	for _, name := range cdag.Order {
		cj := cdag.Jobs[name]
		node := &dagman.Node{Name: name, Retries: 2}
		switch cj.Type {
		case pegasus.Compute:
			node.Work = g.computeWork(run, cj, sch, voName, user)
		case pegasus.StageIn, pegasus.Transfer, pegasus.StageOut:
			node.Work = g.transferWork(cj, voName, run.Span)
		case pegasus.Register:
			cjob := cj
			node.Work = func(done func(error)) {
				n := g.Nodes[cjob.Site]
				if n == nil {
					done(fmt.Errorf("register: unknown site %s", cjob.Site))
					return
				}
				path := "/data/" + cjob.LFN
				if err := n.LRC.Add(cjob.LFN, path, cjob.Bytes); err != nil && err != rls.ErrDuplicate {
					// Re-registration on retry is fine.
					_ = err
				}
				g.RLI.Publish(n.LRC, 24*time.Hour)
				done(nil)
			}
		}
		if err := d.Add(node); err != nil {
			return nil, err
		}
	}
	for _, name := range cdag.Order {
		for _, parent := range cdag.Jobs[name].Parents {
			if err := d.AddEdge(parent, name); err != nil {
				return nil, err
			}
		}
	}
	run.Runner = dagman.NewRunner(d)
	run.Runner.MaxJobs = 50 // DAGMan -maxjobs, protects gatekeepers (§6.4)
	run.Runner.Ins = dagman.NewInstruments(g.Obs)
	run.Runner.Parent = run.Span
	if g.Cfg.EnableRecovery && g.Obs != nil {
		// Count node-level recoveries. Per-site exclusion on retried compute
		// nodes happens downstream: the resubmitted GridJob keeps its planned
		// pin, but matchmaking's Exclude hook re-places it if that site's
		// gatekeeper breaker has opened since planning.
		retried := g.Obs.Metrics.Counter("workflow.node.retries")
		run.Runner.OnNodeRetry = func(string, int, error) { retried.Inc() }
	}
	wrapped := func(res dagman.Result) {
		if res.Succeeded() {
			tr.End(run.Span)
		} else {
			tr.Fail(run.Span, fmt.Sprintf("%d failed, %d unrunnable", len(res.Failed), len(res.Unrunnable)))
		}
		if onDone != nil {
			onDone(res)
		}
	}
	if err := run.Runner.Run(wrapped); err != nil {
		return nil, err
	}
	return run, nil
}

// computeWork wraps a planned compute job as a DAGMan payload.
func (g *Grid) computeWork(run *WorkflowRun, cj *pegasus.ConcreteJob, sch *condorg.Schedd, voName, user string) dagman.Work {
	return func(done func(error)) {
		runtime := cj.TR.MeanRuntime
		if runtime <= 0 {
			runtime = time.Hour
		}
		runtime = g.RNG.Jitter(runtime, 0.3)
		walltime := cj.TR.Walltime
		if walltime <= 0 || walltime < runtime {
			walltime = runtime * 2
		}
		g.seq++
		job := &condorg.GridJob{
			ID:         fmt.Sprintf("wf-%s-%08d", cj.Name, g.seq),
			Span:       run.Span,
			TargetSite: cj.Site,
			MaxRetries: 1,
			Spec: gram.Spec{
				Subject:       user,
				VO:            voName,
				Executable:    cj.TR.Name,
				Walltime:      walltime,
				Runtime:       runtime,
				StagingFactor: cj.TR.StagingFactor,
			},
			OnDone: func(j *condorg.GridJob, err error) {
				run.JobSites[cj.Name] = j.Site
				done(err)
			},
		}
		if err := sch.Submit(job); err != nil {
			done(err)
		}
	}
}

// transferWork wraps a planned data movement as a DAGMan payload: a
// GridFTP transfer followed by a destination storage write.
func (g *Grid) transferWork(cj *pegasus.ConcreteJob, voName string, parent obs.SpanID) dagman.Work {
	return func(done func(error)) {
		dst := g.Nodes[cj.Site]
		if dst == nil {
			done(fmt.Errorf("transfer: unknown destination %s", cj.Site))
			return
		}
		bytes := cj.Bytes
		if bytes <= 0 {
			bytes = 1 << 20
		}
		store := func() error {
			if dst.Site.Disk.Has(cj.LFN) {
				return nil // idempotent on retries / duplicate staging
			}
			return dst.Site.Disk.Store(cj.LFN, bytes, false)
		}
		if cj.SrcSite == "" || cj.SrcSite == cj.Site {
			done(store())
			return
		}
		// Replica failover (recovery mode): when the planned source dies
		// mid-flight or is unreachable, consult RLS for other sites holding
		// the same LFN and chain onto the next one instead of burning a
		// DAGMan node retry.
		tried := []string{cj.Site, cj.SrcSite}
		var start func(src string)
		settle := func(err error) {
			if err != nil {
				if next, ok := g.alternateReplica(cj.LFN, err, tried); ok {
					tried = append(tried, next)
					if g.healthIns != nil {
						g.healthIns.ReplicaFailovers.Inc()
					}
					start(next)
					return
				}
				done(err)
				return
			}
			done(store())
		}
		start = func(src string) {
			_, err := g.Network.StartTraced(src, cj.Site, bytes, voName, parent, func(_ *gridftp.Transfer, terr error) {
				settle(terr)
			})
			if err != nil {
				settle(err)
			}
		}
		start(cj.SrcSite)
	}
}

// alternateReplica picks the next failover source for an LFN after a
// transfer error: recovery must be on, the error a transient endpoint
// condition, and RLS must know another publisher beyond the already-tried
// sites. Candidates whose GridFTP breaker is open are passed over unless
// every candidate is degraded.
func (g *Grid) alternateReplica(lfn string, err error, tried []string) (string, bool) {
	if !g.Cfg.EnableRecovery || lfn == "" || !gridftp.IsEndpointFailure(err) {
		return "", false
	}
	alts := g.RLI.AlternateSites(lfn, tried...)
	if len(alts) == 0 {
		return "", false
	}
	for _, site := range alts {
		if g.Health.Allow(site, health.GridFTP) {
			return site, true
		}
	}
	return alts[0], true
}
