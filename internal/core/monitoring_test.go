package core

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"grid3/internal/apps"
	"grid3/internal/dial"
	"grid3/internal/gridftp"
	"grid3/internal/vo"
)

// TestMonitoringCrosscheck exercises the §5.2 observation that "similar
// information [is] collected by different paths ... permitting crosschecks
// on the data collected": the ACDC job warehouse (pull from batch logs)
// and the MonALISA repository (periodic sampling of running-job gauges)
// must agree on how much CPU one site delivered.
func TestMonitoringCrosscheck(t *testing.T) {
	g, err := New(Config{Seed: 31, MonitorInterval: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	const siteName = "BNL_ATLAS_Tier1" // dedicated: no local load in the gauge
	// A steady stream of ATLAS jobs at one site for two days.
	for i := 0; i < 40; i++ {
		delay := time.Duration(i) * time.Hour
		i := i
		g.Eng.Schedule(delay, func() {
			g.SubmitJob(apps.Request{
				ID: "xc", VO: vo.USATLAS,
				User:      "/DC=org/DC=doegrids/OU=People/CN=usatlas user 00",
				Runtime:   6 * time.Hour,
				Walltime:  8 * time.Hour,
				Preferred: siteName,
			})
			_ = i
		})
	}
	g.Eng.RunUntil(72 * time.Hour)
	g.ACDC.Pull()

	// Path 1: ACDC records → CPU-days at the site.
	acdcDays := g.ACDC.CPUDaysBySiteForVO(vo.USATLAS, 0, 72*time.Hour)[siteName]

	// Path 2: MonALISA running-jobs series → integrate CPUs over time.
	// The hourly archive (index 1) spans the whole window; the 5-minute
	// ring only keeps the last 48 h.
	pts, err := g.Repo.History(siteName, "grid3.jobs.running", 1, 0, 72*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	mlDays := 0.0
	for _, p := range pts {
		if !math.IsNaN(p.Value) {
			mlDays += p.Value / 24 // hourly buckets of mean CPUs
		}
	}
	if acdcDays < 5 {
		t.Fatalf("too little work recorded to crosscheck: %v CPU-days", acdcDays)
	}
	if math.Abs(mlDays-acdcDays)/acdcDays > 0.15 {
		t.Fatalf("monitoring paths disagree: ACDC %.2f vs MonALISA %.2f CPU-days", acdcDays, mlDays)
	}
}

// TestVOGIISViews: each VO's index serves exactly the sites supporting it.
func TestVOGIISViews(t *testing.T) {
	g, err := New(Config{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	for _, voName := range vo.Grid3VOs {
		idx := g.VOGIIS[voName]
		if idx == nil {
			t.Fatalf("no GIIS for %s", voName)
		}
		want := len(g.SitesSupporting(voName))
		if got := len(idx.Entries()); got != want {
			t.Fatalf("%s GIIS serves %d entries, want %d", voName, got, want)
		}
	}
	// The top-level index holds each site exactly once.
	if got := len(g.TopGIIS.Entries()); got != 27 {
		t.Fatalf("top GIIS entries = %d", got)
	}
}

// TestVOMSPropagation: a user added to a VOMS server mid-run gains access
// everywhere after the next edg-mkgridmap cycle (§5.3) — and not before.
func TestVOMSPropagation(t *testing.T) {
	g, err := New(Config{Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	const newDN = "/DC=org/DC=doegrids/OU=People/CN=new postdoc"
	server, err := g.Registry.Server(vo.USATLAS)
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Add(newDN, "New Postdoc"); err != nil {
		t.Fatal(err)
	}
	submit := func(id string) {
		g.SubmitJob(apps.Request{
			ID: id, VO: vo.USATLAS, User: newDN,
			Runtime: time.Hour, Walltime: 2 * time.Hour,
		})
	}
	// Before the refresh cycle the gatekeepers still reject the DN
	// (Condor-G burns its retries against authorization failures).
	submit("early")
	g.Eng.RunUntil(time.Hour)
	st := g.Stats(vo.USATLAS)
	if st.Completed != 0 {
		t.Fatalf("job from unpropagated user completed: %+v", st)
	}
	// After the 6 h edg-mkgridmap tick, the same user runs fine.
	g.Eng.RunUntil(7 * time.Hour)
	submit("late")
	g.Eng.RunUntil(12 * time.Hour)
	if st.Completed != 1 {
		t.Fatalf("job after propagation did not complete: %+v", st)
	}
}

// TestUsagePlotParametric: the MDViewer-style query aggregates occupancy
// correctly for both groupings and arbitrary windows.
func TestUsagePlotParametric(t *testing.T) {
	g, err := New(Config{Seed: 35})
	if err != nil {
		t.Fatal(err)
	}
	s := &Scenario{Grid: g, Cfg: ScenarioConfig{Config: Config{Seed: 35}}}
	// Two 12 h jobs at one site, one 12 h job at another.
	for i, site := range []string{"BNL_ATLAS_Tier1", "BNL_ATLAS_Tier1", "UC_ATLAS_Tier2"} {
		g.SubmitJob(apps.Request{
			ID: fmt.Sprintf("up%d", i), VO: vo.USATLAS,
			User:      "/DC=org/DC=doegrids/OU=People/CN=usatlas user 00",
			Runtime:   12 * time.Hour,
			Walltime:  14 * time.Hour,
			Preferred: site,
		})
	}
	g.Eng.RunUntil(24 * time.Hour)
	g.ACDC.Pull()

	byVO := s.UsagePlot(0, 24*time.Hour, 12*time.Hour, ByVO)
	if err := byVO.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(byVO.Series) != 1 || byVO.Series[0].Name != vo.USATLAS {
		t.Fatalf("series = %+v", byVO.Series)
	}
	// First 12 h bin: 3 CPUs in use; second bin: 0.
	if math.Abs(byVO.Series[0].Values[0]-3) > 1e-9 || byVO.Series[0].Values[1] != 0 {
		t.Fatalf("values = %v", byVO.Series[0].Values)
	}
	bySite := s.UsagePlot(0, 24*time.Hour, 12*time.Hour, BySite)
	if len(bySite.Series) != 2 {
		t.Fatalf("site series = %d", len(bySite.Series))
	}
	// Sorted by total: BNL (2 jobs) before UC (1).
	if bySite.Series[0].Name != "BNL_ATLAS_Tier1" {
		t.Fatalf("series order = %v, %v", bySite.Series[0].Name, bySite.Series[1].Name)
	}
	// CSV renders.
	var sb strings.Builder
	if err := bySite.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "BNL_ATLAS_Tier1") {
		t.Fatal("csv missing site column")
	}
}

// TestTraceJob links submit-side and execution-side job identities (§8).
func TestTraceJob(t *testing.T) {
	g, err := New(Config{Seed: 36})
	if err != nil {
		t.Fatal(err)
	}
	g.SubmitJob(apps.Request{
		ID: "traced", VO: vo.USCMS,
		User:     "/DC=org/DC=doegrids/OU=People/CN=uscms user 00",
		Runtime:  time.Hour,
		Walltime: 2 * time.Hour,
	})
	// Find the schedd-side ID through the schedd itself.
	g.Eng.RunUntil(30 * time.Minute)
	var id string
	for i := 1; i < 10; i++ {
		cand := fmt.Sprintf("grid3-%s-%08d", vo.USCMS, i)
		if _, ok := g.Schedds[vo.USCMS].Job(cand); ok {
			id = cand
			break
		}
	}
	if id == "" {
		t.Fatal("submitted job not found in schedd")
	}
	tr, ok := g.TraceJob(id)
	if !ok {
		t.Fatal("TraceJob failed")
	}
	if tr.Site == "" || tr.Contact == "" {
		t.Fatalf("trace incomplete: %+v", tr)
	}
	if !strings.Contains(tr.Contact, "https://") || !strings.Contains(tr.Contact, ":2119/") {
		t.Fatalf("contact format: %q", tr.Contact)
	}
	if _, ok := g.TraceJob("grid3-nope-00000001"); ok {
		t.Fatal("phantom trace")
	}
}

// TestDIALAnalysis: production feeds the dataset catalog; a DIAL task
// splits into grid jobs at the archive and merges histograms (§4.1/§6.1).
func TestDIALAnalysis(t *testing.T) {
	g, err := New(Config{Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	const user = "/DC=org/DC=doegrids/OU=People/CN=usatlas user 00"
	for i := 0; i < 9; i++ {
		g.SubmitJob(apps.Request{
			ID: fmt.Sprintf("prod%d", i), VO: vo.USATLAS, User: user,
			Runtime: time.Hour, Walltime: 2 * time.Hour,
			OutputBytes: 2 << 30,
		})
	}
	g.Eng.RunUntil(12 * time.Hour)
	ds, err := g.DIAL.Lookup("usatlas.produced")
	if err != nil || len(ds.Files) != 9 {
		t.Fatalf("dataset = %+v, %v", ds, err)
	}

	task := &dial.Task{
		Name:        "mass-histo",
		FilesPerJob: 4,
		Process: func(lfn string, bytes int64) (*dial.Histogram, error) {
			return &dial.Histogram{Bins: []float64{1}}, nil
		},
	}
	var res dial.Result
	fired := false
	if err := g.AnalyzeDataset(vo.USATLAS, user, "usatlas.produced", task,
		30*time.Minute, func(r dial.Result) { res = r; fired = true }); err != nil {
		t.Fatal(err)
	}
	g.Eng.RunUntil(48 * time.Hour)
	if !fired {
		t.Fatal("analysis never completed")
	}
	if res.SubJobs != 3 || res.Failed != 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.Histogram.Bins[0] != 9 {
		t.Fatalf("histogram entries = %v, want one per file", res.Histogram.Bins[0])
	}
	// The analysis jobs ran at the archive site (data locality).
	if g.Nodes["BNL_ATLAS_Tier1"].Batch.TotalCompleted() < 3 {
		t.Fatal("analysis jobs did not run at the archive")
	}
}

// TestSubmitJobFunc: the end-to-end callback fires once, after stage-out
// and registration, for both success and failure paths.
func TestSubmitJobFunc(t *testing.T) {
	g, err := New(Config{Seed: 38})
	if err != nil {
		t.Fatal(err)
	}
	okCh := 0
	var okErr error
	g.SubmitJobFunc(apps.Request{
		ID: "cb-ok", VO: vo.USCMS,
		User:        "/DC=org/DC=doegrids/OU=People/CN=uscms user 00",
		Runtime:     time.Hour,
		Walltime:    2 * time.Hour,
		OutputBytes: 1 << 30,
	}, func(err error) { okCh++; okErr = err })
	failCh := 0
	var failErr error
	g.SubmitJobFunc(apps.Request{
		ID: "cb-bad", VO: "freeloaders", User: "/CN=x",
		Runtime: time.Hour, Walltime: 2 * time.Hour,
	}, func(err error) { failCh++; failErr = err })
	g.Eng.RunUntil(24 * time.Hour)
	if okCh != 1 || okErr != nil {
		t.Fatalf("success callback: n=%d err=%v", okCh, okErr)
	}
	if failCh != 1 || failErr == nil {
		t.Fatalf("failure callback: n=%d err=%v", failCh, failErr)
	}
	// The success fired only after archival: the dataset is cataloged.
	if _, err := g.DIAL.Lookup(vo.USCMS + ".produced"); err != nil {
		t.Fatal("callback fired before registration")
	}
}

// TestNetLoggerAttach: with the gridftp shim attached to the WAN, every
// completed transfer leaves start+end events (§4.7's NetLogger
// demonstrator). Attaching is explicit now — the EnableNetLogger config
// field is gone; trace-level NetLogger output comes from the obs layer's
// NetLogger sink instead.
func TestNetLoggerAttach(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario in -short mode")
	}
	s, err := NewScenario(ScenarioConfig{
		Config:          Config{Seed: 39},
		Horizon:         2 * 24 * time.Hour,
		JobScale:        0.001,
		DisableFailures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	nl := gridftp.Attach(s.Grid.Network)
	s.Run()
	starts := nl.Count(gridftp.EventStart)
	ends := nl.Count(gridftp.EventEnd)
	if starts == 0 || ends == 0 {
		t.Fatalf("events: %d starts, %d ends", starts, ends)
	}
	if ends > starts {
		t.Fatalf("more ends (%d) than starts (%d)", ends, starts)
	}
	var sb strings.Builder
	if _, err := nl.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "NL.EVNT=gridftp.transfer.end") {
		t.Fatal("NetLogger render missing records")
	}
}
