package core

import (
	"errors"
	"time"

	"grid3/internal/batch"
	"grid3/internal/dist"
	"grid3/internal/gsi"
	"grid3/internal/pacman"
	"grid3/internal/sim"
	"grid3/internal/vdt"
)

// Seed salts for the wave families' private RNG streams, following the
// fault-management convention: derived from the master seed so runs stay
// reproducible, private so arming a wave never perturbs g.RNG.
const (
	upgradeSeedSalt = 0x75706772 // "upgr"
	certSeedSalt    = 0x63657274 // "cert"
)

// UpgradeWaveConfig schedules a §5.1 rolling VDT/Pacman upgrade campaign:
// the iGOC cuts a new Grid3 release (vdt.NextGrid3Version) and sites
// reinstall tier by tier while the grid stays in production. Each site's
// reinstall is a short full-service outage (jobs die, submissions bounce),
// and while the fleet is mixed-version, upgraded sites suffer skew-induced
// job losses — old-release pilots landing on new-release services. The
// zero value disables the wave entirely.
type UpgradeWaveConfig struct {
	// Start is the sim time the first tier begins upgrading; zero disables
	// the wave.
	Start time.Duration
	// Stagger separates successive tiers (Tier1 labs first, then Tier2,
	// then the small sites); sites inside a tier spread over the first half
	// of their window. Default 48h.
	Stagger time.Duration
	// Outage is each site's reinstall window, during which its services are
	// down. Default 2h.
	Outage time.Duration
	// SkewLossPerDay is the expected per-upgraded-site rate of version-skew
	// job kills while the fleet is mixed-version. Default 0.5.
	SkewLossPerDay float64
}

// Enabled reports whether the wave is armed.
func (c UpgradeWaveConfig) Enabled() bool { return c.Start > 0 }

var errGrid3Missing = errors.New("grid3 upgrade package missing")

func (c UpgradeWaveConfig) withDefaults() UpgradeWaveConfig {
	if c.Stagger <= 0 {
		c.Stagger = 48 * time.Hour
	}
	if c.Outage <= 0 {
		c.Outage = 2 * time.Hour
	}
	if c.SkewLossPerDay == 0 {
		c.SkewLossPerDay = 0.5
	}
	return c
}

// UpgradeWave is the armed upgrade campaign and its outcome counters.
type UpgradeWave struct {
	g     *Grid
	cfg   UpgradeWaveConfig
	rng   *dist.RNG
	cache *pacman.Cache

	pending int // sites not yet upgraded; 0 = fleet converged

	// SitesUpgraded counts completed per-site reinstalls; RestartKills the
	// jobs lost to the reinstall outages; SkewKills the mixed-version
	// losses; CertFailures re-certifications that failed (expected 0).
	SitesUpgraded int
	RestartKills  int
	SkewKills     int
	CertFailures  int
	// ConvergedAt is when the last site finished (0 while in progress).
	ConvergedAt time.Duration
}

// armUpgradeWave schedules every site's reinstall. Tier rank orders the
// rollout: the release soaks at the Tier1 labs before fanning out, the
// §5.1 discipline. Scheduling iterates nodeList (sorted by name), so the
// draw order — and therefore the whole wave — is deterministic in the seed.
func armUpgradeWave(g *Grid, cfg UpgradeWaveConfig) *UpgradeWave {
	cfg = cfg.withDefaults()
	w := &UpgradeWave{
		g: g, cfg: cfg,
		rng:     dist.New(g.Cfg.Seed ^ upgradeSeedSalt),
		cache:   vdt.UpgradeCache(g.Cache),
		pending: len(g.nodeList),
	}
	// Rank the distinct tiers present (ascending: 1 before 2 before 3).
	rank := map[int]int{}
	for _, n := range g.nodeList {
		rank[n.Spec.Tier] = 0
	}
	tiers := make([]int, 0, len(rank))
	for t := range rank {
		tiers = append(tiers, t)
	}
	for i := 0; i < len(tiers); i++ {
		for j := i + 1; j < len(tiers); j++ {
			if tiers[j] < tiers[i] {
				tiers[i], tiers[j] = tiers[j], tiers[i]
			}
		}
	}
	for i, t := range tiers {
		rank[t] = i
	}
	for _, n := range g.nodeList {
		node := n
		at := cfg.Start + time.Duration(rank[node.Spec.Tier])*cfg.Stagger +
			time.Duration(w.rng.Uniform(0, 0.5*float64(cfg.Stagger)))
		g.Eng.At(at, func() { w.upgrade(node) })
	}
	return w
}

// upgrade performs one site's reinstall: services down, managed jobs dead,
// queue flushed (the §5.1 "drain and reinstall"), then after the outage the
// new release lands via the incremental pacman pull and the site re-certifies
// and returns. A site that has not joined the grid yet upgrades dark — the
// release is staged and it simply joins with the new version, no outage.
func (w *UpgradeWave) upgrade(n *Node) {
	now := w.g.Eng.Now()
	dark := n.Spec.JoinAt > now
	if !dark {
		n.Site.SetHealthy(false)
		killed := n.Gatekeeper.FailAllManaged("vdt upgrade in progress")
		killed += n.Batch.KillRunning(nil, batch.NodeFailure)
		killed += n.Batch.FlushQueue()
		w.RestartKills += killed
	}
	finish := func() {
		if _, err := vdt.InstallUpgrade(w.cache, n.Site); err != nil {
			w.CertFailures++
		}
		cert := &vdt.Certification{SiteName: n.Spec.Name, Checks: []vdt.Check{
			{Name: "grid3-upgrade", Run: func() error {
				if !n.Site.HasApp("grid3-" + vdt.NextGrid3Version) {
					return errGrid3Missing
				}
				return nil
			}},
		}}
		if err := cert.Certify(); err != nil {
			w.CertFailures++
		}
		if !dark && n.Spec.JoinAt <= w.g.Eng.Now() {
			n.Site.SetHealthy(true)
		}
		w.SitesUpgraded++
		w.pending--
		if w.pending == 0 {
			w.ConvergedAt = w.g.Eng.Now()
		}
		w.armSkew(n)
	}
	if dark {
		finish()
		return
	}
	w.g.Eng.Schedule(w.cfg.Outage, finish)
}

// armSkew runs the mixed-version loss stream on an upgraded site: while any
// site still runs the old release, this site's old-release pilots
// occasionally die against its new-release services. The stream ends the
// moment the fleet converges.
func (w *UpgradeWave) armSkew(n *Node) {
	mtbf := time.Duration(float64(24*time.Hour) / w.cfg.SkewLossPerDay)
	var next func()
	next = func() {
		if w.pending == 0 {
			return
		}
		victim := false
		n.Batch.KillRunning(func(j *batch.Job) bool {
			if victim {
				return false
			}
			victim = true
			return true
		}, batch.NodeFailure)
		if victim {
			w.SkewKills++
		}
		w.g.Eng.Schedule(w.rng.ExpDuration(mtbf), next)
	}
	w.g.Eng.Schedule(w.rng.ExpDuration(mtbf), next)
}

// CertWaveConfig schedules GSI host-credential expiry/revocation storms:
// every site's gatekeeper credential carries a short lifetime, and when it
// lapses the site's auth goes dark — remote clients refuse the expired
// host certificate — until a renewed credential lands. With staggered
// issuance the expiries arrive in waves that the health breakers and the
// iGOC ticket desk surface (arm EnableHealth to watch the closed loop).
// The zero value disables the wave.
type CertWaveConfig struct {
	// Lifetime is each site host credential's validity window; zero
	// disables the wave.
	Lifetime time.Duration
	// Spread staggers per-site issuance instants across [0, Spread), so
	// expiries arrive as a storm front rather than one cliff. Default
	// Lifetime/4.
	Spread time.Duration
	// RenewalDelay is the mean outage before a site's renewed credential
	// lands (the admin round-trip to the CA). Default 3h.
	RenewalDelay time.Duration
	// RevokeFraction is the per-cycle probability a site's credential is
	// revoked mid-life (compromise, CRL push) instead of running to its
	// expiry; a revocation outage clears in half the renewal delay because
	// the CA pre-stages the replacement. 0 disables revocations.
	RevokeFraction float64
}

// Enabled reports whether the wave is armed.
func (c CertWaveConfig) Enabled() bool { return c.Lifetime > 0 }

func (c CertWaveConfig) withDefaults() CertWaveConfig {
	if c.Spread <= 0 {
		c.Spread = c.Lifetime / 4
	}
	if c.RenewalDelay <= 0 {
		c.RenewalDelay = 3 * time.Hour
	}
	return c
}

// CertWave is the armed credential-lifecycle campaign and its counters.
type CertWave struct {
	g   *Grid
	cfg CertWaveConfig
	rng *dist.RNG

	// creds holds each site's current host credential, re-issued by the
	// grid CA every renewal; expiry decisions consult the real gsi
	// validity window, not a parallel clock.
	creds map[string]*gsi.Credential

	// Expiries counts scheduled lapses that took a site's auth down;
	// Renewals the completed re-issues; Revocations the mid-life pulls.
	Expiries    int
	Renewals    int
	Revocations int
}

// armCertWave issues every site's short-lived host credential and schedules
// the first lapse. Issuance iterates nodeList (sorted), one private-stream
// draw per site, so the storm schedule is deterministic in the seed.
func armCertWave(g *Grid, cfg CertWaveConfig) (*CertWave, error) {
	cfg = cfg.withDefaults()
	w := &CertWave{
		g: g, cfg: cfg,
		rng:   dist.New(g.Cfg.Seed ^ certSeedSalt),
		creds: make(map[string]*gsi.Credential, len(g.nodeList)),
	}
	for _, n := range g.nodeList {
		node := n
		offset := time.Duration(w.rng.Uniform(0, float64(cfg.Spread)))
		cred, err := g.CA.Issue("/DC=org/DC=DOEGrids/OU=Services/CN=host/"+node.Spec.Host,
			sim.Grid3Epoch, offset+cfg.Lifetime)
		if err != nil {
			return nil, err
		}
		w.creds[node.Spec.Name] = cred
		w.schedule(node, offset+cfg.Lifetime)
	}
	return w, nil
}

// schedule arms one site's next credential event at the given absolute sim
// time: its expiry, or — when the revocation draw fires — an earlier
// mid-life pull.
func (w *CertWave) schedule(n *Node, expiry time.Duration) {
	now := w.g.Eng.Now()
	if w.cfg.RevokeFraction > 0 && w.rng.Bernoulli(w.cfg.RevokeFraction) {
		at := now + time.Duration(w.rng.Uniform(0.2, 0.8)*float64(expiry-now))
		w.g.Eng.At(at, func() { w.outage(n, true) })
		return
	}
	w.g.Eng.At(expiry, func() { w.outage(n, false) })
}

// outage takes the site's auth down. On a plain lapse the real credential
// must actually be expired at the engine's wall clock — the gsi validity
// window is the source of truth, and a still-valid credential means the
// schedule drifted, so the lapse is skipped and re-armed. The gatekeeper's
// grid-mapfile empties for the outage (every DN lookup fails) and the site
// goes unhealthy, which the GRAM probes, the Site Status Catalog, and —
// when armed — the health breakers and iGOC tickets all observe. A renewed
// credential lands after a bounded random delay and service resumes.
func (w *CertWave) outage(n *Node, revoked bool) {
	now := w.g.Eng.Now()
	wall := sim.Grid3Epoch.Add(now)
	cred := w.creds[n.Spec.Name]
	if !revoked {
		if err := cred.Cert.ValidAt(wall); err == nil {
			// Still valid (renewal landed early); check again at its edge.
			w.g.Eng.At(now+w.cfg.Lifetime, func() { w.outage(n, false) })
			return
		}
		w.Expiries++
	} else {
		w.Revocations++
	}
	// Dark sites (pre-JoinAt) renew without an observable outage.
	dark := n.Spec.JoinAt > now
	if !dark {
		n.Site.SetHealthy(false)
		n.Gridmap.ReplaceAll(gsi.NewGridmap())
	}
	delay := time.Duration(w.rng.Uniform(0.5, 1.5) * float64(w.cfg.RenewalDelay))
	if revoked {
		delay /= 2
	}
	w.g.Eng.Schedule(delay, func() {
		renewNow := w.g.Eng.Now()
		renewed, err := w.g.CA.Renew(cred, sim.Grid3Epoch.Add(renewNow), w.cfg.Lifetime)
		if err == nil {
			w.creds[n.Spec.Name] = renewed
		}
		if !dark && n.Spec.JoinAt <= renewNow {
			n.Gridmap.ReplaceAll(w.g.Registry.GenerateGridmap(n.Spec.Accounts))
			n.Site.SetHealthy(true)
		}
		w.Renewals++
		w.schedule(n, renewNow+w.cfg.Lifetime)
	})
}

// WaveStats aggregates both wave families' outcome counters for reports;
// the zero value means neither family was armed.
type WaveStats struct {
	UpgradedSites   int
	UpgradeKills    int // jobs lost to reinstall outages
	SkewKills       int // jobs lost to mixed-version skew
	CertExpiries    int
	CertRenewals    int
	CertRevocations int
}

// Zero reports whether no wave activity occurred (or none was armed).
func (s WaveStats) Zero() bool { return s == WaveStats{} }

// WaveStats returns the scenario's wave-family counters; all zero when
// neither family was configured.
func (s *Scenario) WaveStats() WaveStats {
	var out WaveStats
	if w := s.Upgrade; w != nil {
		out.UpgradedSites = w.SitesUpgraded
		out.UpgradeKills = w.RestartKills
		out.SkewKills = w.SkewKills
	}
	if w := s.Certs; w != nil {
		out.CertExpiries = w.Expiries
		out.CertRenewals = w.Renewals
		out.CertRevocations = w.Revocations
	}
	return out
}
