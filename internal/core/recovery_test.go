package core

import (
	"bytes"
	"testing"
	"time"

	"grid3/internal/obs"
	"grid3/internal/pegasus"
	"grid3/internal/vo"
)

// chaosRun executes a one-day scenario at the given failure intensity and
// returns (completed, lost) decided-job counts plus the scenario itself.
func chaosRun(t *testing.T, seed int64, intensity float64, recovery bool) (*Scenario, int, int) {
	t.Helper()
	s, err := NewScenario(ScenarioConfig{
		Config: Config{
			Seed:                seed,
			EnableRecovery:      recovery,
			EnableObservability: recovery,
		},
		Horizon:        24 * time.Hour,
		JobScale:       0.05,
		ChaosIntensity: intensity,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	done, lost := 0, 0
	for _, voName := range vo.Grid3VOs {
		st := s.Grid.Stats(voName)
		done += st.Completed
		lost += st.ExecFailures + st.StageOutFailures + st.SRMDeferred
	}
	return s, done, lost
}

// TestChaosRecoveryCompletion is the headline robustness property: under
// chaos at well above the calibrated intensity, a seeded one-day run with
// the closed fault-management loop completes >= 90% of its decided jobs and
// never does worse than the no-reaction baseline.
func TestChaosRecoveryCompletion(t *testing.T) {
	const seed, intensity = 7, 8
	_, baseDone, baseLost := chaosRun(t, seed, intensity, false)
	rec, recDone, recLost := chaosRun(t, seed, intensity, true)

	baseRate := float64(baseDone) / float64(baseDone+baseLost)
	recRate := float64(recDone) / float64(recDone+recLost)
	if baseDone+baseLost < 1000 || recDone+recLost < 1000 {
		t.Fatalf("day too quiet: baseline %d decided, recovery %d decided", baseDone+baseLost, recDone+recLost)
	}
	if recRate < 0.90 {
		t.Fatalf("recovery completion rate = %.3f, want >= 0.90", recRate)
	}
	if recRate < baseRate {
		t.Fatalf("recovery rate %.3f below baseline %.3f", recRate, baseRate)
	}
	if recDone < baseDone {
		t.Fatalf("recovery completed %d < baseline %d", recDone, baseDone)
	}

	// The improvement must come from the loop actually acting, not luck:
	// breakers opened and stage retries fired.
	counters := map[string]uint64{}
	for _, c := range rec.Grid.Obs.Metrics.Snapshot().Counters {
		counters[c.Name] = c.Value
	}
	if counters["health.breaker.opened"] == 0 {
		t.Fatal("no breakers opened under chaos")
	}
	if counters["health.retry.stage"] == 0 {
		t.Fatal("no stage retries fired under chaos")
	}
	// Breaker transitions fed the ops desk.
	if rec.Grid.Desk.TicketCount() == 0 {
		t.Fatal("no iGOC tickets filed for breaker episodes")
	}
}

// TestHealthProbesAreReadOnly asserts the opt-in contract: a probe-only run
// (EnableHealth) produces byte-identical workload results to a run without
// the health subsystem, and the default path is itself deterministic.
func TestHealthProbesAreReadOnly(t *testing.T) {
	render := func(enableHealth bool) (string, string) {
		s, err := NewScenario(ScenarioConfig{
			Config:   Config{Seed: 5, EnableHealth: enableHealth},
			Horizon:  15 * 24 * time.Hour,
			JobScale: 0.02,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		var tb, mb bytes.Buffer
		s.WriteTable1(&tb)
		s.ComputeMilestones().Write(&mb)
		return tb.String(), mb.String()
	}
	plainT1, plainMS := render(false)
	againT1, againMS := render(false)
	probeT1, _ := render(true)
	if plainT1 != againT1 || plainMS != againMS {
		t.Fatal("default path is not deterministic across identical runs")
	}
	// Probes are read-only: workload outcomes match byte for byte. (Only
	// the milestones may differ — breaker tickets change the desk totals.)
	if probeT1 != plainT1 {
		t.Fatalf("EnableHealth changed Table 1:\n--- without ---\n%s\n--- with ---\n%s", plainT1, probeT1)
	}
}

// TestReplicaFailover drives the workflow transfer path directly: the
// planned source's GridFTP endpoint is down, and recovery mode must fail
// over to the other RLS replica instead of failing the node.
func TestReplicaFailover(t *testing.T) {
	g, err := New(Config{Seed: 3, EnableRecovery: true, EnableObservability: true})
	if err != nil {
		t.Fatal(err)
	}
	const lfn = "lfn:failover-input"
	if err := g.SeedFile("BNL_ATLAS_Tier1", lfn, 1<<30); err != nil {
		t.Fatal(err)
	}
	if err := g.SeedFile("IU_ATLAS_Tier2", lfn, 1<<30); err != nil {
		t.Fatal(err)
	}
	g.Network.SetEndpointUp("BNL_ATLAS_Tier1", false)

	cj := &pegasus.ConcreteJob{
		Type: pegasus.StageIn, Site: "UC_ATLAS_Tier2",
		SrcSite: "BNL_ATLAS_Tier1", LFN: lfn, Bytes: 1 << 30,
	}
	var result error
	finished := false
	g.transferWork(cj, vo.USATLAS, obs.SpanID(0))(func(err error) {
		result = err
		finished = true
	})
	g.Eng.RunFor(24 * time.Hour)
	if !finished {
		t.Fatal("transfer never settled")
	}
	if result != nil {
		t.Fatalf("transfer failed despite alternate replica: %v", result)
	}
	if !g.Nodes["UC_ATLAS_Tier2"].Site.Disk.Has(lfn) {
		t.Fatal("staged file missing at destination")
	}
	var failovers uint64
	for _, c := range g.Obs.Metrics.Snapshot().Counters {
		if c.Name == "health.failover.replica" {
			failovers = c.Value
		}
	}
	if failovers != 1 {
		t.Fatalf("replica failovers = %d, want 1", failovers)
	}
}

// TestRecoveryOffNoFailover is the negative control for TestReplicaFailover:
// without recovery the same transfer fails outright.
func TestRecoveryOffNoFailover(t *testing.T) {
	g, err := New(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const lfn = "lfn:failover-input"
	if err := g.SeedFile("BNL_ATLAS_Tier1", lfn, 1<<30); err != nil {
		t.Fatal(err)
	}
	if err := g.SeedFile("IU_ATLAS_Tier2", lfn, 1<<30); err != nil {
		t.Fatal(err)
	}
	g.Network.SetEndpointUp("BNL_ATLAS_Tier1", false)
	cj := &pegasus.ConcreteJob{
		Type: pegasus.StageIn, Site: "UC_ATLAS_Tier2",
		SrcSite: "BNL_ATLAS_Tier1", LFN: lfn, Bytes: 1 << 30,
	}
	var result error
	g.transferWork(cj, vo.USATLAS, obs.SpanID(0))(func(err error) { result = err })
	g.Eng.RunFor(time.Hour)
	if result == nil {
		t.Fatal("transfer from downed source succeeded without recovery")
	}
}
