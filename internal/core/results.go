package core

import (
	"fmt"
	"io"
	"sort"
	"time"

	"grid3/internal/acdc"
	"grid3/internal/apps"
	"grid3/internal/mdviewer"
	"grid3/internal/vo"
)

// Milestones is the §7 milestones-and-metrics scorecard.
type Milestones struct {
	CPUs            int     // catalog peak; target 400, paper 2163/peak 2800+
	MeanOnlineCPUs  float64 // time-averaged in-service capacity
	Users           int     // target 10, paper actual 102
	Applications    int     // target >4, paper actual 10
	ConcurrentSites int     // sites serving ≥2 VOs' jobs; target >10, actual 17
	DataTBPerDay    float64 // target 2-3, actual 4
	Utilization     float64 // target 0.9, actual 0.4-0.7
	PeakJobs        int     // target 1000, actual 1300
	SupportFTEs     float64 // target <2 FTEs
	OpenTickets     int
	ResolvedMTTR    time.Duration
	EfficiencyByVO  map[string]float64
}

// ComputeMilestones evaluates the scorecard over a finished scenario.
func (s *Scenario) ComputeMilestones() Milestones {
	g := s.Grid
	m := Milestones{
		CPUs:           TotalCPUs(s.Cfg.Config.Sites),
		MeanOnlineCPUs: g.MeanOnlineCPUs(),
		Users:          g.Registry.TotalUsers(),
		PeakJobs:       g.PeakRunning(),
		Utilization:    g.MeanUtilization(),
		EfficiencyByVO: map[string]float64{},
	}
	// Applications: the seven Table 1 classes plus the three computer
	// science demonstrators (transfer study, NetLogger, exerciser — the
	// exerciser is both a class and a demonstrator, counted once here).
	m.Applications = len(s.Generators) + 3

	// Sites that ran completed jobs from ≥2 VOs.
	voBySite := map[string]map[string]bool{}
	for _, r := range g.ACDC.Records() {
		set := voBySite[r.Site]
		if set == nil {
			set = map[string]bool{}
			voBySite[r.Site] = set
		}
		set[r.VO] = true
	}
	for _, vos := range voBySite {
		if len(vos) >= 2 {
			m.ConcurrentSites++
		}
	}

	// Transfer volume per day across the run (all labels).
	var bytes int64
	for _, v := range g.Network.BytesByLabel() {
		bytes += v
	}
	days := g.Eng.Now().Hours() / 24
	if days > 0 {
		m.DataTBPerDay = float64(bytes) / float64(1<<40) / days
	}

	for _, voName := range VOColumns {
		m.EfficiencyByVO[voName] = g.Stats(voName).Efficiency()
	}

	// Operations support load from the iGOC ticket desk.
	m.SupportFTEs = g.Desk.SupportFTEs(g.Eng.Now())
	m.OpenTickets = len(g.Desk.OpenTickets())
	m.ResolvedMTTR = g.Desk.MeanTimeToResolve()
	return m
}

// Write renders the scorecard against the paper's targets.
func (m Milestones) Write(w io.Writer) {
	fmt.Fprintln(w, "Grid3 milestones (paper targets / paper actuals / this run):")
	fmt.Fprintf(w, "  %-28s target %-8v paper %-10v measured %v (mean online %.0f)\n",
		"Number of CPUs", 400, "2163-2800", m.CPUs, m.MeanOnlineCPUs)
	fmt.Fprintf(w, "  %-28s target %-8v paper %-10v measured %v\n", "Number of users", 10, 102, m.Users)
	fmt.Fprintf(w, "  %-28s target %-8v paper %-10v measured %v\n", "Number of applications", ">4", 10, m.Applications)
	fmt.Fprintf(w, "  %-28s target %-8v paper %-10v measured %v\n", "Concurrent-VO sites", ">10", 17, m.ConcurrentSites)
	fmt.Fprintf(w, "  %-28s target %-8v paper %-10v measured %.1f\n", "Data transfer (TB/day)", "2-3", 4, m.DataTBPerDay)
	fmt.Fprintf(w, "  %-28s target %-8v paper %-10v measured %.0f%%\n", "Resource utilization", "90%", "40-70%", 100*m.Utilization)
	fmt.Fprintf(w, "  %-28s target %-8v paper %-10v measured %v\n", "Peak concurrent jobs", 1000, 1300, m.PeakJobs)
	fmt.Fprintf(w, "  %-28s target %-8v paper %-10v measured %.2f (%d open, MTTR %v)\n",
		"Ops support load (FTE)", "<2", "<2", m.SupportFTEs, m.OpenTickets, m.ResolvedMTTR.Round(time.Minute))
	for _, voName := range VOColumns {
		if eff, ok := m.EfficiencyByVO[voName]; ok && eff > 0 {
			fmt.Fprintf(w, "  %-28s target %-8v paper %-10v measured %.0f%%\n",
				"Efficiency "+voName, "75%", "varies", 100*eff)
		}
	}
}

// Figure2 returns integrated CPU-days by VO over the SC2003 window.
func (s *Scenario) Figure2() map[string]float64 {
	return s.Grid.ACDC.CPUDaysByVO(SC2003Start, SC2003Start+SC2003Window)
}

// Figure3 returns the differential view: time-averaged CPUs per VO per
// day over the SC2003 window, as an mdviewer plot.
func (s *Scenario) Figure3() *mdviewer.Plot {
	series := s.Grid.ACDC.AvgCPUsByVO(SC2003Start, SC2003Start+SC2003Window, 24*time.Hour)
	plot := &mdviewer.Plot{
		Title: "Figure 3: differential CPU usage during SC2003 (time-averaged CPUs, by VO)",
		Unit:  "CPUs",
	}
	days := int(SC2003Window / (24 * time.Hour))
	for d := 0; d < days; d++ {
		plot.XLabels = append(plot.XLabels, fmt.Sprintf("day %02d", d+1))
	}
	for _, voName := range VOColumns {
		vals, ok := series[voName]
		if !ok {
			continue
		}
		plot.Series = append(plot.Series, mdviewer.Series{Name: voName, Values: vals})
	}
	plot.SortSeriesByTotal()
	return plot
}

// Figure4 returns CMS CPU-days by site over the 150-day window from
// November 2003.
func (s *Scenario) Figure4() map[string]float64 {
	return s.Grid.ACDC.CPUDaysBySiteForVO(vo.USCMS, CMSWindowStart, CMSWindowStart+CMSWindowLen)
}

// Figure5 returns data consumed per VO label in TB over the 30-day SC2003
// window ("Nearly 100 TB was transferred during 30 days before and after
// SC2003"), plus the window total.
func (s *Scenario) Figure5() (byVO map[string]float64, totalTB float64) {
	byVO = map[string]float64{}
	for label, bytes := range s.Grid.Network.BytesByLabelWindow(SC2003Start, SC2003Start+SC2003Window) {
		tb := float64(bytes) / float64(1<<40)
		byVO[label] = tb
		totalTB += tb
	}
	return byVO, totalTB
}

// Figure5BySite returns the same window's volume by consuming (destination)
// site, the figure's alternate view.
func (s *Scenario) Figure5BySite() map[string]float64 {
	out := map[string]float64{}
	for dst, bytes := range s.Grid.Network.BytesInByDstWindow(SC2003Start, SC2003Start+SC2003Window) {
		out[dst] = float64(bytes) / float64(1<<40)
	}
	return out
}

// Figure6 returns completed jobs per month.
func (s *Scenario) Figure6() ([]string, []int) {
	return s.Grid.ACDC.JobsByMonth()
}

// GroupBy selects the UsagePlot grouping dimension.
type GroupBy int

// UsagePlot groupings.
const (
	ByVO GroupBy = iota
	BySite
)

// UsagePlot is the MDViewer-style parametric query of §5.2: CPU occupancy
// "parametric in arbitrary time intervals, sites and VOs". It returns one
// series per group with one value (mean CPUs in use) per bin.
func (s *Scenario) UsagePlot(from, to, bin time.Duration, group GroupBy) *mdviewer.Plot {
	plot := &mdviewer.Plot{Unit: "CPUs"}
	nbins := int((to - from + bin - 1) / bin)
	for b := 0; b < nbins; b++ {
		plot.XLabels = append(plot.XLabels, fmt.Sprintf("+%dh", int((time.Duration(b)*bin).Hours())))
	}
	acc := map[string][]float64{}
	for _, r := range s.Grid.ACDC.Records() {
		key := r.VO
		if group == BySite {
			key = r.Site
			plot.Title = "CPU usage by site"
		} else {
			plot.Title = "CPU usage by VO"
		}
		series := acc[key]
		if series == nil {
			series = make([]float64, nbins)
			acc[key] = series
		}
		start, end := r.Started, r.Ended
		for b := 0; b < nbins; b++ {
			bFrom := from + time.Duration(b)*bin
			bTo := bFrom + bin
			if bTo > to {
				bTo = to
			}
			lo, hi := start, end
			if lo < bFrom {
				lo = bFrom
			}
			if hi > bTo {
				hi = bTo
			}
			if hi > lo {
				series[b] += float64(hi-lo) / float64(bTo-bFrom)
			}
		}
	}
	names := make([]string, 0, len(acc))
	for k := range acc {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		plot.Series = append(plot.Series, mdviewer.Series{Name: k, Values: acc[k]})
	}
	plot.SortSeriesByTotal()
	return plot
}

// Table1 computes the per-class statistics columns.
func (s *Scenario) Table1() []acdc.ClassStats {
	out := make([]acdc.ClassStats, 0, len(VOColumns))
	for _, voName := range VOColumns {
		out = append(out, s.Grid.ACDC.Stats(voName))
	}
	return out
}

// WriteTable1 renders the Table 1 reproduction next to the paper's values.
func (s *Scenario) WriteTable1(w io.Writer) {
	stats := s.Table1()
	fmt.Fprintln(w, "Table 1: Grid3 computational job statistics by VO class")
	fmt.Fprintf(w, "%-26s", "")
	for _, st := range stats {
		fmt.Fprintf(w, " %10s", st.VO)
	}
	fmt.Fprintln(w)
	row := func(label string, f func(acdc.ClassStats) string) {
		fmt.Fprintf(w, "%-26s", label)
		for _, st := range stats {
			fmt.Fprintf(w, " %10s", f(st))
		}
		fmt.Fprintln(w)
	}
	classes := apps.Grid3Classes()
	row("Users", func(st acdc.ClassStats) string {
		if c, ok := apps.ClassByVO(classes, st.VO); ok {
			return fmt.Sprint(c.Users)
		}
		return "-"
	})
	row("Jobs completed", func(st acdc.ClassStats) string { return fmt.Sprint(st.Jobs) })
	row("Sites used", func(st acdc.ClassStats) string { return fmt.Sprint(st.SitesUsed) })
	row("Avg runtime (h)", func(st acdc.ClassStats) string { return fmt.Sprintf("%.2f", st.AvgRuntimeHours) })
	row("Max runtime (h)", func(st acdc.ClassStats) string { return fmt.Sprintf("%.1f", st.MaxRuntimeHours) })
	row("Total CPU (days)", func(st acdc.ClassStats) string { return fmt.Sprintf("%.1f", st.TotalCPUDays) })
	row("Peak rate (jobs/month)", func(st acdc.ClassStats) string { return fmt.Sprint(st.PeakMonthJobs) })
	row("Peak month", func(st acdc.ClassStats) string { return st.PeakMonth })
	row("Peak resources", func(st acdc.ClassStats) string { return fmt.Sprint(st.PeakResources) })
	row("Max single site [%]", func(st acdc.ClassStats) string {
		return fmt.Sprintf("%d[%.0f]", st.MaxSingleSiteJobs, st.MaxSingleSitePct)
	})
	row("Peak CPU (days)", func(st acdc.ClassStats) string { return fmt.Sprintf("%.1f", st.PeakMonthCPUDays) })
}
