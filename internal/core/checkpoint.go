package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"grid3/internal/apps"
	"grid3/internal/checkpoint"
	"grid3/internal/failure"
	"grid3/internal/obs"
)

// wireScenario is the JSON mirror of ScenarioConfig carried inside a
// snapshot: the resolved plain-data configuration that pins a replay, minus
// the runtime wiring (sinks are functions, checkpoint plumbing is
// per-process). Decoding is strict — an unknown field means the snapshot
// was written by a different config schema, and replaying it under this one
// could silently diverge, so it is rejected up front.
type wireScenario struct {
	Config              Config         `json:"config"`
	Horizon             time.Duration  `json:"horizon"`
	Classes             []apps.Class   `json:"classes"`
	Failures            failure.Config `json:"failures"`
	DisableFailures     bool           `json:"disable_failures"`
	ChaosIntensity      float64        `json:"chaos_intensity"`
	DisableTransferDemo bool           `json:"disable_transfer_demo"`
	JobScale            float64        `json:"job_scale"`
	RealTimePace        float64        `json:"real_time_pace"`
	// The wave families are plain data and must replay bit-for-bit, so
	// they ride in the snapshot like every other workload knob. Snapshots
	// written before the waves existed decode with both left zero (off).
	UpgradeWave UpgradeWaveConfig `json:"upgrade_wave"`
	CertWave    CertWaveConfig    `json:"cert_wave"`
}

func marshalScenarioConfig(cfg ScenarioConfig) ([]byte, error) {
	return json.Marshal(wireScenario{
		Config:              cfg.Config,
		Horizon:             cfg.Horizon,
		Classes:             cfg.Classes,
		Failures:            cfg.Failures,
		DisableFailures:     cfg.DisableFailures,
		ChaosIntensity:      cfg.ChaosIntensity,
		DisableTransferDemo: cfg.DisableTransferDemo,
		JobScale:            cfg.JobScale,
		RealTimePace:        cfg.RealTimePace,
		UpgradeWave:         cfg.UpgradeWave,
		CertWave:            cfg.CertWave,
	})
}

func unmarshalScenarioConfig(data []byte) (ScenarioConfig, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w wireScenario
	if err := dec.Decode(&w); err != nil {
		return ScenarioConfig{}, fmt.Errorf("%w: config: %v", checkpoint.ErrCorrupt, err)
	}
	return ScenarioConfig{
		Config:              w.Config,
		Horizon:             w.Horizon,
		Classes:             w.Classes,
		Failures:            w.Failures,
		DisableFailures:     w.DisableFailures,
		ChaosIntensity:      w.ChaosIntensity,
		DisableTransferDemo: w.DisableTransferDemo,
		JobScale:            w.JobScale,
		RealTimePace:        w.RealTimePace,
		UpgradeWave:         w.UpgradeWave,
		CertWave:            w.CertWave,
	}, nil
}

// HashState folds the grid's complete deterministic state into h: the
// engine (clock, sequence counter, every pending event's scheduling key),
// VO rosters, every site's replica catalog and SRM lifecycle state, the WAN,
// the RLS index, iGOC tickets, breaker state, per-VO schedd queues, and the
// accounting counters. This walk is the snapshot's verification witness.
func (g *Grid) HashState(h *checkpoint.Hasher) {
	g.Eng.HashState(h)
	g.Registry.HashState(h)
	h.Int(int64(len(g.Order)))
	for _, name := range g.Order {
		n := g.Nodes[name]
		h.String(name)
		n.LRC.HashState(h)
		if n.SRM != nil {
			h.Bool(true)
			n.SRM.HashState(h)
		} else {
			h.Bool(false)
		}
		h.Int(int64(len(n.archQueue)))
		h.Int(n.archBytes)
	}
	g.Network.HashState(h)
	g.RLI.HashState(h)
	g.Desk.HashState(h)
	g.Health.HashState(h) // nil-safe: folds nothing when probes are off
	vos := make([]string, 0, len(g.Schedds))
	for v := range g.Schedds {
		vos = append(vos, v)
	}
	sort.Strings(vos)
	h.Int(int64(len(vos)))
	for _, v := range vos {
		h.String(v)
		g.Schedds[v].HashState(h)
	}
	svos := make([]string, 0, len(g.stats))
	for v := range g.stats {
		svos = append(svos, v)
	}
	sort.Strings(svos)
	h.Int(int64(len(svos)))
	for _, v := range svos {
		st := g.stats[v]
		h.String(v)
		h.Int(int64(st.Submitted))
		h.Int(int64(st.Completed))
		h.Int(int64(st.ExecFailures))
		h.Int(int64(st.AttemptFailures))
		h.Int(int64(st.StageOutFailures))
		h.Int(int64(st.SRMDeferred))
		h.Dur(st.WastedCPU)
	}
	h.Int(g.seq)
	h.Int(int64(g.peakRunning))
	h.Int(g.runningSamples)
	h.Int(g.runningSum)
	h.Int(g.capacitySum)
	tsites := make([]string, 0, len(g.healthTickets))
	for s := range g.healthTickets {
		tsites = append(tsites, s)
	}
	sort.Strings(tsites)
	h.Int(int64(len(tsites)))
	for _, s := range tsites {
		h.String(s)
		h.Int(int64(g.healthTickets[s]))
	}
	rsites := make([]string, 0, len(g.resolvedTickets))
	for s := range g.resolvedTickets {
		rsites = append(rsites, s)
	}
	sort.Strings(rsites)
	h.Int(int64(len(rsites)))
	for _, s := range rsites {
		h.String(s)
		h.Int(int64(g.resolvedTickets[s]))
	}
}

// StateDigest returns the digest of the grid's canonical state walk, with
// extra (may be nil) appended — the hook a higher layer uses to fold its
// own soft state (the serve job table) into the same witness.
func (s *Scenario) StateDigest(extra func(*checkpoint.Hasher)) uint64 {
	h := checkpoint.NewHasher()
	s.Grid.HashState(h)
	if extra != nil {
		extra(h)
	}
	return h.Sum()
}

// Snapshot captures the scenario's current state as a snapshot record:
// resolved configuration, sim time, state digest, and — for the serve
// scope — the journal of externally-injected operations. The capture is a
// pure read; the run continues unperturbed.
func (s *Scenario) Snapshot(scope checkpoint.Scope, extra func(*checkpoint.Hasher), journal []checkpoint.Op) (*checkpoint.Snapshot, error) {
	cfgRaw, err := marshalScenarioConfig(s.Cfg)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: marshal config: %w", err)
	}
	return &checkpoint.Snapshot{
		Scope:   scope,
		SimTime: s.Grid.Eng.Now(),
		Seed:    s.Cfg.Seed,
		Events:  s.Grid.Eng.Processed(),
		Digest:  s.StateDigest(extra),
		Config:  cfgRaw,
		Journal: journal,
	}, nil
}

// Checkpoint captures a batch-scope snapshot of the running scenario.
func (s *Scenario) Checkpoint() (*checkpoint.Snapshot, error) {
	return s.Snapshot(checkpoint.ScopeBatch, nil, nil)
}

// RestoreOverrides is the whitelist of settings a restore may change
// relative to the recorded configuration. Everything else in the snapshot's
// config wins: changing workload, seed, failure mix, or feature flags would
// make the replay diverge from the checkpointed state, so such knobs are
// deliberately absent here.
type RestoreOverrides struct {
	// Shards overrides the execution shard count (0 keeps the recorded
	// value). Safe because sharding never changes event order — PR 7's
	// byte-identical guarantee — so the replayed state is shard-independent.
	Shards int
	// Horizon, when beyond the recorded horizon, extends how far the
	// restored run will continue. Construction and replay always use the
	// recorded horizon (generator arming depends on it); the extension
	// only moves the continuation target.
	Horizon time.Duration
	// TraceSinks/MetricsSinks attach fresh observability sinks — functions
	// cannot be serialized, so the original sinks are gone. Accepted only
	// when the recorded config had observability enabled; attaching them to
	// a run that executed without the observer would change its event count.
	TraceSinks   []obs.TraceSink
	MetricsSinks []obs.MetricsSink
	// CheckpointAt/CheckpointStore re-arm periodic capture on the restored
	// run (the restored grid3d keeps checkpointing).
	CheckpointAt    []time.Duration
	CheckpointStore checkpoint.StateStore
	// RealTimePace overrides the serve-mode pacing ratio (0 keeps the
	// recorded value). Pacing is wall-clock plumbing outside the engine,
	// so it cannot perturb the replay.
	RealTimePace float64
	// ReplayOp applies one journaled external operation during replay; the
	// serve layer supplies its enroll/submit appliers. Required for
	// serve-scope snapshots, must be nil for batch scope.
	ReplayOp func(s *Scenario, op checkpoint.Op) error
	// ExtraHash appends a higher layer's soft state to the verification
	// walk, mirroring the extra hook the capture used (the serve job
	// table). Must fold the rebuilt state, or verification fails.
	ExtraHash func(*checkpoint.Hasher)
}

// RestoreScenario rebuilds a scenario from a snapshot by deterministic
// replay: construct the recorded configuration, re-execute to the recorded
// sim time (re-injecting journaled operations at their recorded instants),
// and verify the state walk against the recorded digest. On any error —
// wrong scope, corrupt config, replay divergence — the partially-built grid
// is torn down and nil is returned: a restore never yields a scenario whose
// state differs from the checkpoint.
func RestoreScenario(snap *checkpoint.Snapshot, ov RestoreOverrides) (*Scenario, error) {
	switch snap.Scope {
	case checkpoint.ScopeBatch:
		if len(snap.Journal) != 0 {
			return nil, fmt.Errorf("%w: batch snapshot carries a journal", checkpoint.ErrCorrupt)
		}
	case checkpoint.ScopeServe:
		if ov.ReplayOp == nil {
			return nil, fmt.Errorf("%w: serve snapshot needs a serve-layer restore", checkpoint.ErrWrongScope)
		}
	default:
		return nil, fmt.Errorf("%w: scope %v", checkpoint.ErrWrongScope, snap.Scope)
	}
	cfg, err := unmarshalScenarioConfig(snap.Config)
	if err != nil {
		return nil, err
	}
	if snap.SimTime > cfg.Horizon {
		return nil, fmt.Errorf("%w: snapshot time %v beyond recorded horizon %v",
			checkpoint.ErrCorrupt, snap.SimTime, cfg.Horizon)
	}
	if ov.Shards != 0 {
		cfg.Shards = ov.Shards
	}
	if ov.RealTimePace != 0 {
		cfg.RealTimePace = ov.RealTimePace
	}
	if len(ov.TraceSinks) > 0 || len(ov.MetricsSinks) > 0 {
		if !cfg.EnableObservability {
			return nil, fmt.Errorf("checkpoint: cannot attach sinks: snapshot was recorded without observability")
		}
		cfg.TraceSinks = ov.TraceSinks
		cfg.MetricsSinks = ov.MetricsSinks
	}
	s, err := NewScenario(cfg)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Scenario, error) {
		s.Grid.Close() // stop region workers; no partial state escapes
		return nil, err
	}
	for i, op := range snap.Journal {
		if op.T > snap.SimTime {
			return fail(fmt.Errorf("%w: journal op %d at %v after snapshot time %v",
				checkpoint.ErrCorrupt, i, op.T, snap.SimTime))
		}
		// Only advance when the op is ahead of the clock: RunUntil(t) fires
		// events scheduled at exactly t, so re-invoking it between two ops
		// recorded at the same instant would fire events the first op
		// scheduled before the second op applies — the original run applied
		// both ops back-to-back with those events still pending.
		if op.T > s.Grid.Eng.Now() {
			s.Grid.Eng.RunUntil(op.T)
		}
		if err := ov.ReplayOp(s, op); err != nil {
			return fail(fmt.Errorf("checkpoint: replay op %d (%s): %w", i, op.Kind, err))
		}
	}
	if snap.SimTime > s.Grid.Eng.Now() {
		s.Grid.Eng.RunUntil(snap.SimTime)
	}
	if got := s.StateDigest(ov.ExtraHash); got != snap.Digest {
		return fail(fmt.Errorf("%w: walked %016x, snapshot records %016x",
			checkpoint.ErrDigest, got, snap.Digest))
	}
	if ov.Horizon > s.Cfg.Horizon {
		s.Cfg.Horizon = ov.Horizon
	}
	s.Cfg.CheckpointAt = ov.CheckpointAt
	s.Cfg.CheckpointStore = ov.CheckpointStore
	return s, nil
}
