package core

import (
	"reflect"
	"testing"
)

// N ≤ 27 must reproduce the historical catalog verbatim — the property
// that keeps `-sites 27` byte-identical to the default simulation.
func TestGenerateTestbedCatalogPrefix(t *testing.T) {
	catalog := Grid3Sites()
	for _, n := range []int{1, 5, len(catalog)} {
		got := ScaledSites(n, 1)
		if len(got) != n {
			t.Fatalf("ScaledSites(%d): got %d sites", n, len(got))
		}
		if !reflect.DeepEqual(got, catalog[:n]) {
			t.Fatalf("ScaledSites(%d) diverges from the historical catalog", n)
		}
	}
	// Zero means "the full catalog", matching Config.defaults.
	if got := ScaledSites(0, 1); !reflect.DeepEqual(got, catalog) {
		t.Fatalf("ScaledSites(0) should return the full catalog")
	}
}

func TestGenerateTestbedBeyondCatalogKeepsPrefix(t *testing.T) {
	catalog := Grid3Sites()
	got := ScaledSites(100, 7)
	if len(got) != 100 {
		t.Fatalf("got %d sites, want 100", len(got))
	}
	if !reflect.DeepEqual(got[:len(catalog)], catalog) {
		t.Fatalf("synthetic population must keep the historical catalog as its prefix")
	}
}

func TestGenerateTestbedDeterministic(t *testing.T) {
	a := ScaledSites(300, 42)
	b := ScaledSites(300, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed must generate identical populations")
	}
	c := ScaledSites(300, 43)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds should generate different populations")
	}
}

func TestGenerateTestbedTierDistribution(t *testing.T) {
	tiers := DefaultTestbedTiers()
	for _, n := range []int{100, 300, 1000} {
		synth := n - len(Grid3Sites())
		counts := TierCounts(tiers, synth)
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != synth {
			t.Fatalf("n=%d: TierCounts sums to %d, want %d", n, total, synth)
		}
		got := make(map[int]int)
		for _, s := range ScaledSites(n, 1)[len(Grid3Sites()):] {
			got[s.Tier]++
		}
		for i, tier := range tiers {
			if got[tier.Tier] != counts[i] {
				t.Errorf("n=%d tier %d: %d sites, want %d", n, tier.Tier, got[tier.Tier], counts[i])
			}
		}
	}
}

func TestGenerateTestbedSitesValidate(t *testing.T) {
	specs := ScaledSites(1000, 1)
	names := make(map[string]bool, len(specs))
	for i := range specs {
		s := &specs[i]
		if err := s.Config.Validate(); err != nil {
			t.Fatalf("site %d: %v", i, err)
		}
		if names[s.Name] {
			t.Fatalf("duplicate site name %s", s.Name)
		}
		names[s.Name] = true
	}
}

func TestGenerateTestbedRespectsTierRanges(t *testing.T) {
	tiers := DefaultTestbedTiers()
	byTier := make(map[int]TestbedTier)
	for _, tier := range tiers {
		byTier[tier.Tier] = tier
	}
	for _, s := range ScaledSites(500, 9)[len(Grid3Sites()):] {
		tier, ok := byTier[s.Tier]
		if !ok {
			t.Fatalf("site %s: unknown tier %d", s.Name, s.Tier)
		}
		if s.CPUs < tier.CPUMin || s.CPUs > tier.CPUMax {
			t.Errorf("site %s: %d CPUs outside [%d,%d]", s.Name, s.CPUs, tier.CPUMin, tier.CPUMax)
		}
		if s.DiskBytes < tier.DiskTBMin*tb || s.DiskBytes > tier.DiskTBMax*tb {
			t.Errorf("site %s: disk %d outside tier range", s.Name, s.DiskBytes)
		}
		if _, ok := s.Accounts[s.OwnerVO]; !ok {
			t.Errorf("site %s: owner VO %s has no account", s.Name, s.OwnerVO)
		}
	}
}
