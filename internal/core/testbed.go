package core

import (
	"fmt"
	"time"

	"grid3/internal/dist"
	"grid3/internal/glue"
	"grid3/internal/site"
	"grid3/internal/vo"
)

// testbedSeedSalt forks a private RNG stream for site-population synthesis
// so generating a testbed never perturbs the simulation's own draws.
const testbedSeedSalt = 0x74657374626564 // "testbed"

// VOMix is one authorization pattern a synthetic site can adopt: the VO
// that owns the site plus the set of VOs with group accounts there. The
// patterns mirror Table 1, where sites ranged from everything-welcome lab
// centers to single-experiment university clusters.
type VOMix struct {
	Owner  string
	VOs    []string
	Weight float64
}

// TestbedTier describes one heterogeneity class of synthetic sites — the
// knobs the CMS Integration Grid Testbed experience (PAPERS.md) showed
// matter per site: CPU count, WAN bandwidth, storage, batch flavor,
// walltime policy, and VO authorization mix.
type TestbedTier struct {
	Name string
	Tier int
	// Frac is the fraction of synthetic sites in this tier. Counts are
	// derived deterministically: floor(Frac·n) per tier with the
	// remainder assigned to the last tier.
	Frac           float64
	CPUMin, CPUMax int
	DiskTBMin      int64
	DiskTBMax      int64
	WANChoices     []float64
	LRMSChoices    []glue.LRMS
	MaxWallChoices []time.Duration
	DedicatedProb  float64
	VOMixes        []VOMix
}

// TestbedConfig parameterizes GenerateTestbed.
type TestbedConfig struct {
	// Sites is the total population size. Up to len(Grid3Sites()) the
	// generator returns a prefix of the historical catalog; beyond that
	// it appends synthetic sites.
	Sites int
	// Seed drives all synthetic draws (forked with a private salt).
	Seed int64
	// Tiers defaults to DefaultTestbedTiers when nil.
	Tiers []TestbedTier
}

// DefaultTestbedTiers returns the tier distribution calibrated on Table 1:
// a thin layer of dedicated lab centers, a broad band of university Tier2
// facilities, and a long tail of small shared clusters (growth skews
// toward the tail, as the INFN-GRID federation experience suggests).
func DefaultTestbedTiers() []TestbedTier {
	all := []string{vo.USATLAS, vo.USCMS, vo.SDSS, vo.LIGO, vo.BTeV, vo.IVDGL, vo.Exerciser}
	atlas := []string{vo.USATLAS, vo.IVDGL, vo.Exerciser}
	cms := []string{vo.USCMS, vo.IVDGL, vo.Exerciser}
	ligo := []string{vo.LIGO, vo.IVDGL, vo.Exerciser}
	sdss := []string{vo.SDSS, vo.IVDGL, vo.Exerciser}
	btev := []string{vo.BTeV, vo.IVDGL, vo.Exerciser}
	ivdgl := []string{vo.IVDGL, vo.Exerciser}
	return []TestbedTier{
		{
			Name: "lab-tier1", Tier: 1, Frac: 0.04,
			CPUMin: 256, CPUMax: 512,
			DiskTBMin: 40, DiskTBMax: 100,
			WANChoices:     []float64{2488},
			LRMSChoices:    []glue.LRMS{glue.Condor, glue.LSF},
			MaxWallChoices: []time.Duration{300 * time.Hour, 1300 * time.Hour},
			DedicatedProb:  1.0,
			VOMixes: []VOMix{
				{Owner: vo.USATLAS, VOs: all, Weight: 1},
				{Owner: vo.USCMS, VOs: all, Weight: 1},
				{Owner: vo.IVDGL, VOs: all, Weight: 1},
			},
		},
		{
			Name: "university-tier2", Tier: 2, Frac: 0.36,
			CPUMin: 64, CPUMax: 192,
			DiskTBMin: 3, DiskTBMax: 8,
			WANChoices:     []float64{622, 622, 622, 155},
			LRMSChoices:    []glue.LRMS{glue.Condor, glue.PBS, glue.PBS, glue.LSF},
			MaxWallChoices: []time.Duration{100 * time.Hour, 120 * time.Hour, 200 * time.Hour, 36 * time.Hour},
			DedicatedProb:  0.2,
			VOMixes: []VOMix{
				{Owner: vo.USATLAS, VOs: atlas, Weight: 5},
				{Owner: vo.USCMS, VOs: cms, Weight: 5},
				{Owner: vo.LIGO, VOs: ligo, Weight: 1},
				{Owner: vo.SDSS, VOs: sdss, Weight: 1},
				{Owner: vo.BTeV, VOs: btev, Weight: 1},
				{Owner: vo.IVDGL, VOs: all, Weight: 3},
			},
		},
		{
			Name: "small-shared", Tier: 3, Frac: 0.60,
			CPUMin: 16, CPUMax: 48,
			DiskTBMin: 1, DiskTBMax: 2,
			WANChoices:     []float64{155, 155, 45},
			LRMSChoices:    []glue.LRMS{glue.PBS, glue.PBS, glue.Condor},
			MaxWallChoices: []time.Duration{48 * time.Hour, 72 * time.Hour},
			DedicatedProb:  0.0,
			VOMixes: []VOMix{
				{Owner: vo.USATLAS, VOs: atlas, Weight: 3},
				{Owner: vo.USCMS, VOs: cms, Weight: 2},
				{Owner: vo.LIGO, VOs: ligo, Weight: 1},
				{Owner: vo.SDSS, VOs: sdss, Weight: 1},
				{Owner: vo.IVDGL, VOs: ivdgl, Weight: 4},
			},
		},
	}
}

// TierCounts returns the exact per-tier synthetic-site counts the
// generator will produce for n synthetic sites: floor(Frac·n) per tier,
// remainder to the last tier. Exposed so tests can assert distributions
// without re-deriving the rounding rule.
func TierCounts(tiers []TestbedTier, n int) []int {
	counts := make([]int, len(tiers))
	total := 0
	for i, tier := range tiers {
		counts[i] = int(tier.Frac * float64(n))
		total += counts[i]
	}
	if len(counts) > 0 {
		counts[len(counts)-1] += n - total
	}
	return counts
}

// GenerateTestbed produces a deterministic heterogeneous site population.
// The first min(Sites, 27) entries are the historical Grid3 catalog
// verbatim — so N=27 reproduces the paper's Table 1 sites exactly and the
// default simulation is byte-identical to the catalog-driven one — and
// the remainder are synthetic sites drawn from the tier distribution.
func GenerateTestbed(cfg TestbedConfig) []SiteSpec {
	catalog := Grid3Sites()
	if cfg.Sites <= 0 {
		cfg.Sites = len(catalog)
	}
	if cfg.Sites <= len(catalog) {
		return catalog[:cfg.Sites]
	}
	if cfg.Tiers == nil {
		cfg.Tiers = DefaultTestbedTiers()
	}
	rng := dist.New(cfg.Seed ^ testbedSeedSalt)
	specs := make([]SiteSpec, 0, cfg.Sites)
	specs = append(specs, catalog...)

	synth := cfg.Sites - len(catalog)
	counts := TierCounts(cfg.Tiers, synth)
	idx := len(catalog) + 1 // human-facing ordinal, 28...
	for ti, tier := range cfg.Tiers {
		weights := make([]float64, len(tier.VOMixes))
		for i, m := range tier.VOMixes {
			weights[i] = m.Weight
		}
		pick := dist.NewWeighted(weights)
		for i := 0; i < counts[ti]; i++ {
			mix := tier.VOMixes[pick.Choose(rng)]
			cpus := tier.CPUMin
			if tier.CPUMax > tier.CPUMin {
				cpus += rng.Intn(tier.CPUMax - tier.CPUMin + 1)
			}
			diskTB := tier.DiskTBMin
			if tier.DiskTBMax > tier.DiskTBMin {
				diskTB += int64(rng.Intn(int(tier.DiskTBMax - tier.DiskTBMin + 1)))
			}
			name := fmt.Sprintf("SYN%04d_T%d", idx, tier.Tier)
			specs = append(specs, SiteSpec{
				Config: site.Config{
					Name:       name,
					Host:       fmt.Sprintf("gk.syn%04d.grid3.org", idx),
					Tier:       tier.Tier,
					CPUs:       cpus,
					DiskBytes:  diskTB * tb,
					WANMbps:    tier.WANChoices[rng.Intn(len(tier.WANChoices))],
					LRMS:       tier.LRMSChoices[rng.Intn(len(tier.LRMSChoices))],
					MaxWall:    tier.MaxWallChoices[rng.Intn(len(tier.MaxWallChoices))],
					OwnerVO:    mix.Owner,
					Dedicated:  rng.Bernoulli(tier.DedicatedProb),
					Accounts:   accounts(mix.VOs...),
					OutboundIP: true,
				},
				Location: fmt.Sprintf("Synthetic facility %d (%s)", idx, tier.Name),
			})
			idx++
		}
	}
	return specs
}

// ScaledSites is the convenience entry point behind `grid3sim -sites N`
// and the façade's WithTestbedScale: the historical catalog up to 27,
// catalog + synthetic population beyond.
func ScaledSites(n int, seed int64) []SiteSpec {
	return GenerateTestbed(TestbedConfig{Sites: n, Seed: seed})
}
