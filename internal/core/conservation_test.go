package core

import (
	"testing"
	"time"

	"grid3/internal/apps"
	"grid3/internal/vo"
)

// TestScenarioConservation checks end-to-end accounting invariants over a
// short campaign: no job is double-counted, every archived output is
// registered in RLS exactly once, and the books balance per VO.
func TestScenarioConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run in -short mode")
	}
	s, err := NewScenario(ScenarioConfig{
		Config:   Config{Seed: 21},
		Horizon:  20 * 24 * time.Hour,
		JobScale: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	g := s.Grid

	classes := apps.Grid3Classes()
	for _, voName := range vo.Grid3VOs {
		st := g.Stats(voName)
		terminal := st.Completed + st.ExecFailures + st.StageOutFailures + st.SRMDeferred
		if terminal > st.Submitted {
			t.Errorf("%s: terminal outcomes %d exceed submissions %d", voName, terminal, st.Submitted)
		}
		// Attempt failures can exceed job-level failures (retries) but a
		// completed or exec-failed job accounts for ≥0 attempt failures.
		if st.AttemptFailures < st.ExecFailures {
			t.Errorf("%s: attempt failures %d < exec failures %d", voName, st.AttemptFailures, st.ExecFailures)
		}

		class, _ := apps.ClassByVO(classes, voName)
		archive := g.Nodes[ArchiveSiteFor(voName)]
		if class.OutputBytes > 0 && archive != nil {
			// Every end-to-end completion registered exactly one LFN at
			// the archive (tape migration removes disk copies, never the
			// catalog entries).
			if got := archive.LRC.Len(); got != st.Completed {
				t.Errorf("%s: archive LRC has %d entries, completed %d", voName, got, st.Completed)
			}
		}
	}

	// ACDC saw at least every completed grid job (plus failed attempts),
	// and none of the local background load.
	totalCompleted := 0
	for _, voName := range vo.Grid3VOs {
		totalCompleted += g.Stats(voName).Completed
	}
	if g.ACDC.Len() < totalCompleted {
		t.Errorf("ACDC records %d < completed %d", g.ACDC.Len(), totalCompleted)
	}
	for _, r := range g.ACDC.Records() {
		if r.VO == LocalVO {
			t.Fatal("local job in ACDC warehouse")
		}
	}
}

// TestSC2003SurgePeak: the demonstration-week surge produces a higher
// concurrency peak than the same workload without it, while monthly job
// totals stay calibrated (the surge compresses, it does not inflate).
func TestSC2003SurgePeak(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run in -short mode")
	}
	run := func(surge bool) (peak int, jobs int) {
		classes := apps.Grid3Classes()
		if !surge {
			for i := range classes {
				classes[i].SurgeFactor = 1 // explicit: no surge
			}
		}
		s, err := NewScenario(ScenarioConfig{
			Config:          Config{Seed: 19},
			Horizon:         35 * 24 * time.Hour,
			JobScale:        0.05,
			Classes:         classes,
			DisableFailures: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		return s.Grid.PeakRunning(), s.SubmittedTotal()
	}
	surgePeak, surgeJobs := run(true)
	flatPeak, flatJobs := run(false)
	if surgePeak <= flatPeak {
		t.Fatalf("surge peak %d <= flat peak %d", surgePeak, flatPeak)
	}
	// Totals stay within a few percent of each other.
	ratio := float64(surgeJobs) / float64(flatJobs)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("surge changed totals: %d vs %d", surgeJobs, flatJobs)
	}
}
