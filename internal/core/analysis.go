package core

import (
	"fmt"
	"time"

	"grid3/internal/condorg"
	"grid3/internal/dial"
	"grid3/internal/gram"
)

// This file wires DIAL (§4.1/§6.1) into the grid: production feeds the
// dataset catalog as outputs are archived; analyses split into grid jobs
// that run where the data lives.

// gridDialRunner executes DIAL sub-jobs as grid jobs at the dataset's
// archive site, then evaluates the task's Process over the sub-job's
// files to produce the partial histogram.
type gridDialRunner struct {
	g       *Grid
	voName  string
	user    string
	site    string        // execution site (the archive, where data lives)
	perFile time.Duration // CPU cost per analyzed file
}

// RunSubJob implements dial.Runner.
func (r *gridDialRunner) RunSubJob(task *dial.Task, job dial.SubJob, done func(*dial.Histogram, error)) {
	runtime := time.Duration(len(job.Files)) * r.perFile
	if runtime < time.Minute {
		runtime = time.Minute
	}
	r.g.seq++
	gj := &condorg.GridJob{
		ID:         fmt.Sprintf("dial-%s-%d-%08d", task.Name, job.Index, r.g.seq),
		TargetSite: r.site,
		MaxRetries: 1,
		Spec: gram.Spec{
			Subject:       r.user,
			VO:            r.voName,
			Executable:    "dial/" + task.Name,
			Walltime:      runtime*2 + time.Hour,
			Runtime:       runtime,
			StagingFactor: 2,
		},
		OnDone: func(_ *condorg.GridJob, err error) {
			if err != nil {
				done(nil, err)
				return
			}
			merged := &dial.Histogram{}
			for i, lfn := range job.Files {
				var bytes int64
				if i < len(job.Sizes) {
					bytes = job.Sizes[i]
				}
				h, perr := task.Process(lfn, bytes)
				if perr != nil {
					done(nil, perr)
					return
				}
				merged.Merge(h)
			}
			done(merged, nil)
		},
	}
	sch, ok := r.g.Schedds[r.voName]
	if !ok {
		done(nil, fmt.Errorf("core: no schedd for VO %s", r.voName))
		return
	}
	if err := sch.Submit(gj); err != nil {
		done(nil, err)
	}
}

// AnalyzeDataset runs a DIAL task over a cataloged dataset as grid jobs at
// the VO's archive site (where production registered the files). onDone
// fires when every sub-job has reported; perFile is the analysis CPU cost
// per file.
func (g *Grid) AnalyzeDataset(voName, user, dsName string, task *dial.Task, perFile time.Duration, onDone func(dial.Result)) error {
	runner := &gridDialRunner{
		g: g, voName: voName, user: user,
		site:    ArchiveSiteFor(voName),
		perFile: perFile,
	}
	return dial.Analyze(g.DIAL, dsName, task, runner, onDone)
}
