package core

import (
	"math"
	"testing"
	"time"

	"grid3/internal/ingest"
	"grid3/internal/vo"
)

// ingestScenario runs one short scenario with the given ingest batching
// config and returns it finished.
func ingestScenario(t *testing.T, batch int) *Scenario {
	t.Helper()
	s, err := NewScenario(ScenarioConfig{
		Config:   Config{Seed: 5, IngestBatch: batch},
		Horizon:  15 * 24 * time.Hour,
		JobScale: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	return s
}

// TestIngestBatchingEquivalence checks the tentpole determinism claim at
// the scenario level: a run with the monitoring path batched is
// indistinguishable from the per-event run across job accounting,
// figures, and the full monitoring repository contents.
func TestIngestBatchingEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run in -short mode")
	}
	ref := ingestScenario(t, 0)
	bat := ingestScenario(t, 64)

	if a, b := ref.SubmittedTotal(), bat.SubmittedTotal(); a != b {
		t.Fatalf("submitted %d != %d", b, a)
	}
	if a, b := ref.Grid.ACDC.Len(), bat.Grid.ACDC.Len(); a != b {
		t.Fatalf("ACDC records %d != %d", b, a)
	}
	f1, f2 := ref.Figure2(), bat.Figure2()
	for k, v := range f1 {
		if math.Abs(f2[k]-v) > 1e-9 {
			t.Fatalf("figure2[%s] differs: %v vs %v", k, f2[k], v)
		}
	}
	// The repository must hold exactly the same series with the same
	// latest samples (reads drain the batcher first).
	sr, sb := ref.Grid.Repo.Series(), bat.Grid.Repo.Series()
	if len(sr) != len(sb) {
		t.Fatalf("series count %d != %d", len(sb), len(sr))
	}
	for i, key := range sr {
		if sb[i] != key {
			t.Fatalf("series[%d] %q != %q", i, sb[i], key)
		}
	}
	for _, voName := range vo.Grid3VOs {
		a := ref.Grid.Stats(voName)
		b := bat.Grid.Stats(voName)
		if a.Completed != b.Completed || a.AttemptFailures != b.AttemptFailures {
			t.Fatalf("%s stats differ: %+v vs %+v", voName, b, a)
		}
	}
	// The batcher actually did something.
	m, gh, ac := bat.Grid.IngestStats()
	if m.Events == 0 || m.Batches == 0 {
		t.Fatalf("metric batcher idle: %+v", m)
	}
	if gh.Events == 0 || ac.Events == 0 {
		t.Fatalf("ganglia/acdc batchers idle: %+v %+v", gh, ac)
	}
	if m.Shed != 0 || gh.Shed != 0 || ac.Shed != 0 {
		t.Fatalf("Block policy shed events: %+v %+v %+v", m, gh, ac)
	}
	if ref.Grid.Ledger != nil {
		t.Fatal("per-event run grew a ledger")
	}
}

// TestUsageLedgerAccounting checks the ledger side: window deltas sum
// back to the run's cumulative per-VO totals, and every record proves
// against its window root.
func TestUsageLedgerAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run in -short mode")
	}
	s := ingestScenario(t, 128)
	g := s.Grid
	led := g.Ledger
	if led == nil || led.Len() == 0 {
		t.Fatal("no sealed ledger windows")
	}

	sums := map[string]*ingest.UsageRecord{}
	for _, w := range led.Windows() {
		if len(w.Records) != len(vo.Grid3VOs) {
			t.Fatalf("window %d has %d records, want one per VO", w.Index, len(w.Records))
		}
		if w.Root != ingest.Root(w.Records) {
			t.Fatalf("window %d root mismatch", w.Index)
		}
		for _, r := range w.Records {
			agg := sums[r.VO]
			if agg == nil {
				agg = &ingest.UsageRecord{VO: r.VO}
				sums[r.VO] = agg
			}
			agg.Jobs += r.Jobs
			agg.CPUSeconds += r.CPUSeconds
			agg.Bytes += r.Bytes
		}
	}
	cpu := g.ACDC.CPUSecondsByVO()
	moved := g.Network.BytesByLabel()
	for _, voName := range vo.Grid3VOs {
		agg := sums[voName]
		if agg == nil {
			t.Fatalf("no records for %s", voName)
		}
		if want := uint64(g.Stats(voName).Completed); agg.Jobs != want {
			t.Fatalf("%s: ledger jobs %d != stats %d", voName, agg.Jobs, want)
		}
		if agg.CPUSeconds != cpu[voName] {
			t.Fatalf("%s: ledger cpu %d != acdc %d", voName, agg.CPUSeconds, cpu[voName])
		}
		if want := uint64(moved[voName]); agg.Bytes != want {
			t.Fatalf("%s: ledger bytes %d != gridftp %d", voName, agg.Bytes, want)
		}
	}

	// Every (window, VO) pair yields a verifiable inclusion proof, and
	// the proof survives its wire round trip.
	for _, w := range led.Windows() {
		for _, voName := range vo.Grid3VOs {
			p, err := led.Prove(w.Index, voName)
			if err != nil {
				t.Fatalf("prove %d/%s: %v", w.Index, voName, err)
			}
			if !ingest.Verify(w.Root, p) {
				t.Fatalf("proof %d/%s does not verify", w.Index, voName)
			}
			dec, err := ingest.DecodeProof(ingest.EncodeProof(p))
			if err != nil {
				t.Fatalf("decode %d/%s: %v", w.Index, voName, err)
			}
			if !ingest.Verify(w.Root, dec) {
				t.Fatalf("decoded proof %d/%s does not verify", w.Index, voName)
			}
		}
	}

	// FinishIngest is idempotent: calling it again must not grow the
	// ledger or change counters.
	n := led.Len()
	g.FinishIngest()
	if led.Len() != n {
		t.Fatalf("second FinishIngest grew ledger %d -> %d", n, led.Len())
	}
}
