package core

import (
	"testing"
	"time"

	"grid3/internal/chimera"
	"grid3/internal/dagman"
	"grid3/internal/pegasus"
	"grid3/internal/vo"
)

// ligoish builds a two-step staged workflow catalog.
func ligoish(t *testing.T) *chimera.Catalog {
	t.Helper()
	cat := chimera.NewCatalog()
	if err := cat.AddTR(&chimera.Transformation{
		Name: "search", MeanRuntime: 2 * time.Hour, Walltime: 8 * time.Hour,
		StagingFactor: 4, OutputBytes: 10 << 20, RequiresApp: "ligo-pulsar-2.1",
	}); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddDV(&chimera.Derivation{
		ID: "s1", TR: "search",
		Inputs:  []string{"lfn:sft-1"},
		Outputs: []string{"lfn:cand-1"},
	}); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestSeedFileAndPlanner(t *testing.T) {
	g, err := New(Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SeedFile("UWMilwaukee_LSC", "lfn:sft-1", 4<<30); err != nil {
		t.Fatal(err)
	}
	if err := g.SeedFile("NoSuchSite", "lfn:x", 1); err == nil {
		t.Fatal("seed at unknown site succeeded")
	}
	sites := g.RLI.Sites("lfn:sft-1")
	if len(sites) != 1 || sites[0] != "UWMilwaukee_LSC" {
		t.Fatalf("RLS sites = %v", sites)
	}
	p := g.PlannerFor(vo.LIGO, pegasus.VOAffinity)
	if got := p.InputBytes("lfn:sft-1"); got != 4<<30 {
		t.Fatalf("InputBytes = %d", got)
	}
	if p.ArchiveSite != "UWMilwaukee_LSC" {
		t.Fatalf("archive = %s", p.ArchiveSite)
	}
	// The planner's MDS view covers every site with apps populated.
	infos := p.Sites()
	if len(infos) != 27 {
		t.Fatalf("site infos = %d", len(infos))
	}
	foundApp := false
	for _, info := range infos {
		if info.Apps["ligo-pulsar-2.1"] {
			foundApp = true
		}
	}
	if !foundApp {
		t.Fatal("no site advertises the LIGO release via MDS")
	}
}

func TestRunWorkflowEndToEnd(t *testing.T) {
	g, err := New(Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SeedFile("UWMilwaukee_LSC", "lfn:sft-1", 4<<30); err != nil {
		t.Fatal(err)
	}
	cat := ligoish(t)
	abstract, err := cat.Plan("lfn:cand-1")
	if err != nil {
		t.Fatal(err)
	}
	concrete, err := g.PlannerFor(vo.LIGO, pegasus.LoadBalanced).Plan(abstract, vo.LIGO)
	if err != nil {
		t.Fatal(err)
	}
	var result dagman.Result
	wf, err := g.RunWorkflow(concrete, vo.LIGO,
		"/DC=org/DC=doegrids/OU=People/CN=ligo user 00",
		func(r dagman.Result) { result = r })
	if err != nil {
		t.Fatal(err)
	}
	g.Eng.RunUntil(48 * time.Hour)
	if !result.Succeeded() {
		t.Fatalf("workflow result = %+v", result)
	}
	execSite := wf.JobSites["compute_s1"]
	if execSite == "" {
		t.Fatal("compute site not recorded")
	}
	// The product is registered and locatable.
	if got := g.RLI.Sites("lfn:cand-1"); len(got) == 0 {
		t.Fatal("output not in RLS")
	}
	// If execution happened away from the data, staging moved ~4 GB.
	if execSite != "UWMilwaukee_LSC" {
		var bytes int64
		for _, h := range g.Network.History() {
			bytes += h.Bytes
		}
		if bytes < 4<<30 {
			t.Fatalf("stage-in volume = %d", bytes)
		}
	}
}

func TestRunWorkflowUnknownVO(t *testing.T) {
	g, _ := New(Config{Seed: 9})
	cdag := &pegasus.ConcreteDAG{Jobs: map[string]*pegasus.ConcreteJob{}}
	if _, err := g.RunWorkflow(cdag, "nope", "/CN=x", func(dagman.Result) {}); err == nil {
		t.Fatal("unknown VO accepted")
	}
}

func TestRunWorkflowMissingInputFails(t *testing.T) {
	g, _ := New(Config{Seed: 9})
	cat := ligoish(t)
	abstract, _ := cat.Plan("lfn:cand-1")
	// No seed: planning must fail on the missing replica.
	if _, err := g.PlannerFor(vo.LIGO, pegasus.VOAffinity).Plan(abstract, vo.LIGO); err == nil {
		t.Fatal("plan without input replica succeeded")
	}
}
