package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"time"

	"grid3/internal/acdc"
	"grid3/internal/apps"
	"grid3/internal/batch"
	"grid3/internal/classad"
	"grid3/internal/condorg"
	"grid3/internal/dial"
	"grid3/internal/dist"
	"grid3/internal/ganglia"
	"grid3/internal/glue"
	"grid3/internal/goc"
	"grid3/internal/gram"
	"grid3/internal/gridftp"
	"grid3/internal/gsi"
	"grid3/internal/health"
	"grid3/internal/ingest"
	"grid3/internal/intern"
	"grid3/internal/mds"
	"grid3/internal/monalisa"
	"grid3/internal/obs"
	"grid3/internal/pacman"
	"grid3/internal/rls"
	"grid3/internal/sim"
	"grid3/internal/site"
	"grid3/internal/sitecatalog"
	"grid3/internal/srm"
	"grid3/internal/vdt"
	"grid3/internal/vo"
)

// Config tunes a Grid3 instance.
type Config struct {
	// Seed drives all randomness; same seed, same scenario.
	Seed int64
	// Sites is the site catalog; nil means Grid3Sites() (or a generated
	// testbed when TestbedSites is set).
	Sites []SiteSpec
	// TestbedSites, when positive and Sites is nil, builds the catalog
	// with ScaledSites(TestbedSites, Seed): the historical 27 sites up to
	// N=27, catalog plus synthetic sites beyond.
	TestbedSites int
	// MonitorInterval paces Ganglia/MonALISA collection (default 30 m —
	// production used 5 m, but scenario runs consolidate identically).
	MonitorInterval time.Duration
	// NegotiationInterval paces Condor-G matchmaking (default 15 m).
	NegotiationInterval time.Duration
	// UseSRM routes stage-out through SRM space reservations (§8 lesson;
	// off reproduces the paper's raw-GridFTP disk-full failures).
	UseSRM bool
	// DisableAffinity strips site pinning from workloads (the ABL-FED
	// ablation: uniform matchmaking vs favorite resources).
	DisableAffinity bool
	// EnableObservability turns on job-lifecycle tracing and the metrics
	// registry. Off by default: the observability layer publishes registry
	// totals through an extra MonALISA station, so enabling it changes the
	// engine's processed-event count (never the scheduling of sim logic).
	EnableObservability bool
	// EnableHealth arms the health monitor: per-site, per-service circuit
	// breakers fed by periodic probes, with iGOC tickets opened and resolved
	// on breaker transitions. Probes are read-only; scheduling and data
	// paths are unaffected unless EnableRecovery is also set.
	EnableHealth bool
	// EnableRecovery closes the fault-management loop (implies
	// EnableHealth): matchmaking and Pegasus planning skip sites with open
	// breakers, Condor-G steers retries away from sites that already failed
	// a job, stage-in/out transfers get bounded delayed retries, and
	// workflow transfers fail over to alternate RLS replicas. Strictly
	// opt-in: with this off, job routing is byte-identical to a grid built
	// without the health subsystem.
	EnableRecovery bool
	// TransferDoors bounds concurrent GridFTP flows per endpoint, queueing
	// the excess FIFO until a door frees (the gatekeeper-overload analog
	// for data movement). 0 keeps the historical unbounded WAN.
	TransferDoors int
	// EnableReplicaRanking makes Pegasus stage-in pick its replica source
	// by live WAN state — door occupancy, queue depth, allocated bandwidth
	// — instead of the first sorted site. Strictly opt-in.
	EnableReplicaRanking bool
	// EnableStorageCleanup arms the SRM lifecycle loop at every site:
	// stage-out outputs are pinned for a grace period and a periodic sweep
	// evicts unpinned staged files (retracting their LRC entries) whenever
	// free space falls below CleanupWatermark. Strictly opt-in.
	EnableStorageCleanup bool
	// CleanupWatermark is the Free()/Capacity() fraction below which the
	// cleanup sweep evicts (default 0.15).
	CleanupWatermark float64
	// Shards partitions the testbed into that many regions (contiguous
	// bands of the dense site-ID space) and evaluates the per-region pure
	// phases — the Condor-G candidate scans — on one worker goroutine per
	// region. The engine's event order, and therefore every run's output,
	// is bit-identical to the serial run at any shard count: regions only
	// parallelize work whose inputs partition by region, and all mutation
	// stays on the hub goroutine. 0 or 1 keeps the serial path with no
	// worker goroutines at all.
	Shards int
	// IngestBatch, when positive, routes the monitoring path — MonALISA
	// stations and the obs bridge into the central repository, Ganglia
	// gmetad history writes, ACDC warehouse pulls — through windowed
	// batchers with that many events per batch, and arms the per-VO
	// Merkle usage ledger sealed once per IngestWindow. The batchers are
	// passive (no engine events, no RNG) and every read drains staged
	// batches first, so batched runs stay byte-identical to per-event
	// runs. 0 keeps the historical per-event delivery and no ledger.
	IngestBatch int
	// IngestWindow is the batching/audit window: a batch also seals when
	// an event arrives in a later window, and the ledger seals one Merkle
	// root of per-VO usage deltas per window. Defaults to MonitorInterval
	// when IngestBatch is set.
	IngestWindow time.Duration
}

func (c *Config) defaults() {
	if c.Sites == nil {
		if c.TestbedSites > 0 {
			c.Sites = ScaledSites(c.TestbedSites, c.Seed)
		} else {
			c.Sites = Grid3Sites()
		}
	}
	if c.MonitorInterval <= 0 {
		c.MonitorInterval = 30 * time.Minute
	}
	if c.NegotiationInterval <= 0 {
		c.NegotiationInterval = 15 * time.Minute
	}
	if c.EnableRecovery {
		c.EnableHealth = true
	}
	if c.CleanupWatermark <= 0 {
		c.CleanupWatermark = 0.15
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.IngestBatch > 0 && c.IngestWindow <= 0 {
		c.IngestWindow = c.MonitorInterval
	}
}

// Node bundles one site's full service stack.
type Node struct {
	// ID is the site's dense interned identifier (ascending in sorted
	// site-name order); hot paths index by it instead of hashing Spec.Name.
	ID         intern.ID
	Spec       SiteSpec
	Site       *site.Site
	Batch      *batch.System
	Gatekeeper *gram.Gatekeeper
	Gridmap    *gsi.Gridmap
	LRC        *rls.LRC
	SRM        *srm.Manager
	GRIS       *mds.GRIS
	Gmetad     *ganglia.Gmetad
	Station    *monalisa.Station

	archQueue []string // archive-file FIFO for tape-migration cleanup
	archBytes int64    // bytes held by archived outputs (not scratch)

	// adCache memoizes the CE ClassAd for a short virtual interval,
	// mirroring a real Condor collector's refresh period: matchmaking
	// sees at-most-minutes-stale resource state instead of rebuilding
	// the ad for every (job, resource) pair.
	adCache   *classad.Ad
	adCacheAt time.Duration
	adCacheOK bool
}

// adTTL is how long a cached CE ad stays fresh (the collector update
// interval of the era).
const adTTL = 5 * time.Minute

// VOStats tracks end-to-end outcomes per VO (the §7 efficiency metric,
// which counts every step: execution, stage-out, registration).
type VOStats struct {
	Submitted        int
	Completed        int
	ExecFailures     int // jobs lost for good after Condor-G retries
	AttemptFailures  int // individual failed attempts, incl. retried ones
	StageOutFailures int // disk-full on archive (the §8 failure class)
	SRMDeferred      int // submissions deferred by denied reservations
	WastedCPU        time.Duration
}

// Efficiency returns attempt-level success, the §6.1 definition: "failures
// are defined as jobs experiencing errors in any processing step that
// prevented perfect completion" — a retried attempt still counts against
// efficiency.
func (s VOStats) Efficiency() float64 {
	total := s.Completed + s.AttemptFailures + s.StageOutFailures
	if total == 0 {
		return 0
	}
	return float64(s.Completed) / float64(total)
}

// Grid is a fully assembled Grid3 instance.
type Grid struct {
	Eng *sim.Engine
	RNG *dist.RNG
	Cfg Config

	CA       *gsi.CA
	Registry *vo.Registry
	Nodes    map[string]*Node
	Order    []string
	// SiteIDs interns site names in sorted-name order, so ascending-ID
	// iteration over nodeList reproduces the historical sorted-string
	// sweeps exactly. nodeList[id] is the node whose Node.ID == id.
	SiteIDs  *intern.Table
	nodeList []*Node
	// Regions partitions the dense ID space into Config.Shards contiguous
	// regions; evalPool holds one worker per region (nil when serial).
	Regions  intern.RegionIndex
	evalPool *sim.EvalPool
	Network  *gridftp.Network
	RLI      *rls.RLI
	TopGIIS  *mds.GIIS
	VOGIIS   map[string]*mds.GIIS
	Repo     *monalisa.Repository
	Ganglia  *ganglia.Grid
	Catalog  *sitecatalog.Catalog
	Desk     *goc.Desk
	ACDC     *acdc.Monitor
	AUP      *goc.AUP
	Cache    *pacman.Cache
	DIAL     *dial.Catalog
	Schedds  map[string]*condorg.Schedd

	// Obs is the grid's tracer + metrics registry; nil unless
	// Config.EnableObservability is set.
	Obs *obs.Observer

	// Health is the circuit-breaker monitor; nil unless Config.EnableHealth
	// (or EnableRecovery) is set. Every consumer tolerates nil.
	Health *health.Monitor

	// Ledger is the Merkle-audited per-VO usage ledger; nil unless
	// Config.IngestBatch is set. See ingest.go for the batching pipeline
	// that drives its window seals.
	Ledger *ingest.Ledger

	// Ingestion batchers (Config.IngestBatch > 0), all nil when off.
	ingestMetrics *ingest.Batcher[monalisa.Metric]
	ingestGanglia *ingest.Batcher[gmetadSample]
	ingestACDC    *ingest.Batcher[acdc.JobRecord]
	usagePrev     map[string]usageTotals
	lastSealed    int64

	// Shared per-subsystem instrument bundles, nil when observability is
	// off (every instrumented call site tolerates nil).
	batchIns  *batch.Instruments
	gramIns   *gram.Instruments
	condorIns *condorg.Instruments
	healthIns *health.Instruments

	// opsRNG drives iGOC effort bookkeeping for breaker tickets; retryRNG
	// jitters stage-in/out retry delays. Both are private streams derived
	// from the seed so the recovery loop never perturbs g.RNG.
	opsRNG   *dist.RNG
	retryRNG *dist.RNG
	// healthTickets maps a degraded site to its open breaker ticket;
	// resolvedTickets remembers the last resolved one so a repeat failure
	// reopens it instead of opening a fresh ticket.
	healthTickets   map[string]int
	resolvedTickets map[string]int

	stats map[string]*VOStats
	seq   int64

	// maxWallByVO caches maxWallFor: site walltime policies and the VO
	// support matrix are fixed at construction, and rescanning every site
	// per submission is the kind of linear cost that only shows up at
	// 1000-site scale.
	maxWallByVO map[string]time.Duration

	// Concurrency sampling for the §7 peak-jobs and utilization metrics.
	peakRunning    int
	runningSamples int64
	runningSum     int64
	capacitySum    int64
}

// New assembles a Grid3 instance: CA and VOMS servers, 27 sites with their
// full middleware stacks, the WAN, central services, and per-VO Condor-G
// schedds. It performs the §5.1 Pacman/VDT install and certification at
// every site.
func New(cfg Config) (*Grid, error) {
	cfg.defaults()
	g := &Grid{
		Eng:     sim.NewEngine(sim.Grid3Epoch),
		RNG:     dist.New(cfg.Seed),
		Cfg:     cfg,
		Nodes:   make(map[string]*Node),
		Schedds: make(map[string]*condorg.Schedd),
		stats:   make(map[string]*VOStats),
	}
	if cfg.EnableObservability {
		g.Obs = obs.New(g.Eng.Now)
		g.batchIns = batch.NewInstruments(g.Obs)
		g.gramIns = gram.NewInstruments(g.Obs)
		g.condorIns = condorg.NewInstruments(g.Obs)
	}

	// --- Security fabric.
	ca, err := gsi.NewCA("/DC=org/DC=DOEGrids/OU=Certificate Authorities/CN=DOEGrids CA 1",
		sim.Grid3Epoch.Add(-365*24*time.Hour), 10*365*24*time.Hour)
	if err != nil {
		return nil, fmt.Errorf("core: creating CA: %w", err)
	}
	g.CA = ca

	// --- VOMS servers with the Table 1 user populations.
	g.Registry = vo.NewRegistry()
	classes := apps.Grid3Classes()
	for _, voName := range vo.Grid3VOs {
		cred, err := ca.Issue("/DC=org/DC=DOEGrids/OU=Services/CN=voms/"+voName+".grid3.org",
			sim.Grid3Epoch.Add(-24*time.Hour), 2*365*24*time.Hour)
		if err != nil {
			return nil, err
		}
		server := vo.NewVOMS(voName, cred)
		if class, ok := apps.ClassByVO(classes, voName); ok {
			for i, dn := range class.UserDNs() {
				roles := []vo.Role{}
				if i == 0 {
					roles = append(roles, vo.RoleProduction, vo.RoleSoftware)
				}
				if err := server.Add(dn, fmt.Sprintf("%s user %d", voName, i), roles...); err != nil {
					return nil, err
				}
			}
		}
		// Application administrators (~10% of users ran most jobs, §7).
		server.Add(fmt.Sprintf("/DC=org/DC=DOEGrids/OU=People/CN=%s admin", voName),
			voName+" admin", vo.RoleProduction, vo.RoleAdmin)
		g.Registry.Add(server)
	}
	g.AUP = goc.NewAUP(vo.Grid3VOs...)

	// --- Shared fabric and central services.
	g.Network = gridftp.NewNetwork(g.Eng)
	g.Network.Ins = gridftp.NewInstruments(g.Obs)
	g.Network.DefaultDoors = cfg.TransferDoors
	g.RLI = rls.NewRLI(g.Eng)
	g.TopGIIS = mds.NewGIIS("igoc-giis", g.Eng)
	// §5: "registration to a VO-level set of services such as index
	// servers" — per-VO GIISes provide each VO's view of its resources;
	// sites also register directly with the iGOC top-level index, which
	// therefore holds each site exactly once.
	g.VOGIIS = make(map[string]*mds.GIIS)
	for _, voName := range vo.Grid3VOs {
		g.VOGIIS[voName] = mds.NewGIIS(voName+"-giis", g.Eng)
	}
	g.Repo = monalisa.NewRepository(g.Eng)
	g.Ganglia = ganglia.NewGrid()
	g.Catalog = sitecatalog.New(g.Eng, 15*time.Minute)
	g.Desk = goc.NewDesk(g.Eng)
	g.ACDC = acdc.New(g.Eng, sim.Grid3Epoch, 6*time.Hour)
	g.ACDC.Ignore = map[string]bool{LocalVO: true}
	g.Cache = vdt.Grid3Cache()
	g.DIAL = dial.NewCatalog()

	// --- Ingestion batching + usage ledger (before sites: stations wire
	// their forward sinks in addSite).
	if cfg.IngestBatch > 0 {
		g.setupIngest()
	}

	// --- Sites.
	for _, spec := range cfg.Sites {
		if err := g.addSite(spec); err != nil {
			return nil, fmt.Errorf("core: site %s: %w", spec.Name, err)
		}
	}
	// Freeze the catalog into dense IDs: sort once (addSite only appends),
	// intern names in sorted order, and build the ID-indexed node list the
	// hot loops iterate instead of Order+map lookups.
	sort.Strings(g.Order)
	g.SiteIDs = intern.FromSorted(g.Order)
	g.nodeList = make([]*Node, len(g.Order))
	for i, name := range g.Order {
		n := g.Nodes[name]
		n.ID = intern.ID(i)
		g.nodeList[i] = n
	}
	// Region partition over the frozen ID space. A pure function of
	// (sites, shards): every component that needs a site's region derives
	// it from the same index, so there is exactly one notion of "region".
	g.Regions = intern.Regions(len(g.Order), cfg.Shards)
	if g.Regions.Shards() > 1 {
		g.evalPool = sim.NewEvalPool(g.Regions.Shards())
	}

	// --- Health monitor: one breaker per (site, service), probing the same
	// three services the Site Status Catalog checks. Built before the
	// schedds so matchmaking can consult it.
	if cfg.EnableHealth {
		g.healthIns = health.NewInstruments(g.Obs)
		g.Health = health.NewMonitor(g.Eng, dist.New(cfg.Seed^healthSeedSalt), health.Config{}, g.healthIns)
		for _, n := range g.nodeList {
			st := n.Site
			siteName := n.Spec.Name
			g.Health.Register(siteName, health.GRAM, func() error {
				if !st.Healthy() {
					return errGatekeeperDown
				}
				return nil
			})
			g.Health.Register(siteName, health.GridFTP, func() error {
				ep, err := g.Network.Endpoint(siteName)
				if err != nil || !ep.Up() {
					return errGridFTPDown
				}
				return nil
			})
			g.Health.Register(siteName, health.SRM, func() error {
				if st.Disk.Free() <= 0 {
					return errStorageFull
				}
				return nil
			})
		}
		g.opsRNG = dist.New(cfg.Seed ^ opsSeedSalt)
		g.retryRNG = dist.New(cfg.Seed ^ retrySeedSalt)
		g.healthTickets = make(map[string]int)
		g.resolvedTickets = make(map[string]int)
		g.Health.OnTransition = g.healthTransition
		g.Health.Start()
	}

	// --- Per-VO Condor-G schedds.
	for _, voName := range vo.Grid3VOs {
		sch := condorg.New(g.Eng, cfg.NegotiationInterval)
		sch.MaxMatchesPerCycle = 2000
		sch.Ins = g.condorIns
		// Seeded retry-backoff jitter, one private stream per schedd so a
		// VO's resubmission bursts desynchronize (§6.4 load lesson) without
		// touching the master RNG.
		sch.BackoffJitter = dist.New(cfg.Seed ^ voSeedSalt(voName))
		if cfg.EnableRecovery {
			sch.Exclude = func(site string) bool {
				return !g.Health.Allow(site, health.GRAM)
			}
			sch.AvoidFailedSites = true
		}
		// Each schedd only ever sees the VO-authorized shard of the grid:
		// AddResource in sorted-site order so candidate scans reproduce the
		// historical iteration exactly.
		for _, n := range g.nodeList {
			if !n.Site.SupportsVO(voName) {
				continue
			}
			node := n
			res := &condorg.Resource{
				Name:         n.Spec.Name,
				Gatekeeper:   n.Gatekeeper,
				Region:       g.Regions.Of(n.ID),
				MaxSubmitted: 2 * n.Batch.Slots(),
				AdFunc:       func() *classad.Ad { return g.ceAd(node) },
			}
			if cfg.EnableRecovery {
				// Per-resource breaker handle: one map lookup at wiring
				// time instead of one per (job, resource) per cycle.
				h := g.Health.HandleFor(n.Spec.Name)
				res.Excluded = func() bool { return !h.Allow(health.GRAM) }
			}
			sch.AddResource(res)
		}
		if g.evalPool != nil {
			sch.SetParallel(g.evalPool, g.Regions.Shards())
		}
		g.Schedds[voName] = sch
		g.stats[voName] = &VOStats{}
	}

	// --- MonALISA bridge: an iGOC-side station publishing the registry's
	// counter totals into the central repository, so observability data
	// shows up alongside the per-site job and load series.
	if g.Obs != nil {
		station := monalisa.NewStation(g.Eng, "igoc-obs", cfg.MonitorInterval)
		station.AddAgent(monalisa.AgentFunc(func() []monalisa.Metric {
			snap := g.Obs.Metrics.Snapshot()
			out := make([]monalisa.Metric, 0, len(snap.Counters))
			for _, c := range snap.Counters {
				out = append(out, monalisa.Metric{Param: "obs." + c.Name, Value: float64(c.Value)})
			}
			return out
		}))
		station.Forward(g.metricSink())
	}

	// --- Housekeeping: prune terminal gram jobs, migrate archive files.
	sim.NewTicker(g.Eng, 6*time.Hour, func() {
		for _, n := range g.nodeList {
			n.Gatekeeper.PruneTerminal()
			g.migrateToTape(n)
		}
	})
	// Concurrency sampling for milestones.
	sim.NewTicker(g.Eng, 10*time.Minute, g.sampleConcurrency)

	// RLS soft-state republication: every LRC refreshes its RLI
	// publication well inside the 24 h TTL.
	sim.NewTicker(g.Eng, 6*time.Hour, g.PublishRLS)

	// §5.3: grid-mapfiles are regenerated periodically "by calling an EDG
	// script to contact each VO's VOMS server", so membership changes
	// propagate to every gatekeeper within a cycle.
	sim.NewTicker(g.Eng, 6*time.Hour, g.RefreshGridmaps)

	// iGOC operations: the desk reconciles against the Site Status
	// Catalog — a failing site gets a trouble ticket; recovery resolves
	// it with logged effort. This feeds the §7 support-load metric
	// (target <2 FTEs once the infrastructure stabilized).
	openTickets := make(map[string]int)
	sim.NewTicker(g.Eng, time.Hour, func() {
		for _, entry := range g.Catalog.Entries() {
			name := entry.SiteName
			ticketID, open := openTickets[name]
			switch {
			case entry.Status() == sitecatalog.Fail && !open:
				tk := g.Desk.Open(name, g.Nodes[name].Spec.OwnerVO, entry.LastError(), goc.High)
				g.Desk.Assign(tk.ID, name+"-admin")
				openTickets[name] = tk.ID
			case entry.Status() == sitecatalog.Pass && open:
				g.Desk.Resolve(ticketID, g.RNG.Uniform(0.5, 3))
				delete(openTickets, name)
			}
		}
	})

	// Local users on shared (non-dedicated) facilities: >60% of Grid3
	// CPUs were "both shared among Grid3 participants and available to
	// local users" (§7). Their load is what pushes measured utilization
	// into the paper's 40-70% band.
	g.armLocalLoad()

	return g, nil
}

// Probe sentinel errors. The health monitor and the Site Status Catalog
// run these probes every sweep for every site; at 1000-site scale the
// errors.New per failing probe was a steady allocation source, and the
// messages are fixed strings anyway.
var (
	errGatekeeperDown = errors.New("gatekeeper unreachable")
	errGridFTPDown    = errors.New("gridftp endpoint down")
	errStorageFull    = errors.New("storage full")
)

// Seed salts for the private RNG streams the fault-management loop uses.
// Deriving them from the master seed keeps runs reproducible while leaving
// g.RNG's draw sequence untouched by health features.
const (
	healthSeedSalt = 0x6865616c7468 // "health"
	opsSeedSalt    = 0x69676f63     // "igoc"
	retrySeedSalt  = 0x7265747279   // "retry"
)

// voSeedSalt derives a per-VO salt for the schedd backoff-jitter stream.
func voSeedSalt(voName string) int64 {
	h := fnv.New64a()
	h.Write([]byte(voName))
	return int64(h.Sum64())
}

// healthTransition is the iGOC side of the closed loop: breaker state
// changes annotate the Site Status Catalog's status page and drive trouble
// tickets. A site's first open breaker opens a ticket (reopening the prior
// one on a repeat failure); severity reflects blast radius — losing the
// gatekeeper or multiple services strands jobs grid-wide (High), a single
// degraded data service is Medium. When the last breaker recloses, the
// ticket resolves with logged effort.
func (g *Grid) healthTransition(tr health.Transition) {
	open := g.Health.OpenServices(tr.Site)
	note := ""
	if len(open) > 0 {
		names := make([]string, len(open))
		for i, svc := range open {
			names[i] = svc.String()
		}
		note = "breakers open: " + strings.Join(names, ",")
	}
	g.Catalog.SetNote(tr.Site, note)

	switch {
	case tr.To == health.Open:
		sev := goc.Medium
		if !g.Health.Allow(tr.Site, health.GRAM) || len(open) >= 2 {
			sev = goc.High
		}
		summary := fmt.Sprintf("breaker open: %s (%v)", tr.Service, tr.Err)
		if id, isOpen := g.healthTickets[tr.Site]; isOpen {
			// Already ticketed; escalate if the blast radius grew.
			if sev == goc.High {
				g.Desk.Escalate(id, sev)
			}
			return
		}
		if id, wasResolved := g.resolvedTickets[tr.Site]; wasResolved {
			if err := g.Desk.Reopen(id, summary, sev); err == nil {
				delete(g.resolvedTickets, tr.Site)
				g.healthTickets[tr.Site] = id
				return
			}
		}
		owner := ""
		if n := g.Nodes[tr.Site]; n != nil {
			owner = n.Spec.OwnerVO
		}
		tk := g.Desk.Open(tr.Site, owner, summary, sev)
		g.Desk.Assign(tk.ID, tr.Site+"-admin")
		g.healthTickets[tr.Site] = tk.ID
	case tr.To == health.Closed && len(open) == 0:
		if id, isOpen := g.healthTickets[tr.Site]; isOpen {
			g.Desk.Resolve(id, g.opsRNG.Uniform(0.5, 3))
			delete(g.healthTickets, tr.Site)
			g.resolvedTickets[tr.Site] = id
		}
	}
}

// RefreshGridmaps regenerates every site's grid-mapfile from the current
// VOMS membership (the edg-mkgridmap cron cycle of §5.3).
func (g *Grid) RefreshGridmaps() {
	for _, n := range g.nodeList {
		n.Gridmap.ReplaceAll(g.Registry.GenerateGridmap(n.Spec.Accounts))
	}
}

// LocalVO tags non-grid jobs submitted by a site's local users; they are
// excluded from ACDC's grid accounting but occupy CPUs.
const LocalVO = "local"

// armLocalLoad keeps each shared site's local occupancy near a
// site-specific target fraction.
func (g *Grid) armLocalLoad() {
	for _, n := range g.nodeList {
		if n.Spec.Dedicated {
			continue
		}
		node := n
		target := g.RNG.Uniform(0.45, 0.75)
		seq := 0
		outstanding := 0 // submitted but not yet finished
		// Long-lived local jobs model steady campus load without flooding
		// the event queue. Tracking *outstanding* (not just running) jobs
		// keeps the queue bounded when grid work saturates the site.
		sim.NewTicker(g.Eng, 2*time.Hour, func() {
			want := int(target * float64(node.Batch.Slots()))
			for i := outstanding; i < want; i++ {
				seq++
				runtime := g.RNG.ExpDuration(24 * time.Hour)
				if runtime > node.Spec.MaxWall-time.Hour {
					runtime = node.Spec.MaxWall - time.Hour
				}
				err := node.Batch.Submit(&batch.Job{
					ID:       fmt.Sprintf("local-%s-%d", node.Spec.Name, seq),
					VO:       LocalVO,
					Account:  "localusers",
					Runtime:  runtime,
					Walltime: runtime + time.Hour,
					OnDone:   func(*batch.Job) { outstanding-- },
				})
				if err == nil {
					outstanding++
				}
			}
		})
	}
}

// addSite constructs one site's full stack.
func (g *Grid) addSite(spec SiteSpec) error {
	st, err := site.New(spec.Config)
	if err != nil {
		return err
	}
	var policy batch.Policy
	enforce := true
	switch spec.LRMS {
	case glue.Condor:
		policy = batch.FairShare{}
		enforce = false
	case glue.LSF:
		policy = batch.Priority{}
	default:
		policy = batch.FIFO{}
	}
	bs := batch.New(g.Eng, batch.Config{
		Name: spec.Name, Slots: spec.CPUs, Policy: policy,
		EnforceWall: enforce, MaxWall: spec.MaxWall,
	})
	bs.Ins = g.batchIns
	gridmap := g.Registry.GenerateGridmap(spec.Accounts)
	gk := gram.New(g.Eng, st, bs, gridmap)
	gk.Ins = g.gramIns
	g.Network.AddEndpoint(spec.Name, spec.WANMbps)
	lrc := rls.NewLRC(spec.Name)
	srmMgr := srm.New(g.Eng, st.Disk)

	node := &Node{
		Spec: spec, Site: st, Batch: bs, Gatekeeper: gk,
		Gridmap: gridmap, LRC: lrc, SRM: srmMgr,
	}

	if g.Cfg.EnableStorageCleanup {
		// SRM lifecycle loop: the sweep evicts unpinned staged files when
		// the SE runs low, retracting each victim from the site catalog
		// (the RLI catches up through soft state) and returning its bytes
		// to the tape-migration budget.
		srmMgr.OnEvict = func(name string, size int64) {
			lrc.Drop(name)
			node.archBytes -= size
			if node.archBytes < 0 {
				node.archBytes = 0
			}
		}
		if err := srmMgr.EnableCleanup(cleanupInterval, g.Cfg.CleanupWatermark); err != nil {
			return err
		}
	}

	// §5.1: pacman -get Grid3, then the application releases for each VO
	// with a group account here, then certification.
	if err := vdt.InstallGrid3(g.Cache, st); err != nil {
		return err
	}
	for voName, pkg := range appPackages() {
		if st.SupportsVO(voName) {
			if _, err := pacman.Install(g.Cache, vdt.SiteTarget{Site: st}, pkg); err != nil {
				return err
			}
		}
	}
	cert := &vdt.Certification{SiteName: spec.Name, Checks: []vdt.Check{
		{Name: "gram-authenticate", Run: func() error {
			if gridmap.Len() == 0 {
				return errors.New("empty grid-mapfile")
			}
			return nil
		}},
		{Name: "grid3-install", Run: func() error {
			if !st.HasApp("grid3-" + vdt.Grid3Version) {
				return errors.New("grid3 package missing")
			}
			return nil
		}},
	}}
	if err := cert.Certify(); err != nil {
		return err
	}

	// MDS: a GRIS publishing the GLUE CE entry plus Grid3 extensions,
	// registered with the iGOC index under soft state.
	gris := mds.NewGRIS(spec.Name+"-gris", g.Eng)
	gris.AddProvider(mds.ProviderFunc{ID: "ce", Fn: func() []mds.Entry {
		return []mds.Entry{g.ceEntry(node)}
	}})
	// Each site registers with the GIIS of every VO it serves and with
	// the iGOC top-level index (§5.1 registration chain).
	for _, voName := range st.VOs() {
		if idx, ok := g.VOGIIS[voName]; ok {
			idx.Register(gris, 24*365*time.Hour)
		}
	}
	g.TopGIIS.Register(gris, 24*365*time.Hour)
	node.GRIS = gris

	// Ganglia: one gmond per site summarizing the cluster, one gmetad.
	gmond := ganglia.NewGmond(spec.Host)
	gmond.Register("cpu_num", func() float64 {
		if !st.Healthy() {
			return 0
		}
		return float64(bs.AvailableSlots())
	})
	gmond.Register("load_one", func() float64 { return gk.Load() })
	gmond.Register("disk_used_frac", func() float64 { return st.Disk.FillFraction() })
	gmetad := ganglia.NewGmetad(g.Eng, spec.Name, g.Cfg.MonitorInterval)
	gmetad.Watch(gmond)
	g.stageGmetad(gmetad)
	g.Ganglia.Add(gmetad)
	node.Gmetad = gmetad

	// MonALISA: a station server with GRAM-log, queue, and Ganglia agents
	// forwarding to the central repository.
	station := monalisa.NewStation(g.Eng, spec.Name, g.Cfg.MonitorInterval)
	station.AddAgent(monalisa.GaugeAgent("grid3.jobs.running", func() float64 {
		return float64(bs.RunningCount())
	}))
	station.AddAgent(monalisa.GaugeAgent("grid3.jobs.queued", func() float64 {
		return float64(bs.QueuedCount())
	}))
	station.AddAgent(monalisa.GaugeAgent("grid3.gram.load", func() float64 {
		return gk.Load()
	}))
	station.Forward(g.metricSink())
	node.Station = station

	// Site Status Catalog probes (§5.2).
	g.Catalog.Register(spec.Name, spec.Location,
		sitecatalog.Probe{Name: "gram-ping", Run: func() error {
			if !st.Healthy() {
				return errGatekeeperDown
			}
			return nil
		}},
		sitecatalog.Probe{Name: "gridftp-ping", Run: func() error {
			ep, err := g.Network.Endpoint(spec.Name)
			if err != nil || !ep.Up() {
				return errGridFTPDown
			}
			return nil
		}},
		sitecatalog.Probe{Name: "disk-space", Run: func() error {
			if st.Disk.Free() <= 0 {
				return errStorageFull
			}
			return nil
		}},
	)

	// ACDC pulls this site's completion log.
	g.ACDC.Watch(spec.Name, bs)

	// Sites that have not yet joined Grid3 start dark: services down,
	// slots drained, WAN endpoint off. They come alive at JoinAt.
	if spec.JoinAt > 0 {
		st.SetHealthy(false)
		bs.DrainSlots(bs.Slots())
		g.Network.SetEndpointUp(spec.Name, false)
		g.Eng.At(spec.JoinAt, func() {
			st.SetHealthy(true)
			bs.RestoreSlots(bs.Slots())
			g.Network.SetEndpointUp(spec.Name, true)
		})
	}

	g.Nodes[spec.Name] = node
	g.Order = append(g.Order, spec.Name)
	return nil
}

// appPackages maps VO → its application release in the iGOC cache.
func appPackages() map[string]string {
	return map[string]string{
		vo.USATLAS: "atlas-gce",
		vo.USCMS:   "cms-mop",
		vo.LIGO:    "ligo-pulsar",
		vo.SDSS:    "sdss-cluster",
		vo.BTeV:    "btev-mc",
		vo.IVDGL:   "snb",
	}
}

// ceAd renders a node's live computing-element ClassAd.
func (g *Grid) ceAd(n *Node) *classad.Ad {
	now := g.Eng.Now()
	if n.adCacheOK && now-n.adCacheAt <= adTTL {
		return n.adCache
	}
	n.adCache = g.ce(n).Ad()
	n.adCacheAt = now
	n.adCacheOK = true
	return n.adCache
}

// ce snapshots a node as a GLUE CE.
func (g *Grid) ce(n *Node) *glue.CE {
	return &glue.CE{
		ID:          n.Spec.Host + "/jobmanager-" + string(n.Spec.LRMS),
		SiteName:    n.Spec.Name,
		Host:        n.Spec.Host,
		LRMSType:    n.Spec.LRMS,
		TotalCPUs:   n.Batch.Slots(),
		FreeCPUs:    n.Batch.FreeSlots(),
		RunningJobs: n.Batch.RunningCount(),
		WaitingJobs: n.Batch.QueuedCount(),
		MaxWallTime: n.Spec.MaxWall,
		VOs:         n.Site.VOs(),
		AppDir:      "/share/app",
		DataDir:     "/share/data",
		TmpDir:      "/scratch",
		VDTLocation: "/opt/vdt-" + vdt.VDTVersion,
		OutboundIP:  n.Spec.OutboundIP,
	}
}

// ceEntry renders the MDS entry with Grid3 extensions.
func (g *Grid) ceEntry(n *Node) mds.Entry {
	attrs := g.ce(n).Attributes()
	attrs["Grid3-Owner-VO"] = []string{n.Spec.OwnerVO}
	attrs["Grid3-Disk-Free"] = []string{strconv.FormatInt(n.Site.Disk.Free(), 10)}
	var installed []string
	for app := range n.Site.AppAreas {
		installed = append(installed, app)
	}
	sort.Strings(installed)
	attrs["Grid3-App-Installed"] = installed
	return mds.Entry{DN: "GlueCEUniqueID=" + n.Spec.Host, Attrs: attrs}
}

// Stats returns per-VO end-to-end statistics (live pointer).
func (g *Grid) Stats(voName string) *VOStats {
	s, ok := g.stats[voName]
	if !ok {
		s = &VOStats{}
		g.stats[voName] = s
	}
	return s
}

// PeakRunning returns the largest sampled count of simultaneously running
// jobs (the §7 peak-concurrent-jobs milestone).
func (g *Grid) PeakRunning() int { return g.peakRunning }

// ShardStats returns the work/critical-path accounting accumulated by the
// region eval pool (zero when the grid runs serial). Speedup() on the
// result is the run's achieved work-parallelism.
func (g *Grid) ShardStats() sim.ShardStats { return g.evalPool.Stats() }

// Close stops the region worker goroutines. The grid keeps simulating
// correctly afterwards — a closed pool degrades every parallel scan to the
// serial path — so Close is safe to call before a final drain.
func (g *Grid) Close() { g.evalPool.Close() }

// MeanOnlineCPUs returns the time-averaged in-service slot count — the
// "typical" CPU figure beside the catalog peak.
func (g *Grid) MeanOnlineCPUs() float64 {
	if g.runningSamples == 0 {
		return 0
	}
	return float64(g.capacitySum) / float64(g.runningSamples)
}

// MeanUtilization returns time-averaged running/capacity across samples
// (the §7 percentage-of-resources-used milestone, actual 40-70%).
func (g *Grid) MeanUtilization() float64 {
	if g.capacitySum == 0 {
		return 0
	}
	return float64(g.runningSum) / float64(g.capacitySum)
}

func (g *Grid) sampleConcurrency() {
	gridRunning := 0
	allRunning := 0
	capacity := 0
	for _, n := range g.nodeList {
		r := n.Batch.RunningCount()
		allRunning += r
		gridRunning += r - n.Batch.RunningByVO(LocalVO)
		capacity += n.Batch.AvailableSlots()
	}
	// The §7 peak-concurrent-jobs milestone counts grid jobs only; the
	// utilization milestone reflects total occupancy of the shared
	// facilities (local users included), as the monitoring plots did.
	if gridRunning > g.peakRunning {
		g.peakRunning = gridRunning
	}
	g.runningSamples++
	g.runningSum += int64(allRunning)
	g.capacitySum += int64(capacity)
}

// migrateToTape drains archived outputs once they exceed half the disk,
// oldest first — the Tier1 tape migration that kept Grid3 SEs from filling
// permanently. Budgeting on archive bytes (not raw fill) keeps a transient
// disk-full incident from wiping the archive.
func (g *Grid) migrateToTape(n *Node) {
	disk := n.Site.Disk
	budget := disk.Capacity() / 2
	for n.archBytes > budget && len(n.archQueue) > 0 {
		name := n.archQueue[0]
		n.archQueue = n.archQueue[1:]
		if disk.Has(name) {
			size, _ := disk.Size(name)
			disk.Delete(name)
			n.archBytes -= size
		}
	}
}

// SubmitJob routes a workload request through AUP, the VO's schedd,
// matchmaking, GRAM, and the data path. It implements apps.Submitter.
func (g *Grid) SubmitJob(req apps.Request) {
	g.SubmitJobFunc(req, nil)
}

// SubmitJobFunc is SubmitJob with a completion callback: onDone fires
// exactly once when the job reaches its end-to-end terminal state
// (including stage-out and registration), with nil on success. DAG-driven
// frameworks (MOP) use this to sequence dependent work.
func (g *Grid) SubmitJobFunc(req apps.Request, onDone func(error)) {
	notify := func(err error) {
		if onDone != nil {
			onDone(err)
		}
	}
	stats := g.Stats(req.VO)
	stats.Submitted++
	if err := g.AUP.Check(req.User, req.VO); err != nil {
		stats.ExecFailures++
		notify(err)
		return
	}
	sch, ok := g.Schedds[req.VO]
	if !ok {
		stats.ExecFailures++
		notify(fmt.Errorf("core: no schedd for VO %s", req.VO))
		return
	}

	// Clamp the walltime request to the largest queue limit any of the
	// VO's sites admits; users sized requests to the queues they used.
	if maxWall := g.maxWallFor(req.VO); maxWall > 0 && req.Walltime > maxWall {
		req.Walltime = maxWall
	}

	preferred := req.Preferred
	if g.Cfg.DisableAffinity {
		preferred = ""
	}
	if preferred != "" {
		if n, ok := g.Nodes[preferred]; !ok || !n.Site.SupportsVO(req.VO) {
			preferred = ""
		}
	}

	// SRM ablation: reserve archive space for the output before running.
	var reservation *srm.Reservation
	if g.Cfg.UseSRM && req.OutputBytes > 0 {
		archive := g.Nodes[ArchiveSiteFor(req.VO)]
		if archive != nil {
			res, err := archive.SRM.Reserve(req.VO, req.OutputBytes, 14*24*time.Hour)
			if err != nil {
				// Fail fast before burning CPU; the production system
				// resubmits when space frees.
				stats.SRMDeferred++
				notify(err)
				return
			}
			reservation = res
		}
	}

	ad := classad.NewAd()
	ad.Set("Rank", defaultRank)
	g.seq++
	job := &condorg.GridJob{
		ID:         fmt.Sprintf("grid3-%s-%08d", req.VO, g.seq),
		Ad:         ad,
		TargetSite: preferred,
		MaxRetries: 2,
		Spec: gram.Spec{
			Subject:       req.User,
			VO:            req.VO,
			Executable:    "/share/app/" + req.VO + "/run",
			Walltime:      req.Walltime,
			Runtime:       req.Runtime,
			Priority:      req.Priority,
			StagingFactor: req.StagingFactor,
		},
	}
	// Root lifecycle span for the job, with a (synchronous) submit child;
	// match/gram-auth/run children hang off job.Span down the stack.
	tr := g.Obs.TracerOf()
	root := tr.Begin(obs.KindJob, 0, job.ID, req.VO, "")
	job.Span = root
	finish := func(err error) {
		if err != nil {
			tr.Fail(root, err.Error())
		} else {
			tr.End(root)
		}
		notify(err)
	}

	job.OnStart = func(j *condorg.GridJob) {
		if req.InputBytes > 0 {
			g.stageIn(req, j.Site, root, j.ID)
		}
	}
	job.OnDone = func(j *condorg.GridJob, err error) {
		tr.SetSite(root, j.Site)
		if err != nil {
			stats.ExecFailures++
			stats.AttemptFailures += j.Attempts
			stats.WastedCPU += req.Runtime
			if reservation != nil {
				g.releaseReservation(req.VO, reservation)
			}
			finish(err)
			return
		}
		// Attempts beyond the first were failures that got retried.
		stats.AttemptFailures += j.Attempts - 1
		g.stageOut(req, j, reservation, root, finish)
	}
	sub := tr.Begin(obs.KindSubmit, root, job.ID, req.VO, "")
	sch.Submit(job)
	tr.End(sub)
}

// defaultRank prefers emptier sites; parsed once (one parse per job
// submission showed up in scenario profiles).
var defaultRank = classad.MustParse("TARGET.FreeCpus - TARGET.WaitingJobs")

// maxWallFor returns the largest MaxWall among sites supporting the VO,
// computed once per VO (the support matrix and walltime policies are
// fixed at construction).
func (g *Grid) maxWallFor(voName string) time.Duration {
	if d, ok := g.maxWallByVO[voName]; ok {
		return d
	}
	var max time.Duration
	for _, n := range g.nodeList {
		if n.Site.SupportsVO(voName) && n.Spec.MaxWall > max {
			max = n.Spec.MaxWall
		}
	}
	if g.maxWallByVO == nil {
		g.maxWallByVO = make(map[string]time.Duration)
	}
	g.maxWallByVO[voName] = max
	return max
}

// SRM lifecycle pacing (EnableStorageCleanup only): the cleanup sweep runs
// every cleanupInterval at each SE, and stage-out outputs stay pinned for
// archivePinTTL — long enough to be read back or migrated to tape, short
// enough that abandoned outputs free their space within the run.
const (
	cleanupInterval = 6 * time.Hour
	archivePinTTL   = 7 * 24 * time.Hour
)

// Bounded stage retry schedule (EnableRecovery only): doubling delays from
// stageRetryBase, jittered, up to maxStageRetries attempts beyond the
// first. The sum (~15.5 h) outlasts the longest injected incident class
// (the 8 h disk-full), so a transient outage costs latency, not the job.
const (
	maxStageRetries  = 5
	stageRetryBase   = 30 * time.Minute
	stageRetryJitter = 0.25
)

// stageRetryDelay returns the jittered delay before retry number n (1-based).
func (g *Grid) stageRetryDelay(n int) time.Duration {
	d := stageRetryBase << (n - 1)
	return g.retryRNG.Jitter(d, stageRetryJitter)
}

// stageRetryable reports whether a stage failure is worth a delayed retry:
// recovery must be on, the budget unspent, and the error a transient
// endpoint/storage condition rather than a planning bug.
func (g *Grid) stageRetryable(attempt int, err error) bool {
	if !g.Cfg.EnableRecovery || attempt > maxStageRetries || err == nil {
		return false
	}
	return gridftp.IsEndpointFailure(err) || errors.Is(err, site.ErrDiskFull)
}

// stageIn moves input data from the VO's archive to the execution site.
// With recovery on, a transfer that dies on a downed endpoint is retried on
// the bounded stage schedule.
func (g *Grid) stageIn(req apps.Request, execSite string, parent obs.SpanID, jobID string) {
	archive := ArchiveSiteFor(req.VO)
	if archive == execSite {
		return
	}
	tr := g.Obs.TracerOf()
	var span obs.SpanID
	if tr.Enabled() {
		span = tr.Begin(obs.KindStageIn, parent, jobID, req.VO, execSite)
	}
	attempt := 0
	var start func()
	settle := func(err error) {
		if g.stageRetryable(attempt, err) {
			if g.healthIns != nil {
				g.healthIns.StageRetries.Inc()
			}
			g.Eng.Schedule(g.stageRetryDelay(attempt), start)
			return
		}
		if err != nil {
			tr.Fail(span, err.Error())
		} else {
			tr.End(span)
		}
	}
	start = func() {
		attempt++
		if _, err := g.Network.StartTraced(archive, execSite, req.InputBytes, req.VO, span,
			func(_ *gridftp.Transfer, err error) { settle(err) }); err != nil {
			settle(err)
		}
	}
	start()
}

// stageOut archives the job's output: a GridFTP transfer to the Tier1,
// then a write into its storage element (SRM-managed or raw), then RLS
// registration. A raw write into a full disk is the §8 failure class.
func (g *Grid) stageOut(req apps.Request, j *condorg.GridJob, reservation *srm.Reservation, parent obs.SpanID, notify func(error)) {
	stats := g.Stats(req.VO)
	if req.OutputBytes <= 0 {
		stats.Completed++
		notify(nil)
		return
	}
	archiveName := ArchiveSiteFor(req.VO)
	archive := g.Nodes[archiveName]
	lfn := "lfn:" + req.VO + "/" + j.ID
	tr := g.Obs.TracerOf()
	var span obs.SpanID
	if archive != nil {
		span = tr.Begin(obs.KindStageOut, parent, j.ID, req.VO, archiveName)
	}
	// Bounded delayed retries (recovery mode): a transfer killed by a downed
	// endpoint restarts from the execution site's scratch copy, and a raw
	// archive write bounced by a full disk waits out the incident. Retried
	// attempts do not count as stage-out failures — only the final verdict
	// lands in stats.
	retries := 0
	var startTransfer func()
	tryAgain := func(err error, again func()) bool {
		if !g.stageRetryable(retries+1, err) {
			return false
		}
		retries++
		if g.healthIns != nil {
			g.healthIns.StageRetries.Inc()
		}
		g.Eng.Schedule(g.stageRetryDelay(retries), again)
		return true
	}
	var finish func(transferErr error)
	finish = func(transferErr error) {
		if transferErr != nil {
			if tryAgain(transferErr, startTransfer) {
				return
			}
			tr.Fail(span, transferErr.Error())
			stats.StageOutFailures++
			stats.WastedCPU += req.Runtime
			if reservation != nil {
				g.releaseReservation(req.VO, reservation)
			}
			notify(transferErr)
			return
		}
		var err error
		if reservation != nil {
			err = archive.SRM.Put(reservation.ID, lfn, req.OutputBytes)
			archive.SRM.Release(reservation.ID)
			if err == nil && g.Cfg.EnableStorageCleanup {
				// Fresh outputs get a pin so the cleanup sweep cannot evict
				// them before tape migration or analysis reads them back.
				archive.SRM.Pin(lfn, archivePinTTL)
			}
		} else {
			err = archive.Site.Disk.Store(lfn, req.OutputBytes, false)
			if err != nil && tryAgain(err, func() { finish(nil) }) {
				return
			}
		}
		if err != nil {
			tr.Fail(span, err.Error())
			stats.StageOutFailures++
			stats.WastedCPU += req.Runtime
			notify(err)
			return
		}
		archive.archQueue = append(archive.archQueue, lfn)
		archive.archBytes += req.OutputBytes
		archive.LRC.Add(lfn, "/data/"+req.VO+"/"+j.ID, req.OutputBytes)
		// §6.1: "A dataset catalog was created for produced samples,
		// making them available to the DIAL distributed analysis package."
		g.DIAL.Append(req.VO+".produced", lfn, req.OutputBytes)
		tr.End(span)
		stats.Completed++
		notify(nil)
	}
	if archive == nil {
		stats.Completed++
		notify(nil)
		return
	}
	if j.Site == archiveName {
		finish(nil)
		return
	}
	startTransfer = func() {
		if _, err := g.Network.StartTraced(j.Site, archiveName, req.OutputBytes, req.VO, span, func(_ *gridftp.Transfer, err error) {
			finish(err)
		}); err != nil {
			finish(err)
		}
	}
	startTransfer()
}

func (g *Grid) releaseReservation(voName string, res *srm.Reservation) {
	if archive := g.Nodes[ArchiveSiteFor(voName)]; archive != nil {
		archive.SRM.Release(res.ID)
	}
}

// StartTransfer implements apps.TransferService for the demonstrator.
func (g *Grid) StartTransfer(src, dst string, bytes int64, label string, done func(error)) {
	_, err := g.Network.Start(src, dst, bytes, label, func(_ *gridftp.Transfer, err error) {
		if done != nil {
			done(err)
		}
	})
	if err != nil && done != nil {
		done(err)
	}
}

// PreferredSitesFor returns the VO's pinning pool: its owned sites first
// (largest first — the Tier1 "favorite resource" leads), then the other
// sites supporting it. Production teams targeted their own facilities
// first but spread assignments across every site with a group account
// (§6.4: "applications tend to favor the resources provided within their
// VO" while still using many sites).
func (g *Grid) PreferredSitesFor(voName string) []string {
	type cand struct {
		name  string
		owned bool
		cpus  int
	}
	var cands []cand
	for _, n := range g.nodeList {
		if !n.Site.SupportsVO(voName) {
			continue
		}
		cands = append(cands, cand{n.Spec.Name, n.Spec.OwnerVO == voName, n.Spec.CPUs})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].owned != cands[j].owned {
			return cands[i].owned
		}
		if cands[i].cpus != cands[j].cpus {
			return cands[i].cpus > cands[j].cpus
		}
		return cands[i].name < cands[j].name
	})
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.name
	}
	return out
}

// JobTrace correlates a submit-side job with its execution-side identity —
// the §8 troubleshooting lesson.
type JobTrace struct {
	GridJobID string
	VO        string
	State     string
	Site      string
	Contact   string // GRAM contact URL at the execution site
	Attempts  int
}

// TraceJob finds a grid job by its schedd-side ID across every VO's
// schedd and returns both sides of its identity.
func (g *Grid) TraceJob(id string) (JobTrace, bool) {
	for voName, sch := range g.Schedds {
		if j, ok := sch.Job(id); ok {
			return JobTrace{
				GridJobID: id,
				VO:        voName,
				State:     j.State.String(),
				Site:      j.Site,
				Contact:   j.Contact,
				Attempts:  j.Attempts,
			}, true
		}
	}
	return JobTrace{}, false
}

// SitesSupporting lists sites with a group account for the VO.
func (g *Grid) SitesSupporting(voName string) []string {
	var out []string
	for _, n := range g.nodeList {
		if n.Site.SupportsVO(voName) {
			out = append(out, n.Spec.Name)
		}
	}
	return out
}
