package core

import (
	"bytes"
	"testing"
	"time"

	"grid3/internal/vdt"
)

// waveScenario runs a small testbed with the given wave knobs and returns
// the finished scenario plus its rendered exhibits (the byte-determinism
// witness).
func waveScenario(t *testing.T, seed int64, mut func(*ScenarioConfig)) (*Scenario, string) {
	t.Helper()
	cfg := ScenarioConfig{
		Config:   Config{Seed: seed, TestbedSites: 8},
		Horizon:  12 * 24 * time.Hour,
		JobScale: 0.002,
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := NewScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	s.WriteTable1(&buf)
	s.ComputeMilestones().Write(&buf)
	return s, buf.String()
}

func TestWavesOffByDefault(t *testing.T) {
	s, err := NewScenario(ScenarioConfig{
		Config:   Config{Seed: 1, TestbedSites: 5},
		Horizon:  24 * time.Hour,
		JobScale: 0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Grid.Close()
	if s.Upgrade != nil || s.Certs != nil {
		t.Fatal("wave families armed without configuration")
	}
	if !s.WaveStats().Zero() {
		t.Fatalf("zero-config WaveStats not zero: %+v", s.WaveStats())
	}
}

// TestUpgradeWaveRollsOut drives the rolling upgrade to convergence: every
// site ends on the new release, the outages killed work, and the whole
// campaign is byte-deterministic in the seed.
func TestUpgradeWaveRollsOut(t *testing.T) {
	arm := func(c *ScenarioConfig) {
		c.UpgradeWave = UpgradeWaveConfig{Start: 24 * time.Hour, Stagger: 24 * time.Hour}
	}
	s, out1 := waveScenario(t, 7, arm)
	w := s.Upgrade
	if w == nil {
		t.Fatal("upgrade wave not armed")
	}
	if w.SitesUpgraded != len(s.Grid.Order) {
		t.Fatalf("upgraded %d of %d sites", w.SitesUpgraded, len(s.Grid.Order))
	}
	if w.ConvergedAt == 0 {
		t.Fatal("wave never converged")
	}
	if w.CertFailures != 0 {
		t.Fatalf("%d re-certification failures", w.CertFailures)
	}
	for _, name := range s.Grid.Order {
		if !s.Grid.Nodes[name].Site.HasApp("grid3-" + vdt.NextGrid3Version) {
			t.Fatalf("site %s still on the old release", name)
		}
	}
	if w.RestartKills == 0 {
		t.Fatal("reinstall outages killed no jobs (workload too idle to observe the wave)")
	}
	_, out2 := waveScenario(t, 7, arm)
	if out1 != out2 {
		t.Fatal("upgrade-wave run is not byte-deterministic in its seed")
	}
	_, other := waveScenario(t, 8, arm)
	if out1 == other {
		t.Fatal("different seeds produced identical upgrade-wave runs")
	}
}

// TestCertWaveStormsSurface drives the credential lifecycle: expiries land
// on schedule (validated against the real gsi validity windows), renewals
// restore service, and with health armed the storms surface as breaker
// transitions and iGOC tickets.
func TestCertWaveStormsSurface(t *testing.T) {
	arm := func(c *ScenarioConfig) {
		c.Config.EnableHealth = true
		c.CertWave = CertWaveConfig{Lifetime: 72 * time.Hour, RevokeFraction: 0.2}
	}
	s, out1 := waveScenario(t, 11, arm)
	w := s.Certs
	if w == nil {
		t.Fatal("cert wave not armed")
	}
	if w.Expiries == 0 {
		t.Fatal("no credential expiries over four lifetimes")
	}
	if w.Renewals == 0 {
		t.Fatal("no renewals completed")
	}
	if w.Revocations == 0 {
		t.Fatal("no revocations at RevokeFraction 0.2 over four lifetimes")
	}
	// The storms must be visible to fault management: GRAM breakers
	// tripped and the ops desk ticketed at least one site.
	if len(s.Grid.Health.Transitions()) == 0 {
		t.Fatal("health monitor saw no transitions during cert storms")
	}
	if s.Grid.Desk.TicketCount() == 0 {
		t.Fatal("iGOC desk opened no tickets during cert storms")
	}
	_, out2 := waveScenario(t, 11, arm)
	if out1 != out2 {
		t.Fatal("cert-wave run is not byte-deterministic in its seed")
	}
}
