// Package core assembles the complete Grid3 system: the 27-site catalog,
// the full middleware mesh (GSI, VOMS, MDS, GRAM, GridFTP, RLS, SRM,
// Pacman/VDT, Condor-G, monitoring), the calibrated application workloads,
// failure injection, and the scenario runner that reproduces the paper's
// evaluation.
package core

import (
	"time"

	"grid3/internal/glue"
	"grid3/internal/site"
	"grid3/internal/vo"
)

// gb and tb size disk capacities.
const (
	gb = int64(1) << 30
	tb = int64(1) << 40
)

// SiteSpec extends site.Config with grid-level metadata.
type SiteSpec struct {
	site.Config
	Location string
	// Rollover marks sites with the ACDC-style nightly worker rollover.
	Rollover bool
	// JoinAt delays the site's entry into Grid3: before this offset its
	// services are down and its CPUs drained (§7: "The number of
	// processors in Grid3 fluctuates over time as sites introduce and
	// withdraw resources"). Zero means present from the start.
	JoinAt time.Duration
}

// allVOs builds an account map covering the given VOs (plus the exerciser,
// which ran everywhere it was welcome).
func accounts(vos ...string) map[string]string {
	m := make(map[string]string, len(vos))
	for _, v := range vos {
		m[v] = "grp_" + v
	}
	return m
}

// Grid3Sites returns the production site catalog: 27 sites patterned on
// the paper's participating institutions, summing to ~2800 CPUs at peak
// (§7: target 400, actual 2163, peak >2800), with >60% of CPUs at shared
// (non-dedicated) facilities.
func Grid3Sites() []SiteSpec {
	mk := func(name, host, loc string, tier, cpus int, disk int64, wan float64,
		lrms glue.LRMS, maxWall time.Duration, owner string, dedicated bool,
		vos ...string) SiteSpec {
		return SiteSpec{
			Config: site.Config{
				Name: name, Host: host, Tier: tier, CPUs: cpus,
				DiskBytes: disk, WANMbps: wan, LRMS: lrms, MaxWall: maxWall,
				OwnerVO: owner, Dedicated: dedicated, Accounts: accounts(vos...),
				OutboundIP: true,
			},
			Location: loc,
		}
	}
	all := []string{vo.USATLAS, vo.USCMS, vo.SDSS, vo.LIGO, vo.BTeV, vo.IVDGL, vo.Exerciser}
	atlas := []string{vo.USATLAS, vo.IVDGL, vo.Exerciser}
	cms := []string{vo.USCMS, vo.IVDGL, vo.Exerciser}

	sites := []SiteSpec{
		// Tier1 laboratory centers.
		mk("BNL_ATLAS_Tier1", "gremlin.usatlas.bnl.gov", "Brookhaven Natl. Lab.", 1, 400, 60*tb, 2488, glue.Condor, 300*time.Hour, vo.USATLAS, true, all...),
		mk("FNAL_CMS_Tier1", "gate.fnal.gov", "Fermi Natl. Accelerator Lab.", 1, 480, 80*tb, 2488, glue.Condor, 1300*time.Hour, vo.USCMS, true, all...),
		// Large Tier2 university centers.
		mk("CalTech_PG", "citgrid3.cacr.caltech.edu", "Caltech", 2, 128, 8*tb, 622, glue.Condor, 200*time.Hour, vo.USCMS, false, cms...),
		mk("UCSD_PG", "grid.t2.ucsd.edu", "U.C. San Diego", 2, 128, 6*tb, 622, glue.Condor, 200*time.Hour, vo.USCMS, false, cms...),
		mk("UFlorida_PG", "griddev.phys.ufl.edu", "U. Florida", 2, 120, 6*tb, 622, glue.PBS, 100*time.Hour, vo.USCMS, false, cms...),
		mk("UWMadison_CMS", "cmsgrid.hep.wisc.edu", "U. Wisconsin-Madison", 2, 96, 4*tb, 622, glue.Condor, 1300*time.Hour, vo.USCMS, false, cms...),
		mk("UC_ATLAS_Tier2", "tier2-01.uchicago.edu", "U. Chicago", 2, 112, 4*tb, 622, glue.PBS, 100*time.Hour, vo.USATLAS, false, atlas...),
		mk("IU_ATLAS_Tier2", "atlas.iu.edu", "Indiana U.", 2, 112, 4*tb, 622, glue.PBS, 100*time.Hour, vo.USATLAS, false, atlas...),
		mk("BU_ATLAS_Tier2", "atlas.bu.edu", "Boston U.", 2, 88, 3*tb, 622, glue.PBS, 100*time.Hour, vo.USATLAS, false, atlas...),
		mk("UTA_DPCC", "atlas.dpcc.uta.edu", "U. Texas Arlington", 2, 96, 4*tb, 155, glue.PBS, 100*time.Hour, vo.USATLAS, false, atlas...),
		mk("UM_ATLAS", "linat01.grid.umich.edu", "U. Michigan", 2, 72, 3*tb, 622, glue.PBS, 100*time.Hour, vo.USATLAS, false, atlas...),
		// Shared campus facilities (the >60% non-dedicated pool).
		mk("UBuffalo_CCR", "acdc.ccr.buffalo.edu", "U. Buffalo", 2, 192, 8*tb, 622, glue.PBS, 36*time.Hour, vo.IVDGL, false, all...),
		mk("UWMilwaukee_LSC", "medusa.phys.uwm.edu", "U. Wisconsin-Milwaukee", 2, 120, 6*tb, 622, glue.Condor, 72*time.Hour, vo.LIGO, false, vo.LIGO, vo.IVDGL, vo.Exerciser),
		mk("PSU_LIGO", "grid.phys.psu.edu", "Penn State", 3, 32, 2*tb, 155, glue.Condor, 72*time.Hour, vo.LIGO, false, vo.LIGO, vo.IVDGL),
		mk("FNAL_SDSS", "sdss.fnal.gov", "Fermilab / SDSS", 2, 64, 6*tb, 622, glue.Condor, 100*time.Hour, vo.SDSS, true, vo.SDSS, vo.IVDGL, vo.Exerciser),
		mk("JHU_SDSS", "grid.pha.jhu.edu", "Johns Hopkins U.", 3, 48, 3*tb, 155, glue.Condor, 100*time.Hour, vo.SDSS, false, vo.SDSS, vo.IVDGL, vo.Exerciser),
		mk("Vanderbilt_BTeV", "vampire.accre.vanderbilt.edu", "Vanderbilt U.", 2, 96, 4*tb, 622, glue.PBS, 120*time.Hour, vo.BTeV, false, vo.BTeV, vo.IVDGL, vo.Exerciser),
		mk("ANL_HEP", "hepgrid.anl.gov", "Argonne Natl. Lab.", 2, 64, 4*tb, 622, glue.PBS, 100*time.Hour, vo.IVDGL, true, all...),
		mk("ANL_MCS", "mcsgrid.mcs.anl.gov", "Argonne MCS (GADU)", 2, 64, 3*tb, 622, glue.PBS, 100*time.Hour, vo.IVDGL, true, vo.IVDGL, vo.Exerciser),
		mk("LBNL_PDSF", "pdsf.nersc.gov", "Lawrence Berkeley Natl. Lab.", 2, 96, 6*tb, 622, glue.LSF, 100*time.Hour, vo.IVDGL, false, all...),
		mk("IU_Tiger", "tiger.uits.indiana.edu", "Indiana U. (shared)", 3, 48, 2*tb, 622, glue.LSF, 48*time.Hour, vo.IVDGL, false, vo.IVDGL, vo.USATLAS, vo.Exerciser),
		mk("UNM_HPCERC", "lcars.hpcerc.unm.edu", "U. New Mexico", 3, 48, 2*tb, 155, glue.PBS, 48*time.Hour, vo.IVDGL, false, vo.IVDGL, vo.Exerciser),
		mk("OU_HEP", "ouhep.nhn.ou.edu", "U. Oklahoma", 3, 32, 1*tb, 155, glue.PBS, 48*time.Hour, vo.USATLAS, false, atlas...),
		mk("HU_HEP", "hamptonu.hept.org", "Hampton U.", 3, 16, 1*tb, 45, glue.PBS, 48*time.Hour, vo.USATLAS, false, atlas...),
		mk("SMU_PHY", "mcfarm.physics.smu.edu", "Southern Methodist U.", 3, 16, 1*tb, 45, glue.PBS, 48*time.Hour, vo.IVDGL, false, vo.IVDGL, vo.Exerciser),
		mk("KNU_Kyungpook", "cluster28.knu.ac.kr", "Kyungpook Natl. U. / KISTI", 3, 32, 2*tb, 155, glue.PBS, 72*time.Hour, vo.USCMS, false, cms...),
		mk("Rice_PG", "grid.rice.edu", "Rice U.", 3, 16, 1*tb, 155, glue.PBS, 48*time.Hour, vo.IVDGL, false, vo.IVDGL, vo.Exerciser),
	}
	// ACDC at Buffalo had the nightly worker rollover (§6.1).
	for i := range sites {
		if sites[i].Name == "UBuffalo_CCR" {
			sites[i].Rollover = true
		}
		// Smaller sites joined through the SC2003 ramp-up (§7).
		switch sites[i].Name {
		case "HU_HEP":
			sites[i].JoinAt = 5 * 24 * time.Hour
		case "SMU_PHY":
			sites[i].JoinAt = 8 * 24 * time.Hour
		case "Rice_PG":
			sites[i].JoinAt = 12 * 24 * time.Hour
		case "KNU_Kyungpook":
			sites[i].JoinAt = 15 * 24 * time.Hour
		case "UNM_HPCERC":
			sites[i].JoinAt = 3 * 24 * time.Hour
		}
		// Worker nodes on a handful of sites were privately addressed
		// (§6.4 requirement 1).
		switch sites[i].Name {
		case "UNM_HPCERC", "KNU_Kyungpook", "HU_HEP":
			sites[i].OutboundIP = false
		}
	}
	return sites
}

// TotalCPUs sums the catalog.
func TotalCPUs(specs []SiteSpec) int {
	n := 0
	for _, s := range specs {
		n += s.CPUs
	}
	return n
}

// ArchiveSiteFor maps each VO to its archival site: "All datasets produced
// are archived at the Tier1 facility at Brookhaven" (ATLAS, §4.1); "All
// datasets produced were archived through a Storage Element at the Tier1
// facility at Fermilab" (CMS, §4.2).
func ArchiveSiteFor(voName string) string {
	switch voName {
	case vo.USATLAS:
		return "BNL_ATLAS_Tier1"
	case vo.USCMS:
		return "FNAL_CMS_Tier1"
	case vo.SDSS:
		return "FNAL_SDSS"
	case vo.LIGO:
		return "UWMilwaukee_LSC"
	case vo.BTeV:
		return "Vanderbilt_BTeV"
	default:
		return "ANL_HEP"
	}
}
