package core

import (
	"grid3/internal/intern"
	"testing"
	"time"
)

// TestTenThousandSiteShardedTestbed is the tentpole scale target: a
// 10k-site testbed constructs with a 16-way region partition, every site
// lands in exactly one region, and regions are contiguous alphabetical
// bands of the dense ID space. Construction only — a simulated hour at
// this scale is bench territory, not tier-1.
func TestTenThousandSiteShardedTestbed(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-site construction in -short mode")
	}
	s, err := NewScenario(ScenarioConfig{
		Config:   Config{TestbedSites: 10000, Shards: 16, Seed: 1},
		JobScale: 0.001,
		Horizon:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Grid.Close()
	if got := len(s.Cfg.Config.Sites); got != 10000 {
		t.Fatalf("testbed generated %d sites, want 10000", got)
	}
	ri := s.Grid.Regions
	if ri.Shards() != 16 {
		t.Fatalf("Regions.Shards() = %d, want 16", ri.Shards())
	}
	if ri.Sites() != 10000 {
		t.Fatalf("Regions.Sites() = %d, want 10000", ri.Sites())
	}
	// Spans partition [0, 10000): back-to-back, non-empty, near-equal.
	var next int
	for r := 0; r < ri.Shards(); r++ {
		lo, hi := ri.Span(r)
		if int(lo) != next {
			t.Fatalf("region %d starts at %d, want %d (gap or overlap)", r, lo, next)
		}
		if size := int(hi - lo); size < 10000/16 || size > 10000/16+1 {
			t.Fatalf("region %d holds %d sites, want a near-equal band", r, size)
		}
		next = int(hi)
	}
	if next != 10000 {
		t.Fatalf("regions cover [0,%d), want [0,10000)", next)
	}
	// Every interned site resolves to the region whose span contains it.
	for _, name := range s.Grid.Order {
		id := s.Grid.SiteIDs.ID(name)
		if id == intern.None {
			t.Fatalf("site %q not interned", name)
		}
		r := ri.Of(id)
		lo, hi := ri.Span(r)
		if id < lo || id >= hi {
			t.Fatalf("site ID %d assigned region %d with span [%d,%d)", id, r, lo, hi)
		}
	}
}
