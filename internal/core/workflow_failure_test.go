package core

import (
	"testing"
	"time"

	"grid3/internal/chimera"
	"grid3/internal/dagman"
	"grid3/internal/pegasus"
	"grid3/internal/vo"
)

// TestWorkflowSurvivesSiteFailureViaRetries: a site service outage during
// a workflow fails attempts; DAGMan node retries plus Condor-G retries
// recover once the site heals.
func TestWorkflowSurvivesSiteFailureViaRetries(t *testing.T) {
	g, err := New(Config{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SeedFile("UWMilwaukee_LSC", "lfn:sft-x", 1<<30); err != nil {
		t.Fatal(err)
	}
	cat := chimera.NewCatalog()
	cat.AddTR(&chimera.Transformation{
		Name: "search", MeanRuntime: 2 * time.Hour, Walltime: 12 * time.Hour,
		StagingFactor: 2, OutputBytes: 10 << 20, RequiresApp: "ligo-pulsar-2.1",
	})
	cat.AddDV(&chimera.Derivation{
		ID: "s1", TR: "search",
		Inputs:  []string{"lfn:sft-x"},
		Outputs: []string{"lfn:out-x"},
	})
	abstract, _ := cat.Plan("lfn:out-x")
	concrete, err := g.PlannerFor(vo.LIGO, pegasus.VOAffinity).Plan(abstract, vo.LIGO)
	if err != nil {
		t.Fatal(err)
	}
	// Take the planned site down before the workflow starts; heal it
	// after a few hours. Retries + negotiation backoff should carry the
	// workflow through.
	site := concrete.Jobs["compute_s1"].Site
	g.Nodes[site].Site.SetHealthy(false)
	g.Eng.Schedule(6*time.Hour, func() {
		g.Nodes[site].Site.SetHealthy(true)
	})

	var result dagman.Result
	fired := false
	_, err = g.RunWorkflow(concrete, vo.LIGO,
		"/DC=org/DC=doegrids/OU=People/CN=ligo user 00",
		func(r dagman.Result) { result = r; fired = true })
	if err != nil {
		t.Fatal(err)
	}
	g.Eng.RunUntil(5 * 24 * time.Hour)
	if !fired {
		t.Fatal("workflow never finished")
	}
	if !result.Succeeded() {
		t.Fatalf("workflow failed despite recovery: %+v", result)
	}
}

// TestWorkflowRescueAfterPermanentFailure: when a node exhausts retries,
// the DAG reports failure and the rescue set lists the completed prefix.
func TestWorkflowRescueAfterPermanentFailure(t *testing.T) {
	g, err := New(Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SeedFile("BNL_ATLAS_Tier1", "lfn:in", 1<<20); err != nil {
		t.Fatal(err)
	}
	cat := chimera.NewCatalog()
	cat.AddTR(&chimera.Transformation{Name: "ok", MeanRuntime: time.Hour, Walltime: 4 * time.Hour, RequiresApp: "atlas-gce-7.0.3"})
	// The doomed step demands an app no site has installed.
	cat.AddTR(&chimera.Transformation{Name: "doomed", MeanRuntime: time.Hour, Walltime: 4 * time.Hour, RequiresApp: "nonexistent-release-9.9"})
	cat.AddDV(&chimera.Derivation{ID: "a", TR: "ok", Inputs: []string{"lfn:in"}, Outputs: []string{"lfn:mid"}})
	cat.AddDV(&chimera.Derivation{ID: "b", TR: "doomed", Inputs: []string{"lfn:mid"}, Outputs: []string{"lfn:end"}})
	abstract, _ := cat.Plan("lfn:end")
	// Planning itself refuses: no eligible site for the doomed TR. That
	// is the correct failure surface (Pegasus catches it before runtime).
	if _, err := g.PlannerFor(vo.USATLAS, pegasus.VOAffinity).Plan(abstract, vo.USATLAS); err == nil {
		t.Fatal("planner accepted a transformation no site can run")
	}
}
