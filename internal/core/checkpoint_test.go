package core

import (
	"errors"
	"testing"
	"time"

	"grid3/internal/checkpoint"
	"grid3/internal/obs"
)

func quickCfg(seed int64) ScenarioConfig {
	return ScenarioConfig{
		Config:   Config{Seed: seed},
		Horizon:  6 * 24 * time.Hour,
		JobScale: 0.01,
	}
}

// finalDigest runs a scenario to completion and returns its end-state
// digest plus a few headline counters.
func finalDigest(t *testing.T, s *Scenario) (uint64, int, int) {
	t.Helper()
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	sub, done := 0, 0
	for _, v := range VOColumns {
		st := s.Grid.Stats(v)
		sub += st.Submitted
		done += st.Completed
	}
	return s.StateDigest(nil), sub, done
}

// The tentpole guarantee: a straight-through run and a checkpoint-then-
// restore run of the same seed end in identical state.
func TestCheckpointRestoreMatchesStraightRun(t *testing.T) {
	straight, err := NewScenario(quickCfg(11))
	if err != nil {
		t.Fatal(err)
	}
	wantDigest, wantSub, wantDone := finalDigest(t, straight)
	if wantSub == 0 || wantDone == 0 {
		t.Fatalf("degenerate run: submitted %d completed %d", wantSub, wantDone)
	}

	// Checkpointing run: capture at mid-run, keep going to the horizon.
	store := checkpoint.NewMemStore()
	cfg := quickCfg(11)
	cfg.CheckpointAt = []time.Duration{3 * 24 * time.Hour}
	cfg.CheckpointStore = store
	ckpt, err := NewScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gotDigest, gotSub, gotDone := finalDigest(t, ckpt)
	if gotDigest != wantDigest || gotSub != wantSub || gotDone != wantDone {
		t.Fatalf("checkpointing run diverged: digest %016x/%016x submitted %d/%d completed %d/%d",
			gotDigest, wantDigest, gotSub, wantSub, gotDone, wantDone)
	}
	if len(ckpt.CheckpointIDs) != 1 {
		t.Fatalf("CheckpointIDs = %v", ckpt.CheckpointIDs)
	}

	// Restore from the mid-run snapshot and continue to the horizon.
	snap, err := checkpoint.Load(store, ckpt.CheckpointIDs[0])
	if err != nil {
		t.Fatal(err)
	}
	if snap.SimTime != 3*24*time.Hour {
		t.Fatalf("snapshot at %v", snap.SimTime)
	}
	restored, err := RestoreScenario(snap, RestoreOverrides{})
	if err != nil {
		t.Fatalf("RestoreScenario: %v", err)
	}
	if restored.Grid.Eng.Now() != snap.SimTime {
		t.Fatalf("restored clock %v", restored.Grid.Eng.Now())
	}
	rDigest, rSub, rDone := finalDigest(t, restored)
	if rDigest != wantDigest || rSub != wantSub || rDone != wantDone {
		t.Fatalf("restored run diverged: digest %016x/%016x submitted %d/%d completed %d/%d",
			rDigest, wantDigest, rSub, wantSub, rDone, wantDone)
	}
}

// Restoring under a different shard count must land in the same state —
// sharding parallelizes pure scans only.
func TestRestoreShardOverrideIdentical(t *testing.T) {
	store := checkpoint.NewMemStore()
	cfg := quickCfg(5)
	cfg.CheckpointAt = []time.Duration{2 * 24 * time.Hour}
	cfg.CheckpointStore = store
	s, err := NewScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantDigest, wantSub, wantDone := finalDigest(t, s)

	snap, _, err := checkpoint.Latest(store)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreScenario(snap, RestoreOverrides{Shards: 4})
	if err != nil {
		t.Fatalf("RestoreScenario(shards=4): %v", err)
	}
	if restored.Cfg.Shards != 4 {
		t.Fatalf("Shards = %d", restored.Cfg.Shards)
	}
	gotDigest, gotSub, gotDone := finalDigest(t, restored)
	if gotDigest != wantDigest || gotSub != wantSub || gotDone != wantDone {
		t.Fatalf("sharded restore diverged: digest %016x/%016x submitted %d/%d completed %d/%d",
			gotDigest, wantDigest, gotSub, wantSub, gotDone, wantDone)
	}
}

// A snapshot whose digest does not match the replayed state must be
// rejected — and the rejection must not leak a half-built scenario.
func TestRestoreRejectsDigestMismatch(t *testing.T) {
	store := checkpoint.NewMemStore()
	cfg := quickCfg(3)
	cfg.Horizon = 2 * 24 * time.Hour
	cfg.CheckpointAt = []time.Duration{24 * time.Hour}
	cfg.CheckpointStore = store
	s, err := NewScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	snap, _, err := checkpoint.Latest(store)
	if err != nil {
		t.Fatal(err)
	}
	snap.Digest ^= 1
	restored, err := RestoreScenario(snap, RestoreOverrides{})
	if !errors.Is(err, checkpoint.ErrDigest) {
		t.Fatalf("err = %v, want ErrDigest", err)
	}
	if restored != nil {
		t.Fatal("digest mismatch returned a scenario")
	}
}

func TestRestoreRejectsCorruptConfig(t *testing.T) {
	snap := &checkpoint.Snapshot{
		Scope:   checkpoint.ScopeBatch,
		SimTime: time.Hour,
		Config:  []byte(`{"config":{},"horizon":1,"unknown_field":true}`),
	}
	if _, err := RestoreScenario(snap, RestoreOverrides{}); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("unknown config field: %v, want ErrCorrupt", err)
	}
	snap.Config = []byte(`not json`)
	if _, err := RestoreScenario(snap, RestoreOverrides{}); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("junk config: %v, want ErrCorrupt", err)
	}
}

func TestRestoreRejectsWrongScope(t *testing.T) {
	s, err := NewScenario(quickCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Grid.Close()
	snap, err := s.Snapshot(checkpoint.ScopeServe, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Serve snapshot without a serve-layer replay hook.
	if _, err := RestoreScenario(snap, RestoreOverrides{}); !errors.Is(err, checkpoint.ErrWrongScope) {
		t.Fatalf("serve scope, no ReplayOp: %v, want ErrWrongScope", err)
	}
	// Batch snapshot smuggling a journal.
	bsnap, err := s.Snapshot(checkpoint.ScopeBatch, nil, []checkpoint.Op{{Kind: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreScenario(bsnap, RestoreOverrides{}); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("batch scope with journal: %v, want ErrCorrupt", err)
	}
}

func TestRestoreRejectsSinksWithoutObservability(t *testing.T) {
	s, err := NewScenario(quickCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Grid.Close()
	snap, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	_, err = RestoreScenario(snap, RestoreOverrides{
		TraceSinks: []obs.TraceSink{func(*obs.Trace) error { return nil }},
	})
	if err == nil {
		t.Fatal("sink attached to an observability-off snapshot")
	}
}

// Snapshot round-trips through the binary codec without losing the config.
func TestSnapshotConfigRoundTrip(t *testing.T) {
	cfg := quickCfg(9)
	cfg.Config.UseSRM = true
	cfg.Config.TransferDoors = 4
	cfg.ChaosIntensity = 1.5
	s, err := NewScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Grid.Close()
	snap, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := checkpoint.Decode(checkpoint.Encode(snap))
	if err != nil {
		t.Fatal(err)
	}
	got, err := unmarshalScenarioConfig(decoded.Config)
	if err != nil {
		t.Fatal(err)
	}
	if !got.UseSRM || got.TransferDoors != 4 || got.ChaosIntensity != 1.5 ||
		got.Seed != 9 || got.Horizon != cfg.Horizon || len(got.Sites) != len(s.Cfg.Sites) {
		t.Fatalf("config round-trip lost fields: %+v", got)
	}
}

// An extended horizon must not change replay (generators arm on the
// recorded horizon); it only moves the continuation target.
func TestRestoreHorizonExtension(t *testing.T) {
	store := checkpoint.NewMemStore()
	cfg := quickCfg(2)
	cfg.Horizon = 2 * 24 * time.Hour
	cfg.CheckpointAt = []time.Duration{24 * time.Hour}
	cfg.CheckpointStore = store
	s, err := NewScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	snap, _, err := checkpoint.Latest(store)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreScenario(snap, RestoreOverrides{Horizon: 3 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Cfg.Horizon != 3*24*time.Hour {
		t.Fatalf("Horizon = %v", restored.Cfg.Horizon)
	}
	if err := restored.Run(); err != nil {
		t.Fatal(err)
	}
	if got := restored.Grid.Eng.Now(); got < 3*24*time.Hour {
		t.Fatalf("extended run stopped at %v", got)
	}
}
