package core

// Ingestion batching (Config.IngestBatch > 0): the monitoring hot path
// — per-site MonALISA stations and the iGOC obs bridge into the central
// repository, Ganglia gmetad history writes, and ACDC warehouse pulls —
// feeds through shared internal/ingest batchers instead of per-event
// delivery. The batchers are passive (no engine events, no goroutines,
// no RNG) and every consumer read drains first, so a batched run is
// byte-identical to a per-event run; CI diffs the two.
//
// On top of the metric batcher's window rollovers the grid seals the
// per-VO usage ledger: each closed window gets one UsageRecord per VO
// (completed jobs from VOStats, CPU seconds from ACDC, bytes moved from
// the GridFTP per-VO accounting — all as window deltas of cumulative
// totals sampled at the deterministic seal instant) hashed into a
// Merkle root. The serve layer publishes roots and inclusion proofs at
// /api/v1/audit/* so a VO's usage claim is checkable without rescanning
// raw events.

import (
	"time"

	"grid3/internal/acdc"
	"grid3/internal/ganglia"
	"grid3/internal/ingest"
	"grid3/internal/monalisa"
	"grid3/internal/vo"
)

// ingestPending bounds each batcher's ring of sealed-but-uncommitted
// batches; overflow commits the oldest inline (Block policy).
const ingestPending = 4

// gmetadSample is one staged Ganglia history write, bound to its
// aggregator so a single shared batcher serves every site.
type gmetadSample struct {
	gm     *ganglia.Gmetad
	metric string
	t      time.Duration
	v      float64
}

// usageTotals is one VO's cumulative accounting sample; ledger records
// are deltas between consecutive samples.
type usageTotals struct {
	jobs  uint64
	cpu   uint64
	bytes uint64
}

// setupIngest arms the batching pipeline and the usage ledger. Called
// from New before sites are added (stations wire their forward sinks at
// addSite time).
func (g *Grid) setupIngest() {
	opts := ingest.Options{
		BatchSize: g.Cfg.IngestBatch,
		Window:    g.Cfg.IngestWindow,
		Pending:   ingestPending,
		Policy:    ingest.Block,
	}
	g.Ledger = ingest.NewLedger()
	g.usagePrev = make(map[string]usageTotals)
	g.lastSealed = -1

	g.ingestMetrics = ingest.New(g.Eng.Now, g.Repo.IngestBatch, opts)
	g.ingestMetrics.OnWindow = g.sealUsageWindow
	g.Repo.PreRead = g.ingestMetrics.Drain

	g.ingestGanglia = ingest.New(g.Eng.Now, commitGmetadBatch, opts)

	g.ingestACDC = ingest.New(g.Eng.Now, g.ACDC.Commit, opts)
	g.ACDC.Stage = func(r acdc.JobRecord) { g.ingestACDC.Add(r) }
	g.ACDC.PreRead = g.ingestACDC.Drain
}

// metricSink returns the station forward target: the shared metric
// batcher when batching is on, the historical per-event Ingest
// otherwise.
func (g *Grid) metricSink() func(monalisa.Metric) {
	if g.ingestMetrics == nil {
		return g.Repo.Ingest
	}
	return func(m monalisa.Metric) { g.ingestMetrics.Add(m) }
}

// stageGmetad hooks one site's aggregator into the shared Ganglia
// batcher.
func (g *Grid) stageGmetad(gm *ganglia.Gmetad) {
	if g.ingestGanglia == nil {
		return
	}
	gm.Stage = func(metric string, t time.Duration, v float64) {
		g.ingestGanglia.Add(gmetadSample{gm: gm, metric: metric, t: t, v: v})
	}
	gm.PreRead = g.ingestGanglia.Drain
}

// commitGmetadBatch routes staged history writes back to their
// aggregators, in arrival order.
func commitGmetadBatch(batch []gmetadSample) {
	for _, s := range batch {
		s.gm.CommitHistory(s.metric, s.t, s.v)
	}
}

// sealUsageWindow is the metric batcher's OnWindow hook: the first
// metric arriving past a window boundary seals the closed window at a
// deterministic sim instant. Windows no metric ever follows (trailing
// silence) fold into the final seal at FinishIngest.
func (g *Grid) sealUsageWindow(closed int64, start, end time.Duration) {
	if closed <= g.lastSealed {
		return
	}
	g.lastSealed = closed
	g.sealUsage(uint64(closed), start, end)
}

// sealUsage samples cumulative accounting, converts to window deltas,
// and seals the ledger window. Every Grid3 VO gets a record each window
// (zero deltas included) so the leaf set — and therefore proof shapes —
// stays stable.
func (g *Grid) sealUsage(idx uint64, start, end time.Duration) {
	cpu := g.ACDC.CPUSecondsByVO() // drains the ACDC batcher via PreRead
	moved := g.Network.BytesByLabel()
	recs := make([]ingest.UsageRecord, 0, len(vo.Grid3VOs))
	for _, voName := range vo.Grid3VOs {
		cur := usageTotals{cpu: cpu[voName]}
		// Read g.stats directly: Stats() would insert an empty entry for
		// VOs that never ran, perturbing checkpoint digests.
		if st, ok := g.stats[voName]; ok {
			cur.jobs = uint64(st.Completed)
		}
		if b := moved[voName]; b > 0 {
			cur.bytes = uint64(b)
		}
		prev := g.usagePrev[voName]
		recs = append(recs, ingest.UsageRecord{
			VO:         voName,
			Window:     idx,
			Start:      start,
			End:        end,
			Jobs:       cur.jobs - prev.jobs,
			CPUSeconds: cur.cpu - prev.cpu,
			Bytes:      cur.bytes - prev.bytes,
		})
		g.usagePrev[voName] = cur
	}
	g.Ledger.Seal(idx, start, end, recs)
}

// FinishIngest drains every ingestion batcher and seals the final
// (partial) usage window. Scenario.Finish calls it; it is a no-op when
// batching is off and idempotent otherwise.
func (g *Grid) FinishIngest() {
	if g.ingestMetrics == nil {
		return
	}
	g.ingestMetrics.Drain()
	g.ingestGanglia.Drain()
	g.ingestACDC.Drain()
	if w := g.Cfg.IngestWindow; w > 0 {
		now := g.Eng.Now()
		if idx := int64(now / w); idx > g.lastSealed {
			g.lastSealed = idx
			g.sealUsage(uint64(idx), time.Duration(idx)*w, now)
		}
	}
}

// IngestStats returns the three batchers' activity counters (all zero
// when batching is off): metric pipeline, Ganglia history, ACDC
// warehouse.
func (g *Grid) IngestStats() (metrics, gangliaHist, acdcPath ingest.Stats) {
	if g.ingestMetrics == nil {
		return
	}
	return g.ingestMetrics.Stats(), g.ingestGanglia.Stats(), g.ingestACDC.Stats()
}
