package mds

import (
	"testing"
	"time"

	"grid3/internal/sim"
)

func staticSource(name string, entries ...Entry) Source {
	return ProviderFunc{ID: name, Fn: func() []Entry { return entries }}
}

func entry(dn string, kv ...string) Entry {
	e := Entry{DN: dn, Attrs: map[string][]string{}}
	for i := 0; i+1 < len(kv); i += 2 {
		e.Attrs[kv[i]] = append(e.Attrs[kv[i]], kv[i+1])
	}
	return e
}

func TestGRISAggregatesProviders(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	g := NewGRIS("uc-gris", eng)
	g.AddProvider(staticSource("ce", entry("ce=uc", "GlueCEUniqueID", "uc/jobmanager-pbs")))
	g.AddProvider(staticSource("se", entry("se=uc", "GlueSEUniqueID", "se.uc.edu")))
	eng.RunUntil(time.Hour)
	es := g.Entries()
	if len(es) != 2 {
		t.Fatalf("entries = %d, want 2", len(es))
	}
	for _, e := range es {
		if e.Produced != time.Hour {
			t.Fatalf("Produced = %v, want stamped with now", e.Produced)
		}
	}
	if g.Name() != "uc-gris" {
		t.Fatal("name wrong")
	}
}

func TestGIISSoftStateExpiry(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	idx := NewGIIS("ivdgl-giis", eng)
	idx.Register(staticSource("site-a", entry("a", "GlueSiteName", "A")), 10*time.Minute)
	if got := len(idx.Query(All())); got != 1 {
		t.Fatalf("initial query = %d entries", got)
	}
	// Past TTL without refresh: dropped.
	eng.RunUntil(11 * time.Minute)
	if got := len(idx.Query(All())); got != 0 {
		t.Fatalf("expired source still served %d entries", got)
	}
	if names := idx.Registered(); len(names) != 0 {
		t.Fatalf("Registered = %v after expiry", names)
	}
	// Refresh resurrects it.
	if err := idx.Refresh("site-a"); err != nil {
		t.Fatal(err)
	}
	if got := len(idx.Query(All())); got != 1 {
		t.Fatalf("refreshed source served %d entries", got)
	}
	if err := idx.Refresh("nonexistent"); err == nil {
		t.Fatal("refresh of unknown source succeeded")
	}
}

func TestGIISDeregister(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	idx := NewGIIS("g", eng)
	idx.Register(staticSource("s", entry("x")), time.Hour)
	idx.Deregister("s")
	if len(idx.Query(All())) != 0 {
		t.Fatal("deregistered source still served")
	}
}

func TestGIISCaching(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	idx := NewGIIS("g", eng)
	calls := 0
	src := ProviderFunc{ID: "s", Fn: func() []Entry {
		calls++
		return []Entry{entry("x", "A", "1")}
	}}
	idx.Register(src, 24*time.Hour)
	idx.CacheTTL = 2 * time.Minute

	idx.Query(All())
	idx.Query(All()) // served from cache
	if calls != 1 {
		t.Fatalf("source called %d times, want 1 (cache hit)", calls)
	}
	eng.RunUntil(3 * time.Minute)
	idx.Query(All()) // cache stale, re-fetched
	if calls != 2 {
		t.Fatalf("source called %d times after cache expiry, want 2", calls)
	}

	// Disabling the cache hits the source each query.
	idx.CacheTTL = 0
	idx.Query(All())
	idx.Query(All())
	if calls != 4 {
		t.Fatalf("source called %d times with caching off, want 4", calls)
	}
}

func TestHierarchy(t *testing.T) {
	// site GRIS → VO GIIS → iGOC GIIS, the §5.1 registration chain.
	eng := sim.NewEngine(sim.Grid3Epoch)
	gris := NewGRIS("uc-gris", eng)
	gris.AddProvider(staticSource("ce",
		entry("ce=uc", "GlueSiteName", "UC", "GlueCEStateFreeCPUs", "12")))
	voGIIS := NewGIIS("usatlas-giis", eng)
	voGIIS.Register(gris, time.Hour)
	top := NewGIIS("igoc-giis", eng)
	top.Register(voGIIS, time.Hour)

	es := top.Query(Eq("GlueSiteName", "UC"))
	if len(es) != 1 {
		t.Fatalf("top-level query found %d entries", len(es))
	}
	if es[0].GetInt("GlueCEStateFreeCPUs") != 12 {
		t.Fatalf("FreeCPUs = %d", es[0].GetInt("GlueCEStateFreeCPUs"))
	}
}

func TestFilters(t *testing.T) {
	e := entry("x", "VO", "usatlas", "VO", "ivdgl", "FreeCPUs", "5")
	if !Eq("VO", "ivdgl")(e) || Eq("VO", "uscms")(e) {
		t.Fatal("Eq wrong")
	}
	if !Ge("FreeCPUs", 5)(e) || Ge("FreeCPUs", 6)(e) {
		t.Fatal("Ge wrong")
	}
	if !Present("VO")(e) || Present("Missing")(e) {
		t.Fatal("Present wrong")
	}
	if !And(Eq("VO", "usatlas"), Ge("FreeCPUs", 1))(e) {
		t.Fatal("And wrong")
	}
	if !Or(Eq("VO", "uscms"), Ge("FreeCPUs", 1))(e) {
		t.Fatal("Or wrong")
	}
	if Not(Present("VO"))(e) {
		t.Fatal("Not wrong")
	}
	if e.GetInt("VO") != 0 {
		t.Fatal("GetInt of non-numeric should be 0")
	}
	if e.Get("Missing") != "" {
		t.Fatal("Get of missing attr should be empty")
	}
}

func TestQueryOne(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	idx := NewGIIS("g", eng)
	idx.Register(staticSource("s",
		entry("a", "Site", "A"),
		entry("b", "Site", "B"),
		entry("b2", "Site", "B"),
	), time.Hour)
	if _, err := idx.QueryOne(Eq("Site", "A")); err != nil {
		t.Fatal(err)
	}
	if _, err := idx.QueryOne(Eq("Site", "B")); err == nil {
		t.Fatal("QueryOne with 2 matches succeeded")
	}
	if _, err := idx.QueryOne(Eq("Site", "C")); err == nil {
		t.Fatal("QueryOne with 0 matches succeeded")
	}
}

func TestQueryDeterministicOrder(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	idx := NewGIIS("g", eng)
	idx.Register(staticSource("zeta", entry("z")), time.Hour)
	idx.Register(staticSource("alpha", entry("a")), time.Hour)
	es := idx.Query(All())
	if len(es) != 2 || es[0].DN != "a" || es[1].DN != "z" {
		t.Fatalf("query order not deterministic by source name: %+v", es)
	}
}
