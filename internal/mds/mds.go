// Package mds implements the Globus Monitoring and Discovery Service as
// deployed on Grid3: a GRIS (resource-level information server) per site,
// per-VO GIIS index servers, and the top-level iGOC index (§5.1, §5.2).
//
// Information flows by soft-state registration: a GRIS registers with one
// or more GIISes and must re-register before its TTL expires, otherwise the
// index drops it. Queries against an index fan out to the live registrants;
// cached entries are served within a bounded staleness window, matching
// MDS-2 behavior where a slow site would serve stale data rather than block
// the whole grid view.
package mds

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"grid3/internal/sim"
)

// Errors.
var (
	ErrNoSuchSource = errors.New("mds: no such registered source")
)

// Entry is one directory record: a distinguished name plus multi-valued
// attributes, stamped with the virtual time it was produced.
type Entry struct {
	DN       string
	Attrs    map[string][]string
	Produced time.Duration
}

// Get returns the first value of an attribute, or "".
func (e Entry) Get(name string) string {
	vs := e.Attrs[name]
	if len(vs) == 0 {
		return ""
	}
	return vs[0]
}

// GetInt parses the first value of an attribute as an integer; 0 if absent
// or malformed (MDS consumers were famously tolerant).
func (e Entry) GetInt(name string) int64 {
	v, err := strconv.ParseInt(e.Get(name), 10, 64)
	if err != nil {
		return 0
	}
	return v
}

// Has reports whether the attribute holds the given value.
func (e Entry) Has(name, value string) bool {
	for _, v := range e.Attrs[name] {
		if v == value {
			return true
		}
	}
	return false
}

// Source produces directory entries on demand; a site GRIS wraps its
// information providers as Sources.
type Source interface {
	// Name identifies the source for registration bookkeeping.
	Name() string
	// Entries returns the source's current records.
	Entries() []Entry
}

// ProviderFunc adapts a closure into a Source.
type ProviderFunc struct {
	ID string
	Fn func() []Entry
}

// Name implements Source.
func (p ProviderFunc) Name() string { return p.ID }

// Entries implements Source.
func (p ProviderFunc) Entries() []Entry { return p.Fn() }

// Filter selects entries in a query.
type Filter func(Entry) bool

// All matches every entry.
func All() Filter { return func(Entry) bool { return true } }

// Eq matches entries whose attribute holds the value.
func Eq(attr, value string) Filter {
	return func(e Entry) bool { return e.Has(attr, value) }
}

// Ge matches entries whose integer attribute is >= n.
func Ge(attr string, n int64) Filter {
	return func(e Entry) bool { return e.GetInt(attr) >= n }
}

// Present matches entries that carry the attribute at all.
func Present(attr string) Filter {
	return func(e Entry) bool { return len(e.Attrs[attr]) > 0 }
}

// And conjoins filters.
func And(fs ...Filter) Filter {
	return func(e Entry) bool {
		for _, f := range fs {
			if !f(e) {
				return false
			}
		}
		return true
	}
}

// Or disjoins filters.
func Or(fs ...Filter) Filter {
	return func(e Entry) bool {
		for _, f := range fs {
			if f(e) {
				return true
			}
		}
		return false
	}
}

// Not negates a filter.
func Not(f Filter) Filter {
	return func(e Entry) bool { return !f(e) }
}

// GRIS is a site's resource information server. It aggregates local
// information providers and stamps entries with production time.
type GRIS struct {
	name      string
	clock     sim.Clock
	providers []Source
}

// NewGRIS creates a site GRIS.
func NewGRIS(name string, clock sim.Clock) *GRIS {
	return &GRIS{name: name, clock: clock}
}

// Name implements Source.
func (g *GRIS) Name() string { return g.name }

// AddProvider attaches an information provider.
func (g *GRIS) AddProvider(p Source) { g.providers = append(g.providers, p) }

// Entries implements Source by concatenating all providers' entries.
func (g *GRIS) Entries() []Entry {
	var out []Entry
	now := g.clock.Now()
	for _, p := range g.providers {
		for _, e := range p.Entries() {
			if e.Produced == 0 {
				e.Produced = now
			}
			out = append(out, e)
		}
	}
	return out
}

// registration tracks one soft-state child of a GIIS.
type registration struct {
	name     string
	src      Source
	lastSeen time.Duration
	ttl      time.Duration
	cache    []Entry
	cachedAt time.Duration
	hasCache bool
}

// GIIS is an index server: VO-level or the top-level iGOC index. Children
// register with a TTL and refresh by re-registering; queries consult live
// children and fall back to bounded-staleness caches.
type GIIS struct {
	name     string
	clock    sim.Clock
	children map[string]*registration
	// order holds registrations in sorted-name order, maintained
	// incrementally on register/deregister. Queries used to collect and
	// sort the child names on every call — fine for a 27-site index,
	// quadratic noise by 1000 sites when planners query per workflow.
	order []*registration
	// CacheTTL bounds how stale a served cache may be; zero disables
	// caching (every query hits every source).
	CacheTTL time.Duration
}

// NewGIIS creates an index server.
func NewGIIS(name string, clock sim.Clock) *GIIS {
	return &GIIS{
		name:     name,
		clock:    clock,
		children: make(map[string]*registration),
		CacheTTL: 2 * time.Minute,
	}
}

// Name implements Source, letting GIISes register up the hierarchy
// (site GRIS → VO GIIS → iGOC GIIS).
func (g *GIIS) Name() string { return g.name }

// Register adds or refreshes a child with the given soft-state TTL.
func (g *GIIS) Register(src Source, ttl time.Duration) {
	name := src.Name()
	reg, ok := g.children[name]
	if !ok {
		reg = &registration{name: name, src: src}
		g.children[name] = reg
		i := sort.Search(len(g.order), func(i int) bool { return g.order[i].name >= name })
		g.order = append(g.order, nil)
		copy(g.order[i+1:], g.order[i:])
		g.order[i] = reg
	}
	reg.src = src
	reg.lastSeen = g.clock.Now()
	reg.ttl = ttl
}

// Refresh renews a child's registration without replacing the source.
func (g *GIIS) Refresh(name string) error {
	reg, ok := g.children[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchSource, name)
	}
	reg.lastSeen = g.clock.Now()
	return nil
}

// Deregister removes a child immediately.
func (g *GIIS) Deregister(name string) {
	if _, ok := g.children[name]; !ok {
		return
	}
	delete(g.children, name)
	i := sort.Search(len(g.order), func(i int) bool { return g.order[i].name >= name })
	if i < len(g.order) && g.order[i].name == name {
		g.order = append(g.order[:i], g.order[i+1:]...)
	}
}

// alive reports whether a registration is within its TTL.
func (g *GIIS) alive(reg *registration) bool {
	return g.clock.Now()-reg.lastSeen <= reg.ttl
}

// Registered returns the names of children whose registration is live.
func (g *GIIS) Registered() []string {
	var out []string
	for _, reg := range g.order {
		if g.alive(reg) {
			out = append(out, reg.name)
		}
	}
	return out
}

// Entries implements Source: a full-scope query.
func (g *GIIS) Entries() []Entry {
	return g.Query(All())
}

// Query returns entries from all live children matching the filter.
// Results are gathered in sorted child order (maintained incrementally)
// for determinism.
func (g *GIIS) Query(f Filter) []Entry {
	var out []Entry
	now := g.clock.Now()
	for _, reg := range g.order {
		if !g.alive(reg) {
			continue
		}
		var entries []Entry
		if g.CacheTTL > 0 && reg.hasCache && now-reg.cachedAt <= g.CacheTTL {
			entries = reg.cache
		} else {
			entries = reg.src.Entries()
			reg.cache = entries
			reg.cachedAt = now
			reg.hasCache = true
		}
		for _, e := range entries {
			if f(e) {
				out = append(out, e)
			}
		}
	}
	return out
}

// QueryOne returns the single entry matching the filter, or an error if
// zero or multiple match.
func (g *GIIS) QueryOne(f Filter) (Entry, error) {
	es := g.Query(f)
	switch len(es) {
	case 0:
		return Entry{}, fmt.Errorf("mds: no entry matches")
	case 1:
		return es[0], nil
	default:
		return Entry{}, fmt.Errorf("mds: %d entries match, want 1", len(es))
	}
}
