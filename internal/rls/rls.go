// Package rls implements the Replica Location Service (Giggle framework):
// per-site Local Replica Catalogs mapping logical file names to physical
// locations, and a Replica Location Index aggregating LFN→site mappings
// with soft-state updates.
//
// Grid3's data management model "is based on GridFTP and RLS" (§8). ATLAS
// registered every produced dataset in RLS (§4.1); LIGO published staged
// input data locations in RLS "so that its location is available to the
// job" (§4.4). Pegasus queries RLS to reuse existing replicas when planning.
package rls

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"grid3/internal/sim"
)

// Errors.
var (
	ErrNotFound  = errors.New("rls: logical file not found")
	ErrNoMapping = errors.New("rls: mapping does not exist")
	ErrDuplicate = errors.New("rls: mapping already exists")
)

// PFN is a physical file name: a site plus a path on its storage element.
type PFN struct {
	Site string
	Path string
}

func (p PFN) String() string {
	return "gsiftp://" + p.Site + p.Path
}

// LRC is a site's Local Replica Catalog.
type LRC struct {
	site     string
	mappings map[string]map[string]bool // LFN → set of paths
	size     map[string]int64           // LFN → size attribute
}

// NewLRC creates a catalog for the named site.
func NewLRC(site string) *LRC {
	return &LRC{
		site:     site,
		mappings: make(map[string]map[string]bool),
		size:     make(map[string]int64),
	}
}

// Site returns the LRC's site name.
func (l *LRC) Site() string { return l.site }

// Add registers LFN→path. Sizes are attributes; a second Add of the same
// pair fails.
func (l *LRC) Add(lfn, path string, size int64) error {
	if lfn == "" || path == "" {
		return errors.New("rls: empty LFN or path")
	}
	set := l.mappings[lfn]
	if set == nil {
		set = make(map[string]bool)
		l.mappings[lfn] = set
	}
	if set[path] {
		return fmt.Errorf("%w: %s -> %s", ErrDuplicate, lfn, path)
	}
	set[path] = true
	l.size[lfn] = size
	return nil
}

// Remove deletes one mapping.
func (l *LRC) Remove(lfn, path string) error {
	set := l.mappings[lfn]
	if set == nil || !set[path] {
		return fmt.Errorf("%w: %s -> %s at %s", ErrNoMapping, lfn, path, l.site)
	}
	delete(set, path)
	if len(set) == 0 {
		delete(l.mappings, lfn)
		delete(l.size, lfn)
	}
	return nil
}

// Drop removes every mapping of an LFN, no error if absent — how a storage
// eviction retracts a file from the site catalog in one call.
func (l *LRC) Drop(lfn string) {
	delete(l.mappings, lfn)
	delete(l.size, lfn)
}

// Lookup returns the physical paths of an LFN at this site, sorted.
func (l *LRC) Lookup(lfn string) ([]string, error) {
	set := l.mappings[lfn]
	if len(set) == 0 {
		return nil, fmt.Errorf("%w: %s at %s", ErrNotFound, lfn, l.site)
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

// Size returns the size attribute of an LFN.
func (l *LRC) Size(lfn string) (int64, error) {
	if _, ok := l.mappings[lfn]; !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, lfn)
	}
	return l.size[lfn], nil
}

// LFNs returns all logical names known to this LRC, sorted.
func (l *LRC) LFNs() []string {
	out := make([]string, 0, len(l.mappings))
	for lfn := range l.mappings {
		out = append(out, lfn)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of logical names.
func (l *LRC) Len() int { return len(l.mappings) }

// RLI is the global replica location index. LRCs publish their LFN lists
// with a TTL; stale publications expire, so a dead site's replicas vanish
// from the index (Giggle's soft-state consistency).
//
// Expired entries are garbage-collected lazily: Sites prunes the queried
// LFN in place, and Publish piggybacks a full sweep at most once per
// sweepInterval, so a site that stops republishing (or LFN churn over a
// 183-day run) cannot grow the index without bound.
type RLI struct {
	clock sim.Clock
	// entries: LFN → site → publication expiry.
	entries map[string]map[string]time.Duration
	lrcs    map[string]*LRC
	// published tracks each site's current LFN list so republication can
	// retract the previous one without scanning the whole index.
	published map[string][]string
	// nextSweep is the earliest virtual time the next piggybacked full
	// sweep may run.
	nextSweep time.Duration
}

// sweepInterval bounds how often Publish runs a full expired-entry sweep.
const sweepInterval = time.Hour

// NewRLI creates an index on the given clock.
func NewRLI(clock sim.Clock) *RLI {
	return &RLI{
		clock:     clock,
		entries:   make(map[string]map[string]time.Duration),
		lrcs:      make(map[string]*LRC),
		published: make(map[string][]string),
	}
}

// Publish records all of an LRC's LFNs with the given TTL, replacing the
// site's previous publication. Grid3 LRCs republished periodically.
func (r *RLI) Publish(lrc *LRC, ttl time.Duration) {
	site := lrc.Site()
	r.lrcs[site] = lrc
	expiry := r.clock.Now() + ttl
	// Drop the site's previous publication first.
	for _, lfn := range r.published[site] {
		if sites, ok := r.entries[lfn]; ok {
			delete(sites, site)
			if len(sites) == 0 {
				delete(r.entries, lfn)
			}
		}
	}
	lfns := lrc.LFNs()
	for _, lfn := range lfns {
		sites := r.entries[lfn]
		if sites == nil {
			sites = make(map[string]time.Duration)
			r.entries[lfn] = sites
		}
		sites[site] = expiry
	}
	r.published[site] = lfns
	r.maybeSweep()
}

// pruneLFN drops an LFN's expired publications, and the LFN itself once no
// site publishes it. Expired entries were already invisible to queries, so
// pruning never changes results — it only returns memory.
func (r *RLI) pruneLFN(lfn string, now time.Duration) {
	sites := r.entries[lfn]
	for site, expiry := range sites {
		if expiry < now {
			delete(sites, site)
		}
	}
	if len(sites) == 0 {
		delete(r.entries, lfn)
	}
}

// maybeSweep runs a full expired-entry sweep at most once per sweepInterval.
func (r *RLI) maybeSweep() {
	now := r.clock.Now()
	if now < r.nextSweep {
		return
	}
	r.nextSweep = now + sweepInterval
	for lfn := range r.entries {
		r.pruneLFN(lfn, now)
	}
}

// Sites returns the sites currently publishing an LFN, sorted. Expired
// publications are pruned on the way through.
func (r *RLI) Sites(lfn string) []string {
	now := r.clock.Now()
	r.pruneLFN(lfn, now)
	var out []string
	for site := range r.entries[lfn] {
		out = append(out, site)
	}
	sort.Strings(out)
	return out
}

// AlternateSites returns the sites currently publishing an LFN other than
// the excluded ones, sorted — the failover candidates a transfer retries
// against when its planned source fails mid-flight.
func (r *RLI) AlternateSites(lfn string, exclude ...string) []string {
	var out []string
	for _, site := range r.Sites(lfn) {
		skip := false
		for _, x := range exclude {
			if site == x {
				skip = true
				break
			}
		}
		if !skip {
			out = append(out, site)
		}
	}
	return out
}

// Locate resolves an LFN to physical locations by consulting the index and
// then each publishing site's LRC.
func (r *RLI) Locate(lfn string) ([]PFN, error) {
	var out []PFN
	for _, site := range r.Sites(lfn) {
		lrc := r.lrcs[site]
		if lrc == nil {
			continue
		}
		paths, err := lrc.Lookup(lfn)
		if err != nil {
			continue // index was stale; skip
		}
		for _, p := range paths {
			out = append(out, PFN{Site: site, Path: p})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, lfn)
	}
	return out, nil
}

// KnownLFNs returns the number of logical names with live publications.
// It prunes expired entries as it scans, so the walk is O(live) amortized
// rather than O(everything ever published).
func (r *RLI) KnownLFNs() int {
	now := r.clock.Now()
	for lfn := range r.entries {
		r.pruneLFN(lfn, now)
	}
	return len(r.entries)
}

// IndexSize returns the number of logical names currently held in the
// index, live or awaiting the lazy sweep — the footprint the soft-state GC
// bounds.
func (r *RLI) IndexSize() int { return len(r.entries) }
