package rls

import (
	"sort"

	"grid3/internal/checkpoint"
)

// HashState folds the catalog into h: every LFN in sorted order with its
// sorted physical paths and size attribute.
func (l *LRC) HashState(h *checkpoint.Hasher) {
	h.String(l.site)
	h.Int(int64(len(l.mappings)))
	for _, lfn := range l.LFNs() {
		h.String(lfn)
		h.Int(l.size[lfn])
		paths, _ := l.Lookup(lfn)
		h.Int(int64(len(paths)))
		for _, p := range paths {
			h.String(p)
		}
	}
}

// HashState folds the index soft state into h. It reads the entries map
// directly — never through Sites/KnownLFNs, whose lazy pruning would make
// the walk a mutation — so expired-but-unswept publications are part of the
// state, exactly as they are part of what a replayed run rebuilds.
func (r *RLI) HashState(h *checkpoint.Hasher) {
	h.Dur(r.nextSweep)
	lfns := make([]string, 0, len(r.entries))
	for lfn := range r.entries {
		lfns = append(lfns, lfn)
	}
	sort.Strings(lfns)
	h.Int(int64(len(lfns)))
	for _, lfn := range lfns {
		h.String(lfn)
		sites := r.entries[lfn]
		names := make([]string, 0, len(sites))
		for s := range sites {
			names = append(names, s)
		}
		sort.Strings(names)
		h.Int(int64(len(names)))
		for _, s := range names {
			h.String(s)
			h.Dur(sites[s])
		}
	}
	pubs := make([]string, 0, len(r.published))
	for s := range r.published {
		pubs = append(pubs, s)
	}
	sort.Strings(pubs)
	h.Int(int64(len(pubs)))
	for _, s := range pubs {
		h.String(s)
		h.Int(int64(len(r.published[s])))
		for _, lfn := range r.published[s] {
			h.String(lfn)
		}
	}
}
