package rls

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"grid3/internal/sim"
)

func TestLRCBasics(t *testing.T) {
	l := NewLRC("bnl")
	if err := l.Add("lfn:atlas/dc1/evt001", "/data/atlas/evt001.root", 2<<30); err != nil {
		t.Fatal(err)
	}
	if err := l.Add("lfn:atlas/dc1/evt001", "/data/atlas/evt001.root", 2<<30); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate add err = %v", err)
	}
	if err := l.Add("lfn:atlas/dc1/evt001", "/tape/evt001.root", 2<<30); err != nil {
		t.Fatal(err) // second replica of same LFN at the site
	}
	paths, err := l.Lookup("lfn:atlas/dc1/evt001")
	if err != nil || len(paths) != 2 {
		t.Fatalf("Lookup = %v, %v", paths, err)
	}
	size, err := l.Size("lfn:atlas/dc1/evt001")
	if err != nil || size != 2<<30 {
		t.Fatalf("Size = %d, %v", size, err)
	}
	if _, err := l.Lookup("lfn:none"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing lookup err = %v", err)
	}
	if err := l.Remove("lfn:atlas/dc1/evt001", "/tape/evt001.root"); err != nil {
		t.Fatal(err)
	}
	if err := l.Remove("lfn:atlas/dc1/evt001", "/tape/evt001.root"); !errors.Is(err, ErrNoMapping) {
		t.Fatalf("double remove err = %v", err)
	}
	if err := l.Remove("lfn:atlas/dc1/evt001", "/data/atlas/evt001.root"); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 0 {
		t.Fatalf("Len = %d after removing all", l.Len())
	}
	if _, err := l.Size("lfn:atlas/dc1/evt001"); !errors.Is(err, ErrNotFound) {
		t.Fatal("size attribute survived last replica removal")
	}
	if err := l.Add("", "/x", 1); err == nil {
		t.Fatal("empty LFN accepted")
	}
}

func TestRLIPublishAndLocate(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	rli := NewRLI(eng)
	bnl := NewLRC("bnl")
	uc := NewLRC("uc")
	bnl.Add("lfn:d1", "/data/d1", 100)
	uc.Add("lfn:d1", "/store/d1", 100)
	uc.Add("lfn:d2", "/store/d2", 200)
	rli.Publish(bnl, time.Hour)
	rli.Publish(uc, time.Hour)

	sites := rli.Sites("lfn:d1")
	if len(sites) != 2 || sites[0] != "bnl" || sites[1] != "uc" {
		t.Fatalf("Sites = %v", sites)
	}
	pfns, err := rli.Locate("lfn:d2")
	if err != nil || len(pfns) != 1 || pfns[0].Site != "uc" {
		t.Fatalf("Locate = %v, %v", pfns, err)
	}
	if got := pfns[0].String(); got != "gsiftp://uc/store/d2" {
		t.Fatalf("PFN string = %q", got)
	}
	if rli.KnownLFNs() != 2 {
		t.Fatalf("KnownLFNs = %d", rli.KnownLFNs())
	}
	if _, err := rli.Locate("lfn:none"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing locate err = %v", err)
	}
}

func TestRLISoftStateExpiry(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	rli := NewRLI(eng)
	lrc := NewLRC("uf")
	lrc.Add("lfn:sdss/coadd7", "/sdss/coadd7.fits", 1<<20)
	rli.Publish(lrc, 30*time.Minute)
	if len(rli.Sites("lfn:sdss/coadd7")) != 1 {
		t.Fatal("fresh publication missing")
	}
	eng.RunUntil(time.Hour)
	if len(rli.Sites("lfn:sdss/coadd7")) != 0 {
		t.Fatal("expired publication still indexed")
	}
	if rli.KnownLFNs() != 0 {
		t.Fatal("KnownLFNs counts expired entries")
	}
	// Republication resurrects it.
	rli.Publish(lrc, 30*time.Minute)
	if len(rli.Sites("lfn:sdss/coadd7")) != 1 {
		t.Fatal("republication not indexed")
	}
}

func TestRLIPublishReplacesPrevious(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	rli := NewRLI(eng)
	lrc := NewLRC("caltech")
	lrc.Add("lfn:ligo/s2/band1", "/sft/band1", 4<<30)
	rli.Publish(lrc, time.Hour)
	// The file is deleted locally; the next publication must drop it.
	lrc.Remove("lfn:ligo/s2/band1", "/sft/band1")
	lrc.Add("lfn:ligo/s2/band2", "/sft/band2", 4<<30)
	rli.Publish(lrc, time.Hour)
	if len(rli.Sites("lfn:ligo/s2/band1")) != 0 {
		t.Fatal("stale LFN survived republication")
	}
	if len(rli.Sites("lfn:ligo/s2/band2")) != 1 {
		t.Fatal("new LFN not published")
	}
}

func TestRLILocateSkipsStaleIndex(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	rli := NewRLI(eng)
	lrc := NewLRC("unm")
	lrc.Add("lfn:x", "/x", 1)
	rli.Publish(lrc, time.Hour)
	// File vanishes locally after publication (index now stale).
	lrc.Remove("lfn:x", "/x")
	if _, err := rli.Locate("lfn:x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stale locate err = %v", err)
	}
}

func TestRLIScale(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	rli := NewRLI(eng)
	const sites = 20
	const filesPer = 200
	for s := 0; s < sites; s++ {
		lrc := NewLRC(fmt.Sprintf("site%02d", s))
		for f := 0; f < filesPer; f++ {
			lfn := fmt.Sprintf("lfn:set%d/file%03d", f%5, f)
			lrc.Add(lfn, fmt.Sprintf("/data/%d", f), int64(f+1))
		}
		rli.Publish(lrc, time.Hour)
	}
	if rli.KnownLFNs() != filesPer {
		t.Fatalf("KnownLFNs = %d, want %d (same namespace at all sites)", rli.KnownLFNs(), filesPer)
	}
	pfns, err := rli.Locate("lfn:set0/file000")
	if err != nil || len(pfns) != sites {
		t.Fatalf("Locate found %d replicas, want %d", len(pfns), sites)
	}
}

// Regression: before the lazy GC, expired publications were only filtered
// at read time — the index map itself grew without bound as the namespace
// churned (the soft-state leak). The sweep piggybacked on Publish must
// physically shrink the index.
func TestRLIIndexGCBoundsChurn(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	rli := NewRLI(eng)
	old := NewLRC("fnal")
	for i := 0; i < 500; i++ {
		old.Add(fmt.Sprintf("lfn:gen0/f%03d", i), fmt.Sprintf("/d/%d", i), 1)
	}
	rli.Publish(old, 30*time.Minute)
	if rli.IndexSize() != 500 {
		t.Fatalf("IndexSize = %d after publish", rli.IndexSize())
	}
	// The whole generation expires; a later publication of a fresh one
	// crosses the sweep interval and triggers the GC.
	eng.RunUntil(2 * time.Hour)
	fresh := NewLRC("bnl")
	fresh.Add("lfn:gen1/f000", "/d/0", 1)
	rli.Publish(fresh, 30*time.Minute)
	if got := rli.IndexSize(); got != 1 {
		t.Fatalf("index holds %d LFNs after churn, want 1 (stale entries leaked)", got)
	}
}

// Sites prunes the entry it touches, so hot lookups stay O(live replicas)
// and a mixed-freshness entry drops only its lapsed publishers.
func TestSitesPrunesExpiredPublishers(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	rli := NewRLI(eng)
	for _, pub := range []struct {
		site string
		ttl  time.Duration
	}{{"bnl", 30 * time.Minute}, {"uc", 2 * time.Hour}} {
		lrc := NewLRC(pub.site)
		lrc.Add("lfn:ev", "/d/ev", 1)
		rli.Publish(lrc, pub.ttl)
	}
	eng.RunUntil(time.Hour)
	if got := rli.Sites("lfn:ev"); len(got) != 1 || got[0] != "uc" {
		t.Fatalf("Sites = %v, want [uc]", got)
	}
	if len(rli.entries["lfn:ev"]) != 1 {
		t.Fatal("lapsed publisher still in the entry map")
	}
	// KnownLFNs prunes everything it counts: after uc lapses too, the
	// entry disappears physically, not just from the filtered view.
	eng.RunUntil(3 * time.Hour)
	if rli.KnownLFNs() != 0 || rli.IndexSize() != 0 {
		t.Fatalf("KnownLFNs = %d, IndexSize = %d after full expiry", rli.KnownLFNs(), rli.IndexSize())
	}
}

func TestAlternateSites(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	rli := NewRLI(eng)
	for _, s := range []string{"BNL", "UC", "IU"} {
		lrc := NewLRC(s)
		if err := lrc.Add("lfn:ev", "/data/ev", 1<<20); err != nil {
			t.Fatal(err)
		}
		rli.Publish(lrc, time.Hour)
	}
	got := rli.AlternateSites("lfn:ev", "BNL")
	if len(got) != 2 || got[0] != "IU" || got[1] != "UC" {
		t.Fatalf("AlternateSites excluding BNL = %v", got)
	}
	if got := rli.AlternateSites("lfn:ev", "BNL", "IU", "UC"); len(got) != 0 {
		t.Fatalf("all excluded: %v", got)
	}
	if got := rli.AlternateSites("lfn:missing"); len(got) != 0 {
		t.Fatalf("unknown lfn: %v", got)
	}
}
