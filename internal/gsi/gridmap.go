package gsi

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Gridmap maps certificate identity DNs to local Unix accounts, as the
// grid-mapfile does on every Grid3 gatekeeper. §5.3: "We generated the local
// grid-map files that map user identities presented in X509 certificates to
// local accounts by calling an EDG script to contact each VO's VOMS server."
type Gridmap struct {
	entries map[string]string
}

// NewGridmap returns an empty map.
func NewGridmap() *Gridmap {
	return &Gridmap{entries: make(map[string]string)}
}

// Map adds or replaces the account for a DN. Proxy components are stripped
// so proxies map the same as their end-entity identities.
func (m *Gridmap) Map(dn, account string) {
	m.entries[StripProxy(dn)] = account
}

// Unmap removes a DN.
func (m *Gridmap) Unmap(dn string) {
	delete(m.entries, StripProxy(dn))
}

// Lookup returns the local account for a DN.
func (m *Gridmap) Lookup(dn string) (string, error) {
	acct, ok := m.entries[StripProxy(dn)]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNotAuthorized, dn)
	}
	return acct, nil
}

// Len returns the number of authorized DNs.
func (m *Gridmap) Len() int { return len(m.entries) }

// ReplaceAll atomically swaps the map's contents for other's — how
// edg-mkgridmap rewrote the grid-mapfile in place on its cron cycle,
// so services holding the map see the refresh without re-opening it.
func (m *Gridmap) ReplaceAll(other *Gridmap) {
	fresh := make(map[string]string, len(other.entries))
	for dn, acct := range other.entries {
		fresh[dn] = acct
	}
	m.entries = fresh
}

// DNs returns all mapped DNs, sorted.
func (m *Gridmap) DNs() []string {
	out := make([]string, 0, len(m.entries))
	for dn := range m.entries {
		out = append(out, dn)
	}
	sort.Strings(out)
	return out
}

// WriteTo serializes the map in grid-mapfile format:
//
//	"/DC=org/DC=doegrids/OU=People/CN=Jane Doe" usatlas
func (m *Gridmap) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, dn := range m.DNs() {
		n, err := fmt.Fprintf(w, "\"%s\" %s\n", dn, m.entries[dn])
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ParseGridmap reads grid-mapfile format. Blank lines and '#' comments are
// ignored. DNs must be double-quoted; the account is the remainder of the
// line.
func ParseGridmap(r io.Reader) (*Gridmap, error) {
	m := NewGridmap()
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, `"`) {
			return nil, fmt.Errorf("%w: line %d: DN not quoted", ErrMalformedGridmap, lineno)
		}
		end := strings.Index(line[1:], `"`)
		if end < 0 {
			return nil, fmt.Errorf("%w: line %d: unterminated DN", ErrMalformedGridmap, lineno)
		}
		dn := line[1 : 1+end]
		acct := strings.TrimSpace(line[2+end:])
		if dn == "" || acct == "" {
			return nil, fmt.Errorf("%w: line %d: empty DN or account", ErrMalformedGridmap, lineno)
		}
		m.Map(dn, acct)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return m, nil
}
