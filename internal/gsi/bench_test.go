package gsi

import (
	"testing"
	"time"
)

// BenchmarkVerifyProxyChain measures the per-connection auth cost a
// gatekeeper pays: full chain validation of a delegated proxy.
func BenchmarkVerifyProxyChain(b *testing.B) {
	t0 := time.Date(2003, time.October, 23, 0, 0, 0, 0, time.UTC)
	ca, err := NewCA("/CN=Bench CA", t0, 10*365*24*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	user, _ := ca.Issue("/CN=bench user", t0, 365*24*time.Hour)
	proxy, _ := NewProxy(user, t0, 12*time.Hour)
	deleg, _ := NewProxy(proxy, t0, 6*time.Hour)
	store := NewTrustStore(ca.Certificate())
	at := t0.Add(time.Hour)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.VerifyCredential(deleg, at); err != nil {
			b.Fatal(err)
		}
	}
}
