package gsi

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2003, time.October, 23, 0, 0, 0, 0, time.UTC)

func newTestCA(t *testing.T) *CA {
	t.Helper()
	ca, err := NewCA("/DC=org/DC=doegrids/CN=DOEGrids CA 1", t0, 10*365*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

func TestIssueAndVerify(t *testing.T) {
	ca := newTestCA(t)
	cred, err := ca.Issue("/DC=org/DC=doegrids/OU=People/CN=Jane Doe", t0, 365*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	store := NewTrustStore(ca.Certificate())
	id, err := store.VerifyCredential(cred, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if id != "/DC=org/DC=doegrids/OU=People/CN=Jane Doe" {
		t.Fatalf("identity = %q", id)
	}
}

func TestVerifyExpired(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/CN=shortlived", t0, time.Hour)
	store := NewTrustStore(ca.Certificate())
	if _, err := store.VerifyCredential(cred, t0.Add(2*time.Hour)); err == nil {
		t.Fatal("expired cert verified")
	}
}

func TestVerifyNotYetValid(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/CN=future", t0.Add(time.Hour), time.Hour)
	store := NewTrustStore(ca.Certificate())
	if _, err := store.VerifyCredential(cred, t0); err == nil {
		t.Fatal("not-yet-valid cert verified")
	}
}

func TestUntrustedCA(t *testing.T) {
	ca := newTestCA(t)
	rogue, err := NewCA("/CN=Rogue CA", t0, time.Hour*24)
	if err != nil {
		t.Fatal(err)
	}
	cred, _ := rogue.Issue("/CN=mallory", t0, time.Hour)
	store := NewTrustStore(ca.Certificate())
	if _, err := store.VerifyCredential(cred, t0.Add(time.Minute)); err == nil {
		t.Fatal("cert from untrusted CA verified")
	}
}

func TestTamperedCertificate(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/CN=alice", t0, time.Hour)
	cred.Cert.Subject = "/CN=eve" // forge subject after signing
	store := NewTrustStore(ca.Certificate())
	if _, err := store.VerifyCredential(cred, t0.Add(time.Minute)); err == nil {
		t.Fatal("tampered cert verified")
	}
}

func TestProxyChain(t *testing.T) {
	ca := newTestCA(t)
	user, _ := ca.Issue("/OU=People/CN=Bob", t0, 30*24*time.Hour)
	proxy, err := NewProxy(user, t0, 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(proxy.Cert.Subject, "/CN=proxy") {
		t.Fatalf("proxy subject %q", proxy.Cert.Subject)
	}
	store := NewTrustStore(ca.Certificate())
	id, err := store.VerifyCredential(proxy, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if id != "/OU=People/CN=Bob" {
		t.Fatalf("proxy identity = %q, want end-entity DN", id)
	}
	// Second-level delegation (Condor-G GridManager style).
	deleg, err := NewProxy(proxy, t0.Add(time.Minute), 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	id, err = store.VerifyCredential(deleg, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if id != "/OU=People/CN=Bob" {
		t.Fatalf("delegated identity = %q", id)
	}
	if deleg.Identity() != "/OU=People/CN=Bob" {
		t.Fatalf("Identity() = %q", deleg.Identity())
	}
}

func TestProxyCannotOutliveSigner(t *testing.T) {
	ca := newTestCA(t)
	user, _ := ca.Issue("/CN=carol", t0, time.Hour)
	if _, err := NewProxy(user, t0, 2*time.Hour); err != ErrProxyOutlives {
		t.Fatalf("err = %v, want ErrProxyOutlives", err)
	}
}

func TestProxyExpiresIndependently(t *testing.T) {
	ca := newTestCA(t)
	user, _ := ca.Issue("/CN=dave", t0, 30*24*time.Hour)
	proxy, _ := NewProxy(user, t0, time.Hour)
	store := NewTrustStore(ca.Certificate())
	if _, err := store.VerifyCredential(proxy, t0.Add(2*time.Hour)); err == nil {
		t.Fatal("expired proxy verified")
	}
	// The user credential itself is still fine.
	if _, err := store.VerifyCredential(user, t0.Add(2*time.Hour)); err != nil {
		t.Fatal(err)
	}
}

func TestProxyDepthLimit(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/CN=deep", t0, 100*24*time.Hour)
	var err error
	for i := 0; i < MaxProxyDepth+2; i++ {
		cred, err = NewProxy(cred, t0, time.Hour)
		if err != nil {
			if err != ErrProxyDepth {
				t.Fatalf("unexpected error %v", err)
			}
			return
		}
	}
	t.Fatal("proxy chain exceeded MaxProxyDepth without error")
}

func TestChallengeResponse(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/CN=host/gate.uchicago.edu", t0, 24*time.Hour)
	nonce := []byte("grid3-nonce-0001")
	sig := SignChallenge(cred, nonce)
	if err := VerifyChallenge(cred.Cert, nonce, sig); err != nil {
		t.Fatal(err)
	}
	if err := VerifyChallenge(cred.Cert, []byte("other"), sig); err == nil {
		t.Fatal("signature verified against wrong nonce")
	}
}

func TestStripProxy(t *testing.T) {
	in := "/OU=People/CN=Bob/CN=proxy/CN=proxy"
	if got := StripProxy(in); got != "/OU=People/CN=Bob" {
		t.Fatalf("StripProxy = %q", got)
	}
	if got := StripProxy("/CN=plain"); got != "/CN=plain" {
		t.Fatalf("StripProxy of plain DN = %q", got)
	}
}

func TestGridmapLookup(t *testing.T) {
	m := NewGridmap()
	m.Map("/OU=People/CN=Jane", "usatlas")
	acct, err := m.Lookup("/OU=People/CN=Jane/CN=proxy")
	if err != nil {
		t.Fatal(err)
	}
	if acct != "usatlas" {
		t.Fatalf("account = %q", acct)
	}
	if _, err := m.Lookup("/CN=unknown"); err == nil {
		t.Fatal("unknown DN authorized")
	}
	m.Unmap("/OU=People/CN=Jane")
	if _, err := m.Lookup("/OU=People/CN=Jane"); err == nil {
		t.Fatal("unmapped DN still authorized")
	}
}

func TestGridmapRoundTrip(t *testing.T) {
	m := NewGridmap()
	m.Map("/OU=People/CN=Jane", "usatlas")
	m.Map("/OU=People/CN=Bob Smith", "uscms")
	m.Map("/OU=Services/CN=ligo/ldas.ligo.caltech.edu", "ligo")
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseGridmap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != 3 {
		t.Fatalf("round-trip lost entries: %d", parsed.Len())
	}
	acct, err := parsed.Lookup("/OU=People/CN=Bob Smith")
	if err != nil || acct != "uscms" {
		t.Fatalf("lookup after round trip: %q, %v", acct, err)
	}
}

func TestGridmapParseErrors(t *testing.T) {
	cases := []string{
		`/CN=unquoted usatlas`,
		`"/CN=unterminated usatlas`,
		`"" usatlas`,
		`"/CN=noaccount" `,
	}
	for _, c := range cases {
		if _, err := ParseGridmap(strings.NewReader(c)); err == nil {
			t.Fatalf("no error for malformed line %q", c)
		}
	}
	// Comments and blanks are fine.
	ok := "# comment\n\n\"/CN=x\" acct\n"
	m, err := ParseGridmap(strings.NewReader(ok))
	if err != nil || m.Len() != 1 {
		t.Fatalf("valid file rejected: %v", err)
	}
}

// Property: any DN round-trips through the gridmap file format, as long as
// it has no quote or newline (which real DNs do not).
func TestGridmapRoundTripProperty(t *testing.T) {
	f := func(rawDN, rawAcct string) bool {
		dn := strings.Map(func(r rune) rune {
			if r == '"' || r == '\n' || r == '\r' {
				return '_'
			}
			return r
		}, rawDN)
		acct := strings.Map(func(r rune) rune {
			if r == ' ' || r == '\n' || r == '\r' || r == '\t' || r == '"' {
				return '_'
			}
			return r
		}, rawAcct)
		if strings.TrimSpace(dn) == "" || acct == "" {
			return true
		}
		dn = "/CN=" + dn
		m := NewGridmap()
		m.Map(dn, acct)
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			return false
		}
		p, err := ParseGridmap(&buf)
		if err != nil {
			return false
		}
		got, err := p.Lookup(dn)
		return err == nil && got == acct
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
